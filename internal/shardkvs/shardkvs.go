package shardkvs

import (
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"faasm.dev/faasm/internal/kvs"
	"faasm.dev/faasm/internal/obsv"
)

// ReadPref selects which owner serves reads.
type ReadPref int

// Read preferences.
const (
	// ReadPrimary always reads the key's primary: strongest consistency,
	// no read scaling.
	ReadPrimary ReadPref = iota
	// ReadAny round-robins reads across the primary and its replicas,
	// spreading hot-key read load over R nodes.
	ReadAny
)

// Options tunes a ring.
type Options struct {
	// Replication is the copies kept per key (clamped to the node count).
	// 0 or 1 means primary-only.
	Replication int
	// VirtualNodes is the ring points per node (default 64). More points
	// smooth the key distribution at the cost of larger rebalance fan-out.
	VirtualNodes int
	// ReadPref selects the read routing policy.
	ReadPref ReadPref
}

// node is one shard: an id on the ring plus the store that holds its keys.
type node struct {
	id    string
	store kvs.Store
	// inproc marks an in-process engine shard, whose operations are pure
	// CPU work. Fan-out parallelism is pointless for those on a single-CPU
	// host (see spawnFanOut).
	inproc bool
}

func newNode(id string, store kvs.Store) *node {
	_, inproc := store.(*kvs.Engine)
	return &node{id: id, store: store, inproc: inproc}
}

// spawnFanOut reports whether ops against the given nodes should fan out on
// goroutines. Spawning is the default — replica writes and per-shard
// batches then cost the slowest target instead of the sum — except when it
// cannot possibly help: on a single-CPU host, in-process engine shards are
// CPU-bound memory ops, so goroutines only add scheduling overhead to every
// write. Remote shards always fan out; their round trips park on I/O and
// overlap even on one CPU.
func spawnFanOut(nodes []*node) bool {
	// GOMAXPROCS, not NumCPU: a 1-proc cap on a multi-core host still means
	// goroutines cannot run in parallel.
	if runtime.GOMAXPROCS(0) > 1 {
		return true
	}
	for _, n := range nodes {
		if !n.inproc {
			return true
		}
	}
	return false
}

// point is one virtual node position on the hash circle.
type point struct {
	hash uint64
	id   string
}

// Ring routes kvs.Store operations across shard nodes.
type Ring struct {
	opts Options

	mu     sync.RWMutex
	nodes  map[string]*node
	points []point // sorted by hash

	rr atomic.Uint64 // read round-robin cursor

	// reads/writes count routed operations (a multi-key op counts once per
	// key) for the metrics exposition.
	reads  atomic.Int64
	writes atomic.Int64

	// writeStripes serialise replicated writes per key: without them two
	// concurrent Sets can commit in opposite orders on primary and replica
	// and diverge the copies permanently. Unused when Replication is 1.
	writeStripes [64]sync.Mutex
}

// Instrument registers the ring's op counters and shard gauge with reg, plus
// each in-process engine shard's own expiry/key-space metrics (remote shards
// are skipped: their metrics belong to the process that owns them).
func (r *Ring) Instrument(reg *obsv.Registry) {
	none := map[string]string(nil)
	reg.CounterFunc("faasm_shardkvs_reads_total", "reads routed through the ring", none, r.reads.Load)
	reg.CounterFunc("faasm_shardkvs_writes_total", "writes routed through the ring", none, r.writes.Load)
	reg.GaugeFunc("faasm_shardkvs_shards", "shard nodes attached to the ring", none, func() int64 {
		r.mu.RLock()
		defer r.mu.RUnlock()
		return int64(len(r.nodes))
	})
	r.mu.RLock()
	defer r.mu.RUnlock()
	for id, n := range r.nodes {
		if eng, ok := n.store.(*kvs.Engine); ok {
			eng.Instrument(reg, id)
		}
	}
}

// New returns an empty ring; add shards with Join.
func New(opts Options) *Ring {
	if opts.VirtualNodes <= 0 {
		opts.VirtualNodes = 64
	}
	if opts.Replication <= 0 {
		opts.Replication = 1
	}
	return &Ring{opts: opts, nodes: map[string]*node{}}
}

// NewLocal builds a ring of n in-process engines named shard-0..shard-n-1;
// the cluster harness and tests use this form.
func NewLocal(n int, opts Options) *Ring {
	r := New(opts)
	for i := 0; i < n; i++ {
		r.Attach(fmt.Sprintf("shard-%d", i), kvs.NewEngine())
	}
	return r
}

// AttachRemote builds a ring of TCP clients attached to an existing tier at
// the given endpoints. Each node is named by its endpoint address, so every
// client given the same endpoint set — in any order — routes keys
// identically. Attaching performs no migration — connecting a client must
// never mutate tier data. Close the ring to release the connections.
func AttachRemote(endpoints []string, opts Options) (*Ring, error) {
	if len(endpoints) == 0 {
		return nil, fmt.Errorf("shardkvs: no endpoints")
	}
	r := New(opts)
	for _, addr := range endpoints {
		if err := r.Attach(addr, kvs.NewClient(addr)); err != nil {
			r.Close()
			return nil, err
		}
	}
	return r, nil
}

// SplitEndpoints parses a comma-separated endpoint list, dropping empties;
// faasmd and faasm-cli share it so both parse -state identically.
func SplitEndpoints(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// Close releases node stores that hold resources (TCP clients).
func (r *Ring) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var firstErr error
	for _, n := range r.nodes {
		if c, ok := n.store.(io.Closer); ok {
			if err := c.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	// FNV-1a mixes the low bits well but avalanches poorly into the high
	// bits for short inputs, which skews ring placement (arcs are compared
	// on the full 64-bit value). A murmur3-style finaliser fixes that.
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

func buildPoints(ids []string, vnodes int) []point {
	pts := make([]point, 0, len(ids)*vnodes)
	for _, id := range ids {
		for v := 0; v < vnodes; v++ {
			pts = append(pts, point{hashKey(fmt.Sprintf("%s#%d", id, v)), id})
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].hash < pts[j].hash })
	return pts
}

// searchPoints finds the first ring position at or clockwise of the key's
// hash.
func searchPoints(points []point, key string) int {
	h := hashKey(key)
	start := sort.Search(len(points), func(i int) bool { return points[i].hash >= h })
	return start % len(points)
}

// ownersOn walks clockwise from the key's hash collecting the first R
// distinct node ids. R is small, so a linear dedupe scan beats a map.
func ownersOn(points []point, key string, replication int) []string {
	if len(points) == 0 {
		return nil
	}
	start := searchPoints(points, key)
	out := make([]string, 0, replication)
walk:
	for i := 0; i < len(points) && len(out) < replication; i++ {
		id := points[(start+i)%len(points)].id
		for _, o := range out {
			if o == id {
				continue walk
			}
		}
		out = append(out, id)
	}
	return out
}

// NodeIDs lists the ring's members in sorted order.
func (r *Ring) NodeIDs() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for id := range r.nodes {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Owners reports the node ids holding key, primary first (diagnostics and
// tests).
func (r *Ring) Owners(key string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return ownersOn(r.points, key, r.opts.Replication)
}

// route snapshots the stores owning key: primary plus replicas. Callers
// invoke the stores after the lock is released so a blocking Lock acquire
// cannot wedge the ring against a rebalance. The unreplicated hot path does
// no allocation — routing must stay far cheaper than the shard op itself.
func (r *Ring) route(key string) (*node, []*node, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil, nil, fmt.Errorf("shardkvs: empty ring")
	}
	if r.opts.Replication == 1 {
		return r.nodes[r.points[searchPoints(r.points, key)].id], nil, nil
	}
	ids := ownersOn(r.points, key, r.opts.Replication)
	primary := r.nodes[ids[0]]
	if len(ids) == 1 {
		return primary, nil, nil
	}
	replicas := make([]*node, len(ids)-1)
	for i, id := range ids[1:] {
		replicas[i] = r.nodes[id]
	}
	return primary, replicas, nil
}

// writeFence serialises replicated writes to one key across this ring
// instance. Returns nil (no fence needed) when the tier is unreplicated.
// Writers from other ring instances are not ordered — cross-client writes
// to one key need the kvs global lock, exactly as the paper's §4.2
// consistent-write recipe prescribes.
func (r *Ring) writeFence(key string) func() {
	if r.opts.Replication <= 1 {
		return nil
	}
	m := &r.writeStripes[hashKey(key)&63]
	m.Lock()
	return m.Unlock
}

// writeVal applies op to the key's primary and fans the same op out to its
// replicas, returning the primary's result. The fan-out is parallel: every
// copy applies the op concurrently, so a replicated write costs the slowest
// copy instead of the sum over R copies (sequential fan-out made R=2 double
// write latency). The write fence above keeps concurrent writers to one key
// ordered identically on every copy, so parallelism cannot diverge an
// error-free write.
//
// Error semantics: any error (primary or replica) means the write's copies
// may disagree — in the parallel path a replica can even have applied an op
// the primary rejected, because the copies start concurrently. Callers must
// treat an errored write as indeterminate: retry it (Set/SetRange replays
// converge every copy) or run Rebalance to re-converge placement. The
// single-CPU inline path keeps the stricter primary-first order as a side
// effect, but callers must not rely on it. (A package function because
// methods cannot take type parameters.)
func writeVal[T any](r *Ring, key string, op func(s kvs.Store) (T, error)) (T, error) {
	r.writes.Add(1)
	if unlock := r.writeFence(key); unlock != nil {
		defer unlock()
	}
	primary, replicas, err := r.route(key)
	if err != nil {
		var zero T
		return zero, err
	}
	if len(replicas) == 0 {
		return op(primary.store)
	}
	if !spawnFanOut(replicas) {
		v, err := op(primary.store)
		if err != nil {
			var zero T
			return zero, err
		}
		var firstErr error
		for _, rep := range replicas {
			if _, err := op(rep.store); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("shardkvs: replica %s: %w", rep.id, err)
			}
		}
		return v, firstErr
	}
	errs := make([]error, len(replicas))
	var wg sync.WaitGroup
	for i, rep := range replicas {
		wg.Add(1)
		go func(i int, rep *node) {
			defer wg.Done()
			if _, err := op(rep.store); err != nil {
				errs[i] = fmt.Errorf("shardkvs: replica %s: %w", rep.id, err)
			}
		}(i, rep)
	}
	v, perr := op(primary.store)
	wg.Wait()
	if perr != nil {
		var zero T
		return zero, perr
	}
	for _, e := range errs {
		if e != nil {
			return v, e
		}
	}
	return v, nil
}

// write is writeVal for operations without a result.
func (r *Ring) write(key string, op func(s kvs.Store) error) error {
	_, err := writeVal(r, key, func(s kvs.Store) (struct{}, error) {
		return struct{}{}, op(s)
	})
	return err
}

// readNode picks the owner that serves a read of key.
func (r *Ring) readNode(key string) (*node, error) {
	r.reads.Add(1)
	primary, replicas, err := r.route(key)
	if err != nil {
		return nil, err
	}
	if r.opts.ReadPref == ReadPrimary || len(replicas) == 0 {
		return primary, nil
	}
	// Modulo in uint64: a signed conversion first would eventually go
	// negative and index out of range.
	idx := int(r.rr.Add(1) % uint64(1+len(replicas)))
	if idx == 0 {
		return primary, nil
	}
	return replicas[idx-1], nil
}

// Get implements kvs.Store.
func (r *Ring) Get(key string) ([]byte, error) {
	n, err := r.readNode(key)
	if err != nil {
		return nil, err
	}
	return n.store.Get(key)
}

// Set implements kvs.Store.
func (r *Ring) Set(key string, val []byte) error {
	return r.write(key, func(s kvs.Store) error { return s.Set(key, val) })
}

// SetEx implements kvs.Store: the expiring write lands on the key's primary
// and fans out to its replicas in parallel like any other write. Each copy
// arms its own deadline on its own clock at fan-out time, so replica
// deadlines can skew by the fan-out latency — which is why TTL reads route
// to the primary.
func (r *Ring) SetEx(key string, val []byte, ttl time.Duration) error {
	return r.write(key, func(s kvs.Store) error { return s.SetEx(key, val, ttl) })
}

// TTL implements kvs.Store, always reading the primary: the primary's clock
// is the authority for a key's lifetime, and ReadAny replicas may hold
// deadlines skewed by replication latency.
func (r *Ring) TTL(key string) (time.Duration, error) {
	primary, _, err := r.route(key)
	if err != nil {
		return 0, err
	}
	return primary.store.TTL(key)
}

// Persist implements kvs.Store. The primary's removed result is
// authoritative.
func (r *Ring) Persist(key string) (bool, error) {
	return writeVal(r, key, func(s kvs.Store) (bool, error) { return s.Persist(key) })
}

// GetRange implements kvs.Store.
func (r *Ring) GetRange(key string, off, n int) ([]byte, error) {
	nd, err := r.readNode(key)
	if err != nil {
		return nil, err
	}
	return nd.store.GetRange(key, off, n)
}

// SetRange implements kvs.Store.
func (r *Ring) SetRange(key string, off int, val []byte) error {
	return r.write(key, func(s kvs.Store) error { return s.SetRange(key, off, val) })
}

// Append implements kvs.Store. The primary's new length is authoritative;
// in-sync replicas reach the same length by applying the same append.
func (r *Ring) Append(key string, val []byte) (int, error) {
	return writeVal(r, key, func(s kvs.Store) (int, error) { return s.Append(key, val) })
}

// Len implements kvs.Store.
func (r *Ring) Len(key string) (int, error) {
	n, err := r.readNode(key)
	if err != nil {
		return 0, err
	}
	return n.store.Len(key)
}

// Delete implements kvs.Store.
func (r *Ring) Delete(key string) error {
	return r.write(key, func(s kvs.Store) error { return s.Delete(key) })
}

// SAdd implements kvs.Store.
func (r *Ring) SAdd(key, member string) (bool, error) {
	return writeVal(r, key, func(s kvs.Store) (bool, error) { return s.SAdd(key, member) })
}

// SRem implements kvs.Store.
func (r *Ring) SRem(key, member string) (bool, error) {
	return writeVal(r, key, func(s kvs.Store) (bool, error) { return s.SRem(key, member) })
}

// SMembers implements kvs.Store.
func (r *Ring) SMembers(key string) ([]string, error) {
	n, err := r.readNode(key)
	if err != nil {
		return nil, err
	}
	return n.store.SMembers(key)
}

// Incr implements kvs.Store. The primary's result is authoritative.
func (r *Ring) Incr(key string, delta int64) (int64, error) {
	return writeVal(r, key, func(s kvs.Store) (int64, error) { return s.Incr(key, delta) })
}

// writeFenceAll is writeFence for a batch: the write stripes of every key
// are taken in ascending stripe order (so concurrent batches cannot
// deadlock) and held for the whole batched write. Stripes fit one uint64
// bitmask. Returns nil when the tier is unreplicated.
func (r *Ring) writeFenceAll(pairs []kvs.Pair) func() {
	if r.opts.Replication <= 1 {
		return nil
	}
	var mask uint64
	for _, p := range pairs {
		mask |= 1 << (hashKey(p.Key) & 63)
	}
	for i := 0; i < 64; i++ {
		if mask&(1<<i) != 0 {
			r.writeStripes[i].Lock()
		}
	}
	return func() {
		for i := 0; i < 64; i++ {
			if mask&(1<<i) != 0 {
				r.writeStripes[i].Unlock()
			}
		}
	}
}

// nodeGroup is one shard's slice of a batch: the indices (into the original
// batch) this node serves.
type nodeGroup struct {
	n   *node
	idx []int
}

// groupBy buckets batch indices by the node pick returns for each key.
func groupBy(count int, pick func(i int) (*node, error)) ([]nodeGroup, error) {
	byNode := map[*node]int{}
	var groups []nodeGroup
	for i := 0; i < count; i++ {
		n, err := pick(i)
		if err != nil {
			return nil, err
		}
		gi, ok := byNode[n]
		if !ok {
			gi = len(groups)
			byNode[n] = gi
			groups = append(groups, nodeGroup{n: n})
		}
		groups[gi].idx = append(groups[gi].idx, i)
	}
	return groups, nil
}

// eachGroup runs op for every group, concurrently when there is more than
// one (and parallelism can help — see spawnFanOut), and returns the first
// error.
func eachGroup(groups []nodeGroup, op func(g nodeGroup) error) error {
	serial := len(groups) == 1
	if !serial {
		nodes := make([]*node, len(groups))
		for i := range groups {
			nodes[i] = groups[i].n
		}
		serial = !spawnFanOut(nodes)
	}
	if serial {
		for _, g := range groups {
			if err := op(g); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(groups))
	var wg sync.WaitGroup
	for gi := range groups {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			errs[gi] = op(groups[gi])
		}(gi)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// MGet implements kvs.Batcher: keys are grouped by the shard that serves
// their read and one batch issues per shard, all shards in parallel — so a
// cross-shard batch costs one shard round trip, not one per key.
func (r *Ring) MGet(keys []string) ([][]byte, error) {
	out := make([][]byte, len(keys))
	if len(keys) == 0 {
		return out, nil
	}
	groups, err := groupBy(len(keys), func(i int) (*node, error) { return r.readNode(keys[i]) })
	if err != nil {
		return nil, err
	}
	err = eachGroup(groups, func(g nodeGroup) error {
		sub := make([]string, len(g.idx))
		for j, i := range g.idx {
			sub[j] = keys[i]
		}
		vals, err := kvs.MGet(g.n.store, sub)
		if err != nil {
			return err
		}
		if len(vals) != len(g.idx) {
			return fmt.Errorf("shardkvs: node %s returned %d values for %d keys", g.n.id, len(vals), len(g.idx))
		}
		for j, i := range g.idx {
			out[i] = vals[j]
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MSet implements kvs.Batcher: pairs are grouped by owner and one batch
// issues per shard, shards in parallel. Primaries commit first (all of
// them, concurrently); replica batches fan out only after every primary
// batch landed, so a primary error cannot leave replicas ahead of their
// primary. The multi-key write fence holds for the whole batch.
func (r *Ring) MSet(pairs []kvs.Pair) error {
	return r.msetBatched(pairs, func(s kvs.Store, sub []kvs.Pair) error {
		return kvs.MSet(s, sub)
	})
}

// MSetEx implements kvs.Batcher: MSet's per-shard batching and
// primaries-first ordering, with every sub-batch armed with the shared ttl.
func (r *Ring) MSetEx(pairs []kvs.Pair, ttl time.Duration) error {
	if ttl <= 0 {
		// Fail before any shard is touched: a partial batch where some
		// shards rejected the ttl and others never saw it is avoidable here.
		return fmt.Errorf("shardkvs: msetex ttl must be positive, got %v", ttl)
	}
	return r.msetBatched(pairs, func(s kvs.Store, sub []kvs.Pair) error {
		return kvs.MSetEx(s, sub, ttl)
	})
}

// msetBatched is the shared MSet/MSetEx fan-out: pairs grouped by owner,
// one batch per shard, primaries committed (concurrently) before any
// replica batch starts.
func (r *Ring) msetBatched(pairs []kvs.Pair, apply func(s kvs.Store, sub []kvs.Pair) error) error {
	if len(pairs) == 0 {
		return nil
	}
	r.writes.Add(int64(len(pairs)))
	if unlock := r.writeFenceAll(pairs); unlock != nil {
		defer unlock()
	}
	primaries := make([]*node, len(pairs))
	replicas := make([][]*node, len(pairs))
	for i, p := range pairs {
		pri, reps, err := r.route(p.Key)
		if err != nil {
			return err
		}
		primaries[i] = pri
		replicas[i] = reps
	}
	send := func(groups []nodeGroup) error {
		return eachGroup(groups, func(g nodeGroup) error {
			sub := make([]kvs.Pair, len(g.idx))
			for j, i := range g.idx {
				sub[j] = pairs[i]
			}
			if err := apply(g.n.store, sub); err != nil {
				return fmt.Errorf("shardkvs: node %s: %w", g.n.id, err)
			}
			return nil
		})
	}
	priGroups, err := groupBy(len(pairs), func(i int) (*node, error) { return primaries[i], nil })
	if err != nil {
		return err
	}
	if err := send(priGroups); err != nil {
		return err
	}
	// Flatten (pair, replica) placements and group them by node.
	type placement struct{ pair, rep int }
	var places []placement
	for i, reps := range replicas {
		for ri := range reps {
			places = append(places, placement{i, ri})
		}
	}
	if len(places) == 0 {
		return nil
	}
	repGroups, err := groupBy(len(places), func(i int) (*node, error) {
		return replicas[places[i].pair][places[i].rep], nil
	})
	if err != nil {
		return err
	}
	return eachGroup(repGroups, func(g nodeGroup) error {
		sub := make([]kvs.Pair, len(g.idx))
		for j, i := range g.idx {
			sub[j] = pairs[places[i].pair]
		}
		if err := apply(g.n.store, sub); err != nil {
			return fmt.Errorf("shardkvs: replica %s: %w", g.n.id, err)
		}
		return nil
	})
}

// GetRanges implements kvs.Batcher: one key lives on one shard, so the whole
// window batch forwards to the shard serving the read.
func (r *Ring) GetRanges(key string, ranges []kvs.Range) ([][]byte, error) {
	n, err := r.readNode(key)
	if err != nil {
		return nil, err
	}
	return kvs.GetRanges(n.store, key, ranges)
}

// Lock implements kvs.Store: a key's lease lock lives on its owning
// primary, so mutual exclusion is exactly one engine's semantics regardless
// of replication.
func (r *Ring) Lock(key string, write bool, ttl time.Duration) (uint64, error) {
	primary, _, err := r.route(key)
	if err != nil {
		return 0, err
	}
	return primary.store.Lock(key, write, ttl)
}

// Unlock implements kvs.Store, routing to the same primary as Lock. If the
// primary changed in between (rebalance during a held lock), the stale
// lease expires on the old node by TTL.
func (r *Ring) Unlock(key string, token uint64) error {
	primary, _, err := r.route(key)
	if err != nil {
		return err
	}
	return primary.store.Unlock(key, token)
}

// AllKeys implements kvs.Lister: the union of every shard's entries (each
// replicated key reported once).
func (r *Ring) AllKeys() ([]kvs.KeyInfo, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	seen := map[kvs.KeyInfo]bool{}
	var out []kvs.KeyInfo
	for _, n := range r.nodes {
		infos, err := listKeys(n)
		if err != nil {
			return nil, err
		}
		for _, ki := range infos {
			if !seen[ki] {
				seen[ki] = true
				out = append(out, ki)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Key < out[j].Key
	})
	return out, nil
}

// ShardKeyCounts reports entries per node id (balance diagnostics).
func (r *Ring) ShardKeyCounts() (map[string]int, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]int, len(r.nodes))
	for id, n := range r.nodes {
		infos, err := listKeys(n)
		if err != nil {
			return nil, err
		}
		out[id] = len(infos)
	}
	return out, nil
}

func listKeys(n *node) ([]kvs.KeyInfo, error) {
	l, ok := n.store.(kvs.Lister)
	if !ok {
		return nil, fmt.Errorf("shardkvs: node %s cannot enumerate keys", n.id)
	}
	return l.AllKeys()
}

var (
	_ kvs.Store   = (*Ring)(nil)
	_ kvs.Lister  = (*Ring)(nil)
	_ kvs.Batcher = (*Ring)(nil)
)
