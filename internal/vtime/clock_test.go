package vtime

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRealClock(t *testing.T) {
	var c Clock = Real{}
	t0 := c.Now()
	c.Sleep(time.Millisecond)
	if !c.Now().After(t0) {
		t.Fatal("real clock did not advance")
	}
}

func TestVirtualSleepWakesByDeadline(t *testing.T) {
	v := NewVirtual()
	woke := make([]atomic.Bool, 3)
	var wg sync.WaitGroup
	for i, d := range []time.Duration{30 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond} {
		wg.Add(1)
		go func(i int, d time.Duration) {
			defer wg.Done()
			v.Sleep(d)
			woke[i].Store(true)
		}(i, d)
	}
	for v.Pending() != 3 {
		time.Sleep(time.Millisecond)
	}
	// Stepped advances: each step releases exactly the sleepers whose
	// deadlines have passed.
	v.Advance(15 * time.Millisecond)
	waitTrue(t, &woke[1])
	if woke[0].Load() || woke[2].Load() {
		t.Fatal("later sleepers woke early")
	}
	v.Advance(10 * time.Millisecond)
	waitTrue(t, &woke[2])
	if woke[0].Load() {
		t.Fatal("latest sleeper woke early")
	}
	v.Advance(10 * time.Millisecond)
	waitTrue(t, &woke[0])
	wg.Wait()
}

func waitTrue(t *testing.T, b *atomic.Bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !b.Load() {
		if time.Now().After(deadline) {
			t.Fatal("sleeper never woke")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestVirtualSleepZeroReturnsImmediately(t *testing.T) {
	v := NewVirtual()
	done := make(chan struct{})
	go func() {
		v.Sleep(0)
		v.Sleep(-time.Second)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("zero sleep blocked")
	}
}

func TestVirtualAdvancePartial(t *testing.T) {
	v := NewVirtual()
	var woke atomic.Bool
	ready := make(chan struct{})
	go func() {
		close(ready)
		v.Sleep(100 * time.Millisecond)
		woke.Store(true)
	}()
	<-ready
	for v.Pending() != 1 {
		time.Sleep(time.Millisecond)
	}
	v.Advance(50 * time.Millisecond)
	time.Sleep(5 * time.Millisecond)
	if woke.Load() {
		t.Fatal("woke before deadline")
	}
	v.Advance(60 * time.Millisecond)
	for !woke.Load() {
		time.Sleep(time.Millisecond)
	}
}

func TestVirtualNowMonotonicUnderAdvance(t *testing.T) {
	v := NewVirtual()
	t0 := v.Now()
	v.Advance(time.Minute)
	if got := v.Now().Sub(t0); got != time.Minute {
		t.Fatalf("advanced %v", got)
	}
	v.AdvanceTo(t0) // going backwards is a no-op
	if v.Now().Sub(t0) != time.Minute {
		t.Fatal("AdvanceTo moved time backwards")
	}
}

func TestRunUntilIdle(t *testing.T) {
	v := NewVirtual()
	var count atomic.Int32
	var wg sync.WaitGroup
	for i := 1; i <= 5; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v.Sleep(time.Duration(i) * time.Second)
			count.Add(1)
		}(i)
	}
	for v.Pending() != 5 {
		time.Sleep(time.Millisecond)
	}
	v.RunUntilIdle(func() { time.Sleep(time.Millisecond) })
	wg.Wait()
	if count.Load() != 5 {
		t.Fatalf("woke %d of 5", count.Load())
	}
}

func TestNextDeadline(t *testing.T) {
	v := NewVirtual()
	if _, ok := v.NextDeadline(); ok {
		t.Fatal("deadline with no sleepers")
	}
	go v.Sleep(time.Hour)
	for v.Pending() != 1 {
		time.Sleep(time.Millisecond)
	}
	d, ok := v.NextDeadline()
	if !ok || d.Sub(v.Now()) != time.Hour {
		t.Fatalf("deadline = %v ok=%v", d, ok)
	}
	v.Advance(2 * time.Hour)
}
