package baseline

import (
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"faasm.dev/faasm/internal/hostapi"
	"faasm.dev/faasm/internal/kvs"
	"faasm.dev/faasm/internal/vtime"
)

// fastCfg keeps tests quick: a tiny cold start on a fast-scaled clock.
func fastCfg(store kvs.Store) Config {
	return Config{
		Host:      "h1",
		Store:     store,
		Clock:     vtime.NewScaled(1000),
		ColdStart: 100 * time.Millisecond,
	}
}

func TestExecutePortableGuest(t *testing.T) {
	p := New(fastCfg(nil))
	p.Register("echo", func(api hostapi.API) (int32, error) {
		api.WriteOutput(append([]byte("c:"), api.Input()...))
		return 0, nil
	})
	out, ret, err := p.Call("echo", []byte("x"))
	if err != nil || ret != 0 || string(out) != "c:x" {
		t.Fatalf("call: %q %d %v", out, ret, err)
	}
	if p.ColdStarts.Value() != 1 {
		t.Fatal("no cold start counted")
	}
}

func TestColdStartCostAndWarmReuse(t *testing.T) {
	clock := vtime.NewScaled(1000)
	p := New(Config{Host: "h", Clock: clock, ColdStart: time.Second})
	p.Register("f", func(api hostapi.API) (int32, error) { return 0, nil })
	start := clock.Now()
	p.Call("f", nil)
	coldDur := clock.Now().Sub(start)
	if coldDur < time.Second {
		t.Fatalf("cold start took %v on the experiment clock", coldDur)
	}
	start = clock.Now()
	p.Call("f", nil)
	warmDur := clock.Now().Sub(start)
	if warmDur > coldDur/2 {
		t.Fatalf("warm call (%v) not much faster than cold (%v)", warmDur, coldDur)
	}
	if p.WarmStarts.Value() != 1 {
		t.Fatal("warm start not counted")
	}
}

func TestPrivateStateCopiesPerContainer(t *testing.T) {
	// Two containers of the same function each fetch their own copy: the
	// duplication of the data-shipping architecture.
	store := kvs.NewEngine()
	store.Set("data", make([]byte, 1000))
	p := New(fastCfg(store))
	block := make(chan struct{})
	started := make(chan struct{}, 2)
	p.Register("f", func(api hostapi.API) (int32, error) {
		if _, err := api.StateView("data", -1); err != nil {
			return 1, err
		}
		started <- struct{}{}
		<-block
		return 0, nil
	})
	var ids []uint64
	for i := 0; i < 2; i++ {
		id, err := p.Invoke("f", nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	<-started
	<-started
	close(block)
	for _, id := range ids {
		if _, err := p.Await(id); err != nil {
			t.Fatal(err)
		}
	}
	// Two containers, each with a 1000-byte private copy + 8 MB overhead.
	wantMem := 2 * (DefaultContainerOverhead + 1000)
	if got := p.MemUsed(); got != wantMem {
		t.Fatalf("mem used = %d, want %d (duplicated copies)", got, wantMem)
	}
}

func TestStateWritesInvisibleWithoutPush(t *testing.T) {
	store := kvs.NewEngine()
	store.Set("v", []byte{1})
	p := New(fastCfg(store))
	p.Register("w", func(api hostapi.API) (int32, error) {
		buf, err := api.StateView("v", -1)
		if err != nil {
			return 1, err
		}
		buf[0] = 42
		return 0, nil
	})
	p.Call("w", nil)
	g, _ := store.Get("v")
	if g[0] != 1 {
		t.Fatal("container write leaked without push")
	}
	p.Register("wp", func(api hostapi.API) (int32, error) {
		buf, _ := api.StateView("v", -1)
		buf[0] = 42
		return 0, api.StatePush("v")
	})
	p.Call("wp", nil)
	g, _ = store.Get("v")
	if g[0] != 42 {
		t.Fatal("push did not reach the global tier")
	}
}

func TestOOMWhenHostMemoryExhausted(t *testing.T) {
	// Host memory fits two containers; the third concurrent cold start
	// fails — the Fig 6a Knative failure mode.
	p := New(Config{
		Host:         "h",
		Clock:        vtime.NewScaled(1000),
		ColdStart:    10 * time.Millisecond,
		HostMemBytes: 2*DefaultContainerOverhead + 1000,
	})
	block := make(chan struct{})
	started := make(chan struct{}, 2)
	p.Register("f", func(api hostapi.API) (int32, error) {
		started <- struct{}{}
		<-block
		return 0, nil
	})
	id1, _ := p.Invoke("f", nil)
	id2, _ := p.Invoke("f", nil)
	<-started
	<-started
	_, _, err := p.Execute("f", nil)
	if !errors.Is(err, ErrOOM) {
		t.Fatalf("expected OOM, got %v", err)
	}
	if p.OOMFailures.Value() != 1 {
		t.Fatal("OOM not counted")
	}
	close(block)
	p.Await(id1)
	p.Await(id2)
}

func TestChainingThroughPlatform(t *testing.T) {
	store := kvs.NewEngine()
	p := New(fastCfg(store))
	p.Register("add", func(api hostapi.API) (int32, error) {
		n := binary.LittleEndian.Uint32(api.Input())
		var out [4]byte
		binary.LittleEndian.PutUint32(out[:], n+1)
		api.WriteOutput(out[:])
		return 0, nil
	})
	p.Register("driver", func(api hostapi.API) (int32, error) {
		var in [4]byte
		binary.LittleEndian.PutUint32(in[:], 41)
		id, err := api.Chain("add", in[:])
		if err != nil {
			return 1, err
		}
		if _, err := api.Await(id); err != nil {
			return 2, err
		}
		out, err := api.OutputOf(id)
		if err != nil {
			return 3, err
		}
		api.WriteOutput(out)
		return 0, nil
	})
	out, ret, err := p.Call("driver", nil)
	if err != nil || ret != 0 {
		t.Fatalf("chain: %d %v", ret, err)
	}
	if binary.LittleEndian.Uint32(out) != 42 {
		t.Fatalf("chained result = %d", binary.LittleEndian.Uint32(out))
	}
}

func TestAppendAndGlobalLocks(t *testing.T) {
	store := kvs.NewEngine()
	p := New(fastCfg(store))
	p.Register("f", func(api hostapi.API) (int32, error) {
		if err := api.LockGlobal("k", true); err != nil {
			return 1, err
		}
		api.StateAppend("k", []byte("z"))
		if err := api.UnlockGlobal("k"); err != nil {
			return 2, err
		}
		return 0, nil
	})
	if _, ret, err := p.Call("f", nil); err != nil || ret != 0 {
		t.Fatalf("locks: %d %v", ret, err)
	}
	g, _ := store.Get("k")
	if string(g) != "z" {
		t.Fatalf("append = %q", g)
	}
}

func TestGuestPanicContained(t *testing.T) {
	p := New(fastCfg(nil))
	p.Register("boom", func(api hostapi.API) (int32, error) { panic("bug") })
	_, ret, err := p.Call("boom", nil)
	if err == nil || ret != -1 {
		t.Fatalf("panic: %d %v", ret, err)
	}
	// Platform still serves.
	p.Register("ok", func(api hostapi.API) (int32, error) { return 0, nil })
	if _, ret, err := p.Call("ok", nil); err != nil || ret != 0 {
		t.Fatal("platform dead after guest panic")
	}
}

func TestBillableMemoryIncludesPrivateCopies(t *testing.T) {
	store := kvs.NewEngine()
	store.Set("big", make([]byte, 1<<20))
	clock := vtime.NewScaled(1000)
	cfg := fastCfg(store)
	cfg.Clock = clock
	p := New(cfg)
	p.Register("f", func(api hostapi.API) (int32, error) {
		api.StateView("big", -1)
		return 0, nil
	})
	p.Call("f", nil)
	if p.Billable.GBSeconds() <= 0 {
		t.Fatal("no billable memory recorded")
	}
}

func TestUnknownFunction(t *testing.T) {
	p := New(fastCfg(nil))
	if _, err := p.Invoke("ghost", nil); err == nil {
		t.Fatal("unknown function invoked")
	}
	if _, _, err := p.Execute("ghost", nil); err == nil {
		t.Fatal("unknown function executed")
	}
}
