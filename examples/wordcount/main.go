// Wordcount: map/reduce with shared state — mappers read document chunks
// from the read-global filesystem, emit partial counts into the append-only
// results log, and a reducer folds them, all through chained functions.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"sort"
	"strings"

	"faasm.dev/faasm"
	"faasm.dev/faasm/ddo"
)

var documents = map[string][]byte{
	"docs/a.txt": []byte("the quick brown fox jumps over the lazy dog"),
	"docs/b.txt": []byte("the dog barks and the fox runs away over the hill"),
	"docs/c.txt": []byte("a lazy afternoon the dog sleeps the fox dreams"),
}

func main() {
	rt := faasm.NewRuntime(faasm.Config{Host: "wordcount", Files: documents})
	defer rt.Shutdown()

	// Mapper: read one document through the Faaslet filesystem, count its
	// words, append the partial result to the shared log.
	rt.RegisterNative("map", func(ctx *faasm.Ctx) (int32, error) {
		doc, err := ctx.FS().ReadFile(string(ctx.Input()))
		if err != nil {
			return 1, err
		}
		counts := map[string]int{}
		for _, w := range strings.Fields(string(doc)) {
			counts[w]++
		}
		blob, err := json.Marshal(counts)
		if err != nil {
			return 2, err
		}
		api := hostAPIOf(ctx)
		return 0, ddo.OpenList(api, "partials").Append(blob)
	})

	// Reducer: fold every partial count.
	rt.RegisterGuest("reduce", func(api faasm.API) (int32, error) {
		parts, err := ddo.OpenList(api, "partials").All()
		if err != nil {
			return 1, err
		}
		total := map[string]int{}
		for _, p := range parts {
			var counts map[string]int
			if err := json.Unmarshal(p, &counts); err != nil {
				return 2, err
			}
			for w, c := range counts {
				total[w] += c
			}
		}
		blob, err := json.Marshal(total)
		if err != nil {
			return 3, err
		}
		api.WriteOutput(blob)
		return 0, nil
	})

	// Driver: chain one mapper per document, then the reducer.
	rt.RegisterGuest("driver", func(api faasm.API) (int32, error) {
		var ids []uint64
		for path := range documents {
			id, err := api.Chain("map", []byte(path))
			if err != nil {
				return 1, err
			}
			ids = append(ids, id)
		}
		for _, id := range ids {
			if ret, err := api.Await(id); err != nil || ret != 0 {
				return 2, fmt.Errorf("mapper failed: %d %v", ret, err)
			}
		}
		id, err := api.Chain("reduce", nil)
		if err != nil {
			return 3, err
		}
		if _, err := api.Await(id); err != nil {
			return 4, err
		}
		out, err := api.OutputOf(id)
		if err != nil {
			return 5, err
		}
		api.WriteOutput(out)
		return 0, nil
	})

	out, ret, err := rt.Call("driver", nil)
	if err != nil || ret != 0 {
		log.Fatalf("wordcount failed: ret=%d err=%v", ret, err)
	}
	var counts map[string]int
	json.Unmarshal(out, &counts)
	type wc struct {
		w string
		c int
	}
	var sorted []wc
	for w, c := range counts {
		sorted = append(sorted, wc{w, c})
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].c != sorted[j].c {
			return sorted[i].c > sorted[j].c
		}
		return sorted[i].w < sorted[j].w
	})
	fmt.Printf("%d documents, %d distinct words; top 5:\n", len(documents), len(counts))
	for i := 0; i < 5 && i < len(sorted); i++ {
		fmt.Printf("  %-10s %d\n", sorted[i].w, sorted[i].c)
	}
}

// hostAPIOf adapts a native-guest ctx to the portable API for DDO use.
func hostAPIOf(ctx *faasm.Ctx) faasm.API {
	return faasm.WrapCtx(ctx)
}
