package sched

import (
	"testing"

	"faasm.dev/faasm/internal/kvs"
)

func TestColdStartAdvertisesWarm(t *testing.T) {
	store := kvs.NewEngine()
	s := New("host-1", store, 10)
	d, err := s.Schedule("fn")
	if err != nil {
		t.Fatal(err)
	}
	if d.Placement != PlaceLocalCold {
		t.Fatalf("first call placement = %v", d.Placement)
	}
	hosts, _ := s.WarmHosts("fn")
	if len(hosts) != 1 || hosts[0] != "host-1" {
		t.Fatalf("warm set = %v", hosts)
	}
	if s.Stats.ColdStart != 1 {
		t.Fatal("cold start not counted")
	}
}

func TestWarmLocalPreferred(t *testing.T) {
	store := kvs.NewEngine()
	s := New("host-1", store, 10)
	s.Schedule("fn") // cold
	s.NoteWarm("fn", 1)
	d, _ := s.Schedule("fn")
	if d.Placement != PlaceLocalWarm {
		t.Fatalf("warm placement = %v", d.Placement)
	}
}

func TestForwardToWarmPeer(t *testing.T) {
	store := kvs.NewEngine()
	a := New("host-a", store, 10)
	b := New("host-b", store, 10)
	// Host B is warm for fn.
	b.Schedule("fn")
	b.NoteWarm("fn", 1)
	// Host A has nothing: it must share with B rather than cold-start.
	d, err := a.Schedule("fn")
	if err != nil {
		t.Fatal(err)
	}
	if d.Placement != PlaceForward || d.TargetHost != "host-b" {
		t.Fatalf("decision = %+v", d)
	}
	if a.Stats.Forwarded != 1 {
		t.Fatal("forward not counted")
	}
}

func TestForwardRoundRobinAcrossPeers(t *testing.T) {
	store := kvs.NewEngine()
	for _, h := range []string{"host-b", "host-c"} {
		p := New(h, store, 10)
		p.Schedule("fn")
		p.NoteWarm("fn", 1)
	}
	a := New("host-a", store, 10)
	seen := map[string]int{}
	for i := 0; i < 10; i++ {
		d, _ := a.Schedule("fn")
		if d.Placement != PlaceForward {
			t.Fatalf("placement = %v", d.Placement)
		}
		seen[d.TargetHost]++
	}
	if seen["host-b"] != 5 || seen["host-c"] != 5 {
		t.Fatalf("round robin skew: %v", seen)
	}
}

func TestAtCapacitySharesInsteadOfQueueing(t *testing.T) {
	store := kvs.NewEngine()
	a := New("host-a", store, 1)
	b := New("host-b", store, 10)
	a.Schedule("fn")
	a.NoteWarm("fn", 1)
	b.Schedule("fn")
	b.NoteWarm("fn", 1)
	// Saturate host A.
	a.Begin()
	d, _ := a.Schedule("fn")
	if d.Placement != PlaceForward || d.TargetHost != "host-b" {
		t.Fatalf("saturated placement = %+v", d)
	}
	a.End()
	// With capacity back, it prefers local again.
	d, _ = a.Schedule("fn")
	if d.Placement != PlaceLocalWarm {
		t.Fatalf("freed placement = %v", d.Placement)
	}
}

func TestSaturatedWithNoPeersRunsLocally(t *testing.T) {
	store := kvs.NewEngine()
	a := New("host-a", store, 1)
	a.Schedule("fn")
	a.NoteWarm("fn", 1)
	a.Begin()
	d, _ := a.Schedule("fn")
	if d.Placement != PlaceLocalWarm {
		t.Fatalf("lone saturated host placement = %v", d.Placement)
	}
}

func TestEvictionClearsWarmSet(t *testing.T) {
	store := kvs.NewEngine()
	a := New("host-a", store, 10)
	a.Schedule("fn")
	a.NoteWarm("fn", 2)
	a.NoteEvicted("fn", 1)
	hosts, _ := a.WarmHosts("fn")
	if len(hosts) != 1 {
		t.Fatalf("partial evict removed warm entry: %v", hosts)
	}
	a.NoteEvicted("fn", 1)
	hosts, _ = a.WarmHosts("fn")
	if len(hosts) != 0 {
		t.Fatalf("full evict left warm entry: %v", hosts)
	}
	// A peer now cold-starts rather than forwarding to a dead host.
	b := New("host-b", store, 10)
	d, _ := b.Schedule("fn")
	if d.Placement != PlaceLocalCold {
		t.Fatalf("post-evict placement = %v", d.Placement)
	}
}

func TestInflightAccounting(t *testing.T) {
	s := New("h", kvs.NewEngine(), 4)
	s.Begin()
	s.Begin()
	if s.Inflight() != 2 {
		t.Fatalf("inflight = %d", s.Inflight())
	}
	s.End()
	s.End()
	s.End() // extra End clamps at zero
	if s.Inflight() != 0 {
		t.Fatalf("inflight after ends = %d", s.Inflight())
	}
}
