// Package kernels reproduces the Polybench/C methodology of §6.4 (Fig 9a):
// a suite of numerical kernels, each implemented twice from one
// specification — in FC (compiled by the fcc toolchain and executed in the
// wavm sandbox, the paper's "compiled to WebAssembly" path) and natively in
// Go. The benchmark harness reports sandbox/native runtime ratios; both
// versions return a floating-point checksum so the harness can verify the
// kernels compute identical results before timing them.
package kernels

import (
	"fmt"
	"math"

	"faasm.dev/faasm/internal/fcc"
	"faasm.dev/faasm/internal/wavm"
)

// Kernel is one benchmark: FC source plus its native twin.
type Kernel struct {
	Name   string
	N      int
	FC     string
	Native func(n int) float64
}

// seedVal mirrors the deterministic initialiser used in every kernel:
// a[i] = frac(i*i*0.37 + i*0.11).
func seedVal(i int) float64 {
	x := float64(i)*float64(i)*0.37 + float64(i)*0.11
	return x - math.Floor(x)
}

// fcPrelude is shared FC helper code: the deterministic initialiser.
const fcPrelude = `
func seedval(i i32) f64 {
	var x f64 = f64(i)*f64(i)*0.37 + f64(i)*0.11;
	return x - floor(x);
}
func fill(a *f64, n i32) {
	for (var i i32 = 0; i < n; i = i + 1) {
		a[i] = seedval(i);
	}
}
`

// All returns the kernel suite sized for benchmarking; small enough that
// the full suite runs in seconds under the interpreter.
func All() []Kernel {
	return []Kernel{
		k2mm(48), k3mm(40), atax(256), bicg(256), cholesky(64),
		covariance(48), durbin(256), floydWarshall(48), jacobi1d(512),
		jacobi2d(40), lu(56), mvt(192), seidel2d(40), trisolv(256),
	}
}

// ByName finds a kernel.
func ByName(name string) (Kernel, bool) {
	for _, k := range All() {
		if k.Name == name {
			return k, true
		}
	}
	return Kernel{}, false
}

// CompileKernel builds the sandboxed module for a kernel.
func CompileKernel(k Kernel) (*wavm.Module, error) {
	mod, err := fcc.CompileAndValidate(k.FC)
	if err != nil {
		return nil, fmt.Errorf("kernels: %s: %w", k.Name, err)
	}
	return mod, nil
}

// RunWavm executes the kernel in the sandbox, returning its checksum and
// the interpreter steps executed.
func RunWavm(k Kernel) (float64, uint64, error) {
	mod, err := CompileKernel(k)
	if err != nil {
		return 0, 0, err
	}
	inst, err := wavm.Instantiate(mod, nil)
	if err != nil {
		return 0, 0, err
	}
	res, err := inst.Call("main")
	if err != nil {
		return 0, 0, fmt.Errorf("kernels: %s: %w", k.Name, err)
	}
	return wavm.DecodeF64(res[0]), inst.Steps, nil
}

// --- kernel definitions ---

func k2mm(n int) Kernel {
	fc := fmt.Sprintf(`#memory 16
%s
func main() f64 {
	var n i32 = %d;
	var A *f64 = alloc_f64(n*n); var B *f64 = alloc_f64(n*n);
	var C *f64 = alloc_f64(n*n); var T *f64 = alloc_f64(n*n);
	var D *f64 = alloc_f64(n*n);
	fill(A, n*n); fill(B, n*n); fill(C, n*n);
	for (var i i32 = 0; i < n; i = i + 1) {
		for (var j i32 = 0; j < n; j = j + 1) {
			var acc f64;
			for (var k i32 = 0; k < n; k = k + 1) {
				acc = acc + A[i*n+k] * B[k*n+j];
			}
			T[i*n+j] = acc;
		}
	}
	for (var i i32 = 0; i < n; i = i + 1) {
		for (var j i32 = 0; j < n; j = j + 1) {
			var acc f64;
			for (var k i32 = 0; k < n; k = k + 1) {
				acc = acc + T[i*n+k] * C[k*n+j];
			}
			D[i*n+j] = acc;
		}
	}
	var s f64;
	for (var i i32 = 0; i < n*n; i = i + 1) { s = s + D[i]; }
	return s;
}`, fcPrelude, n)
	native := func(n int) float64 {
		A, B, C := fillMat(n*n, 0), fillMat(n*n, 0), fillMat(n*n, 0)
		T, D := make([]float64, n*n), make([]float64, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var acc float64
				for k := 0; k < n; k++ {
					acc += A[i*n+k] * B[k*n+j]
				}
				T[i*n+j] = acc
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var acc float64
				for k := 0; k < n; k++ {
					acc += T[i*n+k] * C[k*n+j]
				}
				D[i*n+j] = acc
			}
		}
		return sum(D)
	}
	return Kernel{Name: "2mm", N: n, FC: fc, Native: native}
}

func k3mm(n int) Kernel {
	fc := fmt.Sprintf(`#memory 16
%s
func mm(n i32, A *f64, B *f64, C *f64) {
	for (var i i32 = 0; i < n; i = i + 1) {
		for (var j i32 = 0; j < n; j = j + 1) {
			var acc f64;
			for (var k i32 = 0; k < n; k = k + 1) {
				acc = acc + A[i*n+k] * B[k*n+j];
			}
			C[i*n+j] = acc;
		}
	}
}
func main() f64 {
	var n i32 = %d;
	var A *f64 = alloc_f64(n*n); var B *f64 = alloc_f64(n*n);
	var C *f64 = alloc_f64(n*n); var D *f64 = alloc_f64(n*n);
	var E *f64 = alloc_f64(n*n); var F *f64 = alloc_f64(n*n);
	var G *f64 = alloc_f64(n*n);
	fill(A, n*n); fill(B, n*n); fill(C, n*n); fill(D, n*n);
	mm(n, A, B, E);
	mm(n, C, D, F);
	mm(n, E, F, G);
	var s f64;
	for (var i i32 = 0; i < n*n; i = i + 1) { s = s + G[i]; }
	return s;
}`, fcPrelude, n)
	native := func(n int) float64 {
		mm := func(A, B, C []float64) {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					var acc float64
					for k := 0; k < n; k++ {
						acc += A[i*n+k] * B[k*n+j]
					}
					C[i*n+j] = acc
				}
			}
		}
		A, B, C, D := fillMat(n*n, 0), fillMat(n*n, 0), fillMat(n*n, 0), fillMat(n*n, 0)
		E, F, G := make([]float64, n*n), make([]float64, n*n), make([]float64, n*n)
		mm(A, B, E)
		mm(C, D, F)
		mm(E, F, G)
		return sum(G)
	}
	return Kernel{Name: "3mm", N: n, FC: fc, Native: native}
}

func atax(n int) Kernel {
	fc := fmt.Sprintf(`#memory 32
%s
func main() f64 {
	var n i32 = %d;
	var A *f64 = alloc_f64(n*n);
	var x *f64 = alloc_f64(n);
	var t *f64 = alloc_f64(n);
	var y *f64 = alloc_f64(n);
	fill(A, n*n); fill(x, n);
	for (var i i32 = 0; i < n; i = i + 1) {
		var acc f64;
		for (var j i32 = 0; j < n; j = j + 1) {
			acc = acc + A[i*n+j] * x[j];
		}
		t[i] = acc;
	}
	for (var j i32 = 0; j < n; j = j + 1) {
		var acc f64;
		for (var i i32 = 0; i < n; i = i + 1) {
			acc = acc + A[i*n+j] * t[i];
		}
		y[j] = acc;
	}
	var s f64;
	for (var i i32 = 0; i < n; i = i + 1) { s = s + y[i]; }
	return s;
}`, fcPrelude, n)
	native := func(n int) float64 {
		A, x := fillMat(n*n, 0), fillMat(n, 0)
		t, y := make([]float64, n), make([]float64, n)
		for i := 0; i < n; i++ {
			var acc float64
			for j := 0; j < n; j++ {
				acc += A[i*n+j] * x[j]
			}
			t[i] = acc
		}
		for j := 0; j < n; j++ {
			var acc float64
			for i := 0; i < n; i++ {
				acc += A[i*n+j] * t[i]
			}
			y[j] = acc
		}
		return sum(y)
	}
	return Kernel{Name: "atax", N: n, FC: fc, Native: native}
}

func bicg(n int) Kernel {
	fc := fmt.Sprintf(`#memory 32
%s
func main() f64 {
	var n i32 = %d;
	var A *f64 = alloc_f64(n*n);
	var p *f64 = alloc_f64(n);
	var r *f64 = alloc_f64(n);
	var q *f64 = alloc_f64(n);
	var s_ *f64 = alloc_f64(n);
	fill(A, n*n); fill(p, n); fill(r, n);
	for (var i i32 = 0; i < n; i = i + 1) {
		var acc f64;
		for (var j i32 = 0; j < n; j = j + 1) {
			s_[j] = s_[j] + r[i] * A[i*n+j];
			acc = acc + A[i*n+j] * p[j];
		}
		q[i] = acc;
	}
	var out f64;
	for (var i i32 = 0; i < n; i = i + 1) { out = out + q[i] + s_[i]; }
	return out;
}`, fcPrelude, n)
	native := func(n int) float64 {
		A, p, r := fillMat(n*n, 0), fillMat(n, 0), fillMat(n, 0)
		q, s := make([]float64, n), make([]float64, n)
		for i := 0; i < n; i++ {
			var acc float64
			for j := 0; j < n; j++ {
				s[j] += r[i] * A[i*n+j]
				acc += A[i*n+j] * p[j]
			}
			q[i] = acc
		}
		return sum(q) + sum(s)
	}
	return Kernel{Name: "bicg", N: n, FC: fc, Native: native}
}

func cholesky(n int) Kernel {
	fc := fmt.Sprintf(`#memory 16
%s
func main() f64 {
	var n i32 = %d;
	var A *f64 = alloc_f64(n*n);
	// Symmetric positive definite: A = I*n + small symmetric noise.
	for (var i i32 = 0; i < n; i = i + 1) {
		for (var j i32 = 0; j < n; j = j + 1) {
			var v f64 = seedval(i*n+j) * 0.01;
			if (i == j) { v = v + f64(n); }
			A[i*n+j] = v;
		}
	}
	for (var i i32 = 0; i < n; i = i + 1) {
		for (var j i32 = 0; j < i; j = j + 1) {
			var acc f64 = A[i*n+j];
			for (var k i32 = 0; k < j; k = k + 1) {
				acc = acc - A[i*n+k] * A[j*n+k];
			}
			A[i*n+j] = acc / A[j*n+j];
		}
		var acc f64 = A[i*n+i];
		for (var k i32 = 0; k < i; k = k + 1) {
			acc = acc - A[i*n+k] * A[i*n+k];
		}
		A[i*n+i] = sqrt(acc);
	}
	var s f64;
	for (var i i32 = 0; i < n; i = i + 1) { s = s + A[i*n+i]; }
	return s;
}`, fcPrelude, n)
	native := func(n int) float64 {
		A := make([]float64, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				v := seedVal(i*n+j) * 0.01
				if i == j {
					v += float64(n)
				}
				A[i*n+j] = v
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < i; j++ {
				acc := A[i*n+j]
				for k := 0; k < j; k++ {
					acc -= A[i*n+k] * A[j*n+k]
				}
				A[i*n+j] = acc / A[j*n+j]
			}
			acc := A[i*n+i]
			for k := 0; k < i; k++ {
				acc -= A[i*n+k] * A[i*n+k]
			}
			A[i*n+i] = math.Sqrt(acc)
		}
		var s float64
		for i := 0; i < n; i++ {
			s += A[i*n+i]
		}
		return s
	}
	return Kernel{Name: "cholesky", N: n, FC: fc, Native: native}
}

func covariance(n int) Kernel {
	fc := fmt.Sprintf(`#memory 16
%s
func main() f64 {
	var n i32 = %d;
	var data *f64 = alloc_f64(n*n);
	var mean *f64 = alloc_f64(n);
	var cov *f64 = alloc_f64(n*n);
	fill(data, n*n);
	for (var j i32 = 0; j < n; j = j + 1) {
		var acc f64;
		for (var i i32 = 0; i < n; i = i + 1) { acc = acc + data[i*n+j]; }
		mean[j] = acc / f64(n);
	}
	for (var i i32 = 0; i < n; i = i + 1) {
		for (var j i32 = 0; j < n; j = j + 1) {
			data[i*n+j] = data[i*n+j] - mean[j];
		}
	}
	for (var i i32 = 0; i < n; i = i + 1) {
		for (var j i32 = i; j < n; j = j + 1) {
			var acc f64;
			for (var k i32 = 0; k < n; k = k + 1) {
				acc = acc + data[k*n+i] * data[k*n+j];
			}
			cov[i*n+j] = acc / f64(n-1);
			cov[j*n+i] = cov[i*n+j];
		}
	}
	var s f64;
	for (var i i32 = 0; i < n*n; i = i + 1) { s = s + cov[i]; }
	return s;
}`, fcPrelude, n)
	native := func(n int) float64 {
		data := fillMat(n*n, 0)
		mean := make([]float64, n)
		cov := make([]float64, n*n)
		for j := 0; j < n; j++ {
			var acc float64
			for i := 0; i < n; i++ {
				acc += data[i*n+j]
			}
			mean[j] = acc / float64(n)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				data[i*n+j] -= mean[j]
			}
		}
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				var acc float64
				for k := 0; k < n; k++ {
					acc += data[k*n+i] * data[k*n+j]
				}
				cov[i*n+j] = acc / float64(n-1)
				cov[j*n+i] = cov[i*n+j]
			}
		}
		return sum(cov)
	}
	return Kernel{Name: "covariance", N: n, FC: fc, Native: native}
}

func durbin(n int) Kernel {
	fc := fmt.Sprintf(`#memory 16
%s
func main() f64 {
	var n i32 = %d;
	var r *f64 = alloc_f64(n);
	var y *f64 = alloc_f64(n);
	var z *f64 = alloc_f64(n);
	for (var i i32 = 0; i < n; i = i + 1) { r[i] = seedval(i) * 0.5; }
	y[0] = 0.0 - r[0];
	var beta f64 = 1.0;
	var alpha f64 = 0.0 - r[0];
	for (var k i32 = 1; k < n; k = k + 1) {
		beta = (1.0 - alpha*alpha) * beta;
		var acc f64;
		for (var i i32 = 0; i < k; i = i + 1) {
			acc = acc + r[k-i-1] * y[i];
		}
		alpha = 0.0 - (r[k] + acc) / beta;
		for (var i i32 = 0; i < k; i = i + 1) {
			z[i] = y[i] + alpha * y[k-i-1];
		}
		for (var i i32 = 0; i < k; i = i + 1) { y[i] = z[i]; }
		y[k] = alpha;
	}
	var s f64;
	for (var i i32 = 0; i < n; i = i + 1) { s = s + y[i]; }
	return s;
}`, fcPrelude, n)
	native := func(n int) float64 {
		r := make([]float64, n)
		for i := range r {
			r[i] = seedVal(i) * 0.5
		}
		y, z := make([]float64, n), make([]float64, n)
		y[0] = -r[0]
		beta, alpha := 1.0, -r[0]
		for k := 1; k < n; k++ {
			beta = (1 - alpha*alpha) * beta
			var acc float64
			for i := 0; i < k; i++ {
				acc += r[k-i-1] * y[i]
			}
			alpha = -(r[k] + acc) / beta
			for i := 0; i < k; i++ {
				z[i] = y[i] + alpha*y[k-i-1]
			}
			copy(y[:k], z[:k])
			y[k] = alpha
		}
		return sum(y)
	}
	return Kernel{Name: "durbin", N: n, FC: fc, Native: native}
}

func floydWarshall(n int) Kernel {
	fc := fmt.Sprintf(`#memory 16
%s
func main() f64 {
	var n i32 = %d;
	var path *f64 = alloc_f64(n*n);
	for (var i i32 = 0; i < n*n; i = i + 1) {
		path[i] = seedval(i) * 100.0 + 1.0;
	}
	for (var i i32 = 0; i < n; i = i + 1) { path[i*n+i] = 0.0; }
	for (var k i32 = 0; k < n; k = k + 1) {
		for (var i i32 = 0; i < n; i = i + 1) {
			for (var j i32 = 0; j < n; j = j + 1) {
				var via f64 = path[i*n+k] + path[k*n+j];
				if (via < path[i*n+j]) { path[i*n+j] = via; }
			}
		}
	}
	var s f64;
	for (var i i32 = 0; i < n*n; i = i + 1) { s = s + path[i]; }
	return s;
}`, fcPrelude, n)
	native := func(n int) float64 {
		path := make([]float64, n*n)
		for i := range path {
			path[i] = seedVal(i)*100 + 1
		}
		for i := 0; i < n; i++ {
			path[i*n+i] = 0
		}
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if via := path[i*n+k] + path[k*n+j]; via < path[i*n+j] {
						path[i*n+j] = via
					}
				}
			}
		}
		return sum(path)
	}
	return Kernel{Name: "floyd-warshall", N: n, FC: fc, Native: native}
}

func jacobi1d(n int) Kernel {
	const steps = 100
	fc := fmt.Sprintf(`#memory 16
%s
func main() f64 {
	var n i32 = %d;
	var A *f64 = alloc_f64(n);
	var B *f64 = alloc_f64(n);
	fill(A, n);
	for (var t i32 = 0; t < %d; t = t + 1) {
		for (var i i32 = 1; i < n-1; i = i + 1) {
			B[i] = 0.33333 * (A[i-1] + A[i] + A[i+1]);
		}
		for (var i i32 = 1; i < n-1; i = i + 1) { A[i] = B[i]; }
	}
	var s f64;
	for (var i i32 = 0; i < n; i = i + 1) { s = s + A[i]; }
	return s;
}`, fcPrelude, n, steps)
	native := func(n int) float64 {
		A, B := fillMat(n, 0), make([]float64, n)
		for t := 0; t < steps; t++ {
			for i := 1; i < n-1; i++ {
				B[i] = 0.33333 * (A[i-1] + A[i] + A[i+1])
			}
			copy(A[1:n-1], B[1:n-1])
		}
		return sum(A)
	}
	return Kernel{Name: "jacobi-1d", N: n, FC: fc, Native: native}
}

func jacobi2d(n int) Kernel {
	const steps = 20
	fc := fmt.Sprintf(`#memory 16
%s
func main() f64 {
	var n i32 = %d;
	var A *f64 = alloc_f64(n*n);
	var B *f64 = alloc_f64(n*n);
	fill(A, n*n);
	for (var t i32 = 0; t < %d; t = t + 1) {
		for (var i i32 = 1; i < n-1; i = i + 1) {
			for (var j i32 = 1; j < n-1; j = j + 1) {
				B[i*n+j] = 0.2 * (A[i*n+j] + A[i*n+j-1] + A[i*n+j+1] + A[(i-1)*n+j] + A[(i+1)*n+j]);
			}
		}
		for (var i i32 = 1; i < n-1; i = i + 1) {
			for (var j i32 = 1; j < n-1; j = j + 1) {
				A[i*n+j] = B[i*n+j];
			}
		}
	}
	var s f64;
	for (var i i32 = 0; i < n*n; i = i + 1) { s = s + A[i]; }
	return s;
}`, fcPrelude, n, steps)
	native := func(n int) float64 {
		A, B := fillMat(n*n, 0), make([]float64, n*n)
		for t := 0; t < steps; t++ {
			for i := 1; i < n-1; i++ {
				for j := 1; j < n-1; j++ {
					B[i*n+j] = 0.2 * (A[i*n+j] + A[i*n+j-1] + A[i*n+j+1] + A[(i-1)*n+j] + A[(i+1)*n+j])
				}
			}
			for i := 1; i < n-1; i++ {
				for j := 1; j < n-1; j++ {
					A[i*n+j] = B[i*n+j]
				}
			}
		}
		return sum(A)
	}
	return Kernel{Name: "jacobi-2d", N: n, FC: fc, Native: native}
}

func lu(n int) Kernel {
	fc := fmt.Sprintf(`#memory 16
%s
func main() f64 {
	var n i32 = %d;
	var A *f64 = alloc_f64(n*n);
	for (var i i32 = 0; i < n; i = i + 1) {
		for (var j i32 = 0; j < n; j = j + 1) {
			var v f64 = seedval(i*n+j) * 0.01;
			if (i == j) { v = v + f64(n); }
			A[i*n+j] = v;
		}
	}
	for (var i i32 = 0; i < n; i = i + 1) {
		for (var j i32 = 0; j < i; j = j + 1) {
			var acc f64 = A[i*n+j];
			for (var k i32 = 0; k < j; k = k + 1) {
				acc = acc - A[i*n+k] * A[k*n+j];
			}
			A[i*n+j] = acc / A[j*n+j];
		}
		for (var j i32 = i; j < n; j = j + 1) {
			var acc f64 = A[i*n+j];
			for (var k i32 = 0; k < i; k = k + 1) {
				acc = acc - A[i*n+k] * A[k*n+j];
			}
			A[i*n+j] = acc;
		}
	}
	var s f64;
	for (var i i32 = 0; i < n*n; i = i + 1) { s = s + A[i]; }
	return s;
}`, fcPrelude, n)
	native := func(n int) float64 {
		A := make([]float64, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				v := seedVal(i*n+j) * 0.01
				if i == j {
					v += float64(n)
				}
				A[i*n+j] = v
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < i; j++ {
				acc := A[i*n+j]
				for k := 0; k < j; k++ {
					acc -= A[i*n+k] * A[k*n+j]
				}
				A[i*n+j] = acc / A[j*n+j]
			}
			for j := i; j < n; j++ {
				acc := A[i*n+j]
				for k := 0; k < i; k++ {
					acc -= A[i*n+k] * A[k*n+j]
				}
				A[i*n+j] = acc
			}
		}
		return sum(A)
	}
	return Kernel{Name: "lu", N: n, FC: fc, Native: native}
}

func mvt(n int) Kernel {
	fc := fmt.Sprintf(`#memory 32
%s
func main() f64 {
	var n i32 = %d;
	var A *f64 = alloc_f64(n*n);
	var x1 *f64 = alloc_f64(n);
	var x2 *f64 = alloc_f64(n);
	var y1 *f64 = alloc_f64(n);
	var y2 *f64 = alloc_f64(n);
	fill(A, n*n); fill(x1, n); fill(x2, n); fill(y1, n); fill(y2, n);
	for (var i i32 = 0; i < n; i = i + 1) {
		var acc f64 = x1[i];
		for (var j i32 = 0; j < n; j = j + 1) {
			acc = acc + A[i*n+j] * y1[j];
		}
		x1[i] = acc;
	}
	for (var i i32 = 0; i < n; i = i + 1) {
		var acc f64 = x2[i];
		for (var j i32 = 0; j < n; j = j + 1) {
			acc = acc + A[j*n+i] * y2[j];
		}
		x2[i] = acc;
	}
	var s f64;
	for (var i i32 = 0; i < n; i = i + 1) { s = s + x1[i] + x2[i]; }
	return s;
}`, fcPrelude, n)
	native := func(n int) float64 {
		A := fillMat(n*n, 0)
		x1, x2 := fillMat(n, 0), fillMat(n, 0)
		y1, y2 := fillMat(n, 0), fillMat(n, 0)
		for i := 0; i < n; i++ {
			acc := x1[i]
			for j := 0; j < n; j++ {
				acc += A[i*n+j] * y1[j]
			}
			x1[i] = acc
		}
		for i := 0; i < n; i++ {
			acc := x2[i]
			for j := 0; j < n; j++ {
				acc += A[j*n+i] * y2[j]
			}
			x2[i] = acc
		}
		return sum(x1) + sum(x2)
	}
	return Kernel{Name: "mvt", N: n, FC: fc, Native: native}
}

func seidel2d(n int) Kernel {
	const steps = 20
	fc := fmt.Sprintf(`#memory 16
%s
func main() f64 {
	var n i32 = %d;
	var A *f64 = alloc_f64(n*n);
	fill(A, n*n);
	for (var t i32 = 0; t < %d; t = t + 1) {
		for (var i i32 = 1; i < n-1; i = i + 1) {
			for (var j i32 = 1; j < n-1; j = j + 1) {
				A[i*n+j] = (A[(i-1)*n+j-1] + A[(i-1)*n+j] + A[(i-1)*n+j+1]
					+ A[i*n+j-1] + A[i*n+j] + A[i*n+j+1]
					+ A[(i+1)*n+j-1] + A[(i+1)*n+j] + A[(i+1)*n+j+1]) / 9.0;
			}
		}
	}
	var s f64;
	for (var i i32 = 0; i < n*n; i = i + 1) { s = s + A[i]; }
	return s;
}`, fcPrelude, n, steps)
	native := func(n int) float64 {
		A := fillMat(n*n, 0)
		for t := 0; t < steps; t++ {
			for i := 1; i < n-1; i++ {
				for j := 1; j < n-1; j++ {
					A[i*n+j] = (A[(i-1)*n+j-1] + A[(i-1)*n+j] + A[(i-1)*n+j+1] +
						A[i*n+j-1] + A[i*n+j] + A[i*n+j+1] +
						A[(i+1)*n+j-1] + A[(i+1)*n+j] + A[(i+1)*n+j+1]) / 9
				}
			}
		}
		return sum(A)
	}
	return Kernel{Name: "seidel-2d", N: n, FC: fc, Native: native}
}

func trisolv(n int) Kernel {
	fc := fmt.Sprintf(`#memory 16
%s
func main() f64 {
	var n i32 = %d;
	var L *f64 = alloc_f64(n*n);
	var b *f64 = alloc_f64(n);
	var x *f64 = alloc_f64(n);
	fill(b, n);
	for (var i i32 = 0; i < n; i = i + 1) {
		for (var j i32 = 0; j <= i; j = j + 1) {
			L[i*n+j] = seedval(i*n+j) * 0.1;
		}
		L[i*n+i] = L[i*n+i] + 1.0;
	}
	for (var i i32 = 0; i < n; i = i + 1) {
		var acc f64 = b[i];
		for (var j i32 = 0; j < i; j = j + 1) {
			acc = acc - L[i*n+j] * x[j];
		}
		x[i] = acc / L[i*n+i];
	}
	var s f64;
	for (var i i32 = 0; i < n; i = i + 1) { s = s + x[i]; }
	return s;
}`, fcPrelude, n)
	native := func(n int) float64 {
		L := make([]float64, n*n)
		b := fillMat(n, 0)
		x := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				L[i*n+j] = seedVal(i*n+j) * 0.1
			}
			L[i*n+i]++
		}
		for i := 0; i < n; i++ {
			acc := b[i]
			for j := 0; j < i; j++ {
				acc -= L[i*n+j] * x[j]
			}
			x[i] = acc / L[i*n+i]
		}
		return sum(x)
	}
	return Kernel{Name: "trisolv", N: n, FC: fc, Native: native}
}

// --- helpers ---

func fillMat(n, base int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = seedVal(base + i)
	}
	return out
}

func sum(a []float64) float64 {
	var s float64
	for _, v := range a {
		s += v
	}
	return s
}
