package queue

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"faasm.dev/faasm/internal/kvs"
	"faasm.dev/faasm/internal/mbus"
	"faasm.dev/faasm/internal/obsv"
	"faasm.dev/faasm/internal/vtime"
)

// Sentinel errors.
var (
	// ErrQueueFull is Submit's backpressure signal: the function's queue
	// is at its depth cap and the call was shed, not accepted.
	ErrQueueFull = errors.New("queue: full")
	// ErrConsumerDead is returned by an Executor whose host has crashed
	// (or is draining): the consumer abandons the item without writing
	// anything, leaving the in-flight lease to expire and the item to be
	// redelivered elsewhere.
	ErrConsumerDead = errors.New("queue: consumer dead")
	// ErrUnknownCall marks an id with neither a pending item nor a result.
	ErrUnknownCall = errors.New("queue: unknown call")
	// ErrAwaitTimeout is Await's deadline signal.
	ErrAwaitTimeout = errors.New("queue: await timed out")
	// ErrClosed is returned by Submit after Close.
	ErrClosed = errors.New("queue: closed")
)

// Defaults.
const (
	DefaultDepthCap     = 1024
	DefaultLeaseTTL     = 10 * time.Second
	DefaultRetryMax     = 3
	DefaultRetryBackoff = 100 * time.Millisecond
	DefaultPoll         = 20 * time.Millisecond
	DefaultConcurrency  = 2
)

// Executor runs one claimed item. The trace id is the submitting call's
// (0 = untraced); implementations join it so the execution's spans land
// under the submit-side trace.
type Executor interface {
	ExecuteQueued(fn string, input []byte, trace obsv.TraceID) ([]byte, int32, error)
}

// Config sizes one queue handle. Every host builds its own handle over its
// own view of the shared tier; the queue state itself lives tier-side, so
// all handles over the same tier see one queue.
type Config struct {
	// Store is the global tier holding all queue state.
	Store kvs.Store
	// Clock drives consumer polling, lease TTLs, and backoff (nil = wall
	// clock). Lease *expiry* is judged on the tier's clock, not this one.
	Clock vtime.Clock
	// Host names this handle in leases and results.
	Host string
	// DepthCap bounds each function's queued-plus-in-flight items; Submit
	// sheds with ErrQueueFull beyond it (0 = DefaultDepthCap, < 0 = no cap).
	DepthCap int
	// LeaseTTL is the in-flight lease on a claimed item: a consumer that
	// dies mid-execution has its item reclaimed this long after the claim
	// (0 = DefaultLeaseTTL).
	LeaseTTL time.Duration
	// RetryMax bounds redeliveries after the first delivery; past it the
	// item dead-letters (0 = DefaultRetryMax, < 0 = no retries).
	RetryMax int
	// RetryBackoff is the base redelivery backoff after a failed
	// execution, doubling per attempt (0 = DefaultRetryBackoff).
	RetryBackoff time.Duration
	// Poll is the consumer scan (and Await poll) cadence (0 = DefaultPoll).
	Poll time.Duration
	// Concurrency is the consumer loops per function on this host — the
	// bound on this host's concurrent executions per function
	// (0 = DefaultConcurrency).
	Concurrency int
	// Gate, when non-nil, reports whether this host may claim work. A
	// crashed or draining host returns false and its consumers idle.
	Gate func() bool
	// Dead, when non-nil, reports a crashed host. An execution finishing
	// after Dead flips true is abandoned unrecorded — the crash semantics —
	// whereas a merely drained host (Gate false, Dead false) still records
	// results for work it already held.
	Dead func() bool
	// Tracer, when non-nil, records queue.wait spans on traced items.
	Tracer *obsv.Tracer
}

// Queue is one host's handle on the shared durable queue.
type Queue struct {
	cfg  Config
	exec Executor

	mu        sync.Mutex
	consumers map[string]struct{}
	fns       map[string]struct{}
	closed    bool
	stop      chan struct{}
	wg        sync.WaitGroup

	// Metric counters, all host-local views of this handle's activity.
	enqueued     atomic.Int64
	redelivered  atomic.Int64
	deadLettered atomic.Int64
	completed    atomic.Int64
}

// New builds a queue handle. exec may be nil for submit/await-only handles
// (a front door); EnsureConsumer then refuses to start loops.
func New(cfg Config, exec Executor) *Queue {
	if cfg.Clock == nil {
		cfg.Clock = vtime.Real{}
	}
	if cfg.Host == "" {
		cfg.Host = "queue-client"
	}
	return &Queue{
		cfg:       cfg,
		exec:      exec,
		consumers: map[string]struct{}{},
		fns:       map[string]struct{}{},
		stop:      make(chan struct{}),
	}
}

// Tier key layout. Everything is keyed by the global call id except the
// per-function pending set, depth counter, dead-letter set, chain record,
// and claim lock.
func itemKey(id uint64) string    { return "q/item/" + strconv.FormatUint(id, 10) }
func leaseKey(id uint64) string   { return "q/lease/" + strconv.FormatUint(id, 10) }
func attemptKey(id uint64) string { return "q/attempt/" + strconv.FormatUint(id, 10) }
func resultKey(id uint64) string  { return "q/result/" + strconv.FormatUint(id, 10) }
func pendingKey(fn string) string { return "q/pending/" + fn }
func depthKey(fn string) string   { return "q/depth/" + fn }
func deadKey(fn string) string    { return "q/dead/" + fn }
func chainKey(fn string) string   { return "q/chain/" + fn }
func claimKey(fn string) string   { return "q/claim/" + fn }

const idKey = "q/id"

// item is the tier-side queue record: the call plus its enqueue time on the
// submitter's clock (feeds the queue.wait span).
type item struct {
	Rec        mbus.CallRecord
	EnqueuedAt int64
}

func (q *Queue) depthCap() int {
	if q.cfg.DepthCap == 0 {
		return DefaultDepthCap
	}
	return q.cfg.DepthCap
}

func (q *Queue) leaseTTL() time.Duration {
	if q.cfg.LeaseTTL <= 0 {
		return DefaultLeaseTTL
	}
	return q.cfg.LeaseTTL
}

func (q *Queue) retryMax() int {
	if q.cfg.RetryMax == 0 {
		return DefaultRetryMax
	}
	if q.cfg.RetryMax < 0 {
		return 0
	}
	return q.cfg.RetryMax
}

func (q *Queue) poll() time.Duration {
	if q.cfg.Poll <= 0 {
		return DefaultPoll
	}
	return q.cfg.Poll
}

func (q *Queue) concurrency() int {
	if q.cfg.Concurrency <= 0 {
		return DefaultConcurrency
	}
	return q.cfg.Concurrency
}

// backoff is the redelivery delay after failed attempt att (1-based),
// doubling from the base and capped at 8x so a retried item cannot park
// longer than a small multiple of the base.
func (q *Queue) backoff(att int) time.Duration {
	base := q.cfg.RetryBackoff
	if base <= 0 {
		base = DefaultRetryBackoff
	}
	d := base
	for i := 1; i < att && d < 8*base; i++ {
		d *= 2
	}
	if d > 8*base {
		d = 8 * base
	}
	return d
}

func (q *Queue) gateOpen() bool { return q.cfg.Gate == nil || q.cfg.Gate() }
func (q *Queue) dead() bool     { return q.cfg.Dead != nil && q.cfg.Dead() }

// Submit enqueues one asynchronous call and acks immediately with its
// global call id. The item is durable once Submit returns: it lives in the
// tier, not on this host. Sheds with ErrQueueFull at the depth cap.
func (q *Queue) Submit(fn string, input []byte) (uint64, error) {
	return q.submit(fn, input, 0, 0)
}

// SubmitTraced is Submit carrying the submitting invocation's trace id, so
// the consumer-side spans (queue.wait, exec) join the submit-side trace.
func (q *Queue) SubmitTraced(fn string, input []byte, trace uint64) (uint64, error) {
	return q.submit(fn, input, 0, trace)
}

func (q *Queue) submit(fn string, input []byte, parent, trace uint64) (uint64, error) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return 0, ErrClosed
	}
	q.fns[fn] = struct{}{}
	q.mu.Unlock()

	st := q.cfg.Store
	if cap := q.depthCap(); cap > 0 {
		d, err := st.Incr(depthKey(fn), 1)
		if err != nil {
			return 0, err
		}
		if d > int64(cap) {
			st.Incr(depthKey(fn), -1)
			return 0, fmt.Errorf("%w: %s at depth cap %d", ErrQueueFull, fn, cap)
		}
	} else if _, err := st.Incr(depthKey(fn), 1); err != nil {
		return 0, err
	}
	idv, err := st.Incr(idKey, 1)
	if err != nil {
		st.Incr(depthKey(fn), -1)
		return 0, err
	}
	id := uint64(idv)
	it := item{
		Rec: mbus.CallRecord{
			ID:       id,
			Function: fn,
			Input:    append([]byte(nil), input...),
			Status:   mbus.CallQueued,
			TraceID:  trace,
			ParentID: parent,
		},
		EnqueuedAt: q.cfg.Clock.Now().UnixNano(),
	}
	blob, err := json.Marshal(it)
	if err != nil {
		st.Incr(depthKey(fn), -1)
		return 0, err
	}
	// Item record first, pending-set entry second: a consumer that sees the
	// id in the set can always read the item.
	if err := st.Set(itemKey(id), blob); err != nil {
		st.Incr(depthKey(fn), -1)
		return 0, err
	}
	if _, err := st.SAdd(pendingKey(fn), strconv.FormatUint(id, 10)); err != nil {
		st.Delete(itemKey(id))
		st.Incr(depthKey(fn), -1)
		return 0, err
	}
	q.enqueued.Add(1)
	return id, nil
}

// Then records a static chain: every successful completion of fn enqueues
// next with fn's output as input. Chains are tier-side, so consumers on
// every host (including ones provisioned later) observe them.
func (q *Queue) Then(fn, next string) error {
	return q.cfg.Store.Set(chainKey(fn), []byte(next))
}

// EnsureConsumer starts this host's consumer loops for fn (idempotent).
func (q *Queue) EnsureConsumer(fn string) {
	if q.exec == nil {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	if _, ok := q.consumers[fn]; ok {
		return
	}
	q.consumers[fn] = struct{}{}
	q.fns[fn] = struct{}{}
	for i := 0; i < q.concurrency(); i++ {
		q.wg.Add(1)
		go q.consumeLoop(fn)
	}
}

func (q *Queue) consumeLoop(fn string) {
	defer q.wg.Done()
	for {
		select {
		case <-q.stop:
			return
		default:
		}
		if !q.gateOpen() {
			q.cfg.Clock.Sleep(q.poll())
			continue
		}
		it, att, ok := q.claim(fn)
		if !ok {
			q.cfg.Clock.Sleep(q.poll())
			continue
		}
		q.runItem(fn, it, att)
	}
}

// claim picks one deliverable item from fn's pending set and fences it with
// an in-flight lease. Claims for one function are serialized through the
// tier's lease lock, so a (pending, lease-free) item has exactly one
// claimant per round; the returned attempt count is this delivery's ordinal.
func (q *Queue) claim(fn string) (item, int, bool) {
	st := q.cfg.Store
	tok, err := st.Lock(claimKey(fn), true, q.leaseTTL())
	if err != nil {
		return item{}, 0, false
	}
	defer st.Unlock(claimKey(fn), tok)

	members, err := st.SMembers(pendingKey(fn))
	if err != nil || len(members) == 0 {
		return item{}, 0, false
	}
	ids := make([]uint64, 0, len(members))
	for _, m := range members {
		if id, err := strconv.ParseUint(m, 10, 64); err == nil {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	for _, id := range ids {
		ttl, err := st.TTL(leaseKey(id))
		if err != nil || ttl > 0 || ttl == kvs.TTLPersistent {
			continue // leased in-flight, parked in backoff, or unreadable
		}
		blob, err := st.Get(itemKey(id))
		if err != nil {
			continue
		}
		var it item
		if blob == nil || json.Unmarshal(blob, &it) != nil {
			// Orphaned pending entry (item record gone or unreadable):
			// collect it so it cannot wedge the scan forever.
			if removed, err := st.SRem(pendingKey(fn), strconv.FormatUint(id, 10)); err == nil && removed {
				st.Incr(depthKey(fn), -1)
			}
			continue
		}
		att64, err := st.Incr(attemptKey(id), 1)
		if err != nil {
			continue
		}
		att := int(att64)
		if att > 1 {
			q.redelivered.Add(1)
		}
		if att > q.retryMax()+1 {
			// Deliveries exhausted — including ones burned by crashed
			// consumers that never reported back (poison-pill protection).
			q.deadLetter(fn, it, fmt.Errorf("queue: %d deliveries exhausted", att-1))
			continue
		}
		if err := st.SetEx(leaseKey(id), []byte(q.cfg.Host), q.leaseTTL()); err != nil {
			continue
		}
		return it, att, true
	}
	return item{}, 0, false
}

// runItem executes one claimed delivery end to end.
func (q *Queue) runItem(fn string, it item, att int) {
	st := q.cfg.Store
	id := it.Rec.ID

	// A prior delivery may have completed but crashed before acking; never
	// re-execute a call that already has a result.
	if blob, err := st.Get(resultKey(id)); err == nil && blob != nil {
		q.ack(fn, id)
		return
	}

	q.recordWait(fn, it)
	out, ret, execErr := q.exec.ExecuteQueued(fn, it.Rec.Input, obsv.TraceID(it.Rec.TraceID))
	if errors.Is(execErr, ErrConsumerDead) || q.dead() {
		// Crashed mid-execution: write nothing. The lease expires on the
		// tier's clock and the item is redelivered.
		return
	}
	if execErr != nil {
		if att <= q.retryMax() {
			// Re-arm the lease as the backoff timer: the item stays
			// invisible to claims until the backoff elapses tier-side.
			st.SetEx(leaseKey(id), []byte("backoff"), q.backoff(att))
			return
		}
		q.deadLetter(fn, it, execErr)
		return
	}

	rec := it.Rec
	rec.Status = mbus.CallSucceeded
	rec.Output = out
	rec.ReturnCode = ret
	// Static chain: enqueue downstream before recording the result, so a
	// result carrying a ChildID always refers to an enqueued item.
	if next := q.chainOf(fn); next != "" && next != fn {
		if child, err := q.submit(next, out, id, it.Rec.TraceID); err == nil {
			rec.ChildID = child
		} else {
			rec.Err = fmt.Sprintf("chain to %s: %v", next, err)
		}
	}
	q.finish(fn, rec)
}

// recordWait attributes the enqueue→execution delay to the submit-side
// trace as a queue.wait span.
func (q *Queue) recordWait(fn string, it item) {
	if q.cfg.Tracer == nil || it.Rec.TraceID == 0 {
		return
	}
	tr, created := q.cfg.Tracer.Join(obsv.TraceID(it.Rec.TraceID), q.cfg.Host, fn)
	if tr == nil {
		return
	}
	start := time.Unix(0, it.EnqueuedAt)
	tr.RecordSpan(q.cfg.Host, "queue.wait", fn, start, q.cfg.Clock.Now().Sub(start), 0, false)
	if created {
		defer q.cfg.Tracer.Finish(tr)
	}
}

// chainOf reads fn's static downstream ("" = none).
func (q *Queue) chainOf(fn string) string {
	blob, err := q.cfg.Store.Get(chainKey(fn))
	if err != nil || len(blob) == 0 {
		return ""
	}
	return string(blob)
}

// finish records a terminal result (first writer wins) and acks the item.
func (q *Queue) finish(fn string, rec mbus.CallRecord) {
	st := q.cfg.Store
	// First-writer-wins: a redelivered zombie completing after the real
	// completer finds the result present and only acks. The lease protocol
	// makes two simultaneous completers a presumed-dead-holder anomaly; the
	// client's call-table view is strictly first-writer regardless.
	if blob, err := st.Get(resultKey(rec.ID)); err != nil || blob != nil {
		q.ack(fn, rec.ID)
		return
	}
	blob, err := json.Marshal(rec)
	if err != nil {
		rec.Output = nil
		rec.Err = fmt.Sprintf("queue: result marshal: %v", err)
		blob, _ = json.Marshal(rec)
	}
	if st.Set(resultKey(rec.ID), blob) == nil {
		q.completed.Add(1)
	}
	q.ack(fn, rec.ID)
}

// deadLetter parks an undeliverable item in fn's dead-letter set with a
// CallDeadLettered result so awaiters unblock.
func (q *Queue) deadLetter(fn string, it item, cause error) {
	rec := it.Rec
	rec.Status = mbus.CallDeadLettered
	rec.ReturnCode = -1
	rec.Err = cause.Error()
	q.cfg.Store.SAdd(deadKey(fn), strconv.FormatUint(rec.ID, 10))
	q.deadLettered.Add(1)
	q.finish(fn, rec)
}

// ack retires a delivered item: out of the pending set (decrementing the
// backpressure depth exactly once, guarded by SRem's removed flag), lease
// and bookkeeping keys dropped. The result record stays for awaiters.
func (q *Queue) ack(fn string, id uint64) {
	st := q.cfg.Store
	if removed, err := st.SRem(pendingKey(fn), strconv.FormatUint(id, 10)); err == nil && removed {
		st.Incr(depthKey(fn), -1)
	}
	st.Delete(leaseKey(id))
	st.Delete(itemKey(id))
	st.Delete(attemptKey(id))
}

// Result reads a call's terminal record, reporting whether one exists yet.
func (q *Queue) Result(id uint64) (mbus.CallRecord, bool, error) {
	blob, err := q.cfg.Store.Get(resultKey(id))
	if err != nil {
		return mbus.CallRecord{}, false, err
	}
	if blob == nil {
		return mbus.CallRecord{}, false, nil
	}
	var rec mbus.CallRecord
	if err := json.Unmarshal(blob, &rec); err != nil {
		return mbus.CallRecord{}, false, err
	}
	return rec, true, nil
}

// Await polls until the call reaches a terminal result, returning its
// record. timeout <= 0 waits forever; expiry returns ErrAwaitTimeout. An id
// with neither a result, a pending item, nor delivery bookkeeping is
// reported as ErrUnknownCall.
func (q *Queue) Await(id uint64, timeout time.Duration) (mbus.CallRecord, error) {
	st := q.cfg.Store
	var deadline time.Time
	if timeout > 0 {
		deadline = q.cfg.Clock.Now().Add(timeout)
	}
	for {
		rec, ok, err := q.Result(id)
		if err != nil {
			return mbus.CallRecord{}, err
		}
		if ok {
			return rec, nil
		}
		if blob, err := st.Get(itemKey(id)); err == nil && blob == nil {
			// No result and no item: either never submitted, or acked with
			// its result lost — both are unknown to the client.
			if att, aerr := st.Incr(attemptKey(id), 0); aerr == nil && att == 0 {
				return mbus.CallRecord{}, fmt.Errorf("%w: %d", ErrUnknownCall, id)
			}
		}
		if timeout > 0 && !q.cfg.Clock.Now().Before(deadline) {
			return mbus.CallRecord{}, fmt.Errorf("%w: call %d", ErrAwaitTimeout, id)
		}
		q.cfg.Clock.Sleep(q.poll())
	}
}

// Depth reports fn's current queued-plus-in-flight item count.
func (q *Queue) Depth(fn string) (int64, error) {
	return q.cfg.Store.Incr(depthKey(fn), 0)
}

// DeadLetters lists fn's dead-lettered call ids.
func (q *Queue) DeadLetters(fn string) ([]uint64, error) {
	members, err := q.cfg.Store.SMembers(deadKey(fn))
	if err != nil {
		return nil, err
	}
	out := make([]uint64, 0, len(members))
	for _, m := range members {
		if id, err := strconv.ParseUint(m, 10, 64); err == nil {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out, nil
}

// Functions lists the functions this handle has consumed or submitted for.
func (q *Queue) Functions() []string {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]string, 0, len(q.fns))
	for fn := range q.fns {
		out = append(out, fn)
	}
	sort.Strings(out)
	return out
}

// Stats snapshots this handle's activity counters.
type Stats struct {
	Enqueued     int64
	Redelivered  int64
	DeadLettered int64
	Completed    int64
}

// Stats reports this handle's counters.
func (q *Queue) Stats() Stats {
	return Stats{
		Enqueued:     q.enqueued.Load(),
		Redelivered:  q.redelivered.Load(),
		DeadLettered: q.deadLettered.Load(),
		Completed:    q.completed.Load(),
	}
}

// Instrument registers the queue series with reg, labelled by host. The
// depth gauge reads the tier at scrape time (one counter read per known
// function), so it reflects the shared queue, not this handle.
func (q *Queue) Instrument(reg *obsv.Registry, host string) {
	l := map[string]string{"host": host}
	reg.CounterFunc("faasm_queue_enqueued_total", "async calls accepted into the durable queue by this host", l, q.enqueued.Load)
	reg.CounterFunc("faasm_queue_redelivered_total", "deliveries after the first, claimed by this host (lease-expiry reclaims and retry backoffs)", l, q.redelivered.Load)
	reg.CounterFunc("faasm_queue_dead_lettered_total", "items parked in a dead-letter set by this host after exhausting deliveries", l, q.deadLettered.Load)
	reg.GaugeFunc("faasm_queue_depth", "queued plus in-flight items across this host's known functions (tier-side view)", l, q.tierDepth)
}

func (q *Queue) tierDepth() int64 {
	var total int64
	for _, fn := range q.Functions() {
		if d, err := q.Depth(fn); err == nil {
			total += d
		}
	}
	return total
}

// Close stops this host's consumer loops (waiting them out) and refuses
// further Submits. Tier-side queue state is untouched: other hosts keep
// consuming, and items this host had in flight redeliver after lease
// expiry.
func (q *Queue) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	close(q.stop)
	q.mu.Unlock()
	q.wg.Wait()
}
