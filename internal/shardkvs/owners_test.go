package shardkvs

// Owners/HealthyOwners contract tests: the residency adverts behind
// locality-aware scheduling are derived from these, so owners reported
// mid-rebalance must match the committed ring and suspect shards must never
// be reported healthy.

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"faasm.dev/faasm/internal/kvs"
)

func sampleKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("owners/key-%d", i)
	}
	return keys
}

func TestOwnersAcrossJoinLeave(t *testing.T) {
	r := NewLocal(3, Options{Replication: 2})
	keys := sampleKeys(64)
	for _, k := range keys {
		if err := r.Set(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range keys {
		owners := r.Owners(k)
		if len(owners) != 2 || owners[0] == owners[1] {
			t.Fatalf("owners(%s) = %v, want 2 distinct", k, owners)
		}
	}

	if _, err := r.Join("shard-3", kvs.NewEngine()); err != nil {
		t.Fatal(err)
	}
	joined := false
	for _, k := range keys {
		for _, o := range r.Owners(k) {
			if o == "shard-3" {
				joined = true
			}
		}
	}
	if !joined {
		t.Fatal("no key routed to the joined shard")
	}

	if _, err := r.Leave("shard-3"); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		for _, o := range r.Owners(k) {
			if o == "shard-3" {
				t.Fatalf("owners(%s) = %v still names the departed shard", k, r.Owners(k))
			}
		}
		// The departed shard's keys must still be fully readable.
		if v, err := r.Get(k); err != nil || string(v) != k {
			t.Fatalf("get(%s) after leave: %q %v", k, v, err)
		}
	}
}

// gatedStore blocks its first Set until released, holding a Join's copy
// phase open so the test can observe the ring mid-migration. It embeds the
// concrete engine (not the Store interface) so the copy phase's Lister
// assertion still sees AllKeys.
type gatedStore struct {
	*kvs.Engine
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (g *gatedStore) Set(key string, val []byte) error {
	g.once.Do(func() { close(g.entered) })
	<-g.release
	return g.Engine.Set(key, val)
}

// Mid-rebalance, Owners must report the committed ring: the incoming
// placement owns nothing until every copy has landed.
func TestOwnersCommittedMidRebalance(t *testing.T) {
	r := NewLocal(3, Options{Replication: 2})
	keys := sampleKeys(128)
	for _, k := range keys {
		if err := r.Set(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	before := make(map[string][]string, len(keys))
	for _, k := range keys {
		before[k] = r.Owners(k)
	}

	gate := &gatedStore{
		Engine:  kvs.NewEngine(),
		entered: make(chan struct{}),
		release: make(chan struct{}),
	}
	joinErr := make(chan error, 1)
	go func() {
		_, err := r.Join("shard-3", gate)
		joinErr <- err
	}()
	<-gate.entered // copy phase is streaming; commit has not happened

	for _, k := range keys {
		if got := r.Owners(k); !reflect.DeepEqual(got, before[k]) {
			t.Fatalf("mid-rebalance owners(%s) = %v, want committed %v", k, got, before[k])
		}
	}

	close(gate.release)
	if err := <-joinErr; err != nil {
		t.Fatal(err)
	}
	moved := false
	for _, k := range keys {
		for _, o := range r.Owners(k) {
			if o == "shard-3" {
				moved = true
			}
		}
	}
	if !moved {
		t.Fatal("after commit no key routed to the joined shard")
	}
}

func TestHealthyOwnersExcludesSuspects(t *testing.T) {
	r := NewLocal(3, Options{Replication: 2})
	key := "owners/suspect-key"
	if err := r.Set(key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	owners := r.Owners(key)
	if len(owners) != 2 {
		t.Fatalf("owners = %v", owners)
	}

	// Doubt the primary: it must vanish from HealthyOwners (order kept, so
	// the replica is promoted to index 0) while Owners still reports it.
	r.nodes[owners[0]].suspect.Store(true)
	healthy := r.HealthyOwners(key)
	if !reflect.DeepEqual(healthy, owners[1:]) {
		t.Fatalf("healthy = %v, want %v", healthy, owners[1:])
	}
	if got := r.Owners(key); !reflect.DeepEqual(got, owners) {
		t.Fatalf("Owners changed to %v under suspicion", got)
	}

	// All owners suspect: nothing may be advertised as residency.
	r.nodes[owners[1]].suspect.Store(true)
	if healthy := r.HealthyOwners(key); len(healthy) != 0 {
		t.Fatalf("all-suspect healthy = %v, want empty", healthy)
	}

	// Cleared suspicion restores the full healthy set.
	r.nodes[owners[0]].suspect.Store(false)
	r.nodes[owners[1]].suspect.Store(false)
	if healthy := r.HealthyOwners(key); !reflect.DeepEqual(healthy, owners) {
		t.Fatalf("recovered healthy = %v, want %v", healthy, owners)
	}
}
