// Package simnet models the cluster network of the paper's testbed (§6.1:
// 20 hosts on a 1 Gbps connection). Every byte that crosses a host boundary
// — global-tier state access, cross-host chaining, container data shipping
// — is charged to a link: the caller sleeps for the serialisation delay at
// the link's bandwidth plus a fixed per-operation latency, and the bytes
// are counted for the network-transfer figures (Figs 6b and 8b).
//
// The charge is paid on the experiment clock, so a vtime.Scaled clock
// reproduces second-scale transfer costs in milliseconds of wall time.
package simnet

import (
	"sync"
	"time"

	"faasm.dev/faasm/internal/kvs"
	"faasm.dev/faasm/internal/metrics"
	"faasm.dev/faasm/internal/vtime"
)

// Network is a shared cost model for one cluster.
type Network struct {
	// BandwidthBps is per-host link bandwidth in bytes per second.
	BandwidthBps int64
	// Latency is the fixed per-operation round-trip cost.
	Latency time.Duration
	Clock   vtime.Clock

	mu sync.Mutex
	// Sent/Received aggregate bytes across the cluster.
	Sent     metrics.Counter
	Received metrics.Counter
	perHost  map[string]*HostCounters
}

// HostCounters tracks one host's transfers.
type HostCounters struct {
	Sent     metrics.Counter
	Received metrics.Counter
}

// Gigabit is the testbed's 1 Gbps in bytes/second.
const Gigabit = int64(125_000_000)

// New creates a network model. Zero bandwidth means infinitely fast links
// (costs are still counted); a nil clock uses the wall clock.
func New(bandwidthBps int64, latency time.Duration, clock vtime.Clock) *Network {
	if clock == nil {
		clock = vtime.Real{}
	}
	return &Network{
		BandwidthBps: bandwidthBps,
		Latency:      latency,
		Clock:        clock,
		perHost:      map[string]*HostCounters{},
	}
}

// Host returns (creating) the counters for a host.
func (n *Network) Host(name string) *HostCounters {
	n.mu.Lock()
	defer n.mu.Unlock()
	hc, ok := n.perHost[name]
	if !ok {
		hc = &HostCounters{}
		n.perHost[name] = hc
	}
	return hc
}

// Transfer charges a host for moving n bytes (sent and received count the
// same bytes on opposite sides; for host↔KVS traffic we charge the host
// both ways as the paper's "sent + recv" metric does).
func (n *Network) Transfer(host string, sent, received int64) {
	hc := n.Host(host)
	hc.Sent.Add(sent)
	hc.Received.Add(received)
	n.Sent.Add(sent)
	n.Received.Add(received)
	n.sleepFor(sent + received)
}

func (n *Network) sleepFor(bytes int64) {
	var d time.Duration
	if n.BandwidthBps > 0 && bytes > 0 {
		d = time.Duration(float64(bytes) / float64(n.BandwidthBps) * float64(time.Second))
	}
	d += n.Latency
	if d > 0 {
		n.Clock.Sleep(d)
	}
}

// TotalBytes reports cluster-wide sent+received bytes.
func (n *Network) TotalBytes() int64 {
	return n.Sent.Value() + n.Received.Value()
}

// HostBytes reports one host's sent+received bytes — the failure
// experiments use it to price the background control traffic (liveness
// heartbeats, lease reads) a host pays while the cluster heals.
func (n *Network) HostBytes(host string) int64 {
	hc := n.Host(host)
	return hc.Sent.Value() + hc.Received.Value()
}

// Reset zeroes all counters.
func (n *Network) Reset() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.Sent.Reset()
	n.Received.Reset()
	for _, hc := range n.perHost {
		hc.Sent.Reset()
		hc.Received.Reset()
	}
}

// Store wraps a kvs.Store, charging every operation to the network from the
// perspective of one host — this is how global-tier access pays the
// data-shipping cost in the cluster experiments.
type Store struct {
	inner kvs.Store
	net   *Network
	host  string
}

// NewStore wraps inner with network accounting for host.
func NewStore(inner kvs.Store, net *Network, host string) *Store {
	return &Store{inner: inner, net: net, host: host}
}

// reqOverhead approximates protocol framing per operation.
const reqOverhead = 32

// Get implements kvs.Store.
func (s *Store) Get(key string) ([]byte, error) {
	v, err := s.inner.Get(key)
	s.net.Transfer(s.host, reqOverhead+int64(len(key)), int64(len(v)))
	return v, err
}

// Set implements kvs.Store.
func (s *Store) Set(key string, val []byte) error {
	err := s.inner.Set(key, val)
	s.net.Transfer(s.host, reqOverhead+int64(len(key))+int64(len(val)), reqOverhead)
	return err
}

// SetEx implements kvs.Store, charged like Set (the TTL field is part of
// the fixed per-operation framing overhead).
func (s *Store) SetEx(key string, val []byte, ttl time.Duration) error {
	err := s.inner.SetEx(key, val, ttl)
	s.net.Transfer(s.host, reqOverhead+int64(len(key))+int64(len(val)), reqOverhead)
	return err
}

// TTL implements kvs.Store.
func (s *Store) TTL(key string) (time.Duration, error) {
	d, err := s.inner.TTL(key)
	s.net.Transfer(s.host, reqOverhead+int64(len(key)), reqOverhead)
	return d, err
}

// Persist implements kvs.Store.
func (s *Store) Persist(key string) (bool, error) {
	ok, err := s.inner.Persist(key)
	s.net.Transfer(s.host, reqOverhead+int64(len(key)), reqOverhead)
	return ok, err
}

// GetRange implements kvs.Store.
func (s *Store) GetRange(key string, off, n int) ([]byte, error) {
	v, err := s.inner.GetRange(key, off, n)
	s.net.Transfer(s.host, reqOverhead+int64(len(key)), int64(len(v)))
	return v, err
}

// SetRange implements kvs.Store.
func (s *Store) SetRange(key string, off int, val []byte) error {
	err := s.inner.SetRange(key, off, val)
	s.net.Transfer(s.host, reqOverhead+int64(len(key))+int64(len(val)), reqOverhead)
	return err
}

// Append implements kvs.Store.
func (s *Store) Append(key string, val []byte) (int, error) {
	n, err := s.inner.Append(key, val)
	s.net.Transfer(s.host, reqOverhead+int64(len(key))+int64(len(val)), reqOverhead)
	return n, err
}

// Len implements kvs.Store.
func (s *Store) Len(key string) (int, error) {
	n, err := s.inner.Len(key)
	s.net.Transfer(s.host, reqOverhead+int64(len(key)), reqOverhead)
	return n, err
}

// Delete implements kvs.Store.
func (s *Store) Delete(key string) error {
	err := s.inner.Delete(key)
	s.net.Transfer(s.host, reqOverhead+int64(len(key)), reqOverhead)
	return err
}

// SAdd implements kvs.Store.
func (s *Store) SAdd(key, member string) (bool, error) {
	ok, err := s.inner.SAdd(key, member)
	s.net.Transfer(s.host, reqOverhead+int64(len(key)+len(member)), reqOverhead)
	return ok, err
}

// SRem implements kvs.Store.
func (s *Store) SRem(key, member string) (bool, error) {
	ok, err := s.inner.SRem(key, member)
	s.net.Transfer(s.host, reqOverhead+int64(len(key)+len(member)), reqOverhead)
	return ok, err
}

// SMembers implements kvs.Store.
func (s *Store) SMembers(key string) ([]string, error) {
	ms, err := s.inner.SMembers(key)
	var out int64
	for _, m := range ms {
		out += int64(len(m))
	}
	s.net.Transfer(s.host, reqOverhead+int64(len(key)), out+reqOverhead)
	return ms, err
}

// Incr implements kvs.Store.
func (s *Store) Incr(key string, delta int64) (int64, error) {
	v, err := s.inner.Incr(key, delta)
	s.net.Transfer(s.host, reqOverhead+int64(len(key)), reqOverhead)
	return v, err
}

// MGet implements kvs.Batcher. The whole batch is charged as one exchange —
// all keys out, all values back, a single per-operation latency — which is
// the win the wire protocol's pipelined MGET realises on a real network.
func (s *Store) MGet(keys []string) ([][]byte, error) {
	vals, err := kvs.MGet(s.inner, keys)
	sent := int64(reqOverhead)
	for _, k := range keys {
		sent += int64(len(k))
	}
	var recv int64 = reqOverhead
	for _, v := range vals {
		recv += int64(len(v))
	}
	s.net.Transfer(s.host, sent, recv)
	return vals, err
}

// MSet implements kvs.Batcher, charged as one exchange.
func (s *Store) MSet(pairs []kvs.Pair) error {
	err := kvs.MSet(s.inner, pairs)
	sent := int64(reqOverhead)
	for _, p := range pairs {
		sent += int64(len(p.Key) + len(p.Val))
	}
	s.net.Transfer(s.host, sent, reqOverhead)
	return err
}

// MSetEx implements kvs.Batcher, charged as one exchange exactly like MSet —
// the pipelined MSETEX wire command realises the same single round trip.
func (s *Store) MSetEx(pairs []kvs.Pair, ttl time.Duration) error {
	err := kvs.MSetEx(s.inner, pairs, ttl)
	sent := int64(reqOverhead)
	for _, p := range pairs {
		sent += int64(len(p.Key) + len(p.Val))
	}
	s.net.Transfer(s.host, sent, reqOverhead)
	return err
}

// GetRanges implements kvs.Batcher, charged as one exchange.
func (s *Store) GetRanges(key string, ranges []kvs.Range) ([][]byte, error) {
	vals, err := kvs.GetRanges(s.inner, key, ranges)
	var recv int64 = reqOverhead
	for _, v := range vals {
		recv += int64(len(v))
	}
	s.net.Transfer(s.host, reqOverhead+int64(len(key))+16*int64(len(ranges)), recv)
	return vals, err
}

// Lock implements kvs.Store. Only the fixed round-trip is charged; lock
// wait time is contention, not transfer.
func (s *Store) Lock(key string, write bool, ttl time.Duration) (uint64, error) {
	s.net.Transfer(s.host, reqOverhead+int64(len(key)), reqOverhead)
	return s.inner.Lock(key, write, ttl)
}

// Unlock implements kvs.Store.
func (s *Store) Unlock(key string, token uint64) error {
	s.net.Transfer(s.host, reqOverhead+int64(len(key)), reqOverhead)
	return s.inner.Unlock(key, token)
}

var (
	_ kvs.Store   = (*Store)(nil)
	_ kvs.Batcher = (*Store)(nil)
)
