package wavm

import (
	"errors"
	"math"
	"strings"
	"testing"

	"faasm.dev/faasm/internal/wamem"
)

// run assembles, validates, instantiates and calls fn with args.
func run(t *testing.T, src, fn string, args ...uint64) []uint64 {
	t.Helper()
	inst := instance(t, src)
	res, err := inst.Call(fn, args...)
	if err != nil {
		t.Fatalf("call %s: %v", fn, err)
	}
	return res
}

func instance(t *testing.T, src string) *Instance {
	t.Helper()
	mod, err := AssembleAndValidate(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	inst, err := Instantiate(mod, nil)
	if err != nil {
		t.Fatalf("instantiate: %v", err)
	}
	return inst
}

func TestArithmetic(t *testing.T) {
	src := `(module
	  (func $add (export "add") (param $a i32) (param $b i32) (result i32)
	    local.get $a
	    local.get $b
	    i32.add))`
	res := run(t, src, "add", EncodeI32(2), EncodeI32(40))
	if DecodeI32(res[0]) != 42 {
		t.Fatalf("2+40 = %d", DecodeI32(res[0]))
	}
}

func TestSignedArithmetic(t *testing.T) {
	src := `(module
	  (func $f (export "f") (param i32 i32) (result i32)
	    local.get 0
	    local.get 1
	    i32.div_s))`
	res := run(t, src, "f", EncodeI32(-7), EncodeI32(2))
	if DecodeI32(res[0]) != -3 {
		t.Fatalf("-7/2 = %d", DecodeI32(res[0]))
	}
}

func TestF64(t *testing.T) {
	src := `(module
	  (func $hyp (export "hyp") (param $a f64) (param $b f64) (result f64)
	    local.get $a
	    local.get $a
	    f64.mul
	    local.get $b
	    local.get $b
	    f64.mul
	    f64.add
	    f64.sqrt))`
	res := run(t, src, "hyp", EncodeF64(3), EncodeF64(4))
	if DecodeF64(res[0]) != 5 {
		t.Fatalf("hyp(3,4) = %v", DecodeF64(res[0]))
	}
}

func TestLoopSum(t *testing.T) {
	// sum 1..n with a loop and branches.
	src := `(module
	  (func $sum (export "sum") (param $n i32) (result i32) (local $i i32) (local $acc i32)
	    block $exit
	      loop $top
	        local.get $i
	        local.get $n
	        i32.ge_s
	        br_if $exit
	        local.get $i
	        i32.const 1
	        i32.add
	        local.tee $i
	        local.get $acc
	        i32.add
	        local.set $acc
	        br $top
	      end
	    end
	    local.get $acc))`
	res := run(t, src, "sum", EncodeI32(10))
	if DecodeI32(res[0]) != 55 {
		t.Fatalf("sum(10) = %d", DecodeI32(res[0]))
	}
}

func TestIfElse(t *testing.T) {
	src := `(module
	  (func $abs (export "abs") (param $x i32) (result i32)
	    local.get $x
	    i32.const 0
	    i32.lt_s
	    if (result i32)
	      i32.const 0
	      local.get $x
	      i32.sub
	    else
	      local.get $x
	    end))`
	if got := DecodeI32(run(t, src, "abs", EncodeI32(-9))[0]); got != 9 {
		t.Fatalf("abs(-9) = %d", got)
	}
	if got := DecodeI32(run(t, src, "abs", EncodeI32(7))[0]); got != 7 {
		t.Fatalf("abs(7) = %d", got)
	}
}

func TestIfWithoutElse(t *testing.T) {
	src := `(module
	  (func $f (export "f") (param $x i32) (result i32) (local $r i32)
	    i32.const 1
	    local.set $r
	    local.get $x
	    if
	      i32.const 99
	      local.set $r
	    end
	    local.get $r))`
	if got := DecodeI32(run(t, src, "f", EncodeI32(1))[0]); got != 99 {
		t.Fatalf("taken if = %d", got)
	}
	if got := DecodeI32(run(t, src, "f", EncodeI32(0))[0]); got != 1 {
		t.Fatalf("skipped if = %d", got)
	}
}

func TestBrInsideIfTargetsIfFrame(t *testing.T) {
	// A br inside the then-branch that targets the if's own label must jump
	// past the else branch (regression test for branch patch bookkeeping).
	src := `(module
	  (func $f (export "f") (param $x i32) (result i32) (local $r i32)
	    local.get $x
	    if $lbl
	      i32.const 5
	      local.set $r
	      br $lbl
	    else
	      i32.const 6
	      local.set $r
	    end
	    local.get $r))`
	if got := DecodeI32(run(t, src, "f", EncodeI32(1))[0]); got != 5 {
		t.Fatalf("then with br = %d", got)
	}
	if got := DecodeI32(run(t, src, "f", EncodeI32(0))[0]); got != 6 {
		t.Fatalf("else = %d", got)
	}
}

func TestBrTable(t *testing.T) {
	src := `(module
	  (func $classify (export "classify") (param $x i32) (result i32)
	    block $c
	      block $b
	        block $a
	          local.get $x
	          br_table $a $b $c
	        end
	        i32.const 10
	        return
	      end
	      i32.const 20
	      return
	    end
	    i32.const 30))`
	for _, tc := range []struct{ in, out int32 }{{0, 10}, {1, 20}, {2, 30}, {99, 30}} {
		if got := DecodeI32(run(t, src, "classify", EncodeI32(tc.in))[0]); got != tc.out {
			t.Fatalf("classify(%d) = %d, want %d", tc.in, got, tc.out)
		}
	}
}

func TestBlockResultAndBranchValue(t *testing.T) {
	src := `(module
	  (func $f (export "f") (param $x i32) (result i32)
	    block $b (result i32)
	      local.get $x
	      local.get $x
	      br_if $b
	      drop
	      i32.const -1
	    end))`
	if got := DecodeI32(run(t, src, "f", EncodeI32(42))[0]); got != 42 {
		t.Fatalf("br_if value = %d", got)
	}
	if got := DecodeI32(run(t, src, "f", EncodeI32(0))[0]); got != -1 {
		t.Fatalf("fallthrough = %d", got)
	}
}

func TestCallAndRecursion(t *testing.T) {
	src := `(module
	  (func $fib (export "fib") (param $n i32) (result i32)
	    local.get $n
	    i32.const 2
	    i32.lt_s
	    if (result i32)
	      local.get $n
	    else
	      local.get $n
	      i32.const 1
	      i32.sub
	      call $fib
	      local.get $n
	      i32.const 2
	      i32.sub
	      call $fib
	      i32.add
	    end))`
	if got := DecodeI32(run(t, src, "fib", EncodeI32(15))[0]); got != 610 {
		t.Fatalf("fib(15) = %d", got)
	}
}

func TestCallIndirect(t *testing.T) {
	src := `(module
	  (table (elem $double $square))
	  (func $double (param $x i32) (result i32)
	    local.get $x i32.const 2 i32.mul)
	  (func $square (param $x i32) (result i32)
	    local.get $x local.get $x i32.mul)
	  (func $apply (export "apply") (param $f i32) (param $x i32) (result i32)
	    local.get $x
	    local.get $f
	    call_indirect (param i32) (result i32)))`
	if got := DecodeI32(run(t, src, "apply", EncodeI32(0), EncodeI32(21))[0]); got != 42 {
		t.Fatalf("double(21) = %d", got)
	}
	if got := DecodeI32(run(t, src, "apply", EncodeI32(1), EncodeI32(6))[0]); got != 36 {
		t.Fatalf("square(6) = %d", got)
	}
}

func TestCallIndirectTraps(t *testing.T) {
	src := `(module
	  (table (elem $noop))
	  (func $noop)
	  (func $apply (export "apply") (param $f i32) (result i32)
	    i32.const 1
	    local.get $f
	    call_indirect (param i32) (result i32)))`
	inst := instance(t, src)
	// Out-of-range element.
	_, err := inst.Call("apply", EncodeI32(5))
	assertTrap(t, err, TrapUndefinedElement)
	// Type mismatch: $noop has the wrong signature.
	_, err = inst.Call("apply", EncodeI32(0))
	assertTrap(t, err, TrapIndirectTypeMismatch)
}

func assertTrap(t *testing.T, err error, kind TrapKind) {
	t.Helper()
	var tr *Trap
	if !errors.As(err, &tr) {
		t.Fatalf("expected trap %v, got %v", kind, err)
	}
	if tr.Kind != kind {
		t.Fatalf("trap kind = %v, want %v", tr.Kind, kind)
	}
}

func TestMemoryLoadStore(t *testing.T) {
	src := `(module
	  (memory 1)
	  (func $f (export "f") (param $addr i32) (param $v i64) (result i64)
	    local.get $addr
	    local.get $v
	    i64.store
	    local.get $addr
	    i64.load offset=0))`
	res := run(t, src, "f", EncodeI32(1024), 0xfeedface)
	if res[0] != 0xfeedface {
		t.Fatalf("load = %x", res[0])
	}
}

func TestMemoryOOBTraps(t *testing.T) {
	src := `(module
	  (memory 1 1)
	  (func $f (export "f") (param $addr i32) (result i32)
	    local.get $addr
	    i32.load))`
	inst := instance(t, src)
	_, err := inst.Call("f", EncodeI32(65536))
	assertTrap(t, err, TrapOutOfBounds)
	// Offset pushing past the end also traps (no wrap-around).
	_, err = inst.Call("f", EncodeI32(-4))
	assertTrap(t, err, TrapOutOfBounds)
}

func TestSubwordLoads(t *testing.T) {
	src := `(module
	  (memory 1)
	  (data (i32.const 0) "\80\ff")
	  (func $s8 (export "s8") (result i32) i32.const 0 i32.load8_s)
	  (func $u8 (export "u8") (result i32) i32.const 0 i32.load8_u)
	  (func $s16 (export "s16") (result i32) i32.const 0 i32.load16_s)
	  (func $u16 (export "u16") (result i32) i32.const 0 i32.load16_u))`
	inst := instance(t, src)
	check := func(fn string, want int32) {
		t.Helper()
		res, err := inst.Call(fn)
		if err != nil {
			t.Fatal(err)
		}
		if DecodeI32(res[0]) != want {
			t.Fatalf("%s = %d, want %d", fn, DecodeI32(res[0]), want)
		}
	}
	check("s8", -128)
	check("u8", 128)
	check("s16", -128) // 0xff80 sign-extended
	check("u16", 0xff80)
}

func TestMemoryGrowAndSize(t *testing.T) {
	src := `(module
	  (memory 1 2)
	  (func $grow (export "grow") (param $n i32) (result i32)
	    local.get $n
	    memory.grow)
	  (func $size (export "size") (result i32)
	    memory.size))`
	inst := instance(t, src)
	res, _ := inst.Call("size")
	if DecodeI32(res[0]) != 1 {
		t.Fatalf("initial size = %d", DecodeI32(res[0]))
	}
	res, _ = inst.Call("grow", EncodeI32(1))
	if DecodeI32(res[0]) != 1 {
		t.Fatalf("grow returned %d", DecodeI32(res[0]))
	}
	res, _ = inst.Call("grow", EncodeI32(1))
	if DecodeI32(res[0]) != -1 {
		t.Fatalf("grow past limit returned %d", DecodeI32(res[0]))
	}
}

func TestDivByZeroTraps(t *testing.T) {
	src := `(module
	  (func $f (export "f") (param i32 i32) (result i32)
	    local.get 0 local.get 1 i32.div_u))`
	inst := instance(t, src)
	_, err := inst.Call("f", EncodeI32(1), EncodeI32(0))
	assertTrap(t, err, TrapDivByZero)
}

func TestDivOverflowTraps(t *testing.T) {
	src := `(module
	  (func $f (export "f") (param i32 i32) (result i32)
	    local.get 0 local.get 1 i32.div_s))`
	inst := instance(t, src)
	_, err := inst.Call("f", EncodeI32(math.MinInt32), EncodeI32(-1))
	assertTrap(t, err, TrapIntOverflow)
}

func TestUnreachableTraps(t *testing.T) {
	src := `(module (func $f (export "f") unreachable))`
	inst := instance(t, src)
	_, err := inst.Call("f")
	assertTrap(t, err, TrapUnreachable)
}

func TestStackOverflowTraps(t *testing.T) {
	src := `(module (func $f (export "f") call $f))`
	inst := instance(t, src)
	_, err := inst.Call("f")
	assertTrap(t, err, TrapStackOverflow)
}

func TestFuelExhaustion(t *testing.T) {
	src := `(module
	  (func $spin (export "spin")
	    loop $l
	      br $l
	    end))`
	mod, err := AssembleAndValidate(src)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := Instantiate(mod, nil, WithFuel(10000))
	if err != nil {
		t.Fatal(err)
	}
	_, err = inst.Call("spin")
	assertTrap(t, err, TrapFuelExhausted)
	if inst.Steps == 0 {
		t.Fatal("steps not counted")
	}
}

func TestGlobals(t *testing.T) {
	src := `(module
	  (global $counter (mut i32) (i32.const 100))
	  (global $k f64 (f64.const 2.5))
	  (func $bump (export "bump") (result i32)
	    global.get $counter
	    i32.const 1
	    i32.add
	    global.set $counter
	    global.get $counter)
	  (func $k (export "k") (result f64)
	    global.get $k))`
	inst := instance(t, src)
	res, _ := inst.Call("bump")
	if DecodeI32(res[0]) != 101 {
		t.Fatalf("bump = %d", DecodeI32(res[0]))
	}
	res, _ = inst.Call("bump")
	if DecodeI32(res[0]) != 102 {
		t.Fatalf("bump 2 = %d", DecodeI32(res[0]))
	}
	res, _ = inst.Call("k")
	if DecodeF64(res[0]) != 2.5 {
		t.Fatalf("k = %v", DecodeF64(res[0]))
	}
}

func TestImmutableGlobalRejected(t *testing.T) {
	src := `(module
	  (global $k i32 (i32.const 1))
	  (func $f i32.const 2 global.set $k))`
	if _, err := AssembleAndValidate(src); err == nil {
		t.Fatal("validator accepted write to immutable global")
	}
}

func TestHostImports(t *testing.T) {
	src := `(module
	  (import "env" "mul3" (func $mul3 (param i32) (result i32)))
	  (func $f (export "f") (param $x i32) (result i32)
	    local.get $x
	    call $mul3))`
	mod, err := AssembleAndValidate(src)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := Instantiate(mod, map[string]HostModule{
		"env": {
			"mul3": func(_ *Instance, args []uint64) ([]uint64, error) {
				return []uint64{EncodeI32(DecodeI32(args[0]) * 3)}, nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := inst.Call("f", EncodeI32(14))
	if err != nil {
		t.Fatal(err)
	}
	if DecodeI32(res[0]) != 42 {
		t.Fatalf("host call = %d", DecodeI32(res[0]))
	}
}

func TestHostErrorBecomesTrap(t *testing.T) {
	src := `(module
	  (import "env" "boom" (func $boom))
	  (func $f (export "f") call $boom))`
	mod, _ := AssembleAndValidate(src)
	inst, err := Instantiate(mod, map[string]HostModule{
		"env": {"boom": func(_ *Instance, _ []uint64) ([]uint64, error) {
			return nil, errors.New("kaboom")
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = inst.Call("f")
	assertTrap(t, err, TrapHostError)
	if !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("cause lost: %v", err)
	}
}

func TestUnresolvedImportFails(t *testing.T) {
	src := `(module
	  (import "env" "missing" (func $m))
	  (func $f (export "f") call $m))`
	mod, _ := AssembleAndValidate(src)
	if _, err := Instantiate(mod, nil); err == nil {
		t.Fatal("missing import accepted")
	}
}

func TestDataSegmentsAndStart(t *testing.T) {
	src := `(module
	  (memory 1)
	  (data (i32.const 16) "faasm")
	  (global $ran (mut i32) (i32.const 0))
	  (func $init i32.const 1 global.set $ran)
	  (start $init)
	  (func $peek (export "peek") (param $a i32) (result i32)
	    local.get $a
	    i32.load8_u)
	  (func $ran (export "ran") (result i32) global.get $ran))`
	inst := instance(t, src)
	res, _ := inst.Call("peek", EncodeI32(16))
	if DecodeI32(res[0]) != 'f' {
		t.Fatalf("data byte = %c", DecodeI32(res[0]))
	}
	res, _ = inst.Call("ran")
	if DecodeI32(res[0]) != 1 {
		t.Fatal("start function did not run")
	}
}

func TestValidatorRejections(t *testing.T) {
	bad := []struct{ name, src string }{
		{"type mismatch", `(module (func $f (result i32) f64.const 1.0))`},
		{"stack underflow", `(module (func $f (result i32) i32.add))`},
		{"unbalanced push", `(module (func $f i32.const 1))`},
		{"bad local", `(module (func $f local.get 3 drop))`},
		{"bad branch depth", `(module (func $f br 2))`},
		{"memoryless load", `(module (func $f (result i32) i32.const 0 i32.load))`},
		{"if result without else", `(module (func $f (result i32) i32.const 1 if (result i32) i32.const 2 end))`},
		{"data outside memory", `(module (memory 1) (data (i32.const 65600) "xx"))`},
		{"call unknown", `(module (func $f call 9))`},
		{"select mismatch", `(module (func $f (result i32) i32.const 1 f64.const 2.0 i32.const 0 select drop i32.const 1))`},
	}
	for _, tc := range bad {
		if _, err := AssembleAndValidate(tc.src); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestUnvalidatedModuleRefused(t *testing.T) {
	mod, err := Assemble(`(module (func $f (export "f")))`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Instantiate(mod, nil); err == nil {
		t.Fatal("unvalidated module instantiated")
	}
	if _, err := EncodeObject(mod); err == nil {
		t.Fatal("unvalidated module encoded")
	}
}

func TestObjectRoundTrip(t *testing.T) {
	src := `(module
	  (memory 1)
	  (data (i32.const 8) "obj")
	  (global $g (mut i64) (i64.const 7))
	  (table (elem $f))
	  (func $f (export "f") (param $x i32) (result i32)
	    local.get $x
	    i32.const 8
	    i32.add))`
	mod, err := AssembleAndValidate(src)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := EncodeObject(mod)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeObject(blob)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := Instantiate(back, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := inst.Call("f", EncodeI32(34))
	if err != nil {
		t.Fatal(err)
	}
	if DecodeI32(res[0]) != 42 {
		t.Fatalf("round-tripped call = %d", DecodeI32(res[0]))
	}
	if _, err := DecodeObject([]byte("junk")); err == nil {
		t.Fatal("junk accepted as object")
	}
}

func TestWithMemoryBindsRestoredSnapshot(t *testing.T) {
	src := `(module
	  (memory 1)
	  (func $get (export "get") (result i32)
	    i32.const 0
	    i32.load))`
	mod, err := AssembleAndValidate(src)
	if err != nil {
		t.Fatal(err)
	}
	mem := wamem.MustNew(1, 0)
	mem.WriteU32(0, 777)
	snap := mem.Snapshot()
	inst, err := Instantiate(mod, nil, WithMemory(snap.Restore()))
	if err != nil {
		t.Fatal(err)
	}
	res, _ := inst.Call("get")
	if DecodeI32(res[0]) != 777 {
		t.Fatalf("restored memory read = %d", DecodeI32(res[0]))
	}
}

func TestSelectAndDrop(t *testing.T) {
	src := `(module
	  (func $f (export "f") (param $c i32) (result i32)
	    i32.const 10
	    i32.const 20
	    local.get $c
	    select))`
	if got := DecodeI32(run(t, src, "f", EncodeI32(1))[0]); got != 10 {
		t.Fatalf("select(1) = %d", got)
	}
	if got := DecodeI32(run(t, src, "f", EncodeI32(0))[0]); got != 20 {
		t.Fatalf("select(0) = %d", got)
	}
}

func TestConversions(t *testing.T) {
	src := `(module
	  (func $t (export "t") (param $x f64) (result i32)
	    local.get $x
	    i32.trunc_f64_s)
	  (func $c (export "c") (param $x i32) (result f64)
	    local.get $x
	    f64.convert_i32_s)
	  (func $w (export "w") (param $x i64) (result i32)
	    local.get $x
	    i32.wrap_i64))`
	inst := instance(t, src)
	res, _ := inst.Call("t", EncodeF64(-3.7))
	if DecodeI32(res[0]) != -3 {
		t.Fatalf("trunc(-3.7) = %d", DecodeI32(res[0]))
	}
	res, _ = inst.Call("c", EncodeI32(-5))
	if DecodeF64(res[0]) != -5.0 {
		t.Fatalf("convert(-5) = %v", DecodeF64(res[0]))
	}
	res, _ = inst.Call("w", uint64(0x1_0000_002A))
	if DecodeI32(res[0]) != 42 {
		t.Fatalf("wrap = %d", DecodeI32(res[0]))
	}
	_, err := inst.Call("t", EncodeF64(math.NaN()))
	assertTrap(t, err, TrapInvalidConversion)
	_, err = inst.Call("t", EncodeF64(1e300))
	assertTrap(t, err, TrapInvalidConversion)
}

func TestMemoryCopyFill(t *testing.T) {
	src := `(module
	  (memory 1)
	  (data (i32.const 0) "abcdef")
	  (func $cp (export "cp")
	    i32.const 100  ;; dst
	    i32.const 0    ;; src
	    i32.const 6    ;; len
	    memory.copy)
	  (func $fill (export "fill")
	    i32.const 200
	    i32.const 42
	    i32.const 8
	    memory.fill)
	  (func $peek (export "peek") (param $a i32) (result i32)
	    local.get $a
	    i32.load8_u))`
	inst := instance(t, src)
	if _, err := inst.Call("cp"); err != nil {
		t.Fatal(err)
	}
	res, _ := inst.Call("peek", EncodeI32(105))
	if DecodeI32(res[0]) != 'f' {
		t.Fatalf("copy byte = %c", DecodeI32(res[0]))
	}
	if _, err := inst.Call("fill"); err != nil {
		t.Fatal(err)
	}
	res, _ = inst.Call("peek", EncodeI32(207))
	if DecodeI32(res[0]) != 42 {
		t.Fatalf("fill byte = %d", DecodeI32(res[0]))
	}
}

func TestRotates(t *testing.T) {
	src := `(module
	  (func $rotl (export "rotl") (param i32 i32) (result i32)
	    local.get 0 local.get 1 i32.rotl))`
	res := run(t, src, "rotl", EncodeI32(1), EncodeI32(33))
	if uint32(res[0]) != 2 {
		t.Fatalf("rotl(1,33) = %d", uint32(res[0]))
	}
}

func TestTextErrors(t *testing.T) {
	bad := []string{
		`(module (func $f (export "f") bogus.op))`,
		`(module (func $f br $nolabel))`,
		`(module (func $f local.get $nope))`,
		`(module (func $f (export 42)))`,
		`(module (unknownfield))`,
		`(module (func $f i32.const))`,
		`(module (memory))`,
		`(module (data (i32.const 0) "x"))`, // data without memory
		`(module (func $f block end end))`,
		`(module`, // unclosed
	}
	for i, src := range bad {
		if _, err := Assemble(src); err == nil {
			t.Errorf("case %d: assembler accepted %q", i, src)
		}
	}
}

func TestStringEscapes(t *testing.T) {
	src := `(module
	  (memory 1)
	  (data (i32.const 0) "a\00b\ff\n\"\\")
	  (func $peek (export "peek") (param $a i32) (result i32)
	    local.get $a i32.load8_u))`
	inst := instance(t, src)
	want := []byte{'a', 0, 'b', 0xff, '\n', '"', '\\'}
	for i, w := range want {
		res, _ := inst.Call("peek", EncodeI32(int32(i)))
		if byte(res[0]) != w {
			t.Fatalf("byte %d = %#x, want %#x", i, byte(res[0]), w)
		}
	}
}

func TestWasmMinMaxNaN(t *testing.T) {
	if !math.IsNaN(wasmMin(math.NaN(), 1)) || !math.IsNaN(wasmMax(1, math.NaN())) {
		t.Fatal("NaN must propagate")
	}
	if !math.Signbit(wasmMin(math.Copysign(0, -1), 0)) {
		t.Fatal("min(-0,+0) must be -0")
	}
	if math.Signbit(wasmMax(math.Copysign(0, -1), 0)) {
		t.Fatal("max(-0,+0) must be +0")
	}
}

func BenchmarkInterpFib20(b *testing.B) {
	src := `(module
	  (func $fib (export "fib") (param $n i32) (result i32)
	    local.get $n
	    i32.const 2
	    i32.lt_s
	    if (result i32)
	      local.get $n
	    else
	      local.get $n i32.const 1 i32.sub call $fib
	      local.get $n i32.const 2 i32.sub call $fib
	      i32.add
	    end))`
	mod, err := AssembleAndValidate(src)
	if err != nil {
		b.Fatal(err)
	}
	inst, _ := Instantiate(mod, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inst.Call("fib", EncodeI32(20)); err != nil {
			b.Fatal(err)
		}
	}
}
