package frt

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"faasm.dev/faasm/internal/core"
	"faasm.dev/faasm/internal/kvs"
	"faasm.dev/faasm/internal/mbus"
	"faasm.dev/faasm/internal/metrics"
	"faasm.dev/faasm/internal/obsv"
	"faasm.dev/faasm/internal/queue"
	"faasm.dev/faasm/internal/sched"
	"faasm.dev/faasm/internal/state"
	"faasm.dev/faasm/internal/vfs"
	"faasm.dev/faasm/internal/vtime"
	"faasm.dev/faasm/internal/wavm"
)

// Transport executes a call on a peer instance (work sharing). The cluster
// package provides an in-process transport; cmd/faasmd provides HTTP. trace
// is the forwarding call's trace id (0 = untraced); the peer joins it via
// ExecuteForwarded so a forwarded invocation's spans land under one id on
// both hosts.
type Transport interface {
	ExecuteOn(host, function string, input []byte, trace obsv.TraceID) ([]byte, int32, error)
}

// Config configures one runtime instance.
type Config struct {
	// Host is this instance's cluster-unique name.
	Host string
	// Store is the global tier.
	Store kvs.Store
	// Files is the global file tier for Faaslet filesystems.
	Files vfs.GlobalStore
	// Capacity bounds concurrently executing calls (scheduler hint).
	Capacity int
	// PoolCap bounds idle warm Faaslets kept per function.
	PoolCap int
	// Clock drives timing (nil = wall clock).
	Clock vtime.Clock
	// Transport reaches peer instances; nil disables work sharing.
	Transport Transport
	// ColdStartDelay adds simulated initialisation cost per cold start
	// (used by the cluster simulator to model measured constants; zero for
	// real deployments, where the true cost is measured).
	ColdStartDelay time.Duration

	// LeaseTTL bounds how long this host's warm advertisements outlive its
	// last liveness heartbeat (0 = sched.DefaultLeaseTTL). The instance
	// heartbeats at LeaseTTL/3.
	LeaseTTL time.Duration
	// LocalityWeight blends data locality into peer forwarding (see
	// sched.Scheduler.LocalityWeight); 0 disables the blend.
	LocalityWeight float64
	// StateOwners, when non-nil, reports the healthy shard owners of a state
	// key (primary first) — shardkvs.Ring.HealthyOwners in sharded
	// deployments. With LocalShard it lets residency adverts credit
	// shard-primary co-location: keys whose primary shard this host co-hosts
	// count as resident even before they are pulled.
	StateOwners func(key string) []string
	// LocalShard names the shard-ring node this host co-hosts ("" = none).
	LocalShard string
	// PeerCacheTTL bounds the staleness of the scheduler's cached peer
	// warm set (0 = sched.DefaultPeerCacheTTL).
	PeerCacheTTL time.Duration

	// ElasticPool enables the warm-pool autoscaler: grow ahead of demand
	// on pool-empty misses, shrink after idleness. Off by default — the
	// pool then grows organically up to PoolCap and never shrinks.
	ElasticPool bool
	// PoolGrowFactor scales grow-ahead: the controller pre-provisions
	// misses×factor Faaslets per tick (0 = 2).
	PoolGrowFactor float64
	// PoolIdleTimeout is how long a pool must see no acquires before the
	// controller starts reclaiming its idle Faaslets (0 = 30s).
	PoolIdleTimeout time.Duration
	// ElasticInterval is the controller's tick (0 = 100ms).
	ElasticInterval time.Duration

	// Tracer samples and retains invocation traces; nil builds one from
	// TraceSample/TraceBuffer. The cluster harness shares one tracer across
	// hosts so a forwarded call's spans land in a single record.
	Tracer *obsv.Tracer
	// TraceSample traces 1-in-N invocations (0 = obsv.DefaultSampleRate,
	// 1 = every call, < 0 disables tracing).
	TraceSample int
	// TraceBuffer bounds retained traces (0 = obsv.DefaultTraceBuffer).
	TraceBuffer int
	// Registry receives this instance's metrics; nil creates a private one.
	Registry *obsv.Registry

	// AsyncQueue enables the durable async invocation path: InvokeAsync
	// enqueues into the global tier (internal/queue) and per-function
	// consumer loops on this host execute queued work through the normal
	// scheduling path. Off by default.
	AsyncQueue bool
	// QueueDepth bounds each function's queued-plus-in-flight items;
	// submits beyond it are shed (0 = queue.DefaultDepthCap).
	QueueDepth int
	// QueueLeaseTTL is the in-flight redelivery lease: a consumer that dies
	// mid-execution has its item reclaimed this long after the claim
	// (0 = queue.DefaultLeaseTTL).
	QueueLeaseTTL time.Duration
	// QueueRetryMax bounds redeliveries after a failed execution before the
	// item dead-letters (0 = queue.DefaultRetryMax, < 0 = no retries).
	QueueRetryMax int
	// QueueRetryBackoff is the base redelivery backoff, doubling per
	// attempt (0 = queue.DefaultRetryBackoff).
	QueueRetryBackoff time.Duration
	// QueuePoll is the consumer scan cadence (0 = queue.DefaultPoll).
	QueuePoll time.Duration
	// QueueConcurrency bounds concurrent queued executions per function on
	// this host (0 = queue.DefaultConcurrency).
	QueueConcurrency int
}

// Elastic-pool defaults.
const (
	defaultPoolGrowFactor  = 2.0
	defaultPoolIdleTimeout = 30 * time.Second
	defaultElasticInterval = 100 * time.Millisecond
)

// fnPool is one function's warm-Faaslet pool. Each function has its own
// lock, so acquire/release for different functions never contend; within a
// function the critical sections are a slice push/pop.
//
// Invariants: idle holds only fully reset Faaslets; resetting counts
// Faaslets committed to the pool whose background reset is still running;
// live counts every Faaslet bound to the function on this host (idle +
// resetting + checked out). idle+resetting never exceeds PoolCap.
type fnPool struct {
	mu        sync.Mutex
	cond      *sync.Cond
	idle      []*core.Faaslet
	resetting int
	live      int

	// Demand signals for the elastic controller (under mu; no clock reads
	// on the acquire path — idleness is inferred from the counter).
	acquires int64
	misses   int64
	// Controller-private cursors, touched only by the elastic loop.
	seenAcquires int64
	seenMisses   int64
	idleSince    time.Time
}

func newFnPool() *fnPool {
	p := &fnPool{}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Instance is one FAASM runtime instance.
type Instance struct {
	cfg     Config
	env     *core.Env
	local   *state.LocalTier
	calls   *mbus.CallTable
	sched   *sched.Scheduler
	clock   vtime.Clock
	slots   chan struct{}
	profile *accessProfile

	// defs and protos are copy-on-write: readers load the pointer with no
	// lock; writers (deployment-time only) clone under regMu and swap.
	defs   atomic.Pointer[map[string]core.FuncDef]
	protos atomic.Pointer[map[string]*core.Proto]
	regMu  sync.Mutex

	// pools maps function name → *fnPool.
	pools sync.Map
	// faasletCount tracks all live Faaslets (pooled + executing).
	faasletCount atomic.Int64

	// resetSem bounds concurrently running background resets; resetWG
	// tracks them so Shutdown can drain. shutMu orders release's
	// closed-check + pool-commit against Shutdown (releases hold the read
	// side, Shutdown the write side), so Shutdown never passes
	// resetWG.Wait while a release is between deciding to pool and
	// registering its reset, and a post-shutdown release can never
	// re-advertise the host.
	resetSem chan struct{}
	resetWG  sync.WaitGroup
	shutMu   sync.RWMutex
	closed   atomic.Bool

	// killed marks a simulated crash (Kill): the instance refuses work but
	// nothing retreats — peers must discover the death via lease expiry.
	killed atomic.Bool

	// draining marks a graceful stop (Drain): in-flight calls finish, new
	// forwarded-in work is refused (peers fall back and route around the
	// expiring lease), and locally entered calls prefer forwarding away.
	draining atomic.Bool

	// elastic controller lifecycle (nil when ElasticPool is off).
	elasticStop chan struct{}
	elasticDone chan struct{}
	elasticOnce sync.Once

	// Metrics for the evaluation.
	ColdStarts  metrics.Counter
	WarmStarts  metrics.Counter
	ProtoStarts metrics.Counter
	ExecLatency metrics.Latencies
	InitLatency metrics.Latencies
	Billable    metrics.BillableMemory
	// PoolMisses counts calls that found the warm pool empty and paid a
	// cold start on the critical path; Prewarmed counts Faaslets the
	// elastic controller pre-provisioned off it; IdleReclaims counts
	// Faaslets the controller evicted from idle pools.
	PoolMisses   metrics.Counter
	Prewarmed    metrics.Counter
	IdleReclaims metrics.Counter

	// tracer samples invocation traces; reg is the metrics registry both
	// feed the /metrics exposition. execHist/initHist are the bounded
	// histogram counterparts of ExecLatency/InitLatency (nanos).
	tracer   *obsv.Tracer
	reg      *obsv.Registry
	execHist *obsv.Histogram
	initHist *obsv.Histogram

	// queue is the durable async invocation queue (nil unless
	// Config.AsyncQueue); see async.go.
	queue *queue.Queue
}

// New creates a runtime instance.
func New(cfg Config) *Instance {
	if cfg.Host == "" {
		cfg.Host = "host-0"
	}
	if cfg.Store == nil {
		cfg.Store = kvs.NewEngine()
	}
	if cfg.Clock == nil {
		cfg.Clock = vtime.Real{}
	}
	if cfg.PoolCap <= 0 {
		cfg.PoolCap = 64
	}
	inst := &Instance{
		cfg:      cfg,
		local:    state.NewLocalTier(cfg.Store),
		calls:    mbus.NewCallTable(),
		sched:    sched.New(cfg.Host, cfg.Store, cfg.Capacity),
		clock:    cfg.Clock,
		profile:  newAccessProfile(),
		resetSem: make(chan struct{}, max(runtime.GOMAXPROCS(0), 2)),
	}
	inst.sched.SetClock(cfg.Clock)
	inst.sched.LeaseTTL = cfg.LeaseTTL
	inst.sched.PeerCacheTTL = cfg.PeerCacheTTL
	inst.sched.LocalityWeight = cfg.LocalityWeight
	inst.sched.SetResidencyProvider(inst.residentBytes)
	inst.sched.SetFootprintProvider(inst.profile.footprint)
	inst.tracer = cfg.Tracer
	if inst.tracer == nil {
		rate := cfg.TraceSample
		if rate == 0 {
			rate = obsv.DefaultSampleRate
		}
		inst.tracer = obsv.NewTracer(cfg.Clock.Now, rate, cfg.TraceBuffer)
	}
	inst.reg = cfg.Registry
	if inst.reg == nil {
		inst.reg = obsv.NewRegistry()
	}
	inst.instrument()
	defs := map[string]core.FuncDef{}
	protos := map[string]*core.Proto{}
	inst.defs.Store(&defs)
	inst.protos.Store(&protos)
	inst.env = &core.Env{
		State:  inst.local,
		Files:  cfg.Files,
		Clock:  cfg.Clock,
		Chain:  inst,
		Access: inst,
	}
	if cfg.Capacity > 0 {
		inst.slots = make(chan struct{}, cfg.Capacity)
	}
	// The liveness heartbeat keeps this host's warm advertisements leased;
	// it beats at lease cadence and only while something is advertised, so
	// steady-state warm calls still see zero global-tier operations.
	inst.sched.StartHeartbeat()
	if cfg.ElasticPool {
		inst.elasticStop = make(chan struct{})
		inst.elasticDone = make(chan struct{})
		go inst.elasticLoop()
	}
	if cfg.AsyncQueue {
		inst.queue = queue.New(queue.Config{
			Store:        cfg.Store,
			Clock:        cfg.Clock,
			Host:         cfg.Host,
			DepthCap:     cfg.QueueDepth,
			LeaseTTL:     cfg.QueueLeaseTTL,
			RetryMax:     cfg.QueueRetryMax,
			RetryBackoff: cfg.QueueRetryBackoff,
			Poll:         cfg.QueuePoll,
			Concurrency:  cfg.QueueConcurrency,
			// Claims stop on crash, drain, and shutdown; only a crash
			// abandons work already executing (drained hosts finish theirs).
			Gate: func() bool {
				return !inst.killed.Load() && !inst.draining.Load() && !inst.closed.Load()
			},
			Dead:   inst.killed.Load,
			Tracer: inst.tracer,
		}, inst)
		inst.queue.Instrument(inst.reg, cfg.Host)
	}
	return inst
}

// Host returns this instance's name.
func (i *Instance) Host() string { return i.cfg.Host }

// Tracer exposes the instance's invocation tracer (faasmd endpoints,
// experiment reports).
func (i *Instance) Tracer() *obsv.Tracer { return i.tracer }

// Registry exposes the instance's metrics registry (GET /metrics).
func (i *Instance) Registry() *obsv.Registry { return i.reg }

// instrument registers the runtime's metrics. Pre-existing atomic counters
// are bridged with CounterFunc — read at scrape time, nothing added to the
// write path; only the latency histograms are new hot-path work (three
// atomic adds per call).
func (i *Instance) instrument() {
	l := map[string]string{"host": i.cfg.Host}
	i.reg.CounterFunc("faasm_frt_cold_starts_total", "cold starts", l, i.ColdStarts.Value)
	i.reg.CounterFunc("faasm_frt_warm_starts_total", "warm-pool acquisitions", l, i.WarmStarts.Value)
	i.reg.CounterFunc("faasm_frt_proto_starts_total", "Proto-Faaslet restores", l, i.ProtoStarts.Value)
	i.reg.CounterFunc("faasm_frt_pool_misses_total", "calls that found the warm pool empty", l, i.PoolMisses.Value)
	i.reg.CounterFunc("faasm_frt_prewarmed_total", "Faaslets pre-provisioned by the elastic controller", l, i.Prewarmed.Value)
	i.reg.CounterFunc("faasm_frt_idle_reclaims_total", "idle Faaslets reclaimed by the elastic controller", l, i.IdleReclaims.Value)
	i.reg.GaugeFunc("faasm_frt_faaslets", "live Faaslets on this host", l, i.faasletCount.Load)
	i.execHist = i.reg.Histogram("faasm_frt_exec_seconds", "guest execution time", l)
	i.initHist = i.reg.Histogram("faasm_frt_init_seconds", "cold-start initialisation time", l)
	i.sched.Instrument(i.reg, i.cfg.Host)
	i.local.Instrument(i.reg, i.cfg.Host)
	i.calls.Instrument(i.reg, i.cfg.Host)
}

// traceNow reads the clock only for traced calls: untraced calls (tr == nil,
// the steady state) pay nothing here.
func (i *Instance) traceNow(tr *obsv.Trace) time.Time {
	if tr == nil {
		return time.Time{}
	}
	return i.clock.Now()
}

// span records one runtime-level span on tr; no-op for untraced calls.
func (i *Instance) span(tr *obsv.Trace, name, key string, start time.Time, bytes int64, fail bool) {
	if tr == nil {
		return
	}
	tr.RecordSpan(i.cfg.Host, name, key, start, i.clock.Now().Sub(start), bytes, fail)
}

// NoteStateAccess implements core.StateAccess: every guest state read feeds
// the per-function access profile behind locality scoring.
func (i *Instance) NoteStateAccess(fn, key string, n int64) {
	i.profile.record(fn, key, n)
}

// residentBytes reports how much of fn's profiled state footprint is
// resident on this host: per profiled key, the locally pulled bytes clipped
// to the profiled bytes — plus full shard-primary co-location credit when
// this host co-hosts the key's primary shard (the data is one loopback hop
// away even before it is pulled). Feeds the scheduler's lease-piggybacked
// residency adverts.
func (i *Instance) residentBytes(fn string) int64 {
	keys := i.profile.keysOf(fn)
	var total int64
	for k, profiled := range keys {
		r := i.local.ResidentBytes(k)
		if r > profiled {
			r = profiled
		}
		if r < profiled && i.cfg.StateOwners != nil && i.cfg.LocalShard != "" {
			if owners := i.cfg.StateOwners(k); len(owners) > 0 && owners[0] == i.cfg.LocalShard {
				r = profiled
			}
		}
		total += r
	}
	return total
}

// Residency reports this host's per-function resident state bytes for every
// profiled function (faasmd /status).
func (i *Instance) Residency() map[string]int64 {
	out := map[string]int64{}
	i.profile.mu.Lock()
	fns := make([]string, 0, len(i.profile.fns))
	for fn := range i.profile.fns {
		fns = append(fns, fn)
	}
	i.profile.mu.Unlock()
	for _, fn := range fns {
		if b := i.residentBytes(fn); b > 0 {
			out[fn] = b
		}
	}
	return out
}

// AccessedStateBytes totals the state bytes guests addressed on this host
// (local or remote; the remote share is the tier's Pulled counter).
func (i *Instance) AccessedStateBytes() int64 { return i.profile.accessed.Load() }

// State exposes the instance's local state tier.
func (i *Instance) State() *state.LocalTier { return i.local }

// Scheduler exposes the local scheduler (tests, metrics).
func (i *Instance) Scheduler() *sched.Scheduler { return i.sched }

// Env exposes the Faaslet environment (the cluster harness tweaks it).
func (i *Instance) Env() *core.Env { return i.env }

// RegisterNative deploys a native-guest function.
func (i *Instance) RegisterNative(name string, fn core.NativeGuest) {
	i.RegisterDef(core.FuncDef{Name: name, Native: fn})
}

// RegisterModule deploys a validated wavm module under name.
func (i *Instance) RegisterModule(name string, mod *wavm.Module) error {
	if !mod.Validated {
		return errors.New("frt: module must pass code generation before deployment")
	}
	i.RegisterDef(core.FuncDef{Name: name, Module: mod})
	return nil
}

// RegisterDef deploys a full function definition (copy-on-write swap; calls
// in flight keep reading the old map lock-free).
func (i *Instance) RegisterDef(def core.FuncDef) {
	i.regMu.Lock()
	defer i.regMu.Unlock()
	old := *i.defs.Load()
	m := make(map[string]core.FuncDef, len(old)+1)
	for k, v := range old {
		m[k] = v
	}
	m[def.Name] = def
	i.defs.Store(&m)
	// Deploying a function also starts its queue consumers on this host, so
	// every host that can execute fn also drains its queue.
	if i.queue != nil {
		i.queue.EnsureConsumer(def.Name)
	}
}

// Functions lists deployed function names.
func (i *Instance) Functions() []string {
	m := *i.defs.Load()
	out := make([]string, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	return out
}

// GenerateProto runs a function's initialisation path and snapshots the
// resulting Faaslet as the function's Proto-Faaslet (§5.2). init, when
// non-nil, is executed inside the Faaslet first (user-defined init code).
// The proto is also serialised to the global tier so peers can restore it.
func (i *Instance) GenerateProto(function string, init func(ctx *core.Ctx) error) error {
	def, ok := i.def(function)
	if !ok {
		return fmt.Errorf("frt: unknown function %q", function)
	}
	f, err := core.New(def, i.env)
	if err != nil {
		return err
	}
	defer f.Close()
	if init != nil {
		initDef := def
		initDef.Native = func(ctx *core.Ctx) (int32, error) {
			if err := init(ctx); err != nil {
				return 1, err
			}
			return 0, nil
		}
		if def.Module == nil {
			// For native guests, run init through a scratch execution.
			g, err := core.New(initDef, i.env)
			if err != nil {
				return err
			}
			if _, ret, err := g.Execute(nil); err != nil || ret != 0 {
				g.Close()
				return fmt.Errorf("frt: proto init for %s failed: ret=%d err=%v", function, ret, err)
			}
			proto, err := g.Snapshot()
			g.Close()
			if err != nil {
				return err
			}
			return i.installProto(function, proto)
		}
		// For wavm guests, init runs against the live Faaslet's state via a
		// host-side Ctx (the init code is trusted deployment code).
		if err := init(coreCtx(f)); err != nil {
			return fmt.Errorf("frt: proto init for %s: %w", function, err)
		}
	}
	proto, err := f.Snapshot()
	if err != nil {
		return err
	}
	return i.installProto(function, proto)
}

// coreCtx builds a host-side Ctx for deployment-time initialisation.
func coreCtx(f *core.Faaslet) *core.Ctx { return core.NewCtx(f) }

// setProto copy-on-write-installs a proto: clone under regMu, insert, swap.
func (i *Instance) setProto(function string, proto *core.Proto) {
	i.regMu.Lock()
	defer i.regMu.Unlock()
	old := *i.protos.Load()
	m := make(map[string]*core.Proto, len(old)+1)
	for k, v := range old {
		m[k] = v
	}
	m[function] = proto
	i.protos.Store(&m)
}

func (i *Instance) installProto(function string, proto *core.Proto) error {
	i.setProto(function, proto)
	blob, err := proto.Serialize()
	if err != nil {
		// Protos with shared mappings stay host-local; that is fine.
		return nil
	}
	return i.cfg.Store.Set("proto/"+function, blob)
}

// FetchProto pulls a peer-generated proto from the global tier (cross-host
// restore).
func (i *Instance) FetchProto(function string) error {
	blob, err := i.cfg.Store.Get("proto/" + function)
	if err != nil {
		return err
	}
	if blob == nil {
		return fmt.Errorf("frt: no proto for %q in global tier", function)
	}
	proto, err := core.DeserializeProto(blob)
	if err != nil {
		return err
	}
	i.setProto(function, proto)
	return nil
}

func (i *Instance) def(function string) (core.FuncDef, bool) {
	def, ok := (*i.defs.Load())[function]
	return def, ok
}

func (i *Instance) proto(function string) *core.Proto {
	return (*i.protos.Load())[function]
}

func (i *Instance) poolFor(function string) *fnPool {
	if p, ok := i.pools.Load(function); ok {
		return p.(*fnPool)
	}
	p, _ := i.pools.LoadOrStore(function, newFnPool())
	return p.(*fnPool)
}

// Invoke starts an asynchronous call and returns its id; Await/Output
// retrieve the result. This is the external entry point and the chain_call
// implementation. Sampled calls get a trace at creation, so the queue wait
// between dispatch and execution is attributed.
func (i *Instance) Invoke(function string, input []byte) (uint64, error) {
	if _, ok := i.def(function); !ok {
		return 0, fmt.Errorf("frt: unknown function %q", function)
	}
	id := i.calls.Create(function, input)
	tr := i.tracer.Start(i.cfg.Host, function)
	if tr != nil {
		i.calls.SetTraceID(id, uint64(tr.ID()))
	}
	created := i.traceNow(tr)
	go i.dispatch(id, function, input, tr, created)
	return id, nil
}

// Chain implements core.Chainer.
func (i *Instance) Chain(function string, input []byte) (uint64, error) {
	return i.Invoke(function, input)
}

// Await implements core.Chainer.
func (i *Instance) Await(id uint64) (int32, error) { return i.calls.Await(id) }

// Output implements core.Chainer.
func (i *Instance) Output(id uint64) ([]byte, error) { return i.calls.Output(id) }

// Call is the synchronous entry point: schedule and execute inline. When
// the scheduler picks local execution (the warm steady state) the call
// bypasses the dispatch goroutine and the call table entirely — no spawn,
// no record, no wakeup. Unsampled calls (the common case) pay one atomic
// add for the sampling decision and nothing else.
func (i *Instance) Call(function string, input []byte) ([]byte, int32, error) {
	if _, ok := i.def(function); !ok {
		return nil, -1, fmt.Errorf("frt: unknown function %q", function)
	}
	tr := i.tracer.Start(i.cfg.Host, function)
	out, ret, err := i.route(tr, function, input)
	i.tracer.Finish(tr)
	return out, ret, err
}

// CallTraced is Call also returning the invocation's trace id (0 when the
// call was sampled out) — the id /invoke hands back in X-Faasm-Trace.
func (i *Instance) CallTraced(function string, input []byte) ([]byte, int32, obsv.TraceID, error) {
	if _, ok := i.def(function); !ok {
		return nil, -1, 0, fmt.Errorf("frt: unknown function %q", function)
	}
	tr := i.tracer.Start(i.cfg.Host, function)
	out, ret, err := i.route(tr, function, input)
	i.tracer.Finish(tr)
	return out, ret, tr.ID(), err
}

// dispatch runs one asynchronous call, parking its result in the table.
func (i *Instance) dispatch(id uint64, function string, input []byte, tr *obsv.Trace, created time.Time) {
	i.calls.Start(id)
	i.span(tr, "queue.wait", "", created, 0, false)
	out, ret, err := i.route(tr, function, input)
	i.tracer.Finish(tr)
	i.calls.Complete(id, out, ret, err)
}

// route executes one call per the scheduler's decision: forward to a warm
// peer when told to (falling back locally — and dropping the stale peer
// cache — if the peer fails), execute here otherwise. Every forward's
// round-trip is reported back to the scheduler, feeding the per-peer
// latency/load scores that weighted forwarding picks by.
func (i *Instance) route(tr *obsv.Trace, function string, input []byte) ([]byte, int32, error) {
	// A killed host can no more originate calls than serve them: the crash
	// semantics Kill simulates cover both directions.
	if i.killed.Load() {
		return nil, -1, fmt.Errorf("frt: host %s is down", i.cfg.Host)
	}
	schedStart := i.traceNow(tr)
	decision, err := i.sched.Schedule(function)
	// The span key carries the placement and — when the locality blend ran —
	// the chosen peer's resident fraction and the best-resident alternative,
	// so /traces explains *why* a forward landed where it did; the span's
	// byte count is the state bytes the choice avoided re-pulling.
	spanKey := decision.Placement.String()
	if decision.BestResidentHost != "" {
		spanKey = fmt.Sprintf("%s loc=%.2f to=%s best=%s", spanKey, decision.LocalityFrac, decision.TargetHost, decision.BestResidentHost)
	}
	i.span(tr, "sched.decide", spanKey, schedStart, decision.SavedBytes, err != nil)
	if err != nil {
		return nil, -1, err
	}
	if decision.Placement == sched.PlaceForward && i.cfg.Transport != nil {
		start := i.clock.Now()
		i.sched.ForwardBegin(decision.TargetHost)
		out, ret, err := i.cfg.Transport.ExecuteOn(decision.TargetHost, function, input, tr.ID())
		i.sched.ForwardEnd(decision.TargetHost, i.clock.Now().Sub(start), err == nil)
		if tr != nil {
			tr.RecordSpan(i.cfg.Host, "forward", decision.TargetHost, start, i.clock.Now().Sub(start), int64(len(input)), err != nil)
		}
		if err == nil {
			return out, ret, nil
		}
		// Peer failed: the cached warm set named a dead host.
		i.sched.InvalidatePeers(function)
	}
	return i.executeLocal(tr, function, input)
}

// ExecuteLocal runs a call on this host, acquiring a Faaslet from the warm
// pool or cold-starting one. The response returns as soon as execution
// finishes; the Faaslet's reset happens off this path.
func (i *Instance) ExecuteLocal(function string, input []byte) ([]byte, int32, error) {
	return i.executeLocal(nil, function, input)
}

// ExecuteForwarded is the entry point peers use when sharing work with this
// host: it joins the forwarding host's trace (id 0 = untraced) so the remote
// half of the invocation lands under the same trace id, then executes
// locally. When the join created a local trace record (per-host tracers),
// this host owns its lifecycle and finishes it.
// A draining host refuses forwarded work outright — the caller's route()
// falls back to local execution, so the refusal costs latency, never a
// failed call — while calls already executing here run to completion.
func (i *Instance) ExecuteForwarded(function string, input []byte, trace obsv.TraceID) ([]byte, int32, error) {
	if i.draining.Load() {
		return nil, -1, fmt.Errorf("frt: host %s: %w", i.cfg.Host, ErrDraining)
	}
	tr, created := i.tracer.Join(trace, i.cfg.Host, function)
	out, ret, err := i.executeLocal(tr, function, input)
	if created {
		i.tracer.Finish(tr)
	}
	return out, ret, err
}

func (i *Instance) executeLocal(tr *obsv.Trace, function string, input []byte) ([]byte, int32, error) {
	if i.killed.Load() {
		return nil, -1, fmt.Errorf("frt: host %s is down", i.cfg.Host)
	}
	def, ok := i.def(function)
	if !ok {
		return nil, -1, fmt.Errorf("frt: unknown function %q", function)
	}
	i.sched.Begin()
	defer i.sched.End()
	if i.slots != nil {
		slotStart := i.traceNow(tr)
		i.slots <- struct{}{}
		i.span(tr, "queue.wait", "slots", slotStart, 0, false)
		defer func() { <-i.slots }()
	}

	acqStart := i.traceNow(tr)
	f, cold, err := i.acquire(def)
	if tr != nil {
		name := "pool.acquire"
		if cold {
			name = "cold.start"
		}
		i.span(tr, name, function, acqStart, 0, err != nil)
	}
	if err != nil {
		// A failed cold start must not leave this host advertised as warm:
		// peers would keep forwarding calls here to die the same way.
		i.retreatIfDead(def.Name)
		return nil, -1, err
	}
	if tr != nil {
		f.SetTraceSink(i.cfg.Host, tr)
	}
	start := i.clock.Now()
	out, ret, execErr := f.Execute(input)
	dur := i.clock.Now().Sub(start)
	if tr != nil {
		tr.RecordSpan(i.cfg.Host, "exec", function, start, dur, 0, execErr != nil)
		f.SetTraceSink("", nil)
	}
	i.ExecLatency.Record(dur)
	i.execHist.Observe(int64(dur))
	i.Billable.Charge(f.Footprint(), dur)
	i.release(def.Name, f, execErr == nil)
	return out, ret, execErr
}

// acquire takes a warm Faaslet from the pool or creates one, reporting
// whether the call paid a cold start. If the pool is momentarily empty but
// resets are in flight, it waits for one — the pool never hands out a
// non-reset Faaslet, and a reset restore is never slower than a full cold
// start.
func (i *Instance) acquire(def core.FuncDef) (*core.Faaslet, bool, error) {
	p := i.poolFor(def.Name)
	p.mu.Lock()
	p.acquires++
	for {
		if n := len(p.idle); n > 0 {
			f := p.idle[n-1]
			p.idle[n-1] = nil
			p.idle = p.idle[:n-1]
			p.mu.Unlock()
			i.sched.NoteEvicted(def.Name, 1) // it is busy now, not idle-warm
			i.WarmStarts.Add(1)
			return f, false, nil
		}
		if p.resetting == 0 {
			break
		}
		p.cond.Wait()
	}
	// Pool-empty miss: this call pays a cold start on its critical path —
	// the demand signal the elastic controller grows ahead of.
	p.misses++
	p.mu.Unlock()
	i.PoolMisses.Add(1)

	// Cold start.
	if i.cfg.ColdStartDelay > 0 {
		i.clock.Sleep(i.cfg.ColdStartDelay)
	}
	start := i.clock.Now()
	var f *core.Faaslet
	var err error
	if proto := i.proto(def.Name); proto != nil {
		f, err = core.NewFromProto(def, i.env, proto)
		i.ProtoStarts.Add(1)
	} else {
		f, err = core.New(def, i.env)
	}
	if err != nil {
		return nil, true, err
	}
	initDur := i.clock.Now().Sub(start)
	i.InitLatency.Record(initDur)
	i.initHist.Observe(int64(initDur))
	i.ColdStarts.Add(1)
	p.mu.Lock()
	p.live++
	p.mu.Unlock()
	i.faasletCount.Add(1)
	return f, true, nil
}

// release returns the Faaslet to the warm pool, handing its reset (§5.2:
// the restore of the Proto-Faaslet that discards all guest residue) to a
// background resetter so the caller's response latency excludes it. The
// Faaslet is committed to the pool — and the host advertised warm — before
// the reset runs; acquire waits for in-flight resets rather than handing
// out a dirty Faaslet.
func (i *Instance) release(function string, f *core.Faaslet, healthy bool) {
	p := i.poolFor(function)
	if healthy {
		i.shutMu.RLock()
		if !i.closed.Load() {
			p.mu.Lock()
			if len(p.idle)+p.resetting < i.cfg.PoolCap {
				p.resetting++
				p.mu.Unlock()
				i.sched.NoteWarm(function, 1)
				i.resetWG.Add(1)
				i.shutMu.RUnlock()
				go i.resetAndPool(p, function, f)
				return
			}
			p.mu.Unlock()
		}
		i.shutMu.RUnlock()
	}
	// Unhealthy, shut down, or the pool is full: discard.
	i.discard(p, function, f)
}

// resetAndPool is the background resetter: restore the Faaslet, then make
// it acquirable. Runs under resetSem so at most ~GOMAXPROCS resets execute
// at once.
func (i *Instance) resetAndPool(p *fnPool, function string, f *core.Faaslet) {
	defer i.resetWG.Done()
	i.resetSem <- struct{}{}
	err := f.Reset()
	<-i.resetSem

	p.mu.Lock()
	p.resetting--
	if err == nil && !i.closed.Load() {
		p.idle = append(p.idle, f)
		p.cond.Broadcast()
		p.mu.Unlock()
		return
	}
	p.cond.Broadcast()
	p.mu.Unlock()
	// Reset failed (or the instance shut down): the pooled slot is gone.
	i.sched.NoteEvicted(function, 1)
	i.discard(p, function, f)
}

// discard closes a live Faaslet and retreats from the global warm set when
// it was the function's last one on this host.
func (i *Instance) discard(p *fnPool, function string, f *core.Faaslet) {
	p.mu.Lock()
	p.live--
	last := p.live == 0
	p.mu.Unlock()
	i.faasletCount.Add(-1)
	f.Close()
	if last {
		i.sched.Retreat(function)
	}
}

// retreatIfDead withdraws the host's warm advertisement for fn when it has
// no live Faaslets backing it (e.g. the advertised cold start failed).
func (i *Instance) retreatIfDead(function string) {
	p := i.poolFor(function)
	p.mu.Lock()
	dead := p.live == 0
	p.mu.Unlock()
	if dead {
		i.sched.Retreat(function)
	}
}

// FaasletCount reports live Faaslets on this instance.
func (i *Instance) FaasletCount() int {
	return int(i.faasletCount.Load())
}

// PoolSize reports warm pool entries for a function: idle Faaslets plus
// those whose background reset is still in flight (they are committed to
// the pool and acquire will wait for them).
func (i *Instance) PoolSize(function string) int {
	p := i.poolFor(function)
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.idle) + p.resetting
}

// LocalFootprint sums the footprints of pooled Faaslets plus the local
// state tier (per-host memory accounting for Fig 6c).
func (i *Instance) LocalFootprint() int64 {
	var n int64
	i.pools.Range(func(_, v any) bool {
		p := v.(*fnPool)
		p.mu.Lock()
		for _, f := range p.idle {
			n += f.Footprint()
		}
		p.mu.Unlock()
		return true
	})
	return n + i.local.LocalBytes()
}

// Shutdown closes all pooled Faaslets after draining in-flight resets, and
// stops the background heartbeat and elastic-pool goroutines. The host's
// liveness lease is left to expire on its own (see sched.StopHeartbeat).
func (i *Instance) Shutdown() {
	i.shutMu.Lock()
	if !i.closed.CompareAndSwap(false, true) {
		i.shutMu.Unlock()
		return
	}
	i.shutMu.Unlock()
	i.sched.StopHeartbeat()
	i.stopElastic()
	if i.queue != nil {
		// Stop queue consumers before tearing pools down; items this host
		// held in flight redeliver elsewhere after lease expiry.
		i.queue.Close()
	}
	if i.elasticDone != nil {
		// Wait the controller out (≤ one tick) so no grow/reclaim pass can
		// race the pool teardown below.
		<-i.elasticDone
	}
	i.resetWG.Wait()
	i.pools.Range(func(k, v any) bool {
		fn := k.(string)
		p := v.(*fnPool)
		p.mu.Lock()
		idle := p.idle
		p.idle = nil
		p.live -= len(idle)
		p.mu.Unlock()
		for _, f := range idle {
			f.Close()
		}
		i.faasletCount.Add(int64(-len(idle)))
		i.sched.NoteEvicted(fn, len(idle))
		i.sched.Retreat(fn)
		return true
	})
}
