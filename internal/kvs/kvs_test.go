package kvs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// storeImpls runs a subtest against both the in-process engine and a TCP
// client talking to a live server, so protocol behaviour cannot drift from
// engine behaviour.
func storeImpls(t *testing.T, f func(t *testing.T, s Store)) {
	t.Helper()
	t.Run("engine", func(t *testing.T) { f(t, NewEngine()) })
	t.Run("tcp", func(t *testing.T) {
		srv, err := NewServer(NewEngine(), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		c := NewClient(srv.Addr())
		defer c.Close()
		f(t, c)
	})
}

func TestGetSetDelete(t *testing.T) {
	storeImpls(t, func(t *testing.T, s Store) {
		v, err := s.Get("missing")
		if err != nil || v != nil {
			t.Fatalf("missing key: %v %v", v, err)
		}
		if err := s.Set("k", []byte("value")); err != nil {
			t.Fatal(err)
		}
		v, err = s.Get("k")
		if err != nil || string(v) != "value" {
			t.Fatalf("get: %q %v", v, err)
		}
		if err := s.Delete("k"); err != nil {
			t.Fatal(err)
		}
		v, _ = s.Get("k")
		if v != nil {
			t.Fatal("delete did not remove key")
		}
	})
}

func TestBinaryAndOddKeys(t *testing.T) {
	storeImpls(t, func(t *testing.T, s Store) {
		key := "state/with spaces/and\"quotes\""
		val := []byte{0, 1, 2, 255, '\n', '"', 0}
		if err := s.Set(key, val); err != nil {
			t.Fatal(err)
		}
		got, err := s.Get(key)
		if err != nil || !bytes.Equal(got, val) {
			t.Fatalf("binary round trip: %v %v", got, err)
		}
	})
}

func TestRanges(t *testing.T) {
	storeImpls(t, func(t *testing.T, s Store) {
		if err := s.Set("k", []byte("0123456789")); err != nil {
			t.Fatal(err)
		}
		v, err := s.GetRange("k", 2, 3)
		if err != nil || string(v) != "234" {
			t.Fatalf("getrange: %q %v", v, err)
		}
		// Truncated read past the end.
		v, _ = s.GetRange("k", 8, 10)
		if string(v) != "89" {
			t.Fatalf("truncated range: %q", v)
		}
		// Entirely past the end.
		v, _ = s.GetRange("k", 50, 5)
		if v != nil {
			t.Fatalf("past-end range: %q", v)
		}
		// SetRange with zero-extension.
		if err := s.SetRange("k", 12, []byte("AB")); err != nil {
			t.Fatal(err)
		}
		v, _ = s.Get("k")
		if len(v) != 14 || v[10] != 0 || string(v[12:]) != "AB" {
			t.Fatalf("setrange extend: %q", v)
		}
		// In-place overwrite.
		if err := s.SetRange("k", 0, []byte("XY")); err != nil {
			t.Fatal(err)
		}
		v, _ = s.Get("k")
		if string(v[:2]) != "XY" {
			t.Fatalf("setrange overwrite: %q", v)
		}
	})
}

func TestAppendAndLen(t *testing.T) {
	storeImpls(t, func(t *testing.T, s Store) {
		n, err := s.Append("log", []byte("aa"))
		if err != nil || n != 2 {
			t.Fatalf("append: %d %v", n, err)
		}
		n, err = s.Append("log", []byte("bbb"))
		if err != nil || n != 5 {
			t.Fatalf("append 2: %d %v", n, err)
		}
		l, err := s.Len("log")
		if err != nil || l != 5 {
			t.Fatalf("len: %d %v", l, err)
		}
		l, _ = s.Len("missing")
		if l != 0 {
			t.Fatalf("missing len = %d", l)
		}
	})
}

func TestSets(t *testing.T) {
	storeImpls(t, func(t *testing.T, s Store) {
		added, err := s.SAdd("warm", "host-b")
		if err != nil || !added {
			t.Fatalf("sadd: %v %v", added, err)
		}
		added, _ = s.SAdd("warm", "host-b")
		if added {
			t.Fatal("duplicate sadd reported new")
		}
		s.SAdd("warm", "host-a")
		members, err := s.SMembers("warm")
		if err != nil || len(members) != 2 || members[0] != "host-a" || members[1] != "host-b" {
			t.Fatalf("smembers: %v %v", members, err)
		}
		removed, _ := s.SRem("warm", "host-a")
		if !removed {
			t.Fatal("srem existing returned false")
		}
		removed, _ = s.SRem("warm", "host-a")
		if removed {
			t.Fatal("srem missing returned true")
		}
	})
}

func TestIncr(t *testing.T) {
	storeImpls(t, func(t *testing.T, s Store) {
		v, err := s.Incr("calls", 1)
		if err != nil || v != 1 {
			t.Fatalf("incr: %d %v", v, err)
		}
		v, _ = s.Incr("calls", 41)
		if v != 42 {
			t.Fatalf("incr 2: %d", v)
		}
		v, _ = s.Incr("calls", -2)
		if v != 40 {
			t.Fatalf("decr: %d", v)
		}
	})
}

func TestLocksExclusion(t *testing.T) {
	storeImpls(t, func(t *testing.T, s Store) {
		tok, err := s.Lock("key", true, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		acquired := make(chan uint64)
		go func() {
			tok2, err := s.Lock("key", true, time.Second)
			if err != nil {
				t.Error(err)
			}
			acquired <- tok2
		}()
		select {
		case <-acquired:
			t.Fatal("second writer acquired while first held")
		case <-time.After(50 * time.Millisecond):
		}
		if err := s.Unlock("key", tok); err != nil {
			t.Fatal(err)
		}
		select {
		case tok2 := <-acquired:
			s.Unlock("key", tok2)
		case <-time.After(2 * time.Second):
			t.Fatal("second writer never acquired")
		}
	})
}

func TestReadersShareWritersExclude(t *testing.T) {
	storeImpls(t, func(t *testing.T, s Store) {
		r1, err := s.Lock("key", false, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := s.Lock("key", false, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		wAcquired := make(chan uint64)
		go func() {
			w, _ := s.Lock("key", true, time.Second)
			wAcquired <- w
		}()
		select {
		case <-wAcquired:
			t.Fatal("writer acquired under readers")
		case <-time.After(50 * time.Millisecond):
		}
		s.Unlock("key", r1)
		s.Unlock("key", r2)
		select {
		case w := <-wAcquired:
			s.Unlock("key", w)
		case <-time.After(2 * time.Second):
			t.Fatal("writer never acquired after readers released")
		}
	})
}

func TestLockLeaseExpiry(t *testing.T) {
	e := NewEngine()
	if _, err := e.Lock("key", true, 30*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Do not unlock: the lease must expire and admit the next writer.
	done := make(chan struct{})
	go func() {
		tok, err := e.Lock("key", true, time.Second)
		if err == nil {
			e.Unlock("key", tok)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("lease never expired")
	}
}

func TestUnlockUnknownTokenIsNoop(t *testing.T) {
	e := NewEngine()
	if err := e.Unlock("nokey", 99); err != nil {
		t.Fatal(err)
	}
	tok, _ := e.Lock("k", true, time.Second)
	if err := e.Unlock("k", tok+1); err != nil {
		t.Fatal(err)
	}
	// Real holder still holds: a second writer must block.
	got := make(chan struct{})
	go func() {
		t2, _ := e.Lock("k", true, time.Second)
		e.Unlock("k", t2)
		close(got)
	}()
	select {
	case <-got:
		t.Fatal("stale unlock released the lock")
	case <-time.After(30 * time.Millisecond):
	}
	e.Unlock("k", tok)
	<-got
}

func TestConcurrentIncrement(t *testing.T) {
	storeImpls(t, func(t *testing.T, s Store) {
		var wg sync.WaitGroup
		const workers, per = 8, 50
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					if _, err := s.Incr("n", 1); err != nil {
						t.Error(err)
						return
					}
				}
			}()
		}
		wg.Wait()
		v, _ := s.Incr("n", 0)
		if v != workers*per {
			t.Fatalf("lost updates: %d != %d", v, workers*per)
		}
	})
}

func TestGlobalLockProtectsReadModifyWrite(t *testing.T) {
	// The §4.2 consistent-write recipe: lock, read, modify, write, unlock.
	storeImpls(t, func(t *testing.T, s Store) {
		s.Set("v", []byte("0"))
		var wg sync.WaitGroup
		const workers, per = 4, 25
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					tok, err := s.Lock("v", true, time.Second)
					if err != nil {
						t.Error(err)
						return
					}
					cur, _ := s.Get("v")
					var n int
					fmt.Sscanf(string(cur), "%d", &n)
					s.Set("v", []byte(fmt.Sprintf("%d", n+1)))
					s.Unlock("v", tok)
				}
			}()
		}
		wg.Wait()
		final, _ := s.Get("v")
		if string(final) != fmt.Sprintf("%d", workers*per) {
			t.Fatalf("read-modify-write lost updates: %s", final)
		}
	})
}

func TestClientByteAccounting(t *testing.T) {
	srv, err := NewServer(NewEngine(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewClient(srv.Addr())
	defer c.Close()
	payload := make([]byte, 10_000)
	if err := c.Set("big", payload); err != nil {
		t.Fatal(err)
	}
	if c.Sent.Value() < 10_000 {
		t.Fatalf("sent bytes %d < payload", c.Sent.Value())
	}
	if _, err := c.Get("big"); err != nil {
		t.Fatal(err)
	}
	if c.Received.Value() < 10_000 {
		t.Fatalf("received bytes %d < payload", c.Received.Value())
	}
}

func TestEngineTotalBytesAndKeys(t *testing.T) {
	e := NewEngine()
	e.Set("a", make([]byte, 100))
	e.Set("b", make([]byte, 50))
	if e.TotalBytes() != 150 {
		t.Fatalf("total = %d", e.TotalBytes())
	}
	keys := e.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("keys = %v", keys)
	}
}

func TestSplitFieldsQuoting(t *testing.T) {
	f := func(key string) bool {
		line := fmt.Sprintf("GET %s", quoteField(key))
		fields, err := splitFields(line)
		return err == nil && len(fields) == 2 && fields[1] == key
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func quoteField(s string) string {
	return fmt.Sprintf("%q", s)
}

// Property: engine range writes agree with a reference byte-slice model.
func TestPropertyRangeModel(t *testing.T) {
	e := NewEngine()
	model := []byte{}
	f := func(off uint16, data []byte) bool {
		o := int(off) % 4096
		if err := e.SetRange("m", o, data); err != nil {
			return false
		}
		if need := o + len(data); need > len(model) {
			grown := make([]byte, need)
			copy(grown, model)
			model = grown
		}
		copy(model[o:], data)
		got, err := e.Get("m")
		return err == nil && bytes.Equal(got, model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngineSetGet(b *testing.B) {
	e := NewEngine()
	val := make([]byte, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Set("k", val)
		e.Get("k")
	}
}

func BenchmarkTCPRoundTrip(b *testing.B) {
	srv, err := NewServer(NewEngine(), "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c := NewClient(srv.Addr())
	defer c.Close()
	val := make([]byte, 1024)
	c.Set("k", val)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Get("k"); err != nil {
			b.Fatal(err)
		}
	}
}
