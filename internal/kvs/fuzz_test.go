package kvs

// Fuzz targets for the wire protocol's parsing surface: the request-line
// splitter, the TTL validator, and the full per-connection loop (command
// dispatch + payload framing). Seeds come from the adversarial cases the
// hardening suite pinned (see hardening_test.go); the fuzzer's job is to
// find the malformed input those hand-written cases missed. Invariants:
// no panic, no hang, and for well-formed input the parses round-trip.

import (
	"io"
	"net"
	"strconv"
	"strings"
	"testing"
	"time"
)

// FuzzSplitFields exercises the request-line tokenizer: arbitrary lines
// must either fail cleanly or produce fields that survive a
// quote-and-reparse round trip (so the unquoting is a real inverse, not a
// lossy guess).
func FuzzSplitFields(f *testing.F) {
	for _, seed := range []string{
		"",
		"PING",
		"GET \"k\"",
		"SET \"k\" 3",
		"GET \"unterminated",
		"SET \"k\" notanumber",
		"SETEX \"k\" 0 3",
		"INCR \"k\" 99999999999999999999",
		"MSETEX 2 0",
		`GET "esc\"aped"`,
		`SET "tab\tkey" 1`,
		`GET "trailing\`,
		"A  B   C",
		"\"\"",
		`"\x"`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, line string) {
		fields, err := splitFields(line)
		if err != nil {
			return
		}
		// Round trip: quoting every field must reparse to the same fields.
		quoted := make([]string, len(fields))
		for i, fld := range fields {
			quoted[i] = strconv.Quote(fld)
		}
		again, err := splitFields(strings.Join(quoted, " "))
		if err != nil {
			t.Fatalf("splitFields(%q) ok, but requoted line failed: %v", line, err)
		}
		if len(again) != len(fields) {
			t.Fatalf("round trip changed arity: %q -> %q -> %q", line, fields, again)
		}
		for i := range fields {
			if again[i] != fields[i] {
				t.Fatalf("round trip changed field %d: %q -> %q", i, fields[i], again[i])
			}
		}
	})
}

// FuzzParseTTLMillis exercises the TTL validator: whatever the bytes, an
// accepted TTL must be positive, bounded so the Duration conversion cannot
// wrap, and must re-render to the value that was parsed.
func FuzzParseTTLMillis(f *testing.F) {
	for _, seed := range []string{
		"0", "-5", "nan", "1", "500",
		"99999999999999999999", // overflows int64
		"9223372036854775807",  // ms count overflows Duration
		"9223372036854",        // the largest legal ms count
		"+1", " 1", "1_0", "0x10",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, field string) {
		d, err := parseTTLMillis(field)
		if err != nil {
			if d != 0 {
				t.Fatalf("parseTTLMillis(%q) errored but returned %v", field, d)
			}
			return
		}
		if d <= 0 {
			t.Fatalf("parseTTLMillis(%q) accepted non-positive %v", field, d)
		}
		ms := int64(d / time.Millisecond)
		if ms > maxTTLMillis {
			t.Fatalf("parseTTLMillis(%q) exceeded the overflow bound: %v", field, d)
		}
		// Round trip: re-rendering the accepted count must parse back to
		// the same duration.
		again, err := parseTTLMillis(strconv.FormatInt(ms, 10))
		if err != nil || again != d {
			t.Fatalf("parseTTLMillis(%q) = %v, but re-rendered count parsed to %v, %v", field, d, again, err)
		}
	})
}

// fuzzEngine is shared across FuzzServeStream executions: state carried
// between inputs only widens the explored surface, and one engine means at
// most one expiry-sweep timer for the whole fuzz run.
var fuzzEngine = NewEngine()

// FuzzServeStream drives the real per-connection loop — request lines,
// payload framing, batch sub-protocols — with an arbitrary byte stream and
// demands it terminate cleanly: every malformed stream ends with the
// server dropping the connection (or replying ERR), never a panic or a
// hang past the deadline.
func FuzzServeStream(f *testing.F) {
	for _, seed := range []string{
		"PING\n",
		"SET \"k\" 3\nabcGET \"k\"\n",
		"SETEX \"k\" 100 3\nxyz",
		"GET \"unterminated\n",
		"SET \"k\" notanumber\n",
		"SET \"k\" -1\n",
		"SET \"k\" 999999999999\n", // declared payload over MaxPayload
		"SETEX \"k\" 0 3\n",
		"MGET \"a\" \"b\"\n",
		"MSET 2\n\"a\" 1\nx\"b\" 1\ny",
		"MSETEX 2 0\n",
		"MSETEX nan 100\n",
		"GETRANGE \"k\" 0 10\n",
		"GETRANGES 2\n\"k\" 0 4\n\"k\" 4 8\n",
		"INCR \"k\" 99999999999999999999\n",
		"LOCK \"k\" w nan\n",
		"SADD \"s\" \"m\"\nSMEMBERS \"s\"\n",
		"TTL \"k\" extra\n",
		"PERSIST\n",
		strings.Repeat("A", 70_000) + "\n", // request line over maxLine
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s := &Server{engine: fuzzEngine, conns: map[net.Conn]struct{}{}, done: make(chan struct{})}
		client, server := net.Pipe()
		serveDone := make(chan struct{})
		go func() {
			defer close(serveDone)
			s.serve(server)
		}()
		// Drain replies so the unbuffered pipe cannot deadlock the server
		// mid-reply while we are still writing the request stream.
		drained := make(chan struct{})
		go func() {
			defer close(drained)
			io.Copy(io.Discard, client)
		}()
		client.SetWriteDeadline(time.Now().Add(5 * time.Second))
		client.Write(data) // short write just means the server hung up early
		client.Close()
		select {
		case <-serveDone:
		case <-time.After(10 * time.Second):
			t.Fatalf("server hung on %d-byte stream", len(data))
		}
		<-drained
	})
}
