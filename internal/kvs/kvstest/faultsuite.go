package kvstest

import (
	"fmt"
	"io"
	"testing"
	"time"

	"faasm.dev/faasm/internal/kvs"
)

// RunFaults is the error-path companion to Run: it wraps the factory's
// store in a FaultStore and pins how every backend behaves when the tier
// misbehaves — injected errors surface on every operation class, a crash is
// distinguishable (kvs.IsUnavailable) from a semantic rejection, data
// survives crash/restore, a batch that fails part-way reports the failure,
// and a closed store never panics. Backends get the same failure semantics
// or they do not ship.
func RunFaults(t *testing.T, mk Factory) {
	t.Run("InjectedErrorSurfacesEverywhere", func(t *testing.T) {
		f := NewFaultStore(mk(t))
		if err := f.Set("k", []byte("v")); err != nil {
			t.Fatal(err)
		}
		f.FailNext(-1, nil)
		ops := map[string]func() error{
			"Get":      func() error { _, err := f.Get("k"); return err },
			"Set":      func() error { return f.Set("k", []byte("v2")) },
			"SetEx":    func() error { return f.SetEx("k", []byte("v2"), time.Second) },
			"TTL":      func() error { _, err := f.TTL("k"); return err },
			"Persist":  func() error { _, err := f.Persist("k"); return err },
			"GetRange": func() error { _, err := f.GetRange("k", 0, 1); return err },
			"SetRange": func() error { return f.SetRange("k", 0, []byte("x")) },
			"Append":   func() error { _, err := f.Append("k", []byte("x")); return err },
			"Len":      func() error { _, err := f.Len("k"); return err },
			"Delete":   func() error { return f.Delete("k2") },
			"SAdd":     func() error { _, err := f.SAdd("s", "m"); return err },
			"SRem":     func() error { _, err := f.SRem("s", "m"); return err },
			"SMembers": func() error { _, err := f.SMembers("s"); return err },
			"Incr":     func() error { _, err := f.Incr("n", 1); return err },
			"Lock":     func() error { _, err := f.Lock("l", true, time.Second); return err },
			"Unlock":   func() error { return f.Unlock("l", 1) },
		}
		for name, op := range ops {
			if err := op(); !kvs.IsUnavailable(err) {
				t.Fatalf("%s under injected fault: want unavailable error, got %v", name, err)
			}
		}
		f.FailNext(0, nil)
		if v, err := f.Get("k"); err != nil || string(v) != "v" {
			t.Fatalf("after clearing faults: %q, %v (faults must not corrupt data)", v, err)
		}
	})

	t.Run("SemanticErrorIsNotUnavailable", func(t *testing.T) {
		f := NewFaultStore(mk(t))
		f.FailNext(1, fmt.Errorf("kvstest: injected semantic rejection"))
		err := f.Set("k", []byte("v"))
		if err == nil {
			t.Fatal("injected semantic error must surface")
		}
		if kvs.IsUnavailable(err) {
			t.Fatalf("semantic error classified unavailable: %v", err)
		}
		// And the store's own rejections stay semantic through the wrapper.
		if err := f.SetEx("k", []byte("v"), -time.Second); err == nil {
			t.Fatal("negative ttl must be rejected")
		} else if kvs.IsUnavailable(err) {
			t.Fatalf("ttl rejection classified unavailable: %v", err)
		}
	})

	t.Run("CrashRestorePreservesData", func(t *testing.T) {
		f := NewFaultStore(mk(t))
		if err := f.Set("k", []byte("survives")); err != nil {
			t.Fatal(err)
		}
		f.Crash()
		if _, err := f.Get("k"); !kvs.IsUnavailable(err) {
			t.Fatalf("get on crashed store: want unavailable, got %v", err)
		}
		if err := f.Set("k", []byte("lost")); !kvs.IsUnavailable(err) {
			t.Fatalf("set on crashed store: want unavailable, got %v", err)
		}
		f.Restore()
		if v, err := f.Get("k"); err != nil || string(v) != "survives" {
			t.Fatalf("after restore: %q, %v", v, err)
		}
	})

	t.Run("PartialBatchFailureSurfaces", func(t *testing.T) {
		f := NewFaultStore(mk(t))
		pairs := []kvs.Pair{
			{Key: "b0", Val: []byte("v0")}, {Key: "b1", Val: []byte("v1")},
			{Key: "b2", Val: []byte("v2")}, {Key: "b3", Val: []byte("v3")},
		}
		// The wrapper exposes no Batcher, so the batch decomposes into
		// per-key ops applied in order; failing from the third op onward
		// leaves the batch half-applied — which MUST surface as an error,
		// never silently.
		f.FailAfter(2, -1, nil)
		err := kvs.MSet(f, pairs)
		if !kvs.IsUnavailable(err) {
			t.Fatalf("partial batch failure: want unavailable error, got %v", err)
		}
		f.FailNext(0, nil)
		if v, err := f.Get("b1"); err != nil || string(v) != "v1" {
			t.Fatalf("pair before the failure point must have applied: %q, %v", v, err)
		}
		if v, err := f.Get("b3"); err != nil || v != nil {
			t.Fatalf("pair after the failure point must not have applied: %q, %v", v, err)
		}
		// A retry of the identical batch converges every key: replaying a
		// value write is the documented recovery for indeterminate writes.
		if err := kvs.MSet(f, pairs); err != nil {
			t.Fatal(err)
		}
		for _, p := range pairs {
			if v, err := f.Get(p.Key); err != nil || string(v) != string(p.Val) {
				t.Fatalf("after batch retry %s: %q, %v", p.Key, v, err)
			}
		}
	})

	t.Run("LatencyDelaysOps", func(t *testing.T) {
		f := NewFaultStore(mk(t))
		f.SetLatency(20 * time.Millisecond)
		start := time.Now()
		if err := f.Set("k", []byte("v")); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < 20*time.Millisecond {
			t.Fatalf("op took %v, injected latency not applied", d)
		}
		f.SetLatency(0)
	})

	t.Run("OpsAfterCloseNeverPanic", func(t *testing.T) {
		s := mk(t)
		c, ok := s.(io.Closer)
		if !ok {
			t.Skip("store holds no closeable resources")
		}
		if err := s.Set("k", []byte("v")); err != nil {
			t.Fatal(err)
		}
		if err := c.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		if err := c.Close(); err != nil {
			t.Fatalf("second close must be safe: %v", err)
		}
		// After Close an op may fail cleanly or succeed by reconnecting
		// (the TCP client re-dials); either way it must not panic.
		if _, err := s.Get("k"); err != nil && !kvs.IsUnavailable(err) {
			t.Fatalf("op after close: want success or unavailable, got %v", err)
		}
	})
}
