package kernels

import (
	"math"
	"testing"

	"faasm.dev/faasm/internal/wavm"
)

func instantiate(mod *wavm.Module) (*wavm.Instance, error) {
	return wavm.Instantiate(mod, nil)
}

// TestSandboxMatchesNative is the correctness gate for Fig 9a: every kernel
// computes the same checksum in the wavm sandbox and natively.
func TestSandboxMatchesNative(t *testing.T) {
	for _, k := range All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			want := k.Native(k.N)
			got, steps, err := RunWavm(k)
			if err != nil {
				t.Fatal(err)
			}
			if steps == 0 {
				t.Fatal("no interpreter steps recorded")
			}
			diff := math.Abs(got - want)
			scale := math.Max(math.Abs(want), 1)
			if diff/scale > 1e-9 {
				t.Fatalf("checksum mismatch: sandbox %v, native %v", got, want)
			}
		})
	}
}

func TestKernelNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range All() {
		if seen[k.Name] {
			t.Fatalf("duplicate kernel %s", k.Name)
		}
		seen[k.Name] = true
	}
	if len(seen) < 10 {
		t.Fatalf("suite has only %d kernels", len(seen))
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("2mm"); !ok {
		t.Fatal("2mm missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("found nonexistent kernel")
	}
}

func TestChecksumsNonTrivial(t *testing.T) {
	for _, k := range All() {
		v := k.Native(k.N)
		if v == 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("%s checksum degenerate: %v", k.Name, v)
		}
	}
}

func BenchmarkNative2mm(b *testing.B) {
	k, _ := ByName("2mm")
	for i := 0; i < b.N; i++ {
		k.Native(k.N)
	}
}

func BenchmarkWavm2mm(b *testing.B) {
	k, _ := ByName("2mm")
	mod, err := CompileKernel(k)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst, err := instantiate(mod)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := inst.Call("main"); err != nil {
			b.Fatal(err)
		}
	}
}
