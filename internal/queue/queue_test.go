package queue

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"faasm.dev/faasm/internal/kvs"
	"faasm.dev/faasm/internal/mbus"
	"faasm.dev/faasm/internal/obsv"
	"faasm.dev/faasm/internal/vtime"
)

// execFunc adapts a function to the Executor interface.
type execFunc func(fn string, input []byte, trace obsv.TraceID) ([]byte, int32, error)

func (f execFunc) ExecuteQueued(fn string, input []byte, trace obsv.TraceID) ([]byte, int32, error) {
	return f(fn, input, trace)
}

// newVirtualQueue builds a queue over an engine whose expiry clock is the
// returned virtual clock, so lease-expiry redelivery is tested
// deterministically by advancing time instead of sleeping.
func newVirtualQueue(t *testing.T, cfg Config, exec Executor) (*Queue, *vtime.Virtual) {
	t.Helper()
	vc := vtime.NewVirtual()
	eng := kvs.NewEngine()
	eng.SetNowFunc(vc.Now)
	cfg.Store = eng
	cfg.Clock = vc
	q := New(cfg, exec)
	t.Cleanup(q.Close)
	return q, vc
}

func echo(fn string, input []byte, _ obsv.TraceID) ([]byte, int32, error) {
	return append([]byte("echo:"), input...), 0, nil
}

func TestSubmitClaimExecuteAwait(t *testing.T) {
	q, _ := newVirtualQueue(t, Config{Host: "h1"}, execFunc(echo))
	id, err := q.Submit("wc", []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if id == 0 {
		t.Fatal("zero call id")
	}
	if d, _ := q.Depth("wc"); d != 1 {
		t.Fatalf("depth after submit = %d", d)
	}
	it, att, ok := q.claim("wc")
	if !ok || att != 1 || it.Rec.ID != id || it.Rec.Status != mbus.CallQueued {
		t.Fatalf("claim = %+v att=%d ok=%v", it.Rec, att, ok)
	}
	q.runItem("wc", it, att)
	rec, err := q.Await(id, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != mbus.CallSucceeded || string(rec.Output) != "echo:hello" {
		t.Fatalf("result = %+v", rec)
	}
	if d, _ := q.Depth("wc"); d != 0 {
		t.Fatalf("depth after ack = %d", d)
	}
	if s := q.Stats(); s.Enqueued != 1 || s.Completed != 1 || s.Redelivered != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestBackpressureRejectsAtDepthCap(t *testing.T) {
	q, _ := newVirtualQueue(t, Config{Host: "h1", DepthCap: 3}, execFunc(echo))
	for i := 0; i < 3; i++ {
		if _, err := q.Submit("wc", nil); err != nil {
			t.Fatalf("submit %d under cap: %v", i, err)
		}
	}
	if _, err := q.Submit("wc", nil); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit at cap: %v, want ErrQueueFull", err)
	}
	// Draining one item frees one slot: the depth counter must come back
	// down when the item is acked, not stay stuck at the cap.
	it, att, ok := q.claim("wc")
	if !ok {
		t.Fatal("claim under full queue failed")
	}
	q.runItem("wc", it, att)
	if _, err := q.Submit("wc", nil); err != nil {
		t.Fatalf("submit after drain: %v", err)
	}
}

func TestCrashedConsumerItemRedeliveredOnce(t *testing.T) {
	// Host A claims the item and "crashes" mid-execution (its executor
	// reports ErrConsumerDead and writes nothing). The item must stay
	// invisible until the lease expires on the tier's clock, then be
	// redelivered to host B exactly once — and A completing late as a
	// zombie must not change the result B recorded.
	vc := vtime.NewVirtual()
	eng := kvs.NewEngine()
	eng.SetNowFunc(vc.Now)

	dead := execFunc(func(string, []byte, obsv.TraceID) ([]byte, int32, error) {
		return nil, 0, ErrConsumerDead
	})
	a := New(Config{Store: eng, Clock: vc, Host: "a", LeaseTTL: time.Second}, dead)
	b := New(Config{Store: eng, Clock: vc, Host: "b", LeaseTTL: time.Second}, execFunc(echo))
	defer a.Close()
	defer b.Close()

	id, err := a.Submit("wc", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	it, att, ok := a.claim("wc")
	if !ok || att != 1 {
		t.Fatalf("first claim att=%d ok=%v", att, ok)
	}
	a.runItem("wc", it, att) // abandons: consumer dead

	if _, _, ok := b.claim("wc"); ok {
		t.Fatal("claimed a leased in-flight item")
	}
	vc.Advance(2 * time.Second) // lease expires tier-side
	it2, att2, ok := b.claim("wc")
	if !ok || att2 != 2 || it2.Rec.ID != id {
		t.Fatalf("redelivery claim att=%d ok=%v", att2, ok)
	}
	if got := b.Stats().Redelivered; got != 1 {
		t.Fatalf("redelivered counter = %d", got)
	}
	b.runItem("wc", it2, att2)
	rec, err := b.Await(id, time.Second)
	if err != nil || rec.Status != mbus.CallSucceeded || string(rec.Output) != "echo:x" {
		t.Fatalf("result after redelivery: %+v %v", rec, err)
	}

	// Zombie A wakes up and tries to record its own completion: first
	// writer wins, B's result must be untouched and nothing re-runs.
	late := it.Rec
	late.Status = mbus.CallFailed
	late.Err = "zombie"
	a.finish("wc", late)
	rec2, err := b.Await(id, time.Second)
	if err != nil || rec2.Status != mbus.CallSucceeded || string(rec2.Output) != "echo:x" {
		t.Fatalf("result after zombie completion: %+v %v", rec2, err)
	}
	if got := a.Stats().Completed; got != 0 {
		t.Fatalf("zombie recorded a completion: %d", got)
	}
	// The item is fully retired: nothing left to claim.
	vc.Advance(time.Minute)
	if _, _, ok := a.claim("wc"); ok {
		t.Fatal("retired item claimed again")
	}
}

func TestDeadLetterAfterMaxRetries(t *testing.T) {
	boom := execFunc(func(string, []byte, obsv.TraceID) ([]byte, int32, error) {
		return nil, 9, errors.New("guest trapped")
	})
	q, vc := newVirtualQueue(t, Config{Host: "h1", RetryMax: 2, RetryBackoff: 10 * time.Millisecond}, boom)
	id, err := q.Submit("wc", nil)
	if err != nil {
		t.Fatal(err)
	}
	for att := 1; att <= 3; att++ {
		it, got, ok := q.claim("wc")
		if !ok || got != att {
			t.Fatalf("claim %d: att=%d ok=%v", att, got, ok)
		}
		q.runItem("wc", it, got)
		if att <= 2 {
			// Parked in backoff: invisible now, claimable after it elapses.
			if _, _, ok := q.claim("wc"); ok {
				t.Fatalf("claimed item during backoff after attempt %d", att)
			}
			vc.Advance(time.Second)
		}
	}
	rec, err := q.Await(id, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != mbus.CallDeadLettered || rec.ReturnCode != -1 || rec.Err == "" {
		t.Fatalf("dead-lettered result = %+v", rec)
	}
	dls, err := q.DeadLetters("wc")
	if err != nil || len(dls) != 1 || dls[0] != id {
		t.Fatalf("dead letters = %v %v", dls, err)
	}
	if s := q.Stats(); s.DeadLettered != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if d, _ := q.Depth("wc"); d != 0 {
		t.Fatalf("depth after dead-letter = %d", d)
	}
}

func TestCrashBurnedAttemptsDeadLetterAtClaim(t *testing.T) {
	// Every delivery went to a consumer that crashed before reporting: the
	// failure never surfaced through an execution error, so the claim path
	// itself must dead-letter the poison pill once deliveries run out.
	dead := execFunc(func(string, []byte, obsv.TraceID) ([]byte, int32, error) {
		return nil, 0, ErrConsumerDead
	})
	q, vc := newVirtualQueue(t, Config{Host: "h1", RetryMax: 1, LeaseTTL: time.Second}, dead)
	id, err := q.Submit("wc", nil)
	if err != nil {
		t.Fatal(err)
	}
	for att := 1; att <= 2; att++ {
		it, got, ok := q.claim("wc")
		if !ok || got != att {
			t.Fatalf("claim %d: att=%d ok=%v", att, got, ok)
		}
		q.runItem("wc", it, got) // crash: lease left to expire
		vc.Advance(2 * time.Second)
	}
	// Third claim sees deliveries exhausted and dead-letters without
	// executing.
	if _, _, ok := q.claim("wc"); ok {
		t.Fatal("exhausted item claimed for execution")
	}
	rec, err := q.Await(id, time.Second)
	if err != nil || rec.Status != mbus.CallDeadLettered {
		t.Fatalf("result = %+v %v", rec, err)
	}
}

func TestThenChainRunsDownstream(t *testing.T) {
	stamp := execFunc(func(fn string, input []byte, _ obsv.TraceID) ([]byte, int32, error) {
		return append(append([]byte{}, input...), []byte("|"+fn)...), 0, nil
	})
	q, _ := newVirtualQueue(t, Config{Host: "h1"}, stamp)
	if err := q.Then("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := q.Then("b", "c"); err != nil {
		t.Fatal(err)
	}
	root, err := q.Submit("a", []byte("in"))
	if err != nil {
		t.Fatal(err)
	}
	// Drain each stage in order; each completion enqueues the next.
	for _, fn := range []string{"a", "b", "c"} {
		it, att, ok := q.claim(fn)
		if !ok {
			t.Fatalf("no item for stage %s", fn)
		}
		q.runItem(fn, it, att)
	}
	recA, err := q.Await(root, time.Second)
	if err != nil || recA.ChildID == 0 || recA.ParentID != 0 {
		t.Fatalf("stage a result = %+v %v", recA, err)
	}
	recB, err := q.Await(recA.ChildID, time.Second)
	if err != nil || recB.ParentID != root || recB.ChildID == 0 {
		t.Fatalf("stage b result = %+v %v", recB, err)
	}
	recC, err := q.Await(recB.ChildID, time.Second)
	if err != nil || recC.ParentID != recA.ChildID || recC.ChildID != 0 {
		t.Fatalf("stage c result = %+v %v", recC, err)
	}
	if want := "in|a|b|c"; string(recC.Output) != want {
		t.Fatalf("pipeline output = %q, want %q", recC.Output, want)
	}
}

func TestAwaitUnknownAndTimeout(t *testing.T) {
	q, vc := newVirtualQueue(t, Config{Host: "h1"}, execFunc(echo))
	if _, err := q.Await(12345, time.Second); !errors.Is(err, ErrUnknownCall) {
		t.Fatalf("await unknown: %v", err)
	}
	id, err := q.Submit("wc", nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := q.Await(id, 50*time.Millisecond)
		done <- err
	}()
	// Keep driving the virtual clock: the awaiter may not have registered
	// its first Sleep yet when we start advancing.
	deadline := time.After(5 * time.Second)
	for {
		select {
		case err := <-done:
			if !errors.Is(err, ErrAwaitTimeout) {
				t.Fatalf("await pending item: %v, want ErrAwaitTimeout", err)
			}
			return
		case <-deadline:
			t.Fatal("await never timed out")
		default:
			vc.Advance(10 * time.Millisecond)
			time.Sleep(100 * time.Microsecond)
		}
	}
}

func TestSubmitAfterCloseRefused(t *testing.T) {
	q, _ := newVirtualQueue(t, Config{Host: "h1"}, execFunc(echo))
	q.Close()
	if _, err := q.Submit("wc", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
	q.Close() // idempotent
}

func TestGateClosedStopsClaims(t *testing.T) {
	var open atomic.Bool
	q, _ := newVirtualQueue(t, Config{Host: "h1", Gate: open.Load}, execFunc(echo))
	if _, err := q.Submit("wc", nil); err != nil {
		t.Fatal(err)
	}
	// gateOpen guards the consume loop; claim itself is still allowed so
	// tests drive it directly — assert the loop-level predicate.
	if q.gateOpen() {
		t.Fatal("gate reported open while closed")
	}
	open.Store(true)
	if !q.gateOpen() {
		t.Fatal("gate reported closed while open")
	}
}

func TestConsumerLoopsEndToEnd(t *testing.T) {
	// Black-box run on the wall clock: real consumer loops claim, execute,
	// and complete concurrent submissions across two hosts sharing a tier.
	eng := kvs.NewEngine()
	mk := func(host string) *Queue {
		q := New(Config{
			Store:       eng,
			Host:        host,
			LeaseTTL:    2 * time.Second,
			Poll:        time.Millisecond,
			Concurrency: 2,
		}, execFunc(echo))
		q.EnsureConsumer("wc")
		q.EnsureConsumer("wc") // idempotent
		return q
	}
	a, b := mk("a"), mk("b")
	defer a.Close()
	defer b.Close()

	const n = 24
	ids := make([]uint64, n)
	var wg sync.WaitGroup
	for i := range ids {
		id, err := a.Submit("wc", []byte(strconv.Itoa(i)))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id uint64) {
			defer wg.Done()
			rec, err := b.Await(id, 10*time.Second)
			if err != nil {
				t.Errorf("call %d: %v", i, err)
				return
			}
			want := fmt.Sprintf("echo:%d", i)
			if rec.Status != mbus.CallSucceeded || string(rec.Output) != want {
				t.Errorf("call %d: %+v", i, rec)
			}
		}(i, id)
	}
	wg.Wait()
	if d, _ := a.Depth("wc"); d != 0 {
		t.Fatalf("depth after drain = %d", d)
	}
	if got := a.Stats().Completed + b.Stats().Completed; got != n {
		t.Fatalf("completions across hosts = %d, want %d", got, n)
	}
}

func TestInstrumentRegistersQueueSeries(t *testing.T) {
	q, _ := newVirtualQueue(t, Config{Host: "h1"}, execFunc(echo))
	reg := obsv.NewRegistry()
	q.Instrument(reg, "h1")
	if _, err := q.Submit("wc", nil); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	out := buf.String()
	for _, series := range []string{
		"faasm_queue_depth",
		"faasm_queue_enqueued_total",
		"faasm_queue_redelivered_total",
		"faasm_queue_dead_lettered_total",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(series)) {
			t.Fatalf("series %s missing from exposition:\n%s", series, out)
		}
	}
	if !bytes.Contains(buf.Bytes(), []byte(`faasm_queue_depth{host="h1"} 1`)) {
		t.Fatalf("depth gauge not reading tier:\n%s", out)
	}
}

func TestQueueWaitSpanJoinsSubmitTrace(t *testing.T) {
	tracer := obsv.NewTracer(nil, 1, 16)
	q, _ := newVirtualQueue(t, Config{Host: "h1", Tracer: tracer}, execFunc(echo))
	tr := tracer.Start("client", "wc")
	if tr == nil {
		t.Fatal("trace not sampled")
	}
	id, err := q.SubmitTraced("wc", []byte("x"), uint64(tr.ID()))
	if err != nil {
		t.Fatal(err)
	}
	it, att, ok := q.claim("wc")
	if !ok {
		t.Fatal("claim failed")
	}
	q.runItem("wc", it, att)
	tracer.Finish(tr)
	if _, err := q.Await(id, time.Second); err != nil {
		t.Fatal(err)
	}
	snap, ok := tracer.Get(tr.ID())
	if !ok {
		t.Fatal("trace not retained")
	}
	found := false
	for _, sp := range snap.Spans {
		if sp.Name == "queue.wait" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no queue.wait span in trace: %+v", snap.Spans)
	}
}
