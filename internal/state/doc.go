// Package state implements the two-tier state architecture of §4: a local
// tier holding replicas of state values in shared memory segments (so
// co-located Faaslets access them in place, with zero copies), and a global
// tier — the distributed KVS — holding the authoritative value for every
// key.
//
// Faaslets write changes from the local to the global tier with a push and
// read from the global to the local tier with a pull. Values may be
// accessed in chunks: a pull of a byte range replicates only the covering
// chunks of the value into the local tier (Fig 4's state value C), which is
// how the SparseMatrix DDO avoids transferring whole matrices.
//
// Consistency follows §4.2: every state API function implicitly takes the
// value's local read or write lock (but direct pointer access does not),
// and strong cross-host consistency is available through the global
// lease-based locks exposed by LockGlobal/UnlockGlobal.
//
// # Concurrency model
//
//   - Read-shared registry: LocalTier's value registry is behind an
//     RWMutex. The hot path — Value lookups from concurrent Faaslets on one
//     host — takes the read lock and never serialises; only first-use
//     creation of a value takes the write lock.
//   - Per-value locks: each Value carries its own local read/write lock
//     (§4.2's local tier lock) plus a small mutex guarding the
//     chunk-presence bitmap; operations on different values never touch the
//     same lock.
//   - O(touched) pulls: a chunked pull coalesces the missing spans into
//     ranged global reads (batched through kvs.Batcher when available) and
//     maintains a pulled-chunk counter, so completeness checks cost the
//     chunks touched, not a rescan of the whole bitmap.
//
// Global-tier operations (push, pull, global locks) are the only network
// costs; everything else is host-local memory.
package state
