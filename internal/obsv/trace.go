package obsv

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one invocation's trace. 0 is "untraced": it is never
// assigned, and propagating it to a peer is a no-op there.
type TraceID uint64

// Span is one timed segment of an invocation. Name is the span taxonomy
// entry (see docs/ARCHITECTURE.md); Key is the span's object — a state key,
// a peer host, a function name — and Bytes the payload moved, where that
// makes sense for the span kind.
type Span struct {
	Host  string `json:"host"`
	Name  string `json:"name"`
	Key   string `json:"key,omitempty"`
	Start int64  `json:"start_ns"` // tracer-clock unix nanos
	Dur   int64  `json:"dur_ns"`
	Bytes int64  `json:"bytes,omitempty"`
	Fail  bool   `json:"fail,omitempty"`
}

// Trace accumulates the spans of one invocation. All methods are safe on a
// nil receiver, so unsampled call sites record unconditionally.
type Trace struct {
	id    TraceID
	fn    string
	host  string // entry host
	start int64

	mu    sync.Mutex
	spans []Span

	finished atomic.Bool
}

// ID returns the trace id (0 for a nil trace).
func (t *Trace) ID() TraceID {
	if t == nil {
		return 0
	}
	return t.id
}

// RecordSpan appends one span. Nil-safe; implements core.TraceSink.
func (t *Trace) RecordSpan(host, name, key string, start time.Time, dur time.Duration, bytes int64, fail bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{
		Host:  host,
		Name:  name,
		Key:   key,
		Start: start.UnixNano(),
		Dur:   int64(dur),
		Bytes: bytes,
		Fail:  fail,
	})
	t.mu.Unlock()
}

// TraceSnapshot is a trace's queryable form (GET /trace/<id>).
type TraceSnapshot struct {
	ID    TraceID `json:"id"`
	Fn    string  `json:"fn"`
	Host  string  `json:"host"`
	Start int64   `json:"start_ns"`
	// Dur is the span-covered duration: from the trace's start to the last
	// span's end (0 when no span has completed yet).
	Dur   int64  `json:"dur_ns"`
	Spans []Span `json:"spans"`
}

func (t *Trace) snapshot() TraceSnapshot {
	t.mu.Lock()
	spans := make([]Span, len(t.spans))
	copy(spans, t.spans)
	t.mu.Unlock()
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	var end int64
	for _, s := range spans {
		if e := s.Start + s.Dur; e > end {
			end = e
		}
	}
	dur := end - t.start
	if dur < 0 {
		dur = 0
	}
	return TraceSnapshot{ID: t.id, Fn: t.fn, Host: t.host, Start: t.start, Dur: dur, Spans: spans}
}

// DefaultSampleRate traces one invocation in this many by default; at this
// rate the warm invoke path stays within noise of its untraced cost.
const DefaultSampleRate = 64

// DefaultTraceBuffer is the default number of retained traces.
const DefaultTraceBuffer = 1024

// traceShards spreads retention so concurrent sampled calls rarely contend.
const traceShards = 16

type traceShard struct {
	mu   sync.Mutex
	byID map[TraceID]*Trace
	ring []TraceID // FIFO eviction order
	next int
}

// Tracer samples, retains and aggregates invocation traces for one host (or
// one shared harness). The unsampled path is one atomic add and a modulo.
type Tracer struct {
	now  func() time.Time
	rate atomic.Int64
	seq  atomic.Uint64

	shards [traceShards]traceShard

	// agg is the per-span-name aggregate view: name → *SpanAgg, fed once per
	// trace at Finish.
	agg sync.Map
}

// SpanAgg aggregates all finished occurrences of one span name.
type SpanAgg struct {
	durs  Histogram // nanos
	bytes atomic.Int64
	fails atomic.Int64
}

// SpanStat is one span name's aggregate summary.
type SpanStat struct {
	Name  string
	Count int64
	P50   time.Duration
	P99   time.Duration
	Total time.Duration
	Bytes int64
	Fails int64
}

// NewTracer creates a tracer on the given clock. sampleRate traces 1-in-N
// invocations (<= 0 disables tracing entirely, 1 traces everything); callers
// wanting the standard rate pass DefaultSampleRate. buffer bounds retained
// traces (<= 0 means DefaultTraceBuffer).
func NewTracer(now func() time.Time, sampleRate, buffer int) *Tracer {
	if now == nil {
		now = time.Now
	}
	if buffer <= 0 {
		buffer = DefaultTraceBuffer
	}
	per := buffer / traceShards
	if per < 1 {
		per = 1
	}
	t := &Tracer{now: now}
	t.rate.Store(int64(sampleRate))
	for i := range t.shards {
		t.shards[i].byID = make(map[TraceID]*Trace, per)
		t.shards[i].ring = make([]TraceID, per)
	}
	return t
}

// SetSampleRate changes the sampling rate: trace 1-in-n (n == 1 traces all,
// n <= 0 disables).
func (tr *Tracer) SetSampleRate(n int) { tr.rate.Store(int64(n)) }

// SampleRate reports the current 1-in-N sampling rate.
func (tr *Tracer) SampleRate() int { return int(tr.rate.Load()) }

// Start begins a trace for one invocation entering at host, or returns nil
// when the invocation is sampled out (the common case).
func (tr *Tracer) Start(host, fn string) *Trace {
	seq := tr.seq.Add(1)
	rate := tr.rate.Load()
	if rate <= 0 || seq%uint64(rate) != 0 {
		return nil
	}
	t := &Trace{id: TraceID(seq), fn: fn, host: host, start: tr.now().UnixNano()}
	tr.retain(t)
	return t
}

// Join attaches to the trace a peer propagated (a forwarded call's remote
// half). With a shared tracer the existing trace is returned (created =
// false) and the origin still owns its lifecycle; with per-host tracers a
// local trace is created under the same ID (created = true) and the caller
// must Finish it. id 0 returns nil.
func (tr *Tracer) Join(id TraceID, host, fn string) (t *Trace, created bool) {
	if id == 0 {
		return nil, false
	}
	s := &tr.shards[uint64(id)%traceShards]
	s.mu.Lock()
	if t = s.byID[id]; t != nil {
		s.mu.Unlock()
		return t, false
	}
	s.mu.Unlock()
	t = &Trace{id: id, fn: fn, host: host, start: tr.now().UnixNano()}
	tr.retain(t)
	return t, true
}

// retain inserts t into its shard, evicting the oldest retained trace when
// the shard's ring is full.
func (tr *Tracer) retain(t *Trace) {
	s := &tr.shards[uint64(t.id)%traceShards]
	s.mu.Lock()
	if old := s.ring[s.next]; old != 0 {
		delete(s.byID, old)
	}
	s.ring[s.next] = t.id
	s.next = (s.next + 1) % len(s.ring)
	s.byID[t.id] = t
	s.mu.Unlock()
}

// Finish seals a trace and feeds its spans into the per-name aggregates.
// Nil-safe and idempotent (a shared-tracer forward would otherwise
// double-count).
func (tr *Tracer) Finish(t *Trace) {
	if t == nil || !t.finished.CompareAndSwap(false, true) {
		return
	}
	t.mu.Lock()
	spans := make([]Span, len(t.spans))
	copy(spans, t.spans)
	t.mu.Unlock()
	for _, s := range spans {
		a := tr.aggFor(s.Name)
		a.durs.Observe(s.Dur)
		if s.Bytes != 0 {
			a.bytes.Add(s.Bytes)
		}
		if s.Fail {
			a.fails.Add(1)
		}
	}
}

func (tr *Tracer) aggFor(name string) *SpanAgg {
	if a, ok := tr.agg.Load(name); ok {
		return a.(*SpanAgg)
	}
	a, _ := tr.agg.LoadOrStore(name, &SpanAgg{})
	return a.(*SpanAgg)
}

// Get returns the retained trace with the given id.
func (tr *Tracer) Get(id TraceID) (TraceSnapshot, bool) {
	if id == 0 {
		return TraceSnapshot{}, false
	}
	s := &tr.shards[uint64(id)%traceShards]
	s.mu.Lock()
	t := s.byID[id]
	s.mu.Unlock()
	if t == nil {
		return TraceSnapshot{}, false
	}
	return t.snapshot(), true
}

// Slowest returns up to n retained traces ordered by descending duration
// (GET /traces?slowest=N).
func (tr *Tracer) Slowest(n int) []TraceSnapshot {
	if n <= 0 {
		n = 10
	}
	var all []TraceSnapshot
	for i := range tr.shards {
		s := &tr.shards[i]
		s.mu.Lock()
		ts := make([]*Trace, 0, len(s.byID))
		for _, t := range s.byID {
			ts = append(ts, t)
		}
		s.mu.Unlock()
		for _, t := range ts {
			all = append(all, t.snapshot())
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Dur > all[j].Dur })
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// SpanStats summarises every span name seen by finished traces, sorted by
// total time descending — the experiment reports' span breakdown.
func (tr *Tracer) SpanStats() []SpanStat {
	var out []SpanStat
	tr.agg.Range(func(k, v any) bool {
		a := v.(*SpanAgg)
		st := SpanStat{
			Name:  k.(string),
			Count: a.durs.Count(),
			P50:   time.Duration(a.durs.Quantile(0.5)),
			P99:   time.Duration(a.durs.Quantile(0.99)),
			Total: time.Duration(a.durs.Sum()),
			Bytes: a.bytes.Load(),
			Fails: a.fails.Load(),
		}
		out = append(out, st)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Total > out[j].Total })
	return out
}
