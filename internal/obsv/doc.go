// Package obsv is the runtime's observability layer: end-to-end invocation
// tracing and a unified metrics registry with Prometheus-style exposition.
//
// # Tracing
//
// Every invocation may carry a Trace: a set of Spans covering the
// load-bearing segments of its life (queue wait, pool acquire, cold start,
// guest execution, forward hops, state transfers with byte counts). Traces
// are sampled — Tracer.Start returns nil for unsampled calls, and every
// Trace method is nil-receiver safe, so the steady-state warm path pays one
// atomic increment and one modulo for the sampling decision and nothing
// else. A forwarded call propagates its TraceID to the remote host, which
// Joins the trace: with a shared Tracer (the cluster harness) both hosts'
// spans land in one record; with per-host Tracers (real faasmd processes)
// each host retains its half under the same ID.
//
// Concurrency model: the sampling gate is one atomic counter. Sampled spans
// append to a per-trace slice under that trace's own mutex (contended only
// when two hosts touch one trace, i.e. a forward). Retention is a sharded
// map + FIFO eviction ring, touched once per sampled trace, never per call.
// Per-span-name aggregates (histogram + byte counters) are updated once per
// trace at Finish, off every call's critical path.
//
// # Metrics
//
// Registry holds named counters, gauges and histograms, each with a fixed
// label set bound at registration. Histograms use power-of-two buckets over
// int64 observations (one atomic add per bucket observe), replacing
// unbounded raw-sample recording on hot paths. CounterFunc/GaugeFunc expose
// pre-existing atomic counters without double-counting writes. WritePrometheus
// renders the whole registry in the Prometheus text exposition format.
//
// Metric naming scheme (enforced by scripts/check-metrics.sh and documented
// in docs/ARCHITECTURE.md): faasm_<subsystem>_<noun>[_<unit>][_total], all
// lower snake case; counters end in _total, histograms of durations end in
// _seconds; label names are lower snake case.
package obsv
