package wavm

import (
	"math"
	"testing"
	"testing/quick"
)

// binModule builds a module exposing one binary i32/i64 op.
func binModule(t *testing.T, ty, op string) *Instance {
	t.Helper()
	src := `(module
	  (func $f (export "f") (param ` + ty + ` ` + ty + `) (result ` + ty + `)
	    local.get 0
	    local.get 1
	    ` + op + `))`
	return instance(t, src)
}

// TestPropertyI32ArithMatchesGo checks the interpreter against Go's own
// two's-complement semantics on random operands.
func TestPropertyI32ArithMatchesGo(t *testing.T) {
	cases := []struct {
		op string
		fn func(a, b int32) int32
	}{
		{"i32.add", func(a, b int32) int32 { return a + b }},
		{"i32.sub", func(a, b int32) int32 { return a - b }},
		{"i32.mul", func(a, b int32) int32 { return a * b }},
		{"i32.and", func(a, b int32) int32 { return a & b }},
		{"i32.or", func(a, b int32) int32 { return a | b }},
		{"i32.xor", func(a, b int32) int32 { return a ^ b }},
		{"i32.shl", func(a, b int32) int32 { return a << (uint32(b) & 31) }},
		{"i32.shr_s", func(a, b int32) int32 { return a >> (uint32(b) & 31) }},
	}
	for _, tc := range cases {
		inst := binModule(t, "i32", tc.op)
		f := func(a, b int32) bool {
			res, err := inst.Call("f", EncodeI32(a), EncodeI32(b))
			return err == nil && DecodeI32(res[0]) == tc.fn(a, b)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", tc.op, err)
		}
	}
}

// TestPropertyI64DivMatchesGo checks signed division including the
// trapping edges.
func TestPropertyI64DivMatchesGo(t *testing.T) {
	inst := binModule(t, "i64", "i64.div_s")
	f := func(a, b int64) bool {
		res, err := inst.Call("f", uint64(a), uint64(b))
		if b == 0 || (a == math.MinInt64 && b == -1) {
			return err != nil // must trap
		}
		return err == nil && int64(res[0]) == a/b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyF64ArithMatchesGo checks float ops bit-for-bit.
func TestPropertyF64ArithMatchesGo(t *testing.T) {
	cases := []struct {
		op string
		fn func(a, b float64) float64
	}{
		{"f64.add", func(a, b float64) float64 { return a + b }},
		{"f64.sub", func(a, b float64) float64 { return a - b }},
		{"f64.mul", func(a, b float64) float64 { return a * b }},
		{"f64.div", func(a, b float64) float64 { return a / b }},
	}
	for _, tc := range cases {
		inst := binModule(t, "f64", tc.op)
		f := func(a, b float64) bool {
			res, err := inst.Call("f", EncodeF64(a), EncodeF64(b))
			if err != nil {
				return false
			}
			want := tc.fn(a, b)
			got := DecodeF64(res[0])
			if math.IsNaN(want) {
				return math.IsNaN(got)
			}
			return math.Float64bits(got) == math.Float64bits(want)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", tc.op, err)
		}
	}
}

// TestPropertyMemoryNeverEscapes fires random addresses at a load/store
// module: every access either succeeds inside bounds or traps — it can
// never read or corrupt anything outside the one-page memory.
func TestPropertyMemoryNeverEscapes(t *testing.T) {
	inst := instance(t, `(module
	  (memory 1 1)
	  (func $poke (export "poke") (param $a i32) (param $v i32) (result i32)
	    local.get $a
	    local.get $v
	    i32.store
	    local.get $a
	    i32.load))`)
	const pageBytes = 65536
	f := func(addr uint32, v int32) bool {
		res, err := inst.Call("poke", EncodeI32(int32(addr)), EncodeI32(v))
		inBounds := addr <= pageBytes-4
		if inBounds {
			return err == nil && DecodeI32(res[0]) == v
		}
		return err != nil // must trap, never wrap
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
