package kvs

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"faasm.dev/faasm/internal/obsv"
)

// Store is the interface the state tier programs against; Engine, Client and
// the simulator's accounting wrapper all implement it.
type Store interface {
	// Get returns a copy of the value at key, or nil if absent.
	Get(key string) ([]byte, error)
	// Set replaces the value at key.
	Set(key string, val []byte) error
	// GetRange returns a copy of val[off:off+n]; reads past the end are
	// truncated, reads entirely past the end return nil.
	GetRange(key string, off, n int) ([]byte, error)
	// SetRange writes val at offset off, zero-extending the value as needed.
	SetRange(key string, off int, val []byte) error
	// Append appends val to the value at key, creating it if absent, and
	// returns the new length.
	Append(key string, val []byte) (int, error)
	// Len reports the value's length (0 if absent).
	Len(key string) (int, error)
	// Delete removes a key.
	Delete(key string) error
	// SetEx replaces the value at key and arms a tier-side expiry: the
	// store hides (and eventually deletes) the key once ttl elapses on the
	// store's own clock. Callers never judge expiry themselves — that is
	// the point: writer and observer clocks drop out entirely (scheduler
	// liveness leases ride on this). ttl must be positive. Expiry applies
	// to value keys only; sets and counters never expire.
	SetEx(key string, val []byte, ttl time.Duration) error
	// TTL reports the remaining lifetime of the value at key, measured on
	// the store's clock: TTLPersistent for a present key without expiry,
	// TTLMissing for an absent (or already expired) key, > 0 otherwise.
	TTL(key string) (time.Duration, error)
	// Persist removes key's expiry, reporting whether an expiry was
	// removed (false for missing, expired or already-persistent keys).
	Persist(key string) (bool, error)
	// SAdd adds a member to a set, reporting whether it was new.
	SAdd(key, member string) (bool, error)
	// SRem removes a member from a set, reporting whether it was present.
	SRem(key, member string) (bool, error)
	// SMembers lists a set's members in sorted order.
	SMembers(key string) ([]string, error)
	// Incr atomically adds delta to an integer value, returning the result.
	Incr(key string, delta int64) (int64, error)
	// Lock acquires the global lock for key in read or write mode, with a
	// lease that expires after ttl (protecting against crashed holders).
	// It blocks until acquired. Returns a token for Unlock.
	Lock(key string, write bool, ttl time.Duration) (uint64, error)
	// Unlock releases a previously acquired lock.
	Unlock(key string, token uint64) error
}

// TTL sentinels, Redis-style: lifetime queries on keys without one return a
// negative marker rather than an error.
const (
	// TTLPersistent is TTL's result for a present key with no expiry.
	TTLPersistent = time.Duration(-1)
	// TTLMissing is TTL's result for an absent (or expired) key.
	TTLMissing = time.Duration(-2)
)

// DefaultSweepInterval is the default cadence of the background sweep that
// physically deletes expired keys. Reads already hide expired entries; the
// sweep only bounds how long their memory stays pinned.
const DefaultSweepInterval = time.Second

// Kind classifies which of the engine's structures holds a key; enumeration
// and shard migration need to know how to read and re-create an entry.
type Kind byte

// Kinds.
const (
	KindValue   Kind = 'v'
	KindSet     Kind = 's'
	KindCounter Kind = 'i'
)

// KeyInfo names one stored entry.
type KeyInfo struct {
	Kind Kind
	Key  string
}

// Lister is implemented by stores that can enumerate their contents. The
// shard rebalancer (internal/shardkvs) uses it to stream only the moved hash
// ranges during node join/leave. Engine and Client both implement it; lock
// state is deliberately excluded — leases are transient and die with their
// owner.
type Lister interface {
	AllKeys() ([]KeyInfo, error)
}

// numStripes is the engine's lock-striping width. 64 stripes keep the
// per-stripe collision probability low for realistic key counts while the
// whole stripe array (and the per-key lock table's) stays small enough to
// walk for enumeration.
const numStripes = 64

// stripeIdx hashes a key onto its stripe (FNV-1a, inlined so the hot path
// does not allocate a hash.Hash).
func stripeIdx(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h & (numStripes - 1)
}

// stripe holds one slice of the key space. Reads take the read lock only, so
// gets of different keys — and of the same key — proceed concurrently.
type stripe struct {
	mu   sync.RWMutex
	vals map[string][]byte
	sets map[string]map[string]struct{}
	ints map[string]int64
	// exp maps value keys to their expiry deadline on the engine's clock.
	// Reads check it lazily (an expired entry is simply invisible); the
	// background sweeper deletes expired entries so they don't pin memory.
	exp map[string]time.Time
}

// lockStripe is one slice of the lease-lock table. Lock state keeps its own
// stripes so a blocking Lock acquire never obstructs data operations that
// happen to hash alongside it.
type lockStripe struct {
	mu    sync.Mutex
	locks map[string]*lockState
}

// Engine is the in-process implementation of Store. The big single mutex of
// the original design serialised every operation across all keys; striping
// the key space over numStripes RWMutexes makes operations on different
// stripes fully concurrent and same-stripe reads share the read lock.
type Engine struct {
	stripes [numStripes]stripe
	lockTab [numStripes]lockStripe
	tokens  atomic.Uint64
	// now is the engine's clock: key expiry and lock leases are judged on
	// it and nothing else — no caller's clock ever enters the decision.
	// Overridable via SetNowFunc (tests, simulated clusters).
	now func() time.Time

	// sweepTimer drives the self-rescheduling expiry sweep: armed when a
	// deadline is registered, re-armed after each pass while deadlines
	// remain, and left idle otherwise, so an engine with no expiring keys
	// runs no background work at all.
	sweepMu    sync.Mutex
	sweepTimer *time.Timer
	sweepEvery time.Duration

	// expired/sweeps count keys physically removed by expiry and sweep
	// passes run — both off the data path (timer callbacks and explicit
	// sweeps only).
	expired atomic.Int64
	sweeps  atomic.Int64
}

// Instrument registers the engine's expiry counters and key-space gauges
// with reg, labelled by tier (e.g. the shard name, or "global"). All values
// are read at scrape time.
func (e *Engine) Instrument(reg *obsv.Registry, tier string) {
	l := map[string]string{"tier": tier}
	reg.CounterFunc("faasm_kvs_expired_keys_total", "keys removed by tier-side expiry", l, e.expired.Load)
	reg.CounterFunc("faasm_kvs_sweeps_total", "expiry sweep passes", l, e.sweeps.Load)
	reg.GaugeFunc("faasm_kvs_value_bytes", "live value bytes in the engine", l, e.TotalBytes)
	reg.GaugeFunc("faasm_kvs_keys", "live value keys in the engine", l, func() int64 {
		return int64(len(e.Keys()))
	})
}

type lockState struct {
	// writer holds the token of the exclusive holder, 0 if none.
	writer uint64
	// readers maps reader tokens to lease expiry.
	readers map[uint64]time.Time
	// writerExpiry bounds the writer lease.
	writerExpiry time.Time
	cond         *sync.Cond
}

// NewEngine returns an empty store.
func NewEngine() *Engine {
	e := &Engine{now: time.Now, sweepEvery: DefaultSweepInterval}
	for i := range e.stripes {
		e.stripes[i].vals = map[string][]byte{}
		e.stripes[i].sets = map[string]map[string]struct{}{}
		e.stripes[i].ints = map[string]int64{}
		e.stripes[i].exp = map[string]time.Time{}
	}
	for i := range e.lockTab {
		e.lockTab[i].locks = map[string]*lockState{}
	}
	return e
}

// SetNowFunc replaces the engine's clock (tests, simulated clusters whose
// experiment time runs faster than the wall). Call before the engine serves
// traffic; the function must be safe for concurrent use.
func (e *Engine) SetNowFunc(f func() time.Time) {
	if f != nil {
		e.now = f
	}
}

// SetSweepInterval tunes the background expiry-sweep cadence (0 or negative
// keeps DefaultSweepInterval). Call before the engine serves traffic.
func (e *Engine) SetSweepInterval(d time.Duration) {
	if d > 0 {
		e.sweepMu.Lock()
		e.sweepEvery = d
		e.sweepMu.Unlock()
	}
}

func (e *Engine) stripeOf(key string) *stripe { return &e.stripes[stripeIdx(key)] }

// expiredAt reports whether key carries a deadline at or before now. The
// len check keeps the common no-expiring-keys case to one branch with no
// map lookup and no clock read by the caller.
func expiredAt(st *stripe, key string, now time.Time) bool {
	if len(st.exp) == 0 {
		return false
	}
	dl, ok := st.exp[key]
	return ok && !dl.After(now)
}

// liveLocked returns the value at key and whether it is present and
// unexpired, with the stripe (read-)locked by the caller.
func (e *Engine) liveLocked(st *stripe, key string) ([]byte, bool) {
	v, ok := st.vals[key]
	if !ok {
		return nil, false
	}
	if len(st.exp) != 0 && expiredAt(st, key, e.now()) {
		return nil, false
	}
	return v, true
}

// purgeLocked lazily deletes key if its expiry has passed, so mutating
// operations (SetRange, Append) never revive an expired value. Caller holds
// the stripe write lock.
func (e *Engine) purgeLocked(st *stripe, key string) {
	if len(st.exp) != 0 && expiredAt(st, key, e.now()) {
		delete(st.vals, key)
		delete(st.exp, key)
		e.expired.Add(1)
	}
}

// Get implements Store.
func (e *Engine) Get(key string) ([]byte, error) {
	st := e.stripeOf(key)
	st.mu.RLock()
	defer st.mu.RUnlock()
	v, ok := e.liveLocked(st, key)
	if !ok {
		return nil, nil
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, nil
}

// Set implements Store. Like Redis SET, it clears any expiry on the key.
func (e *Engine) Set(key string, val []byte) error {
	cp := make([]byte, len(val))
	copy(cp, val)
	st := e.stripeOf(key)
	st.mu.Lock()
	st.vals[key] = cp
	delete(st.exp, key)
	st.mu.Unlock()
	return nil
}

// SetEx implements Store: Set plus a tier-side expiry deadline on the
// engine's clock.
func (e *Engine) SetEx(key string, val []byte, ttl time.Duration) error {
	if ttl <= 0 {
		return fmt.Errorf("kvs: setex ttl must be positive, got %v", ttl)
	}
	cp := make([]byte, len(val))
	copy(cp, val)
	deadline := e.now().Add(ttl)
	st := e.stripeOf(key)
	st.mu.Lock()
	st.vals[key] = cp
	st.exp[key] = deadline
	st.mu.Unlock()
	e.scheduleSweep()
	return nil
}

// TTL implements Store.
func (e *Engine) TTL(key string) (time.Duration, error) {
	st := e.stripeOf(key)
	st.mu.RLock()
	defer st.mu.RUnlock()
	if _, ok := st.vals[key]; !ok {
		return TTLMissing, nil
	}
	dl, ok := st.exp[key]
	if !ok {
		return TTLPersistent, nil
	}
	now := e.now()
	if !dl.After(now) {
		return TTLMissing, nil
	}
	return dl.Sub(now), nil
}

// Persist implements Store.
func (e *Engine) Persist(key string) (bool, error) {
	st := e.stripeOf(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	e.purgeLocked(st, key)
	if _, ok := st.vals[key]; !ok {
		return false, nil
	}
	if _, ok := st.exp[key]; !ok {
		return false, nil
	}
	delete(st.exp, key)
	return true, nil
}

// rangeOf reads [off, off+n) of a value snapshot.
func rangeOf(v []byte, off, n int) ([]byte, error) {
	if off < 0 || n < 0 {
		return nil, fmt.Errorf("kvs: negative range [%d,%d)", off, off+n)
	}
	if off >= len(v) {
		return nil, nil
	}
	end := off + n
	if end > len(v) {
		end = len(v)
	}
	out := make([]byte, end-off)
	copy(out, v[off:end])
	return out, nil
}

// GetRange implements Store.
func (e *Engine) GetRange(key string, off, n int) ([]byte, error) {
	st := e.stripeOf(key)
	st.mu.RLock()
	defer st.mu.RUnlock()
	v, _ := e.liveLocked(st, key)
	return rangeOf(v, off, n)
}

// SetRange implements Store. An expired value is purged first, so writing
// into it starts from an empty value like any other missing key; an
// unexpired deadline survives the write (Redis SETRANGE keeps the TTL).
func (e *Engine) SetRange(key string, off int, val []byte) error {
	if off < 0 {
		return fmt.Errorf("kvs: negative offset %d", off)
	}
	st := e.stripeOf(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	e.purgeLocked(st, key)
	v := st.vals[key]
	if need := off + len(val); need > len(v) {
		grown := make([]byte, need)
		copy(grown, v)
		v = grown
	}
	copy(v[off:], val)
	st.vals[key] = v
	return nil
}

// Append implements Store. Expiry semantics match SetRange.
func (e *Engine) Append(key string, val []byte) (int, error) {
	st := e.stripeOf(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	e.purgeLocked(st, key)
	st.vals[key] = append(st.vals[key], val...)
	return len(st.vals[key]), nil
}

// Len implements Store.
func (e *Engine) Len(key string) (int, error) {
	st := e.stripeOf(key)
	st.mu.RLock()
	defer st.mu.RUnlock()
	v, _ := e.liveLocked(st, key)
	return len(v), nil
}

// Delete implements Store.
func (e *Engine) Delete(key string) error {
	st := e.stripeOf(key)
	st.mu.Lock()
	delete(st.vals, key)
	delete(st.sets, key)
	delete(st.ints, key)
	delete(st.exp, key)
	st.mu.Unlock()
	return nil
}

// SAdd implements Store.
func (e *Engine) SAdd(key, member string) (bool, error) {
	st := e.stripeOf(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.sets[key]
	if !ok {
		s = map[string]struct{}{}
		st.sets[key] = s
	}
	if _, exists := s[member]; exists {
		return false, nil
	}
	s[member] = struct{}{}
	return true, nil
}

// SRem implements Store.
func (e *Engine) SRem(key, member string) (bool, error) {
	st := e.stripeOf(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.sets[key]
	if !ok {
		return false, nil
	}
	if _, exists := s[member]; !exists {
		return false, nil
	}
	delete(s, member)
	return true, nil
}

// SMembers implements Store.
func (e *Engine) SMembers(key string) ([]string, error) {
	st := e.stripeOf(key)
	st.mu.RLock()
	defer st.mu.RUnlock()
	s := st.sets[key]
	out := make([]string, 0, len(s))
	for m := range s {
		out = append(out, m)
	}
	sort.Strings(out)
	return out, nil
}

// Incr implements Store.
func (e *Engine) Incr(key string, delta int64) (int64, error) {
	st := e.stripeOf(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	st.ints[key] += delta
	return st.ints[key], nil
}

// MGet implements Batcher: each stripe's read lock is taken once for all of
// its keys, not once per key. The stripes present in the batch are tracked
// in one bitmask (numStripes = 64), so grouping costs a single index slice
// and no per-stripe allocations.
func (e *Engine) MGet(keys []string) ([][]byte, error) {
	out := make([][]byte, len(keys))
	sids := make([]uint8, len(keys))
	var mask uint64
	for i, k := range keys {
		s := stripeIdx(k)
		sids[i] = uint8(s)
		mask |= 1 << s
	}
	now := e.now()
	for mask != 0 {
		si := uint8(bits.TrailingZeros64(mask))
		mask &= mask - 1
		st := &e.stripes[si]
		st.mu.RLock()
		for i, s := range sids {
			if s != si {
				continue
			}
			if v, ok := st.vals[keys[i]]; ok && !expiredAt(st, keys[i], now) {
				cp := make([]byte, len(v))
				copy(cp, v)
				out[i] = cp
			}
		}
		st.mu.RUnlock()
	}
	return out, nil
}

// MSet implements Batcher: one stripe acquisition per distinct stripe. Pairs
// are applied in input order within each stripe, so a duplicated key keeps
// its last value.
func (e *Engine) MSet(pairs []Pair) error {
	// Copy outside the locks: the engine owns its bytes.
	cps := make([][]byte, len(pairs))
	sids := make([]uint8, len(pairs))
	var mask uint64
	for i, p := range pairs {
		cps[i] = make([]byte, len(p.Val))
		copy(cps[i], p.Val)
		s := stripeIdx(p.Key)
		sids[i] = uint8(s)
		mask |= 1 << s
	}
	for mask != 0 {
		si := uint8(bits.TrailingZeros64(mask))
		mask &= mask - 1
		st := &e.stripes[si]
		st.mu.Lock()
		for i, s := range sids {
			if s == si {
				st.vals[pairs[i].Key] = cps[i]
				delete(st.exp, pairs[i].Key)
			}
		}
		st.mu.Unlock()
	}
	return nil
}

// MSetEx implements Batcher: MSet with one expiry deadline — computed once,
// on the engine's clock — armed for every key in the batch.
func (e *Engine) MSetEx(pairs []Pair, ttl time.Duration) error {
	if ttl <= 0 {
		return fmt.Errorf("kvs: msetex ttl must be positive, got %v", ttl)
	}
	cps := make([][]byte, len(pairs))
	sids := make([]uint8, len(pairs))
	var mask uint64
	for i, p := range pairs {
		cps[i] = make([]byte, len(p.Val))
		copy(cps[i], p.Val)
		s := stripeIdx(p.Key)
		sids[i] = uint8(s)
		mask |= 1 << s
	}
	deadline := e.now().Add(ttl)
	for mask != 0 {
		si := uint8(bits.TrailingZeros64(mask))
		mask &= mask - 1
		st := &e.stripes[si]
		st.mu.Lock()
		for i, s := range sids {
			if s == si {
				st.vals[pairs[i].Key] = cps[i]
				st.exp[pairs[i].Key] = deadline
			}
		}
		st.mu.Unlock()
	}
	if len(pairs) > 0 {
		e.scheduleSweep()
	}
	return nil
}

// GetRanges implements Batcher: all windows are read under one acquisition
// of the key's stripe read lock, so they observe a single consistent value.
func (e *Engine) GetRanges(key string, ranges []Range) ([][]byte, error) {
	out := make([][]byte, len(ranges))
	st := e.stripeOf(key)
	st.mu.RLock()
	defer st.mu.RUnlock()
	val, _ := e.liveLocked(st, key)
	for i, r := range ranges {
		v, err := rangeOf(val, r.Off, r.N)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Keys returns all live value keys (diagnostics and tests).
func (e *Engine) Keys() []string {
	var out []string
	now := e.now()
	for i := range e.stripes {
		st := &e.stripes[i]
		st.mu.RLock()
		for k := range st.vals {
			if !expiredAt(st, k, now) {
				out = append(out, k)
			}
		}
		st.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// AllKeys implements Lister: every live entry across values, sets and
// counters, sorted by kind then key. Expired values are invisible here too —
// the shard rebalancer enumerates through this, so a migration can never
// copy (and thereby resurrect) a key the tier already expired.
func (e *Engine) AllKeys() ([]KeyInfo, error) {
	var out []KeyInfo
	now := e.now()
	for i := range e.stripes {
		st := &e.stripes[i]
		st.mu.RLock()
		for k := range st.vals {
			if !expiredAt(st, k, now) {
				out = append(out, KeyInfo{KindValue, k})
			}
		}
		for k := range st.sets {
			out = append(out, KeyInfo{KindSet, k})
		}
		for k := range st.ints {
			out = append(out, KeyInfo{KindCounter, k})
		}
		st.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Key < out[j].Key
	})
	return out, nil
}

// TotalBytes reports the sum of live value lengths (memory accounting).
func (e *Engine) TotalBytes() int64 {
	var n int64
	now := e.now()
	for i := range e.stripes {
		st := &e.stripes[i]
		st.mu.RLock()
		for k, v := range st.vals {
			if !expiredAt(st, k, now) {
				n += int64(len(v))
			}
		}
		st.mu.RUnlock()
	}
	return n
}

// scheduleSweep arms the expiry sweep if it is not already armed. The timer
// runs on the wall clock regardless of the engine clock — it is memory
// hygiene only; visibility is decided by the lazy checks on e.now.
func (e *Engine) scheduleSweep() {
	e.sweepMu.Lock()
	defer e.sweepMu.Unlock()
	if e.sweepTimer != nil {
		return
	}
	e.sweepTimer = time.AfterFunc(e.sweepEvery, e.sweepTick)
}

// sweepTick disarms first, then sweeps, then re-arms while deadlines remain:
// a SetEx racing the pass sees the timer disarmed and arms a fresh one, so
// no deadline is ever left without a scheduled sweep.
func (e *Engine) sweepTick() {
	e.sweepMu.Lock()
	e.sweepTimer = nil
	e.sweepMu.Unlock()
	if _, remaining := e.sweepOnce(); remaining > 0 {
		e.scheduleSweep()
	}
}

// sweepOnce deletes every expired entry, reporting how many were removed and
// how many armed deadlines remain.
func (e *Engine) sweepOnce() (removed, remaining int) {
	now := e.now()
	for i := range e.stripes {
		st := &e.stripes[i]
		st.mu.Lock()
		for k, dl := range st.exp {
			if !dl.After(now) {
				delete(st.vals, k)
				delete(st.exp, k)
				removed++
			} else {
				remaining++
			}
		}
		st.mu.Unlock()
	}
	e.sweeps.Add(1)
	e.expired.Add(int64(removed))
	return removed, remaining
}

// SweepExpired runs one expiry sweep immediately, physically deleting every
// expired entry, and reports how many were dropped. The background sweeper
// calls this on its timer; tests call it to make "expired and collected"
// deterministic.
func (e *Engine) SweepExpired() int {
	removed, _ := e.sweepOnce()
	return removed
}

// Lock implements Store. Lock ordering is writer-preferring within a key:
// pending writers do not starve behind a stream of readers because expired
// leases are pruned on every wake-up. Lease state lives in its own stripe
// table, so blocking acquires only contend with locks that hash to the same
// stripe, never with data operations.
func (e *Engine) Lock(key string, write bool, ttl time.Duration) (uint64, error) {
	if ttl <= 0 {
		ttl = 30 * time.Second
	}
	lt := &e.lockTab[stripeIdx(key)]
	lt.mu.Lock()
	defer lt.mu.Unlock()
	ls, ok := lt.locks[key]
	if !ok {
		ls = &lockState{readers: map[uint64]time.Time{}}
		ls.cond = sync.NewCond(&lt.mu)
		lt.locks[key] = ls
	}
	for {
		e.pruneExpired(ls)
		if write {
			if ls.writer == 0 && len(ls.readers) == 0 {
				tok := e.tokens.Add(1)
				ls.writer = tok
				ls.writerExpiry = e.now().Add(ttl)
				return tok, nil
			}
		} else {
			if ls.writer == 0 {
				tok := e.tokens.Add(1)
				ls.readers[tok] = e.now().Add(ttl)
				return tok, nil
			}
		}
		// Wake periodically so expired leases are reclaimed even when the
		// holder crashed and will never call Unlock.
		wake := time.AfterFunc(50*time.Millisecond, func() {
			lt.mu.Lock()
			ls.cond.Broadcast()
			lt.mu.Unlock()
		})
		ls.cond.Wait()
		wake.Stop()
	}
}

func (e *Engine) pruneExpired(ls *lockState) {
	now := e.now()
	if ls.writer != 0 && now.After(ls.writerExpiry) {
		ls.writer = 0
	}
	for tok, exp := range ls.readers {
		if now.After(exp) {
			delete(ls.readers, tok)
		}
	}
}

// Unlock implements Store. Unlocking an expired or unknown token is a no-op,
// mirroring lease semantics.
func (e *Engine) Unlock(key string, token uint64) error {
	lt := &e.lockTab[stripeIdx(key)]
	lt.mu.Lock()
	defer lt.mu.Unlock()
	ls, ok := lt.locks[key]
	if !ok {
		return nil
	}
	if ls.writer == token {
		ls.writer = 0
	} else {
		delete(ls.readers, token)
	}
	ls.cond.Broadcast()
	return nil
}

var (
	_ Store   = (*Engine)(nil)
	_ Batcher = (*Engine)(nil)
)
