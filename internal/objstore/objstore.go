// Package objstore implements the shared object store of §5.2: the place
// the upload service writes generated object files and Proto-Faaslet
// snapshots, and the backing store for the virtual filesystem's global
// (read-only) file tier. The paper notes the implementation is specific to
// the underlying platform (e.g. S3); here it is an in-memory store with an
// optional directory-backed persistence mode so cmd/faasmd instances on one
// machine can share uploads.
package objstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Store is a content store keyed by hierarchical names ("wasm/fn", used by
// upload) with byte-blob values.
type Store struct {
	mu    sync.RWMutex
	blobs map[string][]byte
	// dir, when non-empty, mirrors blobs to files for cross-process sharing.
	dir string
}

// NewMemory returns an in-memory store.
func NewMemory() *Store {
	return &Store{blobs: map[string][]byte{}}
}

// NewDir returns a store persisted under dir (created if needed). Existing
// files are loaded lazily on Get.
func NewDir(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("objstore: %w", err)
	}
	return &Store{blobs: map[string][]byte{}, dir: dir}, nil
}

// validKey rejects path traversal in persisted mode.
func validKey(key string) error {
	if key == "" || strings.Contains(key, "..") || strings.HasPrefix(key, "/") {
		return fmt.Errorf("objstore: invalid key %q", key)
	}
	return nil
}

// Put stores a blob under key, replacing any existing blob.
func (s *Store) Put(key string, blob []byte) error {
	if err := validKey(key); err != nil {
		return err
	}
	cp := make([]byte, len(blob))
	copy(cp, blob)
	s.mu.Lock()
	s.blobs[key] = cp
	s.mu.Unlock()
	if s.dir != "" {
		path := filepath.Join(s.dir, filepath.FromSlash(key))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return fmt.Errorf("objstore: %w", err)
		}
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			return fmt.Errorf("objstore: %w", err)
		}
	}
	return nil
}

// Get returns a copy of the blob at key, or (nil, false) if absent.
func (s *Store) Get(key string) ([]byte, bool) {
	if validKey(key) != nil {
		return nil, false
	}
	s.mu.RLock()
	blob, ok := s.blobs[key]
	s.mu.RUnlock()
	if ok {
		out := make([]byte, len(blob))
		copy(out, blob)
		return out, true
	}
	if s.dir != "" {
		path := filepath.Join(s.dir, filepath.FromSlash(key))
		b, err := os.ReadFile(path)
		if err == nil {
			s.mu.Lock()
			s.blobs[key] = b
			s.mu.Unlock()
			out := make([]byte, len(b))
			copy(out, b)
			return out, true
		}
	}
	return nil, false
}

// Exists reports whether key is present.
func (s *Store) Exists(key string) bool {
	_, ok := s.Get(key)
	return ok
}

// Delete removes a blob.
func (s *Store) Delete(key string) error {
	if err := validKey(key); err != nil {
		return err
	}
	s.mu.Lock()
	delete(s.blobs, key)
	s.mu.Unlock()
	if s.dir != "" {
		os.Remove(filepath.Join(s.dir, filepath.FromSlash(key)))
	}
	return nil
}

// List returns keys with the given prefix, sorted.
func (s *Store) List(prefix string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for k := range s.blobs {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Size returns the blob's length, or -1 if absent.
func (s *Store) Size(key string) int {
	b, ok := s.Get(key)
	if !ok {
		return -1
	}
	return len(b)
}
