package hostapi_test

// The hostapi package is the seam the paper's methodology depends on: the
// same guest source must behave identically on FAASM and on the container
// baseline. These tests drive the FaasmAPI adapter through a real runtime
// instance, covering every group of the interface — I/O, chaining, state
// views, whole-value ops, and both lock tiers — including against a sharded
// global tier.

import (
	"bytes"
	"encoding/binary"
	"sync"
	"testing"

	"faasm.dev/faasm/internal/frt"
	"faasm.dev/faasm/internal/hostapi"
	"faasm.dev/faasm/internal/kvs"
	"faasm.dev/faasm/internal/shardkvs"
)

// run executes one portable guest on a fresh FAASM instance backed by store.
func run(t *testing.T, store kvs.Store, g hostapi.Guest, input []byte) ([]byte, int32) {
	t.Helper()
	inst := frt.New(frt.Config{Host: "test-host", Store: store})
	t.Cleanup(inst.Shutdown)
	inst.RegisterNative("guest", hostapi.WrapGuest(g))
	out, ret, err := inst.Call("guest", input)
	if err != nil {
		t.Fatalf("call: ret=%d err=%v", ret, err)
	}
	return out, ret
}

func TestInputOutputAndIdentity(t *testing.T) {
	out, ret := run(t, kvs.NewEngine(), func(api hostapi.API) (int32, error) {
		if api.Function() != "guest" {
			return 1, nil
		}
		if api.Now() < 0 {
			return 2, nil
		}
		var r1, r2 [8]byte
		api.Random(r1[:])
		api.Random(r2[:])
		if bytes.Equal(r1[:], r2[:]) {
			return 3, nil // two draws must differ
		}
		api.WriteOutput(append([]byte("echo:"), api.Input()...))
		return 0, nil
	}, []byte("payload"))
	if ret != 0 || string(out) != "echo:payload" {
		t.Fatalf("ret=%d out=%q", ret, out)
	}
}

func TestStateViewPushPull(t *testing.T) {
	store := kvs.NewEngine()
	store.Set("cell", make([]byte, 8))
	_, ret := run(t, store, func(api hostapi.API) (int32, error) {
		buf, err := api.StateView("cell", 8)
		if err != nil {
			return 1, err
		}
		binary.LittleEndian.PutUint64(buf, 77)
		if err := api.StatePush("cell"); err != nil {
			return 2, err
		}
		return 0, nil
	}, nil)
	if ret != 0 {
		t.Fatalf("ret=%d", ret)
	}
	v, _ := store.Get("cell")
	if binary.LittleEndian.Uint64(v) != 77 {
		t.Fatalf("global value = %v", v)
	}
}

func TestStateChunkOps(t *testing.T) {
	store := kvs.NewEngine()
	store.Set("blob", bytes.Repeat([]byte{0xAA}, 64))
	_, ret := run(t, store, func(api hostapi.API) (int32, error) {
		chunk, err := api.StateViewChunk("blob", 16, 8)
		if err != nil {
			return 1, err
		}
		for i := range chunk {
			chunk[i] = 0xBB
		}
		if err := api.StatePushChunk("blob", 16, 8); err != nil {
			return 2, err
		}
		if n, err := api.StateSize("blob"); err != nil || n != 64 {
			return 3, err
		}
		return 0, nil
	}, nil)
	if ret != 0 {
		t.Fatalf("ret=%d", ret)
	}
	v, _ := store.Get("blob")
	for i, b := range v {
		want := byte(0xAA)
		if i >= 16 && i < 24 {
			want = 0xBB
		}
		if b != want {
			t.Fatalf("byte %d = %#x, want %#x", i, b, want)
		}
	}
}

func TestStateWholeValueOps(t *testing.T) {
	store := kvs.NewEngine()
	_, ret := run(t, store, func(api hostapi.API) (int32, error) {
		if err := api.StateWriteAll("doc", []byte("v1")); err != nil {
			return 1, err
		}
		got, err := api.StateReadAll("doc")
		if err != nil || string(got) != "v1" {
			return 2, err
		}
		if err := api.StateAppend("log", []byte("entry;")); err != nil {
			return 3, err
		}
		if err := api.StateAppend("log", []byte("entry2;")); err != nil {
			return 4, err
		}
		return 0, nil
	}, nil)
	if ret != 0 {
		t.Fatalf("ret=%d", ret)
	}
	logv, _ := store.Get("log")
	if string(logv) != "entry;entry2;" {
		t.Fatalf("log = %q", logv)
	}
}

func TestChainAwaitOutput(t *testing.T) {
	inst := frt.New(frt.Config{Host: "test-host", Store: kvs.NewEngine()})
	defer inst.Shutdown()
	inst.RegisterNative("double", hostapi.WrapGuest(func(api hostapi.API) (int32, error) {
		api.WriteOutput([]byte{api.Input()[0] * 2})
		return 0, nil
	}))
	inst.RegisterNative("root", hostapi.WrapGuest(func(api hostapi.API) (int32, error) {
		id, err := api.Chain("double", []byte{21})
		if err != nil {
			return 1, err
		}
		if ret, err := api.Await(id); err != nil || ret != 0 {
			return 2, err
		}
		out, err := api.OutputOf(id)
		if err != nil {
			return 3, err
		}
		api.WriteOutput(out)
		return 0, nil
	}))
	out, ret, err := inst.Call("root", nil)
	if err != nil || ret != 0 || len(out) != 1 || out[0] != 42 {
		t.Fatalf("chain: %v %d %v", out, ret, err)
	}
}

func TestLocalLocksSerialiseFaaslets(t *testing.T) {
	store := kvs.NewEngine()
	store.Set("n", make([]byte, 8))
	inst := frt.New(frt.Config{Host: "test-host", Store: store})
	defer inst.Shutdown()
	// Map the view BEFORE taking the local write lock (the first StateView
	// pulls the value, which takes the value's own write lock), mutate under
	// the lock, and push after unlock (Push takes the value's read lock).
	inst.RegisterNative("incr", hostapi.WrapGuest(func(api hostapi.API) (int32, error) {
		buf, err := api.StateView("n", 8)
		if err != nil {
			return 1, err
		}
		if err := api.LockLocal("n", true); err != nil {
			return 2, err
		}
		binary.LittleEndian.PutUint64(buf, binary.LittleEndian.Uint64(buf)+1)
		api.UnlockLocal("n", true)
		return 0, nil
	}))
	inst.RegisterNative("flush", hostapi.WrapGuest(func(api hostapi.API) (int32, error) {
		return 0, api.StatePush("n")
	}))
	const calls = 16
	var wg sync.WaitGroup
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, ret, err := inst.Call("incr", nil); err != nil || ret != 0 {
				t.Errorf("incr: %d %v", ret, err)
			}
		}()
	}
	wg.Wait()
	if _, ret, err := inst.Call("flush", nil); err != nil || ret != 0 {
		t.Fatalf("flush: %d %v", ret, err)
	}
	buf, _ := store.Get("n")
	if got := binary.LittleEndian.Uint64(buf); got != calls {
		t.Fatalf("count = %d, want %d", got, calls)
	}
}

func TestGlobalLocksOverShardedTier(t *testing.T) {
	// The API's global locks must hold across instances sharing a sharded
	// tier: the lock routes to the key's owning shard.
	ring := shardkvs.NewLocal(4, shardkvs.Options{})
	ring.Set("n", []byte("0"))
	instA := frt.New(frt.Config{Host: "host-a", Store: ring})
	instB := frt.New(frt.Config{Host: "host-b", Store: ring})
	defer instA.Shutdown()
	defer instB.Shutdown()
	guest := hostapi.WrapGuest(func(api hostapi.API) (int32, error) {
		if err := api.LockGlobal("n", true); err != nil {
			return 1, err
		}
		defer api.UnlockGlobal("n")
		cur, err := api.StateReadAll("n")
		if err != nil {
			return 2, err
		}
		n := 0
		for _, c := range cur {
			n = n*10 + int(c-'0')
		}
		return 0, api.StateWriteAll("n", []byte(itoa(n+1)))
	})
	instA.RegisterNative("incr", guest)
	instB.RegisterNative("incr", guest)
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		inst := instA
		if i%2 == 1 {
			inst = instB
		}
		wg.Add(1)
		go func(inst *frt.Instance) {
			defer wg.Done()
			if _, ret, err := inst.Call("incr", nil); err != nil || ret != 0 {
				t.Errorf("incr: %d %v", ret, err)
			}
		}(inst)
	}
	wg.Wait()
	final, _ := ring.Get("n")
	if string(final) != "10" {
		t.Fatalf("count = %s, want 10", final)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
