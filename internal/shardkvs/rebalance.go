package shardkvs

import (
	"fmt"
	"sort"

	"faasm.dev/faasm/internal/kvs"
)

// MigrationStats summarises one rebalance.
type MigrationStats struct {
	// KeysExamined is the distinct keys enumerated across the ring.
	KeysExamined int
	// KeysMoved is the keys streamed to at least one new owner.
	KeysMoved int
	// CopiesWritten is the (key, destination) pairs written.
	CopiesWritten int
	// CopiesDropped is the (key, source) pairs deleted from nodes that
	// stopped owning them.
	CopiesDropped int
	// BytesMoved is the value bytes streamed to new owners.
	BytesMoved int64
}

// Attach adds a node to the routing ring without migrating anything. This is
// the bootstrap path for clients connecting to an existing, correctly-placed
// tier (faasmd, faasm-cli): attaching must never mutate tier data. Use Join
// to add an empty node to a live tier and stream its ranges over.
func (r *Ring) Attach(id string, store kvs.Store) error {
	r.migrateMu.Lock()
	defer r.migrateMu.Unlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.nodes[id]; dup {
		return fmt.Errorf("shardkvs: node %q already joined", id)
	}
	r.nodes[id] = newNode(id, store)
	r.points = buildPoints(r.nodeIDsLocked(), r.opts.VirtualNodes)
	return nil
}

// Join adds a shard and rebalances: only keys whose owner set changed are
// streamed, and only to the nodes that newly own them. Joining an empty
// ring is free.
//
// Migration is two-phase — every copy lands before any source copy is
// dropped — so an error can never lose data: a copy-phase error rolls the
// membership back with the tier untouched apart from harmless extra copies;
// a drop-phase error leaves routing committed and only stale (unrouted)
// copies behind, and a later Rebalance retries the cleanup.
//
// Plain traffic proceeds during the stream. The migration opens the
// double-write window first (writes land on the union of current and
// incoming owners), then copies each key under its write fence, so a racing
// update either reaches the new owner via the fan-out or is carried by the
// copy — it cannot strand on the old owner.
func (r *Ring) Join(id string, store kvs.Store) (MigrationStats, error) {
	r.migrateMu.Lock()
	defer r.migrateMu.Unlock()
	r.mu.Lock()
	if _, dup := r.nodes[id]; dup {
		r.mu.Unlock()
		return MigrationStats{}, fmt.Errorf("shardkvs: node %q already joined", id)
	}
	r.nodes[id] = newNode(id, store)
	newPoints := buildPoints(r.nodeIDsLocked(), r.opts.VirtualNodes)
	if len(r.points) == 0 {
		// First node: nothing to stream.
		r.points = newPoints
		r.mu.Unlock()
		return MigrationStats{}, nil
	}
	r.nextPoints = newPoints // double-write window opens
	r.mu.Unlock()

	stats, drops, err := r.copyPhase(newPoints)

	r.mu.Lock()
	if err != nil {
		delete(r.nodes, id)
		r.nextPoints = nil
		r.mu.Unlock()
		return stats, err
	}
	r.points = newPoints
	r.nextPoints = nil // commit: reads now route to the new placement
	r.mu.Unlock()
	err = r.dropPhase(drops, &stats)
	return stats, err
}

// Leave removes a shard gracefully: its keys are streamed to their new
// owners before the node is dropped (the leaving node is still reachable as
// a copy source — and still receives double-writes — during the stream). The
// last node cannot leave. Error semantics match Join: a copy-phase error
// leaves the ring unchanged, a drop-phase error leaves only stale copies
// behind.
func (r *Ring) Leave(id string) (MigrationStats, error) {
	r.migrateMu.Lock()
	defer r.migrateMu.Unlock()
	r.mu.Lock()
	if _, ok := r.nodes[id]; !ok {
		r.mu.Unlock()
		return MigrationStats{}, fmt.Errorf("shardkvs: node %q not in ring", id)
	}
	if len(r.nodes) == 1 {
		r.mu.Unlock()
		return MigrationStats{}, fmt.Errorf("shardkvs: cannot remove last node %q", id)
	}
	ids := make([]string, 0, len(r.nodes)-1)
	for nid := range r.nodes {
		if nid != id {
			ids = append(ids, nid)
		}
	}
	newPoints := buildPoints(ids, r.opts.VirtualNodes)
	r.nextPoints = newPoints // double-write window opens
	r.mu.Unlock()

	stats, drops, err := r.copyPhase(newPoints)

	r.mu.Lock()
	if err != nil {
		r.nextPoints = nil
		r.mu.Unlock()
		return stats, err
	}
	delete(r.nodes, id)
	r.points = newPoints
	r.nextPoints = nil
	r.mu.Unlock()
	err = r.dropPhase(drops, &stats)
	return stats, err
}

// Rebalance re-converges data placement onto the current routing: copies
// every entry to owners that lack it and drops copies from non-owners. It
// is idempotent — a no-op on a converged tier — and is the retry path after
// a failed Join/Leave migration. Placement does not change, so no
// double-write window is needed; each key's copy and drop still run under
// its write fence.
func (r *Ring) Rebalance() (MigrationStats, error) {
	r.migrateMu.Lock()
	defer r.migrateMu.Unlock()
	r.mu.RLock()
	points := r.points
	r.mu.RUnlock()
	if len(points) == 0 {
		return MigrationStats{}, nil
	}
	stats, drops, err := r.copyPhase(points)
	if err != nil {
		return stats, err
	}
	err = r.dropPhase(drops, &stats)
	return stats, err
}

func (r *Ring) nodeIDsLocked() []string {
	ids := make([]string, 0, len(r.nodes))
	for id := range r.nodes {
		ids = append(ids, id)
	}
	return ids
}

// pendingDrop is one cleanup action deferred until every copy has landed.
type pendingDrop struct {
	node *node
	key  string
}

// copyPhase enumerates which node holds which entry and streams every entry
// to the owners (under newPoints) that do not yet hold it, copying from a
// node that actually holds the data. Nothing is deleted here; the returned
// drops list the copies that stopped being owned.
//
// The ring lock is not held: membership cannot change underneath (the
// caller holds migrateMu, which serialises Attach and every migration) and
// each key's copies run under its write fence, ordering the stream against
// live writers on that key.
func (r *Ring) copyPhase(newPoints []point) (MigrationStats, []pendingDrop, error) {
	var stats MigrationStats
	r.mu.RLock()
	nodes := make(map[string]*node, len(r.nodes))
	for id, n := range r.nodes {
		nodes[id] = n
	}
	r.mu.RUnlock()
	// key → kind → sorted ids of nodes holding that entry.
	holders := map[string]map[kvs.Kind][]string{}
	for id, n := range nodes {
		infos, err := listKeys(n)
		if err != nil {
			return stats, nil, err
		}
		for _, ki := range infos {
			byKind, ok := holders[ki.Key]
			if !ok {
				byKind = map[kvs.Kind][]string{}
				holders[ki.Key] = byKind
			}
			byKind[ki.Kind] = append(byKind[ki.Kind], id)
		}
	}
	stats.KeysExamined = len(holders)

	var drops []pendingDrop
	for key, byKind := range holders {
		newOwners := ownersOn(newPoints, key, r.opts.Replication)
		newSet := map[string]bool{}
		for _, id := range newOwners {
			newSet[id] = true
		}
		moved := false
		holdsAny := map[string]bool{}
		err := func() error {
			// Fence the key across all its kinds: a racing writer either
			// completes before the copy (the copy carries its update) or
			// routes after it (the open double-write window lands the update
			// on the new owners directly).
			defer r.writeFence(key)()
			for kind, ids := range byKind {
				sort.Strings(ids)
				has := map[string]bool{}
				for _, id := range ids {
					has[id] = true
					holdsAny[id] = true
				}
				// Copy from a node that holds the entry, preferring one that
				// stays an owner (it will survive the drop phase).
				src := nodes[ids[0]]
				for _, id := range ids {
					if newSet[id] {
						src = nodes[id]
						break
					}
				}
				for _, owner := range newOwners {
					if has[owner] {
						continue
					}
					n, err := copyKind(src.store, nodes[owner].store, key, kind)
					if err != nil {
						return fmt.Errorf("shardkvs: stream %q %s→%s: %w", key, src.id, owner, err)
					}
					stats.CopiesWritten++
					stats.BytesMoved += n
					moved = true
				}
			}
			return nil
		}()
		if err != nil {
			return stats, nil, err
		}
		if moved {
			stats.KeysMoved++
		}
		for id := range holdsAny {
			if !newSet[id] {
				drops = append(drops, pendingDrop{nodes[id], key})
			}
		}
	}
	return stats, drops, nil
}

// dropPhase deletes copies from nodes that stopped owning them. Every new
// owner already holds the data, so a failure here leaves only stale,
// unrouted copies — Rebalance retries the cleanup. It runs after commit, so
// writers no longer route to the dropped copies; each drop is still fenced
// against a writer that routed just before commit.
func (r *Ring) dropPhase(drops []pendingDrop, stats *MigrationStats) error {
	for _, d := range drops {
		err := func() error {
			defer r.writeFence(d.key)()
			return d.node.store.Delete(d.key)
		}()
		if err != nil {
			return fmt.Errorf("shardkvs: drop %q from %s (stale copy remains, rerun Rebalance): %w", d.key, d.node.id, err)
		}
		stats.CopiesDropped++
	}
	return nil
}

// copyKind streams one entry from src to dst, returning the value bytes
// written. src is always a node that reported holding the entry.
func copyKind(src, dst kvs.Store, key string, kind kvs.Kind) (int64, error) {
	switch kind {
	case kvs.KindValue:
		// Read the value first and its TTL second, so the expiry class
		// written to the new owner reflects the *latest* of the two reads:
		// if the key expires in between, the TTL read returns TTLMissing
		// and the copy is skipped (a rebalance must never resurrect an
		// expired key); if a racing writer re-classifies the key (Set
		// clearing a lease, SetEx arming one), the copy lands with the
		// new class rather than a stale one — the reverse order could
		// stamp a just-persisted value with a long-dead lease and silently
		// delete it, or make a leased value immortal. The value itself may
		// still be one write stale under racing traffic, which is the
		// rebalancer's documented (and pre-existing) write-race semantics;
		// only the expiry class decides life and death, so it follows the
		// later read.
		v, err := src.Get(key)
		if err != nil {
			return 0, err
		}
		if v == nil {
			// Expired (or deleted) since enumeration named it.
			return 0, nil
		}
		ttl, err := src.TTL(key)
		if err != nil {
			return 0, err
		}
		if ttl == kvs.TTLMissing {
			// Expired between the value read and the TTL read.
			return 0, nil
		}
		if ttl == kvs.TTLPersistent {
			err = dst.Set(key, v)
		} else {
			// The remaining lifetime travels with the copy, so the new
			// owner's clock expires it at (its now + remaining) — clock
			// skew between shards shifts the deadline by at most the skew,
			// never into immortality.
			err = dst.SetEx(key, v, ttl)
		}
		if err != nil {
			return 0, err
		}
		return int64(len(v)), nil
	case kvs.KindSet:
		members, err := src.SMembers(key)
		if err != nil {
			return 0, err
		}
		var bytes int64
		for _, m := range members {
			if _, err := dst.SAdd(key, m); err != nil {
				return bytes, err
			}
			bytes += int64(len(m))
		}
		return bytes, nil
	case kvs.KindCounter:
		want, err := src.Incr(key, 0)
		if err != nil {
			return 0, err
		}
		have, err := dst.Incr(key, 0)
		if err != nil {
			return 0, err
		}
		if want != have {
			if _, err := dst.Incr(key, want-have); err != nil {
				return 0, err
			}
		}
		return 8, nil
	}
	return 0, fmt.Errorf("shardkvs: unknown kind %q", kind)
}
