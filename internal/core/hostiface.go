package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"faasm.dev/faasm/internal/state"
	"faasm.dev/faasm/internal/vfs"
	"faasm.dev/faasm/internal/wamem"
	"faasm.dev/faasm/internal/wavm"
)

// This file implements Table 2 of the paper for SFI guests: every entry is
// a host-interface thunk injected into the module's "faasm" import space
// during linking. Pointer arguments are guest linear-memory offsets; byte
// arrays travel as (ptr, len) pairs, matching the paper's byte-array-only
// interface.
//
// Failure convention: POSIX-flavoured calls (files, sockets, memory) return
// -1 on recoverable failure, as the paper's host interface does. Violations
// that indicate a broken or hostile guest (bad pointers, unknown state
// keys at fixed sizes) surface as host-error traps and abort the call.

const (
	// stdoutFD and stderrFD are captured into the Faaslet's output log.
	stdoutFD = 1
	stderrFD = 2
	// socketFDBase separates the socket descriptor space from files.
	socketFDBase = 1000
)

func (f *Faaslet) hostModules() map[string]wavm.HostModule {
	m := wavm.HostModule{}
	// --- calls ---
	m["read_call_input"] = f.hiReadCallInput
	m["write_call_output"] = f.hiWriteCallOutput
	m["chain_call"] = f.hiChainCall
	m["await_call"] = f.hiAwaitCall
	m["get_call_output"] = f.hiGetCallOutput
	// --- state ---
	m["get_state"] = f.hiGetState
	m["get_state_offset"] = f.hiGetStateOffset
	m["set_state"] = f.hiSetState
	m["set_state_offset"] = f.hiSetStateOffset
	m["push_state"] = f.hiPushState
	m["pull_state"] = f.hiPullState
	m["push_state_offset"] = f.hiPushStateOffset
	m["pull_state_offset"] = f.hiPullStateOffset
	m["append_state"] = f.hiAppendState
	m["state_size"] = f.hiStateSize
	m["lock_state_read"] = f.hiLockStateRead
	m["lock_state_write"] = f.hiLockStateWrite
	m["unlock_state_read"] = f.hiUnlockStateRead
	m["unlock_state_write"] = f.hiUnlockStateWrite
	m["lock_state_global_read"] = f.hiLockStateGlobal(false)
	m["lock_state_global_write"] = f.hiLockStateGlobal(true)
	m["unlock_state_global_read"] = f.hiUnlockStateGlobal
	m["unlock_state_global_write"] = f.hiUnlockStateGlobal
	// --- dynamic linking ---
	m["dlopen"] = f.hiDlopen
	m["dlsym"] = f.hiDlsym
	m["dlclose"] = f.hiDlclose
	m["dlcall"] = f.hiDlcall
	// --- memory ---
	m["mmap"] = f.hiMmap
	m["munmap"] = f.hiMunmap
	m["brk"] = f.hiBrk
	m["sbrk"] = f.hiSbrk
	// --- network ---
	m["socket"] = f.hiSocket
	m["connect"] = f.hiConnect
	m["bind"] = f.hiBind
	m["send"] = f.hiSend
	m["recv"] = f.hiRecv
	// --- file I/O ---
	m["open"] = f.hiOpen
	m["close"] = f.hiClose
	m["dup"] = f.hiDup
	m["read"] = f.hiRead
	m["write"] = f.hiWrite
	m["seek"] = f.hiSeek
	m["stat_size"] = f.hiStatSize
	// --- misc ---
	m["gettime"] = f.hiGettime
	m["getrandom"] = f.hiGetrandom
	return map[string]wavm.HostModule{"faasm": m}
}

func i32(v uint64) int32      { return wavm.DecodeI32(v) }
func reti32(v int32) []uint64 { return []uint64{wavm.EncodeI32(v)} }

// guestString reads a (ptr, len) string from guest memory.
func (f *Faaslet) guestString(ptr, n uint64) (string, error) {
	b, err := f.mem.ReadBytes(uint32(ptr), int(i32(n)))
	if err != nil {
		return "", fmt.Errorf("core: bad guest string pointer: %w", err)
	}
	return string(b), nil
}

// --- Calls ---

// read_call_input(buf i32, len i32) -> i32
// len == 0 queries the input size; otherwise copies min(len, size) bytes.
func (f *Faaslet) hiReadCallInput(_ *wavm.Instance, args []uint64) ([]uint64, error) {
	n := int(i32(args[1]))
	if n == 0 {
		return reti32(int32(len(f.input))), nil
	}
	if n > len(f.input) {
		n = len(f.input)
	}
	if err := f.mem.WriteBytes(uint32(args[0]), f.input[:n]); err != nil {
		return nil, err
	}
	return reti32(int32(n)), nil
}

// write_call_output(ptr i32, len i32)
func (f *Faaslet) hiWriteCallOutput(_ *wavm.Instance, args []uint64) ([]uint64, error) {
	b, err := f.mem.ReadBytes(uint32(args[0]), int(i32(args[1])))
	if err != nil {
		return nil, err
	}
	f.output = b
	return nil, nil
}

// chain_call(namePtr, nameLen, inPtr, inLen) -> i32 call id
func (f *Faaslet) hiChainCall(_ *wavm.Instance, args []uint64) ([]uint64, error) {
	if f.env.Chain == nil {
		return nil, errors.New("core: no chainer configured")
	}
	name, err := f.guestString(args[0], args[1])
	if err != nil {
		return nil, err
	}
	input, err := f.mem.ReadBytes(uint32(args[2]), int(i32(args[3])))
	if err != nil {
		return nil, err
	}
	id, err := f.env.Chain.Chain(name, input)
	if err != nil {
		return nil, err
	}
	return reti32(int32(id)), nil
}

// await_call(id i32) -> i32 return code
func (f *Faaslet) hiAwaitCall(_ *wavm.Instance, args []uint64) ([]uint64, error) {
	if f.env.Chain == nil {
		return nil, errors.New("core: no chainer configured")
	}
	ret, err := f.env.Chain.Await(uint64(uint32(args[0])))
	if err != nil {
		// A failed chained call yields a non-zero return code, it does not
		// abort the awaiting function.
		if ret == 0 {
			ret = -1
		}
	}
	return reti32(ret), nil
}

// get_call_output(id, buf, len) -> i32; len == 0 queries the size.
func (f *Faaslet) hiGetCallOutput(_ *wavm.Instance, args []uint64) ([]uint64, error) {
	if f.env.Chain == nil {
		return nil, errors.New("core: no chainer configured")
	}
	out, err := f.env.Chain.Output(uint64(uint32(args[0])))
	if err != nil {
		return nil, err
	}
	n := int(i32(args[2]))
	if n == 0 {
		return reti32(int32(len(out))), nil
	}
	if n > len(out) {
		n = len(out)
	}
	if err := f.mem.WriteBytes(uint32(args[1]), out[:n]); err != nil {
		return nil, err
	}
	return reti32(int32(n)), nil
}

// --- State ---

// stateValue resolves a key with the given size hint (0 = discover).
func (f *Faaslet) stateValue(keyPtr, keyLen uint64, size int) (stateHandle, error) {
	if f.env.State == nil {
		return stateHandle{}, errors.New("core: no state tier configured")
	}
	key, err := f.guestString(keyPtr, keyLen)
	if err != nil {
		return stateHandle{}, err
	}
	if size == 0 {
		size = -1
	}
	v, err := f.env.State.Value(key, size)
	if err != nil {
		return stateHandle{}, err
	}
	return stateHandle{key: key, v: v}, nil
}

type stateHandle struct {
	key string
	v   *state.Value
}

// get_state(keyPtr, keyLen, size) -> i32 guest pointer to the mapped value.
// The value's shared segment is spliced into this Faaslet's linear address
// space: the returned pointer aliases host-shared memory with zero copies.
func (f *Faaslet) hiGetState(_ *wavm.Instance, args []uint64) ([]uint64, error) {
	h, err := f.stateValue(args[0], args[1], int(i32(args[2])))
	if err != nil {
		return nil, err
	}
	if err := h.v.EnsurePulled(0, h.v.Size()); err != nil {
		return nil, err
	}
	base, err := f.mapState(h.v)
	if err != nil {
		return nil, err
	}
	return reti32(int32(base)), nil
}

// get_state_offset(keyPtr, keyLen, off, len) -> i32 guest pointer to the
// chunk; only the covering chunks are replicated locally.
func (f *Faaslet) hiGetStateOffset(_ *wavm.Instance, args []uint64) ([]uint64, error) {
	h, err := f.stateValue(args[0], args[1], 0)
	if err != nil {
		return nil, err
	}
	off, n := int(i32(args[2])), int(i32(args[3]))
	if err := h.v.EnsurePulled(off, n); err != nil {
		return nil, err
	}
	base, err := f.mapState(h.v)
	if err != nil {
		return nil, err
	}
	return reti32(int32(base) + int32(off)), nil
}

// set_state(keyPtr, keyLen, valPtr, valLen)
func (f *Faaslet) hiSetState(_ *wavm.Instance, args []uint64) ([]uint64, error) {
	val, err := f.mem.ReadBytes(uint32(args[2]), int(i32(args[3])))
	if err != nil {
		return nil, err
	}
	h, err := f.stateValue(args[0], args[1], len(val))
	if err != nil {
		return nil, err
	}
	return nil, h.v.Set(val)
}

// set_state_offset(keyPtr, keyLen, off, valPtr, valLen)
func (f *Faaslet) hiSetStateOffset(_ *wavm.Instance, args []uint64) ([]uint64, error) {
	val, err := f.mem.ReadBytes(uint32(args[3]), int(i32(args[4])))
	if err != nil {
		return nil, err
	}
	h, err := f.stateValue(args[0], args[1], 0)
	if err != nil {
		return nil, err
	}
	return nil, h.v.SetAt(int(i32(args[2])), val)
}

// push_state(keyPtr, keyLen)
func (f *Faaslet) hiPushState(_ *wavm.Instance, args []uint64) ([]uint64, error) {
	h, err := f.stateValue(args[0], args[1], 0)
	if err != nil {
		return nil, err
	}
	return nil, h.v.Push()
}

// pull_state(keyPtr, keyLen)
func (f *Faaslet) hiPullState(_ *wavm.Instance, args []uint64) ([]uint64, error) {
	h, err := f.stateValue(args[0], args[1], 0)
	if err != nil {
		return nil, err
	}
	return nil, h.v.Pull()
}

// push_state_offset(keyPtr, keyLen, off, len)
func (f *Faaslet) hiPushStateOffset(_ *wavm.Instance, args []uint64) ([]uint64, error) {
	h, err := f.stateValue(args[0], args[1], 0)
	if err != nil {
		return nil, err
	}
	return nil, h.v.PushChunk(int(i32(args[2])), int(i32(args[3])))
}

// pull_state_offset(keyPtr, keyLen, off, len)
func (f *Faaslet) hiPullStateOffset(_ *wavm.Instance, args []uint64) ([]uint64, error) {
	h, err := f.stateValue(args[0], args[1], 0)
	if err != nil {
		return nil, err
	}
	return nil, h.v.PullChunk(int(i32(args[2])), int(i32(args[3])))
}

// append_state(keyPtr, keyLen, valPtr, valLen)
func (f *Faaslet) hiAppendState(_ *wavm.Instance, args []uint64) ([]uint64, error) {
	if f.env.State == nil {
		return nil, errors.New("core: no state tier configured")
	}
	key, err := f.guestString(args[0], args[1])
	if err != nil {
		return nil, err
	}
	val, err := f.mem.ReadBytes(uint32(args[2]), int(i32(args[3])))
	if err != nil {
		return nil, err
	}
	return nil, f.env.State.Append(key, val)
}

// state_size(keyPtr, keyLen) -> i32 global size of the value.
func (f *Faaslet) hiStateSize(_ *wavm.Instance, args []uint64) ([]uint64, error) {
	if f.env.State == nil {
		return nil, errors.New("core: no state tier configured")
	}
	key, err := f.guestString(args[0], args[1])
	if err != nil {
		return nil, err
	}
	n, err := f.env.State.Global().Len(key)
	if err != nil {
		return nil, err
	}
	return reti32(int32(n)), nil
}

func (f *Faaslet) hiLockStateRead(_ *wavm.Instance, args []uint64) ([]uint64, error) {
	h, err := f.stateValue(args[0], args[1], 0)
	if err != nil {
		return nil, err
	}
	h.v.LockRead()
	return nil, nil
}

func (f *Faaslet) hiLockStateWrite(_ *wavm.Instance, args []uint64) ([]uint64, error) {
	h, err := f.stateValue(args[0], args[1], 0)
	if err != nil {
		return nil, err
	}
	h.v.LockWrite()
	return nil, nil
}

func (f *Faaslet) hiUnlockStateRead(_ *wavm.Instance, args []uint64) ([]uint64, error) {
	h, err := f.stateValue(args[0], args[1], 0)
	if err != nil {
		return nil, err
	}
	h.v.UnlockRead()
	return nil, nil
}

func (f *Faaslet) hiUnlockStateWrite(_ *wavm.Instance, args []uint64) ([]uint64, error) {
	h, err := f.stateValue(args[0], args[1], 0)
	if err != nil {
		return nil, err
	}
	h.v.UnlockWrite()
	return nil, nil
}

func (f *Faaslet) hiLockStateGlobal(write bool) wavm.HostFunc {
	return func(_ *wavm.Instance, args []uint64) ([]uint64, error) {
		if f.env.State == nil {
			return nil, errors.New("core: no state tier configured")
		}
		key, err := f.guestString(args[0], args[1])
		if err != nil {
			return nil, err
		}
		tok, err := f.env.State.LockGlobal(key, write)
		if err != nil {
			return nil, err
		}
		f.globalLockTokens[key] = tok
		return nil, nil
	}
}

func (f *Faaslet) hiUnlockStateGlobal(_ *wavm.Instance, args []uint64) ([]uint64, error) {
	key, err := f.guestString(args[0], args[1])
	if err != nil {
		return nil, err
	}
	tok, ok := f.globalLockTokens[key]
	if !ok {
		return nil, fmt.Errorf("core: no global lock held on %s", key)
	}
	delete(f.globalLockTokens, key)
	return nil, f.env.State.UnlockGlobal(key, tok)
}

// --- Dynamic linking ---

// library is one dlopen'd module sharing the parent's linear memory.
type library struct {
	inst *wavm.Instance
	mod  *wavm.Module
	open bool
}

// dlsym handles pack (library index, function index) into an int32.
type symbol struct {
	lib  int
	fidx int
}

// dlopen(pathPtr, pathLen) -> i32 handle, -1 on failure. The path names a
// wavm object file in the Faaslet filesystem (global tier), which has
// already passed validation at upload. The library shares the parent's
// linear memory, per WebAssembly dynamic-linking conventions.
func (f *Faaslet) hiDlopen(_ *wavm.Instance, args []uint64) ([]uint64, error) {
	path, err := f.guestString(args[0], args[1])
	if err != nil {
		return nil, err
	}
	blob, err := f.fs.ReadFile(path)
	if err != nil {
		return reti32(-1), nil
	}
	mod, err := wavm.DecodeObject(blob)
	if err != nil {
		return reti32(-1), nil
	}
	// Apply the library's data segments into the shared memory; growth
	// happens against the parent's limit.
	if need := mod.MemMin; need > f.mem.Pages() {
		if _, err := f.mem.Grow(need - f.mem.Pages()); err != nil {
			return reti32(-1), nil
		}
	}
	for _, d := range mod.Data {
		if err := f.mem.WriteBytes(d.Offset, d.Bytes); err != nil {
			return reti32(-1), nil
		}
	}
	inst, err := wavm.Instantiate(mod, f.hostModules(), wavm.WithMemory(f.mem))
	if err != nil {
		return reti32(-1), nil
	}
	f.libs = append(f.libs, &library{inst: inst, mod: mod, open: true})
	return reti32(int32(len(f.libs) - 1)), nil
}

// dlsym(handle, namePtr, nameLen) -> i32 symbol id, -1 on failure.
func (f *Faaslet) hiDlsym(_ *wavm.Instance, args []uint64) ([]uint64, error) {
	h := int(i32(args[0]))
	if h < 0 || h >= len(f.libs) || !f.libs[h].open {
		return reti32(-1), nil
	}
	name, err := f.guestString(args[1], args[2])
	if err != nil {
		return nil, err
	}
	fidx, ok := f.libs[h].mod.ExportedFunc(name)
	if !ok {
		return reti32(-1), nil
	}
	// Pack (lib, func) into the symbol id: 12 bits of library, 19 of index.
	return reti32(int32(h<<19 | fidx)), nil
}

// dlclose(handle) -> i32
func (f *Faaslet) hiDlclose(_ *wavm.Instance, args []uint64) ([]uint64, error) {
	h := int(i32(args[0]))
	if h < 0 || h >= len(f.libs) || !f.libs[h].open {
		return reti32(-1), nil
	}
	f.libs[h].open = false
	return reti32(0), nil
}

// dlcall(sym, argsPtr, argc, retPtr) -> i32 status. Arguments are packed
// little-endian u64s in guest memory; a single u64 result is written to
// retPtr when the callee returns one. Because the library shares the
// parent's memory, pointers passed this way are valid on both sides.
func (f *Faaslet) hiDlcall(_ *wavm.Instance, args []uint64) ([]uint64, error) {
	sym := int(i32(args[0]))
	lib := sym >> 19
	fidx := sym & ((1 << 19) - 1)
	if lib < 0 || lib >= len(f.libs) || !f.libs[lib].open {
		return reti32(-1), nil
	}
	argc := int(i32(args[2]))
	callArgs := make([]uint64, argc)
	for i := 0; i < argc; i++ {
		v, err := f.mem.ReadU64(uint32(args[1]) + uint32(i*8))
		if err != nil {
			return nil, err
		}
		callArgs[i] = v
	}
	res, err := f.libs[lib].inst.CallIndex(fidx, callArgs...)
	if err != nil {
		return nil, err
	}
	if len(res) == 1 {
		if err := f.mem.WriteU64(uint32(args[3]), res[0]); err != nil {
			return nil, err
		}
	}
	return reti32(0), nil
}

// --- Memory ---

// mmap(len) -> i32 base address, -1 on failure. Grows the private region;
// the paper's Faaslets likewise use mmap only to grow (Table 2).
func (f *Faaslet) hiMmap(_ *wavm.Instance, args []uint64) ([]uint64, error) {
	n := int(i32(args[0]))
	if n <= 0 {
		return reti32(-1), nil
	}
	pages := (n + wamem.PageSize - 1) / wamem.PageSize
	prev, err := f.mem.Grow(pages)
	if err != nil {
		return reti32(-1), nil
	}
	return reti32(int32(prev * wamem.PageSize)), nil
}

// munmap(addr, len) -> i32. Linear memory never shrinks in wasm; success.
func (f *Faaslet) hiMunmap(_ *wavm.Instance, _ []uint64) ([]uint64, error) {
	return reti32(0), nil
}

// brk(addr) -> i32 0 on success, -1 past the per-function limit.
func (f *Faaslet) hiBrk(_ *wavm.Instance, args []uint64) ([]uint64, error) {
	if err := f.mem.SetBrk(uint32(args[0])); err != nil {
		return reti32(-1), nil
	}
	return reti32(0), nil
}

// sbrk(delta) -> i32 previous break, -1 past the limit.
func (f *Faaslet) hiSbrk(_ *wavm.Instance, args []uint64) ([]uint64, error) {
	old := f.mem.Brk()
	delta := int64(i32(args[0]))
	if delta != 0 {
		target := int64(old) + delta
		if target < 0 {
			return reti32(-1), nil
		}
		if err := f.mem.SetBrk(uint32(target)); err != nil {
			return reti32(-1), nil
		}
	}
	return reti32(int32(old)), nil
}

// --- Network ---

func (f *Faaslet) hiSocket(_ *wavm.Instance, args []uint64) ([]uint64, error) {
	fd, err := f.net.Socket(int(i32(args[0])), int(i32(args[1])))
	if err != nil {
		return reti32(-1), nil
	}
	return reti32(fd), nil
}

func (f *Faaslet) hiConnect(_ *wavm.Instance, args []uint64) ([]uint64, error) {
	addr, err := f.guestString(args[1], args[2])
	if err != nil {
		return nil, err
	}
	if err := f.net.Connect(int32(i32(args[0])), addr); err != nil {
		return reti32(-1), nil
	}
	return reti32(0), nil
}

func (f *Faaslet) hiBind(_ *wavm.Instance, args []uint64) ([]uint64, error) {
	addr, err := f.guestString(args[1], args[2])
	if err != nil {
		return nil, err
	}
	if err := f.net.Bind(int32(i32(args[0])), addr); err != nil {
		return reti32(-1), nil
	}
	return reti32(0), nil
}

func (f *Faaslet) hiSend(_ *wavm.Instance, args []uint64) ([]uint64, error) {
	data, err := f.mem.ReadBytes(uint32(args[1]), int(i32(args[2])))
	if err != nil {
		return nil, err
	}
	n, err := f.net.Send(int32(i32(args[0])), data)
	if err != nil {
		return reti32(-1), nil
	}
	return reti32(int32(n)), nil
}

func (f *Faaslet) hiRecv(_ *wavm.Instance, args []uint64) ([]uint64, error) {
	n := int(i32(args[2]))
	buf := make([]byte, n)
	got, err := f.net.Recv(int32(i32(args[0])), buf)
	if err != nil && got == 0 {
		return reti32(-1), nil
	}
	if err := f.mem.WriteBytes(uint32(args[1]), buf[:got]); err != nil {
		return nil, err
	}
	return reti32(int32(got)), nil
}

// --- File I/O ---

func (f *Faaslet) hiOpen(_ *wavm.Instance, args []uint64) ([]uint64, error) {
	path, err := f.guestString(args[0], args[1])
	if err != nil {
		return nil, err
	}
	fd, err := f.fs.Open(path, int(i32(args[2])))
	if err != nil {
		return reti32(-1), nil
	}
	return reti32(fd), nil
}

// hiClose dispatches on the descriptor space: sockets and files share the
// POSIX close entry point.
func (f *Faaslet) hiClose(_ *wavm.Instance, args []uint64) ([]uint64, error) {
	fd := i32(args[0])
	var err error
	if fd >= socketFDBase {
		err = f.net.CloseSocket(fd)
	} else {
		err = f.fs.Close(fd)
	}
	if err != nil {
		return reti32(-1), nil
	}
	return reti32(0), nil
}

func (f *Faaslet) hiDup(_ *wavm.Instance, args []uint64) ([]uint64, error) {
	nfd, err := f.fs.Dup(i32(args[0]))
	if err != nil {
		return reti32(-1), nil
	}
	return reti32(nfd), nil
}

func (f *Faaslet) hiRead(_ *wavm.Instance, args []uint64) ([]uint64, error) {
	fd := i32(args[0])
	n := int(i32(args[2]))
	buf := make([]byte, n)
	var got int
	var err error
	if fd >= socketFDBase {
		got, err = f.net.Recv(fd, buf)
	} else {
		got, err = f.fs.Read(fd, buf)
	}
	if err == io.EOF {
		return reti32(0), nil
	}
	if err != nil {
		return reti32(-1), nil
	}
	if err := f.mem.WriteBytes(uint32(args[1]), buf[:got]); err != nil {
		return nil, err
	}
	return reti32(int32(got)), nil
}

func (f *Faaslet) hiWrite(_ *wavm.Instance, args []uint64) ([]uint64, error) {
	fd := i32(args[0])
	data, err := f.mem.ReadBytes(uint32(args[1]), int(i32(args[2])))
	if err != nil {
		return nil, err
	}
	switch {
	case fd == stdoutFD || fd == stderrFD:
		// Captured as call output when the guest writes nothing explicit —
		// convenient for printf-style functions.
		f.output = append(f.output, data...)
		return reti32(int32(len(data))), nil
	case fd >= socketFDBase:
		n, err := f.net.Send(fd, data)
		if err != nil {
			return reti32(-1), nil
		}
		return reti32(int32(n)), nil
	default:
		n, err := f.fs.Write(fd, data)
		if err != nil {
			return reti32(-1), nil
		}
		return reti32(int32(n)), nil
	}
}

func (f *Faaslet) hiSeek(_ *wavm.Instance, args []uint64) ([]uint64, error) {
	pos, err := f.fs.Seek(i32(args[0]), int64(i32(args[1])), int(i32(args[2])))
	if err != nil {
		return reti32(-1), nil
	}
	return reti32(int32(pos)), nil
}

// stat_size(pathPtr, pathLen, sizeOutPtr) -> i32 0 if present (size written
// to sizeOutPtr as u32), -1 otherwise. A deliberately narrow stat: the host
// interface exposes only what serverless code needs.
func (f *Faaslet) hiStatSize(_ *wavm.Instance, args []uint64) ([]uint64, error) {
	path, err := f.guestString(args[0], args[1])
	if err != nil {
		return nil, err
	}
	info, err := f.fs.Stat(path)
	if err != nil {
		if errors.Is(err, vfs.ErrNotFound) {
			return reti32(-1), nil
		}
		return nil, err
	}
	var sz [4]byte
	binary.LittleEndian.PutUint32(sz[:], uint32(info.Size))
	if err := f.mem.WriteBytes(uint32(args[2]), sz[:]); err != nil {
		return nil, err
	}
	return reti32(0), nil
}

// --- Misc ---

// gettime() -> i64 nanoseconds on the per-user monotonic clock.
func (f *Faaslet) hiGettime(_ *wavm.Instance, _ []uint64) ([]uint64, error) {
	return []uint64{uint64(f.env.clock().Now().Sub(f.birth).Nanoseconds())}, nil
}

// getrandom(buf, len) -> i32 bytes written, from the Faaslet's PRNG.
func (f *Faaslet) hiGetrandom(_ *wavm.Instance, args []uint64) ([]uint64, error) {
	n := int(i32(args[1]))
	if n < 0 {
		return reti32(-1), nil
	}
	b := make([]byte, n)
	f.rng.Read(b)
	if err := f.mem.WriteBytes(uint32(args[0]), b); err != nil {
		return nil, err
	}
	return reti32(int32(n)), nil
}
