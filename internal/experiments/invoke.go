package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"faasm.dev/faasm/internal/core"
	"faasm.dev/faasm/internal/frt"
	"faasm.dev/faasm/internal/kvs"
	"faasm.dev/faasm/internal/kvs/kvstest"
	"faasm.dev/faasm/internal/obsv"
)

// InvokeScale measures the per-host invocation hot path this repo makes
// concurrent beyond the paper: closed-loop warm calls to a no-op function
// from 1/4/16 goroutines, reporting calls/sec and p50/p99 latency. The
// pre-PR pipeline serialised every call on one instance mutex (taken 3–5×
// per call), a single-cond call table whose completion broadcast woke every
// waiter, and an inline Proto-Faaslet reset on the caller's critical path;
// the rebuilt pipeline is lock-free on definition lookup, per-function on
// pool acquire/release, resets off the critical path, and — the second
// section — performs zero global-tier operations per steady-state warm
// call (the scheduler serves the warm check from local counters and the
// peer set from a TTL cache, Cloudburst-style).
func InvokeScale(opts Options) *Report {
	callsPerG := 20_000
	if opts.Quick {
		callsPerG = 2_000
	}
	gs := []int{1, 4, 16}

	r := &Report{
		ID:     "invoke-scale",
		Title:  "Invocation hot path: parallel warm-call throughput",
		Header: []string{"section", "config", "calls/s", "speedup", "p50", "p99"},
	}

	var baseline float64
	for _, g := range gs {
		callsPerSec, p50, p99, err := measureWarmInvoke(g, callsPerG)
		if err != nil {
			r.Note("%d goroutines: %v", g, err)
			continue
		}
		speedup := "-"
		if g == gs[0] {
			baseline = callsPerSec
		} else if baseline > 0 {
			speedup = fmt.Sprintf("%.2fx", callsPerSec/baseline)
		}
		r.Add("throughput", fmt.Sprintf("%d goroutine(s)", g),
			fmt.Sprintf("%.0f", callsPerSec), speedup, fmtDur(p50), fmtDur(p99))
	}

	// Span breakdown: every call traced (sample rate 1), then the warm
	// path decomposed by span from the tracer's aggregates — where a warm
	// invocation's time actually goes.
	if rep, err := measureSpanBreakdown(callsPerG / 4); err != nil {
		r.Note("span section: %v", err)
	} else {
		for _, st := range rep {
			r.Add("spans", st.Name, fmt.Sprintf("%d calls", st.Count), "-",
				fmtDur(st.P50), fmtDur(st.P99))
		}
	}

	// Scheduler write-through accounting: after the first call cold-starts
	// and advertises, steady-state warm invocations must perform zero
	// global-tier operations.
	store := kvstest.NewCountingStore(kvs.NewEngine())
	inst := frt.New(frt.Config{Host: "ops-host", Store: store})
	inst.RegisterNative("noop", func(ctx *core.Ctx) (int32, error) { return 0, nil })
	warmCalls := callsPerG / 2
	if _, _, err := inst.Call("noop", nil); err != nil {
		r.Note("ops section: %v", err)
	} else {
		coldOps := store.Ops()
		store.ResetOps()
		for k := 0; k < warmCalls; k++ {
			inst.Call("noop", nil)
		}
		warmOps := store.Ops()
		r.Add("global-ops", "cold start + advertise", fmt.Sprintf("%d ops", coldOps), "-", "-", "-")
		r.Add("global-ops", fmt.Sprintf("%d warm calls", warmCalls), fmt.Sprintf("%d ops", warmOps),
			"-", "-", "-")
		inst.Shutdown()
	}

	r.Note("throughput: closed-loop no-op calls per goroutine count, pool prewarmed to 2x goroutines; p50/p99 are per-call response latencies (reset excluded — it runs off the critical path)")
	r.Note("spans: per-span latency aggregates over fully traced warm calls (trace sample rate 1); throughput rows above run at the default 1-in-%d sampling", obsv.DefaultSampleRate)
	r.Note("global-ops: KVS operations counted through a store wrapper; steady-state warm calls must show 0 ops — the scheduler runs on local warm counters and a TTL-cached peer set")
	r.Note("GOMAXPROCS=%d; on one core the gain is the removed per-call work (dispatch goroutine, call-table broadcast, inline reset); with more cores the per-function pools also remove lock contention", runtime.GOMAXPROCS(0))
	return r
}

// measureSpanBreakdown runs calls fully traced warm invocations on a fresh
// instance and returns the tracer's per-span aggregates, sorted by total
// time descending so the dominant phase leads the table.
func measureSpanBreakdown(calls int) ([]obsv.SpanStat, error) {
	inst := frt.New(frt.Config{Host: "span-host", TraceSample: 1})
	defer inst.Shutdown()
	inst.RegisterNative("noop", func(ctx *core.Ctx) (int32, error) { return 0, nil })
	for k := 0; k < calls; k++ {
		if _, _, err := inst.Call("noop", nil); err != nil {
			return nil, err
		}
	}
	stats := inst.Tracer().SpanStats()
	sort.Slice(stats, func(i, j int) bool { return stats[i].Total > stats[j].Total })
	return stats, nil
}

// measureWarmInvoke drives closed-loop warm calls from g goroutines against
// a prewarmed instance and returns calls/sec plus p50/p99 latency.
func measureWarmInvoke(g, callsPerG int) (float64, time.Duration, time.Duration, error) {
	inst := frt.New(frt.Config{Host: "bench-host", PoolCap: 256})
	defer inst.Shutdown()
	gate := make(chan struct{})
	started := make(chan struct{}, 2*g)
	inst.RegisterNative("noop", func(ctx *core.Ctx) (int32, error) {
		if len(ctx.Input()) > 0 {
			started <- struct{}{}
			<-gate
		}
		return 0, nil
	})
	// Prewarm 2g Faaslets by holding 2g calls open simultaneously.
	warm := 2 * g
	var pre sync.WaitGroup
	var preErr error
	var preMu sync.Mutex
	for k := 0; k < warm; k++ {
		pre.Add(1)
		go func() {
			defer pre.Done()
			if _, _, err := inst.Call("noop", []byte("w")); err != nil {
				preMu.Lock()
				preErr = err
				preMu.Unlock()
			}
		}()
	}
	for k := 0; k < warm; k++ {
		<-started
	}
	close(gate)
	pre.Wait()
	if preErr != nil {
		return 0, 0, 0, preErr
	}

	lats := make([][]time.Duration, g)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := make([]time.Duration, 0, callsPerG)
			for k := 0; k < callsPerG; k++ {
				t0 := time.Now()
				if _, _, err := inst.Call("noop", nil); err != nil {
					return
				}
				mine = append(mine, time.Since(t0))
			}
			lats[w] = mine
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	if len(all) == 0 {
		return 0, 0, 0, fmt.Errorf("no calls completed")
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	p50 := all[len(all)/2]
	p99 := all[(len(all)*99)/100]
	return float64(len(all)) / elapsed.Seconds(), p50, p99, nil
}
