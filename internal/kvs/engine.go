// Package kvs implements the global state tier (§4.2): a Redis-like
// in-memory key-value store holding the authoritative value for every state
// key, plus the auxiliary structures the runtime needs — sets for the
// scheduler's warm-host bookkeeping and lease-based global read/write locks
// for strong consistency.
//
// The engine can be reached three ways, matching the deployment modes of the
// repo: direct (in-process, for unit tests), over TCP with a small line
// protocol (real distributed mode, see Server/Client), and through the
// cluster simulator's accounting client which charges transferred bytes to
// the simulated network (see internal/cluster).
package kvs

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Store is the interface the state tier programs against; Engine, Client and
// the simulator's accounting wrapper all implement it.
type Store interface {
	// Get returns a copy of the value at key, or nil if absent.
	Get(key string) ([]byte, error)
	// Set replaces the value at key.
	Set(key string, val []byte) error
	// GetRange returns a copy of val[off:off+n]; reads past the end are
	// truncated, reads entirely past the end return nil.
	GetRange(key string, off, n int) ([]byte, error)
	// SetRange writes val at offset off, zero-extending the value as needed.
	SetRange(key string, off int, val []byte) error
	// Append appends val to the value at key, creating it if absent, and
	// returns the new length.
	Append(key string, val []byte) (int, error)
	// Len reports the value's length (0 if absent).
	Len(key string) (int, error)
	// Delete removes a key.
	Delete(key string) error
	// SAdd adds a member to a set, reporting whether it was new.
	SAdd(key, member string) (bool, error)
	// SRem removes a member from a set, reporting whether it was present.
	SRem(key, member string) (bool, error)
	// SMembers lists a set's members in sorted order.
	SMembers(key string) ([]string, error)
	// Incr atomically adds delta to an integer value, returning the result.
	Incr(key string, delta int64) (int64, error)
	// Lock acquires the global lock for key in read or write mode, with a
	// lease that expires after ttl (protecting against crashed holders).
	// It blocks until acquired. Returns a token for Unlock.
	Lock(key string, write bool, ttl time.Duration) (uint64, error)
	// Unlock releases a previously acquired lock.
	Unlock(key string, token uint64) error
}

// Kind classifies which of the engine's structures holds a key; enumeration
// and shard migration need to know how to read and re-create an entry.
type Kind byte

// Kinds.
const (
	KindValue   Kind = 'v'
	KindSet     Kind = 's'
	KindCounter Kind = 'i'
)

// KeyInfo names one stored entry.
type KeyInfo struct {
	Kind Kind
	Key  string
}

// Lister is implemented by stores that can enumerate their contents. The
// shard rebalancer (internal/shardkvs) uses it to stream only the moved hash
// ranges during node join/leave. Engine and Client both implement it; lock
// state is deliberately excluded — leases are transient and die with their
// owner.
type Lister interface {
	AllKeys() ([]KeyInfo, error)
}

// Engine is the in-process implementation of Store.
type Engine struct {
	mu     sync.Mutex
	vals   map[string][]byte
	sets   map[string]map[string]struct{}
	ints   map[string]int64
	locks  map[string]*lockState
	tokens uint64
	// now is overridable for lease-expiry tests.
	now func() time.Time
}

type lockState struct {
	// writer holds the token of the exclusive holder, 0 if none.
	writer uint64
	// readers maps reader tokens to lease expiry.
	readers map[uint64]time.Time
	// writerExpiry bounds the writer lease.
	writerExpiry time.Time
	cond         *sync.Cond
}

// NewEngine returns an empty store.
func NewEngine() *Engine {
	e := &Engine{
		vals:  map[string][]byte{},
		sets:  map[string]map[string]struct{}{},
		ints:  map[string]int64{},
		locks: map[string]*lockState{},
		now:   time.Now,
	}
	return e
}

// Get implements Store.
func (e *Engine) Get(key string) ([]byte, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	v, ok := e.vals[key]
	if !ok {
		return nil, nil
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, nil
}

// Set implements Store.
func (e *Engine) Set(key string, val []byte) error {
	cp := make([]byte, len(val))
	copy(cp, val)
	e.mu.Lock()
	e.vals[key] = cp
	e.mu.Unlock()
	return nil
}

// GetRange implements Store.
func (e *Engine) GetRange(key string, off, n int) ([]byte, error) {
	if off < 0 || n < 0 {
		return nil, fmt.Errorf("kvs: negative range [%d,%d)", off, off+n)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	v := e.vals[key]
	if off >= len(v) {
		return nil, nil
	}
	end := off + n
	if end > len(v) {
		end = len(v)
	}
	out := make([]byte, end-off)
	copy(out, v[off:end])
	return out, nil
}

// SetRange implements Store.
func (e *Engine) SetRange(key string, off int, val []byte) error {
	if off < 0 {
		return fmt.Errorf("kvs: negative offset %d", off)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	v := e.vals[key]
	if need := off + len(val); need > len(v) {
		grown := make([]byte, need)
		copy(grown, v)
		v = grown
	}
	copy(v[off:], val)
	e.vals[key] = v
	return nil
}

// Append implements Store.
func (e *Engine) Append(key string, val []byte) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.vals[key] = append(e.vals[key], val...)
	return len(e.vals[key]), nil
}

// Len implements Store.
func (e *Engine) Len(key string) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.vals[key]), nil
}

// Delete implements Store.
func (e *Engine) Delete(key string) error {
	e.mu.Lock()
	delete(e.vals, key)
	delete(e.sets, key)
	delete(e.ints, key)
	e.mu.Unlock()
	return nil
}

// SAdd implements Store.
func (e *Engine) SAdd(key, member string) (bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.sets[key]
	if !ok {
		s = map[string]struct{}{}
		e.sets[key] = s
	}
	if _, exists := s[member]; exists {
		return false, nil
	}
	s[member] = struct{}{}
	return true, nil
}

// SRem implements Store.
func (e *Engine) SRem(key, member string) (bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.sets[key]
	if !ok {
		return false, nil
	}
	if _, exists := s[member]; !exists {
		return false, nil
	}
	delete(s, member)
	return true, nil
}

// SMembers implements Store.
func (e *Engine) SMembers(key string) ([]string, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.sets[key]
	out := make([]string, 0, len(s))
	for m := range s {
		out = append(out, m)
	}
	sort.Strings(out)
	return out, nil
}

// Incr implements Store.
func (e *Engine) Incr(key string, delta int64) (int64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.ints[key] += delta
	return e.ints[key], nil
}

// Keys returns all value keys (diagnostics and tests).
func (e *Engine) Keys() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.vals))
	for k := range e.vals {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// AllKeys implements Lister: every entry across values, sets and counters,
// sorted by kind then key.
func (e *Engine) AllKeys() ([]KeyInfo, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]KeyInfo, 0, len(e.vals)+len(e.sets)+len(e.ints))
	for k := range e.vals {
		out = append(out, KeyInfo{KindValue, k})
	}
	for k := range e.sets {
		out = append(out, KeyInfo{KindSet, k})
	}
	for k := range e.ints {
		out = append(out, KeyInfo{KindCounter, k})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Key < out[j].Key
	})
	return out, nil
}

// TotalBytes reports the sum of value lengths (memory accounting).
func (e *Engine) TotalBytes() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	var n int64
	for _, v := range e.vals {
		n += int64(len(v))
	}
	return n
}

// Lock implements Store. Lock ordering is writer-preferring within a key:
// pending writers do not starve behind a stream of readers because expired
// leases are pruned on every wake-up.
func (e *Engine) Lock(key string, write bool, ttl time.Duration) (uint64, error) {
	if ttl <= 0 {
		ttl = 30 * time.Second
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	ls, ok := e.locks[key]
	if !ok {
		ls = &lockState{readers: map[uint64]time.Time{}}
		ls.cond = sync.NewCond(&e.mu)
		e.locks[key] = ls
	}
	for {
		e.pruneExpired(ls)
		if write {
			if ls.writer == 0 && len(ls.readers) == 0 {
				e.tokens++
				ls.writer = e.tokens
				ls.writerExpiry = e.now().Add(ttl)
				return ls.writer, nil
			}
		} else {
			if ls.writer == 0 {
				e.tokens++
				ls.readers[e.tokens] = e.now().Add(ttl)
				return e.tokens, nil
			}
		}
		// Wake periodically so expired leases are reclaimed even when the
		// holder crashed and will never call Unlock.
		wake := time.AfterFunc(50*time.Millisecond, func() {
			e.mu.Lock()
			ls.cond.Broadcast()
			e.mu.Unlock()
		})
		ls.cond.Wait()
		wake.Stop()
	}
}

func (e *Engine) pruneExpired(ls *lockState) {
	now := e.now()
	if ls.writer != 0 && now.After(ls.writerExpiry) {
		ls.writer = 0
	}
	for tok, exp := range ls.readers {
		if now.After(exp) {
			delete(ls.readers, tok)
		}
	}
}

// Unlock implements Store. Unlocking an expired or unknown token is a no-op,
// mirroring lease semantics.
func (e *Engine) Unlock(key string, token uint64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	ls, ok := e.locks[key]
	if !ok {
		return nil
	}
	if ls.writer == token {
		ls.writer = 0
	} else {
		delete(ls.readers, token)
	}
	ls.cond.Broadcast()
	return nil
}

var _ Store = (*Engine)(nil)
