// SGD: the paper's Listing 1 — distributed HOGWILD training with
// distributed data objects. Workers share a weights vector through the
// local tier, read disjoint ranges of a sparse training matrix with chunked
// pulls, and push weights sporadically.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"
	"math/rand"

	"faasm.dev/faasm"
	"faasm.dev/faasm/ddo"
)

const (
	examples  = 2048
	features  = 1024
	nnz       = 24
	workers   = 8
	epochs    = 4
	learnRate = 0.1
)

func main() {
	rt := faasm.NewRuntime(faasm.Config{Host: "sgd-example"})
	defer rt.Shutdown()

	truth := seedDataset(rt)

	// weight_update: one worker's slice of an epoch (Listing 1).
	rt.RegisterGuest("weight-update", func(api faasm.API) (int32, error) {
		from := int(binary.LittleEndian.Uint32(api.Input()[0:]))
		to := int(binary.LittleEndian.Uint32(api.Input()[4:]))
		X, err := ddo.OpenSparseMatrix(api, "train-X", examples)
		if err != nil {
			return 1, err
		}
		cols, err := X.Columns(from, to)
		if err != nil {
			return 2, err
		}
		labels, err := api.StateViewChunk("train-y", from*8, (to-from)*8)
		if err != nil {
			return 3, err
		}
		w, err := ddo.OpenVector(api, "weights", features)
		if err != nil {
			return 4, err
		}
		for j := from; j < to; j++ {
			y := math.Float64frombits(binary.LittleEndian.Uint64(labels[(j-from)*8:]))
			var z float64
			cols.Col(j, func(row int, val float64) { z += w.At(row) * val })
			p := 1 / (1 + math.Exp(-z))
			target := 0.0
			if y > 0 {
				target = 1
			}
			g := p - target
			cols.Col(j, func(row int, val float64) { w.Add(row, -learnRate*g*val) })
		}
		return 0, w.Push() // VectorAsync.push
	})

	// sgd_main: chain workers per epoch, await all.
	rt.RegisterGuest("sgd-main", func(api faasm.API) (int32, error) {
		per := (examples + workers - 1) / workers
		for e := 0; e < epochs; e++ {
			var ids []uint64
			for wk := 0; wk < workers; wk++ {
				from, to := wk*per, (wk+1)*per
				if to > examples {
					to = examples
				}
				in := make([]byte, 8)
				binary.LittleEndian.PutUint32(in[0:], uint32(from))
				binary.LittleEndian.PutUint32(in[4:], uint32(to))
				id, err := api.Chain("weight-update", in)
				if err != nil {
					return 1, err
				}
				ids = append(ids, id)
			}
			for _, id := range ids {
				if ret, err := api.Await(id); err != nil || ret != 0 {
					return 2, fmt.Errorf("worker failed: ret=%d err=%v", ret, err)
				}
			}
		}
		return 0, nil
	})

	if _, ret, err := rt.Call("sgd-main", nil); err != nil || ret != 0 {
		log.Fatalf("training failed: ret=%d err=%v", ret, err)
	}

	wBytes, _ := rt.GetState("weights")
	fmt.Printf("trained %d examples × %d features, %d workers × %d epochs\n",
		examples, features, workers, epochs)
	fmt.Printf("accuracy vs ground truth: %.1f%%\n", 100*accuracy(wBytes, truth))
	stats := rt.Stats()
	fmt.Printf("faaslets: %d (cold %d, warm %d)\n", stats.Faaslets, stats.ColdStarts, stats.WarmStarts)
}

// seedDataset generates a separable sparse dataset and loads it into the
// global tier, returning the ground-truth hyperplane.
func seedDataset(rt *faasm.Runtime) []float64 {
	rng := rand.New(rand.NewSource(1))
	truth := make([]float64, features)
	for i := range truth {
		truth[i] = rng.NormFloat64()
	}
	entries := make([][]ddo.SparseEntry, examples)
	labels := make([]byte, examples*8)
	for j := 0; j < examples; j++ {
		var dot float64
		seen := map[int]bool{}
		for k := 0; k < nnz; k++ {
			row := rng.Intn(features)
			if seen[row] {
				continue
			}
			seen[row] = true
			val := rng.Float64()
			entries[j] = append(entries[j], ddo.SparseEntry{Row: row, Val: val})
			dot += truth[row] * val
		}
		label := -1.0
		if dot > 0 {
			label = 1
		}
		binary.LittleEndian.PutUint64(labels[j*8:], math.Float64bits(label))
	}
	vals, rows, colptr := ddo.BuildSparseCSC(entries)
	vk, rk, ck := ddo.SparseKeys("train-X")
	must(rt.SetState(vk, vals))
	must(rt.SetState(rk, rows))
	must(rt.SetState(ck, colptr))
	must(rt.SetState("train-y", labels))
	must(rt.SetState("weights", make([]byte, features*8)))
	return truth
}

func accuracy(wBytes []byte, truth []float64) float64 {
	rng := rand.New(rand.NewSource(2))
	correct, total := 0, 2000
	for t := 0; t < total; t++ {
		var zw, zt float64
		for k := 0; k < nnz; k++ {
			row := rng.Intn(features)
			val := rng.Float64()
			zt += truth[row] * val
			zw += math.Float64frombits(binary.LittleEndian.Uint64(wBytes[row*8:])) * val
		}
		if (zw > 0) == (zt > 0) {
			correct++
		}
	}
	return float64(correct) / float64(total)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
