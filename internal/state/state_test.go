package state

import (
	"bytes"
	"encoding/binary"
	"errors"
	"sync"
	"testing"
	"time"

	"faasm.dev/faasm/internal/kvs"
	"faasm.dev/faasm/internal/wamem"
)

func newTier() (*LocalTier, *kvs.Engine) {
	e := kvs.NewEngine()
	return NewLocalTier(e), e
}

func TestValueSizeDiscovery(t *testing.T) {
	lt, e := newTier()
	e.Set("weights", make([]byte, 1000))
	v, err := lt.Value("weights", -1)
	if err != nil {
		t.Fatal(err)
	}
	if v.Size() != 1000 {
		t.Fatalf("size = %d", v.Size())
	}
	// Unknown key without size: error.
	if _, err := lt.Value("ghost", -1); !errors.Is(err, ErrUnknownSize) {
		t.Fatalf("ghost: %v", err)
	}
	// Size conflict on re-lookup: error.
	if _, err := lt.Value("weights", 2000); !errors.Is(err, ErrSizeMismatch) {
		t.Fatalf("mismatch: %v", err)
	}
	// Same size: same handle.
	v2, err := lt.Value("weights", 1000)
	if err != nil || v2 != v {
		t.Fatal("replica not shared")
	}
}

func TestPullPushRoundTrip(t *testing.T) {
	lt, e := newTier()
	authoritative := []byte("the global truth here")
	e.Set("k", authoritative)
	v, err := lt.Value("k", -1)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Pull(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v.Bytes(), authoritative) {
		t.Fatalf("pulled %q", v.Bytes())
	}
	// Mutate locally, push, verify global.
	copy(v.Bytes(), []byte("THE"))
	if err := v.Push(); err != nil {
		t.Fatal(err)
	}
	g, _ := e.Get("k")
	if string(g[:3]) != "THE" {
		t.Fatalf("global after push: %q", g)
	}
}

func TestLocalWritesInvisibleUntilPush(t *testing.T) {
	lt, e := newTier()
	e.Set("k", []byte("aaaa"))
	v, _ := lt.Value("k", -1)
	v.Pull()
	v.Set([]byte("bbbb"))
	g, _ := e.Get("k")
	if string(g) != "aaaa" {
		t.Fatal("local set leaked to global tier before push")
	}
	v.Push()
	g, _ = e.Get("k")
	if string(g) != "bbbb" {
		t.Fatal("push did not update global tier")
	}
}

func TestSharedSegmentBetweenFaaslets(t *testing.T) {
	// Two Faaslets on the same host map the same replica segment and see
	// each other's writes with no pull/push — §3.3's sharing property
	// threaded through the state tier.
	lt, e := newTier()
	e.Set("shared", make([]byte, 64))
	v, _ := lt.Value("shared", -1)
	v.Pull()

	memA := wamem.MustNew(1, 0)
	memB := wamem.MustNew(2, 0)
	baseA, err := memA.MapShared(v.Segment())
	if err != nil {
		t.Fatal(err)
	}
	baseB, _ := memB.MapShared(v.Segment())

	if err := memA.WriteU64(baseA+8, 12345); err != nil {
		t.Fatal(err)
	}
	got, err := memB.ReadU64(baseB + 8)
	if err != nil || got != 12345 {
		t.Fatalf("cross-faaslet read: %d %v", got, err)
	}
	// And the state API sees it too.
	if binary.LittleEndian.Uint64(v.Bytes()[8:]) != 12345 {
		t.Fatal("state API does not see mapped write")
	}
}

func TestChunkedPullTransfersOnlyNeededBytes(t *testing.T) {
	lt, e := newTier()
	big := make([]byte, 100*ChunkSize)
	for i := range big {
		big[i] = byte(i / ChunkSize)
	}
	e.Set("matrix", big)
	v, _ := lt.Value("matrix", -1)

	// Pull a slice in the middle.
	got, err := v.GetAt(10*ChunkSize+100, 50)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 10 {
		t.Fatalf("chunk content = %d", got[0])
	}
	pulled := lt.Pulled.Value()
	if pulled > 2*ChunkSize {
		t.Fatalf("pulled %d bytes for a 50-byte read", pulled)
	}
	// Re-reading the same range transfers nothing more.
	if _, err := v.GetAt(10*ChunkSize+100, 50); err != nil {
		t.Fatal(err)
	}
	if lt.Pulled.Value() != pulled {
		t.Fatal("re-read re-pulled")
	}
}

func TestPushChunk(t *testing.T) {
	lt, e := newTier()
	e.Set("v", make([]byte, 3*ChunkSize))
	v, _ := lt.Value("v", -1)
	v.Pull()
	copy(v.Bytes()[ChunkSize:], []byte("chunk1"))
	if err := v.PushChunk(ChunkSize, 6); err != nil {
		t.Fatal(err)
	}
	g, _ := e.Get("v")
	if string(g[ChunkSize:ChunkSize+6]) != "chunk1" {
		t.Fatal("chunk push missed")
	}
	// Other chunks unchanged.
	if g[0] != 0 {
		t.Fatal("push chunk touched other bytes")
	}
	if lt.Pushed.Value() != 6 {
		t.Fatalf("pushed bytes = %d", lt.Pushed.Value())
	}
}

func TestSetAtAndGetRangeChecks(t *testing.T) {
	lt, e := newTier()
	e.Set("v", make([]byte, 100))
	v, _ := lt.Value("v", -1)
	if err := v.SetAt(90, []byte("0123456789A")); err == nil {
		t.Fatal("overflow SetAt accepted")
	}
	if _, err := v.GetAt(-1, 5); err == nil {
		t.Fatal("negative offset accepted")
	}
	if _, err := v.GetAt(0, -5); err == nil {
		t.Fatal("negative length accepted")
	}
	if err := v.Set(make([]byte, 99)); !errors.Is(err, ErrSizeMismatch) {
		t.Fatalf("short set: %v", err)
	}
}

func TestNewValueWithExplicitSize(t *testing.T) {
	lt, e := newTier()
	v, err := lt.Value("fresh", 256)
	if err != nil {
		t.Fatal(err)
	}
	v.Set(bytes.Repeat([]byte{7}, 256))
	if err := v.Push(); err != nil {
		t.Fatal(err)
	}
	g, _ := e.Get("fresh")
	if len(g) != 256 || g[0] != 7 {
		t.Fatalf("pushed fresh value: %d bytes", len(g))
	}
}

func TestAppendGoesStraightToGlobal(t *testing.T) {
	lt, e := newTier()
	lt.Append("results", []byte("a"))
	lt.Append("results", []byte("b"))
	g, _ := e.Get("results")
	if string(g) != "ab" {
		t.Fatalf("appended: %q", g)
	}
	all, err := lt.ReadAll("results")
	if err != nil || string(all) != "ab" {
		t.Fatalf("readall: %q %v", all, err)
	}
}

func TestLocalLockMutualExclusion(t *testing.T) {
	lt, e := newTier()
	e.Set("v", make([]byte, 8))
	v, _ := lt.Value("v", -1)
	v.Pull()
	// Many goroutines increment a counter in the value under the local
	// write lock: no lost updates.
	var wg sync.WaitGroup
	const workers, per = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				v.LockWrite()
				n := binary.LittleEndian.Uint64(v.Bytes())
				binary.LittleEndian.PutUint64(v.Bytes(), n+1)
				v.UnlockWrite()
			}
		}()
	}
	wg.Wait()
	if n := binary.LittleEndian.Uint64(v.Bytes()); n != workers*per {
		t.Fatalf("lost updates: %d", n)
	}
}

func TestConsistentUpdateAcrossTiers(t *testing.T) {
	// Two local tiers (two hosts) updating one global counter with
	// ConsistentUpdate must not lose increments — §4.2's global
	// consistency recipe.
	e := kvs.NewEngine()
	host1 := NewLocalTier(e)
	host2 := NewLocalTier(e)
	e.Set("counter", make([]byte, 8))

	var wg sync.WaitGroup
	const per = 50
	for _, lt := range []*LocalTier{host1, host2} {
		wg.Add(1)
		go func(lt *LocalTier) {
			defer wg.Done()
			v, err := lt.Value("counter", -1)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < per; i++ {
				err := v.ConsistentUpdate(func(data []byte) error {
					n := binary.LittleEndian.Uint64(data)
					binary.LittleEndian.PutUint64(data, n+1)
					return nil
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(lt)
	}
	wg.Wait()
	g, _ := e.Get("counter")
	if n := binary.LittleEndian.Uint64(g); n != 2*per {
		t.Fatalf("cross-host lost updates: %d != %d", n, 2*per)
	}
}

func TestEvictAndKeys(t *testing.T) {
	lt, e := newTier()
	e.Set("a", []byte("x"))
	lt.Value("a", -1)
	if len(lt.Keys()) != 1 {
		t.Fatal("key not registered")
	}
	if lt.LocalBytes() == 0 {
		t.Fatal("no local bytes accounted")
	}
	lt.Evict("a")
	if len(lt.Keys()) != 0 {
		t.Fatal("evict failed")
	}
}

func TestConcurrentChunkPulls(t *testing.T) {
	lt, e := newTier()
	data := make([]byte, 50*ChunkSize)
	for i := range data {
		data[i] = byte(i % 251)
	}
	e.Set("m", data)
	v, _ := lt.Value("m", -1)
	var wg sync.WaitGroup
	for w := 0; w < 10; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for c := 0; c < 50; c++ {
				off := ((c*7 + w) % 50) * ChunkSize
				got, err := v.GetAt(off, ChunkSize)
				if err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(got, data[off:off+ChunkSize]) {
					t.Errorf("chunk at %d corrupt", off)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// Every chunk pulled at most once despite 10 racing readers.
	if lt.Pulled.Value() > int64(len(data)) {
		t.Fatalf("pulled %d bytes for a %d-byte value", lt.Pulled.Value(), len(data))
	}
}

func BenchmarkLocalGet(b *testing.B) {
	lt, e := newTier()
	e.Set("v", make([]byte, 64*1024))
	v, _ := lt.Value("v", -1)
	v.Pull()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.GetAt(1024, 4096); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSharedBytesAccess(b *testing.B) {
	// Direct pointer-style access: the zero-copy path.
	lt, e := newTier()
	e.Set("v", make([]byte, 64*1024))
	v, _ := lt.Value("v", -1)
	v.Pull()
	buf := v.Bytes()
	b.ResetTimer()
	var sink byte
	for i := 0; i < b.N; i++ {
		sink ^= buf[i%len(buf)]
	}
	_ = sink
}

// trackingStore wraps a store and records every ranged read, so tests can
// assert how many global-tier exchanges a pull issued and which spans moved.
type trackingStore struct {
	kvs.Store
	mu         sync.Mutex
	getRanges  int // GetRange calls (single exchanges)
	batchCalls int // GetRanges calls (batched exchanges)
	spans      []kvs.Range
}

func (ts *trackingStore) GetRange(key string, off, n int) ([]byte, error) {
	ts.mu.Lock()
	ts.getRanges++
	ts.spans = append(ts.spans, kvs.Range{Off: off, N: n})
	ts.mu.Unlock()
	return ts.Store.GetRange(key, off, n)
}

func (ts *trackingStore) GetRanges(key string, ranges []kvs.Range) ([][]byte, error) {
	ts.mu.Lock()
	ts.batchCalls++
	ts.spans = append(ts.spans, ranges...)
	ts.mu.Unlock()
	return kvs.GetRanges(ts.Store, key, ranges)
}

// MGet/MSet/MSetEx forward so *trackingStore satisfies the full kvs.Batcher.
func (ts *trackingStore) MGet(keys []string) ([][]byte, error) { return kvs.MGet(ts.Store, keys) }
func (ts *trackingStore) MSet(pairs []kvs.Pair) error          { return kvs.MSet(ts.Store, pairs) }
func (ts *trackingStore) MSetEx(pairs []kvs.Pair, ttl time.Duration) error {
	return kvs.MSetEx(ts.Store, pairs, ttl)
}

func TestPullChunksCoalescesMissingSpans(t *testing.T) {
	e := kvs.NewEngine()
	ts := &trackingStore{Store: e}
	lt := NewLocalTier(ts)
	// 8 chunks of authoritative data.
	data := make([]byte, 8*ChunkSize)
	for i := range data {
		data[i] = byte(i / ChunkSize)
	}
	e.Set("m", data)
	v, err := lt.Value("m", -1)
	if err != nil {
		t.Fatal(err)
	}
	// Pre-pull chunks 2 and 5, leaving holes around them.
	if err := v.PullChunk(2*ChunkSize, ChunkSize); err != nil {
		t.Fatal(err)
	}
	if err := v.PullChunk(5*ChunkSize, ChunkSize); err != nil {
		t.Fatal(err)
	}
	ts.mu.Lock()
	ts.spans = nil
	ts.batchCalls = 0
	ts.mu.Unlock()
	// Pull chunks [0,7): chunks 2 and 5 are resident, so exactly three
	// missing runs ([0,2), [3,5), [6,7)) must travel in ONE batched
	// exchange.
	if err := v.PullChunks([]kvs.Range{{Off: 0, N: 7 * ChunkSize}}); err != nil {
		t.Fatal(err)
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.batchCalls != 1 {
		t.Fatalf("batched exchanges = %d, want 1", ts.batchCalls)
	}
	want := []kvs.Range{
		{Off: 0, N: 2 * ChunkSize},
		{Off: 3 * ChunkSize, N: 2 * ChunkSize},
		{Off: 6 * ChunkSize, N: ChunkSize},
	}
	if len(ts.spans) != len(want) {
		t.Fatalf("spans = %v, want %v", ts.spans, want)
	}
	for i := range want {
		if ts.spans[i] != want[i] {
			t.Fatalf("span[%d] = %v, want %v", i, ts.spans[i], want[i])
		}
	}
	if !bytes.Equal(v.Bytes()[:7*ChunkSize], data[:7*ChunkSize]) {
		t.Fatal("pulled bytes corrupt")
	}
	// Everything requested is now resident: no further transfer.
	if err := v.PullChunks([]kvs.Range{{Off: 0, N: 7 * ChunkSize}}); err != nil {
		t.Fatal(err)
	}
	if ts.batchCalls != 1 {
		t.Fatalf("re-pull of resident chunks transferred again (%d calls)", ts.batchCalls)
	}
}

func TestPullChunksOverlappingRangesAndBounds(t *testing.T) {
	lt, e := newTier()
	data := make([]byte, 3*ChunkSize+100)
	for i := range data {
		data[i] = byte(i % 251)
	}
	e.Set("k", data)
	v, err := lt.Value("k", -1)
	if err != nil {
		t.Fatal(err)
	}
	// Overlapping and duplicate ranges must not double-pull or corrupt.
	err = v.PullChunks([]kvs.Range{
		{Off: 0, N: ChunkSize + 10},
		{Off: ChunkSize, N: ChunkSize},
		{Off: 0, N: ChunkSize},
		{Off: 3 * ChunkSize, N: 100}, // final partial chunk
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v.Bytes()[:2*ChunkSize], data[:2*ChunkSize]) {
		t.Fatal("leading chunks corrupt")
	}
	if !bytes.Equal(v.Bytes()[3*ChunkSize:], data[3*ChunkSize:]) {
		t.Fatal("final partial chunk corrupt")
	}
	if lt.Pulled.Value() != int64(2*ChunkSize+100) {
		t.Fatalf("pulled %d bytes, want %d", lt.Pulled.Value(), 2*ChunkSize+100)
	}
	// Out-of-bounds range errors before any transfer.
	if err := v.PullChunks([]kvs.Range{{Off: 0, N: v.Size() + 1}}); err == nil {
		t.Fatal("out-of-bounds prefetch must error")
	}
}

func TestMarkPulledCounterTracksCompleteness(t *testing.T) {
	lt, e := newTier()
	e.Set("k", make([]byte, 10*ChunkSize))
	v, err := lt.Value("k", -1)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 10; c++ {
		if v.all {
			t.Fatalf("all set after %d of 10 chunks", c)
		}
		if err := v.PullChunk(c*ChunkSize, ChunkSize); err != nil {
			t.Fatal(err)
		}
	}
	v.mu.Lock()
	pulled, all := v.pulled, v.all
	v.mu.Unlock()
	if pulled != 10 || !all {
		t.Fatalf("pulled=%d all=%v after full chunk walk", pulled, all)
	}
}

func TestConcurrentValueLookupsShareOneReplica(t *testing.T) {
	// The registry's hot path is a shared read lock: concurrent lookups —
	// including a racing first-use creation — must all land on the same
	// *Value and never deadlock or duplicate the segment.
	g := kvs.NewEngine()
	g.Set("k", make([]byte, 4*ChunkSize))
	lt := NewLocalTier(g)
	const workers = 16
	results := make([]*Value, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < 200; k++ {
				v, err := lt.Value("k", -1)
				if err != nil {
					t.Error(err)
					return
				}
				results[w] = v
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if results[w] != results[0] {
			t.Fatalf("worker %d got a different replica", w)
		}
	}
	if n := len(lt.Keys()); n != 1 {
		t.Fatalf("registry holds %d values, want 1", n)
	}
}

func TestResidentBytes(t *testing.T) {
	lt, e := newTier()
	size := 3*ChunkSize + 100 // 4 chunks, short tail
	e.Set("k", make([]byte, size))
	if lt.ResidentBytes("k") != 0 {
		t.Fatal("no replica yet, residency must be 0")
	}
	v, err := lt.Value("k", -1)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.ResidentBytes(); got != 0 {
		t.Fatalf("unpulled residency = %d", got)
	}
	if _, err := v.EnsurePulledN(0, ChunkSize); err != nil {
		t.Fatal(err)
	}
	if got := lt.ResidentBytes("k"); got != ChunkSize {
		t.Fatalf("one chunk pulled: residency = %d, want %d", got, ChunkSize)
	}
	// Pull everything: residency is the logical size, not chunks×ChunkSize.
	if _, err := v.EnsurePulledN(0, size); err != nil {
		t.Fatal(err)
	}
	if got := lt.ResidentBytes("k"); got != int64(size) {
		t.Fatalf("full residency = %d, want %d", got, size)
	}
}
