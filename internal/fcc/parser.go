package fcc

import (
	"fmt"
	"strconv"
)

// Type is an FC type.
type Type struct {
	Kind TypeKind
	Elem *Type // pointee for TPtr
}

// TypeKind enumerates FC types.
type TypeKind int

// Type kinds.
const (
	TVoid TypeKind = iota
	TI32
	TI64
	TF64
	TPtr
)

func (t Type) String() string {
	switch t.Kind {
	case TVoid:
		return "void"
	case TI32:
		return "i32"
	case TI64:
		return "i64"
	case TF64:
		return "f64"
	case TPtr:
		return "*" + t.Elem.String()
	}
	return "?"
}

// Equal reports type identity.
func (t Type) Equal(o Type) bool {
	if t.Kind != o.Kind {
		return false
	}
	if t.Kind == TPtr {
		return t.Elem.Equal(*o.Elem)
	}
	return true
}

// ElemSize returns the byte size of a pointer's element.
func (t Type) ElemSize() int {
	if t.Kind != TPtr {
		return 0
	}
	switch t.Elem.Kind {
	case TI32:
		return 4
	case TI64, TF64:
		return 8
	}
	return 1
}

// --- AST ---

// Program is a parsed FC compilation unit.
type Program struct {
	MemPages int
	MemMax   int
	HeapBase int
	Externs  []Extern
	Globals  []GlobalVar
	Funcs    []FuncDecl
}

// Extern declares a host-interface import.
type Extern struct {
	Module string
	Name   string
	Params []Type
	Ret    Type
	Line   int
}

// GlobalVar is a module global.
type GlobalVar struct {
	Name    string
	Type    Type
	InitInt int64
	InitF64 float64
	Line    int
}

// Param is a function parameter.
type Param struct {
	Name string
	Type Type
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string
	Params []Param
	Ret    Type
	Body   []Stmt
	Line   int
}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// VarDecl declares (and optionally initialises) a local.
type VarDecl struct {
	Name string
	Type Type
	Init Expr // may be nil
	Line int
}

// Assign stores into an lvalue (identifier or index expression).
type Assign struct {
	LHS  Expr
	RHS  Expr
	Line int
}

// ExprStmt evaluates an expression for its effects.
type ExprStmt struct {
	X    Expr
	Line int
}

// If is a conditional.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Line int
}

// While loops while the condition holds.
type While struct {
	Cond Expr
	Body []Stmt
	Line int
}

// For is C-style for.
type For struct {
	Init Stmt // may be nil
	Cond Expr // may be nil (infinite)
	Post Stmt // may be nil
	Body []Stmt
	Line int
}

// Return exits the function.
type Return struct {
	X    Expr // may be nil
	Line int
}

// Break exits the innermost loop.
type Break struct{ Line int }

// Continue jumps to the innermost loop's next iteration.
type Continue struct{ Line int }

func (*VarDecl) stmtNode()  {}
func (*Assign) stmtNode()   {}
func (*ExprStmt) stmtNode() {}
func (*If) stmtNode()       {}
func (*While) stmtNode()    {}
func (*For) stmtNode()      {}
func (*Return) stmtNode()   {}
func (*Break) stmtNode()    {}
func (*Continue) stmtNode() {}

// Expr is an expression node.
type Expr interface{ exprNode() }

// IntLit is an integer literal.
type IntLit struct {
	Val  int64
	Line int
}

// FloatLit is a float literal.
type FloatLit struct {
	Val  float64
	Line int
}

// Ident references a local, parameter or global.
type Ident struct {
	Name string
	Line int
}

// Index is pointer indexing p[i].
type Index struct {
	Base Expr
	Idx  Expr
	Line int
}

// Call invokes a function, extern or builtin.
type Call struct {
	Name string
	Args []Expr
	Line int
}

// Binary is a binary operation.
type Binary struct {
	Op   string
	L, R Expr
	Line int
}

// Unary is a unary operation (-, !, ~).
type Unary struct {
	Op   string
	X    Expr
	Line int
}

func (*IntLit) exprNode()   {}
func (*FloatLit) exprNode() {}
func (*Ident) exprNode()    {}
func (*Index) exprNode()    {}
func (*Call) exprNode()     {}
func (*Binary) exprNode()   {}
func (*Unary) exprNode()    {}

// --- Parser ---

type parser struct {
	toks []tok
	pos  int
}

// Parse builds the AST for an FC source file.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{MemPages: 4, HeapBase: 4096}
	for p.cur().kind != tokEOF {
		t := p.cur()
		switch {
		case t.kind == tokKeyword && t.text == "#memory":
			p.next()
			n, err := p.expectInt()
			if err != nil {
				return nil, err
			}
			prog.MemPages = int(n)
			// Optional max.
			if p.cur().kind == tokInt {
				m, _ := p.expectInt()
				prog.MemMax = int(m)
			}
		case t.kind == tokKeyword && t.text == "#heap":
			p.next()
			n, err := p.expectInt()
			if err != nil {
				return nil, err
			}
			prog.HeapBase = int(n)
		case t.kind == tokKeyword && t.text == "extern":
			ext, err := p.parseExtern()
			if err != nil {
				return nil, err
			}
			prog.Externs = append(prog.Externs, ext)
		case t.kind == tokKeyword && t.text == "global":
			g, err := p.parseGlobal()
			if err != nil {
				return nil, err
			}
			prog.Globals = append(prog.Globals, g)
		case t.kind == tokKeyword && t.text == "func":
			fn, err := p.parseFunc()
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, fn)
		default:
			return nil, p.errf("unexpected %q at top level", t.text)
		}
	}
	return prog, nil
}

func (p *parser) cur() tok  { return p.toks[p.pos] }
func (p *parser) next() tok { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("fcc: line %d: %s", p.cur().line, fmt.Sprintf(format, args...))
}

func (p *parser) expect(text string) error {
	if p.cur().text != text {
		return p.errf("expected %q, got %q", text, p.cur().text)
	}
	p.next()
	return nil
}

func (p *parser) expectIdent() (string, error) {
	if p.cur().kind != tokIdent {
		return "", p.errf("expected identifier, got %q", p.cur().text)
	}
	return p.next().text, nil
}

func (p *parser) expectInt() (int64, error) {
	if p.cur().kind != tokInt {
		return 0, p.errf("expected integer, got %q", p.cur().text)
	}
	v, err := strconv.ParseInt(p.next().text, 0, 64)
	if err != nil {
		return 0, p.errf("bad integer: %v", err)
	}
	return v, nil
}

// parseType parses i32 | i64 | f64 | *T.
func (p *parser) parseType() (Type, error) {
	if p.cur().text == "*" {
		p.next()
		elem, err := p.parseType()
		if err != nil {
			return Type{}, err
		}
		return Type{Kind: TPtr, Elem: &elem}, nil
	}
	name, err := p.expectIdent()
	if err != nil {
		return Type{}, err
	}
	switch name {
	case "i32":
		return Type{Kind: TI32}, nil
	case "i64":
		return Type{Kind: TI64}, nil
	case "f64":
		return Type{Kind: TF64}, nil
	case "i8":
		return Type{Kind: TI32}, nil // i8 is storage-only; scalars widen
	}
	return Type{}, p.errf("unknown type %q", name)
}

// parseExtern: extern <module> <name>(T, T) T;
func (p *parser) parseExtern() (Extern, error) {
	line := p.cur().line
	p.next() // extern
	mod, err := p.expectIdent()
	if err != nil {
		return Extern{}, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return Extern{}, err
	}
	if err := p.expect("("); err != nil {
		return Extern{}, err
	}
	var params []Type
	for p.cur().text != ")" {
		t, err := p.parseType()
		if err != nil {
			return Extern{}, err
		}
		params = append(params, t)
		if p.cur().text == "," {
			p.next()
		}
	}
	p.next() // )
	ret := Type{Kind: TVoid}
	if p.cur().text != ";" {
		r, err := p.parseType()
		if err != nil {
			return Extern{}, err
		}
		ret = r
	}
	if err := p.expect(";"); err != nil {
		return Extern{}, err
	}
	return Extern{Module: mod, Name: name, Params: params, Ret: ret, Line: line}, nil
}

// parseGlobal: global name T = literal;
func (p *parser) parseGlobal() (GlobalVar, error) {
	line := p.cur().line
	p.next() // global
	name, err := p.expectIdent()
	if err != nil {
		return GlobalVar{}, err
	}
	t, err := p.parseType()
	if err != nil {
		return GlobalVar{}, err
	}
	g := GlobalVar{Name: name, Type: t, Line: line}
	if p.cur().text == "=" {
		p.next()
		neg := false
		if p.cur().text == "-" {
			neg = true
			p.next()
		}
		switch p.cur().kind {
		case tokInt:
			v, _ := strconv.ParseInt(p.next().text, 0, 64)
			if neg {
				v = -v
			}
			g.InitInt = v
		case tokFloat:
			v, _ := strconv.ParseFloat(p.next().text, 64)
			if neg {
				v = -v
			}
			g.InitF64 = v
		default:
			return GlobalVar{}, p.errf("global initialiser must be a literal")
		}
	}
	if err := p.expect(";"); err != nil {
		return GlobalVar{}, err
	}
	return g, nil
}

// parseFunc: func name(p T, ...) [T] { ... }
func (p *parser) parseFunc() (FuncDecl, error) {
	line := p.cur().line
	p.next() // func
	name, err := p.expectIdent()
	if err != nil {
		return FuncDecl{}, err
	}
	if err := p.expect("("); err != nil {
		return FuncDecl{}, err
	}
	var params []Param
	for p.cur().text != ")" {
		pname, err := p.expectIdent()
		if err != nil {
			return FuncDecl{}, err
		}
		ptype, err := p.parseType()
		if err != nil {
			return FuncDecl{}, err
		}
		params = append(params, Param{Name: pname, Type: ptype})
		if p.cur().text == "," {
			p.next()
		}
	}
	p.next() // )
	ret := Type{Kind: TVoid}
	if p.cur().text != "{" {
		r, err := p.parseType()
		if err != nil {
			return FuncDecl{}, err
		}
		ret = r
	}
	body, err := p.parseBlock()
	if err != nil {
		return FuncDecl{}, err
	}
	return FuncDecl{Name: name, Params: params, Ret: ret, Body: body, Line: line}, nil
}

func (p *parser) parseBlock() ([]Stmt, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for p.cur().text != "}" {
		if p.cur().kind == tokEOF {
			return nil, p.errf("unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	p.next() // }
	return stmts, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch {
	case t.text == "var":
		s, err := p.parseVarDecl()
		if err != nil {
			return nil, err
		}
		return s, p.expect(";")
	case t.text == "if":
		return p.parseIf()
	case t.text == "while":
		line := t.line
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &While{Cond: cond, Body: body, Line: line}, nil
	case t.text == "for":
		return p.parseFor()
	case t.text == "return":
		line := t.line
		p.next()
		if p.cur().text == ";" {
			p.next()
			return &Return{Line: line}, nil
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &Return{X: x, Line: line}, p.expect(";")
	case t.text == "break":
		p.next()
		return &Break{Line: t.line}, p.expect(";")
	case t.text == "continue":
		p.next()
		return &Continue{Line: t.line}, p.expect(";")
	default:
		return p.parseSimpleStmt(true)
	}
}

// parseSimpleStmt parses assignment or expression statement; consumeSemi
// controls the trailing semicolon (for clauses pass false).
func (p *parser) parseSimpleStmt(consumeSemi bool) (Stmt, error) {
	line := p.cur().line
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	var s Stmt
	if p.cur().text == "=" {
		p.next()
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s = &Assign{LHS: x, RHS: rhs, Line: line}
	} else {
		s = &ExprStmt{X: x, Line: line}
	}
	if consumeSemi {
		return s, p.expect(";")
	}
	return s, nil
}

func (p *parser) parseVarDecl() (*VarDecl, error) {
	line := p.cur().line
	p.next() // var
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	t, err := p.parseType()
	if err != nil {
		return nil, err
	}
	d := &VarDecl{Name: name, Type: t, Line: line}
	if p.cur().text == "=" {
		p.next()
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Init = init
	}
	return d, nil
}

func (p *parser) parseIf() (Stmt, error) {
	line := p.cur().line
	p.next() // if
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	node := &If{Cond: cond, Then: then, Line: line}
	if p.cur().text == "else" {
		p.next()
		if p.cur().text == "if" {
			nested, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			node.Else = []Stmt{nested}
		} else {
			els, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			node.Else = els
		}
	}
	return node, nil
}

func (p *parser) parseFor() (Stmt, error) {
	line := p.cur().line
	p.next() // for
	if err := p.expect("("); err != nil {
		return nil, err
	}
	node := &For{Line: line}
	if p.cur().text != ";" {
		var init Stmt
		var err error
		if p.cur().text == "var" {
			init, err = p.parseVarDecl()
		} else {
			init, err = p.parseSimpleStmt(false)
		}
		if err != nil {
			return nil, err
		}
		node.Init = init
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	if p.cur().text != ";" {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		node.Cond = cond
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	if p.cur().text != ")" {
		post, err := p.parseSimpleStmt(false)
		if err != nil {
			return nil, err
		}
		node.Post = post
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	node.Body = body
	return node, nil
}

// Operator precedence, loosest first.
var precedence = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, ">": 7, "<=": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) parseExpr() (Expr, error) { return p.parseBinary(1) }

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.cur().text
		prec, ok := precedence[op]
		if !ok || prec < minPrec || p.cur().kind != tokPunct {
			return lhs, nil
		}
		line := p.cur().line
		p.next()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Op: op, L: lhs, R: rhs, Line: line}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.cur()
	switch t.text {
	case "-", "!", "~":
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: t.text, X: x, Line: t.line}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().text {
		case "[":
			line := p.cur().line
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			x = &Index{Base: x, Idx: idx, Line: line}
		default:
			return x, nil
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokInt:
		p.next()
		v, err := strconv.ParseInt(t.text, 0, 64)
		if err != nil {
			return nil, p.errf("bad integer %q", t.text)
		}
		return &IntLit{Val: v, Line: t.line}, nil
	case t.kind == tokFloat:
		p.next()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf("bad float %q", t.text)
		}
		return &FloatLit{Val: v, Line: t.line}, nil
	case t.kind == tokIdent:
		p.next()
		if p.cur().text == "(" {
			p.next()
			var args []Expr
			for p.cur().text != ")" {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if p.cur().text == "," {
					p.next()
				}
			}
			p.next() // )
			return &Call{Name: t.text, Args: args, Line: t.line}, nil
		}
		return &Ident{Name: t.text, Line: t.line}, nil
	case t.text == "(":
		p.next()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return x, p.expect(")")
	}
	return nil, p.errf("unexpected %q in expression", t.text)
}
