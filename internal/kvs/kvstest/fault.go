package kvstest

import (
	"fmt"
	"sync"
	"time"

	"faasm.dev/faasm/internal/kvs"
)

// FaultStore wraps a Store with deterministic fault injection, so failure
// handling (ring failover, quorum accounting, read-repair, client retries)
// is testable without real process death. Faults are armed from the test
// goroutine and observed by whatever goroutines drive the store:
//
//   - Crash/Restore: every operation fails with an error classified by
//     kvs.IsUnavailable until restored; the data underneath is untouched,
//     exactly like a process restart. A network partition is the same thing
//     observed from one side: crash the wrapper on one routing path while
//     another path keeps a healthy wrapper over the same inner store.
//   - FailNext(n, err): the next n operations fail with err (n < 0 means
//     until cleared), for injecting one-shot or semantic errors.
//   - SetLatency(d): every operation sleeps d first, for timeout paths.
//
// The zero faults pass everything straight through.
type FaultStore struct {
	inner kvs.Store

	mu      sync.Mutex
	down    bool
	skipN   int
	failN   int
	failErr error
	latency time.Duration
	sleep   func(time.Duration)
	faults  int64 // operations failed by injection
}

// NewFaultStore wraps inner with fault injection (initially healthy).
func NewFaultStore(inner kvs.Store) *FaultStore {
	return &FaultStore{inner: inner}
}

// Crash makes every subsequent operation fail as unavailable.
func (f *FaultStore) Crash() {
	f.mu.Lock()
	f.down = true
	f.mu.Unlock()
}

// Restore brings a crashed store back; injected FailNext errors survive a
// restore, a crash does not clear them.
func (f *FaultStore) Restore() {
	f.mu.Lock()
	f.down = false
	f.mu.Unlock()
}

// Down reports whether the store is currently crashed.
func (f *FaultStore) Down() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.down
}

// FailNext arms err for the next n operations (n < 0: until cleared with
// FailNext(0, nil)). A nil err injects an unavailability error.
func (f *FaultStore) FailNext(n int, err error) { f.FailAfter(0, n, err) }

// FailAfter lets skip operations through, then fails the following n (n < 0:
// until cleared) with err — the tool for failing a batch part-way through.
// A nil err injects an unavailability error.
func (f *FaultStore) FailAfter(skip, n int, err error) {
	f.mu.Lock()
	f.skipN = skip
	f.failN = n
	f.failErr = err
	f.mu.Unlock()
}

// SetLatency makes every operation sleep d before executing (0 clears).
func (f *FaultStore) SetLatency(d time.Duration) {
	f.mu.Lock()
	f.latency = d
	f.mu.Unlock()
}

// SetSleeper routes injected latency through fn instead of time.Sleep — the
// simnet fault shard pays latency on the experiment clock this way.
func (f *FaultStore) SetSleeper(fn func(time.Duration)) {
	f.mu.Lock()
	f.sleep = fn
	f.mu.Unlock()
}

// Faults reports how many operations fault injection has failed.
func (f *FaultStore) Faults() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.faults
}

// gate applies the armed faults to one operation.
func (f *FaultStore) gate() error {
	f.mu.Lock()
	d := f.latency
	var err error
	switch {
	case f.down:
		err = fmt.Errorf("kvstest: injected crash: %w", kvs.ErrUnavailable)
	case f.skipN > 0:
		f.skipN--
	case f.failN != 0:
		if err = f.failErr; err == nil {
			err = fmt.Errorf("kvstest: injected fault: %w", kvs.ErrUnavailable)
		}
		if f.failN > 0 {
			f.failN--
		}
	}
	if err != nil {
		f.faults++
	}
	sleep := f.sleep
	f.mu.Unlock()
	if d > 0 {
		if sleep == nil {
			sleep = time.Sleep
		}
		sleep(d)
	}
	return err
}

// Get implements kvs.Store.
func (f *FaultStore) Get(key string) ([]byte, error) {
	if err := f.gate(); err != nil {
		return nil, err
	}
	return f.inner.Get(key)
}

// Set implements kvs.Store.
func (f *FaultStore) Set(key string, val []byte) error {
	if err := f.gate(); err != nil {
		return err
	}
	return f.inner.Set(key, val)
}

// SetEx implements kvs.Store.
func (f *FaultStore) SetEx(key string, val []byte, ttl time.Duration) error {
	if err := f.gate(); err != nil {
		return err
	}
	return f.inner.SetEx(key, val, ttl)
}

// TTL implements kvs.Store.
func (f *FaultStore) TTL(key string) (time.Duration, error) {
	if err := f.gate(); err != nil {
		return 0, err
	}
	return f.inner.TTL(key)
}

// Persist implements kvs.Store.
func (f *FaultStore) Persist(key string) (bool, error) {
	if err := f.gate(); err != nil {
		return false, err
	}
	return f.inner.Persist(key)
}

// GetRange implements kvs.Store.
func (f *FaultStore) GetRange(key string, off, n int) ([]byte, error) {
	if err := f.gate(); err != nil {
		return nil, err
	}
	return f.inner.GetRange(key, off, n)
}

// SetRange implements kvs.Store.
func (f *FaultStore) SetRange(key string, off int, val []byte) error {
	if err := f.gate(); err != nil {
		return err
	}
	return f.inner.SetRange(key, off, val)
}

// Append implements kvs.Store.
func (f *FaultStore) Append(key string, val []byte) (int, error) {
	if err := f.gate(); err != nil {
		return 0, err
	}
	return f.inner.Append(key, val)
}

// Len implements kvs.Store.
func (f *FaultStore) Len(key string) (int, error) {
	if err := f.gate(); err != nil {
		return 0, err
	}
	return f.inner.Len(key)
}

// Delete implements kvs.Store.
func (f *FaultStore) Delete(key string) error {
	if err := f.gate(); err != nil {
		return err
	}
	return f.inner.Delete(key)
}

// SAdd implements kvs.Store.
func (f *FaultStore) SAdd(key, member string) (bool, error) {
	if err := f.gate(); err != nil {
		return false, err
	}
	return f.inner.SAdd(key, member)
}

// SRem implements kvs.Store.
func (f *FaultStore) SRem(key, member string) (bool, error) {
	if err := f.gate(); err != nil {
		return false, err
	}
	return f.inner.SRem(key, member)
}

// SMembers implements kvs.Store.
func (f *FaultStore) SMembers(key string) ([]string, error) {
	if err := f.gate(); err != nil {
		return nil, err
	}
	return f.inner.SMembers(key)
}

// Incr implements kvs.Store.
func (f *FaultStore) Incr(key string, delta int64) (int64, error) {
	if err := f.gate(); err != nil {
		return 0, err
	}
	return f.inner.Incr(key, delta)
}

// Lock implements kvs.Store.
func (f *FaultStore) Lock(key string, write bool, ttl time.Duration) (uint64, error) {
	if err := f.gate(); err != nil {
		return 0, err
	}
	return f.inner.Lock(key, write, ttl)
}

// Unlock implements kvs.Store.
func (f *FaultStore) Unlock(key string, token uint64) error {
	if err := f.gate(); err != nil {
		return err
	}
	return f.inner.Unlock(key, token)
}

// AllKeys implements kvs.Lister when the inner store does; a crashed shard
// cannot enumerate its keys, so migration and repair see the outage too.
func (f *FaultStore) AllKeys() ([]kvs.KeyInfo, error) {
	if err := f.gate(); err != nil {
		return nil, err
	}
	l, ok := f.inner.(kvs.Lister)
	if !ok {
		return nil, fmt.Errorf("kvstest: inner store cannot enumerate keys")
	}
	return l.AllKeys()
}

var (
	_ kvs.Store  = (*FaultStore)(nil)
	_ kvs.Lister = (*FaultStore)(nil)
)
