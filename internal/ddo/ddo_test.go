package ddo

import (
	"bytes"
	"encoding/binary"
	"math"
	"sync"
	"testing"

	"faasm.dev/faasm/internal/core"
	"faasm.dev/faasm/internal/hostapi"
	"faasm.dev/faasm/internal/kvs"
	"faasm.dev/faasm/internal/state"
)

// testAPI builds a FaasmAPI over a fresh Faaslet and shared engine.
func testAPI(t *testing.T, engine *kvs.Engine, tier *state.LocalTier) hostapi.API {
	t.Helper()
	env := &core.Env{State: tier}
	f, err := core.New(core.FuncDef{
		Name:   "ddo-test",
		Native: func(ctx *core.Ctx) (int32, error) { return 0, nil },
	}, env)
	if err != nil {
		t.Fatal(err)
	}
	return &hostapi.FaasmAPI{Ctx: core.NewCtx(f)}
}

func setup(t *testing.T) (hostapi.API, *kvs.Engine) {
	engine := kvs.NewEngine()
	tier := state.NewLocalTier(engine)
	return testAPI(t, engine, tier), engine
}

func TestVectorLocalThenPush(t *testing.T) {
	api, engine := setup(t)
	engine.Set("v", make([]byte, 4*8))
	v, err := OpenVector(api, "v", 4)
	if err != nil {
		t.Fatal(err)
	}
	v.Set(0, 1.5)
	v.Add(0, 0.5)
	v.Set(3, -2)
	if v.At(0) != 2 || v.At(3) != -2 {
		t.Fatalf("local values: %v %v", v.At(0), v.At(3))
	}
	// Global unchanged until push.
	g, _ := engine.Get("v")
	if binary.LittleEndian.Uint64(g) != 0 {
		t.Fatal("local write leaked")
	}
	if err := v.Push(); err != nil {
		t.Fatal(err)
	}
	g, _ = engine.Get("v")
	if math.Float64frombits(binary.LittleEndian.Uint64(g)) != 2 {
		t.Fatal("push missed")
	}
}

func TestVectorSharedWithinHost(t *testing.T) {
	// Two Faaslets on one host share the vector through the local tier.
	engine := kvs.NewEngine()
	tier := state.NewLocalTier(engine)
	engine.Set("w", make([]byte, 8))
	a := testAPI(t, engine, tier)
	b := testAPI(t, engine, tier)
	va, _ := OpenVector(a, "w", 1)
	vb, _ := OpenVector(b, "w", 1)
	va.Set(0, 42)
	if vb.At(0) != 42 {
		t.Fatal("co-located faaslets do not share the vector")
	}
}

func TestMatrixColumns(t *testing.T) {
	api, engine := setup(t)
	const rows, cols = 8, 16
	blob := make([]byte, MatrixBytes(rows, cols))
	for j := 0; j < cols; j++ {
		for i := 0; i < rows; i++ {
			binary.LittleEndian.PutUint64(blob[(j*rows+i)*8:], math.Float64bits(float64(j*100+i)))
		}
	}
	engine.Set("m", blob)
	m := OpenMatrix(api, "m", rows, cols)
	cv, err := m.Columns(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if cv.At(3, 5) != 503 {
		t.Fatalf("At(3,5) = %v", cv.At(3, 5))
	}
	col := cv.Col(6)
	if len(col) != rows || col[2] != 602 {
		t.Fatalf("Col(6) = %v", col)
	}
	if _, err := m.Columns(10, 20); err == nil {
		t.Fatal("out-of-range columns accepted")
	}
	// WriteColumn round trip.
	want := make([]float64, rows)
	for i := range want {
		want[i] = float64(-i)
	}
	if err := m.WriteColumn(2, want); err != nil {
		t.Fatal(err)
	}
	g, _ := engine.Get("m")
	if math.Float64frombits(binary.LittleEndian.Uint64(g[(2*rows+3)*8:])) != -3 {
		t.Fatal("column write missed global tier")
	}
}

func TestSparseMatrixChunkedAccess(t *testing.T) {
	api, engine := setup(t)
	entries := [][]SparseEntry{
		{{Row: 0, Val: 1}, {Row: 5, Val: 2}},
		{},
		{{Row: 3, Val: 4}},
		{{Row: 1, Val: 8}, {Row: 2, Val: 16}, {Row: 9, Val: 32}},
	}
	vals, rows, colptr := BuildSparseCSC(entries)
	vk, rk, ck := SparseKeys("sm")
	engine.Set(vk, vals)
	engine.Set(rk, rows)
	engine.Set(ck, colptr)

	sm, err := OpenSparseMatrix(api, "sm", len(entries))
	if err != nil {
		t.Fatal(err)
	}
	if sm.NNZ() != 6 {
		t.Fatalf("nnz = %d", sm.NNZ())
	}
	sc, err := sm.Columns(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	var got []float64
	sc.Col(3, func(row int, val float64) { got = append(got, float64(row), val) })
	want := []float64{1, 8, 2, 16, 9, 32}
	if len(got) != len(want) {
		t.Fatalf("col 3 = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("col 3 = %v", got)
		}
	}
	if _, err := sm.Columns(3, 2); err == nil {
		t.Fatal("inverted range accepted")
	}
}

func TestCounterStronglyConsistent(t *testing.T) {
	engine := kvs.NewEngine()
	// Two hosts (separate local tiers) hammer one counter.
	var wg sync.WaitGroup
	for h := 0; h < 2; h++ {
		tier := state.NewLocalTier(engine)
		api := testAPI(t, engine, tier)
		wg.Add(1)
		go func(api hostapi.API) {
			defer wg.Done()
			c := OpenCounter(api, "n")
			for i := 0; i < 25; i++ {
				if _, err := c.Add(1); err != nil {
					t.Error(err)
					return
				}
			}
		}(api)
	}
	wg.Wait()
	api, _ := testAPI(t, engine, state.NewLocalTier(engine)), engine
	v, err := OpenCounter(api, "n").Value()
	if err != nil || v != 50 {
		t.Fatalf("counter = %d %v", v, err)
	}
}

func TestListAppendAll(t *testing.T) {
	api, _ := setup(t)
	l := OpenList(api, "log")
	records := [][]byte{[]byte("a"), []byte("bb"), {0, 1, 2}}
	for _, r := range records {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	got, err := l.All()
	if err != nil || len(got) != 3 {
		t.Fatalf("all: %v %v", got, err)
	}
	for i := range records {
		if !bytes.Equal(got[i], records[i]) {
			t.Fatalf("record %d = %v", i, got[i])
		}
	}
}

func TestDictSetGet(t *testing.T) {
	api, _ := setup(t)
	d := OpenDict(api, "cfg")
	if err := d.Set("alpha", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := d.Set("beta", []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := d.Set("alpha", []byte("updated")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := d.Get("alpha")
	if err != nil || !ok || string(v) != "updated" {
		t.Fatalf("get alpha: %q %v %v", v, ok, err)
	}
	_, ok, _ = d.Get("missing")
	if ok {
		t.Fatal("missing key found")
	}
}

func TestBarrier(t *testing.T) {
	api, _ := setup(t)
	b := OpenBarrier(api, "rendezvous", 3)
	for i := 0; i < 2; i++ {
		done, err := b.Arrive()
		if err != nil || done {
			t.Fatalf("arrive %d: %v %v", i, done, err)
		}
	}
	done, err := b.Arrive()
	if err != nil || !done {
		t.Fatalf("final arrive: %v %v", done, err)
	}
}

func TestSparseMatrixPrefetchColumns(t *testing.T) {
	api, engine := setup(t)
	// A matrix wide enough that distinct column windows land in different
	// chunks of vals/rows: each column gets ~64 entries of 8 bytes, so
	// ~8 columns span one 4 KB chunk.
	const cols = 64
	entries := make([][]SparseEntry, cols)
	for j := range entries {
		for k := 0; k < 64; k++ {
			entries[j] = append(entries[j], SparseEntry{Row: k, Val: float64(j*100 + k)})
		}
	}
	vals, rows, colptr := BuildSparseCSC(entries)
	vk, rk, ck := SparseKeys("psm")
	engine.Set(vk, vals)
	engine.Set(rk, rows)
	engine.Set(ck, colptr)

	sm, err := OpenSparseMatrix(api, "psm", cols)
	if err != nil {
		t.Fatal(err)
	}
	// Prefetch two scattered windows in one shot, then verify the windows
	// read back correctly.
	if err := sm.PrefetchColumns([][2]int{{0, 4}, {40, 44}}); err != nil {
		t.Fatal(err)
	}
	for _, w := range [][2]int{{0, 4}, {40, 44}} {
		sc, err := sm.Columns(w[0], w[1])
		if err != nil {
			t.Fatal(err)
		}
		for j := w[0]; j < w[1]; j++ {
			n := 0
			sc.Col(j, func(row int, val float64) {
				if row != n || val != float64(j*100+n) {
					t.Fatalf("col %d entry %d = (%d, %v)", j, n, row, val)
				}
				n++
			})
			if n != 64 {
				t.Fatalf("col %d has %d entries", j, n)
			}
		}
	}
	// Out-of-range windows are rejected.
	if err := sm.PrefetchColumns([][2]int{{0, cols + 1}}); err == nil {
		t.Fatal("out-of-range prefetch accepted")
	}
	if err := sm.PrefetchColumns([][2]int{{3, 3}}); err == nil {
		t.Fatal("empty window accepted")
	}
}
