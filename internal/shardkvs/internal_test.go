package shardkvs

// White-box checks for the small pure helpers behind quorum writes and
// deadline-based TTL fan-out.

import (
	"testing"
	"time"
)

func TestSetExRemainingShrinksTowardDeadline(t *testing.T) {
	deadline := time.Now().Add(100 * time.Millisecond)
	r1 := setExRemaining(deadline)
	time.Sleep(40 * time.Millisecond)
	r2 := setExRemaining(deadline)
	if r1 <= r2 {
		t.Fatalf("remaining TTL must shrink as the deadline nears: %v then %v", r1, r2)
	}
	if d := r1 - r2; d < 30*time.Millisecond {
		t.Fatalf("remaining TTL shrank by %v, want ~40ms", d)
	}
}

func TestSetExRemainingClampsPastDeadline(t *testing.T) {
	if got := setExRemaining(time.Now().Add(-time.Second)); got != time.Millisecond {
		t.Fatalf("past deadline must clamp to 1ms, got %v", got)
	}
}

func TestQuorumResolution(t *testing.T) {
	cases := []struct {
		name   string
		w      int
		copies int
		want   int
	}{
		{"default-strict", 0, 3, 3},
		{"relaxed", 1, 3, 1},
		{"partial", 2, 3, 2},
		{"clamped-to-copies", 5, 2, 2},
		{"negative-means-all", -1, 2, 2},
	}
	for _, c := range cases {
		r := New(Options{WriteQuorum: c.w})
		if got := r.quorum(c.copies); got != c.want {
			t.Fatalf("%s: quorum(%d) with W=%d = %d, want %d", c.name, c.copies, c.w, got, c.want)
		}
	}
}
