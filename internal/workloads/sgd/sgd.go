// Package sgd implements the machine-learning training workload of §6.2:
// distributed stochastic gradient descent with the HOGWILD! algorithm,
// the paper's Listing 1 expressed with distributed data objects. Workers
// read disjoint column ranges of a sparse training matrix (implicitly
// pulling only the needed chunks), update a shared weights vector without
// locks, and push it to the global tier sporadically — the inconsistency is
// tolerated by SGD, exactly as the paper argues.
//
// The Reuters RCV1 dataset is proprietary-ish to obtain offline, so the
// generator below synthesises a dataset with RCV1's shape: a configurable
// number of examples over a large sparse feature space with a ground-truth
// linear separator, which preserves the workload's data-movement profile
// (what Figs 6a–6c measure).
package sgd

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"

	"faasm.dev/faasm/internal/ddo"
	"faasm.dev/faasm/internal/hostapi"
)

// Params sizes a training run.
type Params struct {
	Examples  int
	Features  int
	NNZ       int // non-zeros per example
	Epochs    int
	Workers   int
	LearnRate float64
	PushEvery int // examples between weight pushes (VectorAsync cadence)
	Seed      int64
}

// DefaultParams returns a laptop-scale configuration with RCV1's shape
// (RCV1: ~800 K examples, 47 K features, ~76 nnz; scaled down ~100×).
func DefaultParams() Params {
	return Params{
		Examples:  8192,
		Features:  4096,
		NNZ:       32,
		Epochs:    3,
		Workers:   8,
		LearnRate: 0.1,
		PushEvery: 256,
		Seed:      42,
	}
}

// State keys.
const (
	KeyX       = "sgd/X" // sparse matrix prefix (vals/rows/colptr)
	KeyY       = "sgd/y"
	KeyWeights = "sgd/weights"
)

// Dataset is a generated training set plus its ground truth.
type Dataset struct {
	Params Params
	Vals   []byte
	Rows   []byte
	Colptr []byte
	Labels []byte
	truth  []float64
}

// Generate builds a synthetic linearly separable sparse dataset.
func Generate(p Params) *Dataset {
	rng := rand.New(rand.NewSource(p.Seed))
	truth := make([]float64, p.Features)
	for i := range truth {
		truth[i] = rng.NormFloat64()
	}
	entries := make([][]ddo.SparseEntry, p.Examples)
	labels := make([]byte, p.Examples*8)
	for j := 0; j < p.Examples; j++ {
		cols := make([]ddo.SparseEntry, 0, p.NNZ)
		seen := map[int]bool{}
		dot := 0.0
		for k := 0; k < p.NNZ; k++ {
			row := rng.Intn(p.Features)
			if seen[row] {
				continue
			}
			seen[row] = true
			val := rng.Float64()
			cols = append(cols, ddo.SparseEntry{Row: row, Val: val})
			dot += truth[row] * val
		}
		entries[j] = cols
		label := -1.0
		if dot > 0 {
			label = 1.0
		}
		binary.LittleEndian.PutUint64(labels[j*8:], math.Float64bits(label))
	}
	vals, rows, colptr := ddo.BuildSparseCSC(entries)
	return &Dataset{Params: p, Vals: vals, Rows: rows, Colptr: colptr, Labels: labels, truth: truth}
}

// Bytes reports the dataset's total state footprint.
func (d *Dataset) Bytes() int64 {
	return int64(len(d.Vals) + len(d.Rows) + len(d.Colptr) + len(d.Labels))
}

// Seeder abstracts cluster/global-tier setup.
type Seeder interface {
	SetState(key string, val []byte) error
}

// Seed loads the dataset and zeroed weights into the global tier.
func (d *Dataset) Seed(s Seeder) error {
	valsKey, rowsKey, cpKey := ddo.SparseKeys(KeyX)
	if err := s.SetState(valsKey, d.Vals); err != nil {
		return err
	}
	if err := s.SetState(rowsKey, d.Rows); err != nil {
		return err
	}
	if err := s.SetState(cpKey, d.Colptr); err != nil {
		return err
	}
	if err := s.SetState(KeyY, d.Labels); err != nil {
		return err
	}
	return s.SetState(KeyWeights, make([]byte, d.Params.Features*8))
}

// updateInput is the weight_update wire format.
type updateInput struct {
	From, To  int32
	Features  int32
	Examples  int32
	LR        float64
	PushEvery int32
}

func encodeUpdate(u updateInput) []byte {
	b := make([]byte, 28)
	binary.LittleEndian.PutUint32(b[0:], uint32(u.From))
	binary.LittleEndian.PutUint32(b[4:], uint32(u.To))
	binary.LittleEndian.PutUint32(b[8:], uint32(u.Features))
	binary.LittleEndian.PutUint32(b[12:], uint32(u.Examples))
	binary.LittleEndian.PutUint64(b[16:], math.Float64bits(u.LR))
	binary.LittleEndian.PutUint32(b[24:], uint32(u.PushEvery))
	return b
}

func decodeUpdate(b []byte) (updateInput, error) {
	if len(b) != 28 {
		return updateInput{}, fmt.Errorf("sgd: bad update input (%d bytes)", len(b))
	}
	return updateInput{
		From:      int32(binary.LittleEndian.Uint32(b[0:])),
		To:        int32(binary.LittleEndian.Uint32(b[4:])),
		Features:  int32(binary.LittleEndian.Uint32(b[8:])),
		Examples:  int32(binary.LittleEndian.Uint32(b[12:])),
		LR:        math.Float64frombits(binary.LittleEndian.Uint64(b[16:])),
		PushEvery: int32(binary.LittleEndian.Uint32(b[24:])),
	}, nil
}

// WeightUpdate is the worker guest: the weight_update of Listing 1.
func WeightUpdate(api hostapi.API) (int32, error) {
	in, err := decodeUpdate(api.Input())
	if err != nil {
		return 1, err
	}
	X, err := ddo.OpenSparseMatrix(api, KeyX, int(in.Examples))
	if err != nil {
		return 2, err
	}
	cols, err := X.Columns(int(in.From), int(in.To))
	if err != nil {
		return 3, err
	}
	yBuf, err := api.StateViewChunk(KeyY, int(in.From)*8, int(in.To-in.From)*8)
	if err != nil {
		return 4, err
	}
	w, err := ddo.OpenVector(api, KeyWeights, int(in.Features))
	if err != nil {
		return 5, err
	}
	sincePush := 0
	for j := int(in.From); j < int(in.To); j++ {
		y := math.Float64frombits(binary.LittleEndian.Uint64(yBuf[(j-int(in.From))*8:]))
		// Logistic regression gradient on one example.
		var z float64
		cols.Col(j, func(row int, val float64) {
			z += w.At(row) * val
		})
		p := 1 / (1 + math.Exp(-z))
		target := 0.0
		if y > 0 {
			target = 1.0
		}
		g := p - target
		cols.Col(j, func(row int, val float64) {
			w.Add(row, -in.LR*g*val) // HOGWILD: unsynchronised on purpose
		})
		sincePush++
		if in.PushEvery > 0 && sincePush >= int(in.PushEvery) {
			if err := w.Push(); err != nil {
				return 6, err
			}
			sincePush = 0
		}
	}
	if err := w.Push(); err != nil {
		return 7, err
	}
	return 0, nil
}

// mainInput is sgd_main's wire format.
type mainInput struct {
	Workers   int32
	Epochs    int32
	Examples  int32
	Features  int32
	LR        float64
	PushEvery int32
}

// EncodeMain packs the sgd_main input.
func EncodeMain(p Params) []byte {
	b := make([]byte, 32)
	binary.LittleEndian.PutUint32(b[0:], uint32(p.Workers))
	binary.LittleEndian.PutUint32(b[4:], uint32(p.Epochs))
	binary.LittleEndian.PutUint32(b[8:], uint32(p.Examples))
	binary.LittleEndian.PutUint32(b[12:], uint32(p.Features))
	binary.LittleEndian.PutUint64(b[16:], math.Float64bits(p.LearnRate))
	binary.LittleEndian.PutUint32(b[24:], uint32(p.PushEvery))
	return b
}

func decodeMain(b []byte) (mainInput, error) {
	if len(b) != 32 {
		return mainInput{}, fmt.Errorf("sgd: bad main input (%d bytes)", len(b))
	}
	return mainInput{
		Workers:   int32(binary.LittleEndian.Uint32(b[0:])),
		Epochs:    int32(binary.LittleEndian.Uint32(b[4:])),
		Examples:  int32(binary.LittleEndian.Uint32(b[8:])),
		Features:  int32(binary.LittleEndian.Uint32(b[12:])),
		LR:        math.Float64frombits(binary.LittleEndian.Uint64(b[16:])),
		PushEvery: int32(binary.LittleEndian.Uint32(b[24:])),
	}, nil
}

// Main is the sgd_main guest of Listing 1: for each epoch it chains
// weight_update across workers on disjoint example ranges and awaits them.
func Main(api hostapi.API) (int32, error) {
	in, err := decodeMain(api.Input())
	if err != nil {
		return 1, err
	}
	workers := int(in.Workers)
	per := (int(in.Examples) + workers - 1) / workers
	for e := 0; e < int(in.Epochs); e++ {
		ids := make([]uint64, 0, workers)
		for wkr := 0; wkr < workers; wkr++ {
			from := wkr * per
			to := from + per
			if to > int(in.Examples) {
				to = int(in.Examples)
			}
			if from >= to {
				break
			}
			id, err := api.Chain("sgd-update", encodeUpdate(updateInput{
				From: int32(from), To: int32(to),
				Features: in.Features, Examples: in.Examples,
				LR: in.LR, PushEvery: in.PushEvery,
			}))
			if err != nil {
				return 2, err
			}
			ids = append(ids, id)
		}
		for _, id := range ids {
			if ret, err := api.Await(id); err != nil || ret != 0 {
				return 3, fmt.Errorf("sgd: worker failed: ret=%d err=%v", ret, err)
			}
		}
	}
	return 0, nil
}

// Register deploys both guests on a platform.
func Register(reg interface {
	Register(fn string, g hostapi.Guest) error
}) error {
	if err := reg.Register("sgd-update", WeightUpdate); err != nil {
		return err
	}
	return reg.Register("sgd-main", Main)
}

// Accuracy evaluates trained weights against the dataset's ground truth.
func (d *Dataset) Accuracy(weightBytes []byte) float64 {
	w := make([]float64, d.Params.Features)
	for i := range w {
		if (i+1)*8 <= len(weightBytes) {
			w[i] = math.Float64frombits(binary.LittleEndian.Uint64(weightBytes[i*8:]))
		}
	}
	correct := 0
	for j := 0; j < d.Params.Examples; j++ {
		lo := int(binary.LittleEndian.Uint64(d.Colptr[j*8:]))
		hi := int(binary.LittleEndian.Uint64(d.Colptr[(j+1)*8:]))
		var z float64
		for k := lo; k < hi; k++ {
			row := int(binary.LittleEndian.Uint32(d.Rows[k*4:]))
			val := math.Float64frombits(binary.LittleEndian.Uint64(d.Vals[k*8:]))
			z += w[row] * val
		}
		y := math.Float64frombits(binary.LittleEndian.Uint64(d.Labels[j*8:]))
		if (z > 0) == (y > 0) {
			correct++
		}
	}
	return float64(correct) / float64(d.Params.Examples)
}
