package faasm_test

// One testing.B benchmark per table and figure of the paper's evaluation.
// Each wraps the corresponding experiment from internal/experiments in its
// quick configuration; `cmd/faasm-bench` runs the full-sized sweeps and
// EXPERIMENTS.md records the full results. Benchmarks report one run per
// iteration, so ns/op approximates one complete experiment pass.

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"

	"faasm.dev/faasm/internal/core"
	"faasm.dev/faasm/internal/experiments"
	"faasm.dev/faasm/internal/frt"
	"faasm.dev/faasm/internal/kvs"
	"faasm.dev/faasm/internal/shardkvs"
)

var quick = experiments.Options{Quick: true}

func benchReport(b *testing.B, run func(experiments.Options) *experiments.Report) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := run(quick)
		if len(r.Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
		if i == 0 && testing.Verbose() {
			r.Fprint(io.Discard)
		}
	}
}

// BenchmarkTable1Isolation regenerates Table 1 (isolation approaches).
func BenchmarkTable1Isolation(b *testing.B) { benchReport(b, experiments.Table1) }

// BenchmarkTable3ColdStart regenerates Table 3 (cold-start comparison).
func BenchmarkTable3ColdStart(b *testing.B) { benchReport(b, experiments.Table3) }

// BenchmarkTable3Python regenerates the §6.5 Python no-op comparison.
func BenchmarkTable3Python(b *testing.B) { benchReport(b, experiments.Table3Python) }

// BenchmarkFig6SGD regenerates Fig 6 (training time / transfers / memory).
func BenchmarkFig6SGD(b *testing.B) { benchReport(b, experiments.Fig6) }

// BenchmarkFig6Small regenerates the §6.2 reduced-dataset run.
func BenchmarkFig6Small(b *testing.B) { benchReport(b, experiments.Fig6Small) }

// BenchmarkFig7Inference regenerates Fig 7a (latency vs throughput).
func BenchmarkFig7Inference(b *testing.B) { benchReport(b, experiments.Fig7) }

// BenchmarkFig7LatencyCDF regenerates Fig 7b (latency CDF).
func BenchmarkFig7LatencyCDF(b *testing.B) { benchReport(b, experiments.Fig7CDF) }

// BenchmarkFig8Matmul regenerates Fig 8 (matmul duration / transfers).
func BenchmarkFig8Matmul(b *testing.B) { benchReport(b, experiments.Fig8) }

// BenchmarkFig9aPolybench regenerates Fig 9a (kernel overhead vs native).
func BenchmarkFig9aPolybench(b *testing.B) { benchReport(b, experiments.Fig9a) }

// BenchmarkFig9bPython regenerates Fig 9b (dynamic-language overhead).
func BenchmarkFig9bPython(b *testing.B) { benchReport(b, experiments.Fig9b) }

// BenchmarkFig10Churn regenerates Fig 10 (creation latency vs churn).
func BenchmarkFig10Churn(b *testing.B) { benchReport(b, experiments.Fig10) }

// BenchmarkStateScale regenerates the state-tier scaling experiment
// (sharded vs single global store).
func BenchmarkStateScale(b *testing.B) { benchReport(b, experiments.StateScale) }

// BenchmarkInvokeScale regenerates the invocation hot-path experiment
// (parallel warm-call throughput + scheduler global-op accounting).
func BenchmarkInvokeScale(b *testing.B) { benchReport(b, experiments.InvokeScale) }

// BenchmarkElasticity regenerates the elastic-scheduling experiment
// (warm-pool grow-ahead vs static sizing + leased-liveness failover drain).
func BenchmarkElasticity(b *testing.B) { benchReport(b, experiments.Elasticity) }

// BenchmarkLocality regenerates the locality-aware forwarding experiment
// (remote state bytes with the locality weight off vs on, sgd + dmatmul).
func BenchmarkLocality(b *testing.B) { benchReport(b, experiments.Locality) }

// BenchmarkAutoscale regenerates the cluster-autoscaler experiment
// (host count follows a 10x load ramp; safe drains back to the floor).
func BenchmarkAutoscale(b *testing.B) { benchReport(b, experiments.Autoscale) }

// BenchmarkBatchedVsSingleOps demonstrates the batch surface's win through
// the TCP client: one pipelined MGet/MSet/GetRanges exchange against N
// single round trips for the same data.
func BenchmarkBatchedVsSingleOps(b *testing.B) {
	srv, err := kvs.NewServer(kvs.NewEngine(), "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c := kvs.NewClient(srv.Addr())
	defer c.Close()

	const batch = 64
	val := make([]byte, 4096)
	keys := make([]string, batch)
	pairs := make([]kvs.Pair, batch)
	for i := range keys {
		keys[i] = fmt.Sprintf("bk-%d", i)
		pairs[i] = kvs.Pair{Key: keys[i], Val: val}
		if err := c.Set(keys[i], val); err != nil {
			b.Fatal(err)
		}
	}
	ranges := make([]kvs.Range, 16)
	for i := range ranges {
		ranges[i] = kvs.Range{Off: i * 256, N: 128}
	}

	b.Run("single-get-64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, k := range keys {
				if _, err := c.Get(k); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("mget-64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			vals, err := kvs.MGet(c, keys)
			if err != nil || len(vals) != batch {
				b.Fatalf("mget: %d %v", len(vals), err)
			}
		}
	})
	b.Run("single-set-64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, p := range pairs {
				if err := c.Set(p.Key, p.Val); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("mset-64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := kvs.MSet(c, pairs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("single-getrange-16", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, rg := range ranges {
				if _, err := c.GetRange(keys[0], rg.Off, rg.N); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("getranges-16", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := kvs.GetRanges(c, keys[0], ranges); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWarmInvokeThroughput measures the per-host invocation hot path:
// closed-loop warm calls to a no-op function from 1, 4 and 16 goroutines.
// The pool is prewarmed with 2× the goroutine count so warm acquires never
// cold-start; ns/op is then the full per-call runtime overhead (scheduling,
// pool acquire/release, call bookkeeping) and 1e9/ns-op is calls/sec.
func BenchmarkWarmInvokeThroughput(b *testing.B) {
	for _, g := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("goroutines-%d", g), func(b *testing.B) {
			inst := frt.New(frt.Config{Host: "bench", PoolCap: 256})
			defer inst.Shutdown()
			gate := make(chan struct{})
			started := make(chan struct{}, 2*g)
			inst.RegisterNative("noop", func(ctx *core.Ctx) (int32, error) {
				if len(ctx.Input()) > 0 {
					started <- struct{}{}
					<-gate
				}
				return 0, nil
			})
			// Prewarm: hold 2g concurrent calls open so the pool ends up
			// with 2g Faaslets, then let them all finish.
			warm := 2 * g
			var wg sync.WaitGroup
			for k := 0; k < warm; k++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					if _, _, err := inst.Call("noop", []byte("w")); err != nil {
						b.Error(err)
					}
				}()
			}
			for k := 0; k < warm; k++ {
				<-started
			}
			close(gate)
			wg.Wait()
			if b.Failed() {
				return
			}

			b.ResetTimer()
			b.ReportAllocs()
			var next atomic.Int64
			var run sync.WaitGroup
			for k := 0; k < g; k++ {
				run.Add(1)
				go func() {
					defer run.Done()
					for next.Add(1) <= int64(b.N) {
						if _, _, err := inst.Call("noop", nil); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			run.Wait()
		})
	}
}

// BenchmarkShardedVsSingleStore compares raw global-tier throughput under
// concurrent mixed load: the paper's single engine against consistent-hash
// rings of 4 and 8 shards, and a replicated ring.
func BenchmarkShardedVsSingleStore(b *testing.B) {
	stores := []struct {
		name string
		mk   func() kvs.Store
	}{
		{"single-engine", func() kvs.Store { return kvs.NewEngine() }},
		{"4-shards", func() kvs.Store { return shardkvs.NewLocal(4, shardkvs.Options{}) }},
		{"8-shards", func() kvs.Store { return shardkvs.NewLocal(8, shardkvs.Options{}) }},
		{"4-shards-r2", func() kvs.Store {
			return shardkvs.NewLocal(4, shardkvs.Options{Replication: 2})
		}},
	}
	val := make([]byte, 4096)
	for _, sc := range stores {
		b.Run(sc.name, func(b *testing.B) {
			s := sc.mk()
			var seq atomic.Uint64
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := seq.Add(1)
					key := fmt.Sprintf("bench-%d", i%512)
					switch i % 3 {
					case 0:
						if err := s.Set(key, val); err != nil {
							b.Error(err)
							return
						}
					case 1:
						if _, err := s.Get(key); err != nil {
							b.Error(err)
							return
						}
					default:
						if _, err := s.Incr("ctr-"+key, 1); err != nil {
							b.Error(err)
							return
						}
					}
				}
			})
		})
	}
}
