package wavm

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Assemble compiles the wat-like text format into an unvalidated Module.
// This is the untrusted "compilation" phase of the paper's Fig 3 pipeline:
// the output must pass Validate (trusted code generation) before it can be
// linked and executed.
//
// The format is a subset of the WebAssembly text format with flat (unfolded)
// instruction sequences:
//
//	(module
//	  (import "faasm" "read_call_input" (func $read (param i32 i32) (result i32)))
//	  (memory 2 16)
//	  (data (i32.const 1024) "hello\00")
//	  (global $counter (mut i32) (i32.const 0))
//	  (table (elem $f $g))
//	  (func $main (export "main") (param $n i32) (result i32) (local $i i32)
//	    block $exit
//	      local.get $n
//	      i32.eqz
//	      br_if $exit
//	    end
//	    local.get $n
//	  )
//	)
func Assemble(src string) (*Module, error) {
	root, err := parseSexpr(src)
	if err != nil {
		return nil, err
	}
	if len(root) == 1 && root[0].isList() && len(root[0].list) > 0 && root[0].list[0].atom == "module" {
		root = root[0].list[1:]
	}
	a := &assembler{
		mod:     &Module{Start: -1},
		funcIdx: map[string]int{},
		globIdx: map[string]int{},
	}
	return a.assemble(root)
}

// MustAssemble panics on assembly errors; for tests and static modules.
func MustAssemble(src string) *Module {
	m, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return m
}

// AssembleAndValidate runs both pipeline phases.
func AssembleAndValidate(src string) (*Module, error) {
	m, err := Assemble(src)
	if err != nil {
		return nil, err
	}
	if err := Validate(m); err != nil {
		return nil, err
	}
	return m, nil
}

// sexpr is one node of the parsed text: either an atom or a list.
type sexpr struct {
	atom string
	list []sexpr
	// str marks atoms that were written as string literals.
	str bool
	// line is the 1-based source line, for error messages.
	line int
}

func (s sexpr) isList() bool { return s.atom == "" && !s.str }

func (s sexpr) head() string {
	if s.isList() && len(s.list) > 0 {
		return s.list[0].atom
	}
	return ""
}

// parseSexpr tokenises and parses the top-level sequence of s-expressions.
func parseSexpr(src string) ([]sexpr, error) {
	toks, err := tokenize(src)
	if err != nil {
		return nil, err
	}
	var pos int
	var parse func() (sexpr, error)
	parse = func() (sexpr, error) {
		t := toks[pos]
		pos++
		if t.text == "(" {
			node := sexpr{line: t.line}
			for {
				if pos >= len(toks) {
					return sexpr{}, fmt.Errorf("wavm: line %d: unclosed paren", t.line)
				}
				if toks[pos].text == ")" {
					pos++
					return node, nil
				}
				child, err := parse()
				if err != nil {
					return sexpr{}, err
				}
				node.list = append(node.list, child)
			}
		}
		if t.text == ")" {
			return sexpr{}, fmt.Errorf("wavm: line %d: unexpected )", t.line)
		}
		return sexpr{atom: t.text, str: t.str, line: t.line}, nil
	}
	var out []sexpr
	for pos < len(toks) {
		node, err := parse()
		if err != nil {
			return nil, err
		}
		out = append(out, node)
	}
	return out, nil
}

type token struct {
	text string
	str  bool
	line int
}

func tokenize(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == ';' && i+1 < len(src) && src[i+1] == ';':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '(' && i+1 < len(src) && src[i+1] == ';':
			depth := 1
			i += 2
			for i < len(src) && depth > 0 {
				if src[i] == '\n' {
					line++
				}
				if src[i] == '(' && i+1 < len(src) && src[i+1] == ';' {
					depth++
					i++
				} else if src[i] == ';' && i+1 < len(src) && src[i+1] == ')' {
					depth--
					i++
				}
				i++
			}
		case c == '(' || c == ')':
			toks = append(toks, token{text: string(c), line: line})
			i++
		case c == '"':
			s, n, err := parseString(src[i:], line)
			if err != nil {
				return nil, err
			}
			toks = append(toks, token{text: s, str: true, line: line})
			i += n
		default:
			j := i
			for j < len(src) && !strings.ContainsRune(" \t\r\n();\"", rune(src[j])) {
				j++
			}
			toks = append(toks, token{text: src[i:j], line: line})
			i = j
		}
	}
	return toks, nil
}

// parseString decodes a double-quoted literal with wat escapes (\n \t \\ \"
// and two-digit hex \XX), returning the value and bytes consumed.
func parseString(src string, line int) (string, int, error) {
	var b strings.Builder
	i := 1
	for i < len(src) {
		c := src[i]
		switch {
		case c == '"':
			return b.String(), i + 1, nil
		case c == '\\':
			if i+1 >= len(src) {
				return "", 0, fmt.Errorf("wavm: line %d: bad escape", line)
			}
			n := src[i+1]
			switch n {
			case 'n':
				b.WriteByte('\n')
				i += 2
			case 't':
				b.WriteByte('\t')
				i += 2
			case 'r':
				b.WriteByte('\r')
				i += 2
			case '\\':
				b.WriteByte('\\')
				i += 2
			case '"':
				b.WriteByte('"')
				i += 2
			default:
				if i+2 >= len(src) {
					return "", 0, fmt.Errorf("wavm: line %d: bad hex escape", line)
				}
				v, err := strconv.ParseUint(src[i+1:i+3], 16, 8)
				if err != nil {
					return "", 0, fmt.Errorf("wavm: line %d: bad hex escape %q", line, src[i+1:i+3])
				}
				b.WriteByte(byte(v))
				i += 3
			}
		case c == '\n':
			return "", 0, fmt.Errorf("wavm: line %d: newline in string", line)
		default:
			b.WriteByte(c)
			i++
		}
	}
	return "", 0, fmt.Errorf("wavm: line %d: unterminated string", line)
}

// assembler builds a Module from parsed forms.
type assembler struct {
	mod      *Module
	funcIdx  map[string]int // $name → absolute function index
	globIdx  map[string]int
	funcDefs []sexpr // (func ...) forms awaiting body assembly
}

func (a *assembler) assemble(forms []sexpr) (*Module, error) {
	// Pass 1: establish index spaces (imports first, then funcs), globals,
	// memory, table shape.
	var tableForm *sexpr
	for i := range forms {
		f := forms[i]
		switch f.head() {
		case "import":
			if err := a.addImport(f); err != nil {
				return nil, err
			}
		case "func":
			idx := len(a.mod.Imports) + len(a.funcDefs)
			if name := optName(f.list[1:]); name != "" {
				if _, dup := a.funcIdx[name]; dup {
					return nil, fmt.Errorf("wavm: line %d: duplicate function %s", f.line, name)
				}
				a.funcIdx[name] = idx
			}
			a.funcDefs = append(a.funcDefs, f)
		case "memory":
			if err := a.addMemory(f); err != nil {
				return nil, err
			}
		case "global":
			if err := a.addGlobal(f); err != nil {
				return nil, err
			}
		case "table":
			tf := f
			tableForm = &tf
		case "data", "start", "export":
			// handled in pass 2
		default:
			return nil, fmt.Errorf("wavm: line %d: unknown module field %q", f.line, f.head())
		}
	}
	// Imports must precede defined functions in the index space; we enforced
	// that by construction, but the source may interleave them, which is fine.

	// Pass 2: bodies and remaining fields.
	for _, f := range a.funcDefs {
		if err := a.addFunc(f); err != nil {
			return nil, err
		}
	}
	if tableForm != nil {
		if err := a.addTable(*tableForm); err != nil {
			return nil, err
		}
	}
	for _, f := range forms {
		switch f.head() {
		case "data":
			if err := a.addData(f); err != nil {
				return nil, err
			}
		case "start":
			if len(f.list) != 2 {
				return nil, fmt.Errorf("wavm: line %d: start wants one function", f.line)
			}
			idx, err := a.resolveFunc(f.list[1])
			if err != nil {
				return nil, err
			}
			a.mod.Start = idx
		case "export":
			if err := a.addExport(f); err != nil {
				return nil, err
			}
		}
	}
	if a.mod.MemMin == 0 && len(a.mod.Data) > 0 {
		return nil, fmt.Errorf("wavm: data segments without memory")
	}
	return a.mod, nil
}

func optName(items []sexpr) string {
	if len(items) > 0 && !items[0].isList() && strings.HasPrefix(items[0].atom, "$") {
		return items[0].atom
	}
	return ""
}

func (a *assembler) addImport(f sexpr) error {
	// (import "mod" "name" (func $n (param ...) (result ...)))
	if len(f.list) != 4 || !f.list[1].str || !f.list[2].str || f.list[3].head() != "func" {
		return fmt.Errorf("wavm: line %d: malformed import", f.line)
	}
	fn := f.list[3]
	rest := fn.list[1:]
	idx := len(a.mod.Imports)
	if name := optName(rest); name != "" {
		if _, dup := a.funcIdx[name]; dup {
			return fmt.Errorf("wavm: line %d: duplicate function %s", f.line, name)
		}
		a.funcIdx[name] = idx
		rest = rest[1:]
	}
	ft, _, err := parseSignature(rest)
	if err != nil {
		return fmt.Errorf("wavm: line %d: %v", f.line, err)
	}
	if len(a.mod.Funcs) > 0 || len(a.funcDefs) > 0 {
		return fmt.Errorf("wavm: line %d: imports must precede function definitions", f.line)
	}
	a.mod.Imports = append(a.mod.Imports, Import{
		Module: f.list[1].atom,
		Name:   f.list[2].atom,
		Type:   a.mod.typeIndex(ft),
	})
	return nil
}

// parseSignature consumes leading (param ...) and (result ...) clauses,
// returning the type, the parameter names (empty string when unnamed), and
// an error. Remaining clauses are not consumed.
func parseSignature(items []sexpr) (FuncType, []string, error) {
	var ft FuncType
	var names []string
	for _, it := range items {
		switch it.head() {
		case "param":
			args := it.list[1:]
			if len(args) >= 2 && !args[0].isList() && strings.HasPrefix(args[0].atom, "$") {
				vt, err := valueType(args[1].atom)
				if err != nil {
					return ft, nil, err
				}
				ft.Params = append(ft.Params, vt)
				names = append(names, args[0].atom)
				continue
			}
			for _, p := range args {
				vt, err := valueType(p.atom)
				if err != nil {
					return ft, nil, err
				}
				ft.Params = append(ft.Params, vt)
				names = append(names, "")
			}
		case "result":
			for _, r := range it.list[1:] {
				vt, err := valueType(r.atom)
				if err != nil {
					return ft, nil, err
				}
				ft.Results = append(ft.Results, vt)
			}
		default:
			return ft, names, nil
		}
	}
	return ft, names, nil
}

func valueType(s string) (ValueType, error) {
	switch s {
	case "i32":
		return I32, nil
	case "i64":
		return I64, nil
	case "f32":
		return F32, nil
	case "f64":
		return F64, nil
	}
	return 0, fmt.Errorf("unknown value type %q", s)
}

func (a *assembler) addMemory(f sexpr) error {
	// (memory min [max])
	if a.mod.MemMin != 0 {
		return fmt.Errorf("wavm: line %d: duplicate memory", f.line)
	}
	if len(f.list) < 2 || len(f.list) > 3 {
		return fmt.Errorf("wavm: line %d: memory wants (memory min [max])", f.line)
	}
	min, err := strconv.Atoi(f.list[1].atom)
	if err != nil || min < 1 {
		return fmt.Errorf("wavm: line %d: bad memory min %q", f.line, f.list[1].atom)
	}
	a.mod.MemMin = min
	if len(f.list) == 3 {
		max, err := strconv.Atoi(f.list[2].atom)
		if err != nil || max < min {
			return fmt.Errorf("wavm: line %d: bad memory max %q", f.line, f.list[2].atom)
		}
		a.mod.MemMax = max
	}
	return nil
}

func (a *assembler) addGlobal(f sexpr) error {
	// (global $name (mut i32) (i32.const 0)) or (global $name f64 (f64.const 1))
	items := f.list[1:]
	name := optName(items)
	if name != "" {
		items = items[1:]
	}
	if len(items) != 2 {
		return fmt.Errorf("wavm: line %d: malformed global", f.line)
	}
	var g Global
	typeSpec := items[0]
	if typeSpec.head() == "mut" {
		if len(typeSpec.list) != 2 {
			return fmt.Errorf("wavm: line %d: malformed (mut T)", f.line)
		}
		vt, err := valueType(typeSpec.list[1].atom)
		if err != nil {
			return fmt.Errorf("wavm: line %d: %v", f.line, err)
		}
		g.Type = vt
		g.Mutable = true
	} else {
		vt, err := valueType(typeSpec.atom)
		if err != nil {
			return fmt.Errorf("wavm: line %d: %v", f.line, err)
		}
		g.Type = vt
	}
	initForm := items[1]
	if !initForm.isList() || len(initForm.list) != 2 {
		return fmt.Errorf("wavm: line %d: malformed global initialiser", f.line)
	}
	bits, vt, err := constPayload(initForm.list[0].atom, initForm.list[1].atom)
	if err != nil {
		return fmt.Errorf("wavm: line %d: %v", f.line, err)
	}
	if vt != g.Type {
		return fmt.Errorf("wavm: line %d: global initialiser type %s != %s", f.line, vt, g.Type)
	}
	g.Init = bits
	if name != "" {
		if _, dup := a.globIdx[name]; dup {
			return fmt.Errorf("wavm: line %d: duplicate global %s", f.line, name)
		}
		a.globIdx[name] = len(a.mod.Globals)
	}
	a.mod.Globals = append(a.mod.Globals, g)
	return nil
}

// constPayload parses "<t>.const <literal>" into raw payload bits and type.
func constPayload(op, lit string) (int64, ValueType, error) {
	switch op {
	case "i32.const":
		v, err := parseIntLiteral(lit, 32)
		if err != nil {
			return 0, 0, err
		}
		return int64(int32(v)), I32, nil
	case "i64.const":
		v, err := parseIntLiteral(lit, 64)
		if err != nil {
			return 0, 0, err
		}
		return v, I64, nil
	case "f32.const":
		f, err := strconv.ParseFloat(lit, 32)
		if err != nil {
			return 0, 0, fmt.Errorf("bad f32 literal %q", lit)
		}
		return int64(math.Float32bits(float32(f))), F32, nil
	case "f64.const":
		f, err := strconv.ParseFloat(lit, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("bad f64 literal %q", lit)
		}
		return int64(math.Float64bits(f)), F64, nil
	}
	return 0, 0, fmt.Errorf("expected const instruction, got %q", op)
}

// parseIntLiteral accepts decimal and 0x hex, signed or unsigned, within the
// given bit width.
func parseIntLiteral(s string, bits int) (int64, error) {
	if v, err := strconv.ParseInt(s, 0, bits); err == nil {
		return v, nil
	}
	if u, err := strconv.ParseUint(s, 0, bits); err == nil {
		return int64(u), nil // wraps into the signed range
	}
	return 0, fmt.Errorf("bad integer literal %q", s)
}

func (a *assembler) addTable(f sexpr) error {
	// (table (elem $f $g ...)) — single active element segment at offset 0.
	for _, item := range f.list[1:] {
		if item.head() != "elem" {
			continue
		}
		for _, e := range item.list[1:] {
			idx, err := a.resolveFunc(e)
			if err != nil {
				return err
			}
			a.mod.Table = append(a.mod.Table, int32(idx))
		}
	}
	return nil
}

func (a *assembler) addData(f sexpr) error {
	// (data (i32.const off) "bytes" ...)
	items := f.list[1:]
	if len(items) < 2 || items[0].head() != "i32.const" || len(items[0].list) != 2 {
		return fmt.Errorf("wavm: line %d: data wants (data (i32.const off) \"...\")", f.line)
	}
	off, err := parseIntLiteral(items[0].list[1].atom, 32)
	if err != nil {
		return fmt.Errorf("wavm: line %d: %v", f.line, err)
	}
	var b []byte
	for _, s := range items[1:] {
		if !s.str {
			return fmt.Errorf("wavm: line %d: data payload must be strings", f.line)
		}
		b = append(b, s.atom...)
	}
	a.mod.Data = append(a.mod.Data, Data{Offset: uint32(off), Bytes: b})
	return nil
}

func (a *assembler) addExport(f sexpr) error {
	// (export "name" (func $f))
	if len(f.list) != 3 || !f.list[1].str {
		return fmt.Errorf("wavm: line %d: malformed export", f.line)
	}
	target := f.list[2]
	switch target.head() {
	case "func":
		idx, err := a.resolveFunc(target.list[1])
		if err != nil {
			return err
		}
		a.mod.Exports = append(a.mod.Exports, Export{Name: f.list[1].atom, Kind: ExportFunc, Index: idx})
	case "memory":
		a.mod.Exports = append(a.mod.Exports, Export{Name: f.list[1].atom, Kind: ExportMemory})
	default:
		return fmt.Errorf("wavm: line %d: can only export func or memory", f.line)
	}
	return nil
}

func (a *assembler) resolveFunc(s sexpr) (int, error) {
	if strings.HasPrefix(s.atom, "$") {
		idx, ok := a.funcIdx[s.atom]
		if !ok {
			return 0, fmt.Errorf("wavm: line %d: unknown function %s", s.line, s.atom)
		}
		return idx, nil
	}
	idx, err := strconv.Atoi(s.atom)
	if err != nil {
		return 0, fmt.Errorf("wavm: line %d: bad function reference %q", s.line, s.atom)
	}
	return idx, nil
}

func (a *assembler) addFunc(f sexpr) error {
	items := f.list[1:]
	name := optName(items)
	if name != "" {
		items = items[1:]
	}
	// Inline exports.
	var exports []string
	for len(items) > 0 && items[0].head() == "export" {
		if len(items[0].list) != 2 || !items[0].list[1].str {
			return fmt.Errorf("wavm: line %d: malformed inline export", f.line)
		}
		exports = append(exports, items[0].list[1].atom)
		items = items[1:]
	}
	ft, paramNames, err := parseSignature(items)
	if err != nil {
		return fmt.Errorf("wavm: line %d: %v", f.line, err)
	}
	// Skip consumed signature clauses.
	for len(items) > 0 && (items[0].head() == "param" || items[0].head() == "result") {
		items = items[1:]
	}
	fn := Function{Type: a.mod.typeIndex(ft), Name: name}
	localNames := map[string]int{}
	for i, n := range paramNames {
		if n != "" {
			localNames[n] = i
		}
	}
	for len(items) > 0 && items[0].head() == "local" {
		args := items[0].list[1:]
		if len(args) >= 2 && strings.HasPrefix(args[0].atom, "$") {
			vt, err := valueType(args[1].atom)
			if err != nil {
				return fmt.Errorf("wavm: line %d: %v", f.line, err)
			}
			localNames[args[0].atom] = len(ft.Params) + len(fn.Locals)
			fn.Locals = append(fn.Locals, vt)
		} else {
			for _, l := range args {
				vt, err := valueType(l.atom)
				if err != nil {
					return fmt.Errorf("wavm: line %d: %v", f.line, err)
				}
				fn.Locals = append(fn.Locals, vt)
			}
		}
		items = items[1:]
	}
	body := &bodyAssembler{
		asm:        a,
		fn:         &fn,
		localNames: localNames,
	}
	if err := body.assemble(items); err != nil {
		return err
	}
	idx := len(a.mod.Imports) + len(a.mod.Funcs)
	a.mod.Funcs = append(a.mod.Funcs, fn)
	for _, e := range exports {
		a.mod.Exports = append(a.mod.Exports, Export{Name: e, Kind: ExportFunc, Index: idx})
	}
	return nil
}

// bodyAssembler turns a flat token sequence into instructions. Branch
// immediates are label depths at this stage; the validator resolves them to
// absolute PCs.
type bodyAssembler struct {
	asm        *assembler
	fn         *Function
	localNames map[string]int
	labels     []string // innermost last
}

func (b *bodyAssembler) assemble(items []sexpr) error {
	i := 0
	next := func() (sexpr, bool) {
		if i < len(items) {
			s := items[i]
			i++
			return s, true
		}
		return sexpr{}, false
	}
	peek := func() (sexpr, bool) {
		if i < len(items) {
			return items[i], true
		}
		return sexpr{}, false
	}
	emit := func(in Instr) { b.fn.Code = append(b.fn.Code, in) }

	for {
		it, ok := next()
		if !ok {
			break
		}
		if it.isList() {
			return fmt.Errorf("wavm: line %d: folded expressions not supported; use flat instructions", it.line)
		}
		opName := it.atom
		switch opName {
		case "block", "loop", "if":
			label := ""
			if p, ok := peek(); ok && strings.HasPrefix(p.atom, "$") && !p.isList() {
				label = p.atom
				i++
			}
			// Optional (result T) clause; block types are re-derived by the
			// validator, we record arity in B.
			arity := int32(0)
			var resultType ValueType
			if p, ok := peek(); ok && p.head() == "result" {
				if len(p.list) != 2 {
					return fmt.Errorf("wavm: line %d: block result wants one type", p.line)
				}
				vt, err := valueType(p.list[1].atom)
				if err != nil {
					return fmt.Errorf("wavm: line %d: %v", p.line, err)
				}
				resultType = vt
				arity = 1
				i++
			}
			var op Op
			switch opName {
			case "block":
				op = OpBlock
			case "loop":
				op = OpLoop
			case "if":
				op = OpIf
			}
			b.labels = append(b.labels, label)
			emit(Instr{Op: op, B: arity, C: int64(resultType)})
		case "else":
			emit(Instr{Op: OpElse})
		case "end":
			if len(b.labels) == 0 {
				return fmt.Errorf("wavm: line %d: end without block", it.line)
			}
			b.labels = b.labels[:len(b.labels)-1]
			emit(Instr{Op: OpEnd})
		case "br", "br_if":
			t, ok := next()
			if !ok {
				return fmt.Errorf("wavm: line %d: %s wants a label", it.line, opName)
			}
			depth, err := b.labelDepth(t)
			if err != nil {
				return err
			}
			op := OpBr
			if opName == "br_if" {
				op = OpBrIf
			}
			emit(Instr{Op: op, A: depth})
		case "br_table":
			var depths []int32
			for {
				p, ok := peek()
				if !ok || p.isList() || !(strings.HasPrefix(p.atom, "$") || isUint(p.atom)) {
					break
				}
				i++
				d, err := b.labelDepth(p)
				if err != nil {
					return err
				}
				depths = append(depths, d)
			}
			if len(depths) < 1 {
				return fmt.Errorf("wavm: line %d: br_table wants at least a default label", it.line)
			}
			targets := make([]BrTarget, len(depths))
			for j, d := range depths {
				targets[j] = BrTarget{PC: d} // depth for now; validator resolves
			}
			b.fn.BrTables = append(b.fn.BrTables, targets)
			emit(Instr{Op: OpBrTable, A: int32(len(b.fn.BrTables) - 1)})
		case "call":
			t, ok := next()
			if !ok {
				return fmt.Errorf("wavm: line %d: call wants a function", it.line)
			}
			idx, err := b.asm.resolveFunc(t)
			if err != nil {
				return err
			}
			emit(Instr{Op: OpCall, A: int32(idx)})
		case "call_indirect":
			// call_indirect (param ...) (result ...)
			var sigItems []sexpr
			for {
				p, ok := peek()
				if !ok || !(p.head() == "param" || p.head() == "result") {
					break
				}
				sigItems = append(sigItems, p)
				i++
			}
			ft, _, err := parseSignature(sigItems)
			if err != nil {
				return fmt.Errorf("wavm: line %d: %v", it.line, err)
			}
			emit(Instr{Op: OpCallIndirect, A: int32(b.asm.mod.typeIndex(ft))})
		case "local.get", "local.set", "local.tee":
			t, ok := next()
			if !ok {
				return fmt.Errorf("wavm: line %d: %s wants a local", it.line, opName)
			}
			idx, err := b.localIndex(t)
			if err != nil {
				return err
			}
			emit(Instr{Op: opByName[opName], A: idx})
		case "global.get", "global.set":
			t, ok := next()
			if !ok {
				return fmt.Errorf("wavm: line %d: %s wants a global", it.line, opName)
			}
			idx, err := b.globalIndex(t)
			if err != nil {
				return err
			}
			emit(Instr{Op: opByName[opName], A: idx})
		case "i32.const", "i64.const", "f32.const", "f64.const":
			t, ok := next()
			if !ok {
				return fmt.Errorf("wavm: line %d: %s wants a literal", it.line, opName)
			}
			bits, _, err := constPayload(opName, t.atom)
			if err != nil {
				return fmt.Errorf("wavm: line %d: %v", it.line, err)
			}
			emit(Instr{Op: opByName[opName], C: bits})
		default:
			op, ok := opByName[opName]
			if !ok {
				return fmt.Errorf("wavm: line %d: unknown instruction %q", it.line, opName)
			}
			in := Instr{Op: op}
			if isMemoryAccess(op) {
				// Optional offset=N align=N immediates.
				for {
					p, ok := peek()
					if !ok || p.isList() {
						break
					}
					if strings.HasPrefix(p.atom, "offset=") {
						v, err := parseIntLiteral(p.atom[len("offset="):], 32)
						if err != nil {
							return fmt.Errorf("wavm: line %d: %v", p.line, err)
						}
						in.A = int32(v)
						i++
					} else if strings.HasPrefix(p.atom, "align=") {
						i++ // alignment hints are ignored
					} else {
						break
					}
				}
			}
			emit(in)
		}
	}
	if len(b.labels) != 0 {
		return fmt.Errorf("wavm: unbalanced blocks in function %s", b.fn.Name)
	}
	return nil
}

func isUint(s string) bool {
	_, err := strconv.ParseUint(s, 10, 31)
	return err == nil
}

func isMemoryAccess(op Op) bool {
	return op >= OpI32Load && op <= OpI64Store32
}

func (b *bodyAssembler) labelDepth(s sexpr) (int32, error) {
	if strings.HasPrefix(s.atom, "$") {
		for d := 0; d < len(b.labels); d++ {
			if b.labels[len(b.labels)-1-d] == s.atom {
				return int32(d), nil
			}
		}
		return 0, fmt.Errorf("wavm: line %d: unknown label %s", s.line, s.atom)
	}
	v, err := strconv.ParseUint(s.atom, 10, 31)
	if err != nil {
		return 0, fmt.Errorf("wavm: line %d: bad label %q", s.line, s.atom)
	}
	return int32(v), nil
}

func (b *bodyAssembler) localIndex(s sexpr) (int32, error) {
	if strings.HasPrefix(s.atom, "$") {
		idx, ok := b.localNames[s.atom]
		if !ok {
			return 0, fmt.Errorf("wavm: line %d: unknown local %s", s.line, s.atom)
		}
		return int32(idx), nil
	}
	v, err := strconv.ParseUint(s.atom, 10, 31)
	if err != nil {
		return 0, fmt.Errorf("wavm: line %d: bad local index %q", s.line, s.atom)
	}
	return int32(v), nil
}

func (b *bodyAssembler) globalIndex(s sexpr) (int32, error) {
	if strings.HasPrefix(s.atom, "$") {
		idx, ok := b.asm.globIdx[s.atom]
		if !ok {
			return 0, fmt.Errorf("wavm: line %d: unknown global %s", s.line, s.atom)
		}
		return int32(idx), nil
	}
	v, err := strconv.ParseUint(s.atom, 10, 31)
	if err != nil {
		return 0, fmt.Errorf("wavm: line %d: bad global index %q", s.line, s.atom)
	}
	return int32(v), nil
}
