// Package metrics implements the measurement primitives used by the
// evaluation harness: monotonic counters, latency recorders with quantile and
// CDF extraction, and the billable-memory (GB-second) accounting defined in
// §6.1 of the paper.
package metrics

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a concurrency-safe monotonic counter (e.g. bytes transferred).
// It is a single atomic so hot paths (per-call warm-start accounting,
// per-pull byte counts) never serialise on a lock.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n may be negative for corrections).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.v.Store(0) }

// ReservoirCap bounds the raw samples a Latencies retains. Beyond it,
// recording switches to reservoir sampling (Vitter's algorithm R), so
// arbitrarily long experiment runs hold a fixed ~512 KiB of samples while
// count, mean and max stay exact and quantiles stay uniformly representative.
const ReservoirCap = 65536

// Latencies records latency samples and answers distribution queries. Memory
// is bounded at ReservoirCap samples; see its comment for what stays exact.
type Latencies struct {
	mu      sync.Mutex
	samples []time.Duration
	sorted  bool
	seen    int64         // total samples ever recorded
	sum     time.Duration // exact running sum
	max     time.Duration // exact running max
	rng     *rand.Rand
}

// Record appends one sample, evicting a uniformly random earlier sample once
// the reservoir is full.
func (l *Latencies) Record(d time.Duration) {
	l.mu.Lock()
	l.seen++
	l.sum += d
	if d > l.max {
		l.max = d
	}
	if len(l.samples) < ReservoirCap {
		l.samples = append(l.samples, d)
		l.sorted = false
	} else {
		if l.rng == nil {
			// Seeded deterministically: reservoir contents (and therefore
			// quantile estimates) are reproducible across runs.
			l.rng = rand.New(rand.NewSource(1))
		}
		if j := l.rng.Int63n(l.seen); j < ReservoirCap {
			l.samples[j] = d
			l.sorted = false
		}
	}
	l.mu.Unlock()
}

// Count returns the number of recorded samples (exact, not the retained
// reservoir size).
func (l *Latencies) Count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int(l.seen)
}

func (l *Latencies) sortLocked() {
	if !l.sorted {
		sort.Slice(l.samples, func(i, j int) bool { return l.samples[i] < l.samples[j] })
		l.sorted = true
	}
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) using nearest-rank, or 0 if
// no samples were recorded.
func (l *Latencies) Quantile(q float64) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.samples) == 0 {
		return 0
	}
	l.sortLocked()
	if q <= 0 {
		return l.samples[0]
	}
	if q >= 1 {
		return l.max
	}
	idx := int(math.Ceil(q*float64(len(l.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(l.samples) {
		idx = len(l.samples) - 1
	}
	return l.samples[idx]
}

// Median returns the 50th percentile.
func (l *Latencies) Median() time.Duration { return l.Quantile(0.5) }

// Mean returns the exact arithmetic mean over every recorded sample, or 0
// with no samples.
func (l *Latencies) Mean() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.seen == 0 {
		return 0
	}
	return l.sum / time.Duration(l.seen)
}

// Max returns the largest sample ever recorded (exact).
func (l *Latencies) Max() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.max
}

// FractionBelow returns the fraction of samples strictly below d.
func (l *Latencies) FractionBelow(d time.Duration) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.samples) == 0 {
		return 0
	}
	l.sortLocked()
	i := sort.Search(len(l.samples), func(i int) bool { return l.samples[i] >= d })
	return float64(i) / float64(len(l.samples))
}

// CDF returns (latency, cumulative fraction) pairs at n evenly spaced ranks,
// suitable for plotting Fig 7b-style curves.
func (l *Latencies) CDF(n int) []CDFPoint {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.samples) == 0 || n <= 0 {
		return nil
	}
	l.sortLocked()
	pts := make([]CDFPoint, 0, n)
	for i := 1; i <= n; i++ {
		frac := float64(i) / float64(n)
		idx := int(math.Ceil(frac*float64(len(l.samples)))) - 1
		if idx < 0 {
			idx = 0
		}
		pts = append(pts, CDFPoint{Latency: l.samples[idx], Fraction: frac})
	}
	return pts
}

// CDFPoint is one point of a latency CDF.
type CDFPoint struct {
	Latency  time.Duration
	Fraction float64
}

// BillableMemory accumulates GB-seconds: the product of each instance's peak
// memory footprint and its runtime, as billed by serverless platforms (§6.1).
type BillableMemory struct {
	mu        sync.Mutex
	gbSeconds float64
}

// Charge adds one instance execution: peakBytes held for dur.
func (b *BillableMemory) Charge(peakBytes int64, dur time.Duration) {
	gb := float64(peakBytes) / 1e9
	b.mu.Lock()
	b.gbSeconds += gb * dur.Seconds()
	b.mu.Unlock()
}

// GBSeconds returns the accumulated billable memory.
func (b *BillableMemory) GBSeconds() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.gbSeconds
}

// Reset zeroes the accumulator.
func (b *BillableMemory) Reset() {
	b.mu.Lock()
	b.gbSeconds = 0
	b.mu.Unlock()
}

// HumanBytes renders a byte count with binary-ish units matching the paper's
// presentation (KB/MB/GB at powers of 1000, as cloud billing does).
func HumanBytes(n int64) string {
	switch {
	case n >= 1e9:
		return fmt.Sprintf("%.1f GB", float64(n)/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.1f MB", float64(n)/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.1f KB", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d B", n)
	}
}
