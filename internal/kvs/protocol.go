package kvs

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"faasm.dev/faasm/internal/metrics"
)

// The wire protocol is a line-oriented request/response exchange. Keys and
// members travel quoted (strconv.Quote) so they may contain any bytes;
// binary payloads follow a declared length:
//
//	request:  CMD "key" args... [payloadLen]\n [payload bytes]
//	response: OK | NIL | INT n | ERR msg | VAL n\n<bytes> | MULTI n\n"m1"\n...
//
// It deliberately mirrors the shape of RESP (the paper's global tier is
// Redis) while staying trivially parseable.
//
// Batch commands move a whole group in one exchange: MGET "k"... replies
// MULTI n followed by one VAL/NIL per key; GETRANGES "key" off n [off n]...
// replies MULTI n with one VAL/NIL per window; MSET n is followed by n
// entries of the form "key" len\n<payload> and replies a single OK. The
// client pipelines them — requests written, one flush, replies read — so a
// batch costs one network round trip per command window of up to MaxBatch
// entries (MSET windows additionally travel in a single flush), instead of
// one round trip per key.
//
// Key expiry is a tier-side primitive, mirroring Redis SETEX: the server's
// engine judges expiry on its own clock, so clients never compare stored
// deadlines against their clocks. SETEX "key" ttlMS len\n<payload> writes a
// value that the tier hides once ttlMS milliseconds elapse; TTL "key"
// replies INT remainingMS (-1 persistent, -2 missing); PERSIST "key" clears
// an expiry (INT 0|1); MSETEX n ttlMS is MSET with one shared TTL.

// MaxPayload bounds a single declared payload length. A malicious or corrupt
// length field must not make the server allocate unbounded memory or block
// reading bytes that will never arrive; oversized declarations get an ERR
// and the connection is dropped.
const MaxPayload = 64 << 20

// MaxBatch bounds the entries in one batch command, for the same reason
// MaxPayload bounds one payload: a declared batch size must not make the
// server hold unbounded buffered writes. Clients split larger batches into
// several commands within one pipelined exchange.
const MaxBatch = 1024

// maxLine bounds one request line (command, quoted keys, numeric args).
const maxLine = 64 * 1024

// Server serves an Engine over TCP.
type Server struct {
	engine *Engine
	ln     net.Listener
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	done   chan struct{}
}

// NewServer starts a server on addr (e.g. "127.0.0.1:0") backed by engine.
func NewServer(engine *Engine, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("kvs: listen %s: %w", addr, err)
	}
	s := &Server{engine: engine, ln: ln, conns: map[net.Conn]struct{}{}, done: make(chan struct{})}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and closes all connections.
func (s *Server) Close() error {
	close(s.done)
	err := s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	return err
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				continue
			}
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.serve(conn)
	}
}

func (s *Server) serve(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	r := bufio.NewReaderSize(conn, maxLine)
	w := bufio.NewWriterSize(conn, 64*1024)
	for {
		// ReadSlice caps the line at the buffer size, so an endless
		// newline-free stream cannot grow server memory.
		raw, err := r.ReadSlice('\n')
		if err != nil {
			if errors.Is(err, bufio.ErrBufferFull) {
				fmt.Fprintf(w, "ERR request line too long\n")
				w.Flush()
			}
			return
		}
		line := strings.TrimSuffix(string(raw), "\n")
		if err := s.dispatch(line, r, w); err != nil {
			// Protocol-fatal: surface the reason if we still can, then drop
			// the connection rather than resynchronise mid-payload.
			fmt.Fprintf(w, "ERR %s\n", strings.ReplaceAll(err.Error(), "\n", " "))
			w.Flush()
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// dispatch handles one request line; returns an error only for connection-
// fatal conditions.
func (s *Server) dispatch(line string, r *bufio.Reader, w *bufio.Writer) error {
	fields, err := splitFields(line)
	if err != nil || len(fields) == 0 {
		fmt.Fprintf(w, "ERR bad request\n")
		return nil
	}
	reply := func(format string, args ...interface{}) { fmt.Fprintf(w, format, args...) }
	errReply := func(err error) { reply("ERR %s\n", strings.ReplaceAll(err.Error(), "\n", " ")) }

	readPayload := func(lenField string) ([]byte, error) {
		n, err := strconv.Atoi(lenField)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad payload length %q", lenField)
		}
		if n > MaxPayload {
			return nil, fmt.Errorf("payload length %d exceeds limit %d", n, MaxPayload)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		return buf, nil
	}

	// readPairs consumes n MSET/MSETEX entries ("key" len\n<payload>),
	// enforcing the aggregate payload bound — the batch buffers before
	// applying, so the total, not just each entry, must respect it.
	readPairs := func(n int) ([]Pair, error) {
		pairs := make([]Pair, 0, n)
		var total int
		for i := 0; i < n; i++ {
			line, err := readLine(r)
			if err != nil {
				return nil, err
			}
			sub, err := splitFields(line)
			if err != nil || len(sub) != 2 {
				return nil, fmt.Errorf("bad batch entry %q", line)
			}
			payload, err := readPayload(sub[1])
			if err != nil {
				return nil, err
			}
			if total += len(payload); total > MaxPayload {
				return nil, fmt.Errorf("batch payload total exceeds limit %d", MaxPayload)
			}
			pairs = append(pairs, Pair{Key: sub[0], Val: payload})
		}
		return pairs, nil
	}

	// writeVals emits one VAL/NIL reply per entry (batch replies).
	writeVals := func(vals [][]byte) {
		reply("MULTI %d\n", len(vals))
		for _, v := range vals {
			if v == nil {
				reply("NIL\n")
			} else {
				reply("VAL %d\n", len(v))
				w.Write(v)
			}
		}
	}

	cmd := fields[0]
	switch {
	case cmd == "PING":
		reply("OK\n")
	case cmd == "MGET" && len(fields) >= 2:
		if len(fields)-1 > MaxBatch {
			return fmt.Errorf("batch size %d exceeds limit %d", len(fields)-1, MaxBatch)
		}
		vals, err := s.engine.MGet(fields[1:])
		if err != nil {
			errReply(err)
			return nil
		}
		writeVals(vals)
	case cmd == "MSET" && len(fields) == 2:
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 0 {
			return fmt.Errorf("bad batch size %q", fields[1])
		}
		if n > MaxBatch {
			return fmt.Errorf("batch size %d exceeds limit %d", n, MaxBatch)
		}
		pairs, err := readPairs(n)
		if err != nil {
			return err
		}
		if err := s.engine.MSet(pairs); err != nil {
			errReply(err)
		} else {
			reply("OK\n")
		}
	case cmd == "MSETEX" && len(fields) == 3:
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 0 {
			return fmt.Errorf("bad batch size %q", fields[1])
		}
		if n > MaxBatch {
			return fmt.Errorf("batch size %d exceeds limit %d", n, MaxBatch)
		}
		// A bad TTL is connection-fatal: the n entries are already in
		// flight and resynchronising mid-payload is impossible.
		ttl, err := parseTTLMillis(fields[2])
		if err != nil {
			return err
		}
		pairs, err := readPairs(n)
		if err != nil {
			return err
		}
		if err := s.engine.MSetEx(pairs, ttl); err != nil {
			errReply(err)
		} else {
			reply("OK\n")
		}
	case cmd == "GETRANGES" && len(fields) >= 4 && len(fields)%2 == 0:
		k := (len(fields) - 2) / 2
		if k > MaxBatch {
			return fmt.Errorf("batch size %d exceeds limit %d", k, MaxBatch)
		}
		ranges := make([]Range, k)
		for i := 0; i < k; i++ {
			off, err1 := strconv.Atoi(fields[2+2*i])
			n, err2 := strconv.Atoi(fields[3+2*i])
			if err1 != nil || err2 != nil {
				reply("ERR bad range\n")
				return nil
			}
			ranges[i] = Range{Off: off, N: n}
		}
		vals, err := s.engine.GetRanges(fields[1], ranges)
		if err != nil {
			errReply(err)
			return nil
		}
		writeVals(vals)
	case cmd == "GET" && len(fields) == 2:
		v, err := s.engine.Get(fields[1])
		if err != nil {
			errReply(err)
			return nil
		}
		if v == nil {
			reply("NIL\n")
		} else {
			reply("VAL %d\n", len(v))
			w.Write(v)
		}
	case cmd == "SET" && len(fields) == 3:
		payload, err := readPayload(fields[2])
		if err != nil {
			return err
		}
		if err := s.engine.Set(fields[1], payload); err != nil {
			errReply(err)
		} else {
			reply("OK\n")
		}
	case cmd == "SETEX" && len(fields) == 4:
		// A bad TTL is connection-fatal like a bad payload length: the
		// payload is already in flight and cannot be resynchronised past.
		ttl, err := parseTTLMillis(fields[2])
		if err != nil {
			return err
		}
		payload, err := readPayload(fields[3])
		if err != nil {
			return err
		}
		if err := s.engine.SetEx(fields[1], payload, ttl); err != nil {
			errReply(err)
		} else {
			reply("OK\n")
		}
	case cmd == "TTL" && len(fields) == 2:
		d, err := s.engine.TTL(fields[1])
		if err != nil {
			errReply(err)
			return nil
		}
		var ms int64
		switch d {
		case TTLPersistent:
			ms = -1
		case TTLMissing:
			ms = -2
		default:
			// Round up so a live key never reports 0 (which would be
			// indistinguishable from "expiring this instant"). Divide
			// before rounding: adding first would overflow for a maximal
			// TTL and report a ~292-year lease as 1ms.
			ms = int64(d / time.Millisecond)
			if d%time.Millisecond != 0 {
				ms++
			}
			if ms <= 0 {
				ms = 1
			}
		}
		reply("INT %d\n", ms)
	case cmd == "PERSIST" && len(fields) == 2:
		removed, err := s.engine.Persist(fields[1])
		if err != nil {
			errReply(err)
		} else {
			reply("INT %d\n", boolInt(removed))
		}
	case cmd == "GETRANGE" && len(fields) == 4:
		off, err1 := strconv.Atoi(fields[2])
		n, err2 := strconv.Atoi(fields[3])
		if err1 != nil || err2 != nil {
			reply("ERR bad range\n")
			return nil
		}
		v, err := s.engine.GetRange(fields[1], off, n)
		if err != nil {
			errReply(err)
			return nil
		}
		if v == nil {
			reply("NIL\n")
		} else {
			reply("VAL %d\n", len(v))
			w.Write(v)
		}
	case cmd == "SETRANGE" && len(fields) == 4:
		off, err1 := strconv.Atoi(fields[2])
		if err1 != nil {
			reply("ERR bad offset\n")
			return nil
		}
		payload, err := readPayload(fields[3])
		if err != nil {
			return err
		}
		if err := s.engine.SetRange(fields[1], off, payload); err != nil {
			errReply(err)
		} else {
			reply("OK\n")
		}
	case cmd == "APPEND" && len(fields) == 3:
		payload, err := readPayload(fields[2])
		if err != nil {
			return err
		}
		n, err := s.engine.Append(fields[1], payload)
		if err != nil {
			errReply(err)
		} else {
			reply("INT %d\n", n)
		}
	case cmd == "LEN" && len(fields) == 2:
		n, err := s.engine.Len(fields[1])
		if err != nil {
			errReply(err)
		} else {
			reply("INT %d\n", n)
		}
	case cmd == "DEL" && len(fields) == 2:
		if err := s.engine.Delete(fields[1]); err != nil {
			errReply(err)
		} else {
			reply("OK\n")
		}
	case cmd == "SADD" && len(fields) == 3:
		added, err := s.engine.SAdd(fields[1], fields[2])
		if err != nil {
			errReply(err)
		} else {
			reply("INT %d\n", boolInt(added))
		}
	case cmd == "SREM" && len(fields) == 3:
		removed, err := s.engine.SRem(fields[1], fields[2])
		if err != nil {
			errReply(err)
		} else {
			reply("INT %d\n", boolInt(removed))
		}
	case cmd == "SMEMBERS" && len(fields) == 2:
		members, err := s.engine.SMembers(fields[1])
		if err != nil {
			errReply(err)
			return nil
		}
		reply("MULTI %d\n", len(members))
		for _, m := range members {
			reply("%s\n", strconv.Quote(m))
		}
	case cmd == "INCR" && len(fields) == 3:
		delta, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			reply("ERR bad delta\n")
			return nil
		}
		v, err := s.engine.Incr(fields[1], delta)
		if err != nil {
			errReply(err)
		} else {
			reply("INT %d\n", v)
		}
	case cmd == "LOCK" && len(fields) == 4:
		write := fields[2] == "w"
		ttlMS, err := strconv.Atoi(fields[3])
		if err != nil {
			reply("ERR bad ttl\n")
			return nil
		}
		// Blocking acquire: the paper's global locks block the caller. We
		// must flush nothing until acquired; each connection carries one
		// outstanding request, so blocking here is safe.
		tok, err := s.engine.Lock(fields[1], write, time.Duration(ttlMS)*time.Millisecond)
		if err != nil {
			errReply(err)
		} else {
			reply("INT %d\n", tok)
		}
	case cmd == "KEYS" && len(fields) == 1:
		infos, err := s.engine.AllKeys()
		if err != nil {
			errReply(err)
			return nil
		}
		reply("MULTI %d\n", len(infos))
		for _, ki := range infos {
			reply("%s\n", strconv.Quote(string(ki.Kind)+":"+ki.Key))
		}
	case cmd == "UNLOCK" && len(fields) == 3:
		tok, err := strconv.ParseUint(fields[2], 10, 64)
		if err != nil {
			reply("ERR bad token\n")
			return nil
		}
		if err := s.engine.Unlock(fields[1], tok); err != nil {
			errReply(err)
		} else {
			reply("OK\n")
		}
	default:
		reply("ERR unknown command %q\n", cmd)
	}
	return nil
}

// readLine reads one protocol line mid-request (MSET entry headers), capped
// at the reader's buffer size like the top-level request line.
func readLine(r *bufio.Reader) (string, error) {
	raw, err := r.ReadSlice('\n')
	if err != nil {
		if errors.Is(err, bufio.ErrBufferFull) {
			return "", errors.New("request line too long")
		}
		return "", err
	}
	return strings.TrimSuffix(string(raw), "\n"), nil
}

// maxTTLMillis bounds a wire TTL so converting it to a time.Duration cannot
// overflow into a negative (already-expired, or worse, never-expiring)
// deadline.
const maxTTLMillis = math.MaxInt64 / int64(time.Millisecond)

// parseTTLMillis validates a TTL field: it must be a positive millisecond
// count small enough to survive the Duration conversion. Zero, negative,
// overflowing and non-numeric TTLs are all rejected — an unbounded or
// wrapped TTL would silently turn a lease into a permanent record.
func parseTTLMillis(field string) (time.Duration, error) {
	ms, err := strconv.ParseInt(field, 10, 64)
	if err != nil || ms <= 0 || ms > maxTTLMillis {
		return 0, fmt.Errorf("bad ttl %q", field)
	}
	return time.Duration(ms) * time.Millisecond, nil
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// splitFields splits a request line into fields, unquoting quoted ones.
func splitFields(line string) ([]string, error) {
	var out []string
	i := 0
	for i < len(line) {
		for i < len(line) && line[i] == ' ' {
			i++
		}
		if i >= len(line) {
			break
		}
		if line[i] == '"' {
			// Find the closing quote, honouring escapes.
			j := i + 1
			for j < len(line) {
				if line[j] == '\\' {
					j += 2
					continue
				}
				if line[j] == '"' {
					break
				}
				j++
			}
			if j >= len(line) {
				return nil, errors.New("unterminated quote")
			}
			s, err := strconv.Unquote(line[i : j+1])
			if err != nil {
				return nil, err
			}
			out = append(out, s)
			i = j + 1
		} else {
			j := i
			for j < len(line) && line[j] != ' ' {
				j++
			}
			out = append(out, line[i:j])
			i = j
		}
	}
	return out, nil
}

// RetryPolicy bounds the client's reconnect-and-retry loop. Zero values take
// the field defaults, so a zero RetryPolicy is the default policy, not "no
// retries" — set Max to a negative value to disable retries outright.
type RetryPolicy struct {
	// Max is the retry attempts after the first try (default 2; negative
	// disables retries). Only connect/timeout-class failures (IsUnavailable)
	// are ever retried, and never after the first reply byte has arrived.
	Max int
	// Base is the backoff before the first retry (default 20ms). Each
	// further retry doubles it, capped at Cap (default 1s), with ±50% jitter
	// so a thundering herd of clients does not re-dial in lockstep.
	Base time.Duration
	Cap  time.Duration
}

func (p RetryPolicy) max() int {
	if p.Max < 0 {
		return 0
	}
	if p.Max == 0 {
		return 2
	}
	return p.Max
}

// sleep blocks for the backoff preceding retry attempt (1-based).
func (p RetryPolicy) sleep(attempt int) {
	base := p.Base
	if base <= 0 {
		base = 20 * time.Millisecond
	}
	ceil := p.Cap
	if ceil <= 0 {
		ceil = time.Second
	}
	d := base
	for i := 1; i < attempt && d < ceil; i++ {
		d *= 2
	}
	if d > ceil {
		d = ceil
	}
	// Jitter in [d/2, 3d/2): decorrelates clients without ever collapsing
	// the delay to zero.
	d = d/2 + time.Duration(rand.Int63n(int64(d)+1))
	time.Sleep(d)
}

// Client is a TCP Store client with a small connection pool, so blocking
// LOCK calls do not stall unrelated operations. It counts transferred bytes
// for the network-transfer experiments (Figs 6b, 8b).
//
// DialTimeout, OpTimeout and Retry tune the failure behaviour; set them
// before the client is shared between goroutines (they are read without
// synchronisation once traffic starts).
type Client struct {
	addr string
	pool chan *clientConn
	max  int

	// DialTimeout bounds one connection attempt (0 = 5s).
	DialTimeout time.Duration
	// OpTimeout, when set, bounds each request/reply exchange except LOCK —
	// a lease acquire legitimately blocks server-side until the holder
	// releases, so deadlining it would break mutual exclusion under
	// contention. 0 (the default) leaves exchanges unbounded.
	OpTimeout time.Duration
	// Retry governs redial-and-retry on unavailability; see RetryPolicy.
	Retry RetryPolicy

	Sent     metrics.Counter
	Received metrics.Counter
}

type clientConn struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// NewClient returns a client for the server at addr with the default
// timeouts and retry policy.
func NewClient(addr string) *Client {
	const poolSize = 8
	return &Client{addr: addr, pool: make(chan *clientConn, poolSize), max: poolSize}
}

func (c *Client) dial() (*clientConn, error) {
	timeout := c.DialTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", c.addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("kvs: dial %s: %w", c.addr, err)
	}
	return &clientConn{
		conn: conn,
		r:    bufio.NewReaderSize(conn, 64*1024),
		w:    bufio.NewWriterSize(conn, 64*1024),
	}, nil
}

// getConn returns a connection and whether it came from the pool. Pooled
// connections may have been closed server-side while idle; callers retry
// those once (see pipelined).
func (c *Client) getConn() (*clientConn, bool, error) {
	select {
	case cc := <-c.pool:
		return cc, true, nil
	default:
	}
	cc, err := c.dial()
	return cc, false, err
}

func (c *Client) putConn(cc *clientConn) {
	select {
	case c.pool <- cc:
	default:
		cc.conn.Close()
	}
}

// Close drains and closes pooled connections.
func (c *Client) Close() error {
	for {
		select {
		case cc := <-c.pool:
			cc.conn.Close()
		default:
			return nil
		}
	}
}

// pipelined runs one request/reply exchange: send writes the entire —
// possibly multi-request — batch, then after a single flush recv parses the
// entire reply stream. reqBytes is the request size for transfer accounting
// (counted once per logical exchange, on success).
func (c *Client) pipelined(reqBytes int, retriable bool, send func(w *bufio.Writer) error, recv func(r *bufio.Reader) error) error {
	return c.exchange(reqBytes, retriable, true, send, recv)
}

// exchange is the client's failure-handling core. Three failure classes,
// three policies:
//
//   - Dial failures: nothing was sent, so a retry can never double-apply —
//     every command (including the non-retriable ones) redials with Retry's
//     bounded exponential backoff. This is what rides out a shard restart.
//   - Pre-reply failures on a pooled connection: the conn was probably
//     closed server-side while idle; retriable commands replay immediately
//     on a fresh conn without consuming a backoff attempt (bounded by the
//     pool size). There is a narrow race where the server executed the
//     request and died before flushing the reply; replaying is harmless for
//     value reads/writes (same bytes land again) but would double-apply
//     INCR and APPEND and leak a LOCK lease, so those commands pass
//     retriable=false and surface the error.
//   - Pre-reply failures on a fresh connection (send error, op deadline,
//     peer death): retriable commands back off and retry while the failure
//     classifies as unavailability; semantic errors surface immediately.
//
// Failures after the first reply byte never retry, regardless of policy:
// the reply is underway and the stream position is unrecoverable. useDeadline
// is false only for LOCK, which legitimately blocks server-side.
func (c *Client) exchange(reqBytes int, retriable, useDeadline bool, send func(w *bufio.Writer) error, recv func(r *bufio.Reader) error) error {
	attempt := func(cc *clientConn) (err error, started bool) {
		if useDeadline && c.OpTimeout > 0 {
			cc.conn.SetDeadline(time.Now().Add(c.OpTimeout))
		}
		if err := send(cc.w); err != nil {
			return err, false
		}
		if err := cc.w.Flush(); err != nil {
			return err, false
		}
		// Peek blocks until the first reply byte (or the conn's death)
		// without consuming it, separating "stale conn, safe to retry"
		// from "reply underway, must not replay".
		if _, err := cc.r.Peek(1); err != nil {
			return err, false
		}
		return recv(cc.r), true
	}
	maxRetries := c.Retry.max()
	retries, staleReplays := 0, 0
	var lastErr error
	for {
		cc, fromPool, err := c.getConn()
		if err != nil {
			lastErr = err
			if retries >= maxRetries {
				return lastErr
			}
			retries++
			c.Retry.sleep(retries)
			continue
		}
		err, started := attempt(cc)
		if err == nil {
			if useDeadline && c.OpTimeout > 0 {
				cc.conn.SetDeadline(time.Time{})
			}
			c.Sent.Add(int64(reqBytes))
			c.putConn(cc)
			return nil
		}
		cc.conn.Close()
		lastErr = err
		if started || !retriable {
			return err
		}
		if fromPool && staleReplays < c.max {
			staleReplays++
			continue
		}
		if !IsUnavailable(err) || retries >= maxRetries {
			return err
		}
		retries++
		c.Retry.sleep(retries)
	}
}

// roundTrip sends one request and parses the status line. Payload handling
// is done by the caller via the passed reader.
func (c *Client) roundTrip(req string, payload []byte, handle func(status string, r *bufio.Reader) error) error {
	return c.roundTripRetry(req, payload, true, handle)
}

// roundTripOnce is roundTrip without the stale-conn replay, for commands
// whose effect must not be applied twice (INCR, APPEND, LOCK).
func (c *Client) roundTripOnce(req string, payload []byte, handle func(status string, r *bufio.Reader) error) error {
	return c.roundTripRetry(req, payload, false, handle)
}

func (c *Client) roundTripRetry(req string, payload []byte, retriable bool, handle func(status string, r *bufio.Reader) error) error {
	return c.roundTripDeadline(req, payload, retriable, true, handle)
}

func (c *Client) roundTripDeadline(req string, payload []byte, retriable, useDeadline bool, handle func(status string, r *bufio.Reader) error) error {
	return c.exchange(len(req)+len(payload), retriable, useDeadline,
		func(w *bufio.Writer) error {
			if _, err := w.WriteString(req); err != nil {
				return err
			}
			_, err := w.Write(payload)
			return err
		},
		func(r *bufio.Reader) error {
			status, err := r.ReadString('\n')
			if err != nil {
				return err
			}
			c.Received.Add(int64(len(status)))
			return handle(strings.TrimSuffix(status, "\n"), r)
		})
}

func parseIntReply(status string) (int64, error) {
	if !strings.HasPrefix(status, "INT ") {
		return 0, replyError(status)
	}
	return strconv.ParseInt(status[4:], 10, 64)
}

func replyError(status string) error {
	if strings.HasPrefix(status, "ERR ") {
		return fmt.Errorf("kvs: server: %s", status[4:])
	}
	return fmt.Errorf("kvs: unexpected reply %q", status)
}

func (c *Client) readVal(status string, r *bufio.Reader) ([]byte, error) {
	if status == "NIL" {
		return nil, nil
	}
	if !strings.HasPrefix(status, "VAL ") {
		return nil, replyError(status)
	}
	n, err := strconv.Atoi(status[4:])
	if err != nil || n < 0 {
		return nil, fmt.Errorf("kvs: bad VAL length %q", status)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	c.Received.Add(int64(n))
	return buf, nil
}

// Get implements Store.
func (c *Client) Get(key string) ([]byte, error) {
	var out []byte
	err := c.roundTrip(fmt.Sprintf("GET %s\n", strconv.Quote(key)), nil, func(status string, r *bufio.Reader) error {
		v, err := c.readVal(status, r)
		out = v
		return err
	})
	return out, err
}

// Set implements Store.
func (c *Client) Set(key string, val []byte) error {
	return c.roundTrip(fmt.Sprintf("SET %s %d\n", strconv.Quote(key), len(val)), val, expectOK)
}

func expectOK(status string, _ *bufio.Reader) error {
	if status != "OK" {
		return replyError(status)
	}
	return nil
}

// ttlMillis renders a TTL for the wire: client-side validation mirrors the
// server's, and sub-millisecond TTLs round up to the wire's granularity
// rather than down to an instantly-rejected zero.
func ttlMillis(ttl time.Duration) (int64, error) {
	if ttl <= 0 {
		return 0, fmt.Errorf("kvs: ttl must be positive, got %v", ttl)
	}
	ms := ttl.Milliseconds()
	if ms == 0 {
		ms = 1
	}
	return ms, nil
}

// SetEx implements Store. Safe to replay on a stale pooled conn: a second
// application writes the same bytes and re-arms an equivalent lease.
func (c *Client) SetEx(key string, val []byte, ttl time.Duration) error {
	ms, err := ttlMillis(ttl)
	if err != nil {
		return err
	}
	return c.roundTrip(fmt.Sprintf("SETEX %s %d %d\n", strconv.Quote(key), ms, len(val)), val, expectOK)
}

// TTL implements Store.
func (c *Client) TTL(key string) (time.Duration, error) {
	var out time.Duration
	err := c.roundTrip(fmt.Sprintf("TTL %s\n", strconv.Quote(key)), nil,
		func(status string, _ *bufio.Reader) error {
			n, err := parseIntReply(status)
			if err != nil {
				return err
			}
			switch {
			case n == -1:
				out = TTLPersistent
			case n == -2:
				out = TTLMissing
			case n > 0:
				out = time.Duration(n) * time.Millisecond
			default:
				return fmt.Errorf("kvs: bad TTL reply %d", n)
			}
			return nil
		})
	return out, err
}

// Persist implements Store. No stale-conn replay, mirroring SAdd: a replay
// of an applied PERSIST would report removed=false for a call that in fact
// cancelled the expiry.
func (c *Client) Persist(key string) (bool, error) {
	var out bool
	err := c.roundTripOnce(fmt.Sprintf("PERSIST %s\n", strconv.Quote(key)), nil,
		func(status string, _ *bufio.Reader) error {
			n, err := parseIntReply(status)
			out = n == 1
			return err
		})
	return out, err
}

// GetRange implements Store.
func (c *Client) GetRange(key string, off, n int) ([]byte, error) {
	var out []byte
	err := c.roundTrip(fmt.Sprintf("GETRANGE %s %d %d\n", strconv.Quote(key), off, n), nil,
		func(status string, r *bufio.Reader) error {
			v, err := c.readVal(status, r)
			out = v
			return err
		})
	return out, err
}

// SetRange implements Store.
func (c *Client) SetRange(key string, off int, val []byte) error {
	return c.roundTrip(fmt.Sprintf("SETRANGE %s %d %d\n", strconv.Quote(key), off, len(val)), val, expectOK)
}

// Append implements Store. Appends must not replay on a stale pooled conn —
// a double-applied append corrupts the value.
func (c *Client) Append(key string, val []byte) (int, error) {
	var out int
	err := c.roundTripOnce(fmt.Sprintf("APPEND %s %d\n", strconv.Quote(key), len(val)), val,
		func(status string, _ *bufio.Reader) error {
			n, err := parseIntReply(status)
			out = int(n)
			return err
		})
	return out, err
}

// Len implements Store.
func (c *Client) Len(key string) (int, error) {
	var out int
	err := c.roundTrip(fmt.Sprintf("LEN %s\n", strconv.Quote(key)), nil,
		func(status string, _ *bufio.Reader) error {
			n, err := parseIntReply(status)
			out = int(n)
			return err
		})
	return out, err
}

// Delete implements Store.
func (c *Client) Delete(key string) error {
	return c.roundTrip(fmt.Sprintf("DEL %s\n", strconv.Quote(key)), nil, expectOK)
}

// SAdd implements Store. No stale-conn replay: replaying is harmless to set
// state, but a replay of an applied SADD reports added=false for a call
// that in fact added the member, breaking first-to-add callers.
func (c *Client) SAdd(key, member string) (bool, error) {
	var out bool
	err := c.roundTripOnce(fmt.Sprintf("SADD %s %s\n", strconv.Quote(key), strconv.Quote(member)), nil,
		func(status string, _ *bufio.Reader) error {
			n, err := parseIntReply(status)
			out = n == 1
			return err
		})
	return out, err
}

// SRem implements Store. No stale-conn replay, mirroring SAdd: the removed
// boolean of a replayed SREM would be wrong.
func (c *Client) SRem(key, member string) (bool, error) {
	var out bool
	err := c.roundTripOnce(fmt.Sprintf("SREM %s %s\n", strconv.Quote(key), strconv.Quote(member)), nil,
		func(status string, _ *bufio.Reader) error {
			n, err := parseIntReply(status)
			out = n == 1
			return err
		})
	return out, err
}

// SMembers implements Store.
func (c *Client) SMembers(key string) ([]string, error) {
	var out []string
	err := c.roundTrip(fmt.Sprintf("SMEMBERS %s\n", strconv.Quote(key)), nil,
		func(status string, r *bufio.Reader) error {
			if !strings.HasPrefix(status, "MULTI ") {
				return replyError(status)
			}
			n, err := strconv.Atoi(status[6:])
			if err != nil || n < 0 {
				return fmt.Errorf("kvs: bad MULTI count %q", status)
			}
			for i := 0; i < n; i++ {
				line, err := r.ReadString('\n')
				if err != nil {
					return err
				}
				c.Received.Add(int64(len(line)))
				m, err := strconv.Unquote(strings.TrimSuffix(line, "\n"))
				if err != nil {
					return err
				}
				out = append(out, m)
			}
			return nil
		})
	return out, err
}

// AllKeys implements Lister over the wire.
func (c *Client) AllKeys() ([]KeyInfo, error) {
	var out []KeyInfo
	err := c.roundTrip("KEYS\n", nil,
		func(status string, r *bufio.Reader) error {
			if !strings.HasPrefix(status, "MULTI ") {
				return replyError(status)
			}
			n, err := strconv.Atoi(status[6:])
			if err != nil || n < 0 {
				return fmt.Errorf("kvs: bad MULTI count %q", status)
			}
			for i := 0; i < n; i++ {
				line, err := r.ReadString('\n')
				if err != nil {
					return err
				}
				c.Received.Add(int64(len(line)))
				m, err := strconv.Unquote(strings.TrimSuffix(line, "\n"))
				if err != nil {
					return err
				}
				if len(m) < 2 || m[1] != ':' {
					return fmt.Errorf("kvs: bad KEYS entry %q", m)
				}
				out = append(out, KeyInfo{Kind: Kind(m[0]), Key: m[2:]})
			}
			return nil
		})
	return out, err
}

// Incr implements Store. Increments must not replay on a stale pooled conn —
// a double-applied delta is a lost-update in reverse.
func (c *Client) Incr(key string, delta int64) (int64, error) {
	var out int64
	err := c.roundTripOnce(fmt.Sprintf("INCR %s %d\n", strconv.Quote(key), delta), nil,
		func(status string, _ *bufio.Reader) error {
			n, err := parseIntReply(status)
			out = n
			return err
		})
	return out, err
}

// Lock implements Store. The call blocks server-side until acquired.
// Acquires must not replay on a stale pooled conn — a replayed LOCK whose
// first application succeeded would leak the first lease until its TTL.
func (c *Client) Lock(key string, write bool, ttl time.Duration) (uint64, error) {
	mode := "r"
	if write {
		mode = "w"
	}
	var out uint64
	// useDeadline=false: OpTimeout must not cut short a legitimate blocking
	// acquire; retriable=false: a replayed LOCK would leak its first lease.
	err := c.roundTripDeadline(fmt.Sprintf("LOCK %s %s %d\n", strconv.Quote(key), mode, ttl.Milliseconds()), nil, false, false,
		func(status string, _ *bufio.Reader) error {
			n, err := parseIntReply(status)
			out = uint64(n)
			return err
		})
	return out, err
}

// Unlock implements Store.
func (c *Client) Unlock(key string, token uint64) error {
	return c.roundTrip(fmt.Sprintf("UNLOCK %s %d\n", strconv.Quote(key), token), nil, expectOK)
}

// readBatchVals consumes one MULTI reply carrying want VAL/NIL entries,
// appending the values to out.
func (c *Client) readBatchVals(r *bufio.Reader, want int, out *[][]byte) error {
	status, err := r.ReadString('\n')
	if err != nil {
		return err
	}
	c.Received.Add(int64(len(status)))
	st := strings.TrimSuffix(status, "\n")
	if !strings.HasPrefix(st, "MULTI ") {
		return replyError(st)
	}
	n, err := strconv.Atoi(st[6:])
	if err != nil || n != want {
		return fmt.Errorf("kvs: bad batch reply count %q (want %d)", st, want)
	}
	for i := 0; i < n; i++ {
		line, err := r.ReadString('\n')
		if err != nil {
			return err
		}
		c.Received.Add(int64(len(line)))
		v, err := c.readVal(strings.TrimSuffix(line, "\n"), r)
		if err != nil {
			return err
		}
		*out = append(*out, v)
	}
	return nil
}

// batchLines renders one command line per window of at most MaxBatch
// entries, splitting early when a line would overflow the server's line
// cap. prefix opens each line; arg renders entry i including its leading
// space. Returns the lines and each line's entry count.
func batchLines(prefix string, n int, arg func(i int) string) (lines []string, counts []int) {
	var sb strings.Builder
	count := 0
	cut := func() {
		if count > 0 {
			sb.WriteByte('\n')
			lines = append(lines, sb.String())
			counts = append(counts, count)
			sb.Reset()
			count = 0
		}
	}
	for i := 0; i < n; i++ {
		a := arg(i)
		if count >= MaxBatch || (count > 0 && sb.Len()+len(a) >= maxLine-1) {
			cut()
		}
		if count == 0 {
			sb.WriteString(prefix)
		}
		sb.WriteString(a)
		count++
	}
	cut()
	return lines, counts
}

// exchangeWindows runs one pipelined exchange per command line, appending
// each window's VAL/NIL entries to out. The bounded per-window exchange
// keeps client and server from deadlocking on full TCP buffers when both
// sides would otherwise stream megabytes blindly.
func (c *Client) exchangeWindows(lines []string, counts []int, out *[][]byte) error {
	for li, line := range lines {
		err := c.pipelined(len(line), true,
			func(w *bufio.Writer) error {
				_, err := w.WriteString(line)
				return err
			},
			func(r *bufio.Reader) error {
				return c.readBatchVals(r, counts[li], out)
			})
		if err != nil {
			return err
		}
	}
	return nil
}

// MGet implements Batcher over the wire: one pipelined exchange — request
// written, one flush, all replies read — per MGET command of up to MaxBatch
// keys, instead of one round trip per key.
func (c *Client) MGet(keys []string) ([][]byte, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	lines, counts := batchLines("MGET", len(keys), func(i int) string {
		return " " + strconv.Quote(keys[i])
	})
	out := make([][]byte, 0, len(keys))
	if err := c.exchangeWindows(lines, counts, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// MSet implements Batcher over the wire: the whole batch — split into MSET
// commands of at most MaxBatch entries — is written and flushed once, then
// one OK per command is read back. Unlike MGet, one exchange is safe at any
// size: the server consumes the request stream before each tiny OK reply,
// so reply backpressure cannot wedge the writing client.
func (c *Client) MSet(pairs []Pair) error {
	return c.msetPipelined(pairs, func(n int) string {
		return fmt.Sprintf("MSET %d\n", n)
	})
}

// MSetEx implements Batcher over the wire: MSET's pipeline with a shared
// TTL in each command header. Safe to replay like SetEx.
func (c *Client) MSetEx(pairs []Pair, ttl time.Duration) error {
	ms, err := ttlMillis(ttl)
	if err != nil {
		return err
	}
	return c.msetPipelined(pairs, func(n int) string {
		return fmt.Sprintf("MSETEX %d %d\n", n, ms)
	})
}

// msetPipelined is the shared MSET/MSETEX transport: the whole batch — split
// into commands of at most MaxBatch entries — is written and flushed once,
// then one OK per command is read back. cmdFor renders the command header
// for a chunk of n entries.
func (c *Client) msetPipelined(pairs []Pair, cmdFor func(n int) string) error {
	if len(pairs) == 0 {
		return nil
	}
	// Chunk on both the server's entry cap and its aggregate payload bound
	// (the server buffers a whole MSET before applying).
	var chunks [][]Pair
	start, bytes := 0, 0
	for i, p := range pairs {
		if i > start && (i-start >= MaxBatch || bytes+len(p.Val) > MaxPayload) {
			chunks = append(chunks, pairs[start:i])
			start, bytes = i, 0
		}
		bytes += len(p.Val)
	}
	chunks = append(chunks, pairs[start:])
	// Pre-render entry headers so the request size fed to the transfer
	// counter is the exact byte count send() writes.
	headers := make([][]string, len(chunks))
	cmds := make([]string, len(chunks))
	reqBytes := 0
	for ci, ch := range chunks {
		cmds[ci] = cmdFor(len(ch))
		reqBytes += len(cmds[ci])
		headers[ci] = make([]string, len(ch))
		for i, p := range ch {
			headers[ci][i] = fmt.Sprintf("%s %d\n", strconv.Quote(p.Key), len(p.Val))
			reqBytes += len(headers[ci][i]) + len(p.Val)
		}
	}
	return c.pipelined(reqBytes, true,
		func(w *bufio.Writer) error {
			for ci, ch := range chunks {
				if _, err := w.WriteString(cmds[ci]); err != nil {
					return err
				}
				for i, p := range ch {
					if _, err := w.WriteString(headers[ci][i]); err != nil {
						return err
					}
					if _, err := w.Write(p.Val); err != nil {
						return err
					}
				}
			}
			return nil
		},
		func(r *bufio.Reader) error {
			for range chunks {
				status, err := r.ReadString('\n')
				if err != nil {
					return err
				}
				c.Received.Add(int64(len(status)))
				if err := expectOK(strings.TrimSuffix(status, "\n"), r); err != nil {
					return err
				}
			}
			return nil
		})
}

// GetRanges implements Batcher over the wire: all windows of one key in one
// pipelined exchange per GETRANGES command of up to MaxBatch windows. The
// single-observation guarantee holds per command: a batch needing several
// command windows may observe different value versions across them (see the
// Batcher contract).
func (c *Client) GetRanges(key string, ranges []Range) ([][]byte, error) {
	if len(ranges) == 0 {
		return nil, nil
	}
	prefix := "GETRANGES " + strconv.Quote(key)
	lines, counts := batchLines(prefix, len(ranges), func(i int) string {
		return fmt.Sprintf(" %d %d", ranges[i].Off, ranges[i].N)
	})
	out := make([][]byte, 0, len(ranges))
	if err := c.exchangeWindows(lines, counts, &out); err != nil {
		return nil, err
	}
	return out, nil
}

var (
	_ Store   = (*Client)(nil)
	_ Batcher = (*Client)(nil)
)
