package frt

import (
	"fmt"
	"testing"

	"faasm.dev/faasm/internal/core"
	"faasm.dev/faasm/internal/kvs"
)

func TestAccessProfileRecordsGuestReads(t *testing.T) {
	store := kvs.NewEngine()
	store.Set("k", make([]byte, 8192))
	inst := New(Config{Host: "h1", Store: store})
	inst.RegisterNative("reader", func(ctx *core.Ctx) (int32, error) {
		_, err := ctx.MapState("k", -1)
		return 0, err
	})
	if _, _, err := inst.Call("reader", nil); err != nil {
		t.Fatal(err)
	}
	if got := inst.profile.footprint("reader"); got != 8192 {
		t.Fatalf("footprint = %d, want 8192", got)
	}
	if got := inst.AccessedStateBytes(); got != 8192 {
		t.Fatalf("accessed = %d, want 8192", got)
	}
	if got := inst.profile.footprint("ghost"); got != 0 {
		t.Fatalf("unknown fn footprint = %d", got)
	}
	// The whole value was pulled, so residency covers the footprint.
	if got := inst.residentBytes("reader"); got != 8192 {
		t.Fatalf("resident = %d, want 8192", got)
	}
	if res := inst.Residency(); res["reader"] != 8192 {
		t.Fatalf("Residency() = %v", res)
	}
}

func TestAccessProfileDecayAndCap(t *testing.T) {
	p := newAccessProfile()
	// More distinct keys than the cap, recorded enough times to force a
	// decay pass: only the hottest profileMaxKeys survive.
	for round := 0; round < 8; round++ {
		for k := 0; k < profileMaxKeys*2; k++ {
			p.record("fn", fmt.Sprintf("key-%d", k), int64(1+k))
		}
	}
	keys := p.keysOf("fn")
	if len(keys) > profileMaxKeys {
		t.Fatalf("profile holds %d keys, cap is %d", len(keys), profileMaxKeys)
	}
	// The hottest key must have survived the trims.
	hot := fmt.Sprintf("key-%d", profileMaxKeys*2-1)
	if keys[hot] == 0 {
		t.Fatalf("hottest key evicted; kept %v", keys)
	}
	// Decay halves: the footprint is far below the raw sum of all records.
	raw := int64(0)
	for k := 0; k < profileMaxKeys*2; k++ {
		raw += 8 * int64(1+k)
	}
	if fp := p.footprint("fn"); fp >= raw {
		t.Fatalf("footprint %d not decayed (raw %d)", fp, raw)
	}
}

// Shard-primary co-location credits a key as resident before it is ever
// pulled — but only on the host co-hosting the key's healthy primary.
func TestResidencyShardCoLocation(t *testing.T) {
	store := kvs.NewEngine()
	store.Set("k", make([]byte, 4096))
	owners := func(key string) []string { return []string{"shard-0", "shard-1"} }

	home := New(Config{Host: "h0", Store: store, StateOwners: owners, LocalShard: "shard-0"})
	other := New(Config{Host: "h1", Store: store, StateOwners: owners, LocalShard: "shard-1"})
	for _, inst := range []*Instance{home, other} {
		inst.profile.record("fn", "k", 4096)
	}
	if got := home.residentBytes("fn"); got != 4096 {
		t.Fatalf("primary co-host residency = %d, want 4096 (unpulled but primary-local)", got)
	}
	if got := other.residentBytes("fn"); got != 0 {
		t.Fatalf("replica co-host residency = %d, want 0 (only the primary counts)", got)
	}
}
