// Package minipy implements a small dynamic-language runtime, the repo's
// stand-in for CPython in the paper's Fig 9b and §6.5 experiments. The
// paper measures the cost of hosting a dynamic language runtime inside a
// Faaslet (compiled to WebAssembly); we reproduce the setup by running the
// same interpreter over a pluggable object heap:
//
//   - native mode: the heap is a plain byte slice — the "native CPython"
//     side of Fig 9b;
//   - faaslet mode: the heap lives in the Faaslet's linear memory, so every
//     object access pays the sandbox's bounds-checked accessor path — the
//     "CPython in a Faaslet" side.
//
// Programs are dynamically typed ASTs (ints, floats, strings, lists,
// functions) built programmatically by the benchmark suite in bench.go.
package minipy

import (
	"errors"
	"fmt"
	"math"

	"faasm.dev/faasm/internal/wamem"
)

// Heap is the interpreter's object memory. Strings and lists live here;
// scalar values stay in tagged registers.
type Heap interface {
	// Alloc reserves n bytes, returning the address.
	Alloc(n int) (int32, error)
	ReadU64(addr int32) (uint64, error)
	WriteU64(addr int32, v uint64) error
	ReadBytes(addr int32, n int) ([]byte, error)
	WriteBytes(addr int32, b []byte) error
}

// SliceHeap is the native-mode heap: a growable byte slice.
type SliceHeap struct {
	buf  []byte
	next int32
}

// NewSliceHeap creates a native heap.
func NewSliceHeap() *SliceHeap { return &SliceHeap{buf: make([]byte, 1<<16), next: 8} }

// Alloc implements Heap.
func (h *SliceHeap) Alloc(n int) (int32, error) {
	addr := h.next
	h.next += int32((n + 7) &^ 7)
	for int(h.next) > len(h.buf) {
		h.buf = append(h.buf, make([]byte, len(h.buf))...)
	}
	return addr, nil
}

// ReadU64 implements Heap.
func (h *SliceHeap) ReadU64(addr int32) (uint64, error) {
	return leU64(h.buf[addr:]), nil
}

// WriteU64 implements Heap.
func (h *SliceHeap) WriteU64(addr int32, v uint64) error {
	putU64(h.buf[addr:], v)
	return nil
}

// ReadBytes implements Heap.
func (h *SliceHeap) ReadBytes(addr int32, n int) ([]byte, error) {
	return h.buf[addr : addr+int32(n)], nil
}

// WriteBytes implements Heap.
func (h *SliceHeap) WriteBytes(addr int32, b []byte) error {
	copy(h.buf[addr:], b)
	return nil
}

// MemHeap is the faaslet-mode heap over a linear memory: every access is
// bounds-checked by wamem, the sandbox's SFI cost.
type MemHeap struct {
	mem  *wamem.Memory
	next int32
}

// NewMemHeap creates a heap inside mem, starting after base.
func NewMemHeap(mem *wamem.Memory, base int32) *MemHeap {
	return &MemHeap{mem: mem, next: base + 8}
}

// Alloc implements Heap.
func (h *MemHeap) Alloc(n int) (int32, error) {
	addr := h.next
	h.next += int32((n + 7) &^ 7)
	if uint32(h.next) > h.mem.Size() {
		need := (int(h.next) - int(h.mem.Size()) + wamem.PageSize - 1) / wamem.PageSize
		if _, err := h.mem.Grow(need); err != nil {
			return 0, err
		}
	}
	return addr, nil
}

// ReadU64 implements Heap.
func (h *MemHeap) ReadU64(addr int32) (uint64, error) { return h.mem.ReadU64(uint32(addr)) }

// WriteU64 implements Heap.
func (h *MemHeap) WriteU64(addr int32, v uint64) error { return h.mem.WriteU64(uint32(addr), v) }

// ReadBytes implements Heap.
func (h *MemHeap) ReadBytes(addr int32, n int) ([]byte, error) {
	return h.mem.ReadBytes(uint32(addr), n)
}

// WriteBytes implements Heap.
func (h *MemHeap) WriteBytes(addr int32, b []byte) error {
	return h.mem.WriteBytes(uint32(addr), b)
}

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// Kind tags a dynamic value.
type Kind uint8

// Value kinds.
const (
	KNone Kind = iota
	KInt
	KFloat
	KBool
	KStr  // heap: [len u64][bytes]
	KList // heap: [len u64][cap u64][16-byte boxed elements]
)

// Val is one dynamic value.
type Val struct {
	Kind Kind
	I    int64
	F    float64
	Addr int32
}

// None is the unit value.
var None = Val{Kind: KNone}

// IntV boxes an int.
func IntV(i int64) Val { return Val{Kind: KInt, I: i} }

// FloatV boxes a float.
func FloatV(f float64) Val { return Val{Kind: KFloat, F: f} }

// BoolV boxes a bool.
func BoolV(b bool) Val {
	if b {
		return Val{Kind: KBool, I: 1}
	}
	return Val{Kind: KBool}
}

// Truthy implements dynamic truthiness.
func (v Val) Truthy() bool {
	switch v.Kind {
	case KNone:
		return false
	case KInt, KBool:
		return v.I != 0
	case KFloat:
		return v.F != 0
	default:
		return true
	}
}

// Interp is one interpreter instance bound to a heap.
type Interp struct {
	heap  Heap
	funcs map[string]*FuncDef
	// Steps counts AST nodes evaluated (the interpreter's own work metric).
	Steps uint64
}

// New creates an interpreter.
func New(heap Heap) *Interp {
	return &Interp{heap: heap, funcs: map[string]*FuncDef{}}
}

// FuncDef is a user function.
type FuncDef struct {
	Name   string
	Params int // parameters occupy slots 0..Params-1
	Slots  int // total local slots
	Body   []Node
}

// Define registers a function.
func (ip *Interp) Define(f *FuncDef) { ip.funcs[f.Name] = f }

// Call runs a defined function.
func (ip *Interp) Call(name string, args ...Val) (Val, error) {
	f, ok := ip.funcs[name]
	if !ok {
		return None, fmt.Errorf("minipy: no function %q", name)
	}
	if len(args) != f.Params {
		return None, fmt.Errorf("minipy: %s wants %d args", name, f.Params)
	}
	frame := make([]Val, f.Slots)
	copy(frame, args)
	v, err := ip.execBlock(f.Body, frame)
	if errors.Is(err, errReturn) {
		return v, nil
	}
	if err != nil {
		return None, err
	}
	return None, nil
}

// errReturn unwinds a return through block execution.
var errReturn = errors.New("return")

// errBreak / errContinue unwind loop control.
var (
	errBreak    = errors.New("break")
	errContinue = errors.New("continue")
)

// Node is an AST node.
type Node interface{ node() }

// Expressions.
type (
	// Const is a literal.
	Const struct{ V Val }
	// StrLit allocates a string literal on the heap at first evaluation.
	StrLit struct {
		S    string
		addr int32
	}
	// Local reads a slot.
	Local struct{ Slot int }
	// BinOp applies a dynamic binary operator: + - * / % < <= > >= == != and or min max
	BinOp struct {
		Op   string
		L, R Node
	}
	// UnOp applies - or not.
	UnOp struct {
		Op string
		X  Node
	}
	// CallN invokes a user function.
	CallN struct {
		Name string
		Args []Node
	}
	// Builtin invokes an intrinsic: len, append, list, getidx, setidx,
	// str, concat, sqrt, abs, float, int, substr, chr
	Builtin struct {
		Name string
		Args []Node
	}
)

// Statements.
type (
	// SetLocal assigns a slot.
	SetLocal struct {
		Slot int
		X    Node
	}
	// ExprStmt evaluates for effect.
	ExprStmt struct{ X Node }
	// If branches.
	If struct {
		Cond       Node
		Then, Else []Node
	}
	// While loops.
	While struct {
		Cond Node
		Body []Node
	}
	// ForRange iterates Slot over [From, To).
	ForRange struct {
		Slot     int
		From, To Node
		Body     []Node
	}
	// Return exits the function with a value.
	Return struct{ X Node }
	// Break exits the innermost loop.
	Break struct{}
	// Continue skips to the next iteration.
	Continue struct{}
)

func (*Const) node()    {}
func (*StrLit) node()   {}
func (*Local) node()    {}
func (*BinOp) node()    {}
func (*UnOp) node()     {}
func (*CallN) node()    {}
func (*Builtin) node()  {}
func (*SetLocal) node() {}
func (*ExprStmt) node() {}
func (*If) node()       {}
func (*While) node()    {}
func (*ForRange) node() {}
func (*Return) node()   {}
func (*Break) node()    {}
func (*Continue) node() {}

func (ip *Interp) execBlock(stmts []Node, frame []Val) (Val, error) {
	for _, s := range stmts {
		if v, err := ip.exec(s, frame); err != nil {
			return v, err
		}
	}
	return None, nil
}

func (ip *Interp) exec(s Node, frame []Val) (Val, error) {
	ip.Steps++
	switch st := s.(type) {
	case *SetLocal:
		v, err := ip.eval(st.X, frame)
		if err != nil {
			return None, err
		}
		frame[st.Slot] = v
		return None, nil
	case *ExprStmt:
		_, err := ip.eval(st.X, frame)
		return None, err
	case *If:
		c, err := ip.eval(st.Cond, frame)
		if err != nil {
			return None, err
		}
		if c.Truthy() {
			return ip.execBlock(st.Then, frame)
		}
		return ip.execBlock(st.Else, frame)
	case *While:
		for {
			c, err := ip.eval(st.Cond, frame)
			if err != nil {
				return None, err
			}
			if !c.Truthy() {
				return None, nil
			}
			if v, err := ip.execBlock(st.Body, frame); err != nil {
				if errors.Is(err, errBreak) {
					return None, nil
				}
				if errors.Is(err, errContinue) {
					continue
				}
				return v, err
			}
		}
	case *ForRange:
		from, err := ip.eval(st.From, frame)
		if err != nil {
			return None, err
		}
		to, err := ip.eval(st.To, frame)
		if err != nil {
			return None, err
		}
		for i := from.I; i < to.I; i++ {
			frame[st.Slot] = IntV(i)
			if v, err := ip.execBlock(st.Body, frame); err != nil {
				if errors.Is(err, errBreak) {
					return None, nil
				}
				if errors.Is(err, errContinue) {
					continue
				}
				return v, err
			}
		}
		return None, nil
	case *Return:
		v, err := ip.eval(st.X, frame)
		if err != nil {
			return None, err
		}
		return v, errReturn
	case *Break:
		return None, errBreak
	case *Continue:
		return None, errContinue
	default:
		// Bare expressions act as statements.
		_, err := ip.eval(s, frame)
		return None, err
	}
}

func (ip *Interp) eval(e Node, frame []Val) (Val, error) {
	ip.Steps++
	switch x := e.(type) {
	case *Const:
		return x.V, nil
	case *StrLit:
		if x.addr == 0 {
			addr, err := ip.allocStr([]byte(x.S))
			if err != nil {
				return None, err
			}
			x.addr = addr
		}
		return Val{Kind: KStr, Addr: x.addr}, nil
	case *Local:
		return frame[x.Slot], nil
	case *UnOp:
		v, err := ip.eval(x.X, frame)
		if err != nil {
			return None, err
		}
		switch x.Op {
		case "-":
			switch v.Kind {
			case KInt:
				return IntV(-v.I), nil
			case KFloat:
				return FloatV(-v.F), nil
			}
			return None, fmt.Errorf("minipy: cannot negate %v", v.Kind)
		case "not":
			return BoolV(!v.Truthy()), nil
		}
		return None, fmt.Errorf("minipy: unknown unary %q", x.Op)
	case *BinOp:
		l, err := ip.eval(x.L, frame)
		if err != nil {
			return None, err
		}
		r, err := ip.eval(x.R, frame)
		if err != nil {
			return None, err
		}
		return ip.binop(x.Op, l, r)
	case *CallN:
		if _, ok := ip.funcs[x.Name]; !ok {
			return None, fmt.Errorf("minipy: no function %q", x.Name)
		}
		args := make([]Val, len(x.Args))
		for i, a := range x.Args {
			v, err := ip.eval(a, frame)
			if err != nil {
				return None, err
			}
			args[i] = v
		}
		return ip.Call(x.Name, args...)
	case *Builtin:
		return ip.builtin(x, frame)
	}
	return None, fmt.Errorf("minipy: unknown node %T", e)
}

// binop implements dynamic dispatch with int→float promotion.
func (ip *Interp) binop(op string, l, r Val) (Val, error) {
	if l.Kind == KStr && r.Kind == KStr && op == "+" {
		return ip.strConcat(l, r)
	}
	if l.Kind == KInt && r.Kind == KInt {
		switch op {
		case "+":
			return IntV(l.I + r.I), nil
		case "-":
			return IntV(l.I - r.I), nil
		case "*":
			return IntV(l.I * r.I), nil
		case "/":
			if r.I == 0 {
				return None, errors.New("minipy: division by zero")
			}
			return IntV(l.I / r.I), nil
		case "%":
			if r.I == 0 {
				return None, errors.New("minipy: modulo by zero")
			}
			return IntV(l.I % r.I), nil
		case "<":
			return BoolV(l.I < r.I), nil
		case "<=":
			return BoolV(l.I <= r.I), nil
		case ">":
			return BoolV(l.I > r.I), nil
		case ">=":
			return BoolV(l.I >= r.I), nil
		case "==":
			return BoolV(l.I == r.I), nil
		case "!=":
			return BoolV(l.I != r.I), nil
		}
	}
	lf, lok := toFloat(l)
	rf, rok := toFloat(r)
	if lok && rok {
		switch op {
		case "+":
			return FloatV(lf + rf), nil
		case "-":
			return FloatV(lf - rf), nil
		case "*":
			return FloatV(lf * rf), nil
		case "/":
			return FloatV(lf / rf), nil
		case "<":
			return BoolV(lf < rf), nil
		case "<=":
			return BoolV(lf <= rf), nil
		case ">":
			return BoolV(lf > rf), nil
		case ">=":
			return BoolV(lf >= rf), nil
		case "==":
			return BoolV(lf == rf), nil
		case "!=":
			return BoolV(lf != rf), nil
		}
	}
	return None, fmt.Errorf("minipy: bad operands for %q: %v %v", op, l.Kind, r.Kind)
}

func toFloat(v Val) (float64, bool) {
	switch v.Kind {
	case KInt, KBool:
		return float64(v.I), true
	case KFloat:
		return v.F, true
	}
	return 0, false
}

// --- heap object layouts ---

// boxSize is a boxed value's heap footprint: kind u64 + payload u64.
const boxSize = 16

func (ip *Interp) writeBox(addr int32, v Val) error {
	if err := ip.heap.WriteU64(addr, uint64(v.Kind)|uint64(uint32(v.Addr))<<32); err != nil {
		return err
	}
	var payload uint64
	switch v.Kind {
	case KFloat:
		payload = math.Float64bits(v.F)
	default:
		payload = uint64(v.I)
	}
	return ip.heap.WriteU64(addr+8, payload)
}

func (ip *Interp) readBox(addr int32) (Val, error) {
	hdr, err := ip.heap.ReadU64(addr)
	if err != nil {
		return None, err
	}
	payload, err := ip.heap.ReadU64(addr + 8)
	if err != nil {
		return None, err
	}
	v := Val{Kind: Kind(hdr & 0xff), Addr: int32(uint32(hdr >> 32))}
	if v.Kind == KFloat {
		v.F = math.Float64frombits(payload)
	} else {
		v.I = int64(payload)
	}
	return v, nil
}

func (ip *Interp) allocStr(b []byte) (int32, error) {
	addr, err := ip.heap.Alloc(8 + len(b))
	if err != nil {
		return 0, err
	}
	if err := ip.heap.WriteU64(addr, uint64(len(b))); err != nil {
		return 0, err
	}
	if err := ip.heap.WriteBytes(addr+8, b); err != nil {
		return 0, err
	}
	return addr, nil
}

func (ip *Interp) strBytes(v Val) ([]byte, error) {
	n, err := ip.heap.ReadU64(v.Addr)
	if err != nil {
		return nil, err
	}
	return ip.heap.ReadBytes(v.Addr+8, int(n))
}

func (ip *Interp) strConcat(l, r Val) (Val, error) {
	lb, err := ip.strBytes(l)
	if err != nil {
		return None, err
	}
	rb, err := ip.strBytes(r)
	if err != nil {
		return None, err
	}
	joined := make([]byte, 0, len(lb)+len(rb))
	joined = append(joined, lb...)
	joined = append(joined, rb...)
	addr, err := ip.allocStr(joined)
	if err != nil {
		return None, err
	}
	return Val{Kind: KStr, Addr: addr}, nil
}

func (ip *Interp) newList(capacity int) (Val, error) {
	if capacity < 4 {
		capacity = 4
	}
	addr, err := ip.heap.Alloc(16 + capacity*boxSize)
	if err != nil {
		return None, err
	}
	if err := ip.heap.WriteU64(addr, 0); err != nil {
		return None, err
	}
	if err := ip.heap.WriteU64(addr+8, uint64(capacity)); err != nil {
		return None, err
	}
	return Val{Kind: KList, Addr: addr}, nil
}

func (ip *Interp) listLen(v Val) (int, error) {
	n, err := ip.heap.ReadU64(v.Addr)
	return int(n), err
}

func (ip *Interp) listGet(v Val, i int) (Val, error) {
	n, err := ip.listLen(v)
	if err != nil {
		return None, err
	}
	if i < 0 || i >= n {
		return None, fmt.Errorf("minipy: list index %d out of range %d", i, n)
	}
	return ip.readBox(v.Addr + 16 + int32(i*boxSize))
}

func (ip *Interp) listSet(v Val, i int, x Val) error {
	n, err := ip.listLen(v)
	if err != nil {
		return err
	}
	if i < 0 || i >= n {
		return fmt.Errorf("minipy: list index %d out of range %d", i, n)
	}
	return ip.writeBox(v.Addr+16+int32(i*boxSize), x)
}

// listAppend returns the (possibly moved) list value.
func (ip *Interp) listAppend(v Val, x Val) (Val, error) {
	n, err := ip.listLen(v)
	if err != nil {
		return None, err
	}
	capU, err := ip.heap.ReadU64(v.Addr + 8)
	if err != nil {
		return None, err
	}
	capacity := int(capU)
	if n == capacity {
		// Grow by doubling: allocate and copy boxes.
		grown, err := ip.newList(capacity * 2)
		if err != nil {
			return None, err
		}
		raw, err := ip.heap.ReadBytes(v.Addr+16, n*boxSize)
		if err != nil {
			return None, err
		}
		if err := ip.heap.WriteBytes(grown.Addr+16, raw); err != nil {
			return None, err
		}
		if err := ip.heap.WriteU64(grown.Addr, uint64(n)); err != nil {
			return None, err
		}
		v = grown
	}
	if err := ip.writeBox(v.Addr+16+int32(n*boxSize), x); err != nil {
		return None, err
	}
	if err := ip.heap.WriteU64(v.Addr, uint64(n+1)); err != nil {
		return None, err
	}
	return v, nil
}

func (ip *Interp) builtin(x *Builtin, frame []Val) (Val, error) {
	args := make([]Val, len(x.Args))
	for i, a := range x.Args {
		v, err := ip.eval(a, frame)
		if err != nil {
			return None, err
		}
		args[i] = v
	}
	switch x.Name {
	case "list":
		// list(n) → list of n None slots; list() → empty.
		if len(args) == 1 {
			n := int(args[0].I)
			lst, err := ip.newList(n)
			if err != nil {
				return None, err
			}
			if err := ip.heap.WriteU64(lst.Addr, uint64(n)); err != nil {
				return None, err
			}
			zero := IntV(0)
			for i := 0; i < n; i++ {
				if err := ip.writeBox(lst.Addr+16+int32(i*boxSize), zero); err != nil {
					return None, err
				}
			}
			return lst, nil
		}
		return ip.newList(0)
	case "len":
		switch args[0].Kind {
		case KList:
			n, err := ip.listLen(args[0])
			return IntV(int64(n)), err
		case KStr:
			n, err := ip.heap.ReadU64(args[0].Addr)
			return IntV(int64(n)), err
		}
		return None, fmt.Errorf("minipy: len of %v", args[0].Kind)
	case "getidx":
		return ip.listGet(args[0], int(args[1].I))
	case "setidx":
		return None, ip.listSet(args[0], int(args[1].I), args[2])
	case "append":
		return ip.listAppend(args[0], args[1])
	case "sqrt":
		f, _ := toFloat(args[0])
		return FloatV(math.Sqrt(f)), nil
	case "abs":
		if args[0].Kind == KInt {
			if args[0].I < 0 {
				return IntV(-args[0].I), nil
			}
			return args[0], nil
		}
		f, _ := toFloat(args[0])
		return FloatV(math.Abs(f)), nil
	case "float":
		f, _ := toFloat(args[0])
		return FloatV(f), nil
	case "int":
		switch args[0].Kind {
		case KFloat:
			return IntV(int64(args[0].F)), nil
		default:
			return IntV(args[0].I), nil
		}
	case "str":
		var s string
		switch args[0].Kind {
		case KInt, KBool:
			s = fmt.Sprintf("%d", args[0].I)
		case KFloat:
			s = fmt.Sprintf("%g", args[0].F)
		case KStr:
			return args[0], nil
		case KNone:
			s = "None"
		default:
			s = "<obj>"
		}
		addr, err := ip.allocStr([]byte(s))
		if err != nil {
			return None, err
		}
		return Val{Kind: KStr, Addr: addr}, nil
	case "chr":
		addr, err := ip.allocStr([]byte{byte(args[0].I)})
		if err != nil {
			return None, err
		}
		return Val{Kind: KStr, Addr: addr}, nil
	}
	return None, fmt.Errorf("minipy: unknown builtin %q", x.Name)
}

// StrValue extracts a string result (tests and benchmarks).
func (ip *Interp) StrValue(v Val) (string, error) {
	if v.Kind != KStr {
		return "", fmt.Errorf("minipy: not a string: %v", v.Kind)
	}
	b, err := ip.strBytes(v)
	return string(b), err
}
