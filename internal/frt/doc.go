// Package frt implements the FAASM runtime instance of §5: the server-side
// component that manages a pool of Faaslets, schedules and executes function
// calls (locally or by sharing them with warm peers), implements the
// chaining half of the host interface, and generates/restores Proto-Faaslet
// snapshots to minimise cold-start latency.
//
// Multiple instances — one per host — form the distributed runtime of
// Fig 5: each has a local scheduler, a Faaslet pool, a slice of the local
// state tier, and a sharing path to its peers.
//
// # Concurrency model
//
// The invocation hot path is engineered to scale with cores:
//
//   - Lock-free: function definitions and Proto-Faaslets live in
//     copy-on-write maps behind atomic pointers — an invoke reads them with
//     no lock; deployment-time writers clone under regMu and swap. Live
//     Faaslet accounting is a single atomic.
//   - Striped by function: the warm pool is a per-function structure
//     (fnPool), so acquire and release for different functions never touch
//     the same mutex; within one function the critical sections are a
//     slice push/pop plus counter updates.
//   - Off the critical path: the post-call Faaslet reset (§5.2's
//     Proto-Faaslet restore that discards all guest residue) runs on
//     background resetter goroutines bounded by a GOMAXPROCS-wide
//     semaphore — the caller's response returns as soon as execution
//     finishes, and the pool only ever hands out fully reset Faaslets
//     (an acquire that races an in-flight reset waits for it). The
//     scheduler's liveness heartbeat and the elastic pool controller are
//     background goroutines too; neither ever runs inside a call.
//
// # Elastic warm pools
//
// PoolCap bounds each function's warm pool; by default the pool grows only
// organically (a Faaslet is created when a call finds the pool empty) and
// never shrinks. With Config.ElasticPool, a background controller watches
// per-function demand — acquire counts and pool-empty misses — and (a)
// grows the pool ahead of demand by pre-provisioning PoolGrowFactor× the
// observed misses through the resetter machinery, so ramping load stops
// paying cold starts on the critical path, and (b) shrinks idle pools after
// PoolIdleTimeout, halving the idle set per controller tick and feeding
// every eviction through sched.NoteEvicted/Retreat so the global warm set
// stays truthful as capacity drains.
package frt
