package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"faasm.dev/faasm/internal/autoscale"
	"faasm.dev/faasm/internal/cluster"
	"faasm.dev/faasm/internal/hostapi"
)

// Autoscale is the cluster-control-plane gate: offered load ramps 10× over
// a simnet cluster while the autoscale controller supervises host
// lifecycle. The gate demands that the host count follow the load in both
// directions — scale-ups under sustained pressure, safe drains back to the
// floor after it passes — with zero failed calls end to end, and that a
// drained host stop receiving traffic within ~1 lease TTL (its SetEx'd
// liveness lease expires on the tier's clock and weighted forwarding
// routes around it; forwarded-in stragglers are refused and fall back on
// the caller).
func Autoscale(opts Options) *Report {
	r := &Report{
		ID:     "autoscale",
		Title:  "Cluster autoscaler: host count follows a 10x load ramp, zero failed calls",
		Header: []string{"section", "metric", "value", "gate"},
	}

	const (
		minHosts = 2
		maxHosts = 6
		leaseTTL = 60 * time.Millisecond
	)
	phaseDur := 150 * time.Millisecond
	idleDeadline := 2500 * time.Millisecond
	if opts.Quick {
		phaseDur = 120 * time.Millisecond
		idleDeadline = 2 * time.Second
	}
	ramp := []int{2, 4, 8, 14, 20} // closed-loop workers: 2 → 20 is the 10×

	c := cluster.New(cluster.Config{
		Mode: cluster.ModeFaasm, Hosts: minHosts, TimeScale: 1,
		LeaseTTL:     leaseTTL,
		PeerCacheTTL: 5 * time.Millisecond,
	})
	defer c.Shutdown()
	if err := c.Register("work", func(api hostapi.API) (int32, error) {
		time.Sleep(2 * time.Millisecond) // a small, constant service time
		api.WriteOutput([]byte("ok"))
		return 0, nil
	}); err != nil {
		r.Note("setup: %v", err)
		return r
	}

	ctrl := autoscale.NewController(c.Fleet(), autoscale.Spec{
		MinHosts:     minHosts,
		MaxHosts:     maxHosts,
		HighWater:    2,   // per-host in-flight that reads as pressure
		LowWater:     0.8, // below this the fleet shrinks toward the floor
		SustainTicks: 2,
		IdleTicks:    4,
		Cooldown:     60 * time.Millisecond,
	}, c.Clock)

	// Closed-loop offered load: `workers` goroutines each keep one call in
	// flight. Ramp it by releasing more workers; every failure counts.
	var failed, calls atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	startWorker := func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, ret, err := c.Call("work", []byte("x")); err != nil || ret != 0 {
					failed.Add(1)
				}
				calls.Add(1)
			}
		}()
	}

	// tick drives the controller from the experiment loop (deterministic
	// cadence, no background goroutine racing the measurement), recording
	// when the first drain began and of which host.
	var mu sync.Mutex
	firstDrainHost := -1
	var firstDrainAt time.Time
	maxActive := 0
	tick := func() {
		for _, a := range ctrl.Tick() {
			if a.Kind == autoscale.ActionDrain {
				mu.Lock()
				if firstDrainHost < 0 {
					firstDrainHost = a.Host
					firstDrainAt = time.Now()
				}
				mu.Unlock()
			}
		}
		if n := c.ActiveHosts(); n > maxActive {
			maxActive = n
		}
	}

	// Phase 1 — the ramp. Hold each step for phaseDur, ticking the
	// controller throughout.
	running := 0
	for _, w := range ramp {
		for running < w {
			startWorker()
			running++
		}
		end := time.Now().Add(phaseDur)
		for time.Now().Before(end) {
			tick()
			time.Sleep(10 * time.Millisecond)
		}
	}
	st := ctrl.Status()
	peakUps := st.ScaleUps

	// Phase 2 — load falls back to the starting offer: all but 2 workers
	// stop (the closed loop re-checks `stop` between calls, so the herd
	// thins within one service time). The fleet must drain to the floor.
	close(stop)
	wg.Wait()
	stop = make(chan struct{})
	for running = 0; running < ramp[0]; running++ {
		startWorker()
	}
	floorAt := time.Time{}
	idleEnd := time.Now().Add(idleDeadline)
	for time.Now().Before(idleEnd) {
		tick()
		if floorAt.IsZero() && c.ActiveHosts() <= minHosts && ctrl.Status().ScaleDowns > 0 {
			floorAt = time.Now()
		}
		// Keep traffic flowing ~3 lease TTLs past the floor so the
		// drained-host isolation window below is well fed.
		if !floorAt.IsZero() && time.Since(floorAt) > 3*leaseTTL {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Drained-host isolation: from 1.5 lease TTLs after the first drain
	// began, the drained host must execute nothing further, traffic or no.
	drainGate := "FAILED"
	drainVal := "no drain observed"
	mu.Lock()
	dh, dt := firstDrainHost, firstDrainAt
	mu.Unlock()
	var lateCalls int64 = -1
	if dh >= 0 {
		executed := func() int64 {
			inst := c.Instance(dh)
			return inst.WarmStarts.Value() + inst.ColdStarts.Value()
		}
		settle := dt.Add(leaseTTL + leaseTTL/2)
		if d := time.Until(settle); d > 0 {
			time.Sleep(d) // traffic is still running; let the window open
		}
		base := executed()
		deadline := time.Now().Add(2 * leaseTTL)
		for time.Now().Before(deadline) {
			tick()
			time.Sleep(5 * time.Millisecond)
		}
		lateCalls = executed() - base
		drainVal = fmt.Sprintf("%d", lateCalls)
		if lateCalls == 0 {
			drainGate = "ok"
		}
	}
	close(stop)
	wg.Wait()

	// Convergence: with the load gone, every drain completes and the live
	// host count settles at the floor.
	convEnd := time.Now().Add(time.Second)
	for time.Now().Before(convEnd) && c.Hosts() > minHosts {
		tick()
		time.Sleep(5 * time.Millisecond)
	}
	final := ctrl.Status()

	gate := func(ok bool) string {
		if ok {
			return "ok"
		}
		return "FAILED"
	}
	r.Add("ramp", "offered load", fmt.Sprintf("%d → %d workers (10x), %d calls", ramp[0], ramp[len(ramp)-1], calls.Load()), "")
	r.Add("ramp", "failed calls", fmt.Sprintf("%d", failed.Load()), gate(failed.Load() == 0))
	r.Add("ramp", "peak active hosts", fmt.Sprintf("%d (floor %d, ceiling %d)", maxActive, minHosts, maxHosts), gate(maxActive >= minHosts+2))
	r.Add("ramp", "scale-ups by peak", fmt.Sprintf("%d", peakUps), gate(peakUps >= 2))
	r.Add("idle", "drains begun after ramp", fmt.Sprintf("%d", final.ScaleDowns), gate(final.ScaleDowns >= 1))
	r.Add("idle", "hosts back at floor", fmt.Sprintf("%d live", c.Hosts()), gate(c.Hosts() == minHosts))
	r.Add("idle", "drains completed (reclaims)", fmt.Sprintf("%d", final.Drains), gate(final.Drains >= 1))
	r.Add("drain", "drained-host calls after 1.5 lease TTLs", drainVal, drainGate)

	r.Note("closed-loop workers ramp %v; the controller ticks every 10ms with a 60ms cooldown, so the host count follows the offer one hysteresis step at a time", ramp)
	r.Note("scale-down is the safe drain: the victim leaves ingress at once, its lease expires tier-side within %v so peers stop forwarding, in-flight calls finish, then the slot is reclaimed — the gate fails if it executes anything 1.5 TTLs after the drain began", leaseTTL)
	return r
}
