// Package sched implements the distributed shared-state scheduler of §5.1.
// FAASM runs one local scheduler per runtime instance; the set of warm hosts
// for every function lives in the global state tier, and each scheduler
// queries and atomically updates that set while deciding — the
// Omega-style [71] shared-state design the paper adopts.
//
// The decision rule, verbatim from the paper: execute locally if this host
// has a warm Faaslet and capacity; otherwise share the call with another
// warm host if one exists; otherwise cold-start locally (and advertise this
// host as warm). The goal is co-locating functions with the state they
// need, minimising data shipping.
//
// # Concurrency model
//
// The hot path is engineered so that steady-state warm traffic performs
// zero global-tier operations and takes zero locks:
//
//   - Lock-free: the local warm check is a per-function atomic counter
//     (fnState.idle), capacity accounting is a single atomic
//     (Scheduler.inflight), advertise/retreat transitions are a CAS on
//     fnState.advertised, and the per-peer forwarding statistics (EWMA
//     latency, in-flight count) are atomics updated by CAS loops.
//   - Locked, but off the warm path: the cached peer warm set is guarded
//     by a tiny per-function mutex (fnState.cacheMu) that is only touched
//     when the local warm check misses.
//   - Off the critical path entirely: the global tier. The warm set
//     sched/warm/<fn> is written only on the advertise transition (first
//     warm Faaslet appears) and on retreat (last one gone); reads are
//     served from a TTL cache (Cloudburst-style lazy refresh) and refresh
//     at most once per PeerCacheTTL per function. Host liveness runs on a
//     background heartbeat goroutine at lease cadence (LeaseTTL/3), never
//     inside a scheduling decision.
//
// # Peer liveness
//
// Warm-set entries are leases, and the lease clock is the tier's. Every
// host maintains a presence record sched/alive/<host> in the global tier,
// written with SetEx — a tier-side TTL primitive — when the host first
// advertises and re-armed by the heartbeat loop at LeaseTTL/3. The tier
// judges expiry on its own clock and hides an expired record from reads, so
// a peer-cache refresh is a batched existence check (one MGet over the
// listed hosts' lease keys): a record that comes back means alive, nil
// means dead. No timestamp is stored, parsed or compared against any local
// clock anywhere on this path, which makes liveness immune to clock skew
// between hosts — a cluster whose machines disagree by far more than the
// lease TTL neither falsely evicts live hosts nor retains dead ones (the
// previous design stamped the writer's expiry instant and judged it on the
// observer's clock, which broke under skew greater than the TTL).
//
// A crashed host stops receiving forwards within one lease TTL plus one
// peer-cache TTL even though its warm-set entries linger. The observer also
// best-effort-removes the dead host's warm entry and the heartbeat
// re-asserts live hosts' entries each beat, so the global set itself heals
// in both directions: dead hosts are evicted by their peers, and a live
// host that was wrongly evicted (e.g. a long GC pause outlasted its lease)
// reappears at the next beat.
//
// # Weighted forwarding
//
// Forwarding picks the peer with the lowest load-adjusted latency score:
// an EWMA of observed forward round-trips (fed by ForwardBegin/ForwardEnd
// around the transport call) scaled by the peer's in-flight forward count.
// Peers that have never been probed are explored first, round-robin, so
// the scheduler degrades exactly to the previous round-robin behaviour
// when it has no observations; a failed forward multiplies the peer's
// score so traffic drains from flaky hosts before liveness expires them.
package sched
