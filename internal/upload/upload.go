// Package upload implements the FAASM upload service of §5.2: an HTTP
// endpoint where users upload function sources. The service runs the
// trusted half of the Fig 3 pipeline — validation / code generation — and
// writes the resulting object files to the shared object store, from which
// runtime instances load them on cold starts.
package upload

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"

	"faasm.dev/faasm/internal/fcc"
	"faasm.dev/faasm/internal/objstore"
	"faasm.dev/faasm/internal/wavm"
)

// Service is the upload endpoint.
type Service struct {
	store *objstore.Store
	mux   *http.ServeMux
	ln    net.Listener
	srv   *http.Server
}

// New creates a service over the given object store.
func New(store *objstore.Store) *Service {
	s := &Service{store: store, mux: http.NewServeMux()}
	s.mux.HandleFunc("/f/", s.handleFunction)
	s.mux.HandleFunc("/ping", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return s
}

// Store exposes the backing object store.
func (s *Service) Store() *objstore.Store { return s.store }

// Handler returns the HTTP handler (for embedding in faasmd).
func (s *Service) Handler() http.Handler { return s.mux }

// Listen starts serving on addr, returning the bound address.
func (s *Service) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.mux}
	go s.srv.Serve(ln)
	return ln.Addr().String(), nil
}

// Close stops the listener.
func (s *Service) Close() error {
	if s.srv != nil {
		return s.srv.Close()
	}
	return nil
}

// objectKey names a function's object file in the store.
func objectKey(name string) string { return "wasm/" + name + "/function.o" }

// handleFunction implements PUT /f/<name> (upload + codegen) and
// GET /f/<name> (fetch object file).
func (s *Service) handleFunction(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/f/")
	if name == "" || strings.Contains(name, "/") {
		http.Error(w, "bad function name", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodPut, http.MethodPost:
		src, err := io.ReadAll(io.LimitReader(r.Body, 8<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		obj, err := Codegen(string(src), r.URL.Query().Get("lang"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		if err := s.store.Put(objectKey(name), obj); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		fmt.Fprintf(w, "generated %d-byte object for %s\n", len(obj), name)
	case http.MethodGet:
		obj, ok := s.store.Get(objectKey(name))
		if !ok {
			http.Error(w, "unknown function", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(obj)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// Codegen runs the trusted code-generation phase on uploaded source:
// lang "fc" compiles FC, anything else assembles the wat-like text format.
// The returned bytes are a validated object file.
func Codegen(src, lang string) ([]byte, error) {
	var mod *wavm.Module
	var err error
	if lang == "fc" {
		mod, err = fcc.CompileAndValidate(src)
	} else {
		mod, err = wavm.AssembleAndValidate(src)
	}
	if err != nil {
		return nil, fmt.Errorf("upload: code generation failed: %w", err)
	}
	return wavm.EncodeObject(mod)
}

// LoadObject fetches and decodes a generated module from a store.
func LoadObject(store *objstore.Store, name string) (*wavm.Module, error) {
	obj, ok := store.Get(objectKey(name))
	if !ok {
		return nil, fmt.Errorf("upload: no object for %q", name)
	}
	return wavm.DecodeObject(obj)
}
