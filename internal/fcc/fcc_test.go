package fcc

import (
	"testing"

	"faasm.dev/faasm/internal/wavm"
)

func compileRun(t *testing.T, src, fn string, args ...uint64) []uint64 {
	t.Helper()
	mod, err := CompileAndValidate(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	inst, err := wavm.Instantiate(mod, nil)
	if err != nil {
		t.Fatalf("instantiate: %v", err)
	}
	res, err := inst.Call(fn, args...)
	if err != nil {
		t.Fatalf("call %s: %v", fn, err)
	}
	return res
}

func TestArithmeticAndLocals(t *testing.T) {
	src := `
	func f(a i32, b i32) i32 {
		var c i32 = a * b;
		return c + 2;
	}`
	res := compileRun(t, src, "f", wavm.EncodeI32(5), wavm.EncodeI32(8))
	if wavm.DecodeI32(res[0]) != 42 {
		t.Fatalf("f(5,8) = %d", wavm.DecodeI32(res[0]))
	}
}

func TestFloatMath(t *testing.T) {
	src := `
	func hyp(a f64, b f64) f64 {
		return sqrt(a*a + b*b);
	}`
	res := compileRun(t, src, "hyp", wavm.EncodeF64(3), wavm.EncodeF64(4))
	if wavm.DecodeF64(res[0]) != 5 {
		t.Fatalf("hyp = %v", wavm.DecodeF64(res[0]))
	}
}

func TestWhileLoop(t *testing.T) {
	src := `
	func sum(n i32) i32 {
		var acc i32;
		var i i32 = 1;
		while (i <= n) {
			acc = acc + i;
			i = i + 1;
		}
		return acc;
	}`
	res := compileRun(t, src, "sum", wavm.EncodeI32(100))
	if wavm.DecodeI32(res[0]) != 5050 {
		t.Fatalf("sum(100) = %d", wavm.DecodeI32(res[0]))
	}
}

func TestForLoopBreakContinue(t *testing.T) {
	src := `
	func f() i32 {
		var acc i32;
		for (var i i32 = 0; i < 100; i = i + 1) {
			if (i % 2 == 0) { continue; }
			if (i > 10) { break; }
			acc = acc + i;   // 1+3+5+7+9 = 25
		}
		return acc;
	}`
	res := compileRun(t, src, "f")
	if wavm.DecodeI32(res[0]) != 25 {
		t.Fatalf("f() = %d", wavm.DecodeI32(res[0]))
	}
}

func TestNestedLoopsAndBreakDepth(t *testing.T) {
	src := `
	func f(n i32) i32 {
		var count i32;
		for (var i i32 = 0; i < n; i = i + 1) {
			for (var j i32 = 0; j < n; j = j + 1) {
				if (j > i) { break; }
				count = count + 1;
			}
		}
		return count;   // sum_{i=0}^{n-1} (i+1)
	}`
	res := compileRun(t, src, "f", wavm.EncodeI32(5))
	if wavm.DecodeI32(res[0]) != 15 {
		t.Fatalf("f(5) = %d", wavm.DecodeI32(res[0]))
	}
}

func TestPointersAndAlloc(t *testing.T) {
	src := `
	#memory 4
	func f(n i32) f64 {
		var a *f64 = alloc_f64(n);
		for (var i i32 = 0; i < n; i = i + 1) {
			a[i] = f64(i) * 2.0;
		}
		var s f64;
		for (var i i32 = 0; i < n; i = i + 1) {
			s = s + a[i];
		}
		return s;
	}`
	res := compileRun(t, src, "f", wavm.EncodeI32(10))
	if wavm.DecodeF64(res[0]) != 90 { // 2*(0+..+9)
		t.Fatalf("f(10) = %v", wavm.DecodeF64(res[0]))
	}
}

func TestPointerArithmetic(t *testing.T) {
	src := `
	#memory 2
	func f() f64 {
		var a *f64 = alloc_f64(4);
		a[0] = 1.0; a[1] = 2.0; a[2] = 3.0; a[3] = 4.0;
		var p *f64 = a + 2;
		return p[0] + p[1];   // 3 + 4
	}`
	res := compileRun(t, src, "f")
	if wavm.DecodeF64(res[0]) != 7 {
		t.Fatalf("f() = %v", wavm.DecodeF64(res[0]))
	}
}

func TestFunctionCallsAndRecursion(t *testing.T) {
	src := `
	func fib(n i32) i32 {
		if (n < 2) { return n; }
		return fib(n-1) + fib(n-2);
	}
	func main() i32 { return fib(12); }`
	res := compileRun(t, src, "main")
	if wavm.DecodeI32(res[0]) != 144 {
		t.Fatalf("fib(12) = %d", wavm.DecodeI32(res[0]))
	}
}

func TestGlobalsAndCasts(t *testing.T) {
	src := `
	global counter i32 = 10;
	global scale f64 = 2.5;
	func bump() f64 {
		counter = counter + 1;
		return f64(counter) * scale;
	}`
	res := compileRun(t, src, "bump")
	if wavm.DecodeF64(res[0]) != 27.5 {
		t.Fatalf("bump = %v", wavm.DecodeF64(res[0]))
	}
}

func TestLogicalShortCircuit(t *testing.T) {
	src := `
	global touched i32 = 0;
	func side() i32 { touched = 1; return 1; }
	func andFalse() i32 { return 0 && side(); }
	func orTrue() i32 { return 1 || side(); }
	func wasTouched() i32 { return touched; }`
	mod := MustCompile(src)
	inst, _ := wavm.Instantiate(mod, nil)
	res, _ := inst.Call("andFalse")
	if wavm.DecodeI32(res[0]) != 0 {
		t.Fatal("0 && x != 0")
	}
	res, _ = inst.Call("orTrue")
	if wavm.DecodeI32(res[0]) != 1 {
		t.Fatal("1 || x != 1")
	}
	res, _ = inst.Call("wasTouched")
	if wavm.DecodeI32(res[0]) != 0 {
		t.Fatal("short-circuit evaluated the right-hand side")
	}
}

func TestI64Arithmetic(t *testing.T) {
	src := `
	func f(x i64) i64 {
		var y i64 = x * 1000000007;
		return y % 97;
	}`
	res := compileRun(t, src, "f", 1234567)
	want := (int64(1234567) * 1000000007) % 97
	if int64(res[0]) != want {
		t.Fatalf("f = %d, want %d", int64(res[0]), want)
	}
}

func TestExternImports(t *testing.T) {
	src := `
	extern env magic() i32;
	func f() i32 { return magic() + 1; }`
	mod, err := CompileAndValidate(src)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := wavm.Instantiate(mod, map[string]wavm.HostModule{
		"env": {"magic": func(_ *wavm.Instance, _ []uint64) ([]uint64, error) {
			return []uint64{wavm.EncodeI32(41)}, nil
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := inst.Call("f")
	if err != nil || wavm.DecodeI32(res[0]) != 42 {
		t.Fatalf("extern call: %v %v", res, err)
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []struct{ name, src string }{
		{"unknown var", `func f() i32 { return x; }`},
		{"type mismatch", `func f() i32 { var x f64 = 1.0; return x; }`},
		{"unknown func", `func f() i32 { return g(); }`},
		{"break outside loop", `func f() { break; }`},
		{"void returns value", `func f() { return 1; }`},
		{"missing return value", `func f() i32 { return; }`},
		{"arity mismatch", `func g(x i32) i32 { return x; } func f() i32 { return g(); }`},
		{"index non-pointer", `func f() i32 { var x i32; return x[0]; }`},
		{"duplicate local", `func f() { var x i32; var x i32; }`},
		{"unterminated block", `func f() { `},
		{"cond not i32", `func f() { if (1.5) { } }`},
	}
	for _, tc := range bad {
		if _, err := CompileAndValidate(tc.src); err == nil {
			t.Errorf("%s: compiled", tc.name)
		}
	}
}

func TestMatMulKernelEndToEnd(t *testing.T) {
	// A realistic kernel: naive matmul entirely inside the sandbox.
	src := `
	#memory 8
	func matmul(n i32, A *f64, B *f64, C *f64) {
		for (var i i32 = 0; i < n; i = i + 1) {
			for (var j i32 = 0; j < n; j = j + 1) {
				var acc f64;
				for (var k i32 = 0; k < n; k = k + 1) {
					acc = acc + A[i*n+k] * B[k*n+j];
				}
				C[i*n+j] = acc;
			}
		}
	}
	func main() f64 {
		var n i32 = 8;
		var A *f64 = alloc_f64(n*n);
		var B *f64 = alloc_f64(n*n);
		var C *f64 = alloc_f64(n*n);
		for (var i i32 = 0; i < n*n; i = i + 1) {
			A[i] = 1.0;
			B[i] = 2.0;
		}
		matmul(n, A, B, C);
		return C[0];   // 8 * 1 * 2 = 16
	}`
	res := compileRun(t, src, "main")
	if wavm.DecodeF64(res[0]) != 16 {
		t.Fatalf("C[0] = %v", wavm.DecodeF64(res[0]))
	}
}

func TestOOBStillTrapsInFC(t *testing.T) {
	// SFI survives the toolchain: a buggy FC program traps, not corrupts.
	src := `
	#memory 1
	func f() f64 {
		var a *f64 = alloc_f64(4);
		return a[1000000];
	}`
	mod := MustCompile(src)
	inst, _ := wavm.Instantiate(mod, nil)
	_, err := inst.Call("f")
	if err == nil {
		t.Fatal("OOB access did not trap")
	}
}
