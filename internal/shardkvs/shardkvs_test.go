package shardkvs_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"faasm.dev/faasm/internal/kvs"
	"faasm.dev/faasm/internal/kvs/kvstest"
	"faasm.dev/faasm/internal/shardkvs"
)

// The ring must pass the exact store-conformance suite the engine and TCP
// client pass, across shard counts and replication settings.
func TestRingConformance(t *testing.T) {
	configs := []struct {
		name   string
		shards int
		opts   shardkvs.Options
	}{
		{"1shard", 1, shardkvs.Options{}},
		{"3shards", 3, shardkvs.Options{}},
		{"4shards-r2", 4, shardkvs.Options{Replication: 2}},
		{"4shards-r3-readany", 4, shardkvs.Options{Replication: 3, ReadPref: shardkvs.ReadAny}},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			kvstest.Run(t, func(t *testing.T) kvs.Store {
				return shardkvs.NewLocal(cfg.shards, cfg.opts)
			})
		})
	}
}

func TestRingConformanceOverTCP(t *testing.T) {
	kvstest.Run(t, func(t *testing.T) kvs.Store {
		r := shardkvs.New(shardkvs.Options{})
		for i := 0; i < 3; i++ {
			srv, err := kvs.NewServer(kvs.NewEngine(), "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			c := kvs.NewClient(srv.Addr())
			t.Cleanup(func() {
				c.Close()
				srv.Close()
			})
			if _, err := r.Join(fmt.Sprintf("tcp-%d", i), c); err != nil {
				t.Fatal(err)
			}
		}
		return r
	})
}

func seedRing(t *testing.T, r *shardkvs.Ring, nKeys int) map[string][]byte {
	t.Helper()
	want := map[string][]byte{}
	for i := 0; i < nKeys; i++ {
		k := fmt.Sprintf("key-%04d", i)
		v := bytes.Repeat([]byte{byte(i)}, 32+i%97)
		if err := r.Set(k, v); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	// A few non-value structures so migration covers every kind.
	for i := 0; i < 8; i++ {
		if _, err := r.SAdd("warm-hosts", fmt.Sprintf("host-%d", i)); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Incr(fmt.Sprintf("ctr-%d", i), int64(i)*10+1); err != nil {
			t.Fatal(err)
		}
	}
	return want
}

func verifyRing(t *testing.T, r *shardkvs.Ring, want map[string][]byte) {
	t.Helper()
	for k, v := range want {
		got, err := r.Get(k)
		if err != nil {
			t.Fatalf("get %s: %v", k, err)
		}
		if !bytes.Equal(got, v) {
			t.Fatalf("key %s: got %d bytes, want %d", k, len(got), len(v))
		}
	}
	members, err := r.SMembers("warm-hosts")
	if err != nil || len(members) != 8 {
		t.Fatalf("warm-hosts after rebalance: %v %v", members, err)
	}
	for i := 0; i < 8; i++ {
		v, err := r.Incr(fmt.Sprintf("ctr-%d", i), 0)
		if err != nil || v != int64(i)*10+1 {
			t.Fatalf("ctr-%d after rebalance: %d %v", i, v, err)
		}
	}
}

func TestJoinLeaveZeroLostKeys(t *testing.T) {
	const nKeys = 300
	r := shardkvs.NewLocal(3, shardkvs.Options{})
	want := seedRing(t, r, nKeys)

	stats, err := r.Join("shard-3", kvs.NewEngine())
	if err != nil {
		t.Fatal(err)
	}
	if stats.KeysMoved == 0 {
		t.Fatal("join moved nothing — new node owns no ranges?")
	}
	// Rebalance must stream only moved ranges, not the whole keyspace: with
	// 3→4 evenly-loaded shards roughly a quarter of keys move.
	if stats.KeysMoved >= stats.KeysExamined*3/4 {
		t.Fatalf("join moved %d of %d keys — not range-scoped", stats.KeysMoved, stats.KeysExamined)
	}
	verifyRing(t, r, want)

	// The joiner must actually own data now.
	counts, err := r.ShardKeyCounts()
	if err != nil {
		t.Fatal(err)
	}
	if counts["shard-3"] == 0 {
		t.Fatalf("joined shard holds no keys: %v", counts)
	}

	// Graceful leave of an original member: its keys stream out first.
	stats, err = r.Leave("shard-1")
	if err != nil {
		t.Fatal(err)
	}
	if stats.KeysMoved == 0 {
		t.Fatal("leave moved nothing — departing node held no ranges?")
	}
	verifyRing(t, r, want)
	if got := r.NodeIDs(); len(got) != 3 {
		t.Fatalf("nodes after leave: %v", got)
	}
}

func TestJoinLeaveZeroLostKeysReplicated(t *testing.T) {
	r := shardkvs.NewLocal(3, shardkvs.Options{Replication: 2, ReadPref: shardkvs.ReadAny})
	want := seedRing(t, r, 200)
	if _, err := r.Join("shard-3", kvs.NewEngine()); err != nil {
		t.Fatal(err)
	}
	verifyRing(t, r, want)
	if _, err := r.Leave("shard-0"); err != nil {
		t.Fatal(err)
	}
	verifyRing(t, r, want)
}

func TestReplicationPlacesRCopies(t *testing.T) {
	r := shardkvs.New(shardkvs.Options{Replication: 2})
	engines := map[string]*kvs.Engine{}
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("shard-%d", i)
		e := kvs.NewEngine()
		engines[id] = e
		if _, err := r.Join(id, e); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("rep-%d", i)
		if err := r.Set(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
		owners := r.Owners(k)
		if len(owners) != 2 {
			t.Fatalf("owners(%s) = %v", k, owners)
		}
		for _, id := range owners {
			v, _ := engines[id].Get(k)
			if string(v) != k {
				t.Fatalf("owner %s missing copy of %s", id, k)
			}
		}
		// Non-owners must not hold the key.
		for id, e := range engines {
			if id == owners[0] || id == owners[1] {
				continue
			}
			if v, _ := e.Get(k); v != nil {
				t.Fatalf("non-owner %s holds %s", id, k)
			}
		}
	}
}

func TestKeyDistributionIsBalanced(t *testing.T) {
	r := shardkvs.NewLocal(4, shardkvs.Options{})
	for i := 0; i < 2000; i++ {
		if err := r.Set(fmt.Sprintf("k-%d", i), []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	counts, err := r.ShardKeyCounts()
	if err != nil {
		t.Fatal(err)
	}
	for id, n := range counts {
		// Perfect balance is 500/shard; virtual nodes should keep every
		// shard within a loose band.
		if n < 200 || n > 900 {
			t.Fatalf("shard %s holds %d of 2000 keys: %v", id, n, counts)
		}
	}
}

func TestLockRoutesToPrimary(t *testing.T) {
	r := shardkvs.New(shardkvs.Options{})
	engines := map[string]*kvs.Engine{}
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("shard-%d", i)
		e := kvs.NewEngine()
		engines[id] = e
		if _, err := r.Join(id, e); err != nil {
			t.Fatal(err)
		}
	}
	tok, err := r.Lock("locked-key", true, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// The primary engine must refuse a second writer while the ring-held
	// lock is live; a non-owning engine knows nothing of the key.
	primary := engines[r.Owners("locked-key")[0]]
	blocked := make(chan struct{})
	go func() {
		t2, _ := primary.Lock("locked-key", true, time.Second)
		primary.Unlock("locked-key", t2)
		close(blocked)
	}()
	select {
	case <-blocked:
		t.Fatal("primary admitted a second writer under the ring's lock")
	case <-time.After(50 * time.Millisecond):
	}
	if err := r.Unlock("locked-key", tok); err != nil {
		t.Fatal(err)
	}
	select {
	case <-blocked:
	case <-time.After(2 * time.Second):
		t.Fatal("ring unlock did not release the primary's lock")
	}
}

func TestEmptyRingErrors(t *testing.T) {
	r := shardkvs.New(shardkvs.Options{})
	if err := r.Set("k", nil); err == nil {
		t.Fatal("write on empty ring succeeded")
	}
	if _, err := r.Get("k"); err == nil {
		t.Fatal("read on empty ring succeeded")
	}
	if _, err := r.Leave("ghost"); err == nil {
		t.Fatal("leave of unknown node succeeded")
	}
}

func TestLastNodeCannotLeave(t *testing.T) {
	r := shardkvs.NewLocal(1, shardkvs.Options{})
	if _, err := r.Leave("shard-0"); err == nil {
		t.Fatal("last node left the ring")
	}
}

func TestRejoinPopulatedTierPreservesData(t *testing.T) {
	// Regression: rebuilding a ring over already-populated shards (what a
	// restarting daemon does) must never destroy data. The old rebalancer
	// reconciled counters against a source that did not hold them, zeroing
	// live counters during the intermediate single-node ring states.
	engines := []*kvs.Engine{kvs.NewEngine(), kvs.NewEngine(), kvs.NewEngine()}
	first := shardkvs.New(shardkvs.Options{})
	for i, e := range engines {
		if err := first.Attach(fmt.Sprintf("shard-%d", i), e); err != nil {
			t.Fatal(err)
		}
	}
	want := seedRing(t, first, 100)

	// Attach path (the client-bootstrap path): zero mutation.
	second := shardkvs.New(shardkvs.Options{})
	for i, e := range engines {
		if err := second.Attach(fmt.Sprintf("shard-%d", i), e); err != nil {
			t.Fatal(err)
		}
	}
	verifyRing(t, second, want)

	// Join path over the same populated stores: sequential joins walk
	// through intermediate ring layouts; data must survive and converge.
	third := shardkvs.New(shardkvs.Options{})
	for i, e := range engines {
		if _, err := third.Join(fmt.Sprintf("shard-%d", i), e); err != nil {
			t.Fatal(err)
		}
	}
	verifyRing(t, third, want)

	// And the original ring still reads everything too.
	verifyRing(t, first, want)
}

func TestRebalanceIsIdempotent(t *testing.T) {
	r := shardkvs.NewLocal(3, shardkvs.Options{Replication: 2})
	want := seedRing(t, r, 120)
	if _, err := r.Join("shard-3", kvs.NewEngine()); err != nil {
		t.Fatal(err)
	}
	stats, err := r.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if stats.KeysMoved != 0 || stats.CopiesDropped != 0 {
		t.Fatalf("rebalance on converged tier moved data: %+v", stats)
	}
	verifyRing(t, r, want)
}

func TestConcurrentReplicatedWritesDoNotDiverge(t *testing.T) {
	// Regression: without per-key write ordering, two concurrent Sets can
	// commit in opposite orders on primary and replica and diverge the
	// copies permanently.
	r := shardkvs.New(shardkvs.Options{Replication: 2})
	engines := map[string]*kvs.Engine{}
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("shard-%d", i)
		e := kvs.NewEngine()
		engines[id] = e
		if err := r.Attach(id, e); err != nil {
			t.Fatal(err)
		}
	}
	const key = "contended"
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := r.Set(key, []byte(fmt.Sprintf("writer-%d-%d", w, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	owners := r.Owners(key)
	v0, _ := engines[owners[0]].Get(key)
	v1, _ := engines[owners[1]].Get(key)
	if !bytes.Equal(v0, v1) {
		t.Fatalf("replicas diverged: primary=%q replica=%q", v0, v1)
	}
}

func TestAttachRemoteRoutingIsEndpointOrderInvariant(t *testing.T) {
	// Two clients given the same endpoints in different order must route
	// every key to the same shard: nodes are named by address, not index.
	var addrs []string
	for i := 0; i < 3; i++ {
		srv, err := kvs.NewServer(kvs.NewEngine(), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		addrs = append(addrs, srv.Addr())
	}
	forward, err := shardkvs.AttachRemote(addrs, shardkvs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer forward.Close()
	reversed, err := shardkvs.AttachRemote([]string{addrs[2], addrs[0], addrs[1]}, shardkvs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer reversed.Close()
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("order-%d", i)
		if err := forward.Set(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
		if got := reversed.Owners(k); got[0] != forward.Owners(k)[0] {
			t.Fatalf("key %s routes to %s vs %s", k, got[0], forward.Owners(k)[0])
		}
		v, err := reversed.Get(k)
		if err != nil || string(v) != k {
			t.Fatalf("reversed-order client read %q, %v", v, err)
		}
	}
}

func TestMigrationOverTCPNodes(t *testing.T) {
	// Rebalance must work when shards are only reachable through the wire
	// protocol (KEYS enumeration + streamed copies).
	r := shardkvs.New(shardkvs.Options{})
	addNode := func(id string) {
		srv, err := kvs.NewServer(kvs.NewEngine(), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		c := kvs.NewClient(srv.Addr())
		t.Cleanup(func() {
			c.Close()
			srv.Close()
		})
		if _, err := r.Join(id, c); err != nil {
			t.Fatal(err)
		}
	}
	addNode("tcp-0")
	addNode("tcp-1")
	want := seedRing(t, r, 100)
	addNode("tcp-2")
	verifyRing(t, r, want)
	if _, err := r.Leave("tcp-0"); err != nil {
		t.Fatal(err)
	}
	verifyRing(t, r, want)
}

func TestBatchedMSetReplicatesAndRoutes(t *testing.T) {
	r := shardkvs.New(shardkvs.Options{Replication: 2})
	engines := map[string]*kvs.Engine{}
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("shard-%d", i)
		e := kvs.NewEngine()
		engines[id] = e
		if err := r.Attach(id, e); err != nil {
			t.Fatal(err)
		}
	}
	pairs := make([]kvs.Pair, 60)
	keys := make([]string, 60)
	for i := range pairs {
		keys[i] = fmt.Sprintf("mb-%d", i)
		pairs[i] = kvs.Pair{Key: keys[i], Val: []byte(keys[i])}
	}
	if err := kvs.MSet(r, pairs); err != nil {
		t.Fatal(err)
	}
	// Every key sits on exactly its R owners, nowhere else, identical copies.
	for _, k := range keys {
		owners := r.Owners(k)
		if len(owners) != 2 {
			t.Fatalf("owners(%s) = %v", k, owners)
		}
		isOwner := map[string]bool{owners[0]: true, owners[1]: true}
		for id, e := range engines {
			v, _ := e.Get(k)
			if isOwner[id] && string(v) != k {
				t.Fatalf("owner %s of %s holds %q", id, k, v)
			}
			if !isOwner[id] && v != nil {
				t.Fatalf("non-owner %s holds %s", id, k)
			}
		}
	}
	// A batched read reassembles the cross-shard results in input order.
	vals, err := kvs.MGet(r, keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if string(v) != keys[i] {
			t.Fatalf("mget[%d] = %q", i, v)
		}
	}
}

func TestConcurrentBatchedAndSingleWritesDoNotDiverge(t *testing.T) {
	// The multi-key batch fence and the single-key write fence must order
	// against each other: a batch racing single Sets on the same keys may
	// interleave per key, but each key's R copies must end identical.
	r := shardkvs.New(shardkvs.Options{Replication: 2})
	engines := map[string]*kvs.Engine{}
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("shard-%d", i)
		e := kvs.NewEngine()
		engines[id] = e
		if err := r.Attach(id, e); err != nil {
			t.Fatal(err)
		}
	}
	keys := []string{"bf-0", "bf-1", "bf-2", "bf-3", "bf-4", "bf-5"}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 150; i++ {
			pairs := make([]kvs.Pair, len(keys))
			for j, k := range keys {
				pairs[j] = kvs.Pair{Key: k, Val: []byte(fmt.Sprintf("batch-%d-%d", i, j))}
			}
			if err := kvs.MSet(r, pairs); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 150; i++ {
			k := keys[i%len(keys)]
			if err := r.Set(k, []byte(fmt.Sprintf("single-%d", i))); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	for _, k := range keys {
		owners := r.Owners(k)
		v0, _ := engines[owners[0]].Get(k)
		v1, _ := engines[owners[1]].Get(k)
		if !bytes.Equal(v0, v1) {
			t.Fatalf("%s diverged: primary=%q replica=%q", k, v0, v1)
		}
	}
}

// --- Tier-side expiry across the ring ---

func TestMigrationCarriesTTLs(t *testing.T) {
	r := shardkvs.NewLocal(2, shardkvs.Options{})
	if err := r.SetEx("expired", []byte("stale"), 30*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := r.SetEx("leased", []byte("live"), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := r.Set("forever", []byte("keep")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond) // "expired" is now past its deadline, possibly unswept

	if _, err := r.Join("shard-new", kvs.NewEngine()); err != nil {
		t.Fatal(err)
	}
	// A rebalance must not resurrect the expired key anywhere.
	if v, _ := r.Get("expired"); v != nil {
		t.Fatalf("rebalance resurrected an expired key: %q", v)
	}
	infos, err := r.AllKeys()
	if err != nil {
		t.Fatal(err)
	}
	for _, ki := range infos {
		if ki.Kind == kvs.KindValue && ki.Key == "expired" {
			t.Fatal("expired key enumerated after rebalance")
		}
	}
	// The live lease travelled with its remaining TTL, wherever it landed.
	if v, _ := r.Get("leased"); string(v) != "live" {
		t.Fatalf("leased key lost in migration: %q", v)
	}
	if d, _ := r.TTL("leased"); d <= 0 || d > 10*time.Second {
		t.Fatalf("migrated ttl = %v, want in (0, 10s]", d)
	}
	// The persistent key stayed persistent.
	if d, _ := r.TTL("forever"); d != kvs.TTLPersistent {
		t.Fatalf("persistent key ttl after migration = %v", d)
	}
}

func TestMigrationDoesNotExtendLeases(t *testing.T) {
	// A key carried through several rebalances must still expire on time —
	// copying must carry the remaining TTL, not re-arm a fresh one of the
	// original length.
	r := shardkvs.NewLocal(2, shardkvs.Options{})
	if err := r.SetEx("lease", []byte("v"), 300*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := r.Join(fmt.Sprintf("extra-%d", i), kvs.NewEngine()); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, err := r.Get("lease")
		if err != nil {
			t.Fatal(err)
		}
		if v == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("migrated lease never expired — migration re-armed it")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestExpiryRacesMigration runs SetEx/Get/TTL/Persist traffic against
// concurrent Join/Leave rebalances and explicit sweeps. Run under -race in
// CI: the sweeper timer, the migration's enumerate-then-copy and the
// routing snapshots must all stay race-clean.
func TestExpiryRacesMigration(t *testing.T) {
	r := shardkvs.NewLocal(2, shardkvs.Options{Replication: 2})
	extra := kvs.NewEngine()
	extra.SetSweepInterval(time.Millisecond)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	key := func(i int) string { return fmt.Sprintf("mig-%d", i%24) }

	wg.Add(1)
	go func() { // expiring writes, some overwritten persistent
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r.SetEx(key(i), []byte("v"), time.Duration(2+i%6)*time.Millisecond)
			if i%9 == 0 {
				r.Set(key(i), []byte("p"))
			}
		}
	}()
	wg.Add(1)
	go func() { // readers
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r.Get(key(i))
			r.TTL(key(i))
			if i%5 == 0 {
				r.Persist(key(i))
			}
		}
	}()
	wg.Add(1)
	go func() { // the tier resizes underneath the traffic
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := r.Join("churn", extra); err != nil {
				t.Error(err)
				return
			}
			if _, err := r.Leave("churn"); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()
}
