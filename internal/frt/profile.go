package frt

import (
	"sort"
	"sync"
	"sync/atomic"
)

// profileDecayEvery halves a function's per-key byte counts after this many
// recorded accesses, so the profile tracks the *current* working set instead
// of everything the function ever touched. Counting records rather than
// reading a clock keeps the hot path clock-free and deterministic under
// simulated time.
const profileDecayEvery = 256

// profileMaxKeys caps the keys kept per function: when a decay pass still
// leaves more, only the hottest survive. Bounds both memory and the cost of
// the residency walk the heartbeat performs.
const profileMaxKeys = 32

// fnProfile is one function's decayed state-access profile: bytes addressed
// per key since the last halvings.
type fnProfile struct {
	keys    map[string]int64
	records int
}

// accessProfile aggregates guest state reads per function, feeding both
// sides of locality scoring: the footprint (how many state bytes a function
// pulls per execution, decayed) and the key set whose local residency the
// host advertises.
type accessProfile struct {
	mu  sync.Mutex
	fns map[string]*fnProfile

	// accessed totals bytes addressed through guest state reads, local or
	// remote (the local/remote split comes from the state tier's pull
	// counters).
	accessed atomic.Int64
}

func newAccessProfile() *accessProfile {
	return &accessProfile{fns: map[string]*fnProfile{}}
}

// record notes one guest state read of n bytes of key by fn.
func (p *accessProfile) record(fn, key string, n int64) {
	p.accessed.Add(n)
	p.mu.Lock()
	defer p.mu.Unlock()
	fp := p.fns[fn]
	if fp == nil {
		fp = &fnProfile{keys: map[string]int64{}}
		p.fns[fn] = fp
	}
	fp.keys[key] += n
	fp.records++
	if fp.records >= profileDecayEvery {
		fp.records = 0
		for k, v := range fp.keys {
			v /= 2
			if v == 0 {
				delete(fp.keys, k)
			} else {
				fp.keys[k] = v
			}
		}
		fp.trim()
	}
}

// trim keeps only the profileMaxKeys hottest keys. Caller holds p.mu.
func (fp *fnProfile) trim() {
	if len(fp.keys) <= profileMaxKeys {
		return
	}
	type kb struct {
		k string
		b int64
	}
	all := make([]kb, 0, len(fp.keys))
	for k, b := range fp.keys {
		all = append(all, kb{k, b})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].b > all[j].b })
	for _, e := range all[profileMaxKeys:] {
		delete(fp.keys, e.k)
	}
}

// footprint returns fn's total profiled state bytes (0 when fn has never
// read state here).
func (p *accessProfile) footprint(fn string) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	fp := p.fns[fn]
	if fp == nil {
		return 0
	}
	var total int64
	for _, b := range fp.keys {
		total += b
	}
	return total
}

// keysOf returns a snapshot of fn's profiled keys and per-key bytes.
func (p *accessProfile) keysOf(fn string) map[string]int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	fp := p.fns[fn]
	if fp == nil || len(fp.keys) == 0 {
		return nil
	}
	out := make(map[string]int64, len(fp.keys))
	for k, b := range fp.keys {
		out[k] = b
	}
	return out
}
