package wavm

import (
	"fmt"

	"faasm.dev/faasm/internal/wamem"
)

// Validate type-checks every function body against the WebAssembly typing
// rules (operand-stack discipline, branch label arities, local/global/memory
// constraints) and resolves structured control flow into absolute branch
// targets. It corresponds to the trusted "code generation" phase of Fig 3:
// binaries arriving from untrusted user toolchains must pass here before
// they can ever execute.
//
// On success the module is marked Validated and its branch instructions
// carry (target PC, arity, stack height) immediates; the interpreter never
// re-derives control structure.
func Validate(m *Module) error {
	if m.Validated {
		return nil
	}
	if m.MemMax != 0 && m.MemMax < m.MemMin {
		return fmt.Errorf("wavm: memory max %d < min %d", m.MemMax, m.MemMin)
	}
	for i, imp := range m.Imports {
		if imp.Type < 0 || imp.Type >= len(m.Types) {
			return fmt.Errorf("wavm: import %d (%s.%s) has invalid type index", i, imp.Module, imp.Name)
		}
	}
	for i, g := range m.Globals {
		if g.Type > F64 {
			return fmt.Errorf("wavm: global %d has invalid type", i)
		}
	}
	numFuncs := len(m.Imports) + len(m.Funcs)
	for i, t := range m.Table {
		if t < -1 || int(t) >= numFuncs {
			return fmt.Errorf("wavm: table element %d references invalid function %d", i, t)
		}
	}
	for i, d := range m.Data {
		end := int64(d.Offset) + int64(len(d.Bytes))
		if end > int64(m.MemMin)*wamem.PageSize {
			return fmt.Errorf("wavm: data segment %d [%d,%d) outside initial memory", i, d.Offset, end)
		}
	}
	if m.Start >= 0 {
		ft, err := m.FuncTypeAt(m.Start)
		if err != nil {
			return err
		}
		if len(ft.Params) != 0 || len(ft.Results) != 0 {
			return fmt.Errorf("wavm: start function must have empty signature, has %s", ft)
		}
	}
	for _, e := range m.Exports {
		if e.Kind == ExportFunc && (e.Index < 0 || e.Index >= numFuncs) {
			return fmt.Errorf("wavm: export %q references invalid function %d", e.Name, e.Index)
		}
	}
	for fi := range m.Funcs {
		if err := validateFunc(m, fi); err != nil {
			return fmt.Errorf("wavm: func %d (%s): %w", fi+len(m.Imports), m.Funcs[fi].Name, err)
		}
	}
	m.Validated = true
	return nil
}

// unknownType is the polymorphic type used in unreachable code.
const unknownType ValueType = 0xff

// ctrlFrame tracks one structured-control scope during validation.
type ctrlFrame struct {
	op          Op // OpBlock, OpLoop, OpIf, or OpNop for the function frame
	startHeight int
	arity       int       // result arity (0 or 1)
	resultType  ValueType // valid when arity == 1
	unreachable bool
	hasElse     bool
	// loopStart is the branch target for loops (backward, known at entry).
	loopStart int32
	// Forward patches filled in when End is reached.
	patchInstrs []int // Br/BrIf/If/Else instruction indices whose A awaits end PC
	patchTables []tablePatch
	ifPC        int // PC of the If instruction, for else patching
}

type tablePatch struct{ table, entry int }

type validator struct {
	m        *Module
	fn       *Function
	locals   []ValueType
	stack    []ValueType
	ctrl     []ctrlFrame
	maxStack int
}

func validateFunc(m *Module, fi int) error {
	fn := &m.Funcs[fi]
	if fn.Type < 0 || fn.Type >= len(m.Types) {
		return fmt.Errorf("invalid type index %d", fn.Type)
	}
	ft := m.Types[fn.Type]
	if len(ft.Results) > 1 {
		return fmt.Errorf("multi-result functions not supported")
	}
	v := &validator{m: m, fn: fn}
	v.locals = append(v.locals, ft.Params...)
	v.locals = append(v.locals, fn.Locals...)
	root := ctrlFrame{op: OpNop, arity: len(ft.Results)}
	if root.arity == 1 {
		root.resultType = ft.Results[0]
	}
	v.ctrl = append(v.ctrl, root)

	for pc := 0; pc < len(fn.Code); pc++ {
		if err := v.step(pc); err != nil {
			return fmt.Errorf("pc %d (%s): %w", pc, fn.Code[pc].Op, err)
		}
	}
	if len(v.ctrl) != 1 {
		return fmt.Errorf("unbalanced control flow: %d frames open", len(v.ctrl))
	}
	// Close the implicit function frame: results must be on the stack, and
	// branches to it jump past the end of the code (the interpreter's
	// return point).
	f := &v.ctrl[0]
	endPC := int32(len(fn.Code))
	for _, i := range f.patchInstrs {
		fn.Code[i].A = endPC
	}
	for _, tp := range f.patchTables {
		fn.BrTables[tp.table][tp.entry].PC = endPC
	}
	if !f.unreachable {
		if err := v.checkFrameResults(f); err != nil {
			return err
		}
		if len(v.stack) != f.arity {
			return fmt.Errorf("function leaves %d values on the stack, wants %d", len(v.stack), f.arity)
		}
	}
	fn.MaxStack = v.maxStack + 2 // headroom for the branch-copy slot
	return nil
}

func (v *validator) push(t ValueType) {
	v.stack = append(v.stack, t)
	if len(v.stack) > v.maxStack {
		v.maxStack = len(v.stack)
	}
}

func (v *validator) pop(want ValueType) error {
	f := &v.ctrl[len(v.ctrl)-1]
	if len(v.stack) == f.startHeight {
		if f.unreachable {
			return nil // polymorphic
		}
		return fmt.Errorf("stack underflow, wanted %s", want)
	}
	got := v.stack[len(v.stack)-1]
	v.stack = v.stack[:len(v.stack)-1]
	if got != want && got != unknownType && want != unknownType {
		return fmt.Errorf("type mismatch: got %s, wanted %s", got, want)
	}
	return nil
}

// popAny pops a value of any type, returning it (may be unknownType).
func (v *validator) popAny() (ValueType, error) {
	f := &v.ctrl[len(v.ctrl)-1]
	if len(v.stack) == f.startHeight {
		if f.unreachable {
			return unknownType, nil
		}
		return 0, fmt.Errorf("stack underflow")
	}
	got := v.stack[len(v.stack)-1]
	v.stack = v.stack[:len(v.stack)-1]
	return got, nil
}

func (v *validator) markUnreachable() {
	f := &v.ctrl[len(v.ctrl)-1]
	f.unreachable = true
	v.stack = v.stack[:f.startHeight]
}

// labelArity returns the branch arity and type of a label: loops take no
// values (MVP loop labels have empty parameters), other frames take their
// results.
func labelArity(f *ctrlFrame) (int, ValueType) {
	if f.op == OpLoop {
		return 0, 0
	}
	return f.arity, f.resultType
}

// checkBranch verifies the stack satisfies a branch to depth d and fills the
// instruction's arity/height immediates. Returns the frame.
func (v *validator) checkBranch(d int32, pc int) (*ctrlFrame, error) {
	if int(d) >= len(v.ctrl) {
		return nil, fmt.Errorf("branch depth %d exceeds nesting %d", d, len(v.ctrl))
	}
	f := &v.ctrl[len(v.ctrl)-1-int(d)]
	arity, rt := labelArity(f)
	cur := &v.ctrl[len(v.ctrl)-1]
	if !cur.unreachable {
		if arity == 1 {
			if len(v.stack) < 1 {
				return nil, fmt.Errorf("branch wants a %s on the stack", rt)
			}
			top := v.stack[len(v.stack)-1]
			if top != rt && top != unknownType {
				return nil, fmt.Errorf("branch value type %s, wanted %s", top, rt)
			}
		}
		if len(v.stack)-arity < f.startHeight {
			return nil, fmt.Errorf("branch would underflow target frame")
		}
	}
	in := &v.fn.Code[pc]
	in.B = int32(arity)
	in.C = int64(f.startHeight)
	return f, nil
}

func (v *validator) checkFrameResults(f *ctrlFrame) error {
	if f.arity == 0 {
		return nil
	}
	if len(v.stack) < f.startHeight+f.arity {
		if f.unreachable {
			return nil
		}
		return fmt.Errorf("block must leave a %s on the stack", f.resultType)
	}
	top := v.stack[len(v.stack)-1]
	if top != f.resultType && top != unknownType {
		return fmt.Errorf("block result type %s, wanted %s", top, f.resultType)
	}
	return nil
}

func (v *validator) step(pc int) error {
	in := &v.fn.Code[pc]
	switch in.Op {
	case OpNop:
		return nil
	case OpUnreachable:
		v.markUnreachable()
		return nil

	case OpBlock, OpLoop, OpIf:
		if in.Op == OpIf {
			if err := v.pop(I32); err != nil {
				return err
			}
		}
		f := ctrlFrame{
			op:          in.Op,
			startHeight: len(v.stack),
			arity:       int(in.B),
			resultType:  ValueType(in.C),
			ifPC:        pc,
		}
		if in.Op == OpLoop {
			f.loopStart = int32(pc + 1)
		}
		v.ctrl = append(v.ctrl, f)
		// Blocks and loops are no-ops at runtime.
		in.A, in.B, in.C = 0, 0, 0
		return nil

	case OpElse:
		f := &v.ctrl[len(v.ctrl)-1]
		if f.op != OpIf || f.hasElse {
			return fmt.Errorf("else outside if")
		}
		if !f.unreachable {
			if err := v.checkFrameResults(f); err != nil {
				return err
			}
			if len(v.stack) != f.startHeight+f.arity {
				return fmt.Errorf("then branch leaves wrong stack height")
			}
		}
		f.hasElse = true
		f.unreachable = false
		v.stack = v.stack[:f.startHeight]
		// The If's false-jump lands just after this Else; the Else itself
		// (reached by falling out of the then branch) jumps to the end.
		// Earlier br patches targeting this frame are preserved.
		v.fn.Code[f.ifPC].A = int32(pc + 1)
		f.patchInstrs = append(f.patchInstrs, pc)
		return nil

	case OpEnd:
		if len(v.ctrl) <= 1 {
			return fmt.Errorf("end without open block")
		}
		f := v.ctrl[len(v.ctrl)-1]
		if !f.unreachable {
			if err := v.checkFrameResults(&f); err != nil {
				return err
			}
			if len(v.stack) != f.startHeight+f.arity {
				return fmt.Errorf("block leaves %d extra values", len(v.stack)-f.startHeight-f.arity)
			}
		}
		if f.op == OpIf && !f.hasElse && f.arity != 0 {
			return fmt.Errorf("if with a result must have an else branch")
		}
		endPC := int32(pc) // End is a runtime no-op; landing on it is fine
		if f.op == OpIf && !f.hasElse {
			v.fn.Code[f.ifPC].A = endPC // condition-false jump skips the body
		}
		for _, i := range f.patchInstrs {
			v.fn.Code[i].A = endPC
		}
		for _, tp := range f.patchTables {
			v.fn.BrTables[tp.table][tp.entry].PC = endPC
		}
		v.ctrl = v.ctrl[:len(v.ctrl)-1]
		// The frame's results become available to the enclosing frame.
		v.stack = v.stack[:f.startHeight]
		if f.arity == 1 {
			v.push(f.resultType)
		}
		return nil

	case OpBr:
		d := in.A
		f, err := v.checkBranch(d, pc)
		if err != nil {
			return err
		}
		if f.op == OpLoop {
			in.A = f.loopStart
		} else {
			f.patchInstrs = append(f.patchInstrs, pc)
		}
		v.markUnreachable()
		return nil

	case OpBrIf:
		if err := v.pop(I32); err != nil {
			return err
		}
		d := in.A
		f, err := v.checkBranch(d, pc)
		if err != nil {
			return err
		}
		if f.op == OpLoop {
			in.A = f.loopStart
		} else {
			f.patchInstrs = append(f.patchInstrs, pc)
		}
		// Fall-through keeps the stack: br_if peeks, it does not consume the
		// label values.
		return nil

	case OpBrTable:
		if err := v.pop(I32); err != nil {
			return err
		}
		ti := int(in.A)
		if ti < 0 || ti >= len(v.fn.BrTables) {
			return fmt.Errorf("invalid br_table index %d", ti)
		}
		targets := v.fn.BrTables[ti]
		wantArity := -1
		for ei := range targets {
			d := targets[ei].PC // still a depth here
			if int(d) >= len(v.ctrl) {
				return fmt.Errorf("br_table depth %d exceeds nesting", d)
			}
			f := &v.ctrl[len(v.ctrl)-1-int(d)]
			arity, rt := labelArity(f)
			if wantArity == -1 {
				wantArity = arity
			} else if arity != wantArity {
				return fmt.Errorf("br_table labels have mismatched arities")
			}
			cur := &v.ctrl[len(v.ctrl)-1]
			if !cur.unreachable && arity == 1 {
				if len(v.stack) < 1 {
					return fmt.Errorf("br_table wants a %s on the stack", rt)
				}
			}
			targets[ei].Arity = int32(arity)
			targets[ei].Height = int32(f.startHeight)
			if f.op == OpLoop {
				targets[ei].PC = f.loopStart
			} else {
				f.patchTables = append(f.patchTables, tablePatch{table: ti, entry: ei})
			}
		}
		v.markUnreachable()
		return nil

	case OpReturn:
		root := &v.ctrl[0]
		cur := &v.ctrl[len(v.ctrl)-1]
		if !cur.unreachable && root.arity == 1 {
			if len(v.stack) < 1 {
				return fmt.Errorf("return wants a %s", root.resultType)
			}
			top := v.stack[len(v.stack)-1]
			if top != root.resultType && top != unknownType {
				return fmt.Errorf("return type %s, wanted %s", top, root.resultType)
			}
		}
		in.B = int32(root.arity)
		v.markUnreachable()
		return nil

	case OpCall:
		ft, err := v.m.FuncTypeAt(int(in.A))
		if err != nil {
			return err
		}
		return v.applyCall(ft)

	case OpCallIndirect:
		if v.m.Table == nil {
			return fmt.Errorf("call_indirect without a table")
		}
		if int(in.A) < 0 || int(in.A) >= len(v.m.Types) {
			return fmt.Errorf("call_indirect references invalid type %d", in.A)
		}
		if err := v.pop(I32); err != nil {
			return err
		}
		return v.applyCall(v.m.Types[in.A])

	case OpDrop:
		_, err := v.popAny()
		return err

	case OpSelect:
		if err := v.pop(I32); err != nil {
			return err
		}
		b, err := v.popAny()
		if err != nil {
			return err
		}
		a, err := v.popAny()
		if err != nil {
			return err
		}
		if a != b && a != unknownType && b != unknownType {
			return fmt.Errorf("select operands disagree: %s vs %s", a, b)
		}
		if a == unknownType {
			a = b
		}
		v.push(a)
		return nil

	case OpLocalGet:
		t, err := v.localType(in.A)
		if err != nil {
			return err
		}
		v.push(t)
		return nil
	case OpLocalSet:
		t, err := v.localType(in.A)
		if err != nil {
			return err
		}
		return v.pop(t)
	case OpLocalTee:
		t, err := v.localType(in.A)
		if err != nil {
			return err
		}
		if err := v.pop(t); err != nil {
			return err
		}
		v.push(t)
		return nil
	case OpGlobalGet:
		g, err := v.globalAt(in.A)
		if err != nil {
			return err
		}
		v.push(g.Type)
		return nil
	case OpGlobalSet:
		g, err := v.globalAt(in.A)
		if err != nil {
			return err
		}
		if !g.Mutable {
			return fmt.Errorf("global %d is immutable", in.A)
		}
		return v.pop(g.Type)

	case OpMemorySize:
		if err := v.needMemory(); err != nil {
			return err
		}
		v.push(I32)
		return nil
	case OpMemoryGrow:
		if err := v.needMemory(); err != nil {
			return err
		}
		if err := v.pop(I32); err != nil {
			return err
		}
		v.push(I32)
		return nil
	case OpMemoryCopy, OpMemoryFill:
		if err := v.needMemory(); err != nil {
			return err
		}
		for i := 0; i < 3; i++ {
			if err := v.pop(I32); err != nil {
				return err
			}
		}
		return nil
	}

	// Memory access instructions.
	if isMemoryAccess(in.Op) {
		if err := v.needMemory(); err != nil {
			return err
		}
		if lt, ok := loadType(in.Op); ok {
			if err := v.pop(I32); err != nil {
				return err
			}
			v.push(lt)
			return nil
		}
		if st, ok := storeType(in.Op); ok {
			if err := v.pop(st); err != nil {
				return err
			}
			return v.pop(I32)
		}
	}

	// Constants and pure numeric operations via the signature table.
	if sig, ok := opSignatures[in.Op]; ok {
		for i := len(sig.in) - 1; i >= 0; i-- {
			if err := v.pop(sig.in[i]); err != nil {
				return err
			}
		}
		for _, t := range sig.out {
			v.push(t)
		}
		return nil
	}
	return fmt.Errorf("unknown opcode %d", in.Op)
}

func (v *validator) applyCall(ft FuncType) error {
	for i := len(ft.Params) - 1; i >= 0; i-- {
		if err := v.pop(ft.Params[i]); err != nil {
			return err
		}
	}
	for _, r := range ft.Results {
		v.push(r)
	}
	return nil
}

func (v *validator) localType(i int32) (ValueType, error) {
	if i < 0 || int(i) >= len(v.locals) {
		return 0, fmt.Errorf("local %d out of range (have %d)", i, len(v.locals))
	}
	return v.locals[i], nil
}

func (v *validator) globalAt(i int32) (*Global, error) {
	if i < 0 || int(i) >= len(v.m.Globals) {
		return nil, fmt.Errorf("global %d out of range", i)
	}
	return &v.m.Globals[i], nil
}

func (v *validator) needMemory() error {
	if v.m.MemMin == 0 {
		return fmt.Errorf("instruction requires a memory")
	}
	return nil
}

func loadType(op Op) (ValueType, bool) {
	switch op {
	case OpI32Load, OpI32Load8S, OpI32Load8U, OpI32Load16S, OpI32Load16U:
		return I32, true
	case OpI64Load, OpI64Load32S, OpI64Load32U:
		return I64, true
	case OpF32Load:
		return F32, true
	case OpF64Load:
		return F64, true
	}
	return 0, false
}

func storeType(op Op) (ValueType, bool) {
	switch op {
	case OpI32Store, OpI32Store8, OpI32Store16:
		return I32, true
	case OpI64Store, OpI64Store32:
		return I64, true
	case OpF32Store:
		return F32, true
	case OpF64Store:
		return F64, true
	}
	return 0, false
}

type opSig struct {
	in  []ValueType
	out []ValueType
}

var opSignatures = buildOpSignatures()

func buildOpSignatures() map[Op]opSig {
	s := map[Op]opSig{
		OpI32Const: {nil, []ValueType{I32}},
		OpI64Const: {nil, []ValueType{I64}},
		OpF32Const: {nil, []ValueType{F32}},
		OpF64Const: {nil, []ValueType{F64}},

		OpI32Eqz: {[]ValueType{I32}, []ValueType{I32}},
		OpI64Eqz: {[]ValueType{I64}, []ValueType{I32}},

		OpI32WrapI64:        {[]ValueType{I64}, []ValueType{I32}},
		OpI64ExtendI32S:     {[]ValueType{I32}, []ValueType{I64}},
		OpI64ExtendI32U:     {[]ValueType{I32}, []ValueType{I64}},
		OpI32TruncF64S:      {[]ValueType{F64}, []ValueType{I32}},
		OpI32TruncF64U:      {[]ValueType{F64}, []ValueType{I32}},
		OpI64TruncF64S:      {[]ValueType{F64}, []ValueType{I64}},
		OpI64TruncF64U:      {[]ValueType{F64}, []ValueType{I64}},
		OpI32TruncF32S:      {[]ValueType{F32}, []ValueType{I32}},
		OpI32TruncF32U:      {[]ValueType{F32}, []ValueType{I32}},
		OpF64ConvertI32S:    {[]ValueType{I32}, []ValueType{F64}},
		OpF64ConvertI32U:    {[]ValueType{I32}, []ValueType{F64}},
		OpF64ConvertI64S:    {[]ValueType{I64}, []ValueType{F64}},
		OpF64ConvertI64U:    {[]ValueType{I64}, []ValueType{F64}},
		OpF32ConvertI32S:    {[]ValueType{I32}, []ValueType{F32}},
		OpF32ConvertI64S:    {[]ValueType{I64}, []ValueType{F32}},
		OpF64PromoteF32:     {[]ValueType{F32}, []ValueType{F64}},
		OpF32DemoteF64:      {[]ValueType{F64}, []ValueType{F32}},
		OpI32ReinterpretF32: {[]ValueType{F32}, []ValueType{I32}},
		OpI64ReinterpretF64: {[]ValueType{F64}, []ValueType{I64}},
		OpF32ReinterpretI32: {[]ValueType{I32}, []ValueType{F32}},
		OpF64ReinterpretI64: {[]ValueType{I64}, []ValueType{F64}},
	}
	// i32 comparisons (binary, result i32).
	for op := OpI32Eq; op <= OpI32GeU; op++ {
		s[op] = opSig{[]ValueType{I32, I32}, []ValueType{I32}}
	}
	// i32 unary.
	for _, op := range []Op{OpI32Clz, OpI32Ctz, OpI32Popcnt} {
		s[op] = opSig{[]ValueType{I32}, []ValueType{I32}}
	}
	// i32 binary arithmetic.
	for op := OpI32Add; op <= OpI32Rotr; op++ {
		s[op] = opSig{[]ValueType{I32, I32}, []ValueType{I32}}
	}
	// i64 comparisons produce i32.
	for op := OpI64Eq; op <= OpI64GeU; op++ {
		s[op] = opSig{[]ValueType{I64, I64}, []ValueType{I32}}
	}
	for _, op := range []Op{OpI64Clz, OpI64Ctz, OpI64Popcnt} {
		s[op] = opSig{[]ValueType{I64}, []ValueType{I64}}
	}
	for op := OpI64Add; op <= OpI64Rotr; op++ {
		s[op] = opSig{[]ValueType{I64, I64}, []ValueType{I64}}
	}
	// f64 comparisons produce i32.
	for op := OpF64Eq; op <= OpF64Ge; op++ {
		s[op] = opSig{[]ValueType{F64, F64}, []ValueType{I32}}
	}
	for op := OpF64Abs; op <= OpF64Sqrt; op++ {
		s[op] = opSig{[]ValueType{F64}, []ValueType{F64}}
	}
	for op := OpF64Add; op <= OpF64Copysign; op++ {
		s[op] = opSig{[]ValueType{F64, F64}, []ValueType{F64}}
	}
	// f32.
	for op := OpF32Eq; op <= OpF32Ge; op++ {
		s[op] = opSig{[]ValueType{F32, F32}, []ValueType{I32}}
	}
	for _, op := range []Op{OpF32Abs, OpF32Neg, OpF32Sqrt} {
		s[op] = opSig{[]ValueType{F32}, []ValueType{F32}}
	}
	for op := OpF32Add; op <= OpF32Max; op++ {
		s[op] = opSig{[]ValueType{F32, F32}, []ValueType{F32}}
	}
	// f64.neg is in the unary range already (OpF64Abs..OpF64Sqrt covers Neg).
	return s
}
