// Package faasm is the public API of the FAASM reproduction: a serverless
// runtime executing functions inside Faaslets — the lightweight isolation
// abstraction of Shillaker & Pietzuch, "Faasm: Lightweight Isolation for
// Efficient Stateful Serverless Computing" (USENIX ATC 2020).
//
// A Runtime manages a pool of Faaslets on one host: functions are either
// modules for the built-in WebAssembly-style VM (compiled from the wat-like
// text format or the FC language) or native guests constrained to the same
// host interface. Faaslets share in-memory state through the two-tier state
// architecture, chain calls through the runtime, and restore from
// Proto-Faaslet snapshots in well under a millisecond.
//
// Quick start:
//
//	rt := faasm.NewRuntime(faasm.Config{})
//	rt.RegisterNative("hello", func(ctx *faasm.Ctx) (int32, error) {
//	    ctx.WriteOutput([]byte("hi " + string(ctx.Input())))
//	    return 0, nil
//	})
//	out, _, _ := rt.Call("hello", []byte("faasm"))
package faasm

import (
	"time"

	"faasm.dev/faasm/internal/core"
	"faasm.dev/faasm/internal/fcc"
	"faasm.dev/faasm/internal/frt"
	"faasm.dev/faasm/internal/hostapi"
	"faasm.dev/faasm/internal/kvs"
	"faasm.dev/faasm/internal/vfs"
	"faasm.dev/faasm/internal/wavm"
)

// Ctx is the host interface handle passed to native guests (Table 2 of the
// paper as Go methods).
type Ctx = core.Ctx

// NativeGuest is a function body executing against the host interface.
type NativeGuest = core.NativeGuest

// Module is a validated secure-IR module.
type Module = wavm.Module

// Proto is a Proto-Faaslet snapshot.
type Proto = core.Proto

// API is the platform-portable guest surface (also implemented by the
// container baseline used in the evaluation).
type API = hostapi.API

// Guest is a portable function body.
type Guest = hostapi.Guest

// Config configures a Runtime.
type Config struct {
	// Host names this runtime instance in the cluster (default "host-0").
	Host string
	// StoreAddr connects the global tier to a remote kvs server
	// (host:port); empty runs an in-process global tier.
	StoreAddr string
	// Files seeds the read-global filesystem tier.
	Files map[string][]byte
	// Capacity bounds concurrently executing calls (0 = unlimited).
	Capacity int
}

// Runtime is one FAASM host runtime.
type Runtime struct {
	inst   *frt.Instance
	client *kvs.Client
}

// NewRuntime starts a runtime.
func NewRuntime(cfg Config) *Runtime {
	var store kvs.Store
	var client *kvs.Client
	if cfg.StoreAddr != "" {
		client = kvs.NewClient(cfg.StoreAddr)
		store = client
	} else {
		store = kvs.NewEngine()
	}
	inst := frt.New(frt.Config{
		Host:     cfg.Host,
		Store:    store,
		Files:    vfs.NewMapGlobal(cfg.Files),
		Capacity: cfg.Capacity,
	})
	return &Runtime{inst: inst, client: client}
}

// RegisterNative deploys a native guest under name.
func (r *Runtime) RegisterNative(name string, fn NativeGuest) {
	r.inst.RegisterNative(name, fn)
}

// RegisterGuest deploys a portable guest under name.
func (r *Runtime) RegisterGuest(name string, g Guest) error {
	r.inst.RegisterNative(name, hostapi.WrapGuest(g))
	return nil
}

// WrapCtx adapts a native-guest Ctx to the portable API surface, e.g. to
// use distributed data objects from a native guest.
func WrapCtx(ctx *Ctx) API { return &hostapi.FaasmAPI{Ctx: ctx} }

// RegisterModule deploys a validated module under name.
func (r *Runtime) RegisterModule(name string, mod *Module) error {
	return r.inst.RegisterModule(name, mod)
}

// CompileText assembles and validates the wat-like text format — the full
// Fig 3 pipeline (untrusted compile, trusted codegen).
func CompileText(src string) (*Module, error) {
	return wavm.AssembleAndValidate(src)
}

// CompileFC compiles and validates FC source (the fcc toolchain).
func CompileFC(src string) (*Module, error) {
	return fcc.CompileAndValidate(src)
}

// Invoke starts an asynchronous call, returning its id.
func (r *Runtime) Invoke(function string, input []byte) (uint64, error) {
	return r.inst.Invoke(function, input)
}

// Await blocks until a call completes, returning its guest return code.
func (r *Runtime) Await(id uint64) (int32, error) { return r.inst.Await(id) }

// Output fetches a completed call's output bytes.
func (r *Runtime) Output(id uint64) ([]byte, error) { return r.inst.Output(id) }

// Call invokes synchronously: output bytes, return code, error.
func (r *Runtime) Call(function string, input []byte) ([]byte, int32, error) {
	return r.inst.Call(function, input)
}

// GenerateProto runs init inside a fresh Faaslet and snapshots it as the
// function's Proto-Faaslet (§5.2); subsequent cold starts restore from it.
func (r *Runtime) GenerateProto(function string, init func(ctx *Ctx) error) error {
	return r.inst.GenerateProto(function, init)
}

// SetState writes a value directly into the global tier.
func (r *Runtime) SetState(key string, val []byte) error {
	return r.inst.State().Global().Set(key, val)
}

// GetState reads a value from the global tier.
func (r *Runtime) GetState(key string) ([]byte, error) {
	return r.inst.State().Global().Get(key)
}

// Stats reports runtime counters.
type Stats struct {
	ColdStarts  int64
	WarmStarts  int64
	ProtoStarts int64
	Faaslets    int
	MedianExec  time.Duration
}

// Stats snapshots the runtime's counters.
func (r *Runtime) Stats() Stats {
	return Stats{
		ColdStarts:  r.inst.ColdStarts.Value(),
		WarmStarts:  r.inst.WarmStarts.Value(),
		ProtoStarts: r.inst.ProtoStarts.Value(),
		Faaslets:    r.inst.FaasletCount(),
		MedianExec:  r.inst.ExecLatency.Median(),
	}
}

// Shutdown releases the runtime's Faaslets.
func (r *Runtime) Shutdown() {
	r.inst.Shutdown()
	if r.client != nil {
		r.client.Close()
	}
}
