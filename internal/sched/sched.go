// Package sched implements the distributed shared-state scheduler of §5.1.
// FAASM runs one local scheduler per runtime instance; the set of warm hosts
// for every function lives in the global state tier, and each scheduler
// queries and atomically updates that set while deciding — the
// Omega-style [71] shared-state design the paper adopts.
//
// The decision rule, verbatim from the paper: execute locally if this host
// has a warm Faaslet and capacity; otherwise share the call with another
// warm host if one exists; otherwise cold-start locally (and advertise this
// host as warm). The goal is co-locating functions with the state they
// need, minimising data shipping.
package sched

import (
	"fmt"
	"sync"

	"faasm.dev/faasm/internal/kvs"
)

// Placement says where a call should run.
type Placement int

// Placements.
const (
	// PlaceLocalWarm executes on this host using a warm Faaslet.
	PlaceLocalWarm Placement = iota
	// PlaceForward shares the call with another warm host.
	PlaceForward
	// PlaceLocalCold cold-starts a Faaslet on this host.
	PlaceLocalCold
)

func (p Placement) String() string {
	switch p {
	case PlaceLocalWarm:
		return "local-warm"
	case PlaceForward:
		return "forward"
	case PlaceLocalCold:
		return "local-cold"
	}
	return "unknown"
}

// Decision is one scheduling outcome.
type Decision struct {
	Placement Placement
	// TargetHost is the peer to share with when Placement == PlaceForward.
	TargetHost string
}

// warmSetKey is the global-tier key holding a function's warm hosts.
func warmSetKey(fn string) string { return "sched/warm/" + fn }

// Scheduler is one host's local scheduler.
type Scheduler struct {
	host     string
	store    kvs.Store
	capacity int

	mu sync.Mutex
	// warm counts this host's idle warm Faaslets per function.
	warm map[string]int
	// inflight counts executing calls on this host.
	inflight int
	// rrState round-robins forwarding across peers.
	rr int

	// Decisions made, per placement, for the evaluation.
	Stats struct {
		LocalWarm int64
		Forwarded int64
		ColdStart int64
	}
}

// New creates a scheduler for host with the given concurrent-execution
// capacity (0 means effectively unlimited).
func New(host string, store kvs.Store, capacity int) *Scheduler {
	if capacity <= 0 {
		capacity = 1 << 30
	}
	return &Scheduler{host: host, store: store, capacity: capacity, warm: map[string]int{}}
}

// Host returns this scheduler's host name.
func (s *Scheduler) Host() string { return s.host }

// Schedule decides where a call to fn should run.
func (s *Scheduler) Schedule(fn string) (Decision, error) {
	s.mu.Lock()
	warmHere := s.warm[fn] > 0
	hasCapacity := s.inflight < s.capacity
	s.mu.Unlock()

	if warmHere && hasCapacity {
		s.mu.Lock()
		s.Stats.LocalWarm++
		s.mu.Unlock()
		return Decision{Placement: PlaceLocalWarm}, nil
	}

	// Query the shared warm set for another host.
	hosts, err := s.store.SMembers(warmSetKey(fn))
	if err != nil {
		return Decision{}, fmt.Errorf("sched: warm set for %s: %w", fn, err)
	}
	var peers []string
	for _, h := range hosts {
		if h != s.host {
			peers = append(peers, h)
		}
	}
	if len(peers) > 0 {
		// Share with a warm peer. Round-robin across them so load spreads.
		s.mu.Lock()
		target := peers[s.rr%len(peers)]
		s.rr++
		s.Stats.Forwarded++
		s.mu.Unlock()
		return Decision{Placement: PlaceForward, TargetHost: target}, nil
	}

	if warmHere {
		// Warm but at capacity with nowhere to share: still run locally
		// (queueing), matching the paper's behaviour under saturation.
		s.mu.Lock()
		s.Stats.LocalWarm++
		s.mu.Unlock()
		return Decision{Placement: PlaceLocalWarm}, nil
	}

	// Cold start here and advertise this host as warm for fn. SAdd is the
	// atomic update of the shared scheduler state.
	if _, err := s.store.SAdd(warmSetKey(fn), s.host); err != nil {
		return Decision{}, fmt.Errorf("sched: advertise warm %s: %w", fn, err)
	}
	s.mu.Lock()
	s.Stats.ColdStart++
	s.mu.Unlock()
	return Decision{Placement: PlaceLocalCold}, nil
}

// NoteWarm records that this host now holds n more idle warm Faaslets for
// fn (e.g. after a cold start completes or a call finishes), keeping the
// global warm set in sync.
func (s *Scheduler) NoteWarm(fn string, n int) error {
	s.mu.Lock()
	s.warm[fn] += n
	nowWarm := s.warm[fn] > 0
	s.mu.Unlock()
	if nowWarm {
		if _, err := s.store.SAdd(warmSetKey(fn), s.host); err != nil {
			return err
		}
	}
	return nil
}

// NoteEvicted records that this host dropped its warm Faaslets for fn,
// removing it from the shared warm set when none remain.
func (s *Scheduler) NoteEvicted(fn string, n int) error {
	s.mu.Lock()
	s.warm[fn] -= n
	if s.warm[fn] < 0 {
		s.warm[fn] = 0
	}
	empty := s.warm[fn] == 0
	s.mu.Unlock()
	if empty {
		if _, err := s.store.SRem(warmSetKey(fn), s.host); err != nil {
			return err
		}
	}
	return nil
}

// WarmCount reports this host's idle warm Faaslets for fn.
func (s *Scheduler) WarmCount(fn string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.warm[fn]
}

// WarmHosts lists the cluster's warm hosts for fn from the shared state.
func (s *Scheduler) WarmHosts(fn string) ([]string, error) {
	return s.store.SMembers(warmSetKey(fn))
}

// Begin marks a call executing on this host (capacity accounting).
func (s *Scheduler) Begin() {
	s.mu.Lock()
	s.inflight++
	s.mu.Unlock()
}

// End marks a call finished.
func (s *Scheduler) End() {
	s.mu.Lock()
	s.inflight--
	if s.inflight < 0 {
		s.inflight = 0
	}
	s.mu.Unlock()
}

// Inflight reports executing calls.
func (s *Scheduler) Inflight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inflight
}
