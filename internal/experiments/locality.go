package experiments

import (
	"fmt"
	"sync"
	"time"

	"faasm.dev/faasm/internal/cluster"
	"faasm.dev/faasm/internal/hostapi"
	"faasm.dev/faasm/internal/workloads/dmatmul"
	"faasm.dev/faasm/internal/workloads/sgd"
)

// localityWarmSentinel is the input that makes a warmable worker return
// without touching state. It is 13 bytes long; every real worker input in
// the sgd and dmatmul wire formats is a fixed other size, so the sentinel
// can never collide with genuine work.
const localityWarmSentinel = "locality-warm"

// Locality measures locality-aware forwarding end to end: the same stateful
// workload (Fig 6 SGD training, then distributed matmul) runs on a 4-host
// simnet cluster with the locality weight off and on, and the gate demands
// the weight cut remote state-tier bytes by >=50% without slowing rounds.
//
// The scenario forces the scheduler to choose between a data-free and a
// data-home peer: host 0 runs the workload once (pulling the dataset, so
// its access profile and residency adverts cover it), hosts 1-2 are warmed
// for the worker functions via the sentinel (warm adverts, no data), and
// host 3 then drives rounds through a driver alias that cold-starts locally
// and forwards every worker. With the weight off, forwarding follows
// latency x load and sprays workers across all warm peers, each pulling its
// share of the dataset; with the weight on, the residency riding host 0's
// lease steers workers home and the data never moves.
func Locality(opts Options) *Report {
	r := &Report{
		ID:     "locality",
		Title:  "Locality-aware forwarding: remote state bytes, weight off vs on",
		Header: []string{"workload", "locality", "remote state", "hit rate", "saved", "round time", "status"},
	}

	for _, wl := range []string{"sgd", "dmatmul"} {
		off, err := runLocality(wl, 0, opts.Quick)
		if err != nil {
			r.Add(wl, "gate", "error: "+err.Error(), "", "", "", "FAILED")
			continue
		}
		on, err := runLocality(wl, 32, opts.Quick)
		if err != nil {
			r.Add(wl, "gate", "error: "+err.Error(), "", "", "", "FAILED")
			continue
		}

		r.Add(wl, "off", mb(off.pulledBytes), "-", "-",
			fmt.Sprintf("%.1f ms", off.perRound.Seconds()*1e3), "")
		hitRate := "-"
		if scored := on.hits + on.misses; scored > 0 {
			hitRate = fmt.Sprintf("%.0f%%", 100*float64(on.hits)/float64(scored))
		}
		r.Add(wl, "w=32", mb(on.pulledBytes), hitRate, mb(on.savedBytes),
			fmt.Sprintf("%.1f ms", on.perRound.Seconds()*1e3), "")

		status := "OK"
		reduction := 0.0
		if off.pulledBytes > 0 {
			reduction = 1 - float64(on.pulledBytes)/float64(off.pulledBytes)
		}
		if reduction < 0.5 {
			status = "FAILED"
		}
		r.Add(wl, "gate", fmt.Sprintf("%.0f%% fewer remote bytes", 100*reduction),
			"", "", "", status)
	}

	r.Note("both modes run the identical prime/warm/drive sequence; only the scheduler's -locality-weight differs, so every remote byte saved is attributable to placement")
	r.Note("sgd runs on a 2-shard co-located tier (CoLocateShards), so shard-primary credit is exercised alongside pulled-replica residency; dmatmul runs on the single-engine tier")
	r.Note("round time is wall clock for the measured rounds and is reported for parity only — the gate is bytes; warm-invoke latency parity is guarded separately by BenchmarkWarmInvokeThroughput")
	return r
}

type localityRun struct {
	pulledBytes int64 // state-tier bytes pulled across all hosts, measured rounds only
	hits        int64
	misses      int64
	savedBytes  int64
	perRound    time.Duration
}

// warmable wraps a worker guest so the warm sentinel exercises the cold
// start (advertising the function on the host) without touching state.
func warmable(g hostapi.Guest) hostapi.Guest {
	return func(api hostapi.API) (int32, error) {
		if string(api.Input()) == localityWarmSentinel {
			return 0, nil
		}
		return g(api)
	}
}

func runLocality(workload string, weight float64, quick bool) (localityRun, error) {
	// TimeScale 1 (like the elastic experiment): liveness leases are judged
	// on the experiment clock, and at 100× every millisecond a host spends
	// on real matrix math ages its lease by 100 ms — a busy data home would
	// flap dead mid-burst, be evicted from warm sets, and both modes would
	// measure lease churn instead of placement.
	cfg := cluster.Config{
		Mode:           cluster.ModeFaasm,
		Hosts:          4,
		TimeScale:      1,
		LocalityWeight: weight,
		LeaseTTL:       250 * time.Millisecond,
		PeerCacheTTL:   2 * time.Millisecond,
	}
	if workload == "sgd" {
		cfg.StateShards = 2
		cfg.CoLocateShards = true
	}
	c := cluster.New(cfg)
	defer c.Shutdown()

	// Register the workload: workers are warmable, and the driver rides an
	// alias of the real main so measurement calls cold-start on the entry
	// host instead of forwarding to the primed data home.
	var mainFn, driverFn string
	var input []byte
	var workers []string
	switch workload {
	case "sgd":
		p := sgd.DefaultParams()
		p.Examples, p.Features, p.NNZ = 2048, 1024, 32
		p.Epochs, p.Workers, p.PushEvery = 2, 6, 256
		if quick {
			p.Examples, p.Features, p.NNZ = 512, 256, 16
			p.Epochs, p.Workers, p.PushEvery = 1, 4, 128
		}
		// The sgd weight updates are HOGWILD — co-located workers race on
		// the shared weights replica by design. This experiment's gate runs
		// under -race in CI, so serialize the updates here: the gate
		// measures placement and bytes moved, which a mutex cannot change.
		var updateMu sync.Mutex
		serialUpdate := func(api hostapi.API) (int32, error) {
			updateMu.Lock()
			defer updateMu.Unlock()
			return sgd.WeightUpdate(api)
		}
		if err := c.Register("sgd-update", warmable(serialUpdate)); err != nil {
			return localityRun{}, err
		}
		if err := c.Register("sgd-main", sgd.Main); err != nil {
			return localityRun{}, err
		}
		if err := c.Register("sgd-driver", sgd.Main); err != nil {
			return localityRun{}, err
		}
		if err := sgd.Generate(p).Seed(c); err != nil {
			return localityRun{}, err
		}
		mainFn, driverFn, input = "sgd-main", "sgd-driver", sgd.EncodeMain(p)
		workers = []string{"sgd-update"}
	case "dmatmul":
		// Depth 1 keeps the chain fan-out (8 mults) inside the locality
		// weight's regime: the blend weighs rather than pins, so a fan-out
		// whose inflight factor exceeds 1+weight would legitimately spill
		// to data-free peers and measure load shedding, not locality.
		p := dmatmul.Params{N: 192, Depth: 1, Seed: 7}
		if quick {
			p = dmatmul.Params{N: 64, Depth: 1, Seed: 7}
		}
		a, b := dmatmul.Generate(p)
		if err := dmatmul.Seed(c, p, a, b); err != nil {
			return localityRun{}, err
		}
		if err := c.Register("mm-mult", warmable(dmatmul.Mult)); err != nil {
			return localityRun{}, err
		}
		if err := c.Register("mm-merge", warmable(dmatmul.Merge)); err != nil {
			return localityRun{}, err
		}
		if err := c.Register("mm-main", dmatmul.Main); err != nil {
			return localityRun{}, err
		}
		if err := c.Register("mm-driver", dmatmul.Main); err != nil {
			return localityRun{}, err
		}
		mainFn, driverFn, input = "mm-main", "mm-driver", dmatmul.MainInput(p)
		workers = []string{"mm-mult", "mm-merge"}
	default:
		return localityRun{}, fmt.Errorf("unknown workload %q", workload)
	}

	// Establish the data home: one full run on host 0 pulls the dataset
	// there and fills its access profile.
	if _, ret, err := c.CallOn(0, mainFn, input); err != nil || ret != 0 {
		return localityRun{}, fmt.Errorf("prime %s: ret=%d err=%v", mainFn, ret, err)
	}
	// Warm hosts 1-2 for the workers (adverts without data) so the
	// forwarder has data-free alternatives to reject.
	for _, h := range []int{1, 2} {
		for _, fn := range workers {
			if _, ret, err := c.Instance(h).ExecuteLocal(fn, []byte(localityWarmSentinel)); err != nil || ret != 0 {
				return localityRun{}, fmt.Errorf("warm %s on host %d: ret=%d err=%v", fn, h, ret, err)
			}
		}
	}
	// Publish every host's warm adverts and residency before measuring.
	for h := 0; h < cfg.Hosts; h++ {
		if err := c.Instance(h).Scheduler().Heartbeat(); err != nil {
			return localityRun{}, fmt.Errorf("heartbeat host %d: %v", h, err)
		}
	}

	rounds := 3
	if quick {
		rounds = 2
	}
	base := localitySnapshot(c, cfg.Hosts)
	start := time.Now()
	for i := 0; i < rounds; i++ {
		if _, ret, err := c.CallOn(3, driverFn, input); err != nil || ret != 0 {
			return localityRun{}, fmt.Errorf("round %d %s: ret=%d err=%v", i, driverFn, ret, err)
		}
	}
	elapsed := time.Since(start)
	cur := localitySnapshot(c, cfg.Hosts)

	return localityRun{
		pulledBytes: cur.pulled - base.pulled,
		hits:        cur.hits - base.hits,
		misses:      cur.misses - base.misses,
		savedBytes:  cur.saved - base.saved,
		perRound:    elapsed / time.Duration(rounds),
	}, nil
}

type localitySnap struct {
	pulled, hits, misses, saved int64
}

func localitySnapshot(c *cluster.Cluster, hosts int) localitySnap {
	var s localitySnap
	for h := 0; h < hosts; h++ {
		inst := c.Instance(h)
		s.pulled += inst.State().Pulled.Value()
		sc := inst.Scheduler()
		s.hits += sc.Stats.LocalityHits.Load()
		s.misses += sc.Stats.LocalityMisses.Load()
		s.saved += sc.Stats.LocalitySavedBytes.Load()
	}
	return s
}

func mb(n int64) string {
	return fmt.Sprintf("%.2f MB", float64(n)/(1<<20))
}
