package frt

import (
	"errors"
	"time"

	"faasm.dev/faasm/internal/core"
)

// elasticLoop is the warm-pool autoscaler (Config.ElasticPool). Once per
// ElasticInterval it reads each function's demand counters and either grows
// the pool ahead of demand or reclaims it after idleness. It is a background
// goroutine in the same sense as the resetters: nothing on a call's critical
// path ever waits for it.
func (i *Instance) elasticLoop() {
	defer close(i.elasticDone)
	interval := i.cfg.ElasticInterval
	if interval <= 0 {
		interval = defaultElasticInterval
	}
	for {
		i.clock.Sleep(interval)
		select {
		case <-i.elasticStop:
			return
		default:
		}
		i.elasticTick()
	}
}

// elasticTick runs one controller pass over every function pool.
func (i *Instance) elasticTick() {
	grow := i.cfg.PoolGrowFactor
	if grow <= 0 {
		grow = defaultPoolGrowFactor
	}
	idleTimeout := i.cfg.PoolIdleTimeout
	if idleTimeout <= 0 {
		idleTimeout = defaultPoolIdleTimeout
	}
	now := i.clock.Now()
	i.pools.Range(func(k, v any) bool {
		fn := k.(string)
		p := v.(*fnPool)

		p.mu.Lock()
		newAcquires := p.acquires - p.seenAcquires
		newMisses := p.misses - p.seenMisses
		p.seenAcquires = p.acquires
		p.seenMisses = p.misses
		if newAcquires > 0 {
			p.idleSince = time.Time{}
		} else if p.idleSince.IsZero() {
			p.idleSince = now
		}
		idleFor := time.Duration(0)
		if !p.idleSince.IsZero() {
			idleFor = now.Sub(p.idleSince)
		}
		idleCount := len(p.idle)
		pooled := len(p.idle) + p.resetting
		p.mu.Unlock()

		switch {
		case newMisses > 0:
			// Calls paid cold starts on their critical path this tick: grow
			// ahead so the next ramp step finds the pool already provisioned.
			want := int(float64(newMisses) * grow)
			if want < 1 {
				want = 1
			}
			if room := i.cfg.PoolCap - pooled; want > room {
				want = room
			}
			i.prewarm(fn, want)
		case newAcquires == 0 && idleCount > 0 && idleFor >= idleTimeout:
			// The pool sat unused for a full idle window: reclaim half its
			// idle Faaslets per tick (exponential decay, so a briefly idle
			// pool is not emptied in one shot).
			i.reclaimIdle(fn, p, (idleCount+1)/2)
		}
		return true
	})
}

// prewarm pre-provisions up to n reset Faaslets for fn, making the misses
// that drove the growth the last ones to pay a cold start inline. A freshly
// created Faaslet is clean by construction, so it enters the idle pool
// directly — the same state a background reset leaves a pooled one in.
func (i *Instance) prewarm(fn string, n int) {
	def, ok := i.def(fn)
	if !ok {
		return
	}
	for j := 0; j < n; j++ {
		// The provisioning cost is paid here, off every call's critical path
		// (this is the entire point of growing ahead).
		if i.cfg.ColdStartDelay > 0 {
			i.clock.Sleep(i.cfg.ColdStartDelay)
		}
		i.shutMu.RLock()
		if i.closed.Load() || i.killed.Load() || i.draining.Load() {
			i.shutMu.RUnlock()
			return
		}
		var f *core.Faaslet
		var err error
		if proto := i.proto(fn); proto != nil {
			f, err = core.NewFromProto(def, i.env, proto)
			i.ProtoStarts.Add(1)
		} else {
			f, err = core.New(def, i.env)
		}
		if err != nil {
			i.shutMu.RUnlock()
			return
		}
		p := i.poolFor(fn)
		p.mu.Lock()
		if len(p.idle)+p.resetting >= i.cfg.PoolCap {
			p.mu.Unlock()
			i.shutMu.RUnlock()
			f.Close()
			return
		}
		p.idle = append(p.idle, f)
		p.live++
		p.cond.Broadcast()
		p.mu.Unlock()
		i.faasletCount.Add(1)
		i.Prewarmed.Add(1)
		i.sched.NoteWarm(fn, 1)
		i.shutMu.RUnlock()
	}
}

// reclaimIdle evicts up to n idle Faaslets from fn's pool, feeding the
// evictions through the scheduler so the global warm set stays truthful: the
// idle count drops, and when the last live Faaslet goes the host retreats
// from sched/warm/<fn> entirely.
func (i *Instance) reclaimIdle(fn string, p *fnPool, n int) {
	p.mu.Lock()
	if n > len(p.idle) {
		n = len(p.idle)
	}
	if n == 0 {
		p.mu.Unlock()
		return
	}
	victims := make([]*core.Faaslet, n)
	copy(victims, p.idle[len(p.idle)-n:])
	for j := len(p.idle) - n; j < len(p.idle); j++ {
		p.idle[j] = nil
	}
	p.idle = p.idle[:len(p.idle)-n]
	p.live -= n
	last := p.live == 0
	p.mu.Unlock()

	for _, f := range victims {
		f.Close()
	}
	i.faasletCount.Add(int64(-n))
	i.IdleReclaims.Add(int64(n))
	i.sched.NoteEvicted(fn, n)
	if last {
		i.sched.Retreat(fn)
	}
}

// stopElastic ends the controller goroutine (idempotent; no-op when
// ElasticPool is off).
func (i *Instance) stopElastic() {
	if i.elasticStop == nil {
		return
	}
	i.elasticOnce.Do(func() { close(i.elasticStop) })
}

// Kill simulates a host crash for tests and experiments: the instance stops
// heartbeating and refuses all work — including forwarded work from peers —
// but deliberately retreats from nothing. Its entries in the global warm set
// linger exactly as a crashed host's would, and peers must discover the
// death through lease expiry (plus the transport-failure fallback in the
// meantime).
func (i *Instance) Kill() {
	i.killed.Store(true)
	i.sched.StopHeartbeat()
	i.stopElastic()
}

// Killed reports whether Kill was called.
func (i *Instance) Killed() bool { return i.killed.Load() }

// ErrDraining marks work refused because the instance is gracefully
// stopping. Forwarding peers treat it like any transport failure — fall back
// locally and drop the stale peer-set cache — so a drain never fails a call.
var ErrDraining = errors.New("draining")

// Drain begins a graceful stop. The instance retreats from every warm set
// and stops heartbeating (the liveness lease expires tier-side within one
// TTL, after which no peer forwards here), the elastic controller stops
// growing pools, and forwarded-in work is refused so callers fall back.
// Calls already in flight — local or forwarded — run to completion, and
// calls entered locally during the drain still execute (forwarded away when
// a warm peer exists). Reclaim the instance with Shutdown once Inflight
// reaches zero. Idempotent; returns the warm-set retreat error, if any
// (the expiring lease drains traffic regardless).
func (i *Instance) Drain() error {
	if i.draining.Swap(true) {
		return nil
	}
	i.stopElastic()
	return i.sched.Drain()
}

// Draining reports whether Drain was called.
func (i *Instance) Draining() bool { return i.draining.Load() }

// Inflight reports calls currently executing on this host. A draining
// instance with zero in-flight calls is safe to Shutdown.
func (i *Instance) Inflight() int { return i.sched.Inflight() }
