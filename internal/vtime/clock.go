// Package vtime provides the clock abstraction used throughout the runtime.
//
// Real deployments use the wall clock. The cluster simulator uses a
// deterministic event-driven virtual clock so that macro experiments
// (training runs, latency distributions, cold-start storms) are reproducible
// and fast regardless of the host machine.
package vtime

import (
	"container/heap"
	"sync"
	"time"
)

// Clock abstracts time for the runtime and the simulator.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Sleep blocks the caller for d of this clock's time.
	Sleep(d time.Duration)
}

// Real is a Clock backed by the wall clock.
type Real struct{}

// Now returns the wall-clock time.
func (Real) Now() time.Time { return time.Now() }

// Sleep blocks for wall-clock duration d.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// Virtual is a deterministic discrete-event clock. Goroutines that sleep on a
// Virtual clock are suspended until the simulation driver advances time past
// their deadline. Virtual time only moves when Advance or Run is called.
type Virtual struct {
	mu      sync.Mutex
	now     time.Time
	waiters waiterHeap
	seq     int64
}

// NewVirtual returns a virtual clock starting at the zero time plus one hour,
// so that subtracting small durations never underflows.
func NewVirtual() *Virtual {
	return &Virtual{now: time.Unix(0, 0).Add(time.Hour)}
}

type waiter struct {
	deadline time.Time
	seq      int64
	ch       chan struct{}
}

type waiterHeap []*waiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if h[i].deadline.Equal(h[j].deadline) {
		return h[i].seq < h[j].seq
	}
	return h[i].deadline.Before(h[j].deadline)
}
func (h waiterHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *waiterHeap) Push(x interface{}) { *h = append(*h, x.(*waiter)) }
func (h *waiterHeap) Pop() interface{} {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return w
}

// Now returns the current virtual time.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Sleep blocks until the virtual clock advances past now+d. A non-positive
// duration returns immediately.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	v.mu.Lock()
	w := &waiter{deadline: v.now.Add(d), seq: v.seq, ch: make(chan struct{})}
	v.seq++
	heap.Push(&v.waiters, w)
	v.mu.Unlock()
	<-w.ch
}

// Advance moves virtual time forward by d, waking every sleeper whose
// deadline has passed, in deadline order.
func (v *Virtual) Advance(d time.Duration) {
	v.mu.Lock()
	target := v.now.Add(d)
	v.advanceToLocked(target)
	v.mu.Unlock()
}

// AdvanceTo moves virtual time to t if t is later than the current time.
func (v *Virtual) AdvanceTo(t time.Time) {
	v.mu.Lock()
	v.advanceToLocked(t)
	v.mu.Unlock()
}

func (v *Virtual) advanceToLocked(target time.Time) {
	for v.waiters.Len() > 0 {
		next := v.waiters[0]
		if next.deadline.After(target) {
			break
		}
		heap.Pop(&v.waiters)
		if next.deadline.After(v.now) {
			v.now = next.deadline
		}
		close(next.ch)
	}
	if target.After(v.now) {
		v.now = target
	}
}

// NextDeadline reports the earliest pending sleeper deadline, if any.
func (v *Virtual) NextDeadline() (time.Time, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.waiters.Len() == 0 {
		return time.Time{}, false
	}
	return v.waiters[0].deadline, true
}

// Pending reports the number of goroutines blocked in Sleep.
func (v *Virtual) Pending() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.waiters.Len()
}

// RunUntilIdle repeatedly advances to the next sleeper deadline until no
// sleepers remain. The settle callback, if non-nil, is invoked after each
// advance to let the caller yield to worker goroutines (e.g. runtime.Gosched
// loops); RunUntilIdle already yields between steps.
func (v *Virtual) RunUntilIdle(settle func()) {
	for {
		t, ok := v.NextDeadline()
		if !ok {
			return
		}
		v.AdvanceTo(t)
		if settle != nil {
			settle()
		}
	}
}
