// Package inference implements the machine-learning inference workload of
// §6.3: latency-sensitive model serving. The paper serves MobileNet through
// TensorFlow Lite; TFLite and its model weights are closed-world inputs we
// cannot ship, so this package substitutes "mobilenet-lite" — a small
// depthwise-separable convolutional network in pure Go with weights held in
// state — which preserves what Fig 7 measures: a fixed per-request compute
// cost served behind cold starts of very different prices on the two
// platforms.
//
// Each user's first request lands on a fresh function instance (the paper's
// per-user instances), so the cold-start ratio of the request stream is the
// experiment's control variable.
package inference

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"

	"faasm.dev/faasm/internal/hostapi"
)

// Model geometry: 16×16 grayscale input, two depthwise-separable blocks,
// global pool, 10-class head.
const (
	InputDim   = 16
	Chan1      = 8
	Chan2      = 16
	NumClasses = 10
)

// KeyWeights is the state key holding the packed model.
const KeyWeights = "mnet/weights"

// WeightCount returns the number of float64 parameters.
func WeightCount() int {
	conv1 := 3*3*1*Chan1 + Chan1                // 3×3 conv, 1→8
	dw2 := 3*3*Chan1 + Chan1                    // depthwise 3×3
	pw2 := Chan1*Chan2 + Chan2                  // pointwise 8→16
	head := (InputDim / 4) * (InputDim / 4) * 0 // pooled spatially to scalar per channel
	_ = head
	fc := Chan2*NumClasses + NumClasses
	return conv1 + dw2 + pw2 + fc
}

// GenerateWeights builds a deterministic random model blob.
func GenerateWeights(seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	n := WeightCount()
	buf := make([]byte, n*8)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(rng.NormFloat64()*0.3))
	}
	return buf
}

// GenerateImage builds one input image blob (InputDim² float64s): a random
// oriented grating plus noise, so different images excite genuinely
// different filters.
func GenerateImage(seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	fx := rng.Float64()*2 - 1
	fy := rng.Float64()*2 - 1
	phase := rng.Float64() * 2 * math.Pi
	buf := make([]byte, InputDim*InputDim*8)
	for y := 0; y < InputDim; y++ {
		for x := 0; x < InputDim; x++ {
			v := math.Sin(fx*float64(x)+fy*float64(y)+phase) + 0.3*rng.NormFloat64()
			binary.LittleEndian.PutUint64(buf[(y*InputDim+x)*8:], math.Float64bits(v))
		}
	}
	return buf
}

// Config adjusts the guest's execution.
type Config struct {
	// ComputePasses re-runs the forward pass to model execution-engine
	// overhead: the paper's FAASM inference is slower than native because
	// TensorFlow Lite compiled to WebAssembly loses optimisations. 1 for
	// the native baseline, >1 under FAASM.
	ComputePasses int
}

// Guest returns the inference guest. Weights load through the state tier
// (shared per host on FAASM, copied per container on the baseline).
func Guest(cfg Config) hostapi.Guest {
	passes := cfg.ComputePasses
	if passes < 1 {
		passes = 1
	}
	return func(api hostapi.API) (int32, error) {
		wBuf, err := api.StateViewChunk(KeyWeights, 0, WeightCount()*8)
		if err != nil {
			return 1, err
		}
		img := api.Input()
		if len(img) != InputDim*InputDim*8 {
			return 2, fmt.Errorf("inference: bad image size %d", len(img))
		}
		var class int
		for p := 0; p < passes; p++ {
			class = forward(wBuf, img)
		}
		api.WriteOutput([]byte{byte(class)})
		return 0, nil
	}
}

// forward runs the network. Weights and image decode on the fly from their
// byte views (zero-copy on FAASM).
func forward(w []byte, img []byte) int {
	at := func(i int) float64 { return math.Float64frombits(binary.LittleEndian.Uint64(w[i*8:])) }
	px := func(i int) float64 { return math.Float64frombits(binary.LittleEndian.Uint64(img[i*8:])) }

	// conv1: 3×3, stride 2, 1→Chan1, ReLU. Output dim 8×8.
	const d1 = InputDim / 2
	act1 := make([]float64, d1*d1*Chan1)
	wi := 0
	convW := wi
	wi += 3 * 3 * Chan1
	convB := wi
	wi += Chan1
	for c := 0; c < Chan1; c++ {
		for y := 0; y < d1; y++ {
			for x := 0; x < d1; x++ {
				acc := at(convB + c)
				for ky := 0; ky < 3; ky++ {
					for kx := 0; kx < 3; kx++ {
						iy, ix := y*2+ky-1, x*2+kx-1
						if iy < 0 || ix < 0 || iy >= InputDim || ix >= InputDim {
							continue
						}
						acc += at(convW+c*9+ky*3+kx) * px(iy*InputDim+ix)
					}
				}
				if acc < 0 {
					acc = 0
				}
				act1[(c*d1+y)*d1+x] = acc
			}
		}
	}

	// Depthwise 3×3 stride 2 + pointwise 1×1 to Chan2, ReLU. Output 4×4.
	const d2 = d1 / 2
	dwW := wi
	wi += 3 * 3 * Chan1
	dwB := wi
	wi += Chan1
	pwW := wi
	wi += Chan1 * Chan2
	pwB := wi
	wi += Chan2
	dw := make([]float64, d2*d2*Chan1)
	for c := 0; c < Chan1; c++ {
		for y := 0; y < d2; y++ {
			for x := 0; x < d2; x++ {
				acc := at(dwB + c)
				for ky := 0; ky < 3; ky++ {
					for kx := 0; kx < 3; kx++ {
						iy, ix := y*2+ky-1, x*2+kx-1
						if iy < 0 || ix < 0 || iy >= d1 || ix >= d1 {
							continue
						}
						acc += at(dwW+c*9+ky*3+kx) * act1[(c*d1+iy)*d1+ix]
					}
				}
				if acc < 0 {
					acc = 0
				}
				dw[(c*d2+y)*d2+x] = acc
			}
		}
	}
	act2 := make([]float64, d2*d2*Chan2)
	for o := 0; o < Chan2; o++ {
		for y := 0; y < d2; y++ {
			for x := 0; x < d2; x++ {
				acc := at(pwB + o)
				for c := 0; c < Chan1; c++ {
					acc += at(pwW+o*Chan1+c) * dw[(c*d2+y)*d2+x]
				}
				if acc < 0 {
					acc = 0
				}
				act2[(o*d2+y)*d2+x] = acc
			}
		}
	}

	// Global max pool + fully connected head. Max pooling keeps per-image
	// variation that averaging would wash out under random filters.
	pooled := make([]float64, Chan2)
	for c := 0; c < Chan2; c++ {
		m := math.Inf(-1)
		for i := 0; i < d2*d2; i++ {
			if act2[c*d2*d2+i] > m {
				m = act2[c*d2*d2+i]
			}
		}
		pooled[c] = m
	}
	// Mean-centre the pooled features: removes the constant component that
	// would otherwise make the random head's argmax image-independent.
	var mean float64
	for _, v := range pooled {
		mean += v
	}
	mean /= float64(Chan2)
	for c := range pooled {
		pooled[c] -= mean
	}
	fcW := wi
	wi += Chan2 * NumClasses
	fcB := wi
	best, bestScore := 0, math.Inf(-1)
	for k := 0; k < NumClasses; k++ {
		acc := at(fcB + k)
		for c := 0; c < Chan2; c++ {
			acc += at(fcW+k*Chan2+c) * pooled[c]
		}
		if acc > bestScore {
			best, bestScore = k, acc
		}
	}
	return best
}

// Classify runs the model host-side for verification.
func Classify(weights, img []byte) int { return forward(weights, img) }
