package vtime

import "time"

// Scaled is a clock that runs faster than the wall clock by a constant
// factor. The cluster experiments use it to reproduce the paper's
// second-scale and minute-scale measurements (container cold starts,
// training runs, load sweeps) in a fraction of the wall time while keeping
// real concurrency: sleeping d on a Scaled clock sleeps d/scale for real,
// and Now advances scale× faster than the wall clock.
//
// All reported durations come from this clock, so they are directly
// comparable with the paper's numbers; EXPERIMENTS.md records the scale
// used for every run.
type Scaled struct {
	scale     float64
	realEpoch time.Time
	virtEpoch time.Time
}

// NewScaled creates a clock running scale× wall speed (scale ≥ 1).
func NewScaled(scale float64) *Scaled {
	if scale < 1 {
		scale = 1
	}
	return &Scaled{
		scale:     scale,
		realEpoch: time.Now(),
		virtEpoch: time.Unix(0, 0).Add(time.Hour),
	}
}

// Scale returns the speed-up factor.
func (s *Scaled) Scale() float64 { return s.scale }

// Now returns the scaled time.
func (s *Scaled) Now() time.Time {
	elapsed := time.Since(s.realEpoch)
	return s.virtEpoch.Add(time.Duration(float64(elapsed) * s.scale))
}

// Sleep blocks for d of scaled time (d/scale of wall time).
func (s *Scaled) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	time.Sleep(time.Duration(float64(d) / s.scale))
}
