package simnet

import (
	"testing"
	"time"

	"faasm.dev/faasm/internal/kvs"
	"faasm.dev/faasm/internal/vtime"
)

func TestTransferAccounting(t *testing.T) {
	n := New(0, 0, nil) // free network: accounting only
	n.Transfer("h1", 100, 50)
	n.Transfer("h2", 10, 5)
	if n.Sent.Value() != 110 || n.Received.Value() != 55 {
		t.Fatalf("totals: %d %d", n.Sent.Value(), n.Received.Value())
	}
	h1 := n.Host("h1")
	if h1.Sent.Value() != 100 || h1.Received.Value() != 50 {
		t.Fatalf("h1: %d %d", h1.Sent.Value(), h1.Received.Value())
	}
	if n.TotalBytes() != 165 {
		t.Fatalf("total = %d", n.TotalBytes())
	}
	n.Reset()
	if n.TotalBytes() != 0 || n.Host("h1").Sent.Value() != 0 {
		t.Fatal("reset failed")
	}
}

func TestBandwidthCharging(t *testing.T) {
	clock := vtime.NewScaled(1000)
	// 1 MB/s: a 100 KB transfer must cost ~100ms on the experiment clock.
	n := New(1_000_000, 0, clock)
	start := clock.Now()
	n.Transfer("h", 100_000, 0)
	elapsed := clock.Now().Sub(start)
	if elapsed < 80*time.Millisecond {
		t.Fatalf("transfer cost only %v", elapsed)
	}
}

func TestLatencyCharging(t *testing.T) {
	clock := vtime.NewScaled(1000)
	n := New(0, 50*time.Millisecond, clock)
	start := clock.Now()
	n.Transfer("h", 1, 1)
	if elapsed := clock.Now().Sub(start); elapsed < 40*time.Millisecond {
		t.Fatalf("latency cost only %v", elapsed)
	}
}

func TestStoreChargesAllOps(t *testing.T) {
	engine := kvs.NewEngine()
	n := New(0, 0, nil)
	s := NewStore(engine, n, "h1")

	s.Set("k", make([]byte, 1000))
	afterSet := n.TotalBytes()
	if afterSet < 1000 {
		t.Fatalf("set charged %d", afterSet)
	}
	s.Get("k")
	if n.TotalBytes()-afterSet < 1000 {
		t.Fatal("get did not charge the payload")
	}
	s.GetRange("k", 0, 100)
	s.SetRange("k", 0, make([]byte, 10))
	s.Append("k2", []byte("xy"))
	s.Len("k")
	s.SAdd("set", "m")
	s.SMembers("set")
	s.SRem("set", "m")
	s.Incr("n", 1)
	tok, err := s.Lock("k", true, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	s.Unlock("k", tok)
	s.Delete("k")
	// Every operation pays at least the request overhead.
	if n.TotalBytes() < afterSet+1200 {
		t.Fatalf("ops barely charged: %d", n.TotalBytes())
	}
	// And the store still behaves like the engine underneath.
	v, _ := s.Get("k")
	if v != nil {
		t.Fatal("delete lost")
	}
}
