package obsv

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a registry-owned monotonic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a registry-owned instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the number of power-of-two histogram buckets: bucket b
// counts observations v with bits.Len64(v) == b, i.e. v in [2^(b-1), 2^b).
const histBuckets = 64

// Histogram is a bounded, power-of-two-bucket histogram over non-negative
// int64 observations (typically nanoseconds). Observe is three atomic adds —
// cheap enough for hot paths, with memory fixed regardless of sample count.
// The zero value is ready to use.
type Histogram struct {
	buckets [histBuckets + 1]atomic.Int64
	sum     atomic.Int64
	count   atomic.Int64
}

// Observe records one value (negative values clamp to 0).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Quantile approximates the q-th quantile from the bucket counts: the
// geometric midpoint of the bucket holding the q-th observation. Error is
// bounded by the power-of-two bucket width (≤ ~41% of the value), which is
// plenty for latency triage.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for b := 0; b <= histBuckets; b++ {
		seen += h.buckets[b].Load()
		if seen >= rank {
			if b == 0 {
				return 0
			}
			shift := b - 1
			if shift > 62 {
				shift = 62
			}
			lo := int64(1) << shift
			hi := int64(math.MaxInt64)
			if b < 63 {
				hi = int64(1)<<b - 1
			}
			return lo + (hi-lo)/2
		}
	}
	return 0
}

// metricKind is the exposition TYPE of a family.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// metric is one (family, label-set) series.
type metric struct {
	labels string // rendered {k="v",...} or ""
	ctr    *Counter
	gauge  *Gauge
	fn     func() int64
	hist   *Histogram
}

// family is all series sharing one metric name.
type family struct {
	name    string
	help    string
	kind    metricKind
	mu      sync.Mutex
	series  map[string]*metric
	ordered []string // label signatures in first-registration order
}

// nameRE is the registry's naming convention, checked at registration:
// faasm_<subsystem>_<noun>[...], lower snake case throughout.
var nameRE = regexp.MustCompile(`^faasm_[a-z][a-z0-9]*_[a-z0-9_]+$`)

// labelRE constrains label names.
var labelRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// Registry holds metric families. The zero value is not usable; call
// NewRegistry.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

// renderLabels canonicalises a label set ({} order-independent).
func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if !labelRE.MatchString(k) {
			panic(fmt.Sprintf("obsv: invalid label name %q", k))
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

func (r *Registry) family(name, help string, kind metricKind) *family {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("obsv: metric name %q violates the faasm_<subsystem>_<noun> convention", name))
	}
	if kind == kindCounter && !strings.HasSuffix(name, "_total") {
		panic(fmt.Sprintf("obsv: counter %q must end in _total", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: map[string]*metric{}}
		r.fams[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obsv: metric %q re-registered as %s (was %s)", name, kind, f.kind))
	}
	return f
}

// series returns the (creating if needed) series for a label set; make is
// called under the family lock to build a fresh metric.
func (f *family) metricFor(labels map[string]string, make func() *metric) *metric {
	sig := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	m, ok := f.series[sig]
	if !ok {
		m = make()
		m.labels = sig
		f.series[sig] = m
		f.ordered = append(f.ordered, sig)
	}
	return m
}

// Counter registers (or fetches) a registry-owned counter.
func (r *Registry) Counter(name, help string, labels map[string]string) *Counter {
	m := r.family(name, help, kindCounter).metricFor(labels, func() *metric { return &metric{ctr: &Counter{}} })
	return m.ctr
}

// CounterFunc registers a counter whose value is read from f at exposition
// time — the bridge for pre-existing atomic counters (no double counting on
// the write path). Re-registering the same series replaces the function.
func (r *Registry) CounterFunc(name, help string, labels map[string]string, f func() int64) {
	m := r.family(name, help, kindCounter).metricFor(labels, func() *metric { return &metric{} })
	m.fn = f
}

// Gauge registers (or fetches) a registry-owned gauge.
func (r *Registry) Gauge(name, help string, labels map[string]string) *Gauge {
	m := r.family(name, help, kindGauge).metricFor(labels, func() *metric { return &metric{gauge: &Gauge{}} })
	return m.gauge
}

// GaugeFunc registers a gauge read from f at exposition time.
func (r *Registry) GaugeFunc(name, help string, labels map[string]string, f func() int64) {
	m := r.family(name, help, kindGauge).metricFor(labels, func() *metric { return &metric{} })
	m.fn = f
}

// Histogram registers (or fetches) a histogram. Duration histograms observe
// nanoseconds and must be named *_seconds: exposition divides by 1e9.
func (r *Registry) Histogram(name, help string, labels map[string]string) *Histogram {
	m := r.family(name, help, kindHistogram).metricFor(labels, func() *metric { return &metric{hist: &Histogram{}} })
	return m.hist
}

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4), families and series in stable order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	r.mu.Unlock()
	sort.Strings(names)

	for _, name := range names {
		r.mu.Lock()
		f := r.fams[name]
		r.mu.Unlock()
		if f == nil {
			continue
		}
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		f.mu.Lock()
		sigs := append([]string(nil), f.ordered...)
		series := make([]*metric, len(sigs))
		for i, sig := range sigs {
			series[i] = f.series[sig]
		}
		f.mu.Unlock()
		for _, m := range series {
			if err := writeSeries(w, f, m); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, m *metric) error {
	switch f.kind {
	case kindCounter, kindGauge:
		var v int64
		switch {
		case m.fn != nil:
			v = m.fn()
		case m.ctr != nil:
			v = m.ctr.Value()
		case m.gauge != nil:
			v = m.gauge.Value()
		}
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, m.labels, v)
		return err
	case kindHistogram:
		return writeHistogram(w, f.name, m)
	}
	return nil
}

// writeHistogram renders cumulative power-of-two buckets. Duration
// histograms (named *_seconds) observe nanoseconds internally; bounds and
// sum are scaled to seconds on the way out.
func writeHistogram(w io.Writer, name string, m *metric) error {
	scale := 1.0
	if strings.HasSuffix(name, "_seconds") {
		scale = 1e-9
	}
	labels := m.labels
	inner := ""
	if labels != "" {
		inner = labels[1:len(labels)-1] + ","
	}
	var cum int64
	for b := 0; b < histBuckets; b++ {
		n := m.hist.buckets[b].Load()
		cum += n
		if n == 0 {
			continue // keep the output compact: only materialised buckets
		}
		le := formatFloat(float64(uint64(1)<<b-1) * scale)
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, inner, le, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, inner, m.hist.Count()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(float64(m.hist.Sum())*scale)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, m.hist.Count())
	return err
}

func formatFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	return s
}
