package autoscale

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"faasm.dev/faasm/internal/obsv"
	"faasm.dev/faasm/internal/vtime"
)

// fakeHost is one simulated host slot.
type fakeHost struct {
	inflight int
	misses   int64
	hbAge    time.Duration
	draining bool
	killed   bool
	removed  bool
}

// fakeFleet implements Fleet in-memory for policy tests.
type fakeFleet struct {
	hosts   []*fakeHost
	addErr  error
	adds    int
	drains  int
	reclaim int
}

func (f *fakeFleet) Signals() []HostSignals {
	out := make([]HostSignals, len(f.hosts))
	for i, h := range f.hosts {
		out[i] = HostSignals{
			Index:        i,
			Host:         fmt.Sprintf("host-%d", i),
			Inflight:     h.inflight,
			PoolMisses:   h.misses,
			HeartbeatAge: h.hbAge,
			Draining:     h.draining,
			Killed:       h.killed,
			Removed:      h.removed,
		}
	}
	return out
}

func (f *fakeFleet) AddHost() (int, error) {
	if f.addErr != nil {
		return 0, f.addErr
	}
	f.hosts = append(f.hosts, &fakeHost{})
	f.adds++
	return len(f.hosts) - 1, nil
}

func (f *fakeFleet) DrainHost(h int) error {
	f.hosts[h].draining = true
	f.drains++
	return nil
}

func (f *fakeFleet) ReclaimHost(h int) error {
	f.hosts[h].removed = true
	f.reclaim++
	return nil
}

func (f *fakeFleet) activeCount() int {
	n := 0
	for _, h := range f.hosts {
		if !h.removed && !h.draining && !h.killed {
			n++
		}
	}
	return n
}

// newFleet builds n idle hosts.
func newFleet(n int) *fakeFleet {
	f := &fakeFleet{}
	for i := 0; i < n; i++ {
		f.hosts = append(f.hosts, &fakeHost{})
	}
	return f
}

func TestScaleUpAfterSustainedPressure(t *testing.T) {
	f := newFleet(1)
	clk := vtime.NewVirtual()
	c := NewController(f, Spec{MinHosts: 1, MaxHosts: 4, HighWater: 2, SustainTicks: 3}, clk)

	f.hosts[0].inflight = 5 // well over HighWater
	for tick := 1; tick <= 2; tick++ {
		if acts := c.Tick(); len(acts) != 0 {
			t.Fatalf("tick %d acted before SustainTicks: %v", tick, acts)
		}
	}
	acts := c.Tick()
	if len(acts) != 1 || acts[0].Kind != ActionScaleUp {
		t.Fatalf("sustained pressure: %v", acts)
	}
	if f.activeCount() != 2 {
		t.Fatalf("active = %d", f.activeCount())
	}
	if st := c.Status(); st.ScaleUps != 1 || st.Pressure != 0 {
		t.Fatalf("status after scale-up: %+v", st)
	}
}

func TestOneSpikyTickMovesNothing(t *testing.T) {
	f := newFleet(1)
	c := NewController(f, Spec{MinHosts: 1, MaxHosts: 4, HighWater: 2, SustainTicks: 2}, vtime.NewVirtual())
	f.hosts[0].inflight = 50
	c.Tick()
	f.hosts[0].inflight = 1 // spike gone
	c.Tick()
	f.hosts[0].inflight = 50
	c.Tick()
	if f.adds != 0 {
		t.Fatalf("hysteresis failed: %d adds after alternating load", f.adds)
	}
}

func TestCooldownFreezesVoluntaryScaling(t *testing.T) {
	f := newFleet(1)
	clk := vtime.NewVirtual()
	cool := 10 * time.Second
	c := NewController(f, Spec{MinHosts: 1, MaxHosts: 8, HighWater: 1, SustainTicks: 1, Cooldown: cool}, clk)

	f.hosts[0].inflight = 10
	if acts := c.Tick(); len(acts) != 1 {
		t.Fatalf("first scale-up: %v", acts)
	}
	// Pressure persists, but the cooldown must hold the fleet still.
	for i := 0; i < 5; i++ {
		if acts := c.Tick(); len(acts) != 0 {
			t.Fatalf("scaled during cooldown: %v", acts)
		}
	}
	if st := c.Status(); st.CooldownRemaining <= 0 {
		t.Fatalf("no cooldown reported: %+v", st)
	}
	clk.Advance(cool + time.Second)
	// Fresh pressure after the cooldown scales again.
	if acts := c.Tick(); len(acts) != 1 || acts[0].Kind != ActionScaleUp {
		t.Fatalf("post-cooldown: %v", acts)
	}
}

func TestMaxHostsClampsGrowth(t *testing.T) {
	f := newFleet(2)
	c := NewController(f, Spec{MinHosts: 1, MaxHosts: 2, HighWater: 1, SustainTicks: 1, Cooldown: time.Nanosecond}, vtime.NewVirtual())
	for _, h := range f.hosts {
		h.inflight = 10
	}
	for i := 0; i < 5; i++ {
		c.Tick()
	}
	if f.adds != 0 {
		t.Fatalf("scaled past MaxHosts: %d adds", f.adds)
	}
}

func TestScaleDownDrainsLeastLoadedThenReclaims(t *testing.T) {
	f := newFleet(3)
	clk := vtime.NewVirtual()
	c := NewController(f, Spec{MinHosts: 1, MaxHosts: 4, LowWater: 0.5, IdleTicks: 2, Cooldown: time.Millisecond}, clk)
	f.hosts[0].inflight = 1 // the busy one
	// Two idle ticks: drain fires on the second.
	if acts := c.Tick(); len(acts) != 0 {
		t.Fatalf("tick 1: %v", acts)
	}
	acts := c.Tick()
	if len(acts) != 1 || acts[0].Kind != ActionDrain {
		t.Fatalf("tick 2: %v", acts)
	}
	if acts[0].Host == 0 {
		t.Fatal("drained the busy host")
	}
	drained := acts[0].Host
	if !f.hosts[drained].draining {
		t.Fatal("victim not draining")
	}
	// Next tick reclaims it (zero in-flight) without another scale action.
	clk.Advance(time.Second)
	acts = c.Tick()
	var reclaimed bool
	for _, a := range acts {
		if a.Kind == ActionReclaim && a.Host == drained {
			reclaimed = true
		}
		if a.Kind == ActionDrain && a.Host == 0 {
			t.Fatalf("drained the last busy host: %v", acts)
		}
	}
	if !reclaimed {
		t.Fatalf("drained host not reclaimed: %v", acts)
	}
	if st := c.Status(); st.ScaleDowns != 1 || st.Drains != 1 {
		t.Fatalf("status: %+v", st)
	}
}

func TestDrainWaitsForInflightBeforeReclaim(t *testing.T) {
	f := newFleet(2)
	clk := vtime.NewVirtual()
	c := NewController(f, Spec{MinHosts: 1, MaxHosts: 4, LowWater: 5, IdleTicks: 1, Cooldown: time.Millisecond}, clk)
	f.hosts[1].inflight = 0
	if acts := c.Tick(); len(acts) != 1 || acts[0].Kind != ActionDrain {
		t.Fatalf("drain: %v", acts)
	}
	victim := f.hosts[1]
	if !victim.draining {
		t.Fatal("host 1 not the victim")
	}
	victim.inflight = 3 // straggler calls still running
	clk.Advance(time.Second)
	for i := 0; i < 3; i++ {
		for _, a := range c.Tick() {
			if a.Kind == ActionReclaim {
				t.Fatal("reclaimed a draining host with calls in flight")
			}
		}
	}
	victim.inflight = 0
	clk.Advance(time.Second)
	found := false
	for _, a := range c.Tick() {
		if a.Kind == ActionReclaim && a.Host == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("idle drained host not reclaimed")
	}
}

func TestMinHostsFloorRestoredUnconditionally(t *testing.T) {
	f := newFleet(2)
	clk := vtime.NewVirtual()
	c := NewController(f, Spec{MinHosts: 2, MaxHosts: 4, Cooldown: time.Hour, NoRestart: true}, clk)
	// Burn a cooldown so voluntary scaling is frozen.
	f.hosts[0].inflight = 100
	f.hosts[1].inflight = 100
	c.Tick() // pressure 1
	c.Tick() // pressure 2 → scale-up, cooldown starts
	if f.adds != 1 {
		t.Fatalf("setup scale-up missing: %d", f.adds)
	}
	// Both original hosts die; NoRestart is on, but the MinHosts floor is
	// not a restart policy — it must be restored even inside the cooldown.
	f.hosts[0].killed = true
	f.hosts[1].killed = true
	f.hosts[2].killed = true
	acts := c.Tick()
	if f.activeCount() < 2 {
		t.Fatalf("MinHosts floor not restored: active=%d acts=%v", f.activeCount(), acts)
	}
}

func TestCrashedHostReclaimedAndReplaced(t *testing.T) {
	f := newFleet(2)
	c := NewController(f, Spec{MinHosts: 1, MaxHosts: 4}, vtime.NewVirtual())
	f.hosts[1].killed = true
	acts := c.Tick()
	var reclaimed, restarted bool
	for _, a := range acts {
		if a.Kind == ActionReclaim && a.Host == 1 {
			reclaimed = true
		}
		if a.Kind == ActionRestart {
			restarted = true
		}
	}
	if !reclaimed || !restarted {
		t.Fatalf("crash supervision: %v", acts)
	}
	if !f.hosts[1].removed {
		t.Fatal("corpse not removed")
	}
	if f.activeCount() != 2 {
		t.Fatalf("active after restart = %d", f.activeCount())
	}
	if st := c.Status(); st.Restarts != 1 {
		t.Fatalf("restarts = %d", st.Restarts)
	}
}

func TestStaleHeartbeatTreatedAsCrash(t *testing.T) {
	f := newFleet(2)
	c := NewController(f, Spec{MinHosts: 1, MaxHosts: 4, HeartbeatTimeout: time.Second, NoRestart: true}, vtime.NewVirtual())
	f.hosts[1].killed = true // the fleet refuses to reclaim live hosts; model a wedge as killed+stale
	f.hosts[1].hbAge = 5 * time.Second
	acts := c.Tick()
	if len(acts) == 0 || acts[0].Kind != ActionReclaim {
		t.Fatalf("stale heartbeat ignored: %v", acts)
	}
	// A host that never advertised (age 0) must not read as crashed.
	f2 := newFleet(1)
	c2 := NewController(f2, Spec{MinHosts: 1, HeartbeatTimeout: time.Second}, vtime.NewVirtual())
	if acts := c2.Tick(); len(acts) != 0 {
		t.Fatalf("never-beat host treated as crashed: %v", acts)
	}
}

func TestPoolMissRateFeedsLoad(t *testing.T) {
	f := newFleet(1)
	c := NewController(f, Spec{MinHosts: 1, MaxHosts: 4, HighWater: 2, SustainTicks: 2, Cooldown: time.Nanosecond}, vtime.NewVirtual())
	// No in-flight load at the sample instants, but a rising miss counter:
	// the rate (delta per tick) must still build pressure.
	f.hosts[0].misses = 100
	c.Tick() // establishes the cursor; delta unknown on first sight
	f.hosts[0].misses = 200
	c.Tick() // delta 100 → pressure 1
	f.hosts[0].misses = 300
	acts := c.Tick() // delta 100 → pressure 2 → scale up
	if len(acts) != 1 || acts[0].Kind != ActionScaleUp {
		t.Fatalf("miss rate ignored: %v", acts)
	}
}

func TestStatusAndMetrics(t *testing.T) {
	f := newFleet(2)
	c := NewController(f, Spec{MinHosts: 1, MaxHosts: 4, HighWater: 1, SustainTicks: 1, Cooldown: time.Nanosecond}, vtime.NewVirtual())
	reg := obsv.NewRegistry()
	c.Instrument(reg)
	f.hosts[0].inflight = 10
	f.hosts[1].inflight = 10
	c.Tick()
	st := c.Status()
	if st.Hosts != 3 || st.Active != 3 || st.ScaleUps != 1 {
		t.Fatalf("status: %+v", st)
	}
	if st.LastAction == "" {
		t.Fatal("no last action")
	}
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, m := range []string{
		"faasm_autoscale_hosts 3",
		"faasm_autoscale_scale_ups_total 1",
		"faasm_autoscale_scale_downs_total 0",
		"faasm_autoscale_drains_total 0",
		"faasm_autoscale_restarts_total 0",
	} {
		if !strings.Contains(out, m) {
			t.Fatalf("missing %q in exposition:\n%s", m, out)
		}
	}
}

func TestBackgroundLoopScales(t *testing.T) {
	f := newFleet(1)
	var mu synchronizedFleet
	mu.fakeFleet = f
	c := NewController(&mu, Spec{MinHosts: 1, MaxHosts: 2, HighWater: 1, SustainTicks: 1, Tick: time.Millisecond, Cooldown: time.Millisecond}, nil)
	mu.setInflight(0, 10)
	c.Start()
	defer c.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if mu.addCount() > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background loop never scaled up")
		}
		time.Sleep(time.Millisecond)
	}
	c.Stop() // idempotent with the deferred Stop
}

// synchronizedFleet wraps fakeFleet for concurrent use by the background
// loop test.
type synchronizedFleet struct {
	mu sync.Mutex
	*fakeFleet
}

func (s *synchronizedFleet) Signals() []HostSignals {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fakeFleet.Signals()
}
func (s *synchronizedFleet) AddHost() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fakeFleet.AddHost()
}
func (s *synchronizedFleet) DrainHost(h int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fakeFleet.DrainHost(h)
}
func (s *synchronizedFleet) ReclaimHost(h int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fakeFleet.ReclaimHost(h)
}
func (s *synchronizedFleet) setInflight(h, n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fakeFleet.hosts[h].inflight = n
}
func (s *synchronizedFleet) addCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fakeFleet.adds
}
