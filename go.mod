module faasm.dev/faasm

go 1.22
