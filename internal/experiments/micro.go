package experiments

import (
	"fmt"
	"time"

	"faasm.dev/faasm/internal/core"
	"faasm.dev/faasm/internal/kernels"
	"faasm.dev/faasm/internal/kvs"
	"faasm.dev/faasm/internal/minipy"
	"faasm.dev/faasm/internal/state"
	"faasm.dev/faasm/internal/wamem"
	"faasm.dev/faasm/internal/wavm"
)

// Paper constants for the container side (Table 3, §6.5), reproduced as
// published: this substrate cannot run Docker, so the baseline column is
// the paper's own measurement.
const (
	paperDockerInit     = 2800 * time.Millisecond
	paperDockerCycles   = int64(251_000_000)
	paperDockerPSS      = int64(1_300_000)
	paperDockerRSS      = int64(5_000_000)
	paperDockerCapacity = 8_000
	paperPythonDocker   = 3200 * time.Millisecond
)

// noopModule builds the no-op function used by the cold-start micro
// benchmarks.
func noopModule() *wavm.Module {
	mod, err := wavm.AssembleAndValidate(`(module
	  (memory 1 16)
	  (func $main (export "main") (result i32) i32.const 0))`)
	if err != nil {
		panic(err)
	}
	return mod
}

func microEnv() *core.Env {
	return &core.Env{State: state.NewLocalTier(kvs.NewEngine())}
}

// measureFaasletInit measures cold Faaslet creation + one no-op execution.
func measureFaasletInit(iters int) (time.Duration, int64, uint64) {
	env := microEnv()
	mod := noopModule()
	var totalSteps uint64
	var footprint int64
	start := time.Now()
	for i := 0; i < iters; i++ {
		f, err := core.New(core.FuncDef{Name: "noop", Module: mod}, env)
		if err != nil {
			panic(err)
		}
		f.Execute(nil)
		totalSteps += f.Steps
		footprint = f.Footprint()
		f.Close()
	}
	return time.Since(start) / time.Duration(iters), footprint, totalSteps / uint64(iters)
}

// measureProtoInit measures restore-based creation + one no-op execution.
func measureProtoInit(iters int) (time.Duration, int64, uint64) {
	env := microEnv()
	mod := noopModule()
	f, err := core.New(core.FuncDef{Name: "noop", Module: mod}, env)
	if err != nil {
		panic(err)
	}
	proto, err := f.Snapshot()
	if err != nil {
		panic(err)
	}
	def := core.FuncDef{Name: "noop", Module: mod}
	var totalSteps uint64
	var footprint int64
	start := time.Now()
	for i := 0; i < iters; i++ {
		g, err := core.NewFromProto(def, env, proto)
		if err != nil {
			panic(err)
		}
		g.Execute(nil)
		totalSteps += g.Steps
		footprint = g.Footprint()
		g.Close()
	}
	return time.Since(start) / time.Duration(iters), footprint, totalSteps / uint64(iters)
}

// Table3 regenerates the cold-start comparison (no-op function).
func Table3(opts Options) *Report {
	iters := 2000
	if opts.Quick {
		iters = 200
	}
	fInit, fMem, fSteps := measureFaasletInit(iters)
	pInit, pMem, pSteps := measureProtoInit(iters)
	if fMem == 0 {
		fMem = 1
	}
	if pMem == 0 {
		pMem = 1
	}
	const hostMem = int64(32) << 30     // the paper's 32 GB measurement host
	fCap := hostMem / (fMem + 256*1024) // plus thread stack reservation
	pCap := hostMem / (pMem + 256*1024)

	r := &Report{
		ID:     "table3",
		Title:  "Faaslets vs container cold starts (no-op function)",
		Header: []string{"metric", "docker(paper)", "faaslet", "proto-faaslet", "vs docker"},
	}
	r.Add("initialisation", fmtDur(paperDockerInit), fmtDur(fInit), fmtDur(pInit),
		fmt.Sprintf("%.0fx", float64(paperDockerInit)/float64(pInit)))
	r.Add("exec steps (VM instrs)", fmt.Sprintf("%d (cycles)", paperDockerCycles),
		fmt.Sprintf("%d", fSteps), fmt.Sprintf("%d", pSteps),
		fmt.Sprintf("%.0fKx", float64(paperDockerCycles)/float64(maxU64(pSteps, 1))/1000))
	r.Add("memory footprint", fmtBytes(paperDockerPSS)+" PSS", fmtBytes(fMem), fmtBytes(pMem),
		fmt.Sprintf("%.0fx", float64(paperDockerPSS)/float64(pMem)))
	r.Add("capacity (32 GB host)", fmt.Sprintf("~%dK", paperDockerCapacity/1000),
		fmt.Sprintf("~%dK", fCap/1000), fmt.Sprintf("~%dK", pCap/1000),
		fmt.Sprintf("%.0fx", float64(pCap)/float64(paperDockerCapacity)))
	r.Note("docker column is the paper's measurement (this substrate does not run Docker)")
	r.Note("faaslet/proto columns measured live on this machine, %d iterations", iters)
	return r
}

// Table3Python regenerates the §6.5 Python no-op comparison: a dynamic
// language runtime (minipy here, CPython in the paper) restored from a
// Proto-Faaslet versus a container boot.
func Table3Python(opts Options) *Report {
	iters := 300
	if opts.Quick {
		iters = 50
	}
	env := microEnv()
	// Build the interpreter inside a Faaslet, warm it up, snapshot.
	prog, _ := minipy.ProgramByName("float")
	def := core.FuncDef{
		Name: "python-noop",
		Native: func(ctx *core.Ctx) (int32, error) {
			heap := minipy.NewMemHeap(ctx.Memory(), 0)
			ip := minipy.New(heap)
			prog.Build(ip)
			if _, err := ip.Call(prog.Entry, minipy.IntV(1)); err != nil {
				return 1, err
			}
			return 0, nil
		},
		InitialPages: 4,
	}
	f, err := core.New(def, env)
	if err != nil {
		panic(err)
	}
	f.Execute(nil) // interpreter warm-up = the user-defined init code
	proto, err := f.Snapshot()
	if err != nil {
		panic(err)
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		g, err := core.NewFromProto(def, env, proto)
		if err != nil {
			panic(err)
		}
		g.Execute(nil)
		g.Close()
	}
	perRestore := time.Since(start) / time.Duration(iters)

	r := &Report{
		ID:     "table3-python",
		Title:  "Python no-op: container boot vs Proto-Faaslet restore (§6.5)",
		Header: []string{"platform", "init+run", "vs container"},
	}
	r.Add("python:3.7-alpine container (paper)", fmtDur(paperPythonDocker), "1x")
	r.Add("minipy proto-faaslet restore", fmtDur(perRestore),
		fmt.Sprintf("%.0fx", float64(paperPythonDocker)/float64(perRestore)))
	r.Note("paper: container 3.2 s vs proto restore 0.9 ms")
	return r
}

// Table1 regenerates the isolation-approach comparison with this
// substrate's measured Faaslet values.
func Table1(opts Options) *Report {
	iters := 500
	if opts.Quick {
		iters = 100
	}
	fInit, fMem, _ := measureFaasletInit(iters)
	pInit, _, _ := measureProtoInit(iters)
	r := &Report{
		ID:     "table1",
		Title:  "Isolation approaches for serverless (functional/non-functional)",
		Header: []string{"property", "containers", "VMs", "unikernel", "SFI", "faaslet(measured)"},
	}
	r.Add("memory safety", "yes", "yes", "yes", "yes", "yes")
	r.Add("resource isolation", "yes", "yes", "yes", "no", "yes (cgroup+netns)")
	r.Add("efficient state sharing", "no", "no", "no", "no", "yes (shared regions)")
	r.Add("shared filesystem", "yes", "no", "no", "yes", "yes (read-global)")
	r.Add("initialisation", "100ms", "100ms", "10ms", "10us",
		fmt.Sprintf("%s (%s proto)", fmtDur(fInit), fmtDur(pInit)))
	r.Add("memory footprint", "MBs", "MBs", "KBs", "Bytes", fmtBytes(fMem))
	r.Add("multi-language", "yes", "yes", "yes", "no", "yes (wavm/FC/native)")
	r.Note("non-faaslet columns are the paper's literature values (Table 1)")
	return r
}

// Fig9a regenerates the Polybench overhead figure: per-kernel runtime
// ratio, wavm sandbox vs native.
func Fig9a(opts Options) *Report {
	reps := 3
	if opts.Quick {
		reps = 1
	}
	r := &Report{
		ID:     "fig9a",
		Title:  "Polybench kernels: sandbox runtime vs native (ratio)",
		Header: []string{"kernel", "native", "wavm", "ratio"},
	}
	for _, k := range kernels.All() {
		mod, err := kernels.CompileKernel(k)
		if err != nil {
			r.Note("%s failed to compile: %v", k.Name, err)
			continue
		}
		var nBest, wBest time.Duration
		for rep := 0; rep < reps; rep++ {
			t0 := time.Now()
			k.Native(k.N)
			if d := time.Since(t0); nBest == 0 || d < nBest {
				nBest = d
			}
			inst, err := wavm.Instantiate(mod, nil)
			if err != nil {
				r.Note("%s: %v", k.Name, err)
				continue
			}
			t1 := time.Now()
			if _, err := inst.Call("main"); err != nil {
				r.Note("%s: %v", k.Name, err)
				continue
			}
			if d := time.Since(t1); wBest == 0 || d < wBest {
				wBest = d
			}
		}
		ratio := float64(wBest) / float64(maxDur(nBest, time.Nanosecond))
		r.Add(k.Name, fmtDur(nBest), fmtDur(wBest), fmt.Sprintf("%.1fx", ratio))
	}
	r.Note("paper (JIT-based WAVM): most kernels ≤1.25x, two at 1.4–1.55x; this VM interprets, so absolute ratios are higher but the kernel-to-kernel shape matches")
	return r
}

// Fig9b regenerates the dynamic-language suite: minipy on the Faaslet's
// bounds-checked linear-memory heap vs the native heap.
func Fig9b(opts Options) *Report {
	reps := 5
	if opts.Quick {
		reps = 2
	}
	r := &Report{
		ID:     "fig9b",
		Title:  "Dynamic-language suite: interpreter in Faaslet memory vs native (ratio)",
		Header: []string{"benchmark", "native", "faaslet-heap", "ratio"},
	}
	for _, p := range minipy.Programs() {
		var nBest, fBest time.Duration
		for rep := 0; rep < reps; rep++ {
			ipN := minipy.New(minipy.NewSliceHeap())
			p.Build(ipN)
			t0 := time.Now()
			if _, err := ipN.Call(p.Entry, minipy.IntV(p.Arg)); err != nil {
				r.Note("%s: %v", p.Name, err)
				continue
			}
			if d := time.Since(t0); nBest == 0 || d < nBest {
				nBest = d
			}
			mem := wamem.MustNew(4, 0)
			ipF := minipy.New(minipy.NewMemHeap(mem, 0))
			p.Build(ipF)
			t1 := time.Now()
			if _, err := ipF.Call(p.Entry, minipy.IntV(p.Arg)); err != nil {
				r.Note("%s: %v", p.Name, err)
				continue
			}
			if d := time.Since(t1); fBest == 0 || d < fBest {
				fBest = d
			}
		}
		ratio := float64(fBest) / float64(maxDur(nBest, time.Nanosecond))
		r.Add(p.Name, fmtDur(nBest), fmtDur(fBest), fmt.Sprintf("%.2fx", ratio))
	}
	r.Note("paper: most Python benchmarks ≤1.25x, some 1.5–1.6x, pidigits 3.4x (32-bit bignum)")
	return r
}

// Fig10 regenerates the churn figure: creation latency vs creations/s for
// docker (paper service time), faaslets and proto-faaslets (measured
// service times), through a deterministic single-server queue — the
// serialisation point the paper's dockerd/runtime exhibits.
func Fig10(opts Options) *Report {
	iters := 500
	if opts.Quick {
		iters = 100
	}
	fInit, _, _ := measureFaasletInit(iters)
	pInit, _, _ := measureProtoInit(iters)
	// Docker boots ~2 s each but dockerd overlaps several: the paper's
	// throughput ceiling of ~3 creations/s implies ~6 concurrent boots.
	const dockerService = 2 * time.Second
	const dockerConcurrency = 6
	// Faaslet creation parallelism is bounded by the host's cores.
	coreCount := 2

	rates := []float64{0.1, 0.5, 1, 3, 10, 30, 100, 300, 600, 1000, 2000, 4000, 8000}
	r := &Report{
		ID:     "fig10",
		Title:  "Function churn: creation latency vs creations per second",
		Header: []string{"rate/s", "docker", "faaslet", "proto-faaslet"},
	}
	for _, rate := range rates {
		r.Add(fmt.Sprintf("%g", rate),
			fmtDur(queueLatency(rate, dockerService, dockerConcurrency)),
			fmtDur(queueLatency(rate, fInit, coreCount)),
			fmtDur(queueLatency(rate, pInit, coreCount)))
	}
	r.Note("faaslet service time measured %v, proto %v; docker fixed at the paper's ~2s × %d concurrent boots (≈3/s ceiling)", fInit, pInit, dockerConcurrency)
	r.Note("latency = mean sojourn of a deterministic %d/%d-server creation queue over a 1000-request burst (capped at 60s)", dockerConcurrency, coreCount)
	return r
}

// queueLatency computes the mean creation latency at the given arrival rate
// for a creator with fixed service time and k-way concurrency, over a
// finite burst. Below k/service the latency is flat at the service time;
// past it the queue grows — the knees of Fig 10.
func queueLatency(ratePerSec float64, service time.Duration, k int) time.Duration {
	const n = 1000
	interval := time.Duration(float64(time.Second) / ratePerSec)
	done := make([]time.Duration, n)
	var total time.Duration
	for i := 0; i < n; i++ {
		arrival := time.Duration(i) * interval
		start := arrival
		if i >= k && done[i-k] > start {
			start = done[i-k]
		}
		done[i] = start + service
		lat := done[i] - arrival
		if lat > time.Minute {
			lat = time.Minute // the paper's plots also saturate
		}
		total += lat
	}
	return total / n
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fus", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	}
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
