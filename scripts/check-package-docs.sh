#!/bin/sh
# Fails when any internal/* package ships without a package comment. Every
# package must carry a `// Package <name> ...` doc comment (by convention in
# doc.go for the hot-path packages, where it also states the concurrency
# model) so a new package cannot land undocumented.
set -eu
cd "$(dirname "$0")/.."

fail=0
for d in $(find internal -type d | sort); do
    # Only directories that directly contain Go files form a package.
    ls "$d"/*.go >/dev/null 2>&1 || continue
    if ! grep -q "^// Package " "$d"/*.go 2>/dev/null; then
        echo "FAIL: package $d has no package comment (add one, ideally in $d/doc.go)"
        fail=1
    fi
done
if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "package docs: all internal packages documented"
