package core

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"faasm.dev/faasm/internal/wamem"
	"faasm.dev/faasm/internal/wavm"
)

// Proto is a Proto-Faaslet (§5.2): a snapshot of a Faaslet's arbitrary
// execution state — linear memory (stack, heap, data, break) plus the
// module globals — captured after user-defined initialisation code has run.
// Restores are copy-on-write and cost O(page table); the same Proto can be
// restored concurrently into many Faaslets, and serialised Protos restore
// across hosts because they are independent of any OS thread or process.
type Proto struct {
	Function string
	mem      *wamem.Snapshot
	globals  []uint64
}

// MemPages reports the snapshot size in pages.
func (p *Proto) MemPages() int { return p.mem.Pages() }

// StoredBytes reports the materialised snapshot bytes (Table 3 footprint).
func (p *Proto) StoredBytes() int64 { return p.mem.StoredBytes() }

// Snapshot captures the Faaslet's current execution state as a Proto and
// installs it as the Faaslet's reset image. Call it after running
// initialisation code (e.g. interpreter warm-up), before serving requests.
func (f *Faaslet) Snapshot() (*Proto, error) {
	p := &Proto{
		Function: f.def.Name,
		mem:      f.mem.Snapshot(),
	}
	if f.inst != nil {
		p.globals = f.inst.Globals()
	}
	f.proto = p
	return p, nil
}

// Proto returns the installed reset snapshot, if any.
func (f *Faaslet) Proto() *Proto { return f.proto }

// SetProto installs a snapshot (e.g. one restored from the global tier) as
// the Faaslet's reset image and restores it immediately.
func (f *Faaslet) SetProto(p *Proto) error {
	if p.Function != f.def.Name {
		return fmt.Errorf("core: proto for %s cannot restore into %s", p.Function, f.def.Name)
	}
	f.proto = p
	return f.restoreFromProto(p)
}

// restoreFromProto rebuilds memory (copy-on-write) and globals from p.
func (f *Faaslet) restoreFromProto(p *Proto) error {
	f.mem = p.mem.Restore()
	if f.def.Module != nil {
		inst, err := wavm.Instantiate(f.def.Module, f.hostModules(),
			wavm.WithMemory(f.mem),
			wavm.WithFuel(fuelOrUnlimited(f.def.Fuel)),
			wavm.WithSkipStart())
		if err != nil {
			return fmt.Errorf("core: relink after restore: %w", err)
		}
		for i, g := range p.globals {
			if err := inst.SetGlobalValue(i, g); err != nil {
				return err
			}
		}
		f.inst = inst
	}
	return nil
}

// NewFromProto creates a fresh Faaslet already restored from p — the warm
// cold-start path: hundreds of microseconds instead of full initialisation.
func NewFromProto(def FuncDef, env *Env, p *Proto) (*Faaslet, error) {
	if def.Module == nil && def.Native == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoFunction, def.Name)
	}
	f := newShell(def, env)
	if err := f.SetProto(p); err != nil {
		return nil, err
	}
	return f, nil
}

// protoWire is the gob payload for cross-host transfer.
type protoWire struct {
	Function string
	MemBlob  []byte
	Globals  []uint64
}

// Serialize flattens the Proto for storage in the global tier, enabling
// cross-host restores (the paper's key difference from single-machine
// snapshot systems like SEUSS and Catalyzer).
func (p *Proto) Serialize() ([]byte, error) {
	blob, err := p.mem.Serialize()
	if err != nil {
		return nil, fmt.Errorf("core: serialise proto %s: %w", p.Function, err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(protoWire{
		Function: p.Function,
		MemBlob:  blob,
		Globals:  p.globals,
	}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DeserializeProto reverses Serialize.
func DeserializeProto(b []byte) (*Proto, error) {
	var w protoWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return nil, fmt.Errorf("core: decode proto: %w", err)
	}
	snap, err := wamem.DeserializeSnapshot(w.MemBlob)
	if err != nil {
		return nil, err
	}
	return &Proto{Function: w.Function, mem: snap, globals: w.Globals}, nil
}
