package obsv

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracerSamplingGate(t *testing.T) {
	tr := NewTracer(time.Now, 4, 64)
	sampled := 0
	for i := 0; i < 100; i++ {
		if tr.Start("h", "fn") != nil {
			sampled++
		}
	}
	if sampled != 25 {
		t.Fatalf("1-in-4 sampling over 100 starts gave %d traces", sampled)
	}
	tr.SetSampleRate(-1)
	if tr.Start("h", "fn") != nil {
		t.Fatal("disabled tracer still sampled")
	}
}

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	tr.RecordSpan("h", "exec", "", time.Now(), time.Millisecond, 0, false)
	if tr.ID() != 0 {
		t.Fatal("nil trace id != 0")
	}
	NewTracer(time.Now, 1, 8).Finish(nil)
}

func TestTraceSpansAndSnapshot(t *testing.T) {
	tr := NewTracer(time.Now, 1, 64)
	tc := tr.Start("host-a", "fn")
	if tc == nil {
		t.Fatal("rate-1 tracer did not sample")
	}
	now := time.Now()
	tc.RecordSpan("host-a", "forward", "host-b", now, 2*time.Millisecond, 128, false)
	tc.RecordSpan("host-b", "exec", "fn", now.Add(time.Millisecond), time.Millisecond, 0, false)
	tc.RecordSpan("host-b", "state.pull", "key", now.Add(time.Millisecond), 500*time.Microsecond, 4096, false)
	tr.Finish(tc)

	snap, ok := tr.Get(tc.ID())
	if !ok {
		t.Fatalf("trace %d not retained", tc.ID())
	}
	if len(snap.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(snap.Spans))
	}
	hosts := map[string]bool{}
	var pullBytes int64
	for _, s := range snap.Spans {
		hosts[s.Host] = true
		if s.Name == "state.pull" {
			pullBytes = s.Bytes
		}
	}
	if !hosts["host-a"] || !hosts["host-b"] {
		t.Fatalf("spans missing a host: %v", hosts)
	}
	if pullBytes != 4096 {
		t.Fatalf("state.pull bytes = %d", pullBytes)
	}
	if snap.Dur <= 0 {
		t.Fatalf("snapshot duration = %d", snap.Dur)
	}
}

func TestJoinSharedAndSplit(t *testing.T) {
	shared := NewTracer(time.Now, 1, 64)
	origin := shared.Start("a", "fn")
	got, created := shared.Join(origin.ID(), "b", "fn")
	if created || got != origin {
		t.Fatalf("shared join created=%v got same=%v", created, got == origin)
	}

	remote := NewTracer(time.Now, 1, 64)
	half, created := remote.Join(origin.ID(), "b", "fn")
	if !created || half.ID() != origin.ID() {
		t.Fatalf("split join created=%v id=%d want %d", created, half.ID(), origin.ID())
	}
	if j, _ := remote.Join(0, "b", "fn"); j != nil {
		t.Fatal("join of id 0 must be nil")
	}
}

func TestTracerRetentionBounded(t *testing.T) {
	tr := NewTracer(time.Now, 1, 32)
	var first TraceID
	for i := 0; i < 1000; i++ {
		tc := tr.Start("h", "fn")
		if first == 0 {
			first = tc.ID()
		}
		tr.Finish(tc)
	}
	if _, ok := tr.Get(first); ok {
		t.Fatal("oldest trace survived 1000 inserts into a 32-trace buffer")
	}
	if got := len(tr.Slowest(10_000)); got > 32 {
		t.Fatalf("retained %d traces, buffer is 32", got)
	}
}

func TestSlowestOrdersByDuration(t *testing.T) {
	tr := NewTracer(time.Now, 1, 64)
	now := time.Now()
	for i, d := range []time.Duration{time.Millisecond, 5 * time.Millisecond, 2 * time.Millisecond} {
		tc := tr.Start("h", "fn")
		tc.RecordSpan("h", "exec", "", now, d, 0, false)
		tr.Finish(tc)
		_ = i
	}
	slow := tr.Slowest(2)
	if len(slow) != 2 || slow[0].Dur < slow[1].Dur {
		t.Fatalf("slowest not ordered: %+v", slow)
	}
	if time.Duration(slow[0].Spans[0].Dur) != 5*time.Millisecond {
		t.Fatalf("slowest trace dur span = %d", slow[0].Spans[0].Dur)
	}
}

func TestSpanStatsAggregates(t *testing.T) {
	tr := NewTracer(time.Now, 1, 64)
	now := time.Now()
	for i := 0; i < 10; i++ {
		tc := tr.Start("h", "fn")
		tc.RecordSpan("h", "exec", "", now, time.Millisecond, 0, false)
		tc.RecordSpan("h", "state.pull", "k", now, 100*time.Microsecond, 1000, i == 0)
		tr.Finish(tc)
		tr.Finish(tc) // idempotent: no double counting
	}
	stats := tr.SpanStats()
	byName := map[string]SpanStat{}
	for _, s := range stats {
		byName[s.Name] = s
	}
	if byName["exec"].Count != 10 {
		t.Fatalf("exec count = %d", byName["exec"].Count)
	}
	pull := byName["state.pull"]
	if pull.Bytes != 10_000 || pull.Fails != 1 {
		t.Fatalf("state.pull bytes=%d fails=%d", pull.Bytes, pull.Fails)
	}
	if p50 := byName["exec"].P50; p50 < 500*time.Microsecond || p50 > 2*time.Millisecond {
		t.Fatalf("exec p50 = %v outside its power-of-two bucket", p50)
	}
}

func TestHistogramQuantilesAndBounds(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	if h.Count() != 1000 || h.Sum() != 1000*1001/2 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
	// p50 of 1..1000 is 500; bucket [256,511] or [512,1023] midpoints are
	// acceptable given power-of-two resolution.
	p50 := h.Quantile(0.5)
	if p50 < 256 || p50 > 1023 {
		t.Fatalf("p50 = %d", p50)
	}
	h.Observe(-5) // clamps to 0
	if h.Quantile(0) != 0 {
		t.Fatalf("q0 = %d, want 0 bucket", h.Quantile(0))
	}
	var empty Histogram
	if empty.Quantile(0.99) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
}

func TestRegistryCountersGaugesExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("faasm_test_ops_total", "ops", map[string]string{"host": "h0", "op": "get"})
	c.Add(3)
	r.Counter("faasm_test_ops_total", "ops", map[string]string{"host": "h0", "op": "set"}).Inc()
	var backing int64 = 42
	r.CounterFunc("faasm_test_reads_total", "reads", nil, func() int64 { return backing })
	g := r.Gauge("faasm_test_inflight", "inflight", map[string]string{"host": "h0"})
	g.Set(7)
	r.GaugeFunc("faasm_test_keys", "keys", nil, func() int64 { return 9 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE faasm_test_ops_total counter",
		`faasm_test_ops_total{host="h0",op="get"} 3`,
		`faasm_test_ops_total{host="h0",op="set"} 1`,
		"faasm_test_reads_total 42",
		"# TYPE faasm_test_inflight gauge",
		`faasm_test_inflight{host="h0"} 7`,
		"faasm_test_keys 9",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Same name+labels returns the same counter.
	if r.Counter("faasm_test_ops_total", "ops", map[string]string{"op": "get", "host": "h0"}) != c {
		t.Fatal("re-registration returned a different counter")
	}
}

func TestRegistryHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("faasm_test_exec_seconds", "exec time", map[string]string{"host": "h0"})
	h.Observe(int64(time.Millisecond)) // 1e6 ns
	h.Observe(int64(time.Millisecond))
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "# TYPE faasm_test_exec_seconds histogram") {
		t.Fatalf("missing TYPE line:\n%s", out)
	}
	if !strings.Contains(out, `le="+Inf"} 2`) {
		t.Fatalf("missing +Inf bucket:\n%s", out)
	}
	if !strings.Contains(out, `faasm_test_exec_seconds_count{host="h0"} 2`) {
		t.Fatalf("missing count:\n%s", out)
	}
	if !strings.Contains(out, "faasm_test_exec_seconds_sum") {
		t.Fatalf("missing sum:\n%s", out)
	}
	// The le bounds must be rendered in seconds (no raw nanosecond bound).
	if strings.Contains(out, `le="1048575"`) {
		t.Fatalf("nanosecond bucket bound leaked into a _seconds histogram:\n%s", out)
	}
}

func TestRegistryNamingConventionEnforced(t *testing.T) {
	r := NewRegistry()
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		f()
	}
	mustPanic("bad prefix", func() { r.Counter("http_requests_total", "", nil) })
	mustPanic("counter without _total", func() { r.Counter("faasm_test_ops", "", nil) })
	mustPanic("bad label", func() { r.Gauge("faasm_test_x", "", map[string]string{"BadLabel": "v"}) })
	mustPanic("kind clash", func() {
		r.Counter("faasm_test_clash_total", "", nil)
		r.Gauge("faasm_test_clash_total", "", nil)
	})
}

func TestConcurrentTraceAndScrape(t *testing.T) {
	tr := NewTracer(time.Now, 1, 128)
	r := NewRegistry()
	h := r.Histogram("faasm_test_lat_seconds", "", nil)
	c := r.Counter("faasm_test_calls_total", "", nil)
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 500; i++ {
				tc := tr.Start("h", "fn")
				tc.RecordSpan("h", "exec", "", time.Now(), time.Microsecond, 0, false)
				tr.Finish(tc)
				h.Observe(int64(i))
				c.Inc()
			}
		}()
	}
	stop := make(chan struct{})
	scraperDone := make(chan struct{})
	go func() {
		defer close(scraperDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			var b strings.Builder
			r.WritePrometheus(&b)
			tr.Slowest(5)
			tr.SpanStats()
		}
	}()
	writers.Wait()
	close(stop)
	<-scraperDone
	if c.Value() != 2000 {
		t.Fatalf("calls = %d", c.Value())
	}
}

func TestGetHugeIDDoesNotPanic(t *testing.T) {
	tr := NewTracer(time.Now, 1, 8)
	// Ids at or past 2^63 must index shards in uint64 space; a signed
	// conversion would go negative and panic.
	if _, ok := tr.Get(TraceID(^uint64(0))); ok {
		t.Fatal("unknown huge id reported present")
	}
}
