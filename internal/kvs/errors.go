package kvs

import (
	"errors"
	"io"
	"net"
	"syscall"
)

// ErrUnavailable marks a store that cannot currently serve operations — the
// process is down, the network path is broken, or a fault injector says so.
// Wrap it (fmt.Errorf("...: %w", kvs.ErrUnavailable)) so IsUnavailable
// classifies the failure. Unavailability is the retryable / fail-over-able
// class of error: the operation never reached a healthy store, so routing it
// elsewhere (or again, for idempotent commands) cannot double-apply it the
// way replaying past a semantic rejection could.
var ErrUnavailable = errors.New("kvs: store unavailable")

// IsUnavailable reports whether err means the store could not be reached at
// all, as opposed to a semantic rejection ("ttl must be positive") from a
// live store. The sharded ring uses this to decide when a failed read may
// fall through to another copy and when a failed replica write should mark
// the copy suspect; the wire client uses it to decide when a retry is safe.
//
// Classified unavailable: anything wrapping ErrUnavailable, any net.Error
// (dial failures, timeouts), a connection that died mid-exchange (EOF,
// unexpected EOF, use-of-closed), and the usual connection-level errnos.
// Everything else — including "kvs: server: ..." replies, which prove a live
// server processed the request — is not.
func IsUnavailable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrUnavailable) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	return errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) ||
		errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE)
}
