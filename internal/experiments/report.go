// Package experiments regenerates every table and figure in the paper's
// evaluation (§6). Each experiment returns a Report whose rows mirror the
// paper's series, so EXPERIMENTS.md can record paper-vs-measured side by
// side. cmd/faasm-bench prints them; the repo-root benchmark file wraps
// them in testing.B benches.
//
// Micro experiments (Tables 1 and 3, Figs 9a/9b, the Fig 10 service times)
// measure this substrate for real, in real time. Macro experiments (Figs
// 6–8) run on the cluster harness: real guest code over a simulated 1 Gbps
// network on a scaled clock, with the container baseline using the paper's
// own measured cold-start and footprint constants. EXPERIMENTS.md states
// the scale and substitutions for every run.
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Report is one experiment's regenerated table.
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Add appends a row.
func (r *Report) Add(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// Note appends a footnote.
func (r *Report) Note(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders an aligned text table.
func (r *Report) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s — %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// JSON renders the report as one machine-readable object (faasm-bench
// -json); the BENCH_*.json result trajectory consumes this form.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// CSV renders the rows as comma-separated values.
func (r *Report) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(r.Header, ","))
	b.WriteByte('\n')
	for _, row := range r.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Options tunes experiment scale.
type Options struct {
	// Quick shrinks sweeps for CI; full runs match EXPERIMENTS.md.
	Quick bool
}
