package simnet

import (
	"time"

	"faasm.dev/faasm/internal/kvs"
	"faasm.dev/faasm/internal/kvs/kvstest"
	"faasm.dev/faasm/internal/vtime"
)

// FaultShard is a fault-capable shard for the simulated tier: one shard's
// store behind deterministic fault injection (whole-shard crash/restore,
// injected errors, added latency), with the injected latency paid on the
// experiment clock so a vtime-scaled chaos run degrades in experiment time,
// not wall time. The cluster harness wraps every shard engine in one when
// Config.FaultyShards is set, which is how the chaos experiments kill and
// revive shards without real process death.
//
// A partition is the same machinery observed asymmetrically: crash the
// FaultShard on one routing path while a second path wraps the same inner
// store with a healthy shard.
type FaultShard struct {
	*kvstest.FaultStore
}

// NewFaultShard wraps inner as a crashable shard; a nil clock uses the wall
// clock.
func NewFaultShard(inner kvs.Store, clock vtime.Clock) *FaultShard {
	f := kvstest.NewFaultStore(inner)
	if clock == nil {
		clock = vtime.Real{}
	}
	f.SetSleeper(func(d time.Duration) { clock.Sleep(d) })
	return &FaultShard{FaultStore: f}
}

var _ kvs.Store = (*FaultShard)(nil)
