package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"faasm.dev/faasm/internal/cluster"
	"faasm.dev/faasm/internal/hostapi"
	"faasm.dev/faasm/internal/shardkvs"
	"faasm.dev/faasm/internal/simnet"

	"faasm.dev/faasm/internal/kvs"
)

// StateChaos is the robustness gate for the sharded tier: kill one shard
// under mixed traffic with R=2 copies, W=1 write quorum, and failover reads,
// then revive it and let read-repair converge. Two sections:
//
//   - ring: the raw shardkvs ring under concurrent mixed load. Gate: zero
//     failed operations during the outage, failovers observed, and after
//     Heal the revived shard is at parity with its peers (no suspects).
//   - cluster: the same outage under the multi-host harness, with call
//     traffic whose guests read tier state. Gate: zero failed invocations.
//
// A failed gate prints in the failed column; TestStateChaosGate enforces it
// in CI (with -race, so the failover paths are also race-checked).
func StateChaos(opts Options) *Report {
	iters := 2000
	if opts.Quick {
		iters = 400
	}

	r := &Report{
		ID:     "state-chaos",
		Title:  "Tier shard failure: failover reads, quorum writes, read-repair",
		Header: []string{"section", "metric", "value", "gate"},
	}

	ringSection(r, iters)
	clusterSection(r, opts)
	r.Note("ring: 3 shards, R=2, W=1, ReadAny+failover; 4 workers × %d mixed ops (set/get/incr); shard-1 killed mid-run and revived, then Heal", iters)
	r.Note("cluster: 3 hosts, 3 shards (R=2, W=1, failover); shard-0 killed under invocations whose guests pull tier state, then revived and healed")
	r.Note("what can be lost: with W<R a write acknowledged only by copies that all later crash is invisible to repair — see the failure model in docs/ARCHITECTURE.md")
	return r
}

func ringSection(r *Report, iters int) {
	const shards = 3
	const workers = 4
	const slots = 8
	ring := shardkvs.New(shardkvs.Options{
		Replication:  2,
		WriteQuorum:  1,
		ReadPref:     shardkvs.ReadAny,
		ReadFailover: true,
	})
	engines := map[string]*kvs.Engine{}
	faults := map[string]*simnet.FaultShard{}
	for i := 0; i < shards; i++ {
		id := fmt.Sprintf("shard-%d", i)
		eng := kvs.NewEngine()
		fs := simnet.NewFaultShard(eng, nil)
		engines[id] = eng
		faults[id] = fs
		if err := ring.Attach(id, fs); err != nil {
			r.Add("ring", "attach", err.Error(), "FAILED")
			return
		}
	}

	var failed atomic.Int64
	var ops atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 1; i <= iters; i++ {
				key := fmt.Sprintf("chaos-%d-%d", w, i%slots)
				if err := ring.Set(key, []byte(fmt.Sprintf("v-%d", i))); err != nil {
					failed.Add(1)
				}
				if _, err := ring.Get(key); err != nil {
					failed.Add(1)
				}
				if _, err := ring.Incr(fmt.Sprintf("ctr-%d", w), 1); err != nil {
					failed.Add(1)
				}
				ops.Add(3)
			}
		}(w)
	}
	close(start)
	time.Sleep(2 * time.Millisecond)
	faults["shard-1"].Crash()
	time.Sleep(10 * time.Millisecond)
	faults["shard-1"].Restore()
	wg.Wait()

	healStart := time.Now()
	stats, healErr := ring.Heal()
	recovery := time.Since(healStart)
	st := ring.FailureStats()

	// Parity: after repair every copy of every key must agree with the last
	// write; staleness past Heal is unbounded divergence.
	parityErrs := 0
	for w := 0; w < workers; w++ {
		for s := 0; s < slots; s++ {
			last := 0
			for i := 1; i <= iters; i++ {
				if i%slots == s {
					last = i
				}
			}
			key := fmt.Sprintf("chaos-%d-%d", w, s)
			want := fmt.Sprintf("v-%d", last)
			for _, id := range ring.Owners(key) {
				if v, err := engines[id].Get(key); err != nil || string(v) != want {
					parityErrs++
				}
			}
		}
		for _, id := range ring.Owners(fmt.Sprintf("ctr-%d", w)) {
			if n, err := engines[id].Incr(fmt.Sprintf("ctr-%d", w), 0); err != nil || n != int64(iters) {
				parityErrs++
			}
		}
	}

	gate := func(ok bool) string {
		if ok {
			return "ok"
		}
		return "FAILED"
	}
	r.Add("ring", "ops issued", fmt.Sprint(ops.Load()), "-")
	r.Add("ring", "failed ops", fmt.Sprint(failed.Load()), gate(failed.Load() == 0))
	r.Add("ring", "failovers", fmt.Sprint(st.Failovers), gate(st.Failovers > 0))
	r.Add("ring", "divergent writes", fmt.Sprint(st.Divergence), "-")
	r.Add("ring", "repair copies", fmt.Sprint(stats.CopiesWritten), "-")
	r.Add("ring", "recovery time", fmtDur(recovery), "-")
	r.Add("ring", "suspects after heal", fmt.Sprint(st.Suspects), gate(st.Suspects == 0 && healErr == nil))
	r.Add("ring", "parity errors", fmt.Sprint(parityErrs), gate(parityErrs == 0))
	if healErr != nil {
		r.Note("ring heal error: %v", healErr)
	}
}

func clusterSection(r *Report, opts Options) {
	calls := 120
	if opts.Quick {
		calls = 40
	}
	c := cluster.New(cluster.Config{
		Mode: cluster.ModeFaasm, Hosts: 3, TimeScale: 1000,
		StateShards: 3, StateReplicas: 2, StateWriteQuorum: 1,
		StateReadFailover: true, FaultyShards: true,
	})
	defer c.Shutdown()
	if err := c.Register("read", func(api hostapi.API) (int32, error) {
		if err := api.StatePull("data"); err != nil {
			return 1, err
		}
		buf, err := api.StateView("data", -1)
		if err != nil {
			return 2, err
		}
		api.WriteOutput(buf)
		return 0, nil
	}); err != nil {
		r.Add("cluster", "register", err.Error(), "FAILED")
		return
	}
	if err := c.SetState("data", []byte("payload")); err != nil {
		r.Add("cluster", "seed", err.Error(), "FAILED")
		return
	}
	failedCalls := 0
	drive := func(n int) {
		for i := 0; i < n; i++ {
			out, ret, err := c.Call("read", nil)
			if err != nil || ret != 0 || string(out) != "payload" {
				failedCalls++
			}
			// Tier writes and reads ride along so the dead shard's keys keep
			// changing and its read paths keep being exercised.
			key := fmt.Sprintf("k-%d", i%16)
			want := fmt.Sprintf("v-%d", i)
			if err := c.SetState(key, []byte(want)); err != nil {
				failedCalls++
			}
			if v, err := c.GetState(key); err != nil || string(v) != want {
				failedCalls++
			}
		}
	}
	drive(calls / 4)
	c.KillShard(0)
	drive(calls / 2)
	c.RestoreShard(0)
	drive(calls / 4)
	stats, healErr := c.HealState()
	st := c.StateRing().FailureStats()

	gate := func(ok bool) string {
		if ok {
			return "ok"
		}
		return "FAILED"
	}
	r.Add("cluster", "calls+tier ops", fmt.Sprint(calls*3), "-")
	r.Add("cluster", "failed", fmt.Sprint(failedCalls), gate(failedCalls == 0))
	r.Add("cluster", "failovers", fmt.Sprint(st.Failovers), gate(st.Failovers > 0))
	r.Add("cluster", "repair copies", fmt.Sprint(stats.CopiesWritten), "-")
	r.Add("cluster", "suspects after heal", fmt.Sprint(st.Suspects), gate(st.Suspects == 0 && healErr == nil))
	if healErr != nil {
		r.Note("cluster heal error: %v", healErr)
	}
}
