package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"strings"
	"sync"
	"testing"

	"faasm.dev/faasm/internal/kvs"
	"faasm.dev/faasm/internal/state"
	"faasm.dev/faasm/internal/vfs"
	"faasm.dev/faasm/internal/wavm"
)

// fakeChainer records chained calls and serves canned results.
type fakeChainer struct {
	mu      sync.Mutex
	chained []string
	inputs  [][]byte
	outputs map[uint64][]byte
	rets    map[uint64]int32
	next    uint64
}

func newFakeChainer() *fakeChainer {
	return &fakeChainer{outputs: map[uint64][]byte{}, rets: map[uint64]int32{}}
}

func (fc *fakeChainer) Chain(fn string, input []byte) (uint64, error) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	fc.next++
	fc.chained = append(fc.chained, fn)
	fc.inputs = append(fc.inputs, append([]byte(nil), input...))
	fc.outputs[fc.next] = []byte("out-" + fn)
	return fc.next, nil
}

func (fc *fakeChainer) Await(id uint64) (int32, error) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.rets[id], nil
}

func (fc *fakeChainer) Output(id uint64) ([]byte, error) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.outputs[id], nil
}

func testEnv() (*Env, *kvs.Engine) {
	engine := kvs.NewEngine()
	return &Env{
		State: state.NewLocalTier(engine),
		Files: vfs.NewMapGlobal(map[string][]byte{"etc/config": []byte("cfg")}),
		Chain: newFakeChainer(),
	}, engine
}

func mustModule(t *testing.T, src string) *wavm.Module {
	t.Helper()
	m, err := wavm.AssembleAndValidate(src)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNativeGuestEcho(t *testing.T) {
	env, _ := testEnv()
	f, err := New(FuncDef{
		Name: "echo",
		Native: func(ctx *Ctx) (int32, error) {
			ctx.WriteOutput(append([]byte("echo:"), ctx.Input()...))
			return 0, nil
		},
	}, env)
	if err != nil {
		t.Fatal(err)
	}
	out, ret, err := f.Execute([]byte("hello"))
	if err != nil || ret != 0 || string(out) != "echo:hello" {
		t.Fatalf("execute: %q %d %v", out, ret, err)
	}
	if !f.Warm() {
		t.Fatal("faaslet not marked warm")
	}
}

func TestNativeGuestPanicContained(t *testing.T) {
	env, _ := testEnv()
	f, _ := New(FuncDef{
		Name:   "boom",
		Native: func(ctx *Ctx) (int32, error) { panic("guest bug") },
	}, env)
	_, ret, err := f.Execute(nil)
	if err == nil || ret != -1 {
		t.Fatalf("panic not contained: %d %v", ret, err)
	}
	if !strings.Contains(err.Error(), "guest bug") {
		t.Fatalf("cause lost: %v", err)
	}
	// The Faaslet survives for reset + reuse.
	if err := f.Reset(); err != nil {
		t.Fatal(err)
	}
}

// wavmEchoSrc reads its input and writes it back with a prefix via the host
// interface.
const wavmEchoSrc = `(module
  (import "faasm" "read_call_input" (func $read (param i32 i32) (result i32)))
  (import "faasm" "write_call_output" (func $write (param i32 i32)))
  (memory 2 16)
  (data (i32.const 0) "wasm:")
  (func $main (export "main") (result i32) (local $n i32)
    ;; read input after the "wasm:" prefix at offset 5
    i32.const 5
    i32.const 1024
    call $read
    local.set $n
    ;; write prefix + input
    i32.const 0
    local.get $n
    i32.const 5
    i32.add
    call $write
    i32.const 0))`

func TestWavmGuestEcho(t *testing.T) {
	env, _ := testEnv()
	f, err := New(FuncDef{Name: "wecho", Module: mustModule(t, wavmEchoSrc)}, env)
	if err != nil {
		t.Fatal(err)
	}
	out, ret, err := f.Execute([]byte("data"))
	if err != nil || ret != 0 {
		t.Fatalf("execute: %d %v", ret, err)
	}
	if string(out) != "wasm:data" {
		t.Fatalf("out = %q", out)
	}
	if f.Steps == 0 {
		t.Fatal("no steps recorded")
	}
}

func TestWavmGuestTrapSurfaces(t *testing.T) {
	env, _ := testEnv()
	src := `(module
	  (memory 1 1)
	  (func $main (export "main") (result i32)
	    i32.const 999999
	    i32.load))`
	f, _ := New(FuncDef{Name: "oob", Module: mustModule(t, src)}, env)
	_, _, err := f.Execute(nil)
	var trap *wavm.Trap
	if err == nil || !asTrap(err, &trap) || trap.Kind != wavm.TrapOutOfBounds {
		t.Fatalf("expected OOB trap, got %v", err)
	}
}

func asTrap(err error, out **wavm.Trap) bool {
	t, ok := err.(*wavm.Trap)
	if ok {
		*out = t
	}
	return ok
}

func TestWavmChainCalls(t *testing.T) {
	env, _ := testEnv()
	src := `(module
	  (import "faasm" "chain_call" (func $chain (param i32 i32 i32 i32) (result i32)))
	  (import "faasm" "await_call" (func $await (param i32) (result i32)))
	  (import "faasm" "get_call_output" (func $out (param i32 i32 i32) (result i32)))
	  (import "faasm" "write_call_output" (func $write (param i32 i32)))
	  (memory 1)
	  (data (i32.const 0) "worker")
	  (data (i32.const 16) "payload")
	  (func $main (export "main") (result i32) (local $id i32) (local $n i32)
	    i32.const 0  i32.const 6    ;; function name
	    i32.const 16 i32.const 7    ;; input
	    call $chain
	    local.set $id
	    local.get $id
	    call $await
	    drop
	    ;; copy the chained output to offset 64 and emit it as our own
	    local.get $id
	    i32.const 64
	    i32.const 256
	    call $out
	    local.set $n
	    i32.const 64
	    local.get $n
	    call $write
	    i32.const 0))`
	f, err := New(FuncDef{Name: "chainer", Module: mustModule(t, src)}, env)
	if err != nil {
		t.Fatal(err)
	}
	out, ret, err := f.Execute(nil)
	if err != nil || ret != 0 {
		t.Fatalf("execute: %d %v", ret, err)
	}
	fc := env.Chain.(*fakeChainer)
	if len(fc.chained) != 1 || fc.chained[0] != "worker" || string(fc.inputs[0]) != "payload" {
		t.Fatalf("chain record: %v %q", fc.chained, fc.inputs)
	}
	if string(out) != "out-worker" {
		t.Fatalf("chained output = %q", out)
	}
}

func TestWavmStateSharedBetweenFaaslets(t *testing.T) {
	// Faaslet A writes through a mapped state pointer; Faaslet B (same host)
	// reads the same bytes through its own mapping — zero copies, the
	// memory-sharing claim of §3.3/§4.2 end to end.
	env, engine := testEnv()
	engine.Set("shared-val", make([]byte, 64))

	writer := `(module
	  (import "faasm" "get_state" (func $get (param i32 i32 i32) (result i32)))
	  (import "faasm" "push_state" (func $push (param i32 i32)))
	  (memory 1)
	  (data (i32.const 0) "shared-val")
	  (func $main (export "main") (result i32) (local $p i32)
	    i32.const 0 i32.const 10 i32.const 64
	    call $get
	    local.set $p
	    ;; write 42 at value[8]
	    local.get $p
	    i32.const 8
	    i32.add
	    i32.const 42
	    i32.store
	    i32.const 0))`
	reader := `(module
	  (import "faasm" "get_state" (func $get (param i32 i32 i32) (result i32)))
	  (memory 1)
	  (data (i32.const 0) "shared-val")
	  (func $main (export "main") (result i32) (local $p i32)
	    i32.const 0 i32.const 10 i32.const 64
	    call $get
	    local.set $p
	    local.get $p
	    i32.const 8
	    i32.add
	    i32.load))`

	fw, err := New(FuncDef{Name: "writer", Module: mustModule(t, writer)}, env)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := New(FuncDef{Name: "reader", Module: mustModule(t, reader)}, env)
	if err != nil {
		t.Fatal(err)
	}
	if _, ret, err := fw.Execute(nil); err != nil || ret != 0 {
		t.Fatalf("writer: %d %v", ret, err)
	}
	_, ret, err := fr.Execute(nil)
	if err != nil {
		t.Fatal(err)
	}
	if ret != 42 {
		t.Fatalf("reader saw %d, want 42 (no sharing?)", ret)
	}
	// Nothing was pushed: the global tier must still be zero.
	g, _ := engine.Get("shared-val")
	if g[8] != 0 {
		t.Fatal("write leaked to global tier without push")
	}
}

func TestWavmPushPullThroughGlobalTier(t *testing.T) {
	// Host 1 pushes; host 2 (separate local tier) pulls.
	engine := kvs.NewEngine()
	engine.Set("v", make([]byte, 8))
	env1 := &Env{State: state.NewLocalTier(engine)}
	env2 := &Env{State: state.NewLocalTier(engine)}

	pusher := `(module
	  (import "faasm" "get_state" (func $get (param i32 i32 i32) (result i32)))
	  (import "faasm" "push_state" (func $push (param i32 i32)))
	  (memory 1)
	  (data (i32.const 0) "v")
	  (func $main (export "main") (result i32) (local $p i32)
	    i32.const 0 i32.const 1 i32.const 8
	    call $get
	    local.set $p
	    local.get $p
	    i32.const 1234
	    i32.store
	    i32.const 0 i32.const 1
	    call $push
	    i32.const 0))`
	puller := `(module
	  (import "faasm" "get_state" (func $get (param i32 i32 i32) (result i32)))
	  (import "faasm" "pull_state" (func $pull (param i32 i32)))
	  (memory 1)
	  (data (i32.const 0) "v")
	  (func $main (export "main") (result i32) (local $p i32)
	    i32.const 0 i32.const 1
	    call $pull
	    i32.const 0 i32.const 1 i32.const 8
	    call $get
	    local.set $p
	    local.get $p
	    i32.load))`

	fp, err := New(FuncDef{Name: "pusher", Module: mustModule(t, pusher)}, env1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ret, err := fp.Execute(nil); err != nil || ret != 0 {
		t.Fatalf("pusher: %d %v", ret, err)
	}
	fq, err := New(FuncDef{Name: "puller", Module: mustModule(t, puller)}, env2)
	if err != nil {
		t.Fatal(err)
	}
	_, ret, err := fq.Execute(nil)
	if err != nil || ret != 1234 {
		t.Fatalf("puller: %d %v", ret, err)
	}
}

func TestWavmFileIO(t *testing.T) {
	env, _ := testEnv()
	src := fmt.Sprintf(`(module
	  (import "faasm" "open" (func $open (param i32 i32 i32) (result i32)))
	  (import "faasm" "read" (func $read (param i32 i32 i32) (result i32)))
	  (import "faasm" "close" (func $close (param i32) (result i32)))
	  (import "faasm" "write_call_output" (func $out (param i32 i32)))
	  (memory 1)
	  (data (i32.const 0) "etc/config")
	  (func $main (export "main") (result i32) (local $fd i32) (local $n i32)
	    i32.const 0 i32.const 10 i32.const %d
	    call $open
	    local.set $fd
	    local.get $fd
	    i32.const 0
	    i32.lt_s
	    if
	      i32.const 1
	      return
	    end
	    local.get $fd
	    i32.const 100
	    i32.const 64
	    call $read
	    local.set $n
	    i32.const 100
	    local.get $n
	    call $out
	    local.get $fd
	    call $close))`, vfs.ORdonly)
	f, err := New(FuncDef{Name: "reader", Module: mustModule(t, src)}, env)
	if err != nil {
		t.Fatal(err)
	}
	out, ret, err := f.Execute(nil)
	if err != nil || ret != 0 || string(out) != "cfg" {
		t.Fatalf("file read: %q %d %v", out, ret, err)
	}
}

func TestWavmMemoryCalls(t *testing.T) {
	env, _ := testEnv()
	src := `(module
	  (import "faasm" "sbrk" (func $sbrk (param i32) (result i32)))
	  (import "faasm" "mmap" (func $mmap (param i32) (result i32)))
	  (memory 1 8)
	  (func $main (export "main") (result i32) (local $old i32) (local $m i32)
	    ;; sbrk grows the break
	    i32.const 70000
	    call $sbrk
	    drop
	    ;; mmap returns a page-aligned fresh region
	    i32.const 100
	    call $mmap
	    local.set $m
	    ;; store/load through the new mapping
	    local.get $m
	    i32.const 7
	    i32.store
	    local.get $m
	    i32.load))`
	f, _ := New(FuncDef{Name: "mem", Module: mustModule(t, src)}, env)
	_, ret, err := f.Execute(nil)
	if err != nil || ret != 7 {
		t.Fatalf("memory calls: %d %v", ret, err)
	}
}

func TestMemoryLimitEnforced(t *testing.T) {
	env, _ := testEnv()
	src := `(module
	  (import "faasm" "mmap" (func $mmap (param i32) (result i32)))
	  (memory 1 1024)
	  (func $main (export "main") (result i32)
	    i32.const 1000000
	    call $mmap))`
	f, _ := New(FuncDef{Name: "hog", Module: mustModule(t, src), MemLimitPages: 4}, env)
	_, ret, err := f.Execute(nil)
	if err != nil {
		t.Fatal(err)
	}
	if ret != -1 {
		t.Fatalf("mmap past limit returned %d, want -1", ret)
	}
}

func TestWavmMiscCalls(t *testing.T) {
	env, _ := testEnv()
	src := `(module
	  (import "faasm" "gettime" (func $time (result i64)))
	  (import "faasm" "getrandom" (func $rand (param i32 i32) (result i32)))
	  (memory 1)
	  (func $main (export "main") (result i32)
	    call $time
	    i64.const 0
	    i64.lt_s
	    if
	      i32.const 1
	      return
	    end
	    i32.const 0
	    i32.const 16
	    call $rand))`
	f, _ := New(FuncDef{Name: "misc", Module: mustModule(t, src)}, env)
	_, ret, err := f.Execute(nil)
	if err != nil || ret != 16 {
		t.Fatalf("misc: %d %v", ret, err)
	}
}

func TestResetDiscardsAllResidue(t *testing.T) {
	// The §5.2 multi-tenant guarantee: after Reset, the next call cannot
	// observe anything the previous call wrote.
	env, _ := testEnv()
	writeSecret := `(module
	  (memory 1)
	  (func $main (export "main") (result i32)
	    i32.const 100
	    i32.const 0x5ec7e7
	    i32.store
	    i32.const 0))`
	f, _ := New(FuncDef{Name: "tenant", Module: mustModule(t, writeSecret)}, env)
	if _, err := f.Snapshot(); err != nil { // proto before first call
		t.Fatal(err)
	}
	if _, _, err := f.Execute(nil); err != nil {
		t.Fatal(err)
	}
	// Memory now holds the secret.
	v, _ := f.Memory().ReadU32(100)
	if v != 0x5ec7e7 {
		t.Fatal("secret not written")
	}
	if err := f.Reset(); err != nil {
		t.Fatal(err)
	}
	v, _ = f.Memory().ReadU32(100)
	if v != 0 {
		t.Fatalf("secret survived reset: %#x", v)
	}
	// FS and sockets are also clean.
	if f.FS().OpenCount() != 0 || f.Net().OpenSockets() != 0 {
		t.Fatal("descriptors survived reset")
	}
}

func TestResetRestoresProtoContents(t *testing.T) {
	env, _ := testEnv()
	f, _ := New(FuncDef{
		Name: "init",
		Native: func(ctx *Ctx) (int32, error) {
			ctx.WriteOutput([]byte("ran"))
			return 0, nil
		},
		InitialPages: 2,
	}, env)
	// Simulate initialisation code: write interpreter state, snapshot.
	f.Memory().WriteBytes(0, []byte("initialised runtime state"))
	if _, err := f.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Scribble and reset.
	f.Memory().WriteBytes(0, []byte("scribbled garbage zzzzzzz"))
	if err := f.Reset(); err != nil {
		t.Fatal(err)
	}
	got, _ := f.Memory().ReadBytes(0, 25)
	if string(got) != "initialised runtime state" {
		t.Fatalf("proto contents lost: %q", got)
	}
}

func TestProtoCrossHostRestore(t *testing.T) {
	// Snapshot on "host 1", serialise, restore on "host 2" into a new
	// Faaslet — the OS-independent cross-host restore of §5.2.
	env1, _ := testEnv()
	counter := `(module
	  (global $n (mut i32) (i32.const 0))
	  (memory 1)
	  (func $main (export "main") (result i32)
	    global.get $n
	    i32.const 1
	    i32.add
	    global.set $n
	    ;; also bump a memory slot
	    i32.const 8
	    i32.const 8
	    i32.load
	    i32.const 1
	    i32.add
	    i32.store
	    i32.const 8
	    i32.load))`
	mod := mustModule(t, counter)
	f1, err := New(FuncDef{Name: "count", Module: mod}, env1)
	if err != nil {
		t.Fatal(err)
	}
	// Run twice: memory slot = 2, global = 2.
	f1.Execute(nil)
	if _, ret, _ := f1.Execute(nil); ret != 2 {
		t.Fatalf("warmup ret = %d", ret)
	}
	proto, err := f1.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := proto.Serialize()
	if err != nil {
		t.Fatal(err)
	}

	env2, _ := testEnv()
	restored, err := DeserializeProto(blob)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := NewFromProto(FuncDef{Name: "count", Module: mod}, env2, restored)
	if err != nil {
		t.Fatal(err)
	}
	// The restored Faaslet continues from the snapshot: next count is 3.
	_, ret, err := f2.Execute(nil)
	if err != nil || ret != 3 {
		t.Fatalf("restored execution: %d %v", ret, err)
	}
}

func TestProtoFunctionMismatchRejected(t *testing.T) {
	env, _ := testEnv()
	f, _ := New(FuncDef{Name: "a", Native: func(ctx *Ctx) (int32, error) { return 0, nil }}, env)
	p, _ := f.Snapshot()
	g, _ := New(FuncDef{Name: "b", Native: func(ctx *Ctx) (int32, error) { return 0, nil }}, env)
	if err := g.SetProto(p); err == nil {
		t.Fatal("cross-function proto accepted")
	}
}

func TestCtxStateRoundTrip(t *testing.T) {
	env, engine := testEnv()
	engine.Set("model", bytes.Repeat([]byte{9}, 32))
	f, _ := New(FuncDef{
		Name: "native-state",
		Native: func(ctx *Ctx) (int32, error) {
			buf, err := ctx.MapState("model", 32)
			if err != nil {
				return 1, err
			}
			if buf[0] != 9 {
				return 2, nil
			}
			buf[0] = 77
			v, _ := ctx.State("model", 32)
			if err := v.Push(); err != nil {
				return 3, err
			}
			return 0, nil
		},
	}, env)
	_, ret, err := f.Execute(nil)
	if err != nil || ret != 0 {
		t.Fatalf("native state: %d %v", ret, err)
	}
	g, _ := engine.Get("model")
	if g[0] != 77 {
		t.Fatal("push did not reach global tier")
	}
}

func TestCtxAppendAndLocks(t *testing.T) {
	env, engine := testEnv()
	f, _ := New(FuncDef{
		Name: "appender",
		Native: func(ctx *Ctx) (int32, error) {
			if err := ctx.LockGlobal("results", true); err != nil {
				return 1, err
			}
			ctx.AppendState("results", []byte("x"))
			if err := ctx.UnlockGlobal("results"); err != nil {
				return 2, err
			}
			return 0, nil
		},
	}, env)
	if _, ret, err := f.Execute(nil); err != nil || ret != 0 {
		t.Fatalf("append: %d %v", ret, err)
	}
	g, _ := engine.Get("results")
	if string(g) != "x" {
		t.Fatalf("results = %q", g)
	}
}

func TestLeakedGlobalLockReleasedOnReset(t *testing.T) {
	env, _ := testEnv()
	f, _ := New(FuncDef{
		Name: "leaker",
		Native: func(ctx *Ctx) (int32, error) {
			return 0, ctx.LockGlobal("k", true) // never unlocks
		},
	}, env)
	if _, _, err := f.Execute(nil); err != nil {
		t.Fatal(err)
	}
	f.Reset()
	// Another Faaslet can take the lock immediately (not after lease TTL).
	done := make(chan struct{})
	go func() {
		tok, _ := env.State.LockGlobal("k", true)
		env.State.UnlockGlobal("k", tok)
		close(done)
	}()
	<-done
}

func TestWavmDynamicLinking(t *testing.T) {
	env, _ := testEnv()
	// The library exports add3; compile it to an object and place it in
	// the Faaslet filesystem (global tier), like an uploaded Python ext.
	lib := mustModule(t, `(module
	  (memory 1)
	  (func $add3 (export "add3") (param $x i64) (result i64)
	    local.get $x
	    i64.const 3
	    i64.add))`)
	blob, err := wavm.EncodeObject(lib)
	if err != nil {
		t.Fatal(err)
	}
	env.Files = vfs.NewMapGlobal(map[string][]byte{"libs/libadd.so": blob})

	src := `(module
	  (import "faasm" "dlopen" (func $dlopen (param i32 i32) (result i32)))
	  (import "faasm" "dlsym" (func $dlsym (param i32 i32 i32) (result i32)))
	  (import "faasm" "dlcall" (func $dlcall (param i32 i32 i32 i32) (result i32)))
	  (import "faasm" "dlclose" (func $dlclose (param i32) (result i32)))
	  (memory 1)
	  (data (i32.const 0) "libs/libadd.so")
	  (data (i32.const 32) "add3")
	  (func $main (export "main") (result i32)
	    (local $h i32) (local $sym i32)
	    i32.const 0 i32.const 14
	    call $dlopen
	    local.set $h
	    local.get $h
	    i32.const 0
	    i32.lt_s
	    if
	      i32.const -1
	      return
	    end
	    local.get $h
	    i32.const 32 i32.const 4
	    call $dlsym
	    local.set $sym
	    ;; args at 64: one u64 = 39
	    i32.const 64
	    i64.const 39
	    i64.store
	    local.get $sym
	    i32.const 64   ;; argsPtr
	    i32.const 1    ;; argc
	    i32.const 80   ;; retPtr
	    call $dlcall
	    drop
	    local.get $h
	    call $dlclose
	    drop
	    ;; load the result
	    i32.const 80
	    i64.load
	    i32.wrap_i64))`
	f, err := New(FuncDef{Name: "dl", Module: mustModule(t, src)}, env)
	if err != nil {
		t.Fatal(err)
	}
	_, ret, err := f.Execute(nil)
	if err != nil || ret != 42 {
		t.Fatalf("dlcall: %d %v", ret, err)
	}
}

func TestDlopenMissingLibrary(t *testing.T) {
	env, _ := testEnv()
	src := `(module
	  (import "faasm" "dlopen" (func $dlopen (param i32 i32) (result i32)))
	  (memory 1)
	  (data (i32.const 0) "nope.so")
	  (func $main (export "main") (result i32)
	    i32.const 0 i32.const 7
	    call $dlopen))`
	f, _ := New(FuncDef{Name: "dl", Module: mustModule(t, src)}, env)
	_, ret, err := f.Execute(nil)
	if err != nil || ret != -1 {
		t.Fatalf("missing lib: %d %v", ret, err)
	}
}

func TestFootprintSmall(t *testing.T) {
	env, _ := testEnv()
	f, _ := New(FuncDef{Name: "noop", Native: func(ctx *Ctx) (int32, error) { return 0, nil }}, env)
	if _, _, err := f.Execute(nil); err != nil {
		t.Fatal(err)
	}
	// A no-op Faaslet must stay in the KB range (Table 3: ~200 KB; ours is
	// tighter because pages are lazy).
	if fp := f.Footprint(); fp > 256*1024 {
		t.Fatalf("no-op footprint = %d bytes", fp)
	}
}

func TestGetStateOffsetChunked(t *testing.T) {
	env, engine := testEnv()
	big := make([]byte, 64*1024)
	binary.LittleEndian.PutUint32(big[32*1024:], 31337)
	engine.Set("big", big)
	src := `(module
	  (import "faasm" "get_state_offset" (func $geto (param i32 i32 i32 i32) (result i32)))
	  (memory 1)
	  (data (i32.const 0) "big")
	  (func $main (export "main") (result i32) (local $p i32)
	    i32.const 0 i32.const 3
	    i32.const 32768 i32.const 4
	    call $geto
	    local.set $p
	    local.get $p
	    i32.load))`
	f, _ := New(FuncDef{Name: "chunky", Module: mustModule(t, src)}, env)
	_, ret, err := f.Execute(nil)
	if err != nil || ret != 31337 {
		t.Fatalf("chunked get: %d %v", ret, err)
	}
	// Only the covering chunks were pulled, not all 64 KB.
	if pulled := env.State.Pulled.Value(); pulled >= 64*1024 {
		t.Fatalf("pulled %d bytes", pulled)
	}
}

func TestStdoutCapturedAsOutput(t *testing.T) {
	env, _ := testEnv()
	src := `(module
	  (import "faasm" "write" (func $write (param i32 i32 i32) (result i32)))
	  (memory 1)
	  (data (i32.const 0) "printed")
	  (func $main (export "main") (result i32)
	    i32.const 1   ;; stdout
	    i32.const 0
	    i32.const 7
	    call $write
	    drop
	    i32.const 0))`
	f, _ := New(FuncDef{Name: "printer", Module: mustModule(t, src)}, env)
	out, _, err := f.Execute(nil)
	if err != nil || string(out) != "printed" {
		t.Fatalf("stdout capture: %q %v", out, err)
	}
}

func BenchmarkFaasletColdStart(b *testing.B) {
	env, _ := testEnv()
	mod, _ := wavm.AssembleAndValidate(`(module (memory 1) (func $main (export "main") (result i32) i32.const 0))`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := New(FuncDef{Name: "noop", Module: mod}, env)
		if err != nil {
			b.Fatal(err)
		}
		f.Close()
	}
}

func BenchmarkProtoRestore(b *testing.B) {
	env, _ := testEnv()
	mod, _ := wavm.AssembleAndValidate(`(module (memory 4) (func $main (export "main") (result i32) i32.const 0))`)
	f, _ := New(FuncDef{Name: "noop", Module: mod}, env)
	f.Memory().WriteBytes(0, bytes.Repeat([]byte{1}, 4*64*1024))
	proto, _ := f.Snapshot()
	def := FuncDef{Name: "noop", Module: mod}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := NewFromProto(def, env, proto)
		if err != nil {
			b.Fatal(err)
		}
		g.Close()
	}
}
