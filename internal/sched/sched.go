package sched

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"faasm.dev/faasm/internal/kvs"
	"faasm.dev/faasm/internal/obsv"
	"faasm.dev/faasm/internal/vtime"
)

// Placement says where a call should run.
type Placement int

// Placements.
const (
	// PlaceLocalWarm executes on this host using a warm Faaslet.
	PlaceLocalWarm Placement = iota
	// PlaceForward shares the call with another warm host.
	PlaceForward
	// PlaceLocalCold cold-starts a Faaslet on this host.
	PlaceLocalCold
)

func (p Placement) String() string {
	switch p {
	case PlaceLocalWarm:
		return "local-warm"
	case PlaceForward:
		return "forward"
	case PlaceLocalCold:
		return "local-cold"
	}
	return "unknown"
}

// Decision is one scheduling outcome.
type Decision struct {
	Placement Placement
	// TargetHost is the peer to share with when Placement == PlaceForward.
	TargetHost string
}

// warmSetKey is the global-tier key holding a function's warm hosts.
func warmSetKey(fn string) string { return "sched/warm/" + fn }

// aliveKey is the global-tier key holding a host's liveness lease: a
// presence marker written with SetEx, so the tier itself expires it on its
// own clock. A host whose record has vanished is dead to peers; no writer
// or observer clock ever enters the judgement.
func aliveKey(host string) string { return "sched/alive/" + host }

// leaseMark is the lease record's payload. Deliberately non-numeric: the
// previous release stored a writer-clock expiry stamp (decimal unix nanos)
// here, and nothing must ever mistake the new marker for one.
var leaseMark = []byte("up")

// DefaultPeerCacheTTL bounds the staleness of the cached peer warm set. A
// new warm host becomes visible to peers within this window; a vanished one
// stops receiving forwards within it (forwarding also falls back locally on
// transport failure, so staleness is a latency cost, not a correctness one).
const DefaultPeerCacheTTL = time.Second

// DefaultLeaseTTL is how long a host's warm advertisements outlive its last
// heartbeat. The heartbeat loop refreshes the lease every LeaseTTL/3, so a
// healthy host misses two beats before anyone doubts it; a crashed host is
// filtered from every peer's forwarding within one lease TTL (plus at most
// one peer-cache TTL of staleness).
const DefaultLeaseTTL = 10 * time.Second

// Stats counts scheduling decisions per placement, for the evaluation.
type Stats struct {
	LocalWarm atomic.Int64
	Forwarded atomic.Int64
	ColdStart atomic.Int64
}

// fnState is the per-function scheduler state: the local idle-warm counter,
// whether this host currently advertises itself in the function's global
// warm set, and the cached peer warm set.
type fnState struct {
	// idle counts this host's idle warm Faaslets (including Faaslets whose
	// post-call reset is still in flight — they are committed to the pool).
	idle atomic.Int64
	// advertised tracks membership in the global warm set, so steady-state
	// warm traffic never re-issues SAdd.
	advertised atomic.Bool

	// cacheMu guards the cached peer set below.
	cacheMu sync.Mutex
	peers   []string
	fetched time.Time
	cached  bool
}

// peerStat is this scheduler's view of one forwarding target: an EWMA of
// observed round-trip latency and the number of forwards in flight to it.
type peerStat struct {
	// inflight counts forwards currently executing on the peer.
	inflight atomic.Int64
	// ewmaNanos is the smoothed forward latency; 0 means never probed.
	ewmaNanos atomic.Int64
}

// ewmaShift is the EWMA smoothing factor as a power of two: each sample
// moves the estimate 1/4 of the way to itself.
const ewmaShift = 2

// failurePenalty multiplies a peer's latency estimate when a forward to it
// fails, sinking it in the weighted ranking until successes pull it back.
const failurePenalty = 8

// minFailureBase is the floor the failure penalty multiplies when a forward
// fails faster than this (a connection refused returns in microseconds —
// without the floor, a fast failure would hand a dead peer the best score
// in the cluster).
const minFailureBase = int64(time.Millisecond)

// maxEwmaNanos caps the latency estimate so repeated failure penalties
// saturate instead of overflowing int64 (an overflow would wrap negative
// and clamp back to 1, scoring a persistently failing peer best again).
const maxEwmaNanos = int64(time.Hour)

// Scheduler is one host's local scheduler.
type Scheduler struct {
	host     string
	store    kvs.Store
	capacity int64
	clock    vtime.Clock

	// PeerCacheTTL is how long a fetched peer warm set is trusted. Set it
	// before first use; zero means DefaultPeerCacheTTL.
	PeerCacheTTL time.Duration

	// LeaseTTL is this host's liveness lease duration: each heartbeat
	// re-arms the tier-side expiry for this long. Peers never judge the
	// lease themselves — the tier hides it once it expires on the tier's
	// clock. Set before first use; zero means DefaultLeaseTTL.
	LeaseTTL time.Duration

	// fns maps function name → *fnState.
	fns sync.Map
	// inflight counts executing calls on this host.
	inflight atomic.Int64
	// rr round-robins forwarding across unprobed peers.
	rr atomic.Uint64
	// peerStats maps host → *peerStat (latency/load across all functions).
	peerStats sync.Map

	// lastBeat is the unix-nano instant of the last lease write, 0 if never.
	lastBeat atomic.Int64
	// hbStop ends the heartbeat loop; hbMu orders Start/Stop.
	hbMu      sync.Mutex
	hbStop    chan struct{}
	hbStopped atomic.Bool

	// Stats counts decisions made, per placement, for the evaluation.
	Stats Stats
}

// New creates a scheduler for host with the given concurrent-execution
// capacity (0 means effectively unlimited).
func New(host string, store kvs.Store, capacity int) *Scheduler {
	if capacity <= 0 {
		capacity = 1 << 30
	}
	return &Scheduler{host: host, store: store, capacity: int64(capacity), clock: vtime.Real{}}
}

// SetClock replaces the clock driving peer-cache expiry and the heartbeat
// cadence (the runtime passes its own, so simulated clusters beat in
// simulated time). Liveness itself is judged on the global tier's clock,
// never this one. Call before use.
func (s *Scheduler) SetClock(c vtime.Clock) {
	if c != nil {
		s.clock = c
	}
}

// Host returns this scheduler's host name.
func (s *Scheduler) Host() string { return s.host }

func (s *Scheduler) fn(name string) *fnState {
	if e, ok := s.fns.Load(name); ok {
		return e.(*fnState)
	}
	e, _ := s.fns.LoadOrStore(name, &fnState{})
	return e.(*fnState)
}

func (s *Scheduler) peerStat(host string) *peerStat {
	if e, ok := s.peerStats.Load(host); ok {
		return e.(*peerStat)
	}
	e, _ := s.peerStats.LoadOrStore(host, &peerStat{})
	return e.(*peerStat)
}

func (s *Scheduler) peerCacheTTL() time.Duration {
	if s.PeerCacheTTL > 0 {
		return s.PeerCacheTTL
	}
	return DefaultPeerCacheTTL
}

func (s *Scheduler) leaseTTL() time.Duration {
	if s.LeaseTTL > 0 {
		return s.LeaseTTL
	}
	return DefaultLeaseTTL
}

// Instrument registers the scheduler's decision counters and liveness
// signals with reg, labelled by host. Everything is bridged from existing
// atomics at scrape time — nothing is added to the scheduling hot path.
func (s *Scheduler) Instrument(reg *obsv.Registry, host string) {
	place := func(p string) map[string]string {
		return map[string]string{"host": host, "placement": p}
	}
	reg.CounterFunc("faasm_sched_decisions_total", "scheduling decisions by placement", place("local_warm"), s.Stats.LocalWarm.Load)
	reg.CounterFunc("faasm_sched_decisions_total", "scheduling decisions by placement", place("forward"), s.Stats.Forwarded.Load)
	reg.CounterFunc("faasm_sched_decisions_total", "scheduling decisions by placement", place("local_cold"), s.Stats.ColdStart.Load)
	l := map[string]string{"host": host}
	reg.GaugeFunc("faasm_sched_inflight", "calls executing on this host", l, func() int64 { return int64(s.Inflight()) })
	reg.GaugeFunc("faasm_sched_last_heartbeat_seconds", "unix time of the last liveness lease write", l, func() int64 {
		return s.lastBeat.Load() / int64(time.Second)
	})
}

// Schedule decides where a call to fn should run. The warm local path is
// lock-free and touches no global state.
func (s *Scheduler) Schedule(fn string) (Decision, error) {
	e := s.fn(fn)
	warmHere := e.idle.Load() > 0
	if warmHere && s.inflight.Load() < s.capacity {
		s.Stats.LocalWarm.Add(1)
		return Decision{Placement: PlaceLocalWarm}, nil
	}

	// Consult the (cached) shared warm set for another host.
	peers, err := s.peers(e, fn)
	if err != nil {
		return Decision{}, fmt.Errorf("sched: warm set for %s: %w", fn, err)
	}
	if len(peers) > 0 {
		// Share with a warm peer: lowest load-adjusted latency first,
		// round-robin across peers we have never probed.
		target := s.pickPeer(peers)
		s.Stats.Forwarded.Add(1)
		return Decision{Placement: PlaceForward, TargetHost: target}, nil
	}

	if warmHere {
		// Warm but at capacity with nowhere to share: still run locally
		// (queueing), matching the paper's behaviour under saturation.
		s.Stats.LocalWarm.Add(1)
		return Decision{Placement: PlaceLocalWarm}, nil
	}

	// Cold start here and advertise this host as warm for fn. SAdd is the
	// atomic update of the shared scheduler state; it is skipped when the
	// host is already advertised (write-through only on the transition).
	if err := s.advertise(e, fn); err != nil {
		return Decision{}, fmt.Errorf("sched: advertise warm %s: %w", fn, err)
	}
	s.Stats.ColdStart.Add(1)
	return Decision{Placement: PlaceLocalCold}, nil
}

// advertise performs the not-advertised → advertised transition: make sure
// this host's liveness lease exists (peers treat a warm entry without a live
// lease as a dead host), then add it to the function's warm set.
func (s *Scheduler) advertise(e *fnState, fn string) error {
	if !e.advertised.CompareAndSwap(false, true) {
		return nil
	}
	if err := s.ensureLease(); err != nil {
		e.advertised.Store(false)
		return err
	}
	if _, err := s.store.SAdd(warmSetKey(fn), s.host); err != nil {
		e.advertised.Store(false)
		return err
	}
	return nil
}

// pickPeer chooses a forwarding target: unprobed peers first (round-robin,
// so the scheduler explores and degrades to plain round-robin when it has
// no data), then the probed peer with the lowest EWMA latency scaled by its
// in-flight forward count.
func (s *Scheduler) pickPeer(peers []string) string {
	unprobed := 0
	for _, h := range peers {
		if s.peerStat(h).ewmaNanos.Load() == 0 {
			unprobed++
		}
	}
	if unprobed > 0 {
		n := int(s.rr.Add(1)-1) % unprobed
		for _, h := range peers {
			if s.peerStat(h).ewmaNanos.Load() == 0 {
				if n == 0 {
					return h
				}
				n--
			}
		}
	}
	best := peers[0]
	var bestScore int64 = -1
	for _, h := range peers {
		st := s.peerStat(h)
		score := st.ewmaNanos.Load() * (1 + st.inflight.Load())
		if bestScore < 0 || score < bestScore {
			best, bestScore = h, score
		}
	}
	return best
}

// ForwardBegin records a forward in flight to host (load signal for the
// weighted picker). Pair with ForwardEnd around the transport call.
func (s *Scheduler) ForwardBegin(host string) {
	s.peerStat(host).inflight.Add(1)
}

// ForwardEnd records a completed forward to host: the observed round-trip
// feeds the latency EWMA, and a failure multiplies the estimate so traffic
// drains from a flaky peer before its lease expires.
func (s *Scheduler) ForwardEnd(host string, d time.Duration, ok bool) {
	st := s.peerStat(host)
	if st.inflight.Add(-1) < 0 {
		st.inflight.Store(0)
	}
	sample := int64(d)
	if sample <= 0 {
		sample = 1
	}
	for {
		old := st.ewmaNanos.Load()
		var next int64
		switch {
		case !ok:
			// Penalise relative to the larger of the estimate and the
			// observed round-trip, floored so a fast failure (connection
			// refused) cannot score a dead peer as the fastest host.
			base := old
			if sample > base {
				base = sample
			}
			if base < minFailureBase {
				base = minFailureBase
			}
			if base > maxEwmaNanos/failurePenalty {
				next = maxEwmaNanos
			} else {
				next = base * failurePenalty
			}
		case old == 0:
			next = sample
		default:
			next = old + (sample-old)>>ewmaShift
			if next == old && sample != old {
				// Make tiny deltas converge instead of sticking.
				if sample > old {
					next = old + 1
				} else {
					next = old - 1
				}
			}
		}
		if next <= 0 {
			next = 1
		}
		if st.ewmaNanos.CompareAndSwap(old, next) {
			return
		}
	}
}

// PeerLatency reports the smoothed forward latency observed for host
// (0 = never probed). Diagnostics and tests.
func (s *Scheduler) PeerLatency(host string) time.Duration {
	return time.Duration(s.peerStat(host).ewmaNanos.Load())
}

// PeerInflight reports forwards currently in flight to host.
func (s *Scheduler) PeerInflight(host string) int {
	return int(s.peerStat(host).inflight.Load())
}

// peers returns the live warm hosts for fn other than this one, serving
// from the TTL cache when fresh and refreshing from the global tier when
// stale. A refresh reads the function's warm set plus the listed hosts'
// liveness leases (one batched read), filters the dead, and best-effort
// evicts their stale entries from the global set.
func (s *Scheduler) peers(e *fnState, fn string) ([]string, error) {
	ttl := s.peerCacheTTL()
	now := s.clock.Now()
	e.cacheMu.Lock()
	if e.cached && now.Sub(e.fetched) < ttl {
		peers := e.peers
		e.cacheMu.Unlock()
		return peers, nil
	}
	e.cacheMu.Unlock()

	hosts, err := s.store.SMembers(warmSetKey(fn))
	if err != nil {
		return nil, err
	}
	candidates := hosts[:0]
	for _, h := range hosts {
		if h != s.host {
			candidates = append(candidates, h)
		}
	}
	peers, dead, err := s.filterAlive(candidates)
	if err != nil {
		return nil, err
	}
	// A dead host's warm entries are evicted by whoever notices: the global
	// set heals itself instead of waiting for the crashed owner's retreat.
	for _, h := range dead {
		s.store.SRem(warmSetKey(fn), h)
	}
	// Only non-empty peer sets are cached: a host with no warm peers is
	// about to cold-start (or queue under saturation), and must notice a
	// newly warm peer immediately rather than after a TTL.
	e.cacheMu.Lock()
	e.peers = peers
	e.fetched = now
	e.cached = len(peers) > 0
	e.cacheMu.Unlock()
	return peers, nil
}

// filterAlive splits hosts into live and dead by a single batched existence
// check on their lease records: the records are SetEx'd, so the tier hides
// an expired lease from the MGet and liveness is decided entirely on the
// tier's clock — no timestamp is parsed and no local clock is consulted
// anywhere on this path. A missing record counts as dead: every advertiser
// writes its lease before its first SAdd, so only crashed (or fabricated)
// hosts lack one.
func (s *Scheduler) filterAlive(hosts []string) (alive, dead []string, err error) {
	if len(hosts) == 0 {
		return nil, nil, nil
	}
	keys := make([]string, len(hosts))
	for i, h := range hosts {
		keys[i] = aliveKey(h)
	}
	leases, err := kvs.MGet(s.store, keys)
	if err != nil {
		return nil, nil, err
	}
	for i, h := range hosts {
		if leaseLive(leases[i]) {
			alive = append(alive, h)
		} else {
			dead = append(dead, h)
		}
	}
	return alive, dead, nil
}

// leaseLive reports whether a lease record marks a live host: exactly the
// leaseMark payload, still returned by the tier (so its tier-side TTL has
// not run out). Anything else — including the previous release's
// writer-clock expiry stamps, whose one-release read-side tolerance has been
// removed — is dead: stale stamp records never expire tier-side, so counting
// them live would keep a crashed old host forwardable forever.
func leaseLive(rec []byte) bool { return string(rec) == string(leaseMark) }

// Heartbeat re-arms this host's liveness lease for another LeaseTTL on the
// tier's clock (SetEx — the tier expires the record itself; nothing here
// writes or compares a timestamp). It also re-asserts the host's warm-set
// entries for every advertised function (idempotent SAdds), so an entry
// wrongly evicted while the host was unresponsive reappears within one
// beat.
func (s *Scheduler) Heartbeat() error {
	if err := s.store.SetEx(aliveKey(s.host), leaseMark, s.leaseTTL()); err != nil {
		return err
	}
	s.lastBeat.Store(s.clock.Now().UnixNano())
	var firstErr error
	s.fns.Range(func(k, v any) bool {
		if v.(*fnState).advertised.Load() {
			if _, err := s.store.SAdd(warmSetKey(k.(string)), s.host); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return true
	})
	return firstErr
}

// ensureLease writes the lease if it has never been written or is due for
// refresh — called on the advertise transition so the warm set never names
// a host without a live lease, whether or not the heartbeat loop runs.
func (s *Scheduler) ensureLease() error {
	// The local clock here only rate-limits redundant writes (beat cadence);
	// it never judges the lease itself — that is the tier's job.
	now := s.clock.Now().UnixNano()
	if last := s.lastBeat.Load(); last != 0 && now-last < int64(s.leaseTTL()/3) {
		return nil
	}
	// Write only the lease record here: advertise is on a caller's critical
	// path and the fns walk belongs to the background beat.
	if err := s.store.SetEx(aliveKey(s.host), leaseMark, s.leaseTTL()); err != nil {
		return err
	}
	s.lastBeat.Store(s.clock.Now().UnixNano())
	return nil
}

// StartHeartbeat launches the background lease refresher: one beat every
// LeaseTTL/3 while at least one function is advertised. Idempotent.
func (s *Scheduler) StartHeartbeat() {
	s.hbMu.Lock()
	defer s.hbMu.Unlock()
	if s.hbStop != nil || s.hbStopped.Load() {
		return
	}
	stop := make(chan struct{})
	s.hbStop = stop
	go s.heartbeatLoop(stop)
}

// StopHeartbeat ends the heartbeat loop. The lease record is deliberately
// left to expire on its own: a clean shutdown retreats its warm entries
// anyway, and expiry-as-departure keeps one code path for clean and
// crashed exits.
func (s *Scheduler) StopHeartbeat() {
	s.hbMu.Lock()
	defer s.hbMu.Unlock()
	s.hbStopped.Store(true)
	if s.hbStop != nil {
		close(s.hbStop)
		s.hbStop = nil
	}
}

func (s *Scheduler) heartbeatLoop(stop chan struct{}) {
	for {
		s.clock.Sleep(s.leaseTTL() / 3)
		select {
		case <-stop:
			return
		default:
		}
		if s.hbStopped.Load() {
			return
		}
		if s.anyAdvertised() {
			s.Heartbeat()
		}
	}
}

func (s *Scheduler) anyAdvertised() bool {
	found := false
	s.fns.Range(func(_, v any) bool {
		if v.(*fnState).advertised.Load() {
			found = true
			return false
		}
		return true
	})
	return found
}

// InvalidatePeers drops the cached peer warm set for fn, forcing the next
// miss to refresh from the global tier (used when a forward fails).
func (s *Scheduler) InvalidatePeers(fn string) {
	e := s.fn(fn)
	e.cacheMu.Lock()
	e.cached = false
	e.peers = nil
	e.cacheMu.Unlock()
}

// NoteWarm records that this host now holds n more idle warm Faaslets for
// fn (e.g. after a cold start completes or a call finishes). The global
// warm set is only written on the not-advertised → advertised transition;
// steady-state warm churn performs zero global operations.
func (s *Scheduler) NoteWarm(fn string, n int) error {
	e := s.fn(fn)
	e.idle.Add(int64(n))
	return s.advertise(e, fn)
}

// NoteEvicted records that this host lost n idle warm Faaslets for fn (they
// were acquired for execution, or evicted from the pool). Purely local: the
// host stays advertised, because its Faaslets for fn are still alive (busy
// or resetting). Use Retreat when the last Faaslet for fn is truly gone.
func (s *Scheduler) NoteEvicted(fn string, n int) error {
	e := s.fn(fn)
	for {
		cur := e.idle.Load()
		next := cur - int64(n)
		if next < 0 {
			next = 0
		}
		if e.idle.CompareAndSwap(cur, next) {
			return nil
		}
	}
}

// Retreat removes this host from fn's global warm set: its last live
// Faaslet for fn is gone (failed cold start, eviction of the final pooled
// Faaslet, shutdown), so peers must stop forwarding here.
func (s *Scheduler) Retreat(fn string) error {
	e := s.fn(fn)
	e.idle.Store(0)
	if e.advertised.Swap(false) {
		if _, err := s.store.SRem(warmSetKey(fn), s.host); err != nil {
			return err
		}
	}
	return nil
}

// WarmCount reports this host's idle warm Faaslets for fn.
func (s *Scheduler) WarmCount(fn string) int {
	return int(s.fn(fn).idle.Load())
}

// Advertised reports whether this host is in fn's global warm set (per its
// own bookkeeping).
func (s *Scheduler) Advertised(fn string) bool {
	return s.fn(fn).advertised.Load()
}

// WarmHosts lists the cluster's live warm hosts for fn from the shared
// state: the raw set filtered by liveness leases, uncached and without the
// eviction side effect (tests and diagnostics).
func (s *Scheduler) WarmHosts(fn string) ([]string, error) {
	hosts, err := s.store.SMembers(warmSetKey(fn))
	if err != nil {
		return nil, err
	}
	alive, _, err := s.filterAlive(hosts)
	return alive, err
}

// Begin marks a call executing on this host (capacity accounting).
func (s *Scheduler) Begin() {
	s.inflight.Add(1)
}

// End marks a call finished.
func (s *Scheduler) End() {
	if s.inflight.Add(-1) < 0 {
		s.inflight.Store(0)
	}
}

// Inflight reports executing calls.
func (s *Scheduler) Inflight() int {
	n := s.inflight.Load()
	if n < 0 {
		n = 0
	}
	return int(n)
}
