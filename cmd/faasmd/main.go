// Command faasmd runs one FAASM runtime instance as an HTTP server: the
// deployable unit of Fig 5. It serves function invocation, the upload
// service (Fig 3's trusted code-generation phase), and status endpoints,
// and optionally connects to a shared kvs global tier so multiple faasmd
// processes form a cluster.
//
//	faasmd -listen :8090                           # standalone, in-process tier
//	faasmd -listen :8090 -state 10.0.0.5:6500      # join a shared global tier
//	faasmd -listen :8090 -state a:6500,b:6500      # sharded global tier (ring)
//	faasmd -kvs :6500                              # also serve one tier shard
//	faasmd -elastic-pool -pool-idle-timeout 30s    # autoscale warm pools
//
// The scheduling and state knobs (-pool-cap, -lease-ttl, -peer-cache-ttl,
// -expiry-sweep and the elastic-pool flags) are documented in the README's
// "Operating faasmd" section.
//
// Endpoints:
//
//	PUT  /f/<name>?lang=fc|wat   upload source; codegen; deploy
//	POST /invoke/<name>          body = input, response = output
//	GET  /status                 runtime counters
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"

	"faasm.dev/faasm/internal/frt"
	"faasm.dev/faasm/internal/kvs"
	"faasm.dev/faasm/internal/objstore"
	"faasm.dev/faasm/internal/shardkvs"
	"faasm.dev/faasm/internal/upload"
)

func main() {
	listen := flag.String("listen", ":8090", "HTTP listen address")
	stateAddrs := flag.String("state", "", "comma-separated kvs shard endpoints (empty = in-process; >1 shards the tier)")
	storeAddr := flag.String("store", "", "deprecated alias for -state")
	stateReplicas := flag.Int("state-replicas", 1, "copies per key when the tier is sharded")
	kvsListen := flag.String("kvs", "", "also serve a kvs global-tier shard on this address")
	host := flag.String("host", "faasmd-0", "this instance's cluster name")
	poolCap := flag.Int("pool-cap", 0, "idle warm Faaslets kept per function (0 = runtime default, 64)")
	leaseTTL := flag.Duration("lease-ttl", 0, "liveness lease on this host's warm advertisements; heartbeats run at a third of it (0 = 10s)")
	peerCacheTTL := flag.Duration("peer-cache-ttl", 0, "staleness bound on the cached peer warm set (0 = 1s)")
	elasticPool := flag.Bool("elastic-pool", false, "autoscale warm pools: grow ahead of misses, shrink on idle")
	poolIdleTimeout := flag.Duration("pool-idle-timeout", 0, "idle time before an elastic pool starts shrinking (0 = 30s)")
	expirySweep := flag.Duration("expiry-sweep", 0, "background sweep cadence for tier-side key expiry on engines this process hosts (0 = 1s)")
	flag.Parse()

	endpoints := *stateAddrs
	if endpoints == "" {
		endpoints = *storeAddr
	}

	var store kvs.Store
	var served *kvs.Engine
	newEngine := func() *kvs.Engine {
		eng := kvs.NewEngine()
		eng.SetSweepInterval(*expirySweep)
		return eng
	}
	if *kvsListen != "" {
		served = newEngine()
		srv, err := kvs.NewServer(served, *kvsListen)
		if err != nil {
			log.Fatalf("kvs listen: %v", err)
		}
		log.Printf("global tier shard serving on %s", srv.Addr())
	}
	switch addrs := shardkvs.SplitEndpoints(endpoints); {
	case len(addrs) > 1:
		ring, err := shardkvs.AttachRemote(addrs, shardkvs.Options{Replication: *stateReplicas})
		if err != nil {
			log.Fatalf("state tier: %v", err)
		}
		// Fail fast on unreachable shards rather than limping into traffic.
		if _, err := ring.ShardKeyCounts(); err != nil {
			log.Fatalf("state tier: %v", err)
		}
		log.Printf("global tier sharded across %d endpoints (replication %d)", len(addrs), *stateReplicas)
		store = ring
	case len(addrs) == 1:
		store = kvs.NewClient(addrs[0])
	case served != nil:
		store = served
	default:
		store = newEngine()
	}

	objects := objstore.NewMemory()
	up := upload.New(objects)
	inst := frt.New(frt.Config{
		Host:            *host,
		Store:           store,
		PoolCap:         *poolCap,
		LeaseTTL:        *leaseTTL,
		PeerCacheTTL:    *peerCacheTTL,
		ElasticPool:     *elasticPool,
		PoolIdleTimeout: *poolIdleTimeout,
	})

	mux := http.NewServeMux()
	mux.Handle("/f/", deployingUploader{up: up, inst: inst, objects: objects})
	mux.HandleFunc("/invoke/", func(w http.ResponseWriter, r *http.Request) {
		name := strings.TrimPrefix(r.URL.Path, "/invoke/")
		input, err := io.ReadAll(io.LimitReader(r.Body, 32<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		out, ret, err := inst.Call(name, input)
		if err != nil {
			http.Error(w, fmt.Sprintf("call failed (ret=%d): %v", ret, err), http.StatusInternalServerError)
			return
		}
		w.Header().Set("X-Faasm-Return-Code", fmt.Sprintf("%d", ret))
		w.Write(out)
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintf(w, "host: %s\nfunctions: %v\nfaaslets: %d\ncold: %d warm: %d proto: %d\nmedian exec: %v\n",
			inst.Host(), inst.Functions(), inst.FaasletCount(),
			inst.ColdStarts.Value(), inst.WarmStarts.Value(), inst.ProtoStarts.Value(),
			inst.ExecLatency.Median())
		fmt.Fprintf(w, "pool misses: %d prewarmed: %d idle reclaims: %d\n",
			inst.PoolMisses.Value(), inst.Prewarmed.Value(), inst.IdleReclaims.Value())
	})

	log.Printf("faasmd %s listening on %s", *host, *listen)
	log.Fatal(http.ListenAndServe(*listen, mux))
}

// deployingUploader wraps the upload service so a successful upload also
// deploys the generated module to this instance.
type deployingUploader struct {
	up      *upload.Service
	inst    *frt.Instance
	objects *objstore.Store
}

func (d deployingUploader) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	d.up.Handler().ServeHTTP(w, r)
	if r.Method == http.MethodPut || r.Method == http.MethodPost {
		name := strings.TrimPrefix(r.URL.Path, "/f/")
		if mod, err := upload.LoadObject(d.objects, name); err == nil {
			if err := d.inst.RegisterModule(name, mod); err != nil {
				log.Printf("deploy %s: %v", name, err)
			} else {
				log.Printf("deployed %s", name)
			}
		}
	}
}
