// Package sched implements the distributed shared-state scheduler of §5.1.
// FAASM runs one local scheduler per runtime instance; the set of warm hosts
// for every function lives in the global state tier, and each scheduler
// queries and atomically updates that set while deciding — the
// Omega-style [71] shared-state design the paper adopts.
//
// The decision rule, verbatim from the paper: execute locally if this host
// has a warm Faaslet and capacity; otherwise share the call with another
// warm host if one exists; otherwise cold-start locally (and advertise this
// host as warm). The goal is co-locating functions with the state they
// need, minimising data shipping.
//
// The hot path is engineered for concurrency: the local warm check is a
// lock-free per-function counter, capacity accounting is a single atomic,
// and the peer warm set is cached with a short TTL (Cloudburst-style lazy
// refresh), so steady-state warm traffic performs zero global-tier
// operations. The global set is only written through on a cold-start
// advertise (first warm Faaslet appears) and on retreat (the host's last
// Faaslet for the function is gone).
package sched

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"faasm.dev/faasm/internal/kvs"
	"faasm.dev/faasm/internal/vtime"
)

// Placement says where a call should run.
type Placement int

// Placements.
const (
	// PlaceLocalWarm executes on this host using a warm Faaslet.
	PlaceLocalWarm Placement = iota
	// PlaceForward shares the call with another warm host.
	PlaceForward
	// PlaceLocalCold cold-starts a Faaslet on this host.
	PlaceLocalCold
)

func (p Placement) String() string {
	switch p {
	case PlaceLocalWarm:
		return "local-warm"
	case PlaceForward:
		return "forward"
	case PlaceLocalCold:
		return "local-cold"
	}
	return "unknown"
}

// Decision is one scheduling outcome.
type Decision struct {
	Placement Placement
	// TargetHost is the peer to share with when Placement == PlaceForward.
	TargetHost string
}

// warmSetKey is the global-tier key holding a function's warm hosts.
func warmSetKey(fn string) string { return "sched/warm/" + fn }

// DefaultPeerCacheTTL bounds the staleness of the cached peer warm set. A
// new warm host becomes visible to peers within this window; a vanished one
// stops receiving forwards within it (forwarding also falls back locally on
// transport failure, so staleness is a latency cost, not a correctness one).
const DefaultPeerCacheTTL = time.Second

// Stats counts scheduling decisions per placement, for the evaluation.
type Stats struct {
	LocalWarm atomic.Int64
	Forwarded atomic.Int64
	ColdStart atomic.Int64
}

// fnState is the per-function scheduler state: the local idle-warm counter,
// whether this host currently advertises itself in the function's global
// warm set, and the cached peer warm set.
type fnState struct {
	// idle counts this host's idle warm Faaslets (including Faaslets whose
	// post-call reset is still in flight — they are committed to the pool).
	idle atomic.Int64
	// advertised tracks membership in the global warm set, so steady-state
	// warm traffic never re-issues SAdd.
	advertised atomic.Bool

	// cacheMu guards the cached peer set below.
	cacheMu sync.Mutex
	peers   []string
	fetched time.Time
	cached  bool
}

// Scheduler is one host's local scheduler.
type Scheduler struct {
	host     string
	store    kvs.Store
	capacity int64
	clock    vtime.Clock

	// PeerCacheTTL is how long a fetched peer warm set is trusted. Set it
	// before first use; zero means DefaultPeerCacheTTL.
	PeerCacheTTL time.Duration

	// fns maps function name → *fnState.
	fns sync.Map
	// inflight counts executing calls on this host.
	inflight atomic.Int64
	// rr round-robins forwarding across peers.
	rr atomic.Uint64

	// Stats counts decisions made, per placement, for the evaluation.
	Stats Stats
}

// New creates a scheduler for host with the given concurrent-execution
// capacity (0 means effectively unlimited).
func New(host string, store kvs.Store, capacity int) *Scheduler {
	if capacity <= 0 {
		capacity = 1 << 30
	}
	return &Scheduler{host: host, store: store, capacity: int64(capacity), clock: vtime.Real{}}
}

// SetClock replaces the clock driving peer-cache expiry (the runtime passes
// its own, so simulated clusters expire in simulated time). Call before use.
func (s *Scheduler) SetClock(c vtime.Clock) {
	if c != nil {
		s.clock = c
	}
}

// Host returns this scheduler's host name.
func (s *Scheduler) Host() string { return s.host }

func (s *Scheduler) fn(name string) *fnState {
	if e, ok := s.fns.Load(name); ok {
		return e.(*fnState)
	}
	e, _ := s.fns.LoadOrStore(name, &fnState{})
	return e.(*fnState)
}

// Schedule decides where a call to fn should run. The warm local path is
// lock-free and touches no global state.
func (s *Scheduler) Schedule(fn string) (Decision, error) {
	e := s.fn(fn)
	warmHere := e.idle.Load() > 0
	if warmHere && s.inflight.Load() < s.capacity {
		s.Stats.LocalWarm.Add(1)
		return Decision{Placement: PlaceLocalWarm}, nil
	}

	// Consult the (cached) shared warm set for another host.
	peers, err := s.peers(e, fn)
	if err != nil {
		return Decision{}, fmt.Errorf("sched: warm set for %s: %w", fn, err)
	}
	if len(peers) > 0 {
		// Share with a warm peer. Round-robin across them so load spreads.
		target := peers[int(s.rr.Add(1)-1)%len(peers)]
		s.Stats.Forwarded.Add(1)
		return Decision{Placement: PlaceForward, TargetHost: target}, nil
	}

	if warmHere {
		// Warm but at capacity with nowhere to share: still run locally
		// (queueing), matching the paper's behaviour under saturation.
		s.Stats.LocalWarm.Add(1)
		return Decision{Placement: PlaceLocalWarm}, nil
	}

	// Cold start here and advertise this host as warm for fn. SAdd is the
	// atomic update of the shared scheduler state; it is skipped when the
	// host is already advertised (write-through only on the transition).
	if e.advertised.CompareAndSwap(false, true) {
		if _, err := s.store.SAdd(warmSetKey(fn), s.host); err != nil {
			e.advertised.Store(false)
			return Decision{}, fmt.Errorf("sched: advertise warm %s: %w", fn, err)
		}
	}
	s.Stats.ColdStart.Add(1)
	return Decision{Placement: PlaceLocalCold}, nil
}

// peers returns the warm hosts for fn other than this one, serving from the
// TTL cache when fresh and refreshing from the global tier when stale.
func (s *Scheduler) peers(e *fnState, fn string) ([]string, error) {
	ttl := s.PeerCacheTTL
	if ttl <= 0 {
		ttl = DefaultPeerCacheTTL
	}
	now := s.clock.Now()
	e.cacheMu.Lock()
	if e.cached && now.Sub(e.fetched) < ttl {
		peers := e.peers
		e.cacheMu.Unlock()
		return peers, nil
	}
	e.cacheMu.Unlock()

	hosts, err := s.store.SMembers(warmSetKey(fn))
	if err != nil {
		return nil, err
	}
	var peers []string
	for _, h := range hosts {
		if h != s.host {
			peers = append(peers, h)
		}
	}
	// Only non-empty peer sets are cached: a host with no warm peers is
	// about to cold-start (or queue under saturation), and must notice a
	// newly warm peer immediately rather than after a TTL.
	e.cacheMu.Lock()
	e.peers = peers
	e.fetched = now
	e.cached = len(peers) > 0
	e.cacheMu.Unlock()
	return peers, nil
}

// InvalidatePeers drops the cached peer warm set for fn, forcing the next
// miss to refresh from the global tier (used when a forward fails).
func (s *Scheduler) InvalidatePeers(fn string) {
	e := s.fn(fn)
	e.cacheMu.Lock()
	e.cached = false
	e.peers = nil
	e.cacheMu.Unlock()
}

// NoteWarm records that this host now holds n more idle warm Faaslets for
// fn (e.g. after a cold start completes or a call finishes). The global
// warm set is only written on the not-advertised → advertised transition;
// steady-state warm churn performs zero global operations.
func (s *Scheduler) NoteWarm(fn string, n int) error {
	e := s.fn(fn)
	e.idle.Add(int64(n))
	if e.advertised.CompareAndSwap(false, true) {
		if _, err := s.store.SAdd(warmSetKey(fn), s.host); err != nil {
			e.advertised.Store(false)
			return err
		}
	}
	return nil
}

// NoteEvicted records that this host lost n idle warm Faaslets for fn (they
// were acquired for execution, or evicted from the pool). Purely local: the
// host stays advertised, because its Faaslets for fn are still alive (busy
// or resetting). Use Retreat when the last Faaslet for fn is truly gone.
func (s *Scheduler) NoteEvicted(fn string, n int) error {
	e := s.fn(fn)
	for {
		cur := e.idle.Load()
		next := cur - int64(n)
		if next < 0 {
			next = 0
		}
		if e.idle.CompareAndSwap(cur, next) {
			return nil
		}
	}
}

// Retreat removes this host from fn's global warm set: its last live
// Faaslet for fn is gone (failed cold start, eviction of the final pooled
// Faaslet, shutdown), so peers must stop forwarding here.
func (s *Scheduler) Retreat(fn string) error {
	e := s.fn(fn)
	e.idle.Store(0)
	if e.advertised.Swap(false) {
		if _, err := s.store.SRem(warmSetKey(fn), s.host); err != nil {
			return err
		}
	}
	return nil
}

// WarmCount reports this host's idle warm Faaslets for fn.
func (s *Scheduler) WarmCount(fn string) int {
	return int(s.fn(fn).idle.Load())
}

// Advertised reports whether this host is in fn's global warm set (per its
// own bookkeeping).
func (s *Scheduler) Advertised(fn string) bool {
	return s.fn(fn).advertised.Load()
}

// WarmHosts lists the cluster's warm hosts for fn from the shared state
// (uncached — tests and diagnostics).
func (s *Scheduler) WarmHosts(fn string) ([]string, error) {
	return s.store.SMembers(warmSetKey(fn))
}

// Begin marks a call executing on this host (capacity accounting).
func (s *Scheduler) Begin() {
	s.inflight.Add(1)
}

// End marks a call finished.
func (s *Scheduler) End() {
	if s.inflight.Add(-1) < 0 {
		s.inflight.Store(0)
	}
}

// Inflight reports executing calls.
func (s *Scheduler) Inflight() int {
	n := s.inflight.Load()
	if n < 0 {
		n = 0
	}
	return int(n)
}
