// Command faasm-cli talks to a faasmd instance: upload functions and
// invoke them.
//
//	faasm-cli -d http://localhost:8090 upload hello hello.fc
//	faasm-cli -d http://localhost:8090 invoke hello "input bytes"
//	faasm-cli -d http://localhost:8090 status
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
)

func main() {
	daemon := flag.String("d", "http://localhost:8090", "faasmd base URL")
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
		os.Exit(2)
	}
	switch args[0] {
	case "upload":
		if len(args) != 3 {
			usage()
			os.Exit(2)
		}
		src, err := os.ReadFile(args[2])
		if err != nil {
			fatal(err)
		}
		lang := "wat"
		if strings.HasSuffix(args[2], ".fc") {
			lang = "fc"
		}
		req, err := http.NewRequest(http.MethodPut,
			fmt.Sprintf("%s/f/%s?lang=%s", *daemon, args[1], lang), bytes.NewReader(src))
		if err != nil {
			fatal(err)
		}
		do(req)
	case "invoke":
		if len(args) < 2 {
			usage()
			os.Exit(2)
		}
		var input []byte
		if len(args) > 2 {
			input = []byte(args[2])
		}
		req, err := http.NewRequest(http.MethodPost,
			fmt.Sprintf("%s/invoke/%s", *daemon, args[1]), bytes.NewReader(input))
		if err != nil {
			fatal(err)
		}
		do(req)
	case "status":
		req, _ := http.NewRequest(http.MethodGet, *daemon+"/status", nil)
		do(req)
	default:
		usage()
		os.Exit(2)
	}
}

func do(req *http.Request) {
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 300 {
		fmt.Fprintf(os.Stderr, "%s: %s", resp.Status, body)
		os.Exit(1)
	}
	if rc := resp.Header.Get("X-Faasm-Return-Code"); rc != "" {
		fmt.Fprintf(os.Stderr, "return code: %s\n", rc)
	}
	os.Stdout.Write(body)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: faasm-cli [-d url] <command>
  upload <name> <file.fc|file.wat>
  invoke <name> [input]
  status`)
}
