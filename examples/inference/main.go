// Inference: latency-sensitive model serving with Proto-Faaslet restores
// (§6.3). The model's weights load once per host through the state tier;
// each "user" gets a fresh function instance whose cold start is a
// sub-millisecond snapshot restore rather than a multi-second container
// boot.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"faasm.dev/faasm"
)

const (
	dim        = 64 // weights: dim×dim dense layer
	numClasses = 10
)

func main() {
	rt := faasm.NewRuntime(faasm.Config{Host: "serving"})
	defer rt.Shutdown()

	// Deploy the model weights to the global tier.
	rng := rand.New(rand.NewSource(3))
	weights := make([]byte, dim*numClasses*8)
	for i := 0; i < dim*numClasses; i++ {
		binary.LittleEndian.PutUint64(weights[i*8:], math.Float64bits(rng.NormFloat64()))
	}
	if err := rt.SetState("model", weights); err != nil {
		log.Fatal(err)
	}

	infer := func(ctx *faasm.Ctx) (int32, error) {
		w, err := ctx.MapState("model", len(weights)) // zero-copy shared view
		if err != nil {
			return 1, err
		}
		img := ctx.Input()
		best, bestScore := 0, math.Inf(-1)
		for k := 0; k < numClasses; k++ {
			var acc float64
			for i := 0; i < dim && i < len(img); i++ {
				wv := math.Float64frombits(binary.LittleEndian.Uint64(w[(k*dim+i)*8:]))
				acc += wv * float64(img[i])
			}
			if acc > bestScore {
				best, bestScore = k, acc
			}
		}
		ctx.WriteOutput([]byte{byte(best)})
		return 0, nil
	}
	rt.RegisterNative("infer", infer)

	// Pre-initialise: snapshot a warm Faaslet as the function's proto so
	// every new instance restores instead of cold-starting.
	if err := rt.GenerateProto("infer", nil); err != nil {
		log.Fatal(err)
	}

	// Serve a burst of requests from "different users" and time them.
	var worst, total time.Duration
	const requests = 200
	for i := 0; i < requests; i++ {
		img := make([]byte, dim)
		rng.Read(img)
		start := time.Now()
		out, ret, err := rt.Call("infer", img)
		lat := time.Since(start)
		if err != nil || ret != 0 {
			log.Fatalf("request %d failed: ret=%d err=%v", i, ret, err)
		}
		if lat > worst {
			worst = lat
		}
		total += lat
		if i < 3 {
			fmt.Printf("request %d → class %d in %v\n", i, out[0], lat)
		}
	}
	stats := rt.Stats()
	fmt.Printf("\n%d requests: mean %v, worst %v\n", requests, total/requests, worst)
	fmt.Printf("cold starts %d (proto restores %d), warm hits %d\n",
		stats.ColdStarts, stats.ProtoStarts, stats.WarmStarts)
}
