package experiments

import (
	"fmt"
	"sync"
	"time"

	"faasm.dev/faasm/internal/baseline"
	"faasm.dev/faasm/internal/cluster"
	"faasm.dev/faasm/internal/metrics"
	"faasm.dev/faasm/internal/workloads/dmatmul"
	"faasm.dev/faasm/internal/workloads/inference"
	"faasm.dev/faasm/internal/workloads/sgd"
)

// fig6Hosts is the cluster size for the training experiment (the paper uses
// more physical hosts; the mechanics — per-host sharing vs per-function
// duplication — are host-count independent).
const fig6Hosts = 4

// Fig6 regenerates the SGD training sweep: training time, network transfer
// and billable memory vs parallel functions, FAASM vs the container
// baseline.
func Fig6(opts Options) *Report {
	params := sgd.DefaultParams()
	workerSweep := []int{2, 8, 16, 24, 32, 38}
	scale := 200.0
	if opts.Quick {
		params.Examples = 1024
		params.Features = 512
		params.Epochs = 2
		workerSweep = []int{2, 8, 16, 32}
		scale = 2000
	}
	ds := sgd.Generate(params)

	// Host memory sized so the baseline exhausts memory past ~30 parallel
	// functions (Fig 6a's failure mode): containers-per-host × (overhead +
	// private dataset share) crosses the limit around 32 workers.
	perFn := baseline.DefaultContainerOverhead + ds.Bytes()/8
	hostMem := int64(30/fig6Hosts) * perFn

	r := &Report{
		ID:     "fig6",
		Title:  "SGD training vs parallelism (time / network / billable memory)",
		Header: []string{"workers", "platform", "time", "net", "GB-s", "accuracy", "status"},
	}
	for _, workers := range workerSweep {
		p := params
		p.Workers = workers
		for _, mode := range []cluster.Mode{cluster.ModeFaasm, cluster.ModeBaseline} {
			c := cluster.New(cluster.Config{
				Mode: mode, Hosts: fig6Hosts, TimeScale: scale,
				HostMemBytes: hostMem,
			})
			if err := ds.Seed(c); err != nil {
				r.Note("seed: %v", err)
				continue
			}
			if err := sgd.Register(c); err != nil {
				r.Note("register: %v", err)
				continue
			}
			start := c.Clock.Now()
			_, ret, err := c.Call("sgd-main", sgd.EncodeMain(p))
			dur := c.Clock.Now().Sub(start)
			stats := c.Stats()
			status := "ok"
			acc := "-"
			if err != nil || ret != 0 {
				status = "OOM/failed"
			} else {
				w, _ := c.GetState(sgd.KeyWeights)
				acc = fmt.Sprintf("%.2f", ds.Accuracy(w))
			}
			r.Add(fmt.Sprintf("%d", workers), mode.String(), fmtDur(dur),
				fmtBytes(stats.NetworkBytes), fmt.Sprintf("%.3g", stats.GBSeconds),
				acc, status)
			c.Shutdown()
		}
	}
	r.Note("dataset: %d examples × %d features, %d nnz (%s); clock scale %gx; %d hosts",
		params.Examples, params.Features, params.NNZ, fmtBytes(ds.Bytes()), scale, fig6Hosts)
	r.Note("paper shape: faasm ~60%% faster at high parallelism, ≤40%% of knative's traffic, knative OOM >30 workers")
	return r
}

// Fig6Small regenerates the §6.2 reduced-dataset experiment (128 examples,
// 32 workers): chaining and per-container overheads dominate.
func Fig6Small(opts Options) *Report {
	p := sgd.DefaultParams()
	p.Examples = 128
	p.Features = 128
	p.NNZ = 8
	p.Epochs = 1
	p.Workers = 32
	scale := 2000.0
	ds := sgd.Generate(p)
	r := &Report{
		ID:     "fig6-small",
		Title:  "SGD, reduced dataset (128 examples, 32 workers) — §6.2",
		Header: []string{"platform", "time", "net", "GB-s"},
	}
	for _, mode := range []cluster.Mode{cluster.ModeFaasm, cluster.ModeBaseline} {
		c := cluster.New(cluster.Config{Mode: mode, Hosts: fig6Hosts, TimeScale: scale})
		ds.Seed(c)
		sgd.Register(c)
		start := c.Clock.Now()
		_, ret, err := c.Call("sgd-main", sgd.EncodeMain(p))
		dur := c.Clock.Now().Sub(start)
		stats := c.Stats()
		if err != nil || ret != 0 {
			r.Note("%v failed: ret=%d err=%v", mode, ret, err)
		}
		r.Add(mode.String(), fmtDur(dur), fmtBytes(stats.NetworkBytes),
			fmt.Sprintf("%.4f", stats.GBSeconds))
		c.Shutdown()
	}
	r.Note("paper: 460ms vs 630ms, 19MB vs 48MB, 0.01 vs 0.04 GB-s")
	return r
}

// Fig8 regenerates the distributed matmul sweep: duration and network
// transfer vs matrix size.
func Fig8(opts Options) *Report {
	sizes := []int{128, 256, 512, 1024}
	scale := 500.0
	if opts.Quick {
		sizes = []int{64, 128}
		scale = 2000
	}
	r := &Report{
		ID:     "fig8",
		Title:  "Distributed matmul vs matrix size (duration / network)",
		Header: []string{"N", "platform", "time", "net", "max-err"},
	}
	for _, n := range sizes {
		p := dmatmul.Params{N: n, Depth: 2, Seed: 7}
		a, b := dmatmul.Generate(p)
		want := dmatmul.Reference(p, a, b)
		for _, mode := range []cluster.Mode{cluster.ModeFaasm, cluster.ModeBaseline} {
			c := cluster.New(cluster.Config{
				Mode: mode, Hosts: 4, TimeScale: scale,
				ContainerColdStart: 200 * time.Millisecond,
			})
			dmatmul.Seed(c, p, a, b)
			dmatmul.Register(c)
			start := c.Clock.Now()
			_, ret, err := c.Call("mm-main", dmatmul.MainInput(p))
			dur := c.Clock.Now().Sub(start)
			stats := c.Stats()
			errStr := "-"
			if err == nil && ret == 0 {
				blob, _ := c.GetState(dmatmul.KeyC)
				got := dmatmul.DecodeResult(blob, p.N)
				errStr = fmt.Sprintf("%.1e", dmatmul.MaxAbsDiff(got, want))
			} else {
				errStr = fmt.Sprintf("failed ret=%d err=%v", ret, err)
			}
			r.Add(fmt.Sprintf("%d", n), mode.String(), fmtDur(dur),
				fmtBytes(stats.NetworkBytes), errStr)
			c.Shutdown()
		}
	}
	r.Note("64 multiplication + 16 merge functions per run (depth 2); clock scale %gx", scale)
	r.Note("paper shape: durations near-identical, faasm ~13%% less traffic")
	return r
}

// fig7Config drives one inference serving run.
type fig7Config struct {
	mode      cluster.Mode
	useProto  bool
	coldRatio float64
	rate      float64 // requests per second (experiment clock)
	duration  time.Duration
	scale     float64
	capacity  int
}

// runInferenceLoad runs an open-loop load test and returns the latency
// distribution.
func runInferenceLoad(cfg fig7Config) (*metrics.Latencies, error) {
	c := cluster.New(cluster.Config{
		Mode: cfg.mode, Hosts: 4, TimeScale: cfg.scale,
		UseProto: cfg.useProto, Capacity: cfg.capacity,
	})
	defer c.Shutdown()
	weights := inference.GenerateWeights(3)
	if err := c.SetState(inference.KeyWeights, weights); err != nil {
		return nil, err
	}
	passes := 1
	if cfg.mode == cluster.ModeFaasm {
		passes = 2 // the paper's wasm execution overhead on TFLite
	}
	guest := inference.Guest(inference.Config{ComputePasses: passes})
	if err := c.Register("infer", guest); err != nil {
		return nil, err
	}
	// Fresh per-user functions see cold starts; pre-register enough names.
	nUsers := int(cfg.rate*cfg.duration.Seconds()*cfg.coldRatio) + 1
	for u := 0; u < nUsers; u++ {
		if err := c.Register(fmt.Sprintf("infer-u%d", u), guest); err != nil {
			return nil, err
		}
	}

	// Warm-up: populate every host's warm pool before measuring, so the 0%%
	// cold-ratio series is genuinely warm (the paper measures steady state).
	var warm sync.WaitGroup
	for w := 0; w < 4*8; w++ {
		warm.Add(1)
		go func(w int) {
			defer warm.Done()
			c.Call("infer", inference.GenerateImage(int64(-w-1)))
		}(w)
	}
	warm.Wait()

	lat := &metrics.Latencies{}
	var wg sync.WaitGroup
	interval := time.Duration(float64(time.Second) / cfg.rate)
	n := int(cfg.duration.Seconds() * cfg.rate)
	user := 0
	coldEvery := 0
	if cfg.coldRatio > 0 {
		coldEvery = int(1 / cfg.coldRatio)
	}
	for i := 0; i < n; i++ {
		fn := "infer"
		if coldEvery > 0 && i%coldEvery == 0 {
			fn = fmt.Sprintf("infer-u%d", user)
			user++
		}
		img := inference.GenerateImage(int64(i))
		wg.Add(1)
		go func(fn string, img []byte) {
			defer wg.Done()
			start := c.Clock.Now()
			_, _, err := c.Call(fn, img)
			if err == nil {
				lat.Record(c.Clock.Now().Sub(start))
			}
		}(fn, img)
		c.Clock.Sleep(interval)
	}
	wg.Wait()
	return lat, nil
}

// Fig7 regenerates the inference-serving figure: median latency vs
// throughput for cold-start ratios, plus the latency CDF at a fixed load.
func Fig7(opts Options) *Report {
	scale := 20.0
	dur := 6 * time.Second
	rates := []float64{5, 10, 20, 40, 80, 160}
	if opts.Quick {
		dur = 2 * time.Second
		rates = []float64{10, 40}
	}
	r := &Report{
		ID:     "fig7",
		Title:  "Inference serving: median latency vs throughput and cold-start ratio",
		Header: []string{"rate/s", "platform", "cold%", "median", "p90", "p99"},
	}
	type series struct {
		mode  cluster.Mode
		proto bool
		cold  float64
		label string
	}
	set := []series{
		{cluster.ModeFaasm, true, 0.20, "faasm"},
		{cluster.ModeBaseline, false, 0.00, "knative"},
		{cluster.ModeBaseline, false, 0.02, "knative"},
		{cluster.ModeBaseline, false, 0.20, "knative"},
	}
	for _, rate := range rates {
		for _, s := range set {
			lat, err := runInferenceLoad(fig7Config{
				mode: s.mode, useProto: s.proto, coldRatio: s.cold,
				rate: rate, duration: dur, scale: scale, capacity: 4,
			})
			if err != nil {
				r.Note("%s rate %g: %v", s.label, rate, err)
				continue
			}
			r.Add(fmt.Sprintf("%g", rate), s.label,
				fmt.Sprintf("%.0f%%", s.cold*100),
				fmtDur(lat.Median()), fmtDur(lat.Quantile(0.9)), fmtDur(lat.Quantile(0.99)))
		}
	}
	r.Note("faasm series covers all cold ratios (proto restores make them indistinguishable, as in the paper)")
	r.Note("clock scale %gx, %v per point; capacity 4 concurrent executions/host (the testbed's 4-core E3-1220s)", scale, dur)
	r.Note("paper shape: knative median explodes past a knee that worsens with cold%%; faasm flat to 200 req/s with 90%% lower tail")
	return r
}

// Fig7CDF regenerates the latency CDF at a fixed moderate load.
func Fig7CDF(opts Options) *Report {
	scale := 20.0
	dur := 6 * time.Second
	rate := 20.0
	if opts.Quick {
		dur = 2 * time.Second
	}
	r := &Report{
		ID:     "fig7b",
		Title:  fmt.Sprintf("Inference latency CDF at %g req/s", rate),
		Header: []string{"percentile", "faasm 20%cold", "knative 0%", "knative 2%", "knative 20%"},
	}
	type col struct {
		mode  cluster.Mode
		proto bool
		cold  float64
	}
	cols := []col{
		{cluster.ModeFaasm, true, 0.20},
		{cluster.ModeBaseline, false, 0.00},
		{cluster.ModeBaseline, false, 0.02},
		{cluster.ModeBaseline, false, 0.20},
	}
	var dists []*metrics.Latencies
	for _, cdef := range cols {
		lat, err := runInferenceLoad(fig7Config{
			mode: cdef.mode, useProto: cdef.proto, coldRatio: cdef.cold,
			rate: rate, duration: dur, scale: scale, capacity: 4,
		})
		if err != nil {
			r.Note("series failed: %v", err)
			lat = &metrics.Latencies{}
		}
		dists = append(dists, lat)
	}
	for _, q := range []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.0} {
		row := []string{fmt.Sprintf("p%02.0f", q*100)}
		for _, d := range dists {
			row = append(row, fmtDur(d.Quantile(q)))
		}
		r.Add(row...)
	}
	r.Note("paper: knative tail >2s with 35%% of calls >500ms at 20%% cold; faasm tail <150ms across all ratios")
	return r
}
