package sgd

import (
	"testing"
	"time"

	"faasm.dev/faasm/internal/cluster"
)

func smallParams() Params {
	p := DefaultParams()
	p.Examples = 512
	p.Features = 256
	p.NNZ = 16
	p.Epochs = 4
	p.Workers = 4
	return p
}

func runTraining(t *testing.T, mode cluster.Mode) (float64, cluster.Stats) {
	t.Helper()
	p := smallParams()
	ds := Generate(p)
	c := cluster.New(cluster.Config{
		Mode: mode, Hosts: 2, TimeScale: 5000,
		ContainerColdStart: 2 * time.Millisecond,
	})
	defer c.Shutdown()
	if err := ds.Seed(c); err != nil {
		t.Fatal(err)
	}
	if err := Register(c); err != nil {
		t.Fatal(err)
	}
	_, ret, err := c.Call("sgd-main", EncodeMain(p))
	if err != nil || ret != 0 {
		t.Fatalf("%v training: ret=%d err=%v", mode, ret, err)
	}
	w, err := c.GetState(KeyWeights)
	if err != nil {
		t.Fatal(err)
	}
	return ds.Accuracy(w), c.Stats()
}

func TestTrainingLearnsOnFaasm(t *testing.T) {
	acc, _ := runTraining(t, cluster.ModeFaasm)
	// A synthetic separable dataset should be fit well past chance.
	if acc < 0.80 {
		t.Fatalf("faasm accuracy = %.3f, model did not learn", acc)
	}
}

func TestTrainingLearnsOnKnative(t *testing.T) {
	acc, _ := runTraining(t, cluster.ModeBaseline)
	// The baseline loses more HOGWILD updates than FAASM: containers race
	// full-vector pushes through the KVS instead of merging in shared
	// memory, so its accuracy bar sits lower — consistent with the paper's
	// observation that Knative converges more slowly per wall-clock second.
	if acc < 0.70 {
		t.Fatalf("knative accuracy = %.3f, model did not learn", acc)
	}
}

func TestFaasmMovesLessDataThanKnative(t *testing.T) {
	// The central Fig 6b claim at unit-test scale.
	_, fstats := runTraining(t, cluster.ModeFaasm)
	_, kstats := runTraining(t, cluster.ModeBaseline)
	if fstats.NetworkBytes >= kstats.NetworkBytes {
		t.Fatalf("faasm moved %d bytes >= knative %d", fstats.NetworkBytes, kstats.NetworkBytes)
	}
}

func TestDatasetShape(t *testing.T) {
	p := smallParams()
	ds := Generate(p)
	if ds.Bytes() == 0 {
		t.Fatal("empty dataset")
	}
	// Labels balanced-ish (ground truth is a random hyperplane).
	var pos int
	for j := 0; j < p.Examples; j++ {
		if ds.Labels[j*8+7]&0x80 == 0 { // positive float64 sign bit clear
			pos++
		}
	}
	frac := float64(pos) / float64(p.Examples)
	if frac < 0.2 || frac > 0.8 {
		t.Fatalf("label balance %.2f", frac)
	}
	// Deterministic generation.
	ds2 := Generate(p)
	if string(ds.Vals) != string(ds2.Vals) || string(ds.Labels) != string(ds2.Labels) {
		t.Fatal("generation not deterministic")
	}
}

func TestUpdateInputRoundTrip(t *testing.T) {
	in := updateInput{From: 1, To: 2, Features: 3, Examples: 4, LR: 0.5, PushEvery: 6}
	got, err := decodeUpdate(encodeUpdate(in))
	if err != nil || got != in {
		t.Fatalf("round trip: %+v %v", got, err)
	}
	if _, err := decodeUpdate([]byte{1, 2}); err == nil {
		t.Fatal("short input accepted")
	}
}

func TestMainInputRoundTrip(t *testing.T) {
	p := DefaultParams()
	got, err := decodeMain(EncodeMain(p))
	if err != nil {
		t.Fatal(err)
	}
	if int(got.Workers) != p.Workers || int(got.Examples) != p.Examples || got.LR != p.LearnRate {
		t.Fatalf("round trip: %+v", got)
	}
}
