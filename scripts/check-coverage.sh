#!/bin/sh
# Enforces statement-coverage floors on the control-plane packages: the
# scheduler (drain mode, leases, forwarding), the runtime instance
# (graceful stop, pool lifecycle) and the autoscale controller
# (supervision + load reconciliation). These are the packages whose
# failure modes only show up under rare interleavings — a coverage
# regression there means a lifecycle path went untested, which is exactly
# how drain/stop bugs ship. Floors sit ~5 points under today's numbers:
# tight enough to catch an untested new subsystem, loose enough that an
# unrelated refactor doesn't trip them.
set -eu
cd "$(dirname "$0")/.."

fail=0
check() {
    pkg=$1
    floor=$2
    line=$(go test -cover "./$pkg" 2>&1 | tail -1)
    case "$line" in
        ok*coverage:*) ;;
        *)
            echo "FAIL: $pkg: tests did not pass: $line"
            fail=1
            return
            ;;
    esac
    pct=$(echo "$line" | sed -E 's/.*coverage: ([0-9.]+)% of statements.*/\1/')
    # Integer compare on tenths, so the shell needs no float arithmetic.
    got=$(echo "$pct" | awk '{printf "%d", $1 * 10}')
    want=$(echo "$floor" | awk '{printf "%d", $1 * 10}')
    if [ "$got" -lt "$want" ]; then
        echo "FAIL: $pkg: coverage $pct% is below the $floor% floor"
        fail=1
    else
        echo "ok: $pkg: coverage $pct% (floor $floor%)"
    fi
}

check internal/sched 80
check internal/frt 80
check internal/autoscale 85
check internal/queue 80

[ "$fail" -eq 0 ] || exit 1
