package main

import (
	"fmt"
	"sync"

	"faasm.dev/faasm/internal/autoscale"
	"faasm.dev/faasm/internal/frt"
)

// advisoryFleet adapts one faasmd process to autoscale.Fleet. A single
// binary cannot provision peer machines, so the controller's decisions
// are advisory: slot 0 is this process's real instance (its in-flight
// count, pool-miss rate and heartbeat age feed the load signal); AddHost
// appends a virtual slot standing in for the peer the operator should
// start, and DrainHost/ReclaimHost retire virtual slots again when the
// load passes. The desired host count, the hysteresis state and every
// decision are exposed on /status and as faasm_autoscale_* metrics, so an
// operator (or an external supervisor scraping /metrics) can follow the
// controller's advice with real processes. The real instance is never
// drained — this daemon's job is to keep serving.
type advisoryFleet struct {
	inst *frt.Instance

	mu      sync.Mutex
	virtual []*virtualHost // slots 1.. ; index i here is fleet slot i+1
}

type virtualHost struct {
	draining bool
	removed  bool
}

func newAdvisoryFleet(inst *frt.Instance) *advisoryFleet {
	return &advisoryFleet{inst: inst}
}

// Signals implements autoscale.Fleet.
func (f *advisoryFleet) Signals() []autoscale.HostSignals {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := []autoscale.HostSignals{{
		Index:        0,
		Host:         f.inst.Host(),
		Inflight:     f.inst.Inflight(),
		PoolMisses:   f.inst.PoolMisses.Value(),
		HeartbeatAge: f.inst.Scheduler().HeartbeatAge(),
		Draining:     f.inst.Draining(),
	}}
	for i, v := range f.virtual {
		out = append(out, autoscale.HostSignals{
			Index:    i + 1,
			Host:     fmt.Sprintf("%s/advisory-%d", f.inst.Host(), i+1),
			Draining: v.draining,
			Removed:  v.removed,
		})
	}
	return out
}

// AddHost implements autoscale.Fleet: an advisory slot, not a process.
func (f *advisoryFleet) AddHost() (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.virtual = append(f.virtual, &virtualHost{})
	return len(f.virtual), nil
}

func (f *advisoryFleet) slot(h int) (*virtualHost, error) {
	if h <= 0 || h > len(f.virtual) {
		return nil, fmt.Errorf("advisory fleet: no virtual slot %d", h)
	}
	return f.virtual[h-1], nil
}

// DrainHost implements autoscale.Fleet. Slot 0 — the serving instance —
// is refused: a one-process deployment must keep serving.
func (f *advisoryFleet) DrainHost(h int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if h == 0 {
		return fmt.Errorf("advisory fleet: refusing to drain the serving instance")
	}
	v, err := f.slot(h)
	if err != nil {
		return err
	}
	v.draining = true
	return nil
}

// ReclaimHost implements autoscale.Fleet.
func (f *advisoryFleet) ReclaimHost(h int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if h == 0 {
		return fmt.Errorf("advisory fleet: cannot reclaim the serving instance")
	}
	v, err := f.slot(h)
	if err != nil {
		return err
	}
	if !v.removed && !v.draining {
		return fmt.Errorf("advisory fleet: virtual slot %d is not draining", h)
	}
	v.removed = true
	return nil
}
