package objstore

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestMemoryPutGet(t *testing.T) {
	s := NewMemory()
	if err := s.Put("wasm/fn", []byte("object")); err != nil {
		t.Fatal(err)
	}
	b, ok := s.Get("wasm/fn")
	if !ok || string(b) != "object" {
		t.Fatalf("get: %q %v", b, ok)
	}
	// Returned blob is a copy: mutating it must not corrupt the store.
	b[0] = 'X'
	b2, _ := s.Get("wasm/fn")
	if string(b2) != "object" {
		t.Fatal("store aliased caller's slice")
	}
	if s.Size("wasm/fn") != 6 || s.Size("missing") != -1 {
		t.Fatal("size wrong")
	}
}

func TestInvalidKeys(t *testing.T) {
	s := NewMemory()
	for _, k := range []string{"", "../etc/passwd", "/abs"} {
		if err := s.Put(k, nil); err == nil {
			t.Errorf("accepted key %q", k)
		}
		if _, ok := s.Get(k); ok {
			t.Errorf("get succeeded for %q", k)
		}
	}
}

func TestDeleteAndList(t *testing.T) {
	s := NewMemory()
	s.Put("proto/a", []byte("1"))
	s.Put("proto/b", []byte("2"))
	s.Put("wasm/c", []byte("3"))
	l := s.List("proto/")
	if len(l) != 2 || l[0] != "proto/a" || l[1] != "proto/b" {
		t.Fatalf("list = %v", l)
	}
	if err := s.Delete("proto/a"); err != nil {
		t.Fatal(err)
	}
	if s.Exists("proto/a") {
		t.Fatal("delete failed")
	}
}

func TestDirPersistence(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewDir(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	blob := []byte{1, 2, 3, 0, 255}
	if err := s1.Put("wasm/nested/fn", blob); err != nil {
		t.Fatal(err)
	}
	// A second store over the same directory sees the blob.
	s2, err := NewDir(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get("wasm/nested/fn")
	if !ok || !bytes.Equal(got, blob) {
		t.Fatalf("cross-process get: %v %v", got, ok)
	}
	s1.Delete("wasm/nested/fn")
	s3, _ := NewDir(filepath.Join(dir, "store"))
	if _, ok := s3.Get("wasm/nested/fn"); ok {
		t.Fatal("delete did not remove file")
	}
}
