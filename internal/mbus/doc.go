// Package mbus implements the message bus of Fig 1: the channel through
// which Faaslets communicate with their parent runtime and each other —
// receiving function calls, sharing work, invoking and awaiting chained
// calls, and being told to spawn or terminate.
//
// It has two parts: named Endpoints carrying Messages (the transport), and
// the CallTable tracking the lifecycle of every function call so that
// chain_call / await_call / get_call_output (Table 2) can be implemented on
// top of it.
//
// # Concurrency model
//
//   - Striped: the CallTable is sharded 64 ways by call id. Ids are dense
//     (one atomic counter), so id&63 spreads concurrent calls evenly and
//     operations on different calls take different shard mutexes — there is
//     no table-wide lock on the invoke path.
//   - Targeted wakeups: each call carries its own completion channel.
//     Complete closes exactly that call's channel, waking only its waiters;
//     there is no shared condition variable and no broadcast that wakes
//     waiters of unrelated calls.
//   - Off the table entirely: the synchronous warm path. When the scheduler
//     places a call locally, frt.Instance.Call executes inline and never
//     creates a table entry — the CallTable only tracks asynchronous
//     (chained or shared) calls.
package mbus
