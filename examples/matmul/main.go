// Matmul: the §6.4 distributed divide-and-conquer matrix multiplication —
// chained multiplication and merge functions over matrices in two-tier
// state, with chunked block reads.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"
	"math/rand"

	"faasm.dev/faasm"
)

const (
	n    = 64 // matrix dimension
	grid = 4  // blocks per side → grid³ = 64 multiplication functions
)

func key(i, j, k int) string { return fmt.Sprintf("tmp/%d-%d-%d", i, j, k) }

func main() {
	rt := faasm.NewRuntime(faasm.Config{Host: "matmul"})
	defer rt.Shutdown()

	a := randomMatrix(1)
	b := randomMatrix(2)
	must(rt.SetState("A", a))
	must(rt.SetState("B", b))
	must(rt.SetState("C", make([]byte, n*n*8)))

	s := n / grid
	// Leaf multiply: tmp[i,j,k] = A(i,k) × B(k,j).
	rt.RegisterGuest("mult", func(api faasm.API) (int32, error) {
		in := api.Input()
		bi, bj, bk := int(in[0]), int(in[1]), int(in[2])
		A, err := readBlock(api, "A", bi, bk, s)
		if err != nil {
			return 1, err
		}
		B, err := readBlock(api, "B", bk, bj, s)
		if err != nil {
			return 2, err
		}
		C := make([]float64, s*s)
		for i := 0; i < s; i++ {
			for k := 0; k < s; k++ {
				aik := A[i*s+k]
				for j := 0; j < s; j++ {
					C[i*s+j] += aik * B[k*s+j]
				}
			}
		}
		buf, err := api.StateView(key(bi, bj, bk), s*s*8)
		if err != nil {
			return 3, err
		}
		for i, v := range C {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
		}
		return 0, api.StatePush(key(bi, bj, bk))
	})

	// Merge: C(i,j) = Σ_k tmp[i,j,k].
	rt.RegisterGuest("merge", func(api faasm.API) (int32, error) {
		in := api.Input()
		bi, bj := int(in[0]), int(in[1])
		sum := make([]float64, s*s)
		for k := 0; k < grid; k++ {
			buf, err := api.StateViewChunk(key(bi, bj, k), 0, s*s*8)
			if err != nil {
				return 1, err
			}
			for i := range sum {
				sum[i] += math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
			}
		}
		for i := 0; i < s; i++ {
			off := ((bi*s+i)*n + bj*s) * 8
			buf, err := api.StateViewChunk("C", off, s*8)
			if err != nil {
				return 2, err
			}
			for j := 0; j < s; j++ {
				binary.LittleEndian.PutUint64(buf[j*8:], math.Float64bits(sum[i*s+j]))
			}
			if err := api.StatePushChunk("C", off, s*8); err != nil {
				return 3, err
			}
		}
		return 0, nil
	})

	// Driver: fan out 64 multiplies, await, fan out 16 merges.
	rt.RegisterGuest("main", func(api faasm.API) (int32, error) {
		var ids []uint64
		for i := 0; i < grid; i++ {
			for j := 0; j < grid; j++ {
				for k := 0; k < grid; k++ {
					id, err := api.Chain("mult", []byte{byte(i), byte(j), byte(k)})
					if err != nil {
						return 1, err
					}
					ids = append(ids, id)
				}
			}
		}
		for _, id := range ids {
			if ret, err := api.Await(id); err != nil || ret != 0 {
				return 2, fmt.Errorf("mult failed: %d %v", ret, err)
			}
		}
		ids = ids[:0]
		for i := 0; i < grid; i++ {
			for j := 0; j < grid; j++ {
				id, err := api.Chain("merge", []byte{byte(i), byte(j)})
				if err != nil {
					return 3, err
				}
				ids = append(ids, id)
			}
		}
		for _, id := range ids {
			if ret, err := api.Await(id); err != nil || ret != 0 {
				return 4, fmt.Errorf("merge failed: %d %v", ret, err)
			}
		}
		return 0, nil
	})

	if _, ret, err := rt.Call("main", nil); err != nil || ret != 0 {
		log.Fatalf("multiply failed: ret=%d err=%v", ret, err)
	}

	cBytes, _ := rt.GetState("C")
	maxErr := verify(a, b, cBytes)
	fmt.Printf("%d×%d multiply via %d mult + %d merge functions\n", n, n, grid*grid*grid, grid*grid)
	fmt.Printf("max error vs direct multiply: %.2e\n", maxErr)
}

func readBlock(api faasm.API, k string, bi, bj, s int) ([]float64, error) {
	out := make([]float64, s*s)
	for i := 0; i < s; i++ {
		off := ((bi*s+i)*n + bj*s) * 8
		buf, err := api.StateViewChunk(k, off, s*8)
		if err != nil {
			return nil, err
		}
		for j := 0; j < s; j++ {
			out[i*s+j] = math.Float64frombits(binary.LittleEndian.Uint64(buf[j*8:]))
		}
	}
	return out, nil
}

func randomMatrix(seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, n*n*8)
	for i := 0; i < n*n; i++ {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(rng.Float64()))
	}
	return out
}

func verify(a, b, c []byte) float64 {
	dec := func(buf []byte, i int) float64 {
		return math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	var maxErr float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var want float64
			for k := 0; k < n; k++ {
				want += dec(a, i*n+k) * dec(b, k*n+j)
			}
			if d := math.Abs(want - dec(c, i*n+j)); d > maxErr {
				maxErr = d
			}
		}
	}
	return maxErr
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
