// Package cluster is the multi-host experiment harness standing in for the
// paper's 20-node Kubernetes testbed (§6.1). It instantiates N hosts
// running either the FAASM runtime (internal/frt) or the container baseline
// (internal/baseline), wires them to one global tier through a simulated
// 1 Gbps network, and drives them on a scaled clock so second-scale
// phenomena (container cold starts, training epochs) reproduce in
// milliseconds of wall time.
//
// Calls enter round-robin across hosts, exactly as §5.1 describes the
// platform's ingress; FAASM's distributed scheduler then shares work with
// warm hosts, while the baseline executes wherever the load balancer put
// the call.
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"faasm.dev/faasm/internal/baseline"
	"faasm.dev/faasm/internal/frt"
	"faasm.dev/faasm/internal/hostapi"
	"faasm.dev/faasm/internal/kvs"
	"faasm.dev/faasm/internal/mbus"
	"faasm.dev/faasm/internal/metrics"
	"faasm.dev/faasm/internal/obsv"
	"faasm.dev/faasm/internal/queue"
	"faasm.dev/faasm/internal/shardkvs"
	"faasm.dev/faasm/internal/simnet"
	"faasm.dev/faasm/internal/vtime"
)

// Mode selects the platform under test.
type Mode int

// Modes.
const (
	ModeFaasm Mode = iota
	ModeBaseline
)

func (m Mode) String() string {
	if m == ModeFaasm {
		return "faasm"
	}
	return "knative"
}

// Config sizes a cluster.
type Config struct {
	Mode  Mode
	Hosts int
	// TimeScale speeds the experiment clock (default 100×).
	TimeScale float64
	// BandwidthBps per host link (default 1 Gbps); Latency per operation.
	BandwidthBps int64
	Latency      time.Duration
	// UseProto enables Proto-Faaslet restores for cold starts (FAASM mode).
	UseProto bool
	// FaasmColdStart / ProtoColdStart are the injected initialisation
	// costs; defaults follow Table 3 (5.2 ms / 0.5 ms).
	FaasmColdStart time.Duration
	ProtoColdStart time.Duration
	// Baseline knobs; zero values use the paper's measured constants.
	ContainerColdStart time.Duration
	ContainerOverhead  int64
	HostMemBytes       int64
	// Capacity bounds concurrent executions per host (0 = unlimited).
	Capacity int
	// StateShards sizes the global state tier: 1 (default) keeps the
	// paper's single Redis-like engine, >1 shards the key space across
	// that many engines with a consistent-hash ring (internal/shardkvs).
	StateShards int
	// StateReplicas is the copies kept per key when sharded (default 1).
	StateReplicas int
	// StateWriteQuorum is how many copies must acknowledge a replicated
	// write (0 = all). With W < replicas the tier keeps accepting writes
	// while a shard is down; see shardkvs.Options.WriteQuorum.
	StateWriteQuorum int
	// StateReadFailover lets tier reads fall through to surviving copies
	// when the chosen shard fails (see shardkvs.Options.ReadFailover).
	StateReadFailover bool
	// FaultyShards wraps every tier shard in a fault injector
	// (simnet.FaultShard) so chaos experiments can kill and revive shards;
	// requires StateShards > 1.
	FaultyShards bool
	// LeaseTTL / PeerCacheTTL tune the schedulers' liveness leases and
	// peer-cache staleness on the experiment clock (FAASM mode; zero keeps
	// the sched package defaults). Leases are SetEx'd tier-side records:
	// the tier's engines run on the experiment clock too, so expiry is
	// judged in experiment time like everything else.
	LeaseTTL     time.Duration
	PeerCacheTTL time.Duration
	// ExpirySweep tunes the tier engines' background expiry-sweep cadence
	// (0 keeps kvs.DefaultSweepInterval). Visibility of expired keys does
	// not depend on it — reads hide them lazily.
	ExpirySweep time.Duration
	// PoolCap bounds idle warm Faaslets per function per host (FAASM mode;
	// 0 = frt default). ElasticPool turns on the per-host warm-pool
	// autoscaler with the given idle timeout and controller interval.
	PoolCap         int
	ElasticPool     bool
	PoolIdleTimeout time.Duration
	ElasticInterval time.Duration
	// TraceSample traces 1-in-N invocations across the cluster (FAASM mode;
	// 0 = obsv.DefaultSampleRate, 1 = all, < 0 off). All hosts share one
	// tracer, so a forwarded call's spans — both hosts' — land in one record.
	TraceSample int
	// LocalityWeight blends data locality into cross-host forwarding (FAASM
	// mode; see sched.Scheduler.LocalityWeight, 0 = off).
	LocalityWeight float64
	// CoLocateShards models each host h < StateShards co-hosting shard-h:
	// those hosts' residency adverts credit keys whose healthy primary is
	// their co-located shard. Requires StateShards > 1.
	CoLocateShards bool
	// Clock overrides the cluster clock (nil = vtime.NewScaled(TimeScale)).
	// Deflaked experiments inject a vtime.Virtual so lease expiry and the
	// measurement share one timeline that wall-clock stalls cannot stretch.
	Clock vtime.Clock
	// AsyncQueue enables the durable async invocation path on every FAASM
	// host (frt.Config.AsyncQueue) plus an ingress-side client handle, so
	// SubmitAsync/AwaitAsync survive the death of any single host. The
	// Queue* knobs mirror frt.Config's (zero = internal/queue defaults).
	AsyncQueue        bool
	QueueDepth        int
	QueueLeaseTTL     time.Duration
	QueueRetryMax     int
	QueueRetryBackoff time.Duration
	QueuePoll         time.Duration
	QueueConcurrency  int
}

// Cluster is a live experiment cluster.
type Cluster struct {
	cfg   Config
	Clock vtime.Clock
	Net   *simnet.Network
	// State is the global tier: one kvs.Engine, or a shardkvs.Ring when
	// cfg.StateShards > 1.
	State kvs.Store

	// Tracer and Registry are shared by every FAASM host: one trace store
	// (cross-host spans join by id) and one metric namespace (host labels
	// keep series apart).
	Tracer   *obsv.Tracer
	Registry *obsv.Registry

	// mu orders host-membership mutations (AddHost / DrainHost /
	// ReclaimHost / Register); faasm is the append-only slot list, so host
	// indexes stay stable for the cluster's whole life. active is the
	// copy-on-write ingress snapshot — hosts currently accepting new
	// round-robin traffic — rebuilt on every membership change so the Call
	// hot path is one atomic load.
	mu       sync.Mutex
	faasm    []*faasmHost
	active   atomic.Pointer[[]*frt.Instance]
	nextHost int
	fns      []clusterFn

	base []*baseline.Platform
	rr   atomic.Uint64

	ring        *shardkvs.Ring
	shardFaults []*simnet.FaultShard

	// clientQueue is the ingress-side async handle (nil unless
	// Config.AsyncQueue): consumer-less, tier-backed, so awaiting a queued
	// call does not depend on any particular host staying alive.
	clientQueue *queue.Queue
}

// faasmHost is one host slot. A slot is never deleted — a reclaimed host
// keeps its index with removed set, so Instance(h) and KillHost(h) stay
// valid across scale-downs and replacement hosts get fresh names.
type faasmHost struct {
	inst    *frt.Instance
	removed atomic.Bool
}

// clusterFn records a deployed function so hosts added after deployment
// (autoscaler scale-ups) receive the full function set.
type clusterFn struct {
	name string
	g    hostapi.Guest
}

// New builds and starts a cluster.
func New(cfg Config) *Cluster {
	if cfg.Hosts <= 0 {
		cfg.Hosts = 1
	}
	if cfg.TimeScale == 0 {
		cfg.TimeScale = 100
	}
	if cfg.BandwidthBps == 0 {
		cfg.BandwidthBps = simnet.Gigabit
	}
	if cfg.Latency == 0 {
		cfg.Latency = 500 * time.Microsecond
	}
	if cfg.FaasmColdStart == 0 {
		cfg.FaasmColdStart = 5200 * time.Microsecond
	}
	if cfg.ProtoColdStart == 0 {
		cfg.ProtoColdStart = 500 * time.Microsecond
	}
	c := &Cluster{cfg: cfg}
	if cfg.Clock != nil {
		c.Clock = cfg.Clock
	} else {
		c.Clock = vtime.NewScaled(cfg.TimeScale)
	}
	c.Net = simnet.New(cfg.BandwidthBps, cfg.Latency, c.Clock)
	rate := cfg.TraceSample
	if rate == 0 {
		rate = obsv.DefaultSampleRate
	}
	c.Tracer = obsv.NewTracer(c.Clock.Now, rate, 0)
	c.Registry = obsv.NewRegistry()
	// Tier engines judge key expiry (liveness leases, SETEX'd state) on
	// their own clock; hand them the experiment clock so tier-side TTLs
	// run in experiment time like every other duration in the harness.
	newEngine := func() *kvs.Engine {
		eng := kvs.NewEngine()
		eng.SetNowFunc(c.Clock.Now)
		if cfg.ExpirySweep > 0 {
			eng.SetSweepInterval(cfg.ExpirySweep)
		}
		return eng
	}
	if cfg.StateShards > 1 {
		ring := shardkvs.New(shardkvs.Options{
			Replication:  cfg.StateReplicas,
			WriteQuorum:  cfg.StateWriteQuorum,
			ReadFailover: cfg.StateReadFailover,
		})
		for i := 0; i < cfg.StateShards; i++ {
			var store kvs.Store = newEngine()
			if cfg.FaultyShards {
				fs := simnet.NewFaultShard(store, c.Clock)
				c.shardFaults = append(c.shardFaults, fs)
				store = fs
			}
			ring.Attach(fmt.Sprintf("shard-%d", i), store)
		}
		ring.Instrument(c.Registry)
		c.ring = ring
		c.State = ring
	} else {
		eng := newEngine()
		eng.Instrument(c.Registry, "global")
		c.State = eng
	}

	for h := 0; h < cfg.Hosts; h++ {
		host := fmt.Sprintf("host-%d", h)
		switch cfg.Mode {
		case ModeFaasm:
			c.faasm = append(c.faasm, &faasmHost{inst: c.newFaasmInstance(h, host)})
		case ModeBaseline:
			store := simnet.NewStore(c.State, c.Net, host)
			p := baseline.New(baseline.Config{
				Host:              host,
				Store:             store,
				Clock:             c.Clock,
				Net:               c.Net,
				Router:            (*baselineRouter)(c),
				ColdStart:         cfg.ContainerColdStart,
				ContainerOverhead: cfg.ContainerOverhead,
				HostMemBytes:      cfg.HostMemBytes,
				Capacity:          cfg.Capacity,
			})
			c.base = append(c.base, p)
		}
	}
	c.nextHost = cfg.Hosts
	c.refreshActive()
	if cfg.AsyncQueue && cfg.Mode == ModeFaasm {
		c.clientQueue = queue.New(queue.Config{
			Store:    simnet.NewStore(c.State, c.Net, "ingress"),
			Clock:    c.Clock,
			Host:     "ingress",
			DepthCap: cfg.QueueDepth,
			LeaseTTL: cfg.QueueLeaseTTL,
			RetryMax: cfg.QueueRetryMax,
			Poll:     cfg.QueuePoll,
		}, nil)
	}
	return c
}

// newFaasmInstance builds one FAASM runtime host wired to the cluster's
// tier, network, clock, tracer, and registry. h is the host's slot index
// (shard co-location is positional); host its cluster-unique name.
func (c *Cluster) newFaasmInstance(h int, host string) *frt.Instance {
	cold := c.cfg.FaasmColdStart
	if c.cfg.UseProto {
		cold = c.cfg.ProtoColdStart
	}
	fc := frt.Config{
		Host:            host,
		Store:           simnet.NewStore(c.State, c.Net, host),
		Clock:           c.Clock,
		Capacity:        c.cfg.Capacity,
		Transport:       (*faasmTransport)(c),
		ColdStartDelay:  cold,
		LeaseTTL:        c.cfg.LeaseTTL,
		PeerCacheTTL:    c.cfg.PeerCacheTTL,
		LocalityWeight:  c.cfg.LocalityWeight,
		PoolCap:         c.cfg.PoolCap,
		ElasticPool:     c.cfg.ElasticPool,
		PoolIdleTimeout: c.cfg.PoolIdleTimeout,
		ElasticInterval: c.cfg.ElasticInterval,
		Tracer:          c.Tracer,
		Registry:        c.Registry,

		AsyncQueue:        c.cfg.AsyncQueue,
		QueueDepth:        c.cfg.QueueDepth,
		QueueLeaseTTL:     c.cfg.QueueLeaseTTL,
		QueueRetryMax:     c.cfg.QueueRetryMax,
		QueueRetryBackoff: c.cfg.QueueRetryBackoff,
		QueuePoll:         c.cfg.QueuePoll,
		QueueConcurrency:  c.cfg.QueueConcurrency,
	}
	if c.cfg.CoLocateShards && c.ring != nil && h < c.cfg.StateShards {
		fc.StateOwners = c.ring.HealthyOwners
		fc.LocalShard = fmt.Sprintf("shard-%d", h)
	}
	return frt.New(fc)
}

// refreshActive rebuilds the ingress snapshot: hosts that are neither
// removed, draining, nor killed. Call with c.mu held (or from New, before
// the cluster is shared).
func (c *Cluster) refreshActive() {
	act := make([]*frt.Instance, 0, len(c.faasm))
	for _, s := range c.faasm {
		if s.removed.Load() || s.inst.Draining() || s.inst.Killed() {
			continue
		}
		act = append(act, s.inst)
	}
	c.active.Store(&act)
}

// ingress returns the instances currently accepting front-door traffic,
// falling back to every non-removed host when the active set is empty (a
// fully draining cluster still executes rather than failing calls).
func (c *Cluster) ingress() []*frt.Instance {
	if act := *c.active.Load(); len(act) > 0 {
		return act
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var all []*frt.Instance
	for _, s := range c.faasm {
		if !s.removed.Load() {
			all = append(all, s.inst)
		}
	}
	return all
}

// Mode reports the platform under test.
func (c *Cluster) Mode() Mode { return c.cfg.Mode }

// Hosts reports live FAASM hosts — slots not yet reclaimed (draining and
// killed hosts count until ReclaimHost) — or the configured host count in
// baseline mode, where membership is static.
func (c *Cluster) Hosts() int {
	if c.cfg.Mode != ModeFaasm {
		return c.cfg.Hosts
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, s := range c.faasm {
		if !s.removed.Load() {
			n++
		}
	}
	return n
}

// ActiveHosts reports hosts currently accepting front-door traffic (not
// removed, draining, or killed) — the autoscaler's host-count signal.
func (c *Cluster) ActiveHosts() int { return len(*c.active.Load()) }

// slot returns host h's slot.
func (c *Cluster) slot(h int) *faasmHost {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.faasm[h]
}

// Instance returns host h's FAASM runtime (FAASM mode; tests and
// experiments reach per-host schedulers and counters through it).
func (c *Cluster) Instance(h int) *frt.Instance { return c.slot(h).inst }

// KillHost simulates a crash of host h (FAASM mode): the instance stops
// heartbeating and fails every call, local or forwarded, without retreating
// from anything — the cluster must notice through lease expiry, exactly as
// it would a real dead machine. The front door stops routing new calls to
// the corpse (a load balancer health check converges far faster than lease
// expiry); peer forwarding still reaches it until the lease goes.
func (c *Cluster) KillHost(h int) {
	s := c.slot(h)
	s.inst.Kill()
	c.mu.Lock()
	c.refreshActive()
	c.mu.Unlock()
}

// AddHost provisions one new FAASM runtime host (scale-up): a fresh
// instance under a never-reused name, deployed with every registered
// function, immediately eligible for ingress and peer forwarding. Returns
// the new host's index.
func (c *Cluster) AddHost() (int, error) {
	if c.cfg.Mode != ModeFaasm {
		return 0, fmt.Errorf("cluster: AddHost in %s mode", c.cfg.Mode)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	h := len(c.faasm)
	name := fmt.Sprintf("host-%d", c.nextHost)
	c.nextHost++
	inst := c.newFaasmInstance(h, name)
	for _, fn := range c.fns {
		inst.RegisterNative(fn.name, hostapi.WrapGuest(fn.g))
		if c.cfg.UseProto {
			if err := inst.FetchProto(fn.name); err != nil {
				inst.Shutdown()
				return 0, fmt.Errorf("cluster: proto for %s on new %s: %w", fn.name, name, err)
			}
		}
	}
	c.faasm = append(c.faasm, &faasmHost{inst: inst})
	c.refreshActive()
	return h, nil
}

// DrainHost gracefully stops host h: it leaves the ingress rotation and
// every warm set, its liveness lease expires tier-side within one TTL so
// peers route around it, in-flight calls finish, and new forwarded-in work
// is refused (callers fall back locally). Reclaim the host with ReclaimHost
// once its in-flight count reaches zero.
func (c *Cluster) DrainHost(h int) error {
	s := c.slot(h)
	if s.removed.Load() {
		return fmt.Errorf("cluster: host %d already reclaimed", h)
	}
	err := s.inst.Drain()
	c.mu.Lock()
	c.refreshActive()
	c.mu.Unlock()
	return err
}

// ReclaimHost releases a drained (or killed) host's resources: its pooled
// Faaslets close and the slot is marked removed — the index stays valid,
// the name is never reused. Refuses a live host, or a draining one still
// running calls.
func (c *Cluster) ReclaimHost(h int) error {
	s := c.slot(h)
	if s.removed.Load() {
		return nil
	}
	if !s.inst.Draining() && !s.inst.Killed() {
		return fmt.Errorf("cluster: host %d is live; drain it first", h)
	}
	if s.inst.Draining() && s.inst.Inflight() > 0 {
		return fmt.Errorf("cluster: host %d still has %d calls in flight", h, s.inst.Inflight())
	}
	s.inst.Shutdown()
	s.removed.Store(true)
	c.mu.Lock()
	c.refreshActive()
	c.mu.Unlock()
	return nil
}

// HostRemoved reports whether host h has been reclaimed.
func (c *Cluster) HostRemoved(h int) bool { return c.slot(h).removed.Load() }

// StateRing exposes the sharded tier's ring (nil when StateShards <= 1) —
// chaos experiments read its health and failure counters through it.
func (c *Cluster) StateRing() *shardkvs.Ring { return c.ring }

// KillShard crashes tier shard i: every operation against it fails as
// unavailable until RestoreShard. Requires Config.FaultyShards.
func (c *Cluster) KillShard(i int) { c.shardFaults[i].Crash() }

// RestoreShard revives a killed tier shard; its data is intact but stale
// until HealState re-syncs it.
func (c *Cluster) RestoreShard(i int) { c.shardFaults[i].Restore() }

// HealState re-syncs suspect tier shards from the in-sync copies and
// returns them to the read set (no-op on an unsharded tier).
func (c *Cluster) HealState() (shardkvs.MigrationStats, error) {
	if c.ring == nil {
		return shardkvs.MigrationStats{}, nil
	}
	return c.ring.Heal()
}

// faasmTransport shares work between FAASM instances, paying network costs
// for the call payloads.
type faasmTransport Cluster

// ExecuteOn implements frt.Transport. The forwarding host's trace id rides
// along, so the remote half of the invocation joins the same trace.
func (t *faasmTransport) ExecuteOn(host, fn string, input []byte, trace obsv.TraceID) ([]byte, int32, error) {
	c := (*Cluster)(t)
	c.mu.Lock()
	var target *frt.Instance
	for _, s := range c.faasm {
		// Draining hosts stay reachable (they refuse, the caller falls
		// back); reclaimed ones are gone from the network.
		if !s.removed.Load() && s.inst.Host() == host {
			target = s.inst
			break
		}
	}
	c.mu.Unlock()
	if target == nil {
		return nil, -1, fmt.Errorf("cluster: unknown host %q", host)
	}
	c.Net.Transfer(host, int64(len(input))+64, 64)
	out, ret, err := target.ExecuteForwarded(fn, input, trace)
	if err == nil {
		c.Net.Transfer(host, 64, int64(len(out))+64)
	}
	return out, ret, err
}

// baselineRouter load-balances chained baseline calls round-robin, as the
// platform front door does.
type baselineRouter Cluster

// Route implements baseline.Router.
func (r *baselineRouter) Route(fn string, input []byte) ([]byte, int32, error) {
	c := (*Cluster)(r)
	idx := int(c.rr.Add(1)) % len(c.base)
	return c.base[idx].Execute(fn, input)
}

// Register deploys a portable guest on every host. In FAASM mode with
// UseProto, host 0 generates the function's Proto-Faaslet and the other
// hosts restore it from the global tier (the cross-host restore path).
func (c *Cluster) Register(fn string, g hostapi.Guest) error {
	switch c.cfg.Mode {
	case ModeFaasm:
		c.mu.Lock()
		c.fns = append(c.fns, clusterFn{name: fn, g: g})
		insts := make([]*frt.Instance, 0, len(c.faasm))
		for _, s := range c.faasm {
			if !s.removed.Load() {
				insts = append(insts, s.inst)
			}
		}
		c.mu.Unlock()
		for _, inst := range insts {
			inst.RegisterNative(fn, hostapi.WrapGuest(g))
		}
		if c.cfg.UseProto && len(insts) > 0 {
			if err := insts[0].GenerateProto(fn, nil); err != nil {
				return err
			}
			for _, inst := range insts[1:] {
				if err := inst.FetchProto(fn); err != nil {
					return err
				}
			}
		}
	case ModeBaseline:
		for _, p := range c.base {
			p.Register(fn, g)
		}
	}
	return nil
}

// SetState seeds the global tier directly (experiment setup, not charged to
// the network).
func (c *Cluster) SetState(key string, val []byte) error {
	return c.State.Set(key, val)
}

// GetState reads the global tier directly (verification, not charged).
func (c *Cluster) GetState(key string) ([]byte, error) {
	return c.State.Get(key)
}

// Call executes one function synchronously, entering round-robin across
// the hosts currently in the ingress rotation (draining, killed, and
// reclaimed hosts are skipped, as a front door's health checks would).
func (c *Cluster) Call(fn string, input []byte) ([]byte, int32, error) {
	switch c.cfg.Mode {
	case ModeFaasm:
		hosts := c.ingress()
		if len(hosts) == 0 {
			return nil, -1, fmt.Errorf("cluster: no hosts")
		}
		idx := int(c.rr.Add(1)) % len(hosts)
		return hosts[idx].Call(fn, input)
	default:
		idx := int(c.rr.Add(1)) % len(c.base)
		return c.base[idx].Call(fn, input)
	}
}

// CallOn executes one function synchronously entering at host h (FAASM
// mode) — the failure experiments drive traffic through surviving hosts
// instead of the round-robin front door.
func (c *Cluster) CallOn(h int, fn string, input []byte) ([]byte, int32, error) {
	return c.slot(h).inst.Call(fn, input)
}

// Invoke starts an asynchronous call, returning an awaitable handle.
func (c *Cluster) Invoke(fn string, input []byte) (*Call, error) {
	switch c.cfg.Mode {
	case ModeFaasm:
		hosts := c.ingress()
		if len(hosts) == 0 {
			return nil, fmt.Errorf("cluster: no hosts")
		}
		idx := int(c.rr.Add(1)) % len(hosts)
		inst := hosts[idx]
		id, err := inst.Invoke(fn, input)
		if err != nil {
			return nil, err
		}
		return &Call{
			await:  func() (int32, error) { return inst.Await(id) },
			output: func() ([]byte, error) { return inst.Output(id) },
		}, nil
	default:
		idx := int(c.rr.Add(1)) % len(c.base)
		p := c.base[idx]
		id, err := p.Invoke(fn, input)
		if err != nil {
			return nil, err
		}
		return &Call{
			await:  func() (int32, error) { return p.Await(id) },
			output: func() ([]byte, error) { return p.Output(id) },
		}, nil
	}
}

// SubmitAsync enqueues one call into the durable async queue through a
// round-robin ingress host and acks with its call id. Once it returns, the
// call is tier-resident: it completes even if the accepting host dies the
// next instant. Backpressure (queue.ErrQueueFull) propagates to the caller;
// a host that is itself down is skipped for the next one.
func (c *Cluster) SubmitAsync(fn string, input []byte) (uint64, error) {
	if c.clientQueue == nil {
		return 0, fmt.Errorf("cluster: async queue disabled")
	}
	hosts := c.ingress()
	if len(hosts) == 0 {
		return 0, fmt.Errorf("cluster: no hosts")
	}
	start := int(c.rr.Add(1))
	var lastErr error
	for n := 0; n < len(hosts); n++ {
		inst := hosts[(start+n)%len(hosts)]
		id, err := inst.InvokeAsync(fn, input)
		if err == nil || errors.Is(err, queue.ErrQueueFull) {
			return id, err
		}
		lastErr = err
	}
	return 0, lastErr
}

// AwaitAsync blocks until an async call's terminal result, reading the tier
// directly (not through any host), so it survives the death of the host
// that accepted — or was executing — the call. timeout is experiment time;
// <= 0 waits forever.
func (c *Cluster) AwaitAsync(id uint64, timeout time.Duration) (mbus.CallRecord, error) {
	if c.clientQueue == nil {
		return mbus.CallRecord{}, fmt.Errorf("cluster: async queue disabled")
	}
	return c.clientQueue.Await(id, timeout)
}

// ChainThen records a static chain tier-side: every successful completion
// of fn enqueues next with fn's output as input.
func (c *Cluster) ChainThen(fn, next string) error {
	if c.clientQueue == nil {
		return fmt.Errorf("cluster: async queue disabled")
	}
	return c.clientQueue.Then(fn, next)
}

// QueueDepth reports fn's tier-side queued-plus-in-flight depth.
func (c *Cluster) QueueDepth(fn string) (int64, error) {
	if c.clientQueue == nil {
		return 0, fmt.Errorf("cluster: async queue disabled")
	}
	return c.clientQueue.Depth(fn)
}

// QueueDeadLetters lists fn's dead-lettered call ids.
func (c *Cluster) QueueDeadLetters(fn string) ([]uint64, error) {
	if c.clientQueue == nil {
		return nil, fmt.Errorf("cluster: async queue disabled")
	}
	return c.clientQueue.DeadLetters(fn)
}

// Call is an awaitable invocation handle.
type Call struct {
	await  func() (int32, error)
	output func() ([]byte, error)
}

// Await blocks until completion, returning the guest return code.
func (h *Call) Await() (int32, error) { return h.await() }

// Output returns a completed call's output.
func (h *Call) Output() ([]byte, error) { return h.output() }

// Stats aggregates cluster metrics for one experiment window.
type Stats struct {
	NetworkBytes int64
	GBSeconds    float64
	ColdStarts   int64
	WarmStarts   int64
	OOMFailures  int64
}

// allInstances snapshots every FAASM instance ever created, reclaimed ones
// included — their counters still belong to the experiment window.
func (c *Cluster) allInstances() []*frt.Instance {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*frt.Instance, len(c.faasm))
	for i, s := range c.faasm {
		out[i] = s.inst
	}
	return out
}

// Stats snapshots the cluster's counters.
func (c *Cluster) Stats() Stats {
	var s Stats
	s.NetworkBytes = c.Net.TotalBytes()
	switch c.cfg.Mode {
	case ModeFaasm:
		for _, inst := range c.allInstances() {
			s.GBSeconds += inst.Billable.GBSeconds()
			s.ColdStarts += inst.ColdStarts.Value()
			s.WarmStarts += inst.WarmStarts.Value()
		}
	default:
		for _, p := range c.base {
			s.GBSeconds += p.Billable.GBSeconds()
			s.ColdStarts += p.ColdStarts.Value()
			s.WarmStarts += p.WarmStarts.Value()
			s.OOMFailures += p.OOMFailures.Value()
		}
	}
	return s
}

// ResetStats zeroes counters between experiment phases.
func (c *Cluster) ResetStats() {
	c.Net.Reset()
	switch c.cfg.Mode {
	case ModeFaasm:
		for _, inst := range c.allInstances() {
			inst.Billable.Reset()
			inst.ColdStarts.Reset()
			inst.WarmStarts.Reset()
		}
	default:
		for _, p := range c.base {
			p.Billable.Reset()
			p.ColdStarts.Reset()
			p.WarmStarts.Reset()
			p.OOMFailures.Reset()
		}
	}
}

// ExecLatencies merges per-host execution latencies into one distribution.
func (c *Cluster) ExecLatencies() *metrics.Latencies {
	merged := &metrics.Latencies{}
	switch c.cfg.Mode {
	case ModeFaasm:
		for _, inst := range c.allInstances() {
			for _, p := range inst.ExecLatency.CDF(inst.ExecLatency.Count()) {
				merged.Record(p.Latency)
			}
		}
	default:
		for _, p := range c.base {
			for _, pt := range p.ExecLatency.CDF(p.ExecLatency.Count()) {
				merged.Record(pt.Latency)
			}
		}
	}
	return merged
}

// Shutdown stops the cluster.
func (c *Cluster) Shutdown() {
	if c.clientQueue != nil {
		c.clientQueue.Close()
	}
	for _, inst := range c.allInstances() {
		inst.Shutdown()
	}
}
