package faasm_test

// One testing.B benchmark per table and figure of the paper's evaluation.
// Each wraps the corresponding experiment from internal/experiments in its
// quick configuration; `cmd/faasm-bench` runs the full-sized sweeps and
// EXPERIMENTS.md records the full results. Benchmarks report one run per
// iteration, so ns/op approximates one complete experiment pass.

import (
	"io"
	"testing"

	"faasm.dev/faasm/internal/experiments"
)

var quick = experiments.Options{Quick: true}

func benchReport(b *testing.B, run func(experiments.Options) *experiments.Report) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := run(quick)
		if len(r.Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
		if i == 0 && testing.Verbose() {
			r.Fprint(io.Discard)
		}
	}
}

// BenchmarkTable1Isolation regenerates Table 1 (isolation approaches).
func BenchmarkTable1Isolation(b *testing.B) { benchReport(b, experiments.Table1) }

// BenchmarkTable3ColdStart regenerates Table 3 (cold-start comparison).
func BenchmarkTable3ColdStart(b *testing.B) { benchReport(b, experiments.Table3) }

// BenchmarkTable3Python regenerates the §6.5 Python no-op comparison.
func BenchmarkTable3Python(b *testing.B) { benchReport(b, experiments.Table3Python) }

// BenchmarkFig6SGD regenerates Fig 6 (training time / transfers / memory).
func BenchmarkFig6SGD(b *testing.B) { benchReport(b, experiments.Fig6) }

// BenchmarkFig6Small regenerates the §6.2 reduced-dataset run.
func BenchmarkFig6Small(b *testing.B) { benchReport(b, experiments.Fig6Small) }

// BenchmarkFig7Inference regenerates Fig 7a (latency vs throughput).
func BenchmarkFig7Inference(b *testing.B) { benchReport(b, experiments.Fig7) }

// BenchmarkFig7LatencyCDF regenerates Fig 7b (latency CDF).
func BenchmarkFig7LatencyCDF(b *testing.B) { benchReport(b, experiments.Fig7CDF) }

// BenchmarkFig8Matmul regenerates Fig 8 (matmul duration / transfers).
func BenchmarkFig8Matmul(b *testing.B) { benchReport(b, experiments.Fig8) }

// BenchmarkFig9aPolybench regenerates Fig 9a (kernel overhead vs native).
func BenchmarkFig9aPolybench(b *testing.B) { benchReport(b, experiments.Fig9a) }

// BenchmarkFig9bPython regenerates Fig 9b (dynamic-language overhead).
func BenchmarkFig9bPython(b *testing.B) { benchReport(b, experiments.Fig9b) }

// BenchmarkFig10Churn regenerates Fig 10 (creation latency vs churn).
func BenchmarkFig10Churn(b *testing.B) { benchReport(b, experiments.Fig10) }
