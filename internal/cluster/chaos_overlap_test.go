package cluster

// Chaos-overlap tests: two fault/lifecycle events in flight at once, under
// call traffic. The invariants everywhere: zero failed calls, and the
// cluster converges to a consistent host count afterwards. These overlaps
// are exactly where the single-event tests leave gaps — a crash landing on
// an already-draining host, a tier shard dying while a scale-up deploys,
// the autoscaler making decisions while the ring is mid-heal.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"faasm.dev/faasm/internal/autoscale"
	"faasm.dev/faasm/internal/hostapi"
)

// startEchoTraffic launches n workers hammering fn through the front door
// until stop is closed, counting failures. Returns the stop func and the
// failure counter.
func startEchoTraffic(t *testing.T, c *Cluster, fn string, n int) (func(), *atomic.Int64) {
	t.Helper()
	var failed atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, ret, err := c.Call(fn, []byte("x")); err != nil || ret != 0 {
					failed.Add(1)
				}
			}
		}()
	}
	var once sync.Once
	return func() { once.Do(func() { close(stop) }); wg.Wait() }, &failed
}

func TestKillHostMidDrainConvergesUnderTraffic(t *testing.T) {
	// A host crashes while it is already draining. The supervisor must not
	// double-count or wedge: the crashed-while-draining slot is reclaimed
	// once, a replacement restores the declared fleet, and no call fails
	// across the whole overlap.
	c := New(Config{
		Mode: ModeFaasm, Hosts: 3, TimeScale: 1000,
		LeaseTTL: 50 * time.Millisecond, PeerCacheTTL: time.Millisecond,
	})
	defer c.Shutdown()
	if err := c.Register("echo", func(api hostapi.API) (int32, error) {
		api.WriteOutput(api.Input())
		return 0, nil
	}); err != nil {
		t.Fatal(err)
	}
	ctrl := autoscale.NewController(c.Fleet(), autoscale.Spec{
		MinHosts: 3, MaxHosts: 4,
	}, c.Clock)

	stopTraffic, failed := startEchoTraffic(t, c, "echo", 4)
	defer stopTraffic()

	if err := c.DrainHost(1); err != nil {
		t.Fatal(err)
	}
	c.KillHost(1) // the crash lands mid-drain

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		ctrl.Tick()
		if c.HostRemoved(1) && c.Hosts() == 3 && c.ActiveHosts() == 3 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	stopTraffic()

	if !c.HostRemoved(1) {
		t.Fatal("crashed-while-draining host was never reclaimed")
	}
	if c.Hosts() != 3 || c.ActiveHosts() != 3 {
		t.Fatalf("fleet did not converge: hosts=%d active=%d", c.Hosts(), c.ActiveHosts())
	}
	st := ctrl.Status()
	if st.Drains != 1 || st.Restarts != 1 {
		t.Fatalf("supervision double-counted the overlap: drains=%d restarts=%d", st.Drains, st.Restarts)
	}
	if n := failed.Load(); n != 0 {
		t.Fatalf("%d calls failed across the kill-mid-drain overlap", n)
	}
	// The replacement serves traffic directly.
	if out, ret, err := c.CallOn(3, "echo", []byte("hi")); err != nil || ret != 0 || string(out) != "hi" {
		t.Fatalf("replacement host: %q %d %v", out, ret, err)
	}
}

func TestKillShardDuringScaleUpUnderTraffic(t *testing.T) {
	// A tier shard dies at the same moment a scale-up deploys a new host.
	// The new host must join cleanly (its adverts and residency writes ride
	// the degraded tier on quorum and failover), and neither event may fail
	// a call or a tier operation.
	c := New(Config{
		Mode: ModeFaasm, Hosts: 2, TimeScale: 1000,
		StateShards: 3, StateReplicas: 2, StateWriteQuorum: 1,
		StateReadFailover: true, FaultyShards: true,
	})
	defer c.Shutdown()
	if err := c.Register("echo", func(api hostapi.API) (int32, error) {
		api.WriteOutput(api.Input())
		return 0, nil
	}); err != nil {
		t.Fatal(err)
	}
	// read touches the tier (pull + view); called sequentially below, since
	// concurrent views of one local state value are the guest's to lock.
	if err := c.Register("read", func(api hostapi.API) (int32, error) {
		if err := api.StatePull("data"); err != nil {
			return 1, err
		}
		buf, err := api.StateView("data", -1)
		if err != nil {
			return 2, err
		}
		api.WriteOutput(buf)
		return 0, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetState("data", []byte("payload")); err != nil {
		t.Fatal(err)
	}

	stopTraffic, failed := startEchoTraffic(t, c, "echo", 4)
	defer stopTraffic()

	// The overlap proper: crash and scale-up race each other.
	var wg sync.WaitGroup
	var newHost int
	var addErr error
	wg.Add(2)
	go func() { defer wg.Done(); c.KillShard(0) }()
	go func() { defer wg.Done(); newHost, addErr = c.AddHost() }()
	wg.Wait()
	if addErr != nil {
		t.Fatalf("scale-up with a shard down: %v", addErr)
	}

	// Tier writes and reads keep working through the outage (W=1 +
	// failover), including from the freshly added host.
	for i := 0; i < 12; i++ {
		key := fmt.Sprintf("k-%d", i)
		if err := c.SetState(key, []byte("v")); err != nil {
			t.Fatalf("tier write with shard down: %v", err)
		}
		if v, err := c.GetState(key); err != nil || string(v) != "v" {
			t.Fatalf("tier read with shard down: %q %v", v, err)
		}
		if out, ret, err := c.Call("read", nil); err != nil || ret != 0 || string(out) != "payload" {
			t.Fatalf("state-reading call during outage: %q %d %v", out, ret, err)
		}
	}
	if out, ret, err := c.CallOn(newHost, "read", nil); err != nil || ret != 0 || string(out) != "payload" {
		t.Fatalf("call on scale-up host during outage: %q %d %v", out, ret, err)
	}

	c.RestoreShard(0)
	if _, err := c.HealState(); err != nil {
		t.Fatalf("heal: %v", err)
	}
	stopTraffic()

	if st := c.StateRing().FailureStats(); st.Suspects != 0 {
		t.Fatalf("tier did not converge after heal: %+v", st)
	}
	if c.Hosts() != 3 || c.ActiveHosts() != 3 {
		t.Fatalf("host count did not converge: hosts=%d active=%d", c.Hosts(), c.ActiveHosts())
	}
	if n := failed.Load(); n != 0 {
		t.Fatalf("%d calls failed across the shard-crash/scale-up overlap", n)
	}
}

func TestAutoscalerDecidesDuringRingHeal(t *testing.T) {
	// The autoscaler keeps reconciling while the tier ring is mid-heal. Its
	// drains ride the same degraded tier the heal is repairing; both must
	// finish, the fleet must settle at the floor, and no call may fail.
	c := New(Config{
		Mode: ModeFaasm, Hosts: 4, TimeScale: 1000,
		LeaseTTL: 50 * time.Millisecond, PeerCacheTTL: time.Millisecond,
		StateShards: 3, StateReplicas: 2, StateWriteQuorum: 1,
		StateReadFailover: true, FaultyShards: true,
	})
	defer c.Shutdown()
	if err := c.Register("echo", func(api hostapi.API) (int32, error) {
		api.WriteOutput(api.Input())
		return 0, nil
	}); err != nil {
		t.Fatal(err)
	}
	// Spread some tier state so the heal has ranges to re-sync.
	for i := 0; i < 24; i++ {
		if err := c.SetState(fmt.Sprintf("k-%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// LowWater 0.5: one worker's load reads 0 or 0.25 over four hosts, so
	// idleness accumulates; at the two-host floor the MinHosts guard holds.
	ctrl := autoscale.NewController(c.Fleet(), autoscale.Spec{
		MinHosts: 2, MaxHosts: 4, LowWater: 0.5,
		IdleTicks: 2, Cooldown: time.Millisecond,
	}, c.Clock)

	// One light worker: enough traffic to prove calls never fail, idle
	// enough that the controller decides to shrink 4 -> 2.
	stopTraffic, failed := startEchoTraffic(t, c, "echo", 1)
	defer stopTraffic()

	c.KillShard(1)
	c.RestoreShard(1)
	healDone := make(chan error, 1)
	go func() {
		_, err := c.HealState()
		healDone <- err
	}()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		ctrl.Tick()
		if c.Hosts() == 2 && ctrl.Status().ScaleDowns >= 2 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := <-healDone; err != nil {
		t.Fatalf("heal overlapping autoscaler decisions: %v", err)
	}
	stopTraffic()

	if c.Hosts() != 2 || c.ActiveHosts() != 2 {
		t.Fatalf("fleet did not settle at the floor: hosts=%d active=%d", c.Hosts(), c.ActiveHosts())
	}
	st := ctrl.Status()
	if st.ScaleDowns != 2 || st.Drains != 2 {
		t.Fatalf("decision counts did not converge: downs=%d drains=%d", st.ScaleDowns, st.Drains)
	}
	if st := c.StateRing().FailureStats(); st.Suspects != 0 {
		t.Fatalf("tier did not converge after heal: %+v", st)
	}
	if n := failed.Load(); n != 0 {
		t.Fatalf("%d calls failed while the autoscaler decided during the heal", n)
	}
}
