package dmatmul

import (
	"testing"
	"time"

	"faasm.dev/faasm/internal/cluster"
)

func runMultiply(t *testing.T, mode cluster.Mode, p Params) ([]float64, cluster.Stats, []float64) {
	t.Helper()
	a, b := Generate(p)
	c := cluster.New(cluster.Config{
		Mode: mode, Hosts: 2, TimeScale: 5000,
		ContainerColdStart: 2 * time.Millisecond,
	})
	defer c.Shutdown()
	if err := Seed(c, p, a, b); err != nil {
		t.Fatal(err)
	}
	if err := Register(c); err != nil {
		t.Fatal(err)
	}
	_, ret, err := c.Call("mm-main", MainInput(p))
	if err != nil || ret != 0 {
		t.Fatalf("%v multiply: ret=%d err=%v", mode, ret, err)
	}
	blob, err := c.GetState(KeyC)
	if err != nil {
		t.Fatal(err)
	}
	return DecodeResult(blob, p.N), c.Stats(), Reference(p, a, b)
}

func TestDistributedMatmulCorrectFaasm(t *testing.T) {
	p := Params{N: 64, Depth: 2, Seed: 3}
	got, _, want := runMultiply(t, cluster.ModeFaasm, p)
	if d := MaxAbsDiff(got, want); d > 1e-9 {
		t.Fatalf("faasm result off by %g", d)
	}
}

func TestDistributedMatmulCorrectKnative(t *testing.T) {
	p := Params{N: 64, Depth: 2, Seed: 3}
	got, _, want := runMultiply(t, cluster.ModeBaseline, p)
	if d := MaxAbsDiff(got, want); d > 1e-9 {
		t.Fatalf("knative result off by %g", d)
	}
}

func TestDepthOneStructure(t *testing.T) {
	p := Params{N: 32, Depth: 1, Seed: 5}
	got, _, want := runMultiply(t, cluster.ModeFaasm, p)
	if d := MaxAbsDiff(got, want); d > 1e-9 {
		t.Fatalf("depth-1 result off by %g", d)
	}
}

func TestFaasmTrafficAdvantage(t *testing.T) {
	// Fig 8b: FAASM moves less data (shared chunk replicas, no per-function
	// duplication of A/B blocks).
	p := Params{N: 64, Depth: 2, Seed: 3}
	_, fstats, _ := runMultiply(t, cluster.ModeFaasm, p)
	_, kstats, _ := runMultiply(t, cluster.ModeBaseline, p)
	if fstats.NetworkBytes >= kstats.NetworkBytes {
		t.Fatalf("faasm %d bytes >= knative %d", fstats.NetworkBytes, kstats.NetworkBytes)
	}
}

func TestIndivisibleDimensionRejected(t *testing.T) {
	p := Params{N: 30, Depth: 2}
	a, b := Generate(p)
	c := cluster.New(cluster.Config{Mode: cluster.ModeFaasm, Hosts: 1, TimeScale: 5000})
	defer c.Shutdown()
	Seed(c, p, a, b)
	Register(c)
	_, ret, _ := c.Call("mm-main", MainInput(p))
	if ret == 0 {
		t.Fatal("indivisible N accepted")
	}
}

func TestInputRoundTrips(t *testing.T) {
	m := multInput{N: 1, S: 2, I: 3, J: 4, K: 5, Out: 6}
	got, err := decodeMult(encodeMult(m))
	if err != nil || got != m {
		t.Fatalf("mult round trip: %+v %v", got, err)
	}
	g := mergeInput{N: 1, S: 2, I: 3, J: 4, Base: 5, Count: 6}
	got2, err := decodeMerge(encodeMerge(g))
	if err != nil || got2 != g {
		t.Fatalf("merge round trip: %+v %v", got2, err)
	}
}
