// Package shardkvs scales the global state tier horizontally. The paper
// backs every host's local tier with a single Redis-like store (§4.2); one
// engine is the ceiling on cluster-wide state throughput. Ring shards the
// key space across N nodes with a consistent-hash ring (virtual nodes, as in
// Dynamo/Cassandra), so the tier grows by adding nodes instead of growing
// one node.
//
// Ring implements the full kvs.Store interface: every operation routes to
// the owning shard, lease locks included (a key's lock lives on its primary,
// so lock semantics are exactly one engine's semantics). Tier-side expiry
// routes the same way: SetEx/MSetEx fan out to primary and replicas like any
// write, TTL reads the primary (the authority for a key's lifetime), and the
// rebalancer carries each key's remaining TTL with its bytes — enumeration
// skips expired keys and the copy re-checks the TTL, so a resize can never
// resurrect a key the tier already expired. Replication factor R places each
// key on the R distinct nodes clockwise from its hash. Nodes join and leave
// at runtime: the rebalancer streams only the hash ranges whose ownership
// changed, never the whole keyspace.
//
// # Concurrency model
//
//   - Lock-free routing: ownership lookups hash the key onto an immutable
//     ring snapshot; only membership changes (Join/Leave) rebuild it.
//   - Parallel fan-out: a replicated write goes to all R copies
//     concurrently — it costs the slowest copy, not R serial writes. Batched
//     operations (kvs.Batcher) group their keys by owning shard and issue
//     one batch per shard, shards in parallel.
//   - Per-key write fence: concurrent writers to the same key through one
//     ring instance are ordered by a small fence, so an error-free write
//     leaves all R copies identical; writers on different ring instances
//     coordinate through the kvs global lock (the paper's §4.2 recipe).
//
// # Failure handling
//
// The ring survives shard failure rather than surfacing it. A write needs
// only Options.WriteQuorum acknowledgements (0 = all copies, the strict
// historical behaviour); copies that miss a write are marked suspect and
// counted as divergence. With Options.ReadFailover, reads skip suspect
// copies and fall through to in-sync ones on unavailability errors
// (kvs.IsUnavailable — semantic errors still surface immediately). Heal
// probes suspect shards, rewrites every entry they own from an in-sync
// holder (read-repair), and clears the mark; HealInterval runs it on a
// cadence. The durability contract with W<R: a write acknowledged only by
// copies that all later crash is dropped by repair.
//
// Consistency notes: replica fan-out is synchronous (read-your-writes
// everywhere). Membership changes (Join/Leave) serialise against each other
// and coordinate with in-flight writes: per-key fences order each copy
// against the migrating stream, and a double-write window routes writes to
// the union of old and new owners until the new ring commits, so a write
// racing a resize can neither be stranded on the old owner nor missed by
// the new one. Reads stay on the committed ring throughout.
package shardkvs
