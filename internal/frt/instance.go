// Package frt implements the FAASM runtime instance of §5: the server-side
// component that manages a pool of Faaslets, schedules and executes function
// calls (locally or by sharing them with warm peers), implements the
// chaining half of the host interface, and generates/restores Proto-Faaslet
// snapshots to minimise cold-start latency.
//
// Multiple instances — one per host — form the distributed runtime of
// Fig 5: each has a local scheduler, a Faaslet pool, a slice of the local
// state tier, and a sharing path to its peers.
package frt

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"faasm.dev/faasm/internal/core"
	"faasm.dev/faasm/internal/kvs"
	"faasm.dev/faasm/internal/mbus"
	"faasm.dev/faasm/internal/metrics"
	"faasm.dev/faasm/internal/sched"
	"faasm.dev/faasm/internal/state"
	"faasm.dev/faasm/internal/vfs"
	"faasm.dev/faasm/internal/vtime"
	"faasm.dev/faasm/internal/wavm"
)

// Transport executes a call on a peer instance (work sharing). The cluster
// package provides an in-process transport; cmd/faasmd provides HTTP.
type Transport interface {
	ExecuteOn(host, function string, input []byte) ([]byte, int32, error)
}

// Config configures one runtime instance.
type Config struct {
	// Host is this instance's cluster-unique name.
	Host string
	// Store is the global tier.
	Store kvs.Store
	// Files is the global file tier for Faaslet filesystems.
	Files vfs.GlobalStore
	// Capacity bounds concurrently executing calls (scheduler hint).
	Capacity int
	// PoolCap bounds idle warm Faaslets kept per function.
	PoolCap int
	// Clock drives timing (nil = wall clock).
	Clock vtime.Clock
	// Transport reaches peer instances; nil disables work sharing.
	Transport Transport
	// ColdStartDelay adds simulated initialisation cost per cold start
	// (used by the cluster simulator to model measured constants; zero for
	// real deployments, where the true cost is measured).
	ColdStartDelay time.Duration
}

// Instance is one FAASM runtime instance.
type Instance struct {
	cfg   Config
	env   *core.Env
	local *state.LocalTier
	calls *mbus.CallTable
	sched *sched.Scheduler
	clock vtime.Clock
	slots chan struct{}

	mu     sync.Mutex
	defs   map[string]core.FuncDef
	protos map[string]*core.Proto
	pool   map[string][]*core.Faaslet
	// faasletCount tracks all live Faaslets (pooled + executing).
	faasletCount int

	// Metrics for the evaluation.
	ColdStarts  metrics.Counter
	WarmStarts  metrics.Counter
	ProtoStarts metrics.Counter
	ExecLatency metrics.Latencies
	InitLatency metrics.Latencies
	Billable    metrics.BillableMemory
}

// New creates a runtime instance.
func New(cfg Config) *Instance {
	if cfg.Host == "" {
		cfg.Host = "host-0"
	}
	if cfg.Store == nil {
		cfg.Store = kvs.NewEngine()
	}
	if cfg.Clock == nil {
		cfg.Clock = vtime.Real{}
	}
	if cfg.PoolCap <= 0 {
		cfg.PoolCap = 64
	}
	inst := &Instance{
		cfg:    cfg,
		local:  state.NewLocalTier(cfg.Store),
		calls:  mbus.NewCallTable(),
		sched:  sched.New(cfg.Host, cfg.Store, cfg.Capacity),
		clock:  cfg.Clock,
		defs:   map[string]core.FuncDef{},
		protos: map[string]*core.Proto{},
		pool:   map[string][]*core.Faaslet{},
	}
	inst.env = &core.Env{
		State: inst.local,
		Files: cfg.Files,
		Clock: cfg.Clock,
		Chain: inst,
	}
	if cfg.Capacity > 0 {
		inst.slots = make(chan struct{}, cfg.Capacity)
	}
	return inst
}

// Host returns this instance's name.
func (i *Instance) Host() string { return i.cfg.Host }

// State exposes the instance's local state tier.
func (i *Instance) State() *state.LocalTier { return i.local }

// Scheduler exposes the local scheduler (tests, metrics).
func (i *Instance) Scheduler() *sched.Scheduler { return i.sched }

// Env exposes the Faaslet environment (the cluster harness tweaks it).
func (i *Instance) Env() *core.Env { return i.env }

// RegisterNative deploys a native-guest function.
func (i *Instance) RegisterNative(name string, fn core.NativeGuest) {
	i.RegisterDef(core.FuncDef{Name: name, Native: fn})
}

// RegisterModule deploys a validated wavm module under name.
func (i *Instance) RegisterModule(name string, mod *wavm.Module) error {
	if !mod.Validated {
		return errors.New("frt: module must pass code generation before deployment")
	}
	i.RegisterDef(core.FuncDef{Name: name, Module: mod})
	return nil
}

// RegisterDef deploys a full function definition.
func (i *Instance) RegisterDef(def core.FuncDef) {
	i.mu.Lock()
	i.defs[def.Name] = def
	i.mu.Unlock()
}

// Functions lists deployed function names.
func (i *Instance) Functions() []string {
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make([]string, 0, len(i.defs))
	for n := range i.defs {
		out = append(out, n)
	}
	return out
}

// GenerateProto runs a function's initialisation path and snapshots the
// resulting Faaslet as the function's Proto-Faaslet (§5.2). init, when
// non-nil, is executed inside the Faaslet first (user-defined init code).
// The proto is also serialised to the global tier so peers can restore it.
func (i *Instance) GenerateProto(function string, init func(ctx *core.Ctx) error) error {
	def, ok := i.def(function)
	if !ok {
		return fmt.Errorf("frt: unknown function %q", function)
	}
	f, err := core.New(def, i.env)
	if err != nil {
		return err
	}
	defer f.Close()
	if init != nil {
		initDef := def
		initDef.Native = func(ctx *core.Ctx) (int32, error) {
			if err := init(ctx); err != nil {
				return 1, err
			}
			return 0, nil
		}
		if def.Module == nil {
			// For native guests, run init through a scratch execution.
			g, err := core.New(initDef, i.env)
			if err != nil {
				return err
			}
			if _, ret, err := g.Execute(nil); err != nil || ret != 0 {
				g.Close()
				return fmt.Errorf("frt: proto init for %s failed: ret=%d err=%v", function, ret, err)
			}
			proto, err := g.Snapshot()
			g.Close()
			if err != nil {
				return err
			}
			return i.installProto(function, proto)
		}
		// For wavm guests, init runs against the live Faaslet's state via a
		// host-side Ctx (the init code is trusted deployment code).
		if err := init(coreCtx(f)); err != nil {
			return fmt.Errorf("frt: proto init for %s: %w", function, err)
		}
	}
	proto, err := f.Snapshot()
	if err != nil {
		return err
	}
	return i.installProto(function, proto)
}

// coreCtx builds a host-side Ctx for deployment-time initialisation.
func coreCtx(f *core.Faaslet) *core.Ctx { return core.NewCtx(f) }

func (i *Instance) installProto(function string, proto *core.Proto) error {
	i.mu.Lock()
	i.protos[function] = proto
	i.mu.Unlock()
	blob, err := proto.Serialize()
	if err != nil {
		// Protos with shared mappings stay host-local; that is fine.
		return nil
	}
	return i.cfg.Store.Set("proto/"+function, blob)
}

// FetchProto pulls a peer-generated proto from the global tier (cross-host
// restore).
func (i *Instance) FetchProto(function string) error {
	blob, err := i.cfg.Store.Get("proto/" + function)
	if err != nil {
		return err
	}
	if blob == nil {
		return fmt.Errorf("frt: no proto for %q in global tier", function)
	}
	proto, err := core.DeserializeProto(blob)
	if err != nil {
		return err
	}
	i.mu.Lock()
	i.protos[function] = proto
	i.mu.Unlock()
	return nil
}

func (i *Instance) def(function string) (core.FuncDef, bool) {
	i.mu.Lock()
	defer i.mu.Unlock()
	def, ok := i.defs[function]
	return def, ok
}

// Invoke starts an asynchronous call and returns its id; Await/Output
// retrieve the result. This is the external entry point and the chain_call
// implementation.
func (i *Instance) Invoke(function string, input []byte) (uint64, error) {
	if _, ok := i.def(function); !ok {
		return 0, fmt.Errorf("frt: unknown function %q", function)
	}
	id := i.calls.Create(function, input)
	go i.dispatch(id, function, input)
	return id, nil
}

// Chain implements core.Chainer.
func (i *Instance) Chain(function string, input []byte) (uint64, error) {
	return i.Invoke(function, input)
}

// Await implements core.Chainer.
func (i *Instance) Await(id uint64) (int32, error) { return i.calls.Await(id) }

// Output implements core.Chainer.
func (i *Instance) Output(id uint64) ([]byte, error) { return i.calls.Output(id) }

// Call is the synchronous convenience wrapper: invoke and await.
func (i *Instance) Call(function string, input []byte) ([]byte, int32, error) {
	id, err := i.Invoke(function, input)
	if err != nil {
		return nil, -1, err
	}
	ret, err := i.calls.Await(id)
	if err != nil {
		return nil, ret, err
	}
	out, err := i.calls.Output(id)
	return out, ret, err
}

// dispatch routes one call per the scheduler's decision.
func (i *Instance) dispatch(id uint64, function string, input []byte) {
	i.calls.Start(id)
	decision, err := i.sched.Schedule(function)
	if err != nil {
		i.calls.Complete(id, nil, -1, err)
		return
	}
	if decision.Placement == sched.PlaceForward && i.cfg.Transport != nil {
		out, ret, err := i.cfg.Transport.ExecuteOn(decision.TargetHost, function, input)
		if err == nil {
			i.calls.Complete(id, out, ret, nil)
			return
		}
		// Peer failed: fall back to local execution.
	}
	out, ret, err := i.ExecuteLocal(function, input)
	i.calls.Complete(id, out, ret, err)
}

// ExecuteLocal runs a call on this host, acquiring a Faaslet from the warm
// pool or cold-starting one. It is also the entry point peers use when
// sharing work with this host.
func (i *Instance) ExecuteLocal(function string, input []byte) ([]byte, int32, error) {
	def, ok := i.def(function)
	if !ok {
		return nil, -1, fmt.Errorf("frt: unknown function %q", function)
	}
	i.sched.Begin()
	defer i.sched.End()
	if i.slots != nil {
		i.slots <- struct{}{}
		defer func() { <-i.slots }()
	}

	f, warm, err := i.acquire(def)
	if err != nil {
		return nil, -1, err
	}
	start := i.clock.Now()
	out, ret, execErr := f.Execute(input)
	dur := i.clock.Now().Sub(start)
	i.ExecLatency.Record(dur)
	i.Billable.Charge(f.Footprint(), dur)
	i.release(def.Name, f, execErr == nil)
	_ = warm
	return out, ret, execErr
}

// acquire takes a warm Faaslet from the pool or creates one.
func (i *Instance) acquire(def core.FuncDef) (*core.Faaslet, bool, error) {
	i.mu.Lock()
	pool := i.pool[def.Name]
	if n := len(pool); n > 0 {
		f := pool[n-1]
		i.pool[def.Name] = pool[:n-1]
		i.mu.Unlock()
		i.sched.NoteEvicted(def.Name, 1) // it is busy now, not idle-warm
		i.WarmStarts.Add(1)
		return f, true, nil
	}
	proto := i.protos[def.Name]
	i.mu.Unlock()

	// Cold start.
	if i.cfg.ColdStartDelay > 0 {
		i.clock.Sleep(i.cfg.ColdStartDelay)
	}
	start := i.clock.Now()
	var f *core.Faaslet
	var err error
	if proto != nil {
		f, err = core.NewFromProto(def, i.env, proto)
		i.ProtoStarts.Add(1)
	} else {
		f, err = core.New(def, i.env)
	}
	if err != nil {
		return nil, false, err
	}
	i.InitLatency.Record(i.clock.Now().Sub(start))
	i.ColdStarts.Add(1)
	i.mu.Lock()
	i.faasletCount++
	i.mu.Unlock()
	return f, false, nil
}

// release resets the Faaslet and returns it to the warm pool (§5.2: the
// reset restores the Proto-Faaslet, so no state leaks to the next call).
func (i *Instance) release(function string, f *core.Faaslet, healthy bool) {
	if healthy {
		if err := f.Reset(); err != nil {
			healthy = false
		}
	}
	if !healthy {
		f.Close()
		i.mu.Lock()
		i.faasletCount--
		i.mu.Unlock()
		return
	}
	i.mu.Lock()
	if len(i.pool[function]) < i.cfg.PoolCap {
		i.pool[function] = append(i.pool[function], f)
		i.mu.Unlock()
		i.sched.NoteWarm(function, 1)
		return
	}
	i.faasletCount--
	i.mu.Unlock()
	f.Close()
}

// FaasletCount reports live Faaslets on this instance.
func (i *Instance) FaasletCount() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.faasletCount
}

// PoolSize reports idle warm Faaslets for a function.
func (i *Instance) PoolSize(function string) int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return len(i.pool[function])
}

// LocalFootprint sums the footprints of pooled Faaslets plus the local
// state tier (per-host memory accounting for Fig 6c).
func (i *Instance) LocalFootprint() int64 {
	i.mu.Lock()
	var n int64
	for _, pool := range i.pool {
		for _, f := range pool {
			n += f.Footprint()
		}
	}
	i.mu.Unlock()
	return n + i.local.LocalBytes()
}

// Shutdown closes all pooled Faaslets.
func (i *Instance) Shutdown() {
	i.mu.Lock()
	pools := i.pool
	i.pool = map[string][]*core.Faaslet{}
	i.mu.Unlock()
	for fn, pool := range pools {
		for _, f := range pool {
			f.Close()
		}
		i.sched.NoteEvicted(fn, len(pool))
	}
}
