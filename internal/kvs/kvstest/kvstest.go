// Package kvstest is the shared conformance suite for kvs.Store
// implementations. The in-process Engine, the TCP Client and the sharded
// ring (internal/shardkvs) must all exhibit identical store semantics; each
// runs this suite so behaviour cannot drift between deployment modes.
package kvstest

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"faasm.dev/faasm/internal/kvs"
)

// Factory builds a fresh, empty store for one subtest. Implementations
// should register cleanup via t.Cleanup.
type Factory func(t *testing.T) kvs.Store

// Run exercises the full Store contract against stores built by mk.
func Run(t *testing.T, mk Factory) {
	t.Run("GetSetDelete", func(t *testing.T) { testGetSetDelete(t, mk(t)) })
	t.Run("BinaryAndOddKeys", func(t *testing.T) { testBinaryAndOddKeys(t, mk(t)) })
	t.Run("Ranges", func(t *testing.T) { testRanges(t, mk(t)) })
	t.Run("AppendAndLen", func(t *testing.T) { testAppendAndLen(t, mk(t)) })
	t.Run("Sets", func(t *testing.T) { testSets(t, mk(t)) })
	t.Run("Incr", func(t *testing.T) { testIncr(t, mk(t)) })
	t.Run("LocksExclusion", func(t *testing.T) { testLocksExclusion(t, mk(t)) })
	t.Run("ReadersShareWritersExclude", func(t *testing.T) { testReadersShareWritersExclude(t, mk(t)) })
	t.Run("ConcurrentIncrement", func(t *testing.T) { testConcurrentIncrement(t, mk(t)) })
	t.Run("LockProtectsReadModifyWrite", func(t *testing.T) { testLockRMW(t, mk(t)) })
}

func testGetSetDelete(t *testing.T, s kvs.Store) {
	v, err := s.Get("missing")
	if err != nil || v != nil {
		t.Fatalf("missing key: %v %v", v, err)
	}
	if err := s.Set("k", []byte("value")); err != nil {
		t.Fatal(err)
	}
	v, err = s.Get("k")
	if err != nil || string(v) != "value" {
		t.Fatalf("get: %q %v", v, err)
	}
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
	v, _ = s.Get("k")
	if v != nil {
		t.Fatal("delete did not remove key")
	}
}

func testBinaryAndOddKeys(t *testing.T, s kvs.Store) {
	key := "state/with spaces/and\"quotes\""
	val := []byte{0, 1, 2, 255, '\n', '"', 0}
	if err := s.Set(key, val); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(key)
	if err != nil || !bytes.Equal(got, val) {
		t.Fatalf("binary round trip: %v %v", got, err)
	}
}

func testRanges(t *testing.T, s kvs.Store) {
	if err := s.Set("k", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	v, err := s.GetRange("k", 2, 3)
	if err != nil || string(v) != "234" {
		t.Fatalf("getrange: %q %v", v, err)
	}
	// Truncated read past the end.
	v, _ = s.GetRange("k", 8, 10)
	if string(v) != "89" {
		t.Fatalf("truncated range: %q", v)
	}
	// Entirely past the end.
	v, _ = s.GetRange("k", 50, 5)
	if v != nil {
		t.Fatalf("past-end range: %q", v)
	}
	// SetRange with zero-extension.
	if err := s.SetRange("k", 12, []byte("AB")); err != nil {
		t.Fatal(err)
	}
	v, _ = s.Get("k")
	if len(v) != 14 || v[10] != 0 || string(v[12:]) != "AB" {
		t.Fatalf("setrange extend: %q", v)
	}
	// In-place overwrite.
	if err := s.SetRange("k", 0, []byte("XY")); err != nil {
		t.Fatal(err)
	}
	v, _ = s.Get("k")
	if string(v[:2]) != "XY" {
		t.Fatalf("setrange overwrite: %q", v)
	}
}

func testAppendAndLen(t *testing.T, s kvs.Store) {
	n, err := s.Append("log", []byte("aa"))
	if err != nil || n != 2 {
		t.Fatalf("append: %d %v", n, err)
	}
	n, err = s.Append("log", []byte("bbb"))
	if err != nil || n != 5 {
		t.Fatalf("append 2: %d %v", n, err)
	}
	l, err := s.Len("log")
	if err != nil || l != 5 {
		t.Fatalf("len: %d %v", l, err)
	}
	l, _ = s.Len("missing")
	if l != 0 {
		t.Fatalf("missing len = %d", l)
	}
}

func testSets(t *testing.T, s kvs.Store) {
	added, err := s.SAdd("warm", "host-b")
	if err != nil || !added {
		t.Fatalf("sadd: %v %v", added, err)
	}
	added, _ = s.SAdd("warm", "host-b")
	if added {
		t.Fatal("duplicate sadd reported new")
	}
	s.SAdd("warm", "host-a")
	members, err := s.SMembers("warm")
	if err != nil || len(members) != 2 || members[0] != "host-a" || members[1] != "host-b" {
		t.Fatalf("smembers: %v %v", members, err)
	}
	removed, _ := s.SRem("warm", "host-a")
	if !removed {
		t.Fatal("srem existing returned false")
	}
	removed, _ = s.SRem("warm", "host-a")
	if removed {
		t.Fatal("srem missing returned true")
	}
}

func testIncr(t *testing.T, s kvs.Store) {
	v, err := s.Incr("calls", 1)
	if err != nil || v != 1 {
		t.Fatalf("incr: %d %v", v, err)
	}
	v, _ = s.Incr("calls", 41)
	if v != 42 {
		t.Fatalf("incr 2: %d", v)
	}
	v, _ = s.Incr("calls", -2)
	if v != 40 {
		t.Fatalf("decr: %d", v)
	}
}

func testLocksExclusion(t *testing.T, s kvs.Store) {
	tok, err := s.Lock("key", true, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	acquired := make(chan uint64)
	go func() {
		tok2, err := s.Lock("key", true, time.Second)
		if err != nil {
			t.Error(err)
		}
		acquired <- tok2
	}()
	select {
	case <-acquired:
		t.Fatal("second writer acquired while first held")
	case <-time.After(50 * time.Millisecond):
	}
	if err := s.Unlock("key", tok); err != nil {
		t.Fatal(err)
	}
	select {
	case tok2 := <-acquired:
		s.Unlock("key", tok2)
	case <-time.After(2 * time.Second):
		t.Fatal("second writer never acquired")
	}
}

func testReadersShareWritersExclude(t *testing.T, s kvs.Store) {
	r1, err := s.Lock("key", false, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Lock("key", false, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	wAcquired := make(chan uint64)
	go func() {
		w, _ := s.Lock("key", true, time.Second)
		wAcquired <- w
	}()
	select {
	case <-wAcquired:
		t.Fatal("writer acquired under readers")
	case <-time.After(50 * time.Millisecond):
	}
	s.Unlock("key", r1)
	s.Unlock("key", r2)
	select {
	case w := <-wAcquired:
		s.Unlock("key", w)
	case <-time.After(2 * time.Second):
		t.Fatal("writer never acquired after readers released")
	}
}

func testConcurrentIncrement(t *testing.T, s kvs.Store) {
	var wg sync.WaitGroup
	const workers, per = 8, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := s.Incr("n", 1); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	v, _ := s.Incr("n", 0)
	if v != workers*per {
		t.Fatalf("lost updates: %d != %d", v, workers*per)
	}
}

func testLockRMW(t *testing.T, s kvs.Store) {
	// The §4.2 consistent-write recipe: lock, read, modify, write, unlock.
	s.Set("v", []byte("0"))
	var wg sync.WaitGroup
	const workers, per = 4, 25
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tok, err := s.Lock("v", true, time.Second)
				if err != nil {
					t.Error(err)
					return
				}
				cur, _ := s.Get("v")
				var n int
				fmt.Sscanf(string(cur), "%d", &n)
				s.Set("v", []byte(fmt.Sprintf("%d", n+1)))
				s.Unlock("v", tok)
			}
		}()
	}
	wg.Wait()
	final, _ := s.Get("v")
	if string(final) != fmt.Sprintf("%d", workers*per) {
		t.Fatalf("read-modify-write lost updates: %s", final)
	}
}
