// Command faasmd runs one FAASM runtime instance as an HTTP server: the
// deployable unit of Fig 5. It serves function invocation, the upload
// service (Fig 3's trusted code-generation phase), and status endpoints,
// and optionally connects to a shared kvs global tier so multiple faasmd
// processes form a cluster.
//
//	faasmd -listen :8090                           # standalone, in-process tier
//	faasmd -listen :8090 -state 10.0.0.5:6500      # join a shared global tier
//	faasmd -listen :8090 -state a:6500,b:6500      # sharded global tier (ring)
//	faasmd -kvs :6500                              # also serve one tier shard
//	faasmd -elastic-pool -pool-idle-timeout 30s    # autoscale warm pools
//	faasmd -autoscale -min-hosts 1 -max-hosts 8    # cluster control plane (advisory)
//	faasmd -trace-sample 1                         # trace every invocation
//
// The scheduling and state knobs (-pool-cap, -lease-ttl, -peer-cache-ttl,
// -locality-weight, -shard-id, -expiry-sweep and the elastic-pool flags)
// are documented in the README's
// "Operating faasmd" section, as are the observability knobs
// (-trace-sample, -trace-buffer).
//
// Endpoints:
//
//	PUT  /f/<name>?lang=fc|wat   upload source; codegen; deploy
//	POST /invoke/<name>          body = input, response = output
//	POST /invoke/<name>?async=1  enqueue durably (-async-queue); 202 + call id
//	GET  /call/<id>              a queued call's terminal result as JSON
//	GET  /status                 runtime counters
//	GET  /metrics                Prometheus text exposition
//	GET  /trace/<id>             one invocation trace as JSON
//	GET  /traces?slowest=N       the N slowest retained traces
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"faasm.dev/faasm/internal/autoscale"
	"faasm.dev/faasm/internal/frt"
	"faasm.dev/faasm/internal/kvs"
	"faasm.dev/faasm/internal/objstore"
	"faasm.dev/faasm/internal/obsv"
	"faasm.dev/faasm/internal/queue"
	"faasm.dev/faasm/internal/shardkvs"
	"faasm.dev/faasm/internal/upload"
)

func main() {
	listen := flag.String("listen", ":8090", "HTTP listen address")
	stateAddrs := flag.String("state", "", "comma-separated kvs shard endpoints (empty = in-process; >1 shards the tier)")
	storeAddr := flag.String("store", "", "deprecated alias for -state")
	stateReplicas := flag.Int("state-replicas", 1, "copies per key when the tier is sharded")
	stateWriteQuorum := flag.Int("state-write-quorum", 0, "copies that must acknowledge a replicated tier write (0 = all; W<replicas keeps writing while a shard is down)")
	stateReadFailover := flag.Bool("state-read-failover", true, "let tier reads fall through to surviving copies when the chosen shard fails (sharded tier)")
	stateHealInterval := flag.Duration("state-heal-interval", 0, "probe and re-sync suspect tier shards on this cadence (0 = off; sharded tier)")
	kvsDialTimeout := flag.Duration("kvs-dial-timeout", 0, "dial timeout for tier shard connections (0 = 5s)")
	kvsRetryMax := flag.Int("kvs-retry-max", 0, "retries per tier operation on connect/timeout failures, with exponential backoff (0 = 2, <0 = never retry)")
	kvsListen := flag.String("kvs", "", "also serve a kvs global-tier shard on this address")
	host := flag.String("host", "faasmd-0", "this instance's cluster name")
	poolCap := flag.Int("pool-cap", 0, "idle warm Faaslets kept per function (0 = runtime default, 64)")
	leaseTTL := flag.Duration("lease-ttl", 0, "liveness lease on this host's warm advertisements; heartbeats run at a third of it (0 = 10s)")
	peerCacheTTL := flag.Duration("peer-cache-ttl", 0, "staleness bound on the cached peer warm set (0 = 1s)")
	localityWeight := flag.Float64("locality-weight", 0, "blend data locality into cross-host forwarding: peer scores scale by (1 + weight×footprint-miss); 0 = off")
	shardID := flag.String("shard-id", "", "tier shard this process co-hosts (e.g. the -kvs shard's ring id); residency adverts then credit shard-primary co-location")
	elasticPool := flag.Bool("elastic-pool", false, "autoscale warm pools: grow ahead of misses, shrink on idle")
	poolIdleTimeout := flag.Duration("pool-idle-timeout", 0, "idle time before an elastic pool starts shrinking (0 = 30s)")
	expirySweep := flag.Duration("expiry-sweep", 0, "background sweep cadence for tier-side key expiry on engines this process hosts (0 = 1s)")
	traceSample := flag.Int("trace-sample", 0, "trace 1-in-N invocations (0 = default 64, 1 = all, <0 = off)")
	traceBuffer := flag.Int("trace-buffer", 0, "finished traces retained for /trace and /traces (0 = default 1024)")
	asyncQueue := flag.Bool("async-queue", false, "enable the durable async invocation queue: POST /invoke/<name>?async=1 enqueues and acks with a call id, GET /call/<id> reads the result")
	queueDepth := flag.Int("queue-depth", 0, "per-function depth cap on queued-plus-in-flight async calls; submits beyond it are rejected 429 (0 = 1024)")
	queueRetryMax := flag.Int("queue-retry-max", 0, "redeliveries after a failed async execution before the call dead-letters (0 = 3, <0 = none)")
	queueLeaseTTL := flag.Duration("queue-lease-ttl", 0, "in-flight redelivery lease: a consumer dead this long after claiming has its item reclaimed (0 = 10s)")
	autoscaleOn := flag.Bool("autoscale", false, "run the cluster autoscale controller (advisory in a single process: decisions surface on /status and faasm_autoscale_* metrics)")
	minHosts := flag.Int("min-hosts", 1, "autoscale floor: hosts the controller keeps unconditionally")
	maxHosts := flag.Int("max-hosts", 8, "autoscale ceiling: hosts the controller never exceeds")
	scaleCooldown := flag.Duration("scale-cooldown", 0, "minimum gap between voluntary scale actions (0 = 8x the reconcile tick)")
	flag.Parse()

	endpoints := *stateAddrs
	if endpoints == "" {
		endpoints = *storeAddr
	}

	var store kvs.Store
	var served *kvs.Engine
	var localEngine *kvs.Engine // in-process tier engine, if this process owns one
	newEngine := func() *kvs.Engine {
		eng := kvs.NewEngine()
		eng.SetSweepInterval(*expirySweep)
		return eng
	}
	if *kvsListen != "" {
		served = newEngine()
		localEngine = served
		srv, err := kvs.NewServer(served, *kvsListen)
		if err != nil {
			log.Fatalf("kvs listen: %v", err)
		}
		log.Printf("global tier shard serving on %s", srv.Addr())
	}
	newClient := func(addr string) *kvs.Client {
		c := kvs.NewClient(addr)
		c.DialTimeout = *kvsDialTimeout
		c.Retry = kvs.RetryPolicy{Max: *kvsRetryMax}
		return c
	}
	var ring *shardkvs.Ring
	switch addrs := shardkvs.SplitEndpoints(endpoints); {
	case len(addrs) > 1:
		var err error
		ring, err = shardkvs.AttachRemote(addrs, shardkvs.Options{
			Replication:  *stateReplicas,
			WriteQuorum:  *stateWriteQuorum,
			ReadFailover: *stateReadFailover,
			HealInterval: *stateHealInterval,
			NewStore:     func(addr string) kvs.Store { return newClient(addr) },
		})
		if err != nil {
			log.Fatalf("state tier: %v", err)
		}
		// Fail fast on unreachable shards rather than limping into traffic.
		if _, err := ring.ShardKeyCounts(); err != nil {
			log.Fatalf("state tier: %v", err)
		}
		log.Printf("global tier sharded across %d endpoints (replication %d, write quorum %d)", len(addrs), *stateReplicas, *stateWriteQuorum)
		store = ring
	case len(addrs) == 1:
		store = newClient(addrs[0])
	case served != nil:
		store = served
	default:
		localEngine = newEngine()
		store = localEngine
	}

	objects := objstore.NewMemory()
	up := upload.New(objects)
	fc := frt.Config{
		Host:            *host,
		Store:           store,
		PoolCap:         *poolCap,
		LeaseTTL:        *leaseTTL,
		PeerCacheTTL:    *peerCacheTTL,
		LocalityWeight:  *localityWeight,
		ElasticPool:     *elasticPool,
		PoolIdleTimeout: *poolIdleTimeout,
		TraceSample:     *traceSample,
		TraceBuffer:     *traceBuffer,
		AsyncQueue:      *asyncQueue,
		QueueDepth:      *queueDepth,
		QueueRetryMax:   *queueRetryMax,
		QueueLeaseTTL:   *queueLeaseTTL,
	}
	if ring != nil && *shardID != "" {
		fc.StateOwners = ring.HealthyOwners
		fc.LocalShard = *shardID
	}
	inst := frt.New(fc)
	if localEngine != nil {
		localEngine.Instrument(inst.Registry(), "global")
	}
	if ring != nil {
		ring.Instrument(inst.Registry())
	}

	var ctrl *autoscale.Controller
	if *autoscaleOn {
		ctrl = autoscale.NewController(newAdvisoryFleet(inst), autoscale.Spec{
			MinHosts: *minHosts,
			MaxHosts: *maxHosts,
			Cooldown: *scaleCooldown,
		}, nil)
		ctrl.Instrument(inst.Registry())
		ctrl.Start()
		log.Printf("autoscale controller on (hosts %d..%d, cooldown %v)", *minHosts, *maxHosts, ctrl.Spec().Cooldown)
	}

	mux := newMux(inst, up, objects, ring, ctrl)
	log.Printf("faasmd %s listening on %s", *host, *listen)
	log.Fatal(http.ListenAndServe(*listen, mux))
}

// newMux wires the daemon's HTTP surface over a runtime instance. Factored
// from main so tests drive the real handlers through httptest. ring is the
// sharded tier when one is attached (nil otherwise); /status reports its
// per-shard health. ctrl is the autoscale controller when -autoscale is on
// (nil otherwise); /status reports its fleet view and hysteresis state.
func newMux(inst *frt.Instance, up *upload.Service, objects *objstore.Store, ring *shardkvs.Ring, ctrl *autoscale.Controller) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/f/", deployingUploader{up: up, inst: inst, objects: objects})
	mux.HandleFunc("/invoke/", func(w http.ResponseWriter, r *http.Request) {
		name := strings.TrimPrefix(r.URL.Path, "/invoke/")
		input, err := io.ReadAll(io.LimitReader(r.Body, 32<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if r.URL.Query().Get("async") == "1" {
			id, err := inst.InvokeAsync(name, input)
			switch {
			case errors.Is(err, queue.ErrQueueFull):
				http.Error(w, err.Error(), http.StatusTooManyRequests)
				return
			case errors.Is(err, frt.ErrAsyncDisabled):
				http.Error(w, err.Error(), http.StatusNotImplemented)
				return
			case err != nil:
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("X-Faasm-Call-ID", strconv.FormatUint(id, 10))
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprintf(w, "%d\n", id)
			return
		}
		out, ret, trace, err := inst.CallTraced(name, input)
		if trace != 0 {
			w.Header().Set("X-Faasm-Trace", strconv.FormatUint(uint64(trace), 10))
		}
		if err != nil {
			http.Error(w, fmt.Sprintf("call failed (ret=%d): %v", ret, err), http.StatusInternalServerError)
			return
		}
		w.Header().Set("X-Faasm-Return-Code", fmt.Sprintf("%d", ret))
		w.Write(out)
	})
	mux.HandleFunc("/call/", func(w http.ResponseWriter, r *http.Request) {
		idStr := strings.TrimPrefix(r.URL.Path, "/call/")
		id, err := strconv.ParseUint(idStr, 10, 64)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad call id %q", idStr), http.StatusBadRequest)
			return
		}
		q := inst.Queue()
		if q == nil {
			http.Error(w, frt.ErrAsyncDisabled.Error(), http.StatusNotImplemented)
			return
		}
		rec, ok, err := q.Result(id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if !ok {
			http.Error(w, fmt.Sprintf("call %d has no result yet", id), http.StatusNotFound)
			return
		}
		writeJSON(w, rec)
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintf(w, "host: %s\nfunctions: %v\nfaaslets: %d\ncold: %d warm: %d proto: %d\nmedian exec: %v\n",
			inst.Host(), inst.Functions(), inst.FaasletCount(),
			inst.ColdStarts.Value(), inst.WarmStarts.Value(), inst.ProtoStarts.Value(),
			inst.ExecLatency.Median())
		fmt.Fprintf(w, "pool misses: %d prewarmed: %d idle reclaims: %d\n",
			inst.PoolMisses.Value(), inst.Prewarmed.Value(), inst.IdleReclaims.Value())
		sc := inst.Scheduler()
		fmt.Fprintf(w, "locality: hits %d misses %d saved %d bytes\n",
			sc.Stats.LocalityHits.Load(), sc.Stats.LocalityMisses.Load(), sc.Stats.LocalitySavedBytes.Load())
		if res := inst.Residency(); len(res) > 0 {
			fns := make([]string, 0, len(res))
			for fn := range res {
				fns = append(fns, fn)
			}
			sort.Strings(fns)
			for _, fn := range fns {
				fmt.Fprintf(w, "resident %s: %d bytes\n", fn, res[fn])
			}
		}
		if q := inst.Queue(); q != nil {
			st := q.Stats()
			fmt.Fprintf(w, "queue: enqueued %d redelivered %d dead-lettered %d\n",
				st.Enqueued, st.Redelivered, st.DeadLettered)
			for _, fn := range q.Functions() {
				if d, err := q.Depth(fn); err == nil {
					fmt.Fprintf(w, "queue depth %s: %d\n", fn, d)
				}
			}
		}
		if ctrl != nil {
			st := ctrl.Status()
			fmt.Fprintf(w, "autoscale: hosts %d active %d draining %d (spec %d..%d)\n",
				st.Hosts, st.Active, st.Draining, ctrl.Spec().MinHosts, ctrl.Spec().MaxHosts)
			fmt.Fprintf(w, "autoscale load: %.2f pressure %d idleness %d cooldown %v\n",
				st.Load, st.Pressure, st.Idleness, st.CooldownRemaining.Round(time.Millisecond))
			last := st.LastAction
			if last == "" {
				last = "none"
			}
			fmt.Fprintf(w, "autoscale actions: ups %d downs %d drains %d restarts %d last %s\n",
				st.ScaleUps, st.ScaleDowns, st.Drains, st.Restarts, last)
		}
		if ring != nil {
			st := ring.FailureStats()
			fmt.Fprintf(w, "state tier: failovers %d divergent %d repairs %d\n",
				st.Failovers, st.Divergence, st.Repairs)
			for _, h := range ring.Health() {
				if h.Suspect {
					fmt.Fprintf(w, "shard %s: SUSPECT for %v (%d failures)\n", h.ID, h.Down.Round(time.Millisecond), h.Failures)
				} else {
					fmt.Fprintf(w, "shard %s: in-sync (%d failures)\n", h.ID, h.Failures)
				}
			}
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := inst.Registry().WritePrometheus(w); err != nil {
			log.Printf("metrics: %v", err)
		}
	})
	mux.HandleFunc("/trace/", func(w http.ResponseWriter, r *http.Request) {
		idStr := strings.TrimPrefix(r.URL.Path, "/trace/")
		id, err := strconv.ParseUint(idStr, 10, 64)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad trace id %q", idStr), http.StatusBadRequest)
			return
		}
		snap, ok := inst.Tracer().Get(obsv.TraceID(id))
		if !ok {
			http.Error(w, fmt.Sprintf("trace %d not retained", id), http.StatusNotFound)
			return
		}
		writeJSON(w, snap)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		n := 10
		if s := r.URL.Query().Get("slowest"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v <= 0 {
				http.Error(w, fmt.Sprintf("bad slowest %q", s), http.StatusBadRequest)
				return
			}
			n = v
		}
		writeJSON(w, inst.Tracer().Slowest(n))
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("json: %v", err)
	}
}

// deployingUploader wraps the upload service so a successful upload also
// deploys the generated module to this instance.
type deployingUploader struct {
	up      *upload.Service
	inst    *frt.Instance
	objects *objstore.Store
}

func (d deployingUploader) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	d.up.Handler().ServeHTTP(w, r)
	if r.Method == http.MethodPut || r.Method == http.MethodPost {
		name := strings.TrimPrefix(r.URL.Path, "/f/")
		if mod, err := upload.LoadObject(d.objects, name); err == nil {
			if err := d.inst.RegisterModule(name, mod); err != nil {
				log.Printf("deploy %s: %v", name, err)
			} else {
				log.Printf("deployed %s", name)
			}
		}
	}
}
