package mbus

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSendReceive(t *testing.T) {
	b := New()
	inbox, err := b.Register("faaslet-1")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Send("faaslet-1", Message{Type: MsgCall, Function: "echo", Payload: []byte("hi")}); err != nil {
		t.Fatal(err)
	}
	msg := <-inbox
	if msg.Type != MsgCall || msg.Function != "echo" || string(msg.Payload) != "hi" {
		t.Fatalf("msg = %+v", msg)
	}
}

func TestSendToUnknownEndpoint(t *testing.T) {
	b := New()
	if err := b.Send("ghost", Message{}); err == nil {
		t.Fatal("send to missing endpoint succeeded")
	}
	if _, err := b.TrySend("ghost", Message{}); err == nil {
		t.Fatal("trysend to missing endpoint succeeded")
	}
}

func TestTrySendBackpressure(t *testing.T) {
	b := New()
	b.Register("slow")
	var lastOK bool
	for i := 0; i < endpointBuffer+1; i++ {
		ok, err := b.TrySend("slow", Message{CallID: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		lastOK = ok
	}
	if lastOK {
		t.Fatal("full inbox accepted message")
	}
}

func TestUnregisterClosesInbox(t *testing.T) {
	b := New()
	inbox, _ := b.Register("f")
	b.Unregister("f")
	if _, open := <-inbox; open {
		t.Fatal("inbox still open")
	}
	if err := b.Send("f", Message{}); err == nil {
		t.Fatal("send to unregistered endpoint succeeded")
	}
}

func TestBusClose(t *testing.T) {
	b := New()
	inbox, _ := b.Register("f")
	b.Close()
	if _, open := <-inbox; open {
		t.Fatal("inbox open after close")
	}
	if err := b.Send("f", Message{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: %v", err)
	}
	if _, err := b.Register("g"); !errors.Is(err, ErrClosed) {
		t.Fatalf("register after close: %v", err)
	}
	b.Close() // idempotent
}

func TestCallLifecycle(t *testing.T) {
	ct := NewCallTable()
	id := ct.Create("wordcount", []byte("input"))
	if id == 0 {
		t.Fatal("zero call id")
	}
	rec, ok := ct.Get(id)
	if !ok || rec.Status != CallPending || string(rec.Input) != "input" {
		t.Fatalf("record = %+v", rec)
	}
	if err := ct.Start(id); err != nil {
		t.Fatal(err)
	}
	// Output before completion is an error.
	if _, err := ct.Output(id); err == nil {
		t.Fatal("output of running call")
	}
	if err := ct.Complete(id, []byte("result"), 0, nil); err != nil {
		t.Fatal(err)
	}
	ret, err := ct.Await(id)
	if err != nil || ret != 0 {
		t.Fatalf("await: %d %v", ret, err)
	}
	out, err := ct.Output(id)
	if err != nil || string(out) != "result" {
		t.Fatalf("output: %q %v", out, err)
	}
}

func TestAwaitBlocksUntilComplete(t *testing.T) {
	ct := NewCallTable()
	id := ct.Create("f", nil)
	got := make(chan int32)
	go func() {
		ret, _ := ct.Await(id)
		got <- ret
	}()
	select {
	case <-got:
		t.Fatal("await returned before completion")
	case <-time.After(20 * time.Millisecond):
	}
	ct.Complete(id, nil, 7, nil)
	select {
	case ret := <-got:
		if ret != 7 {
			t.Fatalf("ret = %d", ret)
		}
	case <-time.After(time.Second):
		t.Fatal("await never woke")
	}
}

func TestAwaitFailedCall(t *testing.T) {
	ct := NewCallTable()
	id := ct.Create("f", nil)
	ct.Complete(id, nil, 1, errors.New("guest trapped"))
	ret, err := ct.Await(id)
	if err == nil || ret != 1 {
		t.Fatalf("await failed call: %d %v", ret, err)
	}
	if !strings.Contains(err.Error(), "guest trapped") {
		t.Fatalf("cause lost: %v", err)
	}
}

func TestManyAwaiters(t *testing.T) {
	ct := NewCallTable()
	id := ct.Create("f", nil)
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if ret, err := ct.Await(id); err != nil || ret != 3 {
				t.Errorf("awaiter got %d %v", ret, err)
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	ct.Complete(id, nil, 3, nil)
	wg.Wait()
}

func TestUnknownCallOps(t *testing.T) {
	ct := NewCallTable()
	if err := ct.Start(99); err == nil {
		t.Fatal("start unknown")
	}
	if err := ct.Complete(99, nil, 0, nil); err == nil {
		t.Fatal("complete unknown")
	}
	if _, err := ct.Await(99); err == nil {
		t.Fatal("await unknown")
	}
	if _, err := ct.Output(99); err == nil {
		t.Fatal("output unknown")
	}
}

func TestDeleteAndLen(t *testing.T) {
	ct := NewCallTable()
	a := ct.Create("f", nil)
	ct.Create("g", nil)
	if ct.Len() != 2 {
		t.Fatalf("len = %d", ct.Len())
	}
	ct.Delete(a)
	if ct.Len() != 1 {
		t.Fatalf("len after delete = %d", ct.Len())
	}
}

func TestCallIDsUnique(t *testing.T) {
	ct := NewCallTable()
	const n = 100
	ids := make(chan uint64, n)
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < n/10; j++ {
				ids <- ct.Create("f", nil)
			}
		}()
	}
	wg.Wait()
	close(ids)
	seen := map[uint64]bool{}
	for id := range ids {
		if seen[id] {
			t.Fatalf("duplicate call id %d", id)
		}
		seen[id] = true
	}
}

func TestConcurrentCallsAcrossShards(t *testing.T) {
	// Many producers completing distinct calls while consumers await them:
	// the sharded table must deliver every result exactly where it belongs.
	table := NewCallTable()
	const calls = 500
	ids := make([]uint64, calls)
	for i := range ids {
		ids[i] = table.Create("fn", []byte{byte(i)})
	}
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(2)
		go func(i int, id uint64) {
			defer wg.Done()
			table.Start(id)
			table.Complete(id, []byte{byte(i)}, int32(i%128), nil)
		}(i, id)
		go func(i int, id uint64) {
			defer wg.Done()
			ret, err := table.Await(id)
			if err != nil || ret != int32(i%128) {
				t.Errorf("call %d: ret=%d err=%v", i, ret, err)
				return
			}
			out, err := table.Output(id)
			if err != nil || len(out) != 1 || out[0] != byte(i) {
				t.Errorf("call %d output: %v %v", i, out, err)
			}
		}(i, id)
	}
	wg.Wait()
	if table.Len() != calls {
		t.Fatalf("len = %d", table.Len())
	}
}

func TestDeleteWakesPendingAwaiters(t *testing.T) {
	table := NewCallTable()
	id := table.Create("fn", nil)
	done := make(chan error, 1)
	go func() {
		_, err := table.Await(id)
		done <- err
	}()
	// Let the awaiter block, then delete the record out from under it.
	time.Sleep(10 * time.Millisecond)
	table.Delete(id)
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("await on deleted call returned success")
		}
	case <-time.After(time.Second):
		t.Fatal("awaiter not woken by delete")
	}
}

func TestDoubleCompleteFirstWriterWins(t *testing.T) {
	table := NewCallTable()
	id := table.Create("fn", nil)
	if err := table.Complete(id, []byte("a"), 0, nil); err != nil {
		t.Fatal(err)
	}
	// A second completion (a redelivered execution's late result) must be a
	// no-op: no panic on the per-call channel close, no overwrite of the
	// output, return code, or status waiters already observed.
	if err := table.Complete(id, []byte("b"), 1, errors.New("late failure")); !errors.Is(err, ErrAlreadyCompleted) {
		t.Fatalf("second complete: err = %v, want ErrAlreadyCompleted", err)
	}
	if ret, err := table.Await(id); err != nil || ret != 0 {
		t.Fatalf("await after double complete: %d %v, want first result 0", ret, err)
	}
	rec, ok := table.Get(id)
	if !ok || rec.Status != CallSucceeded || string(rec.Output) != "a" {
		t.Fatalf("record after double complete: %+v", rec)
	}
	if got := table.completed.Load(); got != 1 {
		t.Fatalf("completed counter = %d after double complete", got)
	}
}

func TestAwaitSurvivesDeleteAfterComplete(t *testing.T) {
	// A waiter woken by Complete must observe the result even when Delete
	// discards the record between the wake-up and the waiter's re-lock.
	// Looped to give the pre-fix race window many chances under -race.
	table := NewCallTable()
	for i := 0; i < 100; i++ {
		id := table.Create("fn", nil)
		got := make(chan error, 1)
		go func() {
			ret, err := table.Await(id)
			if err == nil && ret != 7 {
				err = errors.New("wrong return code")
			}
			got <- err
		}()
		// Let the awaiter park on the completion channel, then complete and
		// immediately delete: the Delete usually lands before the woken
		// awaiter re-acquires the shard lock, which is the race window.
		time.Sleep(time.Millisecond)
		if err := table.Complete(id, []byte("out"), 7, nil); err != nil {
			t.Fatal(err)
		}
		table.Delete(id)
		if err := <-got; err != nil {
			t.Fatalf("iter %d: awaiter of a completed call observed %v", i, err)
		}
	}
}

func TestSendUnregisterRace(t *testing.T) {
	// Senders hammering Send/TrySend while the endpoint is unregistered (or
	// the bus closed) must never panic on a closed channel: blocked senders
	// unblock with ErrClosed, and the inbox closes only after in-flight
	// sends drain. Run with -race; the pre-fix code panics here.
	for iter := 0; iter < 50; iter++ {
		b := New()
		inbox, _ := b.Register("victim")
		// Fill the buffer so Send blocks and sits in the race window.
		for i := 0; i < endpointBuffer; i++ {
			b.TrySend("victim", Message{})
		}
		var wg sync.WaitGroup
		for s := 0; s < 4; s++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < 20; j++ {
					if err := b.Send("victim", Message{}); err != nil {
						return
					}
				}
			}()
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < 20; j++ {
					if _, err := b.TrySend("victim", Message{}); err != nil {
						return
					}
				}
			}()
		}
		if iter%2 == 0 {
			b.Unregister("victim")
		} else {
			b.Close()
		}
		wg.Wait()
		// Receivers still drain whatever landed before the close.
		for range inbox {
		}
	}
}

func TestSendBlockedThenUnregisterReturnsClosed(t *testing.T) {
	b := New()
	b.Register("full")
	for i := 0; i < endpointBuffer; i++ {
		if ok, _ := b.TrySend("full", Message{}); !ok {
			t.Fatal("buffer filled early")
		}
	}
	got := make(chan error, 1)
	go func() {
		got <- b.Send("full", Message{CallID: 99})
	}()
	time.Sleep(10 * time.Millisecond) // let the sender block on the full inbox
	b.Unregister("full")
	select {
	case err := <-got:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("blocked send after unregister: %v, want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("blocked sender not released by unregister")
	}
}
