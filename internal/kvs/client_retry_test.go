package kvs_test

// A pooled client connection can be closed server-side while it sits idle
// (server restart, idle timeout at an LB). The client must absorb that by
// retrying once on a fresh connection instead of surfacing a spurious error
// to the state tier.

import (
	"testing"
	"time"

	"faasm.dev/faasm/internal/kvs"
)

// restartServer closes srv and brings a new server up on the same address,
// backed by engine. The listening socket can linger briefly, so binding is
// retried.
func restartServer(t *testing.T, srv *kvs.Server, engine *kvs.Engine) *kvs.Server {
	t.Helper()
	addr := srv.Addr()
	srv.Close()
	var next *kvs.Server
	var err error
	for i := 0; i < 50; i++ {
		next, err = kvs.NewServer(engine, addr)
		if err == nil {
			return next
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("rebind %s: %v", addr, err)
	return nil
}

func TestClientRetriesStalePooledConn(t *testing.T) {
	engine := kvs.NewEngine()
	srv, err := kvs.NewServer(engine, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := kvs.NewClient(srv.Addr())
	defer c.Close()

	// Seed and touch the conn so it lands in the pool.
	if err := c.Set("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}

	// Kill every established conn; the pooled one is now stale.
	srv = restartServer(t, srv, engine)

	// Single-op path: must succeed via the one-shot redial, not error.
	v, err := c.Get("k")
	if err != nil {
		t.Fatalf("get over stale pooled conn: %v", err)
	}
	if string(v) != "v1" {
		t.Fatalf("get = %q", v)
	}

	// Batch path: stale again after another restart.
	srv = restartServer(t, srv, engine)
	vals, err := kvs.MGet(c, []string{"k", "missing"})
	if err != nil {
		t.Fatalf("mget over stale pooled conn: %v", err)
	}
	if string(vals[0]) != "v1" || vals[1] != nil {
		t.Fatalf("mget = %q %q", vals[0], vals[1])
	}

	// A dead server (no listener at all) must still error.
	srv.Close()
	if err := c.Set("k", []byte("v2")); err == nil {
		t.Fatal("set against a dead server must error")
	}
}
