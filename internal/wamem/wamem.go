// Package wamem implements the WebAssembly-style linear memory that backs
// every Faaslet, together with the two mechanisms the paper layers on top of
// it:
//
//   - shared memory regions (§3.3): the guest's single dense linear address
//     space may be backed by several mappings; new pages can be remapped onto
//     a host-wide shared segment so that co-located Faaslets access the same
//     bytes with no copying, while the guest still sees offsets from zero;
//   - copy-on-write snapshots (§5.2): a Proto-Faaslet restore aliases the
//     snapshot's pages and copies a page only when it is first written, so
//     restores cost O(page table), not O(memory).
//
// The paper implements both with mmap/mremap on the host; Go has no portable
// equivalent, so wamem uses a page table: the linear space is an array of
// 64 KiB pages, each entry pointing at private storage, a snapshot page
// (copy-on-write), or a window into a shared Segment. Pages are materialised
// lazily, so an untouched no-op Faaslet has a footprint of a few hundred
// bytes of bookkeeping — matching the paper's KB-scale Faaslet footprints.
//
// All accessors bounds-check against the current memory size and return
// ErrOutOfBounds on violation; the VM layer converts these into SFI traps.
package wamem

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"
)

// PageSize is the WebAssembly page size (64 KiB).
const PageSize = 64 * 1024

const (
	pageShift = 16
	pageMask  = PageSize - 1
)

// ErrOutOfBounds is returned when an access falls outside linear memory.
var ErrOutOfBounds = errors.New("wamem: out-of-bounds memory access")

// ErrLimit is returned when growth would exceed the memory's page limit,
// mirroring the per-function memory limits of §3.2.
var ErrLimit = errors.New("wamem: memory limit exceeded")

// ErrShared is returned for operations not permitted on shared-region pages.
var ErrShared = errors.New("wamem: operation not supported on shared region")

var segmentIDs atomic.Uint64

// Segment is a region of common process memory that can be mapped into many
// Faaslets' linear address spaces (the central region of Fig 2). Its length
// is always a multiple of PageSize.
type Segment struct {
	id   uint64
	data []byte
}

// NewSegment allocates a shared segment of at least size bytes, rounded up
// to a whole number of pages.
func NewSegment(size int) *Segment {
	if size < 1 {
		size = 1
	}
	pages := (size + PageSize - 1) / PageSize
	return &Segment{
		id:   segmentIDs.Add(1),
		data: make([]byte, pages*PageSize),
	}
}

// ID returns the segment's process-unique identifier.
func (s *Segment) ID() uint64 { return s.id }

// Len returns the segment length in bytes (a multiple of PageSize).
func (s *Segment) Len() int { return len(s.data) }

// Pages returns the segment length in pages.
func (s *Segment) Pages() int { return len(s.data) / PageSize }

// Bytes returns the raw backing slice. Writers on different Faaslets must
// coordinate through the state tier's locks, exactly as the paper requires.
func (s *Segment) Bytes() []byte { return s.data }

// page is one page-table entry.
type page struct {
	// buf is the 64 KiB backing storage; nil means an untouched zero page.
	buf []byte
	// cow marks buf as aliased from a snapshot: copy before first write.
	cow bool
	// seg, when non-nil, marks this page as a window into a shared segment
	// (buf aliases seg.data[segOff : segOff+PageSize]).
	seg    *Segment
	segOff int
}

// Memory is one Faaslet's linear memory.
type Memory struct {
	pages    []page
	maxPages int
	// brk is the guest heap break used by the brk/sbrk host calls.
	brk uint32
	// owned counts pages with private materialised storage, for footprint
	// accounting (Table 3).
	owned int
}

// New creates a memory with initialPages of lazily materialised zero pages
// and a hard limit of maxPages (0 means the 32-bit maximum of 65536 pages).
func New(initialPages, maxPages int) (*Memory, error) {
	if maxPages <= 0 || maxPages > 65536 {
		maxPages = 65536
	}
	if initialPages < 0 || initialPages > maxPages {
		return nil, fmt.Errorf("wamem: initial pages %d exceed limit %d", initialPages, maxPages)
	}
	return &Memory{pages: make([]page, initialPages), maxPages: maxPages}, nil
}

// MustNew is New for static configurations known to be valid.
func MustNew(initialPages, maxPages int) *Memory {
	m, err := New(initialPages, maxPages)
	if err != nil {
		panic(err)
	}
	return m
}

// Size returns the current memory size in bytes.
func (m *Memory) Size() uint32 { return uint32(len(m.pages)) * PageSize }

// Pages returns the current memory size in pages.
func (m *Memory) Pages() int { return len(m.pages) }

// MaxPages returns the configured page limit.
func (m *Memory) MaxPages() int { return m.maxPages }

// Footprint returns the bytes of private storage actually materialised.
// Shared-segment pages and un-copied COW pages cost nothing here, which is
// what makes Faaslet and Proto-Faaslet footprints KB-scale.
func (m *Memory) Footprint() int64 { return int64(m.owned) * PageSize }

// Grow extends memory by delta pages of zeroes, returning the previous size
// in pages (the wasm memory.grow contract). Fails with ErrLimit past the
// per-function limit.
func (m *Memory) Grow(delta int) (int, error) {
	if delta < 0 {
		return 0, fmt.Errorf("wamem: negative grow %d", delta)
	}
	prev := len(m.pages)
	if prev+delta > m.maxPages {
		return 0, ErrLimit
	}
	m.pages = append(m.pages, make([]page, delta)...)
	return prev, nil
}

// Brk returns the current heap break.
func (m *Memory) Brk() uint32 { return m.brk }

// SetBrk moves the heap break, growing memory if the break passes the
// current size. It implements the brk/sbrk host-interface calls: growth
// beyond the page limit fails with ErrLimit and leaves the break unchanged.
func (m *Memory) SetBrk(addr uint32) error {
	if addr > m.Size() {
		need := int((addr+PageSize-1)/PageSize) - len(m.pages)
		if _, err := m.Grow(need); err != nil {
			return err
		}
	}
	m.brk = addr
	return nil
}

// MapShared extends the linear address space with the segment's pages and
// maps them onto the segment, returning the guest base offset of the new
// region. The guest keeps a dense address space; the underlying accesses hit
// the shared segment (Fig 2).
func (m *Memory) MapShared(seg *Segment) (uint32, error) {
	n := seg.Pages()
	if len(m.pages)+n > m.maxPages {
		return 0, ErrLimit
	}
	base := m.Size()
	for i := 0; i < n; i++ {
		off := i * PageSize
		m.pages = append(m.pages, page{
			buf:    seg.data[off : off+PageSize],
			seg:    seg,
			segOff: off,
		})
	}
	return base, nil
}

// SharedAt reports the segment mapped at guest offset off, if any.
func (m *Memory) SharedAt(off uint32) (*Segment, bool) {
	idx := int(off >> pageShift)
	if idx >= len(m.pages) || m.pages[idx].seg == nil {
		return nil, false
	}
	return m.pages[idx].seg, true
}

// pageForRead returns the backing slice for page idx, which may be nil for
// an untouched zero page.
func (m *Memory) pageForRead(idx int) []byte { return m.pages[idx].buf }

// pageForWrite materialises page idx for writing, performing the COW copy if
// the page aliases a snapshot.
func (m *Memory) pageForWrite(idx int) []byte {
	p := &m.pages[idx]
	if p.seg != nil {
		return p.buf
	}
	if p.buf == nil {
		p.buf = make([]byte, PageSize)
		m.owned++
		return p.buf
	}
	if p.cow {
		fresh := make([]byte, PageSize)
		copy(fresh, p.buf)
		p.buf = fresh
		p.cow = false
		m.owned++
	}
	return p.buf
}

func (m *Memory) check(off uint32, n int) error {
	// n is small and positive for typed accesses; end computed in 64 bits to
	// avoid overflow.
	if int64(off)+int64(n) > int64(m.Size()) {
		return ErrOutOfBounds
	}
	return nil
}

// ReadU8 loads one byte.
func (m *Memory) ReadU8(off uint32) (byte, error) {
	if err := m.check(off, 1); err != nil {
		return 0, err
	}
	buf := m.pageForRead(int(off >> pageShift))
	if buf == nil {
		return 0, nil
	}
	return buf[off&pageMask], nil
}

// WriteU8 stores one byte.
func (m *Memory) WriteU8(off uint32, b byte) error {
	if err := m.check(off, 1); err != nil {
		return err
	}
	m.pageForWrite(int(off >> pageShift))[off&pageMask] = b
	return nil
}

// ReadU32 loads a little-endian uint32.
func (m *Memory) ReadU32(off uint32) (uint32, error) {
	if err := m.check(off, 4); err != nil {
		return 0, err
	}
	if off&pageMask <= PageSize-4 {
		buf := m.pageForRead(int(off >> pageShift))
		if buf == nil {
			return 0, nil
		}
		return binary.LittleEndian.Uint32(buf[off&pageMask:]), nil
	}
	var b [4]byte
	if err := m.read(off, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

// WriteU32 stores a little-endian uint32.
func (m *Memory) WriteU32(off uint32, v uint32) error {
	if err := m.check(off, 4); err != nil {
		return err
	}
	if off&pageMask <= PageSize-4 {
		binary.LittleEndian.PutUint32(m.pageForWrite(int(off >> pageShift))[off&pageMask:], v)
		return nil
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return m.write(off, b[:])
}

// ReadU64 loads a little-endian uint64.
func (m *Memory) ReadU64(off uint32) (uint64, error) {
	if err := m.check(off, 8); err != nil {
		return 0, err
	}
	if off&pageMask <= PageSize-8 {
		buf := m.pageForRead(int(off >> pageShift))
		if buf == nil {
			return 0, nil
		}
		return binary.LittleEndian.Uint64(buf[off&pageMask:]), nil
	}
	var b [8]byte
	if err := m.read(off, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// WriteU64 stores a little-endian uint64.
func (m *Memory) WriteU64(off uint32, v uint64) error {
	if err := m.check(off, 8); err != nil {
		return err
	}
	if off&pageMask <= PageSize-8 {
		binary.LittleEndian.PutUint64(m.pageForWrite(int(off >> pageShift))[off&pageMask:], v)
		return nil
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return m.write(off, b[:])
}

// ReadU16 loads a little-endian uint16.
func (m *Memory) ReadU16(off uint32) (uint16, error) {
	if err := m.check(off, 2); err != nil {
		return 0, err
	}
	if off&pageMask <= PageSize-2 {
		buf := m.pageForRead(int(off >> pageShift))
		if buf == nil {
			return 0, nil
		}
		return binary.LittleEndian.Uint16(buf[off&pageMask:]), nil
	}
	var b [2]byte
	if err := m.read(off, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b[:]), nil
}

// WriteU16 stores a little-endian uint16.
func (m *Memory) WriteU16(off uint32, v uint16) error {
	if err := m.check(off, 2); err != nil {
		return err
	}
	if off&pageMask <= PageSize-2 {
		binary.LittleEndian.PutUint16(m.pageForWrite(int(off >> pageShift))[off&pageMask:], v)
		return nil
	}
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	return m.write(off, b[:])
}

// read copies [off, off+len(dst)) into dst crossing pages as needed.
// Caller has already bounds-checked.
func (m *Memory) read(off uint32, dst []byte) error {
	for len(dst) > 0 {
		idx := int(off >> pageShift)
		po := int(off & pageMask)
		n := PageSize - po
		if n > len(dst) {
			n = len(dst)
		}
		buf := m.pageForRead(idx)
		if buf == nil {
			for i := 0; i < n; i++ {
				dst[i] = 0
			}
		} else {
			copy(dst[:n], buf[po:po+n])
		}
		dst = dst[n:]
		off += uint32(n)
	}
	return nil
}

// write copies src into [off, off+len(src)) crossing pages as needed.
// Caller has already bounds-checked.
func (m *Memory) write(off uint32, src []byte) error {
	for len(src) > 0 {
		idx := int(off >> pageShift)
		po := int(off & pageMask)
		n := PageSize - po
		if n > len(src) {
			n = len(src)
		}
		copy(m.pageForWrite(idx)[po:po+n], src[:n])
		src = src[n:]
		off += uint32(n)
	}
	return nil
}

// ReadBytes returns a copy of n bytes at off.
func (m *Memory) ReadBytes(off uint32, n int) ([]byte, error) {
	if n < 0 {
		return nil, ErrOutOfBounds
	}
	if err := m.check(off, n); err != nil {
		return nil, err
	}
	dst := make([]byte, n)
	if err := m.read(off, dst); err != nil {
		return nil, err
	}
	return dst, nil
}

// WriteBytes copies src into memory at off.
func (m *Memory) WriteBytes(off uint32, src []byte) error {
	if err := m.check(off, len(src)); err != nil {
		return err
	}
	return m.write(off, src)
}

// Zero clears n bytes at off.
func (m *Memory) Zero(off uint32, n int) error {
	if err := m.check(off, n); err != nil {
		return err
	}
	for n > 0 {
		idx := int(off >> pageShift)
		po := int(off & pageMask)
		c := PageSize - po
		if c > n {
			c = n
		}
		p := &m.pages[idx]
		if p.buf != nil || p.seg != nil {
			buf := m.pageForWrite(idx)
			for i := po; i < po+c; i++ {
				buf[i] = 0
			}
		}
		n -= c
		off += uint32(c)
	}
	return nil
}

// View returns a slice aliasing guest memory [off, off+n) when the range has
// contiguous backing: within one page, or spanning pages mapped onto
// consecutive offsets of the same shared segment. This is how the state tier
// hands out direct pointers to state values (get_state in Table 2). The
// range is materialised for writing. Returns ErrOutOfBounds if the range is
// not contiguous in the backing store.
func (m *Memory) View(off uint32, n int) ([]byte, error) {
	if n < 0 {
		return nil, ErrOutOfBounds
	}
	if err := m.check(off, n); err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	first := int(off >> pageShift)
	last := int((uint64(off) + uint64(n) - 1) >> pageShift)
	po := int(off & pageMask)
	if first == last {
		return m.pageForWrite(first)[po : po+n], nil
	}
	// Multi-page: contiguous only if all pages window consecutive offsets of
	// one segment.
	seg := m.pages[first].seg
	if seg == nil {
		return nil, fmt.Errorf("%w: non-contiguous view of %d bytes at %#x", ErrShared, n, off)
	}
	base := m.pages[first].segOff
	for i := first; i <= last; i++ {
		p := m.pages[i]
		if p.seg != seg || p.segOff != base+(i-first)*PageSize {
			return nil, fmt.Errorf("%w: fragmented shared view at %#x", ErrShared, off)
		}
	}
	return seg.data[base+po : base+po+n], nil
}

// Snapshot captures the current memory contents. Private pages are captured
// by aliasing (both the snapshot and the live memory become copy-on-write);
// shared-region pages are recorded as segment references. The snapshot is
// immutable and may be restored many times, including concurrently into
// different Memories.
func (m *Memory) Snapshot() *Snapshot {
	s := &Snapshot{
		pages:    make([]snapPage, len(m.pages)),
		brk:      m.brk,
		maxPages: m.maxPages,
	}
	for i := range m.pages {
		p := &m.pages[i]
		if p.seg != nil {
			s.pages[i] = snapPage{seg: p.seg, segOff: p.segOff}
			continue
		}
		if p.buf != nil {
			if !p.cow {
				// The page's storage is now attributed to the snapshot; the
				// live memory will copy on its next write.
				p.cow = true
				m.owned--
			}
			s.pages[i] = snapPage{buf: p.buf}
		}
	}
	return s
}

// Snapshot is an immutable capture of a Memory (a Proto-Faaslet's memory
// image). Restores alias its pages copy-on-write.
type Snapshot struct {
	pages    []snapPage
	brk      uint32
	maxPages int
}

type snapPage struct {
	buf    []byte
	seg    *Segment
	segOff int
}

// Pages returns the snapshot size in pages.
func (s *Snapshot) Pages() int { return len(s.pages) }

// Bytes returns the total snapshot size in bytes.
func (s *Snapshot) Bytes() int64 { return int64(len(s.pages)) * PageSize }

// StoredBytes returns the bytes of materialised (non-zero, non-shared) pages
// the snapshot actually holds.
func (s *Snapshot) StoredBytes() int64 {
	var n int64
	for _, p := range s.pages {
		if p.buf != nil {
			n += PageSize
		}
	}
	return n
}

// Restore builds a new Memory aliasing the snapshot copy-on-write. This is
// the Proto-Faaslet restore path: cost is proportional to the page count,
// not the memory contents.
func (s *Snapshot) Restore() *Memory {
	m := &Memory{
		pages:    make([]page, len(s.pages)),
		maxPages: s.maxPages,
		brk:      s.brk,
	}
	for i, sp := range s.pages {
		switch {
		case sp.seg != nil:
			m.pages[i] = page{buf: sp.seg.data[sp.segOff : sp.segOff+PageSize], seg: sp.seg, segOff: sp.segOff}
		case sp.buf != nil:
			m.pages[i] = page{buf: sp.buf, cow: true}
		}
	}
	return m
}

// Serialize flattens the snapshot for cross-host transfer through the global
// tier. Shared-segment pages cannot be serialised (Proto-Faaslets are taken
// before any state is mapped); ErrShared is returned if any are present.
// The encoding is a simple sparse page list:
//
//	u32 pageCount | u32 brk | u32 maxPages | repeated { u32 pageIndex | page bytes }
func (s *Snapshot) Serialize() ([]byte, error) {
	var materialised int
	for _, p := range s.pages {
		if p.seg != nil {
			return nil, ErrShared
		}
		if p.buf != nil {
			materialised++
		}
	}
	out := make([]byte, 0, 12+materialised*(4+PageSize))
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(s.pages)))
	binary.LittleEndian.PutUint32(hdr[4:], s.brk)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(s.maxPages))
	out = append(out, hdr[:]...)
	var idx [4]byte
	for i, p := range s.pages {
		if p.buf == nil {
			continue
		}
		binary.LittleEndian.PutUint32(idx[:], uint32(i))
		out = append(out, idx[:]...)
		out = append(out, p.buf...)
	}
	return out, nil
}

// DeserializeSnapshot reverses Serialize. The resulting snapshot owns its
// page storage.
func DeserializeSnapshot(b []byte) (*Snapshot, error) {
	if len(b) < 12 {
		return nil, fmt.Errorf("wamem: snapshot too short (%d bytes)", len(b))
	}
	pageCount := int(binary.LittleEndian.Uint32(b[0:]))
	brk := binary.LittleEndian.Uint32(b[4:])
	maxPages := int(binary.LittleEndian.Uint32(b[8:]))
	if pageCount < 0 || pageCount > 65536 {
		return nil, fmt.Errorf("wamem: invalid snapshot page count %d", pageCount)
	}
	s := &Snapshot{pages: make([]snapPage, pageCount), brk: brk, maxPages: maxPages}
	rest := b[12:]
	for len(rest) > 0 {
		if len(rest) < 4+PageSize {
			return nil, fmt.Errorf("wamem: truncated snapshot page record (%d bytes left)", len(rest))
		}
		idx := int(binary.LittleEndian.Uint32(rest[0:]))
		if idx < 0 || idx >= pageCount {
			return nil, fmt.Errorf("wamem: snapshot page index %d out of range", idx)
		}
		buf := make([]byte, PageSize)
		copy(buf, rest[4:4+PageSize])
		s.pages[idx] = snapPage{buf: buf}
		rest = rest[4+PageSize:]
	}
	return s, nil
}
