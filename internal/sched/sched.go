package sched

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"faasm.dev/faasm/internal/kvs"
	"faasm.dev/faasm/internal/obsv"
	"faasm.dev/faasm/internal/vtime"
)

// Placement says where a call should run.
type Placement int

// Placements.
const (
	// PlaceLocalWarm executes on this host using a warm Faaslet.
	PlaceLocalWarm Placement = iota
	// PlaceForward shares the call with another warm host.
	PlaceForward
	// PlaceLocalCold cold-starts a Faaslet on this host.
	PlaceLocalCold
)

func (p Placement) String() string {
	switch p {
	case PlaceLocalWarm:
		return "local-warm"
	case PlaceForward:
		return "forward"
	case PlaceLocalCold:
		return "local-cold"
	}
	return "unknown"
}

// Decision is one scheduling outcome.
type Decision struct {
	Placement Placement
	// TargetHost is the peer to share with when Placement == PlaceForward.
	TargetHost string

	// LocalityFrac is the chosen peer's advertised resident bytes as a
	// fraction of the function's state footprint (0 when locality scoring
	// is off or the function has no data gravity anywhere).
	LocalityFrac float64
	// BestResidentHost is the peer advertising the most resident bytes for
	// the function — it differs from TargetHost when latency×load outweighed
	// locality. Empty when no blended ranking ran.
	BestResidentHost string
	// SavedBytes is the state bytes the forward avoids re-pulling by landing
	// on TargetHost (its advertised residency, clipped to the footprint).
	SavedBytes int64
}

// warmSetKey is the global-tier key holding a function's warm hosts.
func warmSetKey(fn string) string { return "sched/warm/" + fn }

// aliveKey is the global-tier key holding a host's liveness lease: a
// presence marker written with SetEx, so the tier itself expires it on its
// own clock. A host whose record has vanished is dead to peers; no writer
// or observer clock ever enters the judgement.
func aliveKey(host string) string { return "sched/alive/" + host }

// leaseMark is the lease record's payload. Deliberately non-numeric: the
// previous release stored a writer-clock expiry stamp (decimal unix nanos)
// here, and nothing must ever mistake the new marker for one.
var leaseMark = []byte("up")

// DefaultPeerCacheTTL bounds the staleness of the cached peer warm set. A
// new warm host becomes visible to peers within this window; a vanished one
// stops receiving forwards within it (forwarding also falls back locally on
// transport failure, so staleness is a latency cost, not a correctness one).
const DefaultPeerCacheTTL = time.Second

// DefaultLeaseTTL is how long a host's warm advertisements outlive its last
// heartbeat. The heartbeat loop refreshes the lease every LeaseTTL/3, so a
// healthy host misses two beats before anyone doubts it; a crashed host is
// filtered from every peer's forwarding within one lease TTL (plus at most
// one peer-cache TTL of staleness).
const DefaultLeaseTTL = 10 * time.Second

// Stats counts scheduling decisions per placement, for the evaluation.
type Stats struct {
	LocalWarm atomic.Int64
	Forwarded atomic.Int64
	ColdStart atomic.Int64

	// LocalityHits counts blended forwards that landed on a peer advertising
	// resident state for the function; LocalityMisses counts blended forwards
	// that had to land on a data-free peer. LocalitySavedBytes accumulates
	// the state bytes those hits avoided re-pulling.
	LocalityHits       atomic.Int64
	LocalityMisses     atomic.Int64
	LocalitySavedBytes atomic.Int64
}

// fnState is the per-function scheduler state: the local idle-warm counter,
// whether this host currently advertises itself in the function's global
// warm set, and the cached peer warm set.
type fnState struct {
	// idle counts this host's idle warm Faaslets (including Faaslets whose
	// post-call reset is still in flight — they are committed to the pool).
	idle atomic.Int64
	// advertised tracks membership in the global warm set, so steady-state
	// warm traffic never re-issues SAdd.
	advertised atomic.Bool

	// cacheMu guards the cached peer set below. resident maps peer host →
	// resident state bytes it advertised for this function on its lease
	// (decoded from the same batched lease read that judged liveness); nil
	// when no peer advertised any.
	cacheMu  sync.Mutex
	peers    []string
	resident map[string]int64
	fetched  time.Time
	cached   bool
}

// peerStat is this scheduler's view of one forwarding target: an EWMA of
// observed round-trip latency and the number of forwards in flight to it.
type peerStat struct {
	// inflight counts forwards currently executing on the peer.
	inflight atomic.Int64
	// ewmaNanos is the smoothed forward latency; 0 means never probed.
	ewmaNanos atomic.Int64
}

// ewmaShift is the EWMA smoothing factor as a power of two: each sample
// moves the estimate 1/4 of the way to itself.
const ewmaShift = 2

// failurePenalty multiplies a peer's latency estimate when a forward to it
// fails, sinking it in the weighted ranking until successes pull it back.
const failurePenalty = 8

// minFailureBase is the floor the failure penalty multiplies when a forward
// fails faster than this (a connection refused returns in microseconds —
// without the floor, a fast failure would hand a dead peer the best score
// in the cluster).
const minFailureBase = int64(time.Millisecond)

// maxEwmaNanos caps the latency estimate so repeated failure penalties
// saturate instead of overflowing int64 (an overflow would wrap negative
// and clamp back to 1, scoring a persistently failing peer best again).
const maxEwmaNanos = int64(time.Hour)

// Scheduler is one host's local scheduler.
type Scheduler struct {
	host     string
	store    kvs.Store
	capacity int64
	clock    vtime.Clock

	// PeerCacheTTL is how long a fetched peer warm set is trusted. Set it
	// before first use; zero means DefaultPeerCacheTTL.
	PeerCacheTTL time.Duration

	// LeaseTTL is this host's liveness lease duration: each heartbeat
	// re-arms the tier-side expiry for this long. Peers never judge the
	// lease themselves — the tier hides it once it expires on the tier's
	// clock. Set before first use; zero means DefaultLeaseTTL.
	LeaseTTL time.Duration

	// LocalityWeight blends data locality into peer ranking: a candidate's
	// latency×load score is scaled by (1 + LocalityWeight×miss), where miss
	// is the fraction of the function's state footprint the candidate does
	// NOT advertise as locally resident. 0 (the default) disables the blend
	// entirely — ranking is exactly the historical latency×load, and
	// stateless functions take that path even when the weight is set. Set
	// before first use.
	LocalityWeight float64

	// residency (advert side) reports this host's locally resident state
	// bytes for a function it advertises as warm; footprint (scoring side)
	// reports a function's profiled state footprint on this host. Both are
	// optional and set before first use via the Set*Provider methods.
	residency func(fn string) int64
	footprint func(fn string) int64

	// fns maps function name → *fnState.
	fns sync.Map
	// inflight counts executing calls on this host.
	inflight atomic.Int64
	// rr round-robins forwarding across unprobed peers.
	rr atomic.Uint64
	// peerStats maps host → *peerStat (latency/load across all functions).
	peerStats sync.Map

	// draining marks the scheduler's drain mode (see Drain): the host has
	// stopped advertising and heartbeating, prefers forwarding over local
	// execution, and refuses to re-enter the warm set.
	draining atomic.Bool

	// lastBeat is the unix-nano instant of the last lease write, 0 if never.
	lastBeat atomic.Int64
	// hbStop ends the heartbeat loop; hbMu orders Start/Stop.
	hbMu      sync.Mutex
	hbStop    chan struct{}
	hbStopped atomic.Bool

	// Stats counts decisions made, per placement, for the evaluation.
	Stats Stats
}

// New creates a scheduler for host with the given concurrent-execution
// capacity (0 means effectively unlimited).
func New(host string, store kvs.Store, capacity int) *Scheduler {
	if capacity <= 0 {
		capacity = 1 << 30
	}
	return &Scheduler{host: host, store: store, capacity: int64(capacity), clock: vtime.Real{}}
}

// SetClock replaces the clock driving peer-cache expiry and the heartbeat
// cadence (the runtime passes its own, so simulated clusters beat in
// simulated time). Liveness itself is judged on the global tier's clock,
// never this one. Call before use.
func (s *Scheduler) SetClock(c vtime.Clock) {
	if c != nil {
		s.clock = c
	}
}

// Host returns this scheduler's host name.
func (s *Scheduler) Host() string { return s.host }

// SetResidencyProvider installs the callback that reports this host's
// locally resident state bytes for an advertised function. Each lease write
// piggybacks the advertised functions' residency on the lease record, so
// peers learn it from the batched lease read they already perform — steady
// state adds zero extra tier operations. Call before StartHeartbeat.
func (s *Scheduler) SetResidencyProvider(f func(fn string) int64) { s.residency = f }

// SetFootprintProvider installs the callback that reports a function's
// state footprint (decayed profile of bytes its executions pull) used on
// the scoring side of the locality blend. Call before the first Schedule.
func (s *Scheduler) SetFootprintProvider(f func(fn string) int64) { s.footprint = f }

func (s *Scheduler) fn(name string) *fnState {
	if e, ok := s.fns.Load(name); ok {
		return e.(*fnState)
	}
	e, _ := s.fns.LoadOrStore(name, &fnState{})
	return e.(*fnState)
}

func (s *Scheduler) peerStat(host string) *peerStat {
	if e, ok := s.peerStats.Load(host); ok {
		return e.(*peerStat)
	}
	e, _ := s.peerStats.LoadOrStore(host, &peerStat{})
	return e.(*peerStat)
}

func (s *Scheduler) peerCacheTTL() time.Duration {
	if s.PeerCacheTTL > 0 {
		return s.PeerCacheTTL
	}
	return DefaultPeerCacheTTL
}

func (s *Scheduler) leaseTTL() time.Duration {
	if s.LeaseTTL > 0 {
		return s.LeaseTTL
	}
	return DefaultLeaseTTL
}

// Instrument registers the scheduler's decision counters and liveness
// signals with reg, labelled by host. Everything is bridged from existing
// atomics at scrape time — nothing is added to the scheduling hot path.
func (s *Scheduler) Instrument(reg *obsv.Registry, host string) {
	place := func(p string) map[string]string {
		return map[string]string{"host": host, "placement": p}
	}
	reg.CounterFunc("faasm_sched_decisions_total", "scheduling decisions by placement", place("local_warm"), s.Stats.LocalWarm.Load)
	reg.CounterFunc("faasm_sched_decisions_total", "scheduling decisions by placement", place("forward"), s.Stats.Forwarded.Load)
	reg.CounterFunc("faasm_sched_decisions_total", "scheduling decisions by placement", place("local_cold"), s.Stats.ColdStart.Load)
	l := map[string]string{"host": host}
	reg.CounterFunc("faasm_sched_locality_hits_total", "blended forwards landed on a peer with resident state", l, s.Stats.LocalityHits.Load)
	reg.CounterFunc("faasm_sched_locality_misses_total", "blended forwards landed on a data-free peer", l, s.Stats.LocalityMisses.Load)
	reg.CounterFunc("faasm_sched_locality_saved_bytes_total", "state bytes locality hits avoided re-pulling", l, s.Stats.LocalitySavedBytes.Load)
	reg.GaugeFunc("faasm_sched_inflight", "calls executing on this host", l, func() int64 { return int64(s.Inflight()) })
	reg.GaugeFunc("faasm_sched_last_heartbeat_seconds", "unix time of the last liveness lease write", l, func() int64 {
		return s.lastBeat.Load() / int64(time.Second)
	})
}

// Schedule decides where a call to fn should run. The warm local path is
// lock-free and touches no global state.
func (s *Scheduler) Schedule(fn string) (Decision, error) {
	e := s.fn(fn)
	warmHere := e.idle.Load() > 0
	draining := s.draining.Load()
	if warmHere && !draining && s.inflight.Load() < s.capacity {
		s.Stats.LocalWarm.Add(1)
		return Decision{Placement: PlaceLocalWarm}, nil
	}

	// Consult the (cached) shared warm set for another host.
	peers, resident, err := s.peers(e, fn)
	if err != nil {
		return Decision{}, fmt.Errorf("sched: warm set for %s: %w", fn, err)
	}
	if len(peers) > 0 {
		// Share with a warm peer: lowest load-adjusted latency first,
		// blended with data locality when the function has state gravity.
		target, lp := s.pickPeer(fn, peers, resident)
		s.Stats.Forwarded.Add(1)
		if lp.scored {
			if lp.saved > 0 {
				s.Stats.LocalityHits.Add(1)
				s.Stats.LocalitySavedBytes.Add(lp.saved)
			} else {
				s.Stats.LocalityMisses.Add(1)
			}
		}
		return Decision{
			Placement:        PlaceForward,
			TargetHost:       target,
			LocalityFrac:     lp.frac,
			BestResidentHost: lp.best,
			SavedBytes:       lp.saved,
		}, nil
	}

	if warmHere {
		// Warm but at capacity with nowhere to share: still run locally
		// (queueing), matching the paper's behaviour under saturation. A
		// draining host takes this path too when it is the only one left
		// warm — executing is always preferred over failing the call.
		s.Stats.LocalWarm.Add(1)
		return Decision{Placement: PlaceLocalWarm}, nil
	}

	if draining {
		// No warm peer to hand the call to: execute it here, cold, but do
		// not advertise — a draining host never re-attracts traffic.
		s.Stats.ColdStart.Add(1)
		return Decision{Placement: PlaceLocalCold}, nil
	}

	// Cold start here and advertise this host as warm for fn. SAdd is the
	// atomic update of the shared scheduler state; it is skipped when the
	// host is already advertised (write-through only on the transition).
	if err := s.advertise(e, fn); err != nil {
		return Decision{}, fmt.Errorf("sched: advertise warm %s: %w", fn, err)
	}
	s.Stats.ColdStart.Add(1)
	return Decision{Placement: PlaceLocalCold}, nil
}

// advertise performs the not-advertised → advertised transition: make sure
// this host's liveness lease exists (peers treat a warm entry without a live
// lease as a dead host), then add it to the function's warm set.
func (s *Scheduler) advertise(e *fnState, fn string) error {
	if s.draining.Load() {
		// A draining host must never (re-)enter the warm set: its lease is
		// expiring and peers are routing around it. Silently skipping keeps
		// NoteWarm callers working while the pool winds down.
		return nil
	}
	if !e.advertised.CompareAndSwap(false, true) {
		return nil
	}
	if err := s.ensureLease(); err != nil {
		e.advertised.Store(false)
		return err
	}
	if _, err := s.store.SAdd(warmSetKey(fn), s.host); err != nil {
		e.advertised.Store(false)
		return err
	}
	return nil
}

// localityPick describes the data-gravity side of one forwarding choice.
type localityPick struct {
	// scored is true when the blended ranking ran: the weight is on and the
	// function has state gravity somewhere (a local footprint or a peer
	// advert).
	scored bool
	// saved is the chosen peer's advertised resident bytes clipped to the
	// footprint; frac is saved/footprint.
	saved int64
	frac  float64
	// best is the peer advertising the most resident bytes — it may differ
	// from the chosen one when latency×load outweighed locality.
	best string
}

// pickPeer chooses a forwarding target for fn among peers, given the
// residency they advertised. With LocalityWeight off — or for a function
// with no state gravity anywhere — it is the historical locality-blind
// ranking (pickPeerByLatency). Otherwise every candidate is scored
//
//	score(h) = base(h) × (1 + LocalityWeight × miss(h))
//	base(h)  = ewma(h) × (1 + inflight(h))
//	miss(h)  = 1 − min(resident(h), footprint) / footprint
//
// and the lowest score wins: a peer holding the function's hot keys beats
// an equally loaded data-free one, while a large enough latency or load gap
// can still overrule locality. The footprint is this host's decayed access
// profile for fn, or — when this host has never run fn, the common case on
// a pure forwarder — the largest residency any peer advertises (the advert
// itself proves the function is stateful). Unprobed peers take the mean
// probed latency as a neutral base rather than ranking first: exploration
// must not drag a stateful function onto a data-free peer just because that
// peer has never been measured.
func (s *Scheduler) pickPeer(fn string, peers []string, resident map[string]int64) (string, localityPick) {
	var fp int64
	if s.LocalityWeight > 0 {
		if s.footprint != nil {
			fp = s.footprint(fn)
		}
		for _, h := range peers {
			if r := resident[h]; r > fp {
				fp = r
			}
		}
	}
	if s.LocalityWeight <= 0 || fp <= 0 {
		return s.pickPeerByLatency(peers), localityPick{}
	}

	var probedSum, probedN int64
	for _, h := range peers {
		if e := s.peerStat(h).ewmaNanos.Load(); e > 0 {
			probedSum += e
			probedN++
		}
	}
	neutral := int64(1)
	if probedN > 0 {
		neutral = probedSum / probedN
	}
	pick := localityPick{scored: true}
	best := peers[0]
	bestScore := -1.0
	var bestResident int64
	for _, h := range peers {
		st := s.peerStat(h)
		e := st.ewmaNanos.Load()
		if e == 0 {
			e = neutral
		}
		base := float64(e) * float64(1+st.inflight.Load())
		r := resident[h]
		if r > fp {
			r = fp
		}
		miss := 1 - float64(r)/float64(fp)
		score := base * (1 + s.LocalityWeight*miss)
		if bestScore < 0 || score < bestScore {
			best, bestScore = h, score
		}
		if r > bestResident {
			bestResident, pick.best = r, h
		}
	}
	if r := resident[best]; r > 0 {
		if r > fp {
			r = fp
		}
		pick.saved = r
		pick.frac = float64(r) / float64(fp)
	}
	return best, pick
}

// pickPeerByLatency is the locality-blind ranking: unprobed peers first
// (round-robin, so the scheduler explores and degrades to plain round-robin
// when it has no data), then the probed peer with the lowest EWMA latency
// scaled by its in-flight forward count.
func (s *Scheduler) pickPeerByLatency(peers []string) string {
	unprobed := 0
	for _, h := range peers {
		if s.peerStat(h).ewmaNanos.Load() == 0 {
			unprobed++
		}
	}
	if unprobed > 0 {
		n := int(s.rr.Add(1)-1) % unprobed
		for _, h := range peers {
			if s.peerStat(h).ewmaNanos.Load() == 0 {
				if n == 0 {
					return h
				}
				n--
			}
		}
	}
	best := peers[0]
	var bestScore int64 = -1
	for _, h := range peers {
		st := s.peerStat(h)
		score := st.ewmaNanos.Load() * (1 + st.inflight.Load())
		if bestScore < 0 || score < bestScore {
			best, bestScore = h, score
		}
	}
	return best
}

// ForwardBegin records a forward in flight to host (load signal for the
// weighted picker). Pair with ForwardEnd around the transport call.
func (s *Scheduler) ForwardBegin(host string) {
	s.peerStat(host).inflight.Add(1)
}

// ForwardEnd records a completed forward to host: the observed round-trip
// feeds the latency EWMA, and a failure multiplies the estimate so traffic
// drains from a flaky peer before its lease expires.
func (s *Scheduler) ForwardEnd(host string, d time.Duration, ok bool) {
	st := s.peerStat(host)
	if st.inflight.Add(-1) < 0 {
		st.inflight.Store(0)
	}
	sample := int64(d)
	if sample <= 0 {
		sample = 1
	}
	for {
		old := st.ewmaNanos.Load()
		var next int64
		switch {
		case !ok:
			// Penalise relative to the larger of the estimate and the
			// observed round-trip, floored so a fast failure (connection
			// refused) cannot score a dead peer as the fastest host.
			base := old
			if sample > base {
				base = sample
			}
			if base < minFailureBase {
				base = minFailureBase
			}
			if base > maxEwmaNanos/failurePenalty {
				next = maxEwmaNanos
			} else {
				next = base * failurePenalty
			}
		case old == 0:
			next = sample
		default:
			next = old + (sample-old)>>ewmaShift
			if next == old && sample != old {
				// Make tiny deltas converge instead of sticking.
				if sample > old {
					next = old + 1
				} else {
					next = old - 1
				}
			}
		}
		if next <= 0 {
			next = 1
		}
		if st.ewmaNanos.CompareAndSwap(old, next) {
			return
		}
	}
}

// PeerLatency reports the smoothed forward latency observed for host
// (0 = never probed). Diagnostics and tests.
func (s *Scheduler) PeerLatency(host string) time.Duration {
	return time.Duration(s.peerStat(host).ewmaNanos.Load())
}

// PeerInflight reports forwards currently in flight to host.
func (s *Scheduler) PeerInflight(host string) int {
	return int(s.peerStat(host).inflight.Load())
}

// peers returns the live warm hosts for fn other than this one, serving
// from the TTL cache when fresh and refreshing from the global tier when
// stale. A refresh reads the function's warm set plus the listed hosts'
// liveness leases (one batched read), filters the dead, and best-effort
// evicts their stale entries from the global set.
// Alongside the peer list it returns the residency those peers advertised
// for fn on their leases (nil when none did), decoded from the same batched
// lease read and cached with the peer set.
func (s *Scheduler) peers(e *fnState, fn string) ([]string, map[string]int64, error) {
	ttl := s.peerCacheTTL()
	now := s.clock.Now()
	e.cacheMu.Lock()
	if e.cached && now.Sub(e.fetched) < ttl {
		peers, resident := e.peers, e.resident
		e.cacheMu.Unlock()
		return peers, resident, nil
	}
	e.cacheMu.Unlock()

	hosts, err := s.store.SMembers(warmSetKey(fn))
	if err != nil {
		return nil, nil, err
	}
	candidates := hosts[:0]
	for _, h := range hosts {
		if h != s.host {
			candidates = append(candidates, h)
		}
	}
	peers, dead, leases, err := s.filterAlive(candidates)
	if err != nil {
		return nil, nil, err
	}
	var resident map[string]int64
	for i, h := range peers {
		if b := residencyFor(leases[i], fn); b > 0 {
			if resident == nil {
				resident = make(map[string]int64, len(peers))
			}
			resident[h] = b
		}
	}
	// A dead host's warm entries are evicted by whoever notices: the global
	// set heals itself instead of waiting for the crashed owner's retreat.
	for _, h := range dead {
		s.store.SRem(warmSetKey(fn), h)
	}
	// Only non-empty peer sets are cached: a host with no warm peers is
	// about to cold-start (or queue under saturation), and must notice a
	// newly warm peer immediately rather than after a TTL.
	e.cacheMu.Lock()
	e.peers = peers
	e.resident = resident
	e.fetched = now
	e.cached = len(peers) > 0
	e.cacheMu.Unlock()
	return peers, resident, nil
}

// filterAlive splits hosts into live and dead by a single batched existence
// check on their lease records: the records are SetEx'd, so the tier hides
// an expired lease from the MGet and liveness is decided entirely on the
// tier's clock — no timestamp is parsed and no local clock is consulted
// anywhere on this path. A missing record counts as dead: every advertiser
// writes its lease before its first SAdd, so only crashed (or fabricated)
// hosts lack one.
// It also returns each live host's lease record (aligned with alive), so
// callers can decode the residency adverts piggybacked on it without a
// second tier read.
func (s *Scheduler) filterAlive(hosts []string) (alive, dead []string, aliveLeases [][]byte, err error) {
	if len(hosts) == 0 {
		return nil, nil, nil, nil
	}
	keys := make([]string, len(hosts))
	for i, h := range hosts {
		keys[i] = aliveKey(h)
	}
	leases, err := kvs.MGet(s.store, keys)
	if err != nil {
		return nil, nil, nil, err
	}
	for i, h := range hosts {
		if leaseLive(leases[i]) {
			alive = append(alive, h)
			aliveLeases = append(aliveLeases, leases[i])
		} else {
			dead = append(dead, h)
		}
	}
	return alive, dead, aliveLeases, nil
}

// leaseLive reports whether a lease record marks a live host: the leaseMark
// payload — alone, or followed by newline-separated residency adverts —
// still returned by the tier (so its tier-side TTL has not run out).
// Anything else — including the previous release's writer-clock expiry
// stamps, whose one-release read-side tolerance has been removed — is dead:
// stale stamp records never expire tier-side, so counting them live would
// keep a crashed old host forwardable forever. (The marker is non-numeric,
// so a stamp can never alias it.)
func leaseLive(rec []byte) bool {
	if len(rec) < len(leaseMark) || string(rec[:len(leaseMark)]) != string(leaseMark) {
		return false
	}
	return len(rec) == len(leaseMark) || rec[len(leaseMark)] == '\n'
}

// maxResidencyAdverts bounds the residency entries piggybacked on one lease
// record, so a host warm for hundreds of functions cannot bloat the batched
// lease read every peer refresh performs.
const maxResidencyAdverts = 64

// leasePayload builds this host's lease record: the liveness marker, plus
// one "\n<fn> <bytes>" line per advertised function with locally resident
// state (per the residency provider). Residency rides the lease precisely
// because peers already MGet lease records on every warm-set refresh —
// advertising adds zero extra tier operations in steady state.
func (s *Scheduler) leasePayload() []byte {
	buf := append([]byte(nil), leaseMark...)
	if s.residency == nil {
		return buf
	}
	n := 0
	s.fns.Range(func(k, v any) bool {
		if n >= maxResidencyAdverts {
			return false
		}
		if !v.(*fnState).advertised.Load() {
			return true
		}
		fn := k.(string)
		if strings.ContainsAny(fn, " \n") {
			// Unencodable in the line format; skip rather than corrupt the
			// record (such a name cannot come from a registered function).
			return true
		}
		b := s.residency(fn)
		if b <= 0 {
			return true
		}
		buf = append(buf, '\n')
		buf = append(buf, fn...)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, b, 10)
		n++
		return true
	})
	return buf
}

// residencyFor extracts fn's advertised resident bytes from a lease record,
// 0 when the record carries no (parseable) advert for fn.
func residencyFor(rec []byte, fn string) int64 {
	for {
		i := bytes.IndexByte(rec, '\n')
		if i < 0 {
			return 0
		}
		rec = rec[i+1:]
		line := rec
		if j := bytes.IndexByte(line, '\n'); j >= 0 {
			line = line[:j]
		}
		if len(line) > len(fn)+1 && string(line[:len(fn)]) == fn && line[len(fn)] == ' ' {
			v, err := strconv.ParseInt(string(line[len(fn)+1:]), 10, 64)
			if err != nil || v < 0 {
				return 0
			}
			return v
		}
	}
}

// Heartbeat re-arms this host's liveness lease for another LeaseTTL on the
// tier's clock (SetEx — the tier expires the record itself; nothing here
// writes or compares a timestamp). It also re-asserts the host's warm-set
// entries for every advertised function (idempotent SAdds), so an entry
// wrongly evicted while the host was unresponsive reappears within one
// beat.
func (s *Scheduler) Heartbeat() error {
	if s.draining.Load() {
		// Draining hosts let the lease run out — re-arming it would keep
		// peers forwarding here for another TTL.
		return nil
	}
	if err := s.store.SetEx(aliveKey(s.host), s.leasePayload(), s.leaseTTL()); err != nil {
		return err
	}
	s.lastBeat.Store(s.clock.Now().UnixNano())
	var firstErr error
	s.fns.Range(func(k, v any) bool {
		if v.(*fnState).advertised.Load() {
			if _, err := s.store.SAdd(warmSetKey(k.(string)), s.host); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return true
	})
	return firstErr
}

// ensureLease writes the lease if it has never been written or is due for
// refresh — called on the advertise transition so the warm set never names
// a host without a live lease, whether or not the heartbeat loop runs.
func (s *Scheduler) ensureLease() error {
	// The local clock here only rate-limits redundant writes (beat cadence);
	// it never judges the lease itself — that is the tier's job.
	now := s.clock.Now().UnixNano()
	if last := s.lastBeat.Load(); last != 0 && now-last < int64(s.leaseTTL()/3) {
		return nil
	}
	// Write only the lease record here: advertise is on a caller's critical
	// path and the fns walk belongs to the background beat. (leasePayload
	// still piggybacks residency for already-advertised functions.)
	if err := s.store.SetEx(aliveKey(s.host), s.leasePayload(), s.leaseTTL()); err != nil {
		return err
	}
	s.lastBeat.Store(s.clock.Now().UnixNano())
	return nil
}

// StartHeartbeat launches the background lease refresher: one beat every
// LeaseTTL/3 while at least one function is advertised. Idempotent.
func (s *Scheduler) StartHeartbeat() {
	s.hbMu.Lock()
	defer s.hbMu.Unlock()
	if s.hbStop != nil || s.hbStopped.Load() {
		return
	}
	stop := make(chan struct{})
	s.hbStop = stop
	go s.heartbeatLoop(stop)
}

// StopHeartbeat ends the heartbeat loop. The lease record is deliberately
// left to expire on its own: a clean shutdown retreats its warm entries
// anyway, and expiry-as-departure keeps one code path for clean and
// crashed exits.
func (s *Scheduler) StopHeartbeat() {
	s.hbMu.Lock()
	defer s.hbMu.Unlock()
	s.hbStopped.Store(true)
	if s.hbStop != nil {
		close(s.hbStop)
		s.hbStop = nil
	}
}

// Drain puts the scheduler into drain mode: every advertised function is
// retreated from the global warm set, the heartbeat stops so the liveness
// lease expires on the tier's clock within one TTL, and no future advertise
// or heartbeat can re-attract traffic. In-flight calls are unaffected;
// Schedule keeps working but prefers warm peers and never advertises. The
// transition is one-way — a drained host is reclaimed, not revived.
//
// The best-effort retreat is belt and braces: even if the SRem writes fail
// (tier unreachable), the expiring lease alone routes every peer around this
// host within one lease TTL plus one peer-cache TTL.
func (s *Scheduler) Drain() error {
	if s.draining.Swap(true) {
		return nil
	}
	s.StopHeartbeat()
	var firstErr error
	s.fns.Range(func(k, v any) bool {
		e := v.(*fnState)
		e.idle.Store(0)
		if e.advertised.Swap(false) {
			if _, err := s.store.SRem(warmSetKey(k.(string)), s.host); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return true
	})
	return firstErr
}

// Draining reports whether Drain was called.
func (s *Scheduler) Draining() bool { return s.draining.Load() }

// HeartbeatAge reports how long ago this host last wrote its liveness lease
// (0 if it never has). A supervisor uses it as a crash signal: a healthy
// advertised host beats every LeaseTTL/3.
func (s *Scheduler) HeartbeatAge() time.Duration {
	last := s.lastBeat.Load()
	if last == 0 {
		return 0
	}
	age := s.clock.Now().UnixNano() - last
	if age < 0 {
		age = 0
	}
	return time.Duration(age)
}

func (s *Scheduler) heartbeatLoop(stop chan struct{}) {
	for {
		s.clock.Sleep(s.leaseTTL() / 3)
		select {
		case <-stop:
			return
		default:
		}
		if s.hbStopped.Load() {
			return
		}
		if s.anyAdvertised() {
			s.Heartbeat()
		}
	}
}

func (s *Scheduler) anyAdvertised() bool {
	found := false
	s.fns.Range(func(_, v any) bool {
		if v.(*fnState).advertised.Load() {
			found = true
			return false
		}
		return true
	})
	return found
}

// InvalidatePeers drops the cached peer warm set for fn, forcing the next
// miss to refresh from the global tier (used when a forward fails).
func (s *Scheduler) InvalidatePeers(fn string) {
	e := s.fn(fn)
	e.cacheMu.Lock()
	e.cached = false
	e.peers = nil
	e.cacheMu.Unlock()
}

// NoteWarm records that this host now holds n more idle warm Faaslets for
// fn (e.g. after a cold start completes or a call finishes). The global
// warm set is only written on the not-advertised → advertised transition;
// steady-state warm churn performs zero global operations.
func (s *Scheduler) NoteWarm(fn string, n int) error {
	e := s.fn(fn)
	e.idle.Add(int64(n))
	return s.advertise(e, fn)
}

// NoteEvicted records that this host lost n idle warm Faaslets for fn (they
// were acquired for execution, or evicted from the pool). Purely local: the
// host stays advertised, because its Faaslets for fn are still alive (busy
// or resetting). Use Retreat when the last Faaslet for fn is truly gone.
func (s *Scheduler) NoteEvicted(fn string, n int) error {
	e := s.fn(fn)
	for {
		cur := e.idle.Load()
		next := cur - int64(n)
		if next < 0 {
			next = 0
		}
		if e.idle.CompareAndSwap(cur, next) {
			return nil
		}
	}
}

// Retreat removes this host from fn's global warm set: its last live
// Faaslet for fn is gone (failed cold start, eviction of the final pooled
// Faaslet, shutdown), so peers must stop forwarding here.
func (s *Scheduler) Retreat(fn string) error {
	e := s.fn(fn)
	e.idle.Store(0)
	if e.advertised.Swap(false) {
		if _, err := s.store.SRem(warmSetKey(fn), s.host); err != nil {
			return err
		}
	}
	return nil
}

// WarmCount reports this host's idle warm Faaslets for fn.
func (s *Scheduler) WarmCount(fn string) int {
	return int(s.fn(fn).idle.Load())
}

// Advertised reports whether this host is in fn's global warm set (per its
// own bookkeeping).
func (s *Scheduler) Advertised(fn string) bool {
	return s.fn(fn).advertised.Load()
}

// WarmHosts lists the cluster's live warm hosts for fn from the shared
// state: the raw set filtered by liveness leases, uncached and without the
// eviction side effect (tests and diagnostics).
func (s *Scheduler) WarmHosts(fn string) ([]string, error) {
	hosts, err := s.store.SMembers(warmSetKey(fn))
	if err != nil {
		return nil, err
	}
	alive, _, _, err := s.filterAlive(hosts)
	return alive, err
}

// Begin marks a call executing on this host (capacity accounting).
func (s *Scheduler) Begin() {
	s.inflight.Add(1)
}

// End marks a call finished.
func (s *Scheduler) End() {
	if s.inflight.Add(-1) < 0 {
		s.inflight.Store(0)
	}
}

// Inflight reports executing calls.
func (s *Scheduler) Inflight() int {
	n := s.inflight.Load()
	if n < 0 {
		n = 0
	}
	return int(n)
}
