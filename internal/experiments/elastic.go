package experiments

import (
	"fmt"
	"sync"
	"time"

	"faasm.dev/faasm/internal/cluster"
	"faasm.dev/faasm/internal/core"
	"faasm.dev/faasm/internal/frt"
	"faasm.dev/faasm/internal/hostapi"
)

// Elasticity measures the elastic scheduling layer this repo grows beyond
// the paper. Section "pool" ramps closed-loop load over a single host and
// compares a static warm pool (misses pay cold starts on the critical path,
// the paper's organic growth) against the elastic controller (grow-ahead
// from observed misses, shrink on idle). Section "failover" kills a warm
// host in a simnet cluster and verifies forwarding drains to survivors
// within one liveness-lease TTL — the warm-set entries are leases, so a
// crashed host evicts from the global set itself, Cloudburst-style.
func Elasticity(opts Options) *Report {
	r := &Report{
		ID:     "elastic-sched",
		Title:  "Elastic scheduling: warm-pool autoscaling and leased peer liveness",
		Header: []string{"section", "config", "metric", "value"},
	}

	ramp := []int{2, 4, 8, 16, 32}
	if opts.Quick {
		ramp = []int{2, 4, 8}
	}
	for _, elastic := range []bool{false, true} {
		name := "static pool"
		if elastic {
			name = "elastic pool"
		}
		misses, prewarmed, reclaims, err := measureRampMisses(ramp, elastic)
		if err != nil {
			r.Note("pool/%s: %v", name, err)
			continue
		}
		r.Add("pool", name, "pool-empty misses (critical-path cold starts)", fmt.Sprintf("%d", misses))
		r.Add("pool", name, "pre-provisioned Faaslets", fmt.Sprintf("%d", prewarmed))
		r.Add("pool", name, "idle reclaims", fmt.Sprintf("%d", reclaims))
	}

	leaseTTL := 60 * time.Millisecond
	drain, survived, forwarded, ctrlBytes, err := measureFailoverDrain(leaseTTL)
	if err != nil {
		r.Note("failover: %v", err)
	} else {
		r.Add("failover", "3 hosts, kill warm target", "forwards before kill", fmt.Sprintf("%d", forwarded))
		r.Add("failover", "3 hosts, kill warm target", "calls failed during drain", fmt.Sprintf("%d", survived))
		r.Add("failover", "3 hosts, kill warm target", "dead host evicted after", fmt.Sprintf("%.2f lease TTLs", float64(drain)/float64(leaseTTL)))
		r.Add("failover", "3 hosts, kill warm target", "network bytes during drain", fmt.Sprintf("%d", ctrlBytes))
	}

	r.Note("pool: identical concurrency ramp %v per config; the elastic controller pre-provisions misses x grow-factor per tick, so later ramp steps find the pool already sized — the ramp's misses collapse toward the first step's", ramp)
	r.Note("failover: a killed host stops heartbeating but retreats from nothing; its SetEx'd sched/alive/<host> lease expires on the tier's clock (no observer ever judges a timestamp, so host clock skew cannot delay or hasten the drain) and every peer's refresh filters it — forwards fall back locally in the meantime, so zero calls fail")
	return r
}

// measureRampMisses drives a concurrency ramp against one instance and
// returns the pool-miss, prewarm and reclaim counters.
func measureRampMisses(ramp []int, elastic bool) (misses, prewarmed, reclaims int64, err error) {
	inst := frt.New(frt.Config{
		Host:            "elastic-host",
		PoolCap:         256,
		ElasticPool:     elastic,
		ElasticInterval: 2 * time.Millisecond,
		PoolIdleTimeout: time.Hour, // isolate grow-ahead from shrink
	})
	defer inst.Shutdown()
	gate := make(chan struct{})
	started := make(chan struct{}, 256)
	inst.RegisterNative("ramp", func(ctx *core.Ctx) (int32, error) {
		if len(ctx.Input()) > 0 {
			started <- struct{}{}
			<-gate
		}
		return 0, nil
	})
	for _, c := range ramp {
		var wg sync.WaitGroup
		var callErr error
		var mu sync.Mutex
		for k := 0; k < c; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, _, e := inst.Call("ramp", []byte("b")); e != nil {
					mu.Lock()
					callErr = e
					mu.Unlock()
				}
			}()
		}
		for k := 0; k < c; k++ {
			<-started
		}
		for k := 0; k < c; k++ {
			gate <- struct{}{}
		}
		wg.Wait()
		if callErr != nil {
			return 0, 0, 0, callErr
		}
		// The gap between ramp steps, identical for both configs; the
		// elastic controller uses it to grow ahead of the next step.
		time.Sleep(20 * time.Millisecond)
	}
	return inst.PoolMisses.Value(), inst.Prewarmed.Value(), inst.IdleReclaims.Value(), nil
}

// measureFailoverDrain warms one cluster host, kills it, and measures how
// long its stale warm-set entry keeps appearing in the live view. Returns
// the drain duration, the count of calls that FAILED during it (want 0),
// the forwards recorded before the kill, and the simulated-network bytes
// the cluster spent while healing (call payloads + lease reads).
func measureFailoverDrain(leaseTTL time.Duration) (drain time.Duration, failed int, forwarded, ctrlBytes int64, err error) {
	c := cluster.New(cluster.Config{
		Mode: cluster.ModeFaasm, Hosts: 3, TimeScale: 1,
		LeaseTTL:     leaseTTL,
		PeerCacheTTL: 5 * time.Millisecond,
	})
	defer c.Shutdown()
	if err := c.Register("echo", func(api hostapi.API) (int32, error) {
		api.WriteOutput(api.Input())
		return 0, nil
	}); err != nil {
		return 0, 0, 0, 0, err
	}
	// Warm host-1 only, then route traffic through host-0 so every call
	// forwards to the one warm peer.
	if _, _, err := c.CallOn(1, "echo", []byte("w")); err != nil {
		return 0, 0, 0, 0, err
	}
	for k := 0; k < 10; k++ {
		if _, _, err := c.CallOn(0, "echo", []byte("x")); err != nil {
			return 0, 0, 0, 0, err
		}
	}
	forwarded = c.Instance(0).Scheduler().Stats.Forwarded.Load()

	c.KillHost(1)
	start := time.Now()
	bytesBefore := c.Net.TotalBytes()
	hostBytesAtKill := c.Net.HostBytes("host-1")
	deadline := start.Add(10 * leaseTTL)
	for {
		// Traffic keeps flowing through the survivors the whole time.
		if _, _, err := c.CallOn(0, "echo", []byte("y")); err != nil {
			failed++
		}
		hosts, err := c.Instance(2).Scheduler().WarmHosts("echo")
		if err != nil {
			return 0, failed, forwarded, 0, err
		}
		dead := false
		for _, h := range hosts {
			if h == "host-1" {
				dead = true
			}
		}
		if !dead {
			// Sanity: the dead host itself moved no bytes since the kill.
			ctrlBytes = c.Net.TotalBytes() - bytesBefore - c.Net.HostBytes("host-1") + hostBytesAtKill
			return time.Since(start), failed, forwarded, ctrlBytes, nil
		}
		if time.Now().After(deadline) {
			return 0, failed, forwarded, 0, fmt.Errorf("dead host still listed after %v", time.Since(start))
		}
		time.Sleep(2 * time.Millisecond)
	}
}
