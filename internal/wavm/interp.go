package wavm

import (
	"errors"
	"fmt"
	"math"
	"math/bits"

	"faasm.dev/faasm/internal/wamem"
)

// HostFunc is a host-interface thunk: the trusted implementation injected
// into the guest's import space during the linking phase (Fig 3). Arguments
// and results use the VM's raw 64-bit value encoding (see EncodeF64 etc.).
// A non-nil error aborts the guest with a TrapHostError.
type HostFunc func(inst *Instance, args []uint64) ([]uint64, error)

// HostModule groups host functions under an import module name.
type HostModule map[string]HostFunc

// DefaultMaxCallDepth bounds guest recursion; exceeding it raises
// TrapStackOverflow rather than exhausting the Go stack.
const DefaultMaxCallDepth = 512

// Instance is an executable Faaslet function: a validated module linked with
// its host interface and bound to a linear memory.
type Instance struct {
	mod     *Module
	mem     *wamem.Memory
	globals []uint64
	table   []int32
	hosts   []HostFunc

	// Steps counts executed instructions, the VM-level analogue of the CPU
	// cycle accounting in Table 3; the cgroup layer charges from it.
	Steps uint64
	// Fuel, when ≥ 0, is decremented per instruction; exhaustion traps. It
	// implements the CPU quota half of resource isolation.
	Fuel int64

	maxDepth  int
	skipStart bool
}

// InstanceOption configures instantiation.
type InstanceOption func(*Instance)

// WithMemory binds an existing memory (e.g. one restored from a
// Proto-Faaslet snapshot) instead of allocating a fresh one. Data segments
// are not re-applied to restored memories.
func WithMemory(m *wamem.Memory) InstanceOption {
	return func(i *Instance) { i.mem = m }
}

// WithFuel enables CPU metering with the given instruction budget.
func WithFuel(fuel int64) InstanceOption {
	return func(i *Instance) { i.Fuel = fuel }
}

// WithMaxCallDepth overrides the guest recursion bound.
func WithMaxCallDepth(d int) InstanceOption {
	return func(i *Instance) { i.maxDepth = d }
}

// WithSkipStart suppresses the module's start function. Used when resuming
// from a Proto-Faaslet snapshot, whose memory already reflects
// initialisation.
func WithSkipStart() InstanceOption {
	return func(i *Instance) { i.skipStart = true }
}

// Instantiate links a validated module against its host imports and
// prepares it for execution. Unvalidated modules are refused: code must
// pass the trusted code-generation phase first.
func Instantiate(mod *Module, imports map[string]HostModule, opts ...InstanceOption) (*Instance, error) {
	if !mod.Validated {
		return nil, errors.New("wavm: refusing to instantiate unvalidated module")
	}
	inst := &Instance{mod: mod, Fuel: -1, maxDepth: DefaultMaxCallDepth}
	for _, o := range opts {
		o(inst)
	}
	if inst.mem == nil && mod.MemMin > 0 {
		mem, err := wamem.New(mod.MemMin, mod.MemMax)
		if err != nil {
			return nil, err
		}
		inst.mem = mem
		for _, d := range mod.Data {
			if err := mem.WriteBytes(d.Offset, d.Bytes); err != nil {
				return nil, fmt.Errorf("wavm: data segment at %d: %w", d.Offset, err)
			}
		}
	}
	inst.globals = make([]uint64, len(mod.Globals))
	for i, g := range mod.Globals {
		inst.globals[i] = rawGlobal(g)
	}
	inst.table = append([]int32(nil), mod.Table...)
	inst.hosts = make([]HostFunc, len(mod.Imports))
	for i, imp := range mod.Imports {
		hm, ok := imports[imp.Module]
		if !ok {
			return nil, fmt.Errorf("wavm: unresolved import module %q", imp.Module)
		}
		fn, ok := hm[imp.Name]
		if !ok {
			return nil, fmt.Errorf("wavm: unresolved import %s.%s", imp.Module, imp.Name)
		}
		inst.hosts[i] = fn
	}
	if mod.Start >= 0 && !inst.skipStart {
		if _, err := inst.CallIndex(mod.Start); err != nil {
			return nil, fmt.Errorf("wavm: start function: %w", err)
		}
	}
	return inst, nil
}

func rawGlobal(g Global) uint64 {
	switch g.Type {
	case I32:
		return uint64(uint32(g.Init))
	case F32:
		return uint64(uint32(g.Init))
	default:
		return uint64(g.Init)
	}
}

// Memory returns the instance's linear memory (nil if the module has none).
func (i *Instance) Memory() *wamem.Memory { return i.mem }

// Module returns the underlying module.
func (i *Instance) Module() *Module { return i.mod }

// GlobalValue reads global g's raw value (for snapshots and tests).
func (i *Instance) GlobalValue(g int) (uint64, error) {
	if g < 0 || g >= len(i.globals) {
		return 0, fmt.Errorf("wavm: global %d out of range", g)
	}
	return i.globals[g], nil
}

// SetGlobalValue overwrites global g's raw value (snapshot restore path).
func (i *Instance) SetGlobalValue(g int, v uint64) error {
	if g < 0 || g >= len(i.globals) {
		return fmt.Errorf("wavm: global %d out of range", g)
	}
	i.globals[g] = v
	return nil
}

// Globals returns a copy of all global raw values.
func (i *Instance) Globals() []uint64 { return append([]uint64(nil), i.globals...) }

// Call invokes the exported function name with raw-encoded arguments.
func (i *Instance) Call(name string, args ...uint64) ([]uint64, error) {
	idx, ok := i.mod.ExportedFunc(name)
	if !ok {
		return nil, fmt.Errorf("wavm: no exported function %q", name)
	}
	return i.CallIndex(idx, args...)
}

// CallIndex invokes a function by absolute index.
func (i *Instance) CallIndex(idx int, args ...uint64) ([]uint64, error) {
	ft, err := i.mod.FuncTypeAt(idx)
	if err != nil {
		return nil, err
	}
	if len(args) != len(ft.Params) {
		return nil, fmt.Errorf("wavm: function %d wants %d args, got %d", idx, len(ft.Params), len(args))
	}
	return i.invoke(idx, args, 0)
}

func (i *Instance) invoke(fidx int, args []uint64, depth int) ([]uint64, error) {
	if depth > i.maxDepth {
		return nil, trap(TrapStackOverflow, fidx)
	}
	if fidx < len(i.mod.Imports) {
		res, err := i.hosts[fidx](i, args)
		if err != nil {
			var t *Trap
			if errors.As(err, &t) {
				return nil, err
			}
			return nil, &Trap{Kind: TrapHostError, Func: fidx, Wrapped: err}
		}
		return res, nil
	}
	fn := &i.mod.Funcs[fidx-len(i.mod.Imports)]
	ft := i.mod.Types[fn.Type]
	locals := make([]uint64, len(ft.Params)+len(fn.Locals))
	copy(locals, args)
	return i.exec(fidx, fn, ft, locals, depth)
}

// exec runs one function body. The operand stack is pre-sized from the
// validator's high-water mark so it never reallocates.
func (i *Instance) exec(fidx int, fn *Function, ft FuncType, locals []uint64, depth int) ([]uint64, error) {
	stack := make([]uint64, 0, fn.MaxStack)
	code := fn.Code
	mem := i.mem
	pc := 0

	push := func(v uint64) { stack = append(stack, v) }
	pop := func() uint64 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v
	}

	for pc < len(code) {
		in := &code[pc]
		i.Steps++
		if i.Fuel >= 0 {
			if i.Fuel == 0 {
				return nil, trap(TrapFuelExhausted, fidx)
			}
			i.Fuel--
		}
		switch in.Op {
		case OpNop, OpBlock, OpLoop, OpEnd:
			// Structure resolved at validation; nothing to do at runtime.

		case OpUnreachable:
			return nil, trap(TrapUnreachable, fidx)

		case OpIf:
			if pop() == 0 {
				pc = int(in.A)
				continue
			}
		case OpElse:
			pc = int(in.A)
			continue

		case OpBr:
			stack = branchAdjust(stack, int(in.B), int(in.C))
			pc = int(in.A)
			continue
		case OpBrIf:
			if pop() != 0 {
				stack = branchAdjust(stack, int(in.B), int(in.C))
				pc = int(in.A)
				continue
			}
		case OpBrTable:
			targets := fn.BrTables[in.A]
			idx := int(uint32(pop()))
			if idx >= len(targets)-1 {
				idx = len(targets) - 1 // final entry is the default
			}
			t := targets[idx]
			stack = branchAdjust(stack, int(t.Arity), int(t.Height))
			pc = int(t.PC)
			continue

		case OpReturn:
			if len(ft.Results) == 1 {
				return []uint64{pop()}, nil
			}
			return nil, nil

		case OpCall:
			callee := int(in.A)
			cft, err := i.mod.FuncTypeAt(callee)
			if err != nil {
				return nil, err
			}
			n := len(cft.Params)
			args := make([]uint64, n)
			copy(args, stack[len(stack)-n:])
			stack = stack[:len(stack)-n]
			res, err := i.invoke(callee, args, depth+1)
			if err != nil {
				return nil, err
			}
			stack = append(stack, res...)

		case OpCallIndirect:
			want := i.mod.Types[in.A]
			elem := int(uint32(pop()))
			if elem >= len(i.table) {
				return nil, trap(TrapUndefinedElement, fidx)
			}
			callee := int(i.table[elem])
			if callee < 0 {
				return nil, trap(TrapUndefinedElement, fidx)
			}
			cft, err := i.mod.FuncTypeAt(callee)
			if err != nil {
				return nil, err
			}
			if !cft.Equal(want) {
				return nil, trap(TrapIndirectTypeMismatch, fidx)
			}
			n := len(cft.Params)
			args := make([]uint64, n)
			copy(args, stack[len(stack)-n:])
			stack = stack[:len(stack)-n]
			res, err := i.invoke(callee, args, depth+1)
			if err != nil {
				return nil, err
			}
			stack = append(stack, res...)

		case OpDrop:
			pop()
		case OpSelect:
			c := pop()
			b := pop()
			a := pop()
			if c != 0 {
				push(a)
			} else {
				push(b)
			}

		case OpLocalGet:
			push(locals[in.A])
		case OpLocalSet:
			locals[in.A] = pop()
		case OpLocalTee:
			locals[in.A] = stack[len(stack)-1]
		case OpGlobalGet:
			push(i.globals[in.A])
		case OpGlobalSet:
			i.globals[in.A] = pop()

		case OpI32Const, OpF32Const:
			push(uint64(uint32(in.C)))
		case OpI64Const, OpF64Const:
			push(uint64(in.C))

		case OpMemorySize:
			push(uint64(uint32(mem.Pages())))
		case OpMemoryGrow:
			delta := int(int32(uint32(pop())))
			prev, err := mem.Grow(delta)
			if err != nil {
				push(uint64(uint32(0xffffffff))) // -1 on failure
			} else {
				push(uint64(uint32(prev)))
			}
		case OpMemoryCopy:
			n := int(uint32(pop()))
			src := uint32(pop())
			dst := uint32(pop())
			b, err := mem.ReadBytes(src, n)
			if err != nil {
				return nil, trap(TrapOutOfBounds, fidx)
			}
			if err := mem.WriteBytes(dst, b); err != nil {
				return nil, trap(TrapOutOfBounds, fidx)
			}
		case OpMemoryFill:
			n := int(uint32(pop()))
			val := byte(uint32(pop()))
			dst := uint32(pop())
			if val == 0 {
				if err := mem.Zero(dst, n); err != nil {
					return nil, trap(TrapOutOfBounds, fidx)
				}
			} else {
				b := make([]byte, n)
				for j := range b {
					b[j] = val
				}
				if err := mem.WriteBytes(dst, b); err != nil {
					return nil, trap(TrapOutOfBounds, fidx)
				}
			}

		default:
			if in.Op >= OpI32Load && in.Op <= OpI64Store32 {
				if err := i.memAccess(in, &stack, fidx); err != nil {
					return nil, err
				}
			} else if err := i.numeric(in, &stack, fidx); err != nil {
				return nil, err
			}
		}
		pc++
	}
	if len(ft.Results) == 1 {
		return []uint64{stack[len(stack)-1]}, nil
	}
	return nil, nil
}

// branchAdjust implements the wasm branch stack discipline: keep the top
// arity values, cut the stack back to the label's entry height.
func branchAdjust(stack []uint64, arity, height int) []uint64 {
	if arity > 0 {
		copy(stack[height:], stack[len(stack)-arity:])
	}
	return stack[:height+arity]
}

func (i *Instance) effAddr(in *Instr, dyn uint64, size int) (uint32, error) {
	ea := dyn + uint64(uint32(in.A))
	if ea+uint64(size) > uint64(i.mem.Size()) {
		return 0, wamem.ErrOutOfBounds
	}
	return uint32(ea), nil
}

func (i *Instance) memAccess(in *Instr, stackp *[]uint64, fidx int) error {
	stack := *stackp
	oob := func() error { return trap(TrapOutOfBounds, fidx) }
	switch in.Op {
	case OpI32Load, OpF32Load:
		addr, err := i.effAddr(in, uint64(uint32(stack[len(stack)-1])), 4)
		if err != nil {
			return oob()
		}
		v, err := i.mem.ReadU32(addr)
		if err != nil {
			return oob()
		}
		stack[len(stack)-1] = uint64(v)
	case OpI64Load, OpF64Load:
		addr, err := i.effAddr(in, uint64(uint32(stack[len(stack)-1])), 8)
		if err != nil {
			return oob()
		}
		v, err := i.mem.ReadU64(addr)
		if err != nil {
			return oob()
		}
		stack[len(stack)-1] = v
	case OpI32Load8U, OpI32Load8S:
		addr, err := i.effAddr(in, uint64(uint32(stack[len(stack)-1])), 1)
		if err != nil {
			return oob()
		}
		v, err := i.mem.ReadU8(addr)
		if err != nil {
			return oob()
		}
		if in.Op == OpI32Load8S {
			stack[len(stack)-1] = uint64(uint32(int32(int8(v))))
		} else {
			stack[len(stack)-1] = uint64(v)
		}
	case OpI32Load16U, OpI32Load16S:
		addr, err := i.effAddr(in, uint64(uint32(stack[len(stack)-1])), 2)
		if err != nil {
			return oob()
		}
		v, err := i.mem.ReadU16(addr)
		if err != nil {
			return oob()
		}
		if in.Op == OpI32Load16S {
			stack[len(stack)-1] = uint64(uint32(int32(int16(v))))
		} else {
			stack[len(stack)-1] = uint64(v)
		}
	case OpI64Load32U, OpI64Load32S:
		addr, err := i.effAddr(in, uint64(uint32(stack[len(stack)-1])), 4)
		if err != nil {
			return oob()
		}
		v, err := i.mem.ReadU32(addr)
		if err != nil {
			return oob()
		}
		if in.Op == OpI64Load32S {
			stack[len(stack)-1] = uint64(int64(int32(v)))
		} else {
			stack[len(stack)-1] = uint64(v)
		}

	case OpI32Store, OpF32Store:
		val := uint32(stack[len(stack)-1])
		addr, err := i.effAddr(in, uint64(uint32(stack[len(stack)-2])), 4)
		*stackp = stack[:len(stack)-2]
		if err != nil {
			return oob()
		}
		if err := i.mem.WriteU32(addr, val); err != nil {
			return oob()
		}
		return nil
	case OpI64Store, OpF64Store:
		val := stack[len(stack)-1]
		addr, err := i.effAddr(in, uint64(uint32(stack[len(stack)-2])), 8)
		*stackp = stack[:len(stack)-2]
		if err != nil {
			return oob()
		}
		if err := i.mem.WriteU64(addr, val); err != nil {
			return oob()
		}
		return nil
	case OpI32Store8:
		val := byte(stack[len(stack)-1])
		addr, err := i.effAddr(in, uint64(uint32(stack[len(stack)-2])), 1)
		*stackp = stack[:len(stack)-2]
		if err != nil {
			return oob()
		}
		if err := i.mem.WriteU8(addr, val); err != nil {
			return oob()
		}
		return nil
	case OpI32Store16:
		val := uint16(stack[len(stack)-1])
		addr, err := i.effAddr(in, uint64(uint32(stack[len(stack)-2])), 2)
		*stackp = stack[:len(stack)-2]
		if err != nil {
			return oob()
		}
		if err := i.mem.WriteU16(addr, val); err != nil {
			return oob()
		}
		return nil
	case OpI64Store32:
		val := uint32(stack[len(stack)-1])
		addr, err := i.effAddr(in, uint64(uint32(stack[len(stack)-2])), 4)
		*stackp = stack[:len(stack)-2]
		if err != nil {
			return oob()
		}
		if err := i.mem.WriteU32(addr, val); err != nil {
			return oob()
		}
		return nil
	}
	return nil
}

// Raw value encoding helpers, shared with host-interface thunks.

// EncodeI32 encodes an int32 as a raw VM value.
func EncodeI32(v int32) uint64 { return uint64(uint32(v)) }

// DecodeI32 decodes a raw VM value as int32.
func DecodeI32(v uint64) int32 { return int32(uint32(v)) }

// EncodeF64 encodes a float64 as a raw VM value.
func EncodeF64(v float64) uint64 { return math.Float64bits(v) }

// DecodeF64 decodes a raw VM value as float64.
func DecodeF64(v uint64) float64 { return math.Float64frombits(v) }

// EncodeF32 encodes a float32 as a raw VM value.
func EncodeF32(v float32) uint64 { return uint64(math.Float32bits(v)) }

// DecodeF32 decodes a raw VM value as float32.
func DecodeF32(v uint64) float32 { return math.Float32frombits(uint32(v)) }

func (i *Instance) numeric(in *Instr, stackp *[]uint64, fidx int) error {
	stack := *stackp
	top := len(stack) - 1
	pushBool := func(b bool) {
		if b {
			stack[top-1] = 1
		} else {
			stack[top-1] = 0
		}
		*stackp = stack[:top]
	}
	pushBool1 := func(b bool) {
		if b {
			stack[top] = 1
		} else {
			stack[top] = 0
		}
	}
	bin := func(v uint64) {
		stack[top-1] = v
		*stackp = stack[:top]
	}

	switch in.Op {
	// --- i32 ---
	case OpI32Eqz:
		pushBool1(uint32(stack[top]) == 0)
	case OpI32Eq:
		pushBool(uint32(stack[top-1]) == uint32(stack[top]))
	case OpI32Ne:
		pushBool(uint32(stack[top-1]) != uint32(stack[top]))
	case OpI32LtS:
		pushBool(int32(stack[top-1]) < int32(stack[top]))
	case OpI32LtU:
		pushBool(uint32(stack[top-1]) < uint32(stack[top]))
	case OpI32GtS:
		pushBool(int32(stack[top-1]) > int32(stack[top]))
	case OpI32GtU:
		pushBool(uint32(stack[top-1]) > uint32(stack[top]))
	case OpI32LeS:
		pushBool(int32(stack[top-1]) <= int32(stack[top]))
	case OpI32LeU:
		pushBool(uint32(stack[top-1]) <= uint32(stack[top]))
	case OpI32GeS:
		pushBool(int32(stack[top-1]) >= int32(stack[top]))
	case OpI32GeU:
		pushBool(uint32(stack[top-1]) >= uint32(stack[top]))
	case OpI32Clz:
		stack[top] = uint64(uint32(bits.LeadingZeros32(uint32(stack[top]))))
	case OpI32Ctz:
		stack[top] = uint64(uint32(bits.TrailingZeros32(uint32(stack[top]))))
	case OpI32Popcnt:
		stack[top] = uint64(uint32(bits.OnesCount32(uint32(stack[top]))))
	case OpI32Add:
		bin(uint64(uint32(stack[top-1]) + uint32(stack[top])))
	case OpI32Sub:
		bin(uint64(uint32(stack[top-1]) - uint32(stack[top])))
	case OpI32Mul:
		bin(uint64(uint32(stack[top-1]) * uint32(stack[top])))
	case OpI32DivS:
		d := int32(stack[top])
		n := int32(stack[top-1])
		if d == 0 {
			return trap(TrapDivByZero, fidx)
		}
		if n == math.MinInt32 && d == -1 {
			return trap(TrapIntOverflow, fidx)
		}
		bin(uint64(uint32(n / d)))
	case OpI32DivU:
		d := uint32(stack[top])
		if d == 0 {
			return trap(TrapDivByZero, fidx)
		}
		bin(uint64(uint32(stack[top-1]) / d))
	case OpI32RemS:
		d := int32(stack[top])
		n := int32(stack[top-1])
		if d == 0 {
			return trap(TrapDivByZero, fidx)
		}
		if n == math.MinInt32 && d == -1 {
			bin(0)
		} else {
			bin(uint64(uint32(n % d)))
		}
	case OpI32RemU:
		d := uint32(stack[top])
		if d == 0 {
			return trap(TrapDivByZero, fidx)
		}
		bin(uint64(uint32(stack[top-1]) % d))
	case OpI32And:
		bin(uint64(uint32(stack[top-1]) & uint32(stack[top])))
	case OpI32Or:
		bin(uint64(uint32(stack[top-1]) | uint32(stack[top])))
	case OpI32Xor:
		bin(uint64(uint32(stack[top-1]) ^ uint32(stack[top])))
	case OpI32Shl:
		bin(uint64(uint32(stack[top-1]) << (uint32(stack[top]) & 31)))
	case OpI32ShrS:
		bin(uint64(uint32(int32(stack[top-1]) >> (uint32(stack[top]) & 31))))
	case OpI32ShrU:
		bin(uint64(uint32(stack[top-1]) >> (uint32(stack[top]) & 31)))
	case OpI32Rotl:
		bin(uint64(bits.RotateLeft32(uint32(stack[top-1]), int(uint32(stack[top])&31))))
	case OpI32Rotr:
		bin(uint64(bits.RotateLeft32(uint32(stack[top-1]), -int(uint32(stack[top])&31))))

	// --- i64 ---
	case OpI64Eqz:
		pushBool1(stack[top] == 0)
	case OpI64Eq:
		pushBool(stack[top-1] == stack[top])
	case OpI64Ne:
		pushBool(stack[top-1] != stack[top])
	case OpI64LtS:
		pushBool(int64(stack[top-1]) < int64(stack[top]))
	case OpI64LtU:
		pushBool(stack[top-1] < stack[top])
	case OpI64GtS:
		pushBool(int64(stack[top-1]) > int64(stack[top]))
	case OpI64GtU:
		pushBool(stack[top-1] > stack[top])
	case OpI64LeS:
		pushBool(int64(stack[top-1]) <= int64(stack[top]))
	case OpI64LeU:
		pushBool(stack[top-1] <= stack[top])
	case OpI64GeS:
		pushBool(int64(stack[top-1]) >= int64(stack[top]))
	case OpI64GeU:
		pushBool(stack[top-1] >= stack[top])
	case OpI64Clz:
		stack[top] = uint64(bits.LeadingZeros64(stack[top]))
	case OpI64Ctz:
		stack[top] = uint64(bits.TrailingZeros64(stack[top]))
	case OpI64Popcnt:
		stack[top] = uint64(bits.OnesCount64(stack[top]))
	case OpI64Add:
		bin(stack[top-1] + stack[top])
	case OpI64Sub:
		bin(stack[top-1] - stack[top])
	case OpI64Mul:
		bin(stack[top-1] * stack[top])
	case OpI64DivS:
		d := int64(stack[top])
		n := int64(stack[top-1])
		if d == 0 {
			return trap(TrapDivByZero, fidx)
		}
		if n == math.MinInt64 && d == -1 {
			return trap(TrapIntOverflow, fidx)
		}
		bin(uint64(n / d))
	case OpI64DivU:
		if stack[top] == 0 {
			return trap(TrapDivByZero, fidx)
		}
		bin(stack[top-1] / stack[top])
	case OpI64RemS:
		d := int64(stack[top])
		n := int64(stack[top-1])
		if d == 0 {
			return trap(TrapDivByZero, fidx)
		}
		if n == math.MinInt64 && d == -1 {
			bin(0)
		} else {
			bin(uint64(n % d))
		}
	case OpI64RemU:
		if stack[top] == 0 {
			return trap(TrapDivByZero, fidx)
		}
		bin(stack[top-1] % stack[top])
	case OpI64And:
		bin(stack[top-1] & stack[top])
	case OpI64Or:
		bin(stack[top-1] | stack[top])
	case OpI64Xor:
		bin(stack[top-1] ^ stack[top])
	case OpI64Shl:
		bin(stack[top-1] << (stack[top] & 63))
	case OpI64ShrS:
		bin(uint64(int64(stack[top-1]) >> (stack[top] & 63)))
	case OpI64ShrU:
		bin(stack[top-1] >> (stack[top] & 63))
	case OpI64Rotl:
		bin(bits.RotateLeft64(stack[top-1], int(stack[top]&63)))
	case OpI64Rotr:
		bin(bits.RotateLeft64(stack[top-1], -int(stack[top]&63)))

	// --- f64 ---
	case OpF64Eq:
		pushBool(DecodeF64(stack[top-1]) == DecodeF64(stack[top]))
	case OpF64Ne:
		pushBool(DecodeF64(stack[top-1]) != DecodeF64(stack[top]))
	case OpF64Lt:
		pushBool(DecodeF64(stack[top-1]) < DecodeF64(stack[top]))
	case OpF64Gt:
		pushBool(DecodeF64(stack[top-1]) > DecodeF64(stack[top]))
	case OpF64Le:
		pushBool(DecodeF64(stack[top-1]) <= DecodeF64(stack[top]))
	case OpF64Ge:
		pushBool(DecodeF64(stack[top-1]) >= DecodeF64(stack[top]))
	case OpF64Abs:
		stack[top] = EncodeF64(math.Abs(DecodeF64(stack[top])))
	case OpF64Neg:
		stack[top] = stack[top] ^ (1 << 63)
	case OpF64Ceil:
		stack[top] = EncodeF64(math.Ceil(DecodeF64(stack[top])))
	case OpF64Floor:
		stack[top] = EncodeF64(math.Floor(DecodeF64(stack[top])))
	case OpF64Trunc:
		stack[top] = EncodeF64(math.Trunc(DecodeF64(stack[top])))
	case OpF64Nearest:
		stack[top] = EncodeF64(math.RoundToEven(DecodeF64(stack[top])))
	case OpF64Sqrt:
		stack[top] = EncodeF64(math.Sqrt(DecodeF64(stack[top])))
	case OpF64Add:
		bin(EncodeF64(DecodeF64(stack[top-1]) + DecodeF64(stack[top])))
	case OpF64Sub:
		bin(EncodeF64(DecodeF64(stack[top-1]) - DecodeF64(stack[top])))
	case OpF64Mul:
		bin(EncodeF64(DecodeF64(stack[top-1]) * DecodeF64(stack[top])))
	case OpF64Div:
		bin(EncodeF64(DecodeF64(stack[top-1]) / DecodeF64(stack[top])))
	case OpF64Min:
		bin(EncodeF64(wasmMin(DecodeF64(stack[top-1]), DecodeF64(stack[top]))))
	case OpF64Max:
		bin(EncodeF64(wasmMax(DecodeF64(stack[top-1]), DecodeF64(stack[top]))))
	case OpF64Copysign:
		bin(EncodeF64(math.Copysign(DecodeF64(stack[top-1]), DecodeF64(stack[top]))))

	// --- f32 ---
	case OpF32Eq:
		pushBool(DecodeF32(stack[top-1]) == DecodeF32(stack[top]))
	case OpF32Ne:
		pushBool(DecodeF32(stack[top-1]) != DecodeF32(stack[top]))
	case OpF32Lt:
		pushBool(DecodeF32(stack[top-1]) < DecodeF32(stack[top]))
	case OpF32Gt:
		pushBool(DecodeF32(stack[top-1]) > DecodeF32(stack[top]))
	case OpF32Le:
		pushBool(DecodeF32(stack[top-1]) <= DecodeF32(stack[top]))
	case OpF32Ge:
		pushBool(DecodeF32(stack[top-1]) >= DecodeF32(stack[top]))
	case OpF32Abs:
		stack[top] = EncodeF32(float32(math.Abs(float64(DecodeF32(stack[top])))))
	case OpF32Neg:
		stack[top] = uint64(uint32(stack[top]) ^ (1 << 31))
	case OpF32Sqrt:
		stack[top] = EncodeF32(float32(math.Sqrt(float64(DecodeF32(stack[top])))))
	case OpF32Add:
		bin(EncodeF32(DecodeF32(stack[top-1]) + DecodeF32(stack[top])))
	case OpF32Sub:
		bin(EncodeF32(DecodeF32(stack[top-1]) - DecodeF32(stack[top])))
	case OpF32Mul:
		bin(EncodeF32(DecodeF32(stack[top-1]) * DecodeF32(stack[top])))
	case OpF32Div:
		bin(EncodeF32(DecodeF32(stack[top-1]) / DecodeF32(stack[top])))
	case OpF32Min:
		bin(EncodeF32(float32(wasmMin(float64(DecodeF32(stack[top-1])), float64(DecodeF32(stack[top]))))))
	case OpF32Max:
		bin(EncodeF32(float32(wasmMax(float64(DecodeF32(stack[top-1])), float64(DecodeF32(stack[top]))))))

	// --- conversions ---
	case OpI32WrapI64:
		stack[top] = uint64(uint32(stack[top]))
	case OpI64ExtendI32S:
		stack[top] = uint64(int64(int32(stack[top])))
	case OpI64ExtendI32U:
		stack[top] = uint64(uint32(stack[top]))
	case OpI32TruncF64S:
		f := DecodeF64(stack[top])
		if math.IsNaN(f) || f >= 2147483648 || f < -2147483649 {
			return trap(TrapInvalidConversion, fidx)
		}
		stack[top] = uint64(uint32(int32(f)))
	case OpI32TruncF64U:
		f := DecodeF64(stack[top])
		if math.IsNaN(f) || f >= 4294967296 || f <= -1 {
			return trap(TrapInvalidConversion, fidx)
		}
		stack[top] = uint64(uint32(f))
	case OpI64TruncF64S:
		f := DecodeF64(stack[top])
		if math.IsNaN(f) || f >= 9.223372036854776e18 || f < -9.223372036854776e18 {
			return trap(TrapInvalidConversion, fidx)
		}
		stack[top] = uint64(int64(f))
	case OpI64TruncF64U:
		f := DecodeF64(stack[top])
		if math.IsNaN(f) || f >= 1.8446744073709552e19 || f <= -1 {
			return trap(TrapInvalidConversion, fidx)
		}
		stack[top] = uint64(f)
	case OpI32TruncF32S:
		f := float64(DecodeF32(stack[top]))
		if math.IsNaN(f) || f >= 2147483648 || f < -2147483649 {
			return trap(TrapInvalidConversion, fidx)
		}
		stack[top] = uint64(uint32(int32(f)))
	case OpI32TruncF32U:
		f := float64(DecodeF32(stack[top]))
		if math.IsNaN(f) || f >= 4294967296 || f <= -1 {
			return trap(TrapInvalidConversion, fidx)
		}
		stack[top] = uint64(uint32(f))
	case OpF64ConvertI32S:
		stack[top] = EncodeF64(float64(int32(stack[top])))
	case OpF64ConvertI32U:
		stack[top] = EncodeF64(float64(uint32(stack[top])))
	case OpF64ConvertI64S:
		stack[top] = EncodeF64(float64(int64(stack[top])))
	case OpF64ConvertI64U:
		stack[top] = EncodeF64(float64(stack[top]))
	case OpF32ConvertI32S:
		stack[top] = EncodeF32(float32(int32(stack[top])))
	case OpF32ConvertI64S:
		stack[top] = EncodeF32(float32(int64(stack[top])))
	case OpF64PromoteF32:
		stack[top] = EncodeF64(float64(DecodeF32(stack[top])))
	case OpF32DemoteF64:
		stack[top] = EncodeF32(float32(DecodeF64(stack[top])))
	case OpI32ReinterpretF32, OpF32ReinterpretI32:
		stack[top] = uint64(uint32(stack[top]))
	case OpI64ReinterpretF64, OpF64ReinterpretI64:
		// Raw encoding is already the reinterpretation.

	default:
		return fmt.Errorf("wavm: unimplemented opcode %s", in.Op)
	}
	return nil
}

// wasmMin implements the wasm min semantics: NaN-propagating, -0 < +0.
func wasmMin(a, b float64) float64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.NaN()
	}
	if a == b {
		if math.Signbit(a) {
			return a
		}
		return b
	}
	if a < b {
		return a
	}
	return b
}

// wasmMax implements the wasm max semantics: NaN-propagating, +0 > -0.
func wasmMax(a, b float64) float64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.NaN()
	}
	if a == b {
		if !math.Signbit(a) {
			return a
		}
		return b
	}
	if a > b {
		return a
	}
	return b
}
