// Package core implements the Faaslet (§3): the paper's lightweight
// isolation abstraction. A Faaslet binds one function — a wavm module
// (software-fault-isolated secure IR) or a native guest constrained to the
// same host interface — to:
//
//   - a linear memory with private and shared regions (internal/wamem);
//   - the minimal host interface of Table 2 (chained calls, two-tier state,
//     a POSIX subset for memory, files, network, timing and randomness);
//   - resource isolation: a CPU cgroup charged with executed work and a
//     virtual network interface with namespace policy and traffic shaping;
//   - a lifecycle with Proto-Faaslet snapshots (§5.2): ahead-of-time
//     initialisation, sub-millisecond copy-on-write restores, and a reset
//     after every call that provably discards all guest-visible residue.
package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"faasm.dev/faasm/internal/cgroup"
	"faasm.dev/faasm/internal/netns"
	"faasm.dev/faasm/internal/state"
	"faasm.dev/faasm/internal/vfs"
	"faasm.dev/faasm/internal/vtime"
	"faasm.dev/faasm/internal/wamem"
	"faasm.dev/faasm/internal/wavm"
)

// Chainer is the runtime surface Faaslets use for function chaining
// (chain_call / await_call / get_call_output). The FAASM runtime implements
// it; tests may supply fakes.
type Chainer interface {
	Chain(function string, input []byte) (uint64, error)
	Await(id uint64) (int32, error)
	Output(id uint64) ([]byte, error)
}

// TraceSink receives timing spans recorded inside a Faaslet's host interface
// (state pulls/pushes with byte counts, global-tier reads). The runtime
// attaches one per sampled call via SetTraceSink; obsv.Trace implements it.
// core deliberately depends only on this interface, not on the obsv package.
type TraceSink interface {
	RecordSpan(host, name, key string, start time.Time, dur time.Duration, bytes int64, fail bool)
}

// StateAccess observes guest state reads (key + bytes addressed) so the
// runtime can maintain per-function access profiles for locality-aware
// scheduling. core depends only on this interface, mirroring TraceSink.
type StateAccess interface {
	NoteStateAccess(fn, key string, n int64)
}

// NativeGuest is a function "compiled" to run inside a Faaslet without the
// VM: it may only touch the outside world through the Ctx handle, which is
// the same host interface the VM thunks expose. The returned int32 is the
// function's return code.
type NativeGuest func(ctx *Ctx) (int32, error)

// FuncDef describes a deployable function.
type FuncDef struct {
	Name string
	// Module is the validated wavm module (nil for native guests).
	Module *wavm.Module
	// Native is the native guest body (nil for wavm guests).
	Native NativeGuest
	// MemLimitPages is the per-function memory limit (§3.2); 0 means the
	// default of 1024 pages (64 MiB).
	MemLimitPages int
	// InitialPages sizes fresh memories for native guests (wavm guests use
	// the module's declaration).
	InitialPages int
	// Fuel bounds guest instructions per call, 0 = unmetered.
	Fuel int64
}

// DefaultMemLimitPages bounds function memory when FuncDef doesn't.
const DefaultMemLimitPages = 1024

// Env carries the per-host substrates a Faaslet plugs into.
type Env struct {
	State  *state.LocalTier
	Files  vfs.GlobalStore
	CGroup *cgroup.Controller
	Clock  vtime.Clock
	Chain  Chainer
	// NetPolicy configures each Faaslet's virtual interface.
	NetPolicy netns.Policy
	// NetDialer overrides host dialing (tests, simulator).
	NetDialer netns.Dialer
	// RandSeed seeds the per-Faaslet PRNG behind getrandom; 0 derives one
	// from the Faaslet id, keeping runs reproducible.
	RandSeed int64
	// Access, when non-nil, observes guest state reads for the per-function
	// access profiles behind locality-aware scheduling.
	Access StateAccess
}

func (e *Env) clock() vtime.Clock {
	if e.Clock == nil {
		return vtime.Real{}
	}
	return e.Clock
}

// ErrNoFunction is returned when a FuncDef has neither module nor native.
var ErrNoFunction = errors.New("core: function has no body")

var faasletIDs atomic.Uint64

// Faaslet is one isolated function execution context.
type Faaslet struct {
	id   string
	def  FuncDef
	env  *Env
	mem  *wamem.Memory
	inst *wavm.Instance // nil for native guests
	fs   *vfs.FS
	net  *netns.Interface
	rng  *rand.Rand

	// birth anchors the per-user monotonic clock (gettime host call).
	birth time.Time

	// Call state.
	input  []byte
	output []byte

	// mapped tracks state segments spliced into the linear address space:
	// key → guest base offset.
	mapped map[string]uint32

	// globalLockTokens holds live global lock leases per key.
	globalLockTokens map[string]uint64

	// libs are dlopen'd modules.
	libs []*library

	// proto is the snapshot used for per-call resets (may be nil until
	// Snapshot is taken).
	proto *Proto

	// trace is the current call's span sink (nil when the call is not
	// sampled); traceHost labels its spans.
	trace     TraceSink
	traceHost string

	// Steps mirrors the VM's executed-instruction counter at last call.
	Steps uint64

	// Cold reports whether the Faaslet has ever executed (scheduling).
	executed bool
}

// New creates a Faaslet for def. For wavm guests this performs the "linking"
// phase: the host interface thunks are bound into the module's import space.
func New(def FuncDef, env *Env) (*Faaslet, error) {
	if def.Module == nil && def.Native == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoFunction, def.Name)
	}
	f := newShell(def, env)
	limit := def.MemLimitPages
	if limit <= 0 {
		limit = DefaultMemLimitPages
	}

	if def.Module != nil {
		mem, err := wamem.New(maxInt(def.Module.MemMin, 1), limit)
		if err != nil {
			return nil, err
		}
		for _, d := range def.Module.Data {
			if err := mem.WriteBytes(d.Offset, d.Bytes); err != nil {
				return nil, fmt.Errorf("core: data segment: %w", err)
			}
		}
		f.mem = mem
		inst, err := wavm.Instantiate(def.Module, f.hostModules(),
			wavm.WithMemory(mem), wavm.WithFuel(fuelOrUnlimited(def.Fuel)))
		if err != nil {
			return nil, fmt.Errorf("core: link %s: %w", def.Name, err)
		}
		f.inst = inst
	} else {
		initial := def.InitialPages
		if initial <= 0 {
			initial = 1
		}
		mem, err := wamem.New(initial, limit)
		if err != nil {
			return nil, err
		}
		f.mem = mem
	}
	return f, nil
}

// newShell builds a Faaslet's host-side shell: everything except its memory
// and VM instance (which New builds fresh and NewFromProto restores).
func newShell(def FuncDef, env *Env) *Faaslet {
	if env == nil {
		env = &Env{}
	}
	id := fmt.Sprintf("%s-%d", def.Name, faasletIDs.Add(1))
	f := &Faaslet{
		id:               id,
		def:              def,
		env:              env,
		fs:               vfs.New(env.Files),
		birth:            env.clock().Now(),
		mapped:           map[string]uint32{},
		globalLockTokens: map[string]uint64{},
	}
	seed := env.RandSeed
	if seed == 0 {
		seed = int64(faasletIDs.Load()) * 2654435761
	}
	f.rng = rand.New(rand.NewSource(seed))
	f.net = netns.New(env.NetPolicy, env.NetDialer, env.clock())
	if env.CGroup != nil {
		env.CGroup.Create(id)
	}
	return f
}

func fuelOrUnlimited(fuel int64) int64 {
	if fuel <= 0 {
		return -1
	}
	return fuel
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ID returns the Faaslet's unique id (also its cgroup name).
func (f *Faaslet) ID() string { return f.id }

// Function returns the bound function's name.
func (f *Faaslet) Function() string { return f.def.Name }

// Memory exposes the linear memory (tests, snapshots).
func (f *Faaslet) Memory() *wamem.Memory { return f.mem }

// FS exposes the Faaslet's filesystem view.
func (f *Faaslet) FS() *vfs.FS { return f.fs }

// Net exposes the Faaslet's virtual network interface.
func (f *Faaslet) Net() *netns.Interface { return f.net }

// Warm reports whether this Faaslet has executed at least once.
func (f *Faaslet) Warm() bool { return f.executed }

// SetTraceSink attaches (sink non-nil) or detaches (nil) the current call's
// trace; host labels the spans recorded through it. Only sampled calls attach
// a sink, so the untraced host-interface path never reads the clock.
func (f *Faaslet) SetTraceSink(host string, sink TraceSink) {
	f.trace = sink
	f.traceHost = host
}

// Footprint estimates the Faaslet's private memory consumption: materialised
// private pages, the local file tier, and fixed bookkeeping. Shared state
// segments are deliberately excluded — they are counted once per host by the
// local tier, which is what makes Faaslet density an order of magnitude
// better than containers (Table 3).
func (f *Faaslet) Footprint() int64 {
	const bookkeeping = 2048 // structs, fd table, page table
	return f.mem.Footprint() + f.fs.LocalBytes() + bookkeeping
}

// Execute runs one function call: input in, output + return code out. Guest
// traps and host-interface violations surface as errors; the Faaslet itself
// remains usable (the runtime resets it before reuse).
func (f *Faaslet) Execute(input []byte) ([]byte, int32, error) {
	f.input = input
	f.output = nil
	f.executed = true
	start := f.env.clock().Now()

	var ret int32
	var err error
	if f.inst != nil {
		stepsBefore := f.inst.Steps
		ret, err = f.callWavmEntry()
		f.Steps = f.inst.Steps - stepsBefore
	} else {
		ctx := &Ctx{f: f}
		func() {
			defer func() {
				if r := recover(); r != nil {
					// A native guest escaping through panic is contained at
					// the Faaslet boundary, like an SFI trap.
					err = fmt.Errorf("core: native guest panic: %v", r)
					ret = -1
				}
			}()
			ret, err = f.def.Native(ctx)
		}()
		// Native guests are charged wall time as a cycle proxy.
		f.Steps = uint64(f.env.clock().Now().Sub(start) / time.Microsecond)
	}
	if f.env.CGroup != nil {
		f.env.CGroup.Charge(f.id, int64(f.Steps))
	}
	if err != nil {
		return nil, ret, err
	}
	return f.output, ret, nil
}

// callWavmEntry locates and invokes the guest entry point: "main" or
// "_start", with signature ()->i32 or ()->().
func (f *Faaslet) callWavmEntry() (int32, error) {
	name := ""
	for _, candidate := range []string{"main", "_start"} {
		if _, ok := f.def.Module.ExportedFunc(candidate); ok {
			name = candidate
			break
		}
	}
	if name == "" {
		return -1, fmt.Errorf("core: module %s exports no main/_start", f.def.Name)
	}
	res, err := f.inst.Call(name)
	if err != nil {
		return -1, err
	}
	if len(res) == 1 {
		return wavm.DecodeI32(res[0]), nil
	}
	return 0, nil
}

// mapState splices a state value's shared segment into the linear address
// space (once per key), returning the guest base offset of the value.
func (f *Faaslet) mapState(v *state.Value) (uint32, error) {
	if base, ok := f.mapped[v.Key()]; ok {
		return base, nil
	}
	base, err := f.mem.MapShared(v.Segment())
	if err != nil {
		return 0, fmt.Errorf("core: map state %s: %w", v.Key(), err)
	}
	f.mapped[v.Key()] = base
	return base, nil
}

// releaseGlobalLocks drops any leaked global lock leases (guest forgot to
// unlock, or trapped while holding them).
func (f *Faaslet) releaseGlobalLocks() {
	if f.env.State == nil {
		return
	}
	if len(f.globalLockTokens) == 0 {
		return
	}
	for key, tok := range f.globalLockTokens {
		f.env.State.UnlockGlobal(key, tok)
	}
	clear(f.globalLockTokens)
}

// Reset returns the Faaslet to its pristine state between calls (§5.2):
// memory restored from the Proto-Faaslet (or zeroed when none exists), file
// descriptors and local files dropped, sockets closed, state mappings and
// lock leases released. After Reset, nothing written by the previous call is
// observable — the multi-tenant reuse guarantee.
func (f *Faaslet) Reset() error {
	f.releaseGlobalLocks()
	f.fs.Reset()
	f.net.Reset()
	clear(f.mapped)
	f.input = nil
	f.output = nil
	f.libs = nil

	if f.proto != nil {
		return f.restoreFromProto(f.proto)
	}
	// No snapshot: rebuild memory from the module image.
	limit := f.def.MemLimitPages
	if limit <= 0 {
		limit = DefaultMemLimitPages
	}
	if f.def.Module != nil {
		mem, err := wamem.New(maxInt(f.def.Module.MemMin, 1), limit)
		if err != nil {
			return err
		}
		for _, d := range f.def.Module.Data {
			if err := mem.WriteBytes(d.Offset, d.Bytes); err != nil {
				return err
			}
		}
		f.mem = mem
		inst, err := wavm.Instantiate(f.def.Module, f.hostModules(),
			wavm.WithMemory(mem), wavm.WithFuel(fuelOrUnlimited(f.def.Fuel)))
		if err != nil {
			return err
		}
		f.inst = inst
	} else {
		initial := f.def.InitialPages
		if initial <= 0 {
			initial = 1
		}
		mem, err := wamem.New(initial, limit)
		if err != nil {
			return err
		}
		f.mem = mem
	}
	return nil
}

// Close releases host resources (cgroup, sockets).
func (f *Faaslet) Close() {
	f.releaseGlobalLocks()
	f.net.Reset()
	if f.env.CGroup != nil {
		f.env.CGroup.Remove(f.id)
	}
}

// Ctx is the native-guest host interface: the same surface as Table 2,
// expressed as Go methods. Native guests must treat it as their only door
// to the outside world.
type Ctx struct {
	f *Faaslet
}

// NewCtx builds a host-side Ctx for trusted deployment-time code (e.g.
// Proto-Faaslet initialisation). Guests never construct Ctx values.
func NewCtx(f *Faaslet) *Ctx { return &Ctx{f: f} }

// Input returns the call's input byte array (read_call_input).
func (c *Ctx) Input() []byte { return c.f.input }

// WriteOutput sets the call's output byte array (write_call_output).
func (c *Ctx) WriteOutput(b []byte) {
	c.f.output = append([]byte(nil), b...)
}

// Chain invokes another function (chain_call), returning its call id.
func (c *Ctx) Chain(function string, input []byte) (uint64, error) {
	if c.f.env.Chain == nil {
		return 0, errors.New("core: no chainer configured")
	}
	return c.f.env.Chain.Chain(function, input)
}

// Await blocks until a chained call finishes (await_call).
func (c *Ctx) Await(id uint64) (int32, error) {
	if c.f.env.Chain == nil {
		return -1, errors.New("core: no chainer configured")
	}
	return c.f.env.Chain.Await(id)
}

// OutputOf fetches a finished chained call's output (get_call_output).
func (c *Ctx) OutputOf(id uint64) ([]byte, error) {
	if c.f.env.Chain == nil {
		return nil, errors.New("core: no chainer configured")
	}
	return c.f.env.Chain.Output(id)
}

// State returns the local-tier replica handle for key (get_state). size < 0
// discovers the size from the global tier.
func (c *Ctx) State(key string, size int) (*state.Value, error) {
	if c.f.env.State == nil {
		return nil, errors.New("core: no state tier configured")
	}
	return c.f.env.State.Value(key, size)
}

// MapState maps the value's shared segment into the Faaslet's linear memory
// and returns a zero-copy byte view of the value — the pointer that
// get_state hands to SFI guests.
func (c *Ctx) MapState(key string, size int) ([]byte, error) {
	v, err := c.State(key, size)
	if err != nil {
		return nil, err
	}
	start := c.TraceStart()
	pulled, err := v.EnsurePulledN(0, v.Size())
	c.TraceSpan("state.pull", key, start, pulled, err)
	c.NoteStateAccess(key, int64(v.Size()))
	if err != nil {
		return nil, err
	}
	if _, err := c.f.mapState(v); err != nil {
		return nil, err
	}
	return v.Bytes(), nil
}

// AppendState appends to the global value (append_state).
func (c *Ctx) AppendState(key string, data []byte) error {
	if c.f.env.State == nil {
		return errors.New("core: no state tier configured")
	}
	start := c.TraceStart()
	err := c.f.env.State.Append(key, data)
	c.TraceSpan("state.append", key, start, int64(len(data)), err)
	return err
}

// ReadAllState fetches the authoritative global value.
func (c *Ctx) ReadAllState(key string) ([]byte, error) {
	if c.f.env.State == nil {
		return nil, errors.New("core: no state tier configured")
	}
	start := c.TraceStart()
	b, err := c.f.env.State.ReadAll(key)
	c.TraceSpan("state.read_all", key, start, int64(len(b)), err)
	c.NoteStateAccess(key, int64(len(b)))
	return b, err
}

// WriteAllState replaces the authoritative global value and evicts any
// local replica, for values whose size changes between writes.
func (c *Ctx) WriteAllState(key string, data []byte) error {
	if c.f.env.State == nil {
		return errors.New("core: no state tier configured")
	}
	start := c.TraceStart()
	err := c.f.env.State.Global().Set(key, data)
	c.TraceSpan("state.write_all", key, start, int64(len(data)), err)
	if err != nil {
		return err
	}
	c.f.env.State.Evict(key)
	return nil
}

// LockGlobal acquires a global lock (lock_state_global_read/write); the
// lease is tracked and auto-released at reset if leaked.
func (c *Ctx) LockGlobal(key string, write bool) error {
	if c.f.env.State == nil {
		return errors.New("core: no state tier configured")
	}
	tok, err := c.f.env.State.LockGlobal(key, write)
	if err != nil {
		return err
	}
	c.f.globalLockTokens[key] = tok
	return nil
}

// UnlockGlobal releases a global lock taken by this Faaslet.
func (c *Ctx) UnlockGlobal(key string) error {
	tok, ok := c.f.globalLockTokens[key]
	if !ok {
		return fmt.Errorf("core: no global lock held on %s", key)
	}
	delete(c.f.globalLockTokens, key)
	return c.f.env.State.UnlockGlobal(key, tok)
}

// FS exposes the read-global write-local filesystem.
func (c *Ctx) FS() *vfs.FS { return c.f.fs }

// Net exposes the virtual network interface.
func (c *Ctx) Net() *netns.Interface { return c.f.net }

// Memory exposes the Faaslet's linear memory.
func (c *Ctx) Memory() *wamem.Memory { return c.f.mem }

// Now returns the per-user monotonic clock (gettime): time since the
// Faaslet's creation, never the wall clock.
func (c *Ctx) Now() time.Duration {
	return c.f.env.clock().Now().Sub(c.f.birth)
}

// Random fills b from the Faaslet's seeded PRNG (getrandom).
func (c *Ctx) Random(b []byte) {
	c.f.rng.Read(b)
}

// Function returns the executing function's name.
func (c *Ctx) Function() string { return c.f.def.Name }

// NoteStateAccess feeds one guest state read (key, bytes addressed) into
// the environment's access observer; a no-op when none is attached or the
// read touched nothing.
func (c *Ctx) NoteStateAccess(key string, n int64) {
	if c.f.env.Access == nil || n <= 0 {
		return
	}
	c.f.env.Access.NoteStateAccess(c.f.def.Name, key, n)
}

// TraceStart returns the clock reading to pass to TraceSpan, or the zero Time
// when this call carries no trace — untraced calls skip the clock read.
func (c *Ctx) TraceStart() time.Time {
	if c.f.trace == nil {
		return time.Time{}
	}
	return c.f.env.clock().Now()
}

// TraceSpan records one host-interface span on the call's trace sink. A zero
// start (untraced call) makes it a no-op, so call sites instrument
// unconditionally.
func (c *Ctx) TraceSpan(name, key string, start time.Time, bytes int64, err error) {
	if c.f.trace == nil || start.IsZero() {
		return
	}
	now := c.f.env.clock().Now()
	c.f.trace.RecordSpan(c.f.traceHost, name, key, start, now.Sub(start), bytes, err != nil)
}
