package minipy

import (
	"testing"

	"faasm.dev/faasm/internal/wamem"
)

// runProgram executes p on the given heap.
func runProgram(t *testing.T, p Program, heap Heap) Val {
	t.Helper()
	ip := New(heap)
	p.Build(ip)
	v, err := ip.Call(p.Entry, IntV(p.Arg))
	if err != nil {
		t.Fatalf("%s: %v", p.Name, err)
	}
	return v
}

func TestProgramsAgreeAcrossHeaps(t *testing.T) {
	// The Fig 9b correctness gate: every program computes the same result
	// on the native heap and on the bounds-checked linear-memory heap.
	for _, p := range Programs() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			native := runProgram(t, p, NewSliceHeap())
			mem := wamem.MustNew(4, 0)
			sandboxed := runProgram(t, p, NewMemHeap(mem, 0))
			if native.Kind != sandboxed.Kind {
				t.Fatalf("kinds differ: %v vs %v", native.Kind, sandboxed.Kind)
			}
			if native.Kind == KFloat {
				if diff := native.F - sandboxed.F; diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("results differ: %v vs %v", native.F, sandboxed.F)
				}
			} else if native.I != sandboxed.I {
				t.Fatalf("results differ: %v vs %v", native.I, sandboxed.I)
			}
		})
	}
}

func TestProgramsDeterministic(t *testing.T) {
	for _, p := range Programs() {
		a := runProgram(t, p, NewSliceHeap())
		b := runProgram(t, p, NewSliceHeap())
		if a != b {
			t.Fatalf("%s not deterministic", p.Name)
		}
	}
}

func TestArithmeticSemantics(t *testing.T) {
	ip := New(NewSliceHeap())
	ip.Define(&FuncDef{Name: "f", Params: 2, Slots: 2, Body: []Node{
		ret(bin("+", lv(0), lv(1))),
	}})
	v, err := ip.Call("f", IntV(2), IntV(40))
	if err != nil || v.I != 42 {
		t.Fatalf("int add: %+v %v", v, err)
	}
	// int + float promotes.
	v, err = ip.Call("f", IntV(1), FloatV(0.5))
	if err != nil || v.Kind != KFloat || v.F != 1.5 {
		t.Fatalf("promotion: %+v %v", v, err)
	}
}

func TestDivisionByZero(t *testing.T) {
	ip := New(NewSliceHeap())
	ip.Define(&FuncDef{Name: "f", Params: 0, Slots: 0, Body: []Node{
		ret(bin("/", ci(1), ci(0))),
	}})
	if _, err := ip.Call("f"); err == nil {
		t.Fatal("division by zero succeeded")
	}
}

func TestListOps(t *testing.T) {
	ip := New(NewSliceHeap())
	ip.Define(&FuncDef{Name: "f", Params: 0, Slots: 2, Body: []Node{
		setl(0, blt("list")),
		forr(1, ci(0), ci(100),
			setl(0, blt("append", lv(0), bin("*", lv(1), lv(1)))),
		),
		ret(bin("+", blt("len", lv(0)), blt("getidx", lv(0), ci(99)))),
	}})
	v, err := ip.Call("f")
	if err != nil || v.I != 100+99*99 {
		t.Fatalf("list ops: %+v %v", v, err)
	}
}

func TestListIndexOutOfRange(t *testing.T) {
	ip := New(NewSliceHeap())
	ip.Define(&FuncDef{Name: "f", Params: 0, Slots: 1, Body: []Node{
		setl(0, blt("list", ci(3))),
		ret(blt("getidx", lv(0), ci(7))),
	}})
	if _, err := ip.Call("f"); err == nil {
		t.Fatal("out-of-range index succeeded")
	}
}

func TestStringsOnHeap(t *testing.T) {
	ip := New(NewSliceHeap())
	ip.Define(&FuncDef{Name: "f", Params: 0, Slots: 1, Body: []Node{
		setl(0, bin("+", &StrLit{S: "abc"}, blt("str", ci(42)))),
		ret(lv(0)),
	}})
	v, err := ip.Call("f")
	if err != nil {
		t.Fatal(err)
	}
	s, err := ip.StrValue(v)
	if err != nil || s != "abc42" {
		t.Fatalf("string concat: %q %v", s, err)
	}
}

func TestWhileBreakContinue(t *testing.T) {
	ip := New(NewSliceHeap())
	ip.Define(&FuncDef{Name: "f", Params: 0, Slots: 2, Body: []Node{
		setl(0, ci(0)), // i
		setl(1, ci(0)), // acc
		&While{Cond: bin("<", lv(0), ci(100)), Body: []Node{
			setl(0, bin("+", lv(0), ci(1))),
			&If{Cond: bin("==", bin("%", lv(0), ci(2)), ci(0)), Then: []Node{&Continue{}}},
			&If{Cond: bin(">", lv(0), ci(10)), Then: []Node{&Break{}}},
			setl(1, bin("+", lv(1), lv(0))),
		}},
		ret(lv(1)), // 1+3+5+7+9 = 25
	}})
	v, err := ip.Call("f")
	if err != nil || v.I != 25 {
		t.Fatalf("loop control: %+v %v", v, err)
	}
}

func TestUserFunctionCalls(t *testing.T) {
	ip := New(NewSliceHeap())
	ip.Define(&FuncDef{Name: "fib", Params: 1, Slots: 1, Body: []Node{
		&If{Cond: bin("<", lv(0), ci(2)), Then: []Node{ret(lv(0))}},
		ret(bin("+",
			&CallN{Name: "fib", Args: []Node{bin("-", lv(0), ci(1))}},
			&CallN{Name: "fib", Args: []Node{bin("-", lv(0), ci(2))}})),
	}})
	v, err := ip.Call("fib", IntV(12))
	if err != nil || v.I != 144 {
		t.Fatalf("fib: %+v %v", v, err)
	}
}

func TestStepsCounted(t *testing.T) {
	ip := New(NewSliceHeap())
	ip.Define(&FuncDef{Name: "f", Params: 0, Slots: 1, Body: []Node{
		forr(0, ci(0), ci(1000), &ExprStmt{X: ci(1)}),
		ret(ci(0)),
	}})
	ip.Call("f")
	if ip.Steps < 1000 {
		t.Fatalf("steps = %d", ip.Steps)
	}
}

func BenchmarkNbodyNativeHeap(b *testing.B) {
	p, _ := ProgramByName("nbody")
	ip := New(NewSliceHeap())
	p.Build(ip)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ip.Call(p.Entry, IntV(p.Arg)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNbodyMemHeap(b *testing.B) {
	p, _ := ProgramByName("nbody")
	mem := wamem.MustNew(4, 0)
	ip := New(NewMemHeap(mem, 0))
	p.Build(ip)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ip.Call(p.Entry, IntV(p.Arg)); err != nil {
			b.Fatal(err)
		}
	}
}
