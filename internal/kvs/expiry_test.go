package kvs

// Engine-internal expiry tests: deterministic clock control (the engine's
// clock is the only judge of expiry), physical reclamation by the background
// sweeper, and race coverage for the sweeper against concurrent operations.
// Cross-backend expiry semantics live in the kvstest conformance suite.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a controllable engine clock, safe for concurrent use (the
// background sweeper reads it from its timer goroutine).
type fakeClock struct {
	base   time.Time
	offset atomic.Int64
}

func newFakeClock() *fakeClock { return &fakeClock{base: time.Now()} }

func (c *fakeClock) Now() time.Time {
	return c.base.Add(time.Duration(c.offset.Load()))
}

func (c *fakeClock) Advance(d time.Duration) { c.offset.Add(int64(d)) }

func TestExpiryJudgedOnEngineClockOnly(t *testing.T) {
	clk := newFakeClock()
	e := NewEngine()
	e.SetNowFunc(clk.Now)
	// Park the background sweeper: this test drives sweeps explicitly and
	// must observe their counts deterministically.
	e.SetSweepInterval(time.Hour)
	if err := e.SetEx("k", []byte("v"), time.Minute); err != nil {
		t.Fatal(err)
	}
	// Wall time passing means nothing: only the engine clock judges.
	time.Sleep(10 * time.Millisecond)
	if v, _ := e.Get("k"); string(v) != "v" {
		t.Fatalf("key expired without the engine clock moving: %q", v)
	}
	if d, _ := e.TTL("k"); d != time.Minute {
		t.Fatalf("ttl = %v on a frozen clock, want full minute", d)
	}
	clk.Advance(time.Minute - time.Millisecond)
	if v, _ := e.Get("k"); v == nil {
		t.Fatal("key expired before its deadline")
	}
	clk.Advance(2 * time.Millisecond)
	if v, _ := e.Get("k"); v != nil {
		t.Fatalf("key visible past its deadline: %q", v)
	}
	if d, _ := e.TTL("k"); d != TTLMissing {
		t.Fatalf("ttl past deadline = %v, want TTLMissing", d)
	}
	// The expired entry is physically gone after one sweep.
	if n := e.SweepExpired(); n != 1 {
		t.Fatalf("sweep removed %d entries, want 1", n)
	}
	if n := e.SweepExpired(); n != 0 {
		t.Fatalf("second sweep removed %d entries, want 0", n)
	}
}

func TestExpiredKeysDoNotPinMemory(t *testing.T) {
	// The background sweeper alone — no reads ever touching the keys —
	// must physically delete expired entries.
	e := NewEngine()
	e.SetSweepInterval(2 * time.Millisecond)
	for i := 0; i < 100; i++ {
		if err := e.SetEx(fmt.Sprintf("mem-%d", i), make([]byte, 128), 10*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		held := 0
		for i := range e.stripes {
			st := &e.stripes[i]
			st.mu.RLock()
			held += len(st.vals) + len(st.exp)
			st.mu.RUnlock()
		}
		if held == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d expired entries still pinned after sweeps", held)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSweeperReschedulesAcrossGenerations(t *testing.T) {
	// A second generation of deadlines registered after the first was fully
	// swept (timer chain idle) must be swept too — the re-arm on SetEx.
	e := NewEngine()
	e.SetSweepInterval(2 * time.Millisecond)
	for gen := 0; gen < 2; gen++ {
		if err := e.SetEx("gen", []byte("v"), 5*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for {
			st := e.stripeOf("gen")
			st.mu.RLock()
			_, pinned := st.vals["gen"]
			st.mu.RUnlock()
			if !pinned {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("generation %d never swept", gen)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}

// TestExpirySweeperRaceClean runs the sweeper (background and explicit)
// against concurrent SetEx/Get/MGet/TTL/Persist/Set/Delete/enumeration on
// overlapping keys. Run under -race in CI.
func TestExpirySweeperRaceClean(t *testing.T) {
	e := NewEngine()
	e.SetSweepInterval(time.Millisecond)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	key := func(i int) string { return fmt.Sprintf("r-%d", i%32) }

	worker := func(fn func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				fn(i)
			}
		}()
	}
	worker(func(i int) { // expiring writer
		e.SetEx(key(i), []byte("v"), time.Duration(1+i%5)*time.Millisecond)
	})
	worker(func(i int) { // readers
		e.Get(key(i))
		e.MGet([]string{key(i), key(i + 1), key(i + 2)})
		e.TTL(key(i))
		e.GetRange(key(i), 0, 1)
	})
	worker(func(i int) { // expiry mutators
		e.Persist(key(i))
		if i%7 == 0 {
			e.Set(key(i), []byte("p"))
		}
		if i%11 == 0 {
			e.Delete(key(i))
		}
	})
	worker(func(i int) { // explicit sweeps race the background timer
		e.SweepExpired()
		time.Sleep(time.Millisecond)
	})
	worker(func(i int) { // enumeration walks every stripe
		e.AllKeys()
		e.TotalBytes()
		time.Sleep(time.Millisecond)
	})

	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()
}
