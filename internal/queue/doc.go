// Package queue implements the durable asynchronous invocation path: a
// per-function queue layered on the global state tier (kvs.Store, usually a
// shardkvs.Ring), so queued work survives the loss of any host the same way
// leases and state already do. Submit enqueues an item into the tier and
// acks immediately with a call id; per-function consumer loops on every host
// claim items, execute them through the runtime's normal scheduling path
// (warm pools, locality-aware placement), and write a durable result record
// awaiters poll for.
//
// Delivery is at-least-once with an exactly-once client view: a claimed
// item is fenced by a tier-side SetEx'd lease, so a consumer that dies
// mid-execution simply stops renewing it and the item becomes claimable
// again after lease expiry, judged on the tier's clock. Failed executions
// retry after a bounded exponential backoff (the lease doubles as the
// backoff timer) until RetryMax redeliveries, after which the item lands in
// the function's dead-letter set with a CallDeadLettered result. Result
// writes are first-writer-wins: a redelivered execution that finds a result
// already recorded acks without writing, so the client never observes a
// completed call change its outcome.
//
// Chaining is static: Then(fn, next) records in the tier that a successful
// fn completion enqueues next with fn's output as input. The downstream
// item records its parent's call id (mbus.CallRecord.ParentID) and the
// parent's result records the child id, so clients and traces can walk a
// pipeline end to end.
//
// # Concurrency model
//
//   - All shared queue state lives in the tier; the Queue struct itself
//     holds only atomic metric counters and the consumer-goroutine
//     registry (one mutex, touched at consumer start/stop only).
//   - Claims are serialized per function through the tier's lease lock
//     (kvs.Store.Lock on q/claim/<fn>), so two consumers cannot claim the
//     same item in the same round; the in-flight lease then fences the
//     claim across lock expiry.
//   - Consumer loops are plain goroutines sleeping on the runtime clock;
//     Close stops claims immediately and waits the loops out.
package queue
