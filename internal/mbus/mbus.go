package mbus

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"faasm.dev/faasm/internal/obsv"
)

// MsgType enumerates bus message kinds.
type MsgType int

// Message kinds.
const (
	MsgCall MsgType = iota
	MsgResult
	MsgSpawn
	MsgTerminate
	MsgShare // work sharing between runtime instances (§5.1)
)

// Message is one bus datagram.
type Message struct {
	Type     MsgType
	CallID   uint64
	Function string
	Payload  []byte
	From     string
}

// endpoint is one inbox plus the bookkeeping that makes closing it safe
// against concurrent senders: dying is closed first (unblocking any sender
// parked on a full inbox), and the inbox channel itself is closed only after
// every in-flight send has drained through wg — a sender can never hit a
// closed channel.
type endpoint struct {
	ch    chan Message
	dying chan struct{}
	wg    sync.WaitGroup
}

// Bus routes messages between named endpoints.
type Bus struct {
	mu        sync.Mutex
	endpoints map[string]*endpoint
	closed    bool
}

// ErrClosed is returned after Close.
var ErrClosed = errors.New("mbus: bus closed")

// New creates an empty bus.
func New() *Bus {
	return &Bus{endpoints: map[string]*endpoint{}}
}

// endpointBuffer bounds each inbox; senders block when a receiver lags,
// providing natural backpressure.
const endpointBuffer = 1024

// Register creates (or returns) the inbox for name.
func (b *Bus) Register(name string) (<-chan Message, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	ep, ok := b.endpoints[name]
	if !ok {
		ep = &endpoint{ch: make(chan Message, endpointBuffer), dying: make(chan struct{})}
		b.endpoints[name] = ep
	}
	return ep.ch, nil
}

// Unregister removes an endpoint, closing its inbox. Safe against concurrent
// Send/TrySend: blocked senders are released (observing ErrClosed) before
// the inbox channel closes.
func (b *Bus) Unregister(name string) {
	b.mu.Lock()
	ep, ok := b.endpoints[name]
	delete(b.endpoints, name)
	b.mu.Unlock()
	if ok {
		ep.shutdown()
	}
}

// shutdown releases blocked senders, waits out in-flight ones, then closes
// the inbox so receivers see end-of-stream.
func (ep *endpoint) shutdown() {
	close(ep.dying)
	ep.wg.Wait()
	close(ep.ch)
}

// sender looks up the endpoint and registers the caller as an in-flight
// sender; the caller must ep.wg.Done() when its send attempt finishes.
func (b *Bus) sender(to string) (*endpoint, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	ep, ok := b.endpoints[to]
	if !ok {
		return nil, fmt.Errorf("mbus: no endpoint %q", to)
	}
	// Registered under the bus lock, so Unregister cannot observe wg == 0
	// between our lookup and the send attempt below.
	ep.wg.Add(1)
	return ep, nil
}

// Send delivers msg to the named endpoint, blocking if its inbox is full. A
// concurrent Unregister/Close unblocks the send with ErrClosed rather than
// panicking it on a closed channel.
func (b *Bus) Send(to string, msg Message) error {
	ep, err := b.sender(to)
	if err != nil {
		return err
	}
	defer ep.wg.Done()
	select {
	case ep.ch <- msg:
		return nil
	case <-ep.dying:
		return ErrClosed
	}
}

// TrySend delivers without blocking, reporting whether it was enqueued.
func (b *Bus) TrySend(to string, msg Message) (bool, error) {
	ep, err := b.sender(to)
	if err != nil {
		return false, err
	}
	defer ep.wg.Done()
	select {
	case <-ep.dying:
		return false, ErrClosed
	default:
	}
	select {
	case ep.ch <- msg:
		return true, nil
	case <-ep.dying:
		return false, ErrClosed
	default:
		return false, nil
	}
}

// Endpoints lists registered endpoint names.
func (b *Bus) Endpoints() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.endpoints))
	for n := range b.endpoints {
		out = append(out, n)
	}
	return out
}

// Close shuts the bus; all inboxes are closed after their in-flight senders
// drain (the senders observe ErrClosed).
func (b *Bus) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	eps := b.endpoints
	b.endpoints = map[string]*endpoint{}
	b.mu.Unlock()
	for _, ep := range eps {
		ep.shutdown()
	}
}

// CallStatus is the lifecycle state of a chained call.
type CallStatus int

// Call states. The first four are the synchronous lifecycle; CallQueued and
// CallDeadLettered extend it for the durable async path (internal/queue):
// a queued call waits in the global tier before any host runs it, and a
// dead-lettered one exhausted its redeliveries without completing.
const (
	CallPending CallStatus = iota
	CallRunning
	CallSucceeded
	CallFailed
	CallQueued
	CallDeadLettered
)

func (s CallStatus) String() string {
	switch s {
	case CallPending:
		return "pending"
	case CallRunning:
		return "running"
	case CallSucceeded:
		return "succeeded"
	case CallFailed:
		return "failed"
	case CallQueued:
		return "queued"
	case CallDeadLettered:
		return "dead-lettered"
	}
	return "unknown"
}

// Terminal reports whether the status is final: no later transition may
// overwrite a terminal result (first writer wins; see Complete).
func (s CallStatus) Terminal() bool {
	return s == CallSucceeded || s == CallFailed || s == CallDeadLettered
}

// CallRecord is the table entry for one function call. It doubles as the
// durable queue's item/result schema, so a chained async call's lineage
// (ParentID/ChildID) and its trace id travel with the record through the
// global tier.
type CallRecord struct {
	ID       uint64
	Function string
	Input    []byte
	Output   []byte
	Status   CallStatus
	Err      string
	// ReturnCode is the guest's integer result, as awaited by await_call.
	ReturnCode int32
	// TraceID links the call to its invocation trace (0 = unsampled).
	TraceID uint64
	// ParentID is the upstream call whose completion enqueued this one
	// (0 = externally submitted); ChildID is the downstream call this
	// one's completion enqueued (0 = none). Traces join across a chain by
	// following these links.
	ParentID uint64
	ChildID  uint64
}

// callShards is the CallTable's sharding width. Call ids are dense
// (monotonically assigned), so id&(callShards-1) spreads concurrent calls
// uniformly and two simultaneous invocations almost never contend on the
// same shard mutex.
const callShards = 64

// callEntry is one tracked call plus its completion signal. done is closed
// exactly once, when the call reaches a terminal state (or is deleted), so
// Await wakes only the waiters of THIS call — never the whole table.
type callEntry struct {
	rec  CallRecord
	done chan struct{}
}

type callShard struct {
	mu    sync.Mutex
	calls map[uint64]*callEntry
}

// CallTable tracks in-flight and completed calls on one runtime instance.
// It is sharded by call id: operations on different calls take different
// locks, and each call carries its own completion channel, so completing one
// call wakes exactly its awaiters.
type CallTable struct {
	shards [callShards]callShard
	next   atomic.Uint64

	// created/completed/failed count call lifecycle transitions for the
	// metrics exposition.
	created   atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
}

// Instrument registers the table's lifecycle counters and live-record gauge
// with reg, labelled by host.
func (t *CallTable) Instrument(reg *obsv.Registry, host string) {
	l := map[string]string{"host": host}
	reg.CounterFunc("faasm_mbus_calls_created_total", "calls registered in the table", l, t.created.Load)
	reg.CounterFunc("faasm_mbus_calls_completed_total", "calls reaching a terminal state", l, t.completed.Load)
	reg.CounterFunc("faasm_mbus_calls_failed_total", "calls completing with an error", l, t.failed.Load)
	reg.GaugeFunc("faasm_mbus_calls_live", "records currently in the table", l, func() int64 { return int64(t.Len()) })
}

// NewCallTable creates an empty table.
func NewCallTable() *CallTable {
	t := &CallTable{}
	for i := range t.shards {
		t.shards[i].calls = map[uint64]*callEntry{}
	}
	return t
}

func (t *CallTable) shard(id uint64) *callShard {
	return &t.shards[id&(callShards-1)]
}

// Create registers a new pending call, returning its ID.
func (t *CallTable) Create(function string, input []byte) uint64 {
	id := t.next.Add(1)
	e := &callEntry{
		rec: CallRecord{
			ID:       id,
			Function: function,
			Input:    append([]byte(nil), input...),
			Status:   CallPending,
		},
		done: make(chan struct{}),
	}
	s := t.shard(id)
	s.mu.Lock()
	s.calls[id] = e
	s.mu.Unlock()
	t.created.Add(1)
	return id
}

// SetTraceID links a call to its invocation trace.
func (t *CallTable) SetTraceID(id, trace uint64) {
	s := t.shard(id)
	s.mu.Lock()
	if e, ok := s.calls[id]; ok {
		e.rec.TraceID = trace
	}
	s.mu.Unlock()
}

// Start marks a call running.
func (t *CallTable) Start(id uint64) error {
	s := t.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.calls[id]
	if !ok {
		return fmt.Errorf("mbus: unknown call %d", id)
	}
	e.rec.Status = CallRunning
	return nil
}

// terminal reports whether a status is final.
func terminal(st CallStatus) bool { return st.Terminal() }

// ErrAlreadyCompleted is Complete's sentinel for a call that already reached
// a terminal state: the first completion won, the new result was dropped.
// At-least-once redelivery leans on this — a duplicate execution's late
// completion must never flip a result waiters have already observed.
var ErrAlreadyCompleted = errors.New("mbus: call already completed")

// Complete finishes a call with output and return code (err non-nil marks
// failure), waking this call's awaiters (and only them). Completion is
// first-writer-wins: once a call is terminal, further completions mutate
// nothing and return ErrAlreadyCompleted.
func (t *CallTable) Complete(id uint64, output []byte, ret int32, err error) error {
	s := t.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.calls[id]
	if !ok {
		return fmt.Errorf("mbus: unknown call %d", id)
	}
	if terminal(e.rec.Status) {
		return ErrAlreadyCompleted
	}
	e.rec.Output = append([]byte(nil), output...)
	e.rec.ReturnCode = ret
	if err != nil {
		e.rec.Status = CallFailed
		e.rec.Err = err.Error()
	} else {
		e.rec.Status = CallSucceeded
	}
	close(e.done)
	t.completed.Add(1)
	if err != nil {
		t.failed.Add(1)
	}
	return nil
}

// Await blocks until the call finishes or fails, returning its return code
// (await_call in Table 2). Failure yields a non-zero code and the error.
// The result is read from the entry itself, not the table: a Delete racing
// in after completion discards the map slot but never the completed record,
// so waiters of a completed call always observe its result. Only a call
// deleted while still pending reports unknown.
func (t *CallTable) Await(id uint64) (int32, error) {
	s := t.shard(id)
	s.mu.Lock()
	e, ok := s.calls[id]
	s.mu.Unlock()
	if !ok {
		return -1, fmt.Errorf("mbus: unknown call %d", id)
	}
	<-e.done
	s.mu.Lock()
	rec := e.rec
	s.mu.Unlock()
	if !terminal(rec.Status) {
		// done closed by Delete on a still-pending call.
		return -1, fmt.Errorf("mbus: unknown call %d", id)
	}
	if rec.Status == CallFailed {
		return rec.ReturnCode, fmt.Errorf("mbus: call %d failed: %s", id, rec.Err)
	}
	return rec.ReturnCode, nil
}

// Output returns a finished call's output bytes (get_call_output).
func (t *CallTable) Output(id uint64) ([]byte, error) {
	s := t.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.calls[id]
	if !ok {
		return nil, fmt.Errorf("mbus: unknown call %d", id)
	}
	if !terminal(e.rec.Status) {
		return nil, fmt.Errorf("mbus: call %d still %s", id, e.rec.Status)
	}
	return append([]byte(nil), e.rec.Output...), nil
}

// Get returns a snapshot of the record.
func (t *CallTable) Get(id uint64) (CallRecord, bool) {
	s := t.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.calls[id]
	if !ok {
		return CallRecord{}, false
	}
	return e.rec, true
}

// Delete discards a call record (GC after chaining completes). Waiters
// blocked in Await are woken and observe the call as unknown.
func (t *CallTable) Delete(id uint64) {
	s := t.shard(id)
	s.mu.Lock()
	e, ok := s.calls[id]
	if ok {
		delete(s.calls, id)
		if !terminal(e.rec.Status) {
			close(e.done)
		}
	}
	s.mu.Unlock()
}

// Len reports the number of live records.
func (t *CallTable) Len() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += len(s.calls)
		s.mu.Unlock()
	}
	return n
}
