package shardkvs

// Read-repair for suspect shards. A shard that failed an operation with an
// unavailability error is marked suspect: reads skip it (it missed writes the
// surviving copies acknowledged) and Heal is the only path back into the read
// set. Heal probes each suspect shard and, for the reachable ones, re-syncs
// every entry the shard owns from an in-sync copy, sweeps entries that were
// deleted while it was down, and clears the suspect mark.
//
// Repair trusts the in-sync copies. A write that was acknowledged *only* by
// copies that later all crashed is invisible to the survivors, so repair
// drops it — that is the W < R durability contract, not a repair bug (see
// the failure model in docs/ARCHITECTURE.md).

import (
	"fmt"
	"sort"
	"time"

	"faasm.dev/faasm/internal/kvs"
)

// healProbeKey is the key Heal reads to test a suspect shard's reachability.
// Reading a missing key is a cheap no-op on every backend; only the error
// class matters.
const healProbeKey = "__faasm_heal_probe"

// Health is the ring's local view of one shard's availability.
type Health struct {
	// ID is the node id on the ring.
	ID string
	// Suspect reports whether the node is excluded from reads pending repair.
	Suspect bool
	// Failures counts unavailability errors the ring has observed against
	// the node over its lifetime.
	Failures int64
	// Down is how long the node has been suspect (zero when in sync).
	Down time.Duration
}

// Health reports per-shard health, sorted by node id; faasmd's /status page
// renders it.
func (r *Ring) Health() []Health {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Health, 0, len(r.nodes))
	for id, n := range r.nodes {
		h := Health{ID: id, Suspect: n.suspect.Load(), Failures: n.failures.Load()}
		if h.Suspect {
			h.Down = time.Since(time.Unix(0, n.downSince.Load()))
		}
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// healLoop drives Heal at the configured interval until Close. Errors leave
// the affected shards suspect; the next tick retries.
func (r *Ring) healLoop(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-r.healStop:
			return
		case <-t.C:
			r.Heal() //nolint:errcheck // suspect shards stay suspect; retried next tick
		}
	}
}

// Heal probes every suspect shard and re-syncs the ones that answer,
// returning them to the read set. Unreachable shards stay suspect for a
// later Heal. Repair is per-key write-fenced, so it serialises against live
// writers exactly like a migration; plain traffic proceeds throughout.
func (r *Ring) Heal() (MigrationStats, error) {
	r.migrateMu.Lock()
	defer r.migrateMu.Unlock()
	var stats MigrationStats
	r.mu.RLock()
	var suspects []*node
	for _, n := range r.nodes {
		if n.suspect.Load() {
			suspects = append(suspects, n)
		}
	}
	r.mu.RUnlock()
	if len(suspects) == 0 {
		return stats, nil
	}
	sort.Slice(suspects, func(i, j int) bool { return suspects[i].id < suspects[j].id })
	var firstErr error
	for _, n := range suspects {
		if _, err := n.store.Get(healProbeKey); kvs.IsUnavailable(err) {
			continue // still down
		}
		if err := r.repairNode(n, &stats); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		r.clearSuspect(n)
	}
	return stats, firstErr
}

// entryRef names one stored entry; a key can exist under several kinds.
type entryRef struct {
	key  string
	kind kvs.Kind
}

// repairNode re-syncs one reachable suspect shard from the in-sync copies:
// every entry the shard owns under the current placement is overwritten from
// an in-sync holder, and entries the shard holds that no in-sync owner holds
// (deleted while it was down) are swept. The ring lock is never held across
// store operations; each key's copy runs under its write fence.
func (r *Ring) repairNode(target *node, stats *MigrationStats) error {
	r.mu.RLock()
	points := r.points
	ids := r.nodeIDsLocked()
	nodes := make(map[string]*node, len(r.nodes))
	for id, n := range r.nodes {
		nodes[id] = n
	}
	r.mu.RUnlock()
	sort.Strings(ids)

	// What the target should hold, per the in-sync holders. First holder in
	// sorted id order wins as the copy source — deterministic for tests.
	want := map[entryRef]*node{}
	for _, id := range ids {
		n := nodes[id]
		if n == target || n.suspect.Load() {
			continue
		}
		infos, err := listKeys(n)
		if err != nil {
			return fmt.Errorf("shardkvs: repair %s: enumerate %s: %w", target.id, id, err)
		}
		for _, ki := range infos {
			if _, dup := want[entryRef{ki.Key, ki.Kind}]; dup {
				continue
			}
			for _, o := range ownersOn(points, ki.Key, r.opts.Replication) {
				if o == target.id {
					want[entryRef{ki.Key, ki.Kind}] = n
					break
				}
			}
		}
	}
	stats.KeysExamined += len(want)

	// Sweep first: entries the target holds that no in-sync holder backs were
	// deleted while it was down. Delete removes every kind of the key, so the
	// copy pass below must (and does) run after, restoring kinds that should
	// survive. Skipped when the key has no in-sync owner left to vouch for
	// the deletion — then the target may hold the last copy.
	held, err := listKeys(target)
	if err != nil {
		return fmt.Errorf("shardkvs: repair %s: enumerate target: %w", target.id, err)
	}
	for _, ki := range held {
		if _, ok := want[entryRef{ki.Key, ki.Kind}]; ok {
			continue
		}
		vouched := false
		for _, o := range ownersOn(points, ki.Key, r.opts.Replication) {
			if n := nodes[o]; n != nil && n != target && !n.suspect.Load() {
				vouched = true
				break
			}
		}
		if !vouched {
			continue
		}
		err := func() error {
			defer r.writeFence(ki.Key)()
			return target.store.Delete(ki.Key)
		}()
		if err != nil {
			return fmt.Errorf("shardkvs: repair %s: sweep %q: %w", target.id, ki.Key, err)
		}
		stats.CopiesDropped++
	}

	// Copy pass: overwrite each owned entry from its in-sync source.
	refs := make([]entryRef, 0, len(want))
	for e := range want {
		refs = append(refs, e)
	}
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].key != refs[j].key {
			return refs[i].key < refs[j].key
		}
		return refs[i].kind < refs[j].kind
	})
	moved := map[string]bool{}
	for _, e := range refs {
		src := want[e]
		err := func() error {
			defer r.writeFence(e.key)()
			var n int64
			var err error
			if e.kind == kvs.KindSet {
				// copyKind only adds members; a revived set needs stale
				// members removed too.
				n, err = repairSet(src.store, target.store, e.key)
			} else {
				n, err = copyKind(src.store, target.store, e.key, e.kind)
			}
			if err != nil {
				return err
			}
			stats.CopiesWritten++
			stats.BytesMoved += n
			return nil
		}()
		if err != nil {
			return fmt.Errorf("shardkvs: repair %q %s→%s: %w", e.key, src.id, target.id, err)
		}
		if !moved[e.key] {
			moved[e.key] = true
			stats.KeysMoved++
		}
	}
	return nil
}

// repairSet converges dst's set at key onto src's: members dst lacks are
// added, members dst holds that src lacks are removed.
func repairSet(src, dst kvs.Store, key string) (int64, error) {
	wantM, err := src.SMembers(key)
	if err != nil {
		return 0, err
	}
	haveM, err := dst.SMembers(key)
	if err != nil {
		return 0, err
	}
	have := make(map[string]bool, len(haveM))
	for _, m := range haveM {
		have[m] = true
	}
	want := make(map[string]bool, len(wantM))
	var bytes int64
	for _, m := range wantM {
		want[m] = true
		if !have[m] {
			if _, err := dst.SAdd(key, m); err != nil {
				return bytes, err
			}
			bytes += int64(len(m))
		}
	}
	for _, m := range haveM {
		if !want[m] {
			if _, err := dst.SRem(key, m); err != nil {
				return bytes, err
			}
		}
	}
	return bytes, nil
}
