package sched

import (
	"strconv"
	"testing"
	"time"

	"faasm.dev/faasm/internal/kvs"
	"faasm.dev/faasm/internal/kvs/kvstest"
)

func TestColdStartAdvertisesWarm(t *testing.T) {
	store := kvs.NewEngine()
	s := New("host-1", store, 10)
	d, err := s.Schedule("fn")
	if err != nil {
		t.Fatal(err)
	}
	if d.Placement != PlaceLocalCold {
		t.Fatalf("first call placement = %v", d.Placement)
	}
	hosts, _ := s.WarmHosts("fn")
	if len(hosts) != 1 || hosts[0] != "host-1" {
		t.Fatalf("warm set = %v", hosts)
	}
	if s.Stats.ColdStart.Load() != 1 {
		t.Fatal("cold start not counted")
	}
}

func TestWarmLocalPreferred(t *testing.T) {
	store := kvs.NewEngine()
	s := New("host-1", store, 10)
	s.Schedule("fn") // cold
	s.NoteWarm("fn", 1)
	d, _ := s.Schedule("fn")
	if d.Placement != PlaceLocalWarm {
		t.Fatalf("warm placement = %v", d.Placement)
	}
}

func TestForwardToWarmPeer(t *testing.T) {
	store := kvs.NewEngine()
	a := New("host-a", store, 10)
	b := New("host-b", store, 10)
	// Host B is warm for fn.
	b.Schedule("fn")
	b.NoteWarm("fn", 1)
	// Host A has nothing: it must share with B rather than cold-start.
	d, err := a.Schedule("fn")
	if err != nil {
		t.Fatal(err)
	}
	if d.Placement != PlaceForward || d.TargetHost != "host-b" {
		t.Fatalf("decision = %+v", d)
	}
	if a.Stats.Forwarded.Load() != 1 {
		t.Fatal("forward not counted")
	}
}

func TestForwardRoundRobinAcrossPeers(t *testing.T) {
	store := kvs.NewEngine()
	for _, h := range []string{"host-b", "host-c"} {
		p := New(h, store, 10)
		p.Schedule("fn")
		p.NoteWarm("fn", 1)
	}
	a := New("host-a", store, 10)
	seen := map[string]int{}
	for i := 0; i < 10; i++ {
		d, _ := a.Schedule("fn")
		if d.Placement != PlaceForward {
			t.Fatalf("placement = %v", d.Placement)
		}
		seen[d.TargetHost]++
	}
	if seen["host-b"] != 5 || seen["host-c"] != 5 {
		t.Fatalf("round robin skew: %v", seen)
	}
}

func TestAtCapacitySharesInsteadOfQueueing(t *testing.T) {
	store := kvs.NewEngine()
	a := New("host-a", store, 1)
	b := New("host-b", store, 10)
	a.Schedule("fn")
	a.NoteWarm("fn", 1)
	b.Schedule("fn")
	b.NoteWarm("fn", 1)
	// Saturate host A.
	a.Begin()
	d, _ := a.Schedule("fn")
	if d.Placement != PlaceForward || d.TargetHost != "host-b" {
		t.Fatalf("saturated placement = %+v", d)
	}
	a.End()
	// With capacity back, it prefers local again.
	d, _ = a.Schedule("fn")
	if d.Placement != PlaceLocalWarm {
		t.Fatalf("freed placement = %v", d.Placement)
	}
}

func TestSaturatedWithNoPeersRunsLocally(t *testing.T) {
	store := kvs.NewEngine()
	a := New("host-a", store, 1)
	a.Schedule("fn")
	a.NoteWarm("fn", 1)
	a.Begin()
	d, _ := a.Schedule("fn")
	if d.Placement != PlaceLocalWarm {
		t.Fatalf("lone saturated host placement = %v", d.Placement)
	}
}

func TestRetreatClearsWarmSet(t *testing.T) {
	store := kvs.NewEngine()
	a := New("host-a", store, 10)
	a.Schedule("fn")
	a.NoteWarm("fn", 2)
	// Acquiring warm Faaslets for execution is not a retreat: the host
	// still owns them, so it must stay advertised.
	a.NoteEvicted("fn", 2)
	hosts, _ := a.WarmHosts("fn")
	if len(hosts) != 1 {
		t.Fatalf("busy Faaslets removed warm entry: %v", hosts)
	}
	// Retreat — the function's last Faaslet is gone — clears the entry.
	a.Retreat("fn")
	hosts, _ = a.WarmHosts("fn")
	if len(hosts) != 0 {
		t.Fatalf("retreat left warm entry: %v", hosts)
	}
	if a.WarmCount("fn") != 0 {
		t.Fatalf("warm count after retreat = %d", a.WarmCount("fn"))
	}
	// A peer now cold-starts rather than forwarding to a dead host.
	b := New("host-b", store, 10)
	d, _ := b.Schedule("fn")
	if d.Placement != PlaceLocalCold {
		t.Fatalf("post-retreat placement = %v", d.Placement)
	}
}

func TestInflightAccounting(t *testing.T) {
	s := New("h", kvs.NewEngine(), 4)
	s.Begin()
	s.Begin()
	if s.Inflight() != 2 {
		t.Fatalf("inflight = %d", s.Inflight())
	}
	s.End()
	s.End()
	s.End() // extra End clamps at zero
	if s.Inflight() != 0 {
		t.Fatalf("inflight after ends = %d", s.Inflight())
	}
}

func TestWarmSteadyStateDoesZeroGlobalOps(t *testing.T) {
	store := kvstest.NewCountingStore(kvs.NewEngine())
	s := New("host-1", store, 10)
	// Cold start + first warm transition pay their write-throughs.
	s.Schedule("fn")
	s.NoteWarm("fn", 1)
	before := store.Ops()
	// Steady state: acquire (NoteEvicted) / release (NoteWarm) around every
	// warm local decision must touch the global tier zero times.
	for k := 0; k < 1000; k++ {
		d, err := s.Schedule("fn")
		if err != nil || d.Placement != PlaceLocalWarm {
			t.Fatalf("steady-state decision %d: %+v %v", k, d, err)
		}
		s.NoteEvicted("fn", 1)
		s.NoteWarm("fn", 1)
	}
	if ops := store.Ops() - before; ops != 0 {
		t.Fatalf("steady-state warm scheduling performed %d global ops, want 0", ops)
	}
}

func TestPeerCacheServesMissesWithinTTL(t *testing.T) {
	store := kvstest.NewCountingStore(kvs.NewEngine())
	b := New("host-b", store, 10)
	b.Schedule("fn")
	b.NoteWarm("fn", 1)

	a := New("host-a", store, 10)
	a.PeerCacheTTL = time.Hour
	before := store.Ops()
	for k := 0; k < 100; k++ {
		d, err := a.Schedule("fn")
		if err != nil || d.Placement != PlaceForward || d.TargetHost != "host-b" {
			t.Fatalf("forward %d: %+v %v", k, d, err)
		}
	}
	// One SMembers plus one batched lease read to populate the cache; the
	// other 99 misses are served from it.
	if ops := store.Ops() - before; ops != 2 {
		t.Fatalf("100 forwards performed %d global ops, want 2 (SMembers + lease MGet)", ops)
	}
}

func TestPeerCacheExpiresAndRefreshes(t *testing.T) {
	store := kvs.NewEngine()
	b := New("host-b", store, 10)
	b.Schedule("fn")
	b.NoteWarm("fn", 1)

	a := New("host-a", store, 10)
	a.PeerCacheTTL = time.Nanosecond // effectively always stale
	if d, _ := a.Schedule("fn"); d.Placement != PlaceForward {
		t.Fatalf("initial forward: %+v", d)
	}
	// Host B retreats; with an expired cache, A must observe it and
	// cold-start instead of forwarding to a host with nothing warm.
	b.Retreat("fn")
	time.Sleep(time.Millisecond)
	d, _ := a.Schedule("fn")
	if d.Placement != PlaceLocalCold {
		t.Fatalf("post-retreat placement = %v (stale cache?)", d.Placement)
	}
}

func TestInvalidatePeersForcesRefresh(t *testing.T) {
	store := kvs.NewEngine()
	b := New("host-b", store, 10)
	b.Schedule("fn")
	b.NoteWarm("fn", 1)

	a := New("host-a", store, 10)
	a.PeerCacheTTL = time.Hour
	if d, _ := a.Schedule("fn"); d.Placement != PlaceForward {
		t.Fatal("expected forward")
	}
	b.Retreat("fn")
	// The hour-long cache still names host-b ...
	if d, _ := a.Schedule("fn"); d.Placement != PlaceForward {
		t.Fatal("expected stale forward")
	}
	// ... until the transport failure path invalidates it.
	a.InvalidatePeers("fn")
	d, _ := a.Schedule("fn")
	if d.Placement != PlaceLocalCold {
		t.Fatalf("post-invalidate placement = %v", d.Placement)
	}
}

func TestAdvertiseWriteThroughHappensOnce(t *testing.T) {
	store := kvstest.NewCountingStore(kvs.NewEngine())
	s := New("host-1", store, 10)
	s.NoteWarm("fn", 1)
	if !s.Advertised("fn") {
		t.Fatal("first NoteWarm did not advertise")
	}
	before := store.Ops()
	for k := 0; k < 50; k++ {
		s.NoteWarm("fn", 1)
	}
	if ops := store.Ops() - before; ops != 0 {
		t.Fatalf("repeat NoteWarm performed %d global ops, want 0", ops)
	}
}

// --- Peer liveness (leased warm-set entries) ---

func TestDeadPeerDisappearsWithinLeaseTTL(t *testing.T) {
	store := kvs.NewEngine()
	b := New("host-b", store, 10)
	b.LeaseTTL = 40 * time.Millisecond
	b.Schedule("fn") // advertises with a 40ms lease; no heartbeat loop runs
	b.NoteWarm("fn", 1)

	a := New("host-a", store, 10)
	a.PeerCacheTTL = 5 * time.Millisecond
	if d, _ := a.Schedule("fn"); d.Placement != PlaceForward || d.TargetHost != "host-b" {
		t.Fatalf("live peer not used: %+v", d)
	}
	// host-b "crashes": it never heartbeats again. After one lease TTL it
	// must vanish from forwarding, from WarmHosts, and from the global set.
	time.Sleep(60 * time.Millisecond)
	d, err := a.Schedule("fn")
	if err != nil {
		t.Fatal(err)
	}
	if d.Placement != PlaceLocalCold {
		t.Fatalf("dead peer still receives forwards: %+v", d)
	}
	if hosts, _ := a.WarmHosts("fn"); len(hosts) != 1 || hosts[0] != "host-a" {
		t.Fatalf("WarmHosts after peer death = %v, want only the cold-started host-a", hosts)
	}
	// The observer evicted the stale entry from the global set itself.
	raw, _ := store.SMembers("sched/warm/fn")
	for _, h := range raw {
		if h == "host-b" {
			t.Fatalf("dead host still in global warm set: %v", raw)
		}
	}
}

func TestHeartbeatKeepsPeerAlive(t *testing.T) {
	store := kvs.NewEngine()
	b := New("host-b", store, 10)
	b.LeaseTTL = 30 * time.Millisecond
	b.Schedule("fn")
	b.NoteWarm("fn", 1)
	b.StartHeartbeat()
	defer b.StopHeartbeat()

	a := New("host-a", store, 10)
	a.PeerCacheTTL = 5 * time.Millisecond
	// Several lease TTLs pass; the beating host must keep receiving
	// forwards the whole time.
	deadline := time.Now().Add(150 * time.Millisecond)
	for time.Now().Before(deadline) {
		d, err := a.Schedule("fn")
		if err != nil {
			t.Fatal(err)
		}
		if d.Placement != PlaceForward || d.TargetHost != "host-b" {
			t.Fatalf("beating peer dropped: %+v", d)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestHeartbeatReassertsEvictedWarmEntry(t *testing.T) {
	store := kvs.NewEngine()
	b := New("host-b", store, 10)
	b.LeaseTTL = 30 * time.Millisecond
	b.Schedule("fn")
	b.NoteWarm("fn", 1)
	b.StartHeartbeat()
	defer b.StopHeartbeat()
	// Simulate a peer wrongly evicting host-b (e.g. a pause expired the
	// lease): the next beat must put the entry back.
	store.SRem("sched/warm/fn", "host-b")
	deadline := time.Now().Add(500 * time.Millisecond)
	for {
		hosts, _ := store.SMembers("sched/warm/fn")
		if len(hosts) == 1 && hosts[0] == "host-b" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("warm entry not re-asserted by heartbeat: %v", hosts)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestStopHeartbeatLetsLeaseExpire(t *testing.T) {
	store := kvs.NewEngine()
	b := New("host-b", store, 10)
	b.LeaseTTL = 30 * time.Millisecond
	b.Schedule("fn")
	b.NoteWarm("fn", 1)
	b.StartHeartbeat()
	b.StopHeartbeat()

	a := New("host-a", store, 10)
	a.PeerCacheTTL = 5 * time.Millisecond
	time.Sleep(50 * time.Millisecond)
	if d, _ := a.Schedule("fn"); d.Placement != PlaceLocalCold {
		t.Fatalf("stopped host still receives forwards: %+v", d)
	}
}

// offsetClock skews a host's view of wall time by a fixed delta; Sleep is
// real. It models a cluster machine whose clock drifted.
type offsetClock struct{ d time.Duration }

func (c offsetClock) Now() time.Time        { return time.Now().Add(c.d) }
func (c offsetClock) Sleep(d time.Duration) { time.Sleep(d) }

// TestClockSkewDoesNotAffectLiveness is the tier-clock regression test:
// hosts whose clocks disagree by 10× the lease TTL must neither falsely
// evict a live peer nor retain a killed one past ~1 TTL. The lease is a
// SetEx'd presence key judged only on the tier's clock, so host clocks
// cannot enter the decision. Against the previous writer-clock design —
// the writer stamped its own expiry instant and observers compared it to
// their clock — this test fails on both counts: the fast observer below
// would judge every stamp long expired (false eviction), and a slow
// observer would keep a dead host's stamp "live" for ~11 TTLs.
func TestClockSkewDoesNotAffectLiveness(t *testing.T) {
	store := kvs.NewEngine()
	const ttl = 50 * time.Millisecond
	const skew = 10 * ttl

	b := New("host-b", store, 10)
	b.LeaseTTL = ttl
	b.SetClock(offsetClock{-skew}) // writer runs 10 TTLs behind
	b.Schedule("fn")
	b.NoteWarm("fn", 1)
	b.StartHeartbeat()
	defer b.StopHeartbeat()

	a := New("host-a", store, 10)
	a.LeaseTTL = ttl
	a.PeerCacheTTL = 5 * time.Millisecond
	a.SetClock(offsetClock{+skew}) // observer runs 10 TTLs ahead

	// No false eviction: across several lease TTLs the far-ahead observer
	// keeps forwarding to the far-behind (but beating) writer.
	deadline := time.Now().Add(4 * ttl)
	for time.Now().Before(deadline) {
		d, err := a.Schedule("fn")
		if err != nil {
			t.Fatal(err)
		}
		if d.Placement != PlaceForward || d.TargetHost != "host-b" {
			t.Fatalf("clock skew evicted a live peer: %+v", d)
		}
		time.Sleep(ttl / 10)
	}

	// No retention: the killed host's lease expires on the tier's clock,
	// so it drains in ~1 TTL regardless of anyone's skew.
	b.StopHeartbeat()
	time.Sleep(2 * ttl)
	d, err := a.Schedule("fn")
	if err != nil {
		t.Fatal(err)
	}
	if d.Placement != PlaceLocalCold {
		t.Fatalf("killed host retained past its lease under clock skew: %+v", d)
	}
}

// TestLeaseRecordIsTierJudged pins the lease format: a SetEx'd presence
// marker with a tier-side TTL and nothing a clock comparison could latch
// onto.
func TestLeaseRecordIsTierJudged(t *testing.T) {
	store := kvs.NewEngine()
	b := New("host-b", store, 10)
	b.LeaseTTL = time.Second
	b.Schedule("fn")
	rec, err := store.Get("sched/alive/host-b")
	if err != nil || len(rec) == 0 {
		t.Fatalf("no lease written: %q %v", rec, err)
	}
	if _, err := strconv.ParseInt(string(rec), 10, 64); err == nil {
		t.Fatalf("lease record %q parses as a clock stamp; liveness must be tier-judged", rec)
	}
	ttl, err := store.TTL("sched/alive/host-b")
	if err != nil || ttl <= 0 || ttl > time.Second {
		t.Fatalf("lease ttl = %v %v, want a tier-side expiry in (0, 1s]", ttl, err)
	}
}

// TestLegacyStampRecordReadsDead pins the removal of the one-release
// mixed-version fallback: an old-format writer-clock stamp (a plain-Set
// decimal unix-nanos record that never expires tier-side) no longer counts
// as presence — only the current leaseMark payload does.
func TestLegacyStampRecordReadsDead(t *testing.T) {
	store := kvs.NewEngine()
	// A legacy host advertised and stamped its lease the old way.
	store.SAdd("sched/warm/fn", "host-legacy")
	store.Set("sched/alive/host-legacy", []byte("1700000000000000000"))

	a := New("host-a", store, 10)
	hosts, err := a.WarmHosts("fn")
	if err != nil || len(hosts) != 0 {
		t.Fatalf("legacy-stamped host counted live: %v %v", hosts, err)
	}
}

func TestWeightedForwardPrefersFastPeer(t *testing.T) {
	store := kvs.NewEngine()
	for _, h := range []string{"host-b", "host-c"} {
		p := New(h, store, 10)
		p.Schedule("fn")
		p.NoteWarm("fn", 1)
	}
	a := New("host-a", store, 10)
	// Probe both peers: b is 10x faster than c.
	a.ForwardBegin("host-b")
	a.ForwardEnd("host-b", time.Millisecond, true)
	a.ForwardBegin("host-c")
	a.ForwardEnd("host-c", 10*time.Millisecond, true)
	for i := 0; i < 20; i++ {
		d, err := a.Schedule("fn")
		if err != nil {
			t.Fatal(err)
		}
		if d.Placement != PlaceForward || d.TargetHost != "host-b" {
			t.Fatalf("forward %d went to %q, want fast host-b", i, d.TargetHost)
		}
	}
}

func TestWeightedForwardAvoidsLoadedPeer(t *testing.T) {
	store := kvs.NewEngine()
	for _, h := range []string{"host-b", "host-c"} {
		p := New(h, store, 10)
		p.Schedule("fn")
		p.NoteWarm("fn", 1)
	}
	a := New("host-a", store, 10)
	a.ForwardBegin("host-b")
	a.ForwardEnd("host-b", time.Millisecond, true)
	a.ForwardBegin("host-c")
	a.ForwardEnd("host-c", 2*time.Millisecond, true)
	// Pile in-flight forwards onto the faster peer: score must flip to c.
	for i := 0; i < 4; i++ {
		a.ForwardBegin("host-b")
	}
	d, _ := a.Schedule("fn")
	if d.TargetHost != "host-c" {
		t.Fatalf("loaded fast peer still picked over idle slower one: %+v", d)
	}
	// Load drains: the fast peer wins again.
	for i := 0; i < 4; i++ {
		a.ForwardEnd("host-b", time.Millisecond, true)
	}
	d, _ = a.Schedule("fn")
	if d.TargetHost != "host-b" {
		t.Fatalf("drained fast peer not reselected: %+v", d)
	}
}

func TestUnprobedPeerExploredBeforeProbed(t *testing.T) {
	store := kvs.NewEngine()
	for _, h := range []string{"host-b", "host-c"} {
		p := New(h, store, 10)
		p.Schedule("fn")
		p.NoteWarm("fn", 1)
	}
	a := New("host-a", store, 10)
	// Only host-b probed (and fast): the never-probed host-c must still be
	// explored rather than starved.
	a.ForwardBegin("host-b")
	a.ForwardEnd("host-b", time.Microsecond, true)
	d, _ := a.Schedule("fn")
	if d.TargetHost != "host-c" {
		t.Fatalf("unprobed peer not explored: %+v", d)
	}
}

func TestForwardFailurePenalisesPeer(t *testing.T) {
	store := kvs.NewEngine()
	for _, h := range []string{"host-b", "host-c"} {
		p := New(h, store, 10)
		p.Schedule("fn")
		p.NoteWarm("fn", 1)
	}
	a := New("host-a", store, 10)
	a.ForwardBegin("host-b")
	a.ForwardEnd("host-b", time.Millisecond, true)
	a.ForwardBegin("host-c")
	a.ForwardEnd("host-c", 2*time.Millisecond, true)
	// host-b starts failing: its score inflates past host-c's.
	a.ForwardBegin("host-b")
	a.ForwardEnd("host-b", time.Millisecond, false)
	d, _ := a.Schedule("fn")
	if d.TargetHost != "host-c" {
		t.Fatalf("failing peer still preferred: %+v", d)
	}
}

func TestFastFailureDoesNotScoreDeadPeerBest(t *testing.T) {
	store := kvs.NewEngine()
	for _, h := range []string{"host-b", "host-c"} {
		p := New(h, store, 10)
		p.Schedule("fn")
		p.NoteWarm("fn", 1)
	}
	a := New("host-a", store, 10)
	a.ForwardBegin("host-b")
	a.ForwardEnd("host-b", time.Millisecond, true)
	// host-c dies and refuses connections instantly: the near-zero failed
	// round-trip must not become the best latency estimate in the cluster.
	a.ForwardBegin("host-c")
	a.ForwardEnd("host-c", time.Nanosecond, false)
	if got := a.PeerLatency("host-c"); got < 8*time.Millisecond {
		t.Fatalf("fast failure scored dead peer at %v, want >= 8ms floor", got)
	}
	for i := 0; i < 20; i++ {
		d, err := a.Schedule("fn")
		if err != nil {
			t.Fatal(err)
		}
		if d.TargetHost != "host-b" {
			t.Fatalf("forward %d picked fast-failing dead peer: %+v", i, d)
		}
	}
}

// --- Drain mode (graceful host removal) ---

func TestDrainRetreatsFromWarmSetsAndStopsAdvertising(t *testing.T) {
	store := kvs.NewEngine()
	b := New("host-b", store, 10)
	b.Schedule("fn")
	b.NoteWarm("fn", 1)
	b.Schedule("gn")
	b.NoteWarm("gn", 1)
	if err := b.Drain(); err != nil {
		t.Fatal(err)
	}
	if !b.Draining() {
		t.Fatal("Draining() false after Drain")
	}
	for _, fn := range []string{"fn", "gn"} {
		raw, _ := store.SMembers("sched/warm/" + fn)
		for _, h := range raw {
			if h == "host-b" {
				t.Fatalf("draining host still in %s warm set: %v", fn, raw)
			}
		}
	}
	// Post-drain warm churn must not re-advertise: a draining host never
	// re-attracts traffic.
	b.NoteWarm("fn", 1)
	if b.Advertised("fn") {
		t.Fatal("NoteWarm re-advertised a draining host")
	}
	raw, _ := store.SMembers("sched/warm/fn")
	if len(raw) != 0 {
		t.Fatalf("draining host re-entered warm set: %v", raw)
	}
	// Drain is idempotent.
	if err := b.Drain(); err != nil {
		t.Fatal(err)
	}
}

func TestDrainingHostForwardsNewCallsAway(t *testing.T) {
	store := kvs.NewEngine()
	b := New("host-b", store, 10)
	b.Schedule("fn")
	b.NoteWarm("fn", 1)

	a := New("host-a", store, 10)
	a.Schedule("fn")
	a.NoteWarm("fn", 1)
	a.Drain()
	// Even with warm Faaslets of its own, the draining host hands new calls
	// to the live peer.
	d, err := a.Schedule("fn")
	if err != nil {
		t.Fatal(err)
	}
	if d.Placement != PlaceForward || d.TargetHost != "host-b" {
		t.Fatalf("draining host kept the call: %+v", d)
	}
}

func TestDrainingHostWithNoPeersStillExecutes(t *testing.T) {
	store := kvs.NewEngine()
	a := New("host-a", store, 10)
	a.Schedule("fn")
	a.NoteWarm("fn", 1)
	a.Drain()
	// Last host standing: executing beats failing the call — but it must
	// not advertise while doing so.
	d, err := a.Schedule("fn")
	if err != nil {
		t.Fatal(err)
	}
	if d.Placement == PlaceForward {
		t.Fatalf("peerless draining host forwarded: %+v", d)
	}
	if raw, _ := store.SMembers("sched/warm/fn"); len(raw) != 0 {
		t.Fatalf("peerless draining execution advertised: %v", raw)
	}
}

func TestDrainedLeaseExpiresWithinOneTTL(t *testing.T) {
	store := kvs.NewEngine()
	const ttl = 40 * time.Millisecond
	b := New("host-b", store, 10)
	b.LeaseTTL = ttl
	b.Schedule("fn")
	b.NoteWarm("fn", 1)
	b.StartHeartbeat()
	if rec, _ := store.Get("sched/alive/host-b"); len(rec) == 0 {
		t.Fatal("no lease before drain")
	}
	b.Drain()
	// Heartbeat is a hard no-op now — even called by hand it must not
	// re-arm the lease.
	if err := b.Heartbeat(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(ttl + ttl/2)
	if rec, _ := store.Get("sched/alive/host-b"); len(rec) != 0 {
		t.Fatalf("drained host's lease still live past 1 TTL: %q", rec)
	}
	// And a peer no longer sees it as warm anywhere.
	a := New("host-a", store, 10)
	if hosts, _ := a.WarmHosts("fn"); len(hosts) != 0 {
		t.Fatalf("drained host still warm-visible: %v", hosts)
	}
}

func TestHeartbeatAgeTracksBeats(t *testing.T) {
	store := kvs.NewEngine()
	b := New("host-b", store, 10)
	if b.HeartbeatAge() != 0 {
		t.Fatalf("age before any beat = %v, want 0", b.HeartbeatAge())
	}
	b.Schedule("fn") // advertise writes the lease
	time.Sleep(5 * time.Millisecond)
	if age := b.HeartbeatAge(); age < 5*time.Millisecond || age > time.Minute {
		t.Fatalf("age after advertise = %v", age)
	}
}

func TestRepeatedFailuresSaturateInsteadOfOverflowing(t *testing.T) {
	store := kvs.NewEngine()
	a := New("host-a", store, 10)
	for i := 0; i < 100; i++ {
		a.ForwardBegin("host-b")
		a.ForwardEnd("host-b", time.Millisecond, false)
	}
	got := a.PeerLatency("host-b")
	if got <= 0 || got > time.Hour {
		t.Fatalf("failure penalty overflowed: estimate = %v", got)
	}
}
