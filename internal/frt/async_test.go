package frt

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"faasm.dev/faasm/internal/core"
	"faasm.dev/faasm/internal/kvs"
	"faasm.dev/faasm/internal/mbus"
	"faasm.dev/faasm/internal/queue"
)

// newAsyncInstance builds an instance with the durable queue on and a fast
// consumer cadence, sharing eng so multi-host tests see one tier.
func newAsyncInstance(t *testing.T, host string, eng *kvs.Engine) *Instance {
	t.Helper()
	inst := New(Config{
		Host:          host,
		Store:         eng,
		AsyncQueue:    true,
		QueuePoll:     time.Millisecond,
		QueueLeaseTTL: 200 * time.Millisecond,
	})
	t.Cleanup(inst.Shutdown)
	return inst
}

func TestInvokeAsyncRoundTrip(t *testing.T) {
	inst := newAsyncInstance(t, "h1", kvs.NewEngine())
	inst.RegisterNative("upper", func(ctx *core.Ctx) (int32, error) {
		ctx.WriteOutput(bytes.ToUpper(ctx.Input()))
		return 0, nil
	})
	id, err := inst.InvokeAsync("upper", []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := inst.AwaitAsync(id, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != mbus.CallSucceeded || string(rec.Output) != "HELLO" {
		t.Fatalf("result = %+v", rec)
	}
	if d, err := inst.QueueDepth("upper"); err != nil || d != 0 {
		t.Fatalf("depth after completion = %d %v", d, err)
	}
	if _, err := inst.InvokeAsync("ghost", nil); err == nil {
		t.Fatal("unknown function enqueued")
	}
}

func TestInvokeAsyncChain(t *testing.T) {
	inst := newAsyncInstance(t, "h1", kvs.NewEngine())
	stamp := func(tag string) func(ctx *core.Ctx) (int32, error) {
		return func(ctx *core.Ctx) (int32, error) {
			ctx.WriteOutput(append(ctx.Input(), []byte("|"+tag)...))
			return 0, nil
		}
	}
	inst.RegisterNative("a", stamp("a"))
	inst.RegisterNative("b", stamp("b"))
	if err := inst.ChainThen("a", "b"); err != nil {
		t.Fatal(err)
	}
	root, err := inst.InvokeAsync("a", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	recA, err := inst.AwaitAsync(root, 10*time.Second)
	if err != nil || recA.ChildID == 0 {
		t.Fatalf("stage a: %+v %v", recA, err)
	}
	recB, err := inst.AwaitAsync(recA.ChildID, 10*time.Second)
	if err != nil || recB.ParentID != root || string(recB.Output) != "x|a|b" {
		t.Fatalf("stage b: %+v %v", recB, err)
	}
}

func TestAsyncDisabledErrors(t *testing.T) {
	inst := New(Config{Host: "h1"})
	t.Cleanup(inst.Shutdown)
	if _, err := inst.InvokeAsync("f", nil); !errors.Is(err, ErrAsyncDisabled) {
		t.Fatalf("InvokeAsync: %v", err)
	}
	if _, err := inst.AwaitAsync(1, time.Second); !errors.Is(err, ErrAsyncDisabled) {
		t.Fatalf("AwaitAsync: %v", err)
	}
	if err := inst.ChainThen("a", "b"); !errors.Is(err, ErrAsyncDisabled) {
		t.Fatalf("ChainThen: %v", err)
	}
	if _, err := inst.QueueDepth("a"); !errors.Is(err, ErrAsyncDisabled) {
		t.Fatalf("QueueDepth: %v", err)
	}
	if inst.Queue() != nil {
		t.Fatal("queue present without AsyncQueue")
	}
}

func TestKilledHostQueuedWorkRedeliveredToPeer(t *testing.T) {
	// Two hosts over one tier; the executing host is killed, so its claimed
	// item must redeliver to the survivor after lease expiry and the client
	// still sees exactly one successful completion.
	eng := kvs.NewEngine()
	h1 := newAsyncInstance(t, "h1", eng)
	h2 := newAsyncInstance(t, "h2", eng)

	started := make(chan string, 8)
	release := make(chan struct{})
	mkFn := func(inst *Instance) func(ctx *core.Ctx) (int32, error) {
		return func(ctx *core.Ctx) (int32, error) {
			started <- inst.Host()
			if inst.Host() == "h1" {
				<-release // hold the item in flight while h1 is killed
			}
			ctx.WriteOutput([]byte("done"))
			return 0, nil
		}
	}
	h1.RegisterNative("work", mkFn(h1))
	// Delay h2's deployment so h1 deterministically claims first.
	id, err := h1.InvokeAsync("work", nil)
	if err != nil {
		t.Fatal(err)
	}
	first := <-started
	if first != "h1" {
		t.Fatalf("first claim on %s", first)
	}
	h1.Kill()
	close(release) // h1 finishes, but being killed it must abandon the result
	h2.RegisterNative("work", mkFn(h2))

	rec, err := h2.AwaitAsync(id, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != mbus.CallSucceeded || string(rec.Output) != "done" {
		t.Fatalf("result = %+v", rec)
	}
	if got := h2.Queue().Stats().Redelivered; got != 1 {
		t.Fatalf("redelivered = %d, want 1", got)
	}
	// A killed host refuses new async submissions outright.
	if _, err := h1.InvokeAsync("work", nil); err == nil {
		t.Fatal("killed host accepted a submit")
	}
}

func TestExecuteQueuedReportsConsumerDeadWhenKilled(t *testing.T) {
	inst := newAsyncInstance(t, "h1", kvs.NewEngine())
	inst.RegisterNative("noop", func(ctx *core.Ctx) (int32, error) { return 0, nil })
	inst.Kill()
	if _, _, err := inst.ExecuteQueued("noop", nil, 0); !errors.Is(err, queue.ErrConsumerDead) {
		t.Fatalf("ExecuteQueued on killed host: %v", err)
	}
}
