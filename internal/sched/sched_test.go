package sched

import (
	"testing"
	"time"

	"faasm.dev/faasm/internal/kvs"
	"faasm.dev/faasm/internal/kvs/kvstest"
)

func TestColdStartAdvertisesWarm(t *testing.T) {
	store := kvs.NewEngine()
	s := New("host-1", store, 10)
	d, err := s.Schedule("fn")
	if err != nil {
		t.Fatal(err)
	}
	if d.Placement != PlaceLocalCold {
		t.Fatalf("first call placement = %v", d.Placement)
	}
	hosts, _ := s.WarmHosts("fn")
	if len(hosts) != 1 || hosts[0] != "host-1" {
		t.Fatalf("warm set = %v", hosts)
	}
	if s.Stats.ColdStart.Load() != 1 {
		t.Fatal("cold start not counted")
	}
}

func TestWarmLocalPreferred(t *testing.T) {
	store := kvs.NewEngine()
	s := New("host-1", store, 10)
	s.Schedule("fn") // cold
	s.NoteWarm("fn", 1)
	d, _ := s.Schedule("fn")
	if d.Placement != PlaceLocalWarm {
		t.Fatalf("warm placement = %v", d.Placement)
	}
}

func TestForwardToWarmPeer(t *testing.T) {
	store := kvs.NewEngine()
	a := New("host-a", store, 10)
	b := New("host-b", store, 10)
	// Host B is warm for fn.
	b.Schedule("fn")
	b.NoteWarm("fn", 1)
	// Host A has nothing: it must share with B rather than cold-start.
	d, err := a.Schedule("fn")
	if err != nil {
		t.Fatal(err)
	}
	if d.Placement != PlaceForward || d.TargetHost != "host-b" {
		t.Fatalf("decision = %+v", d)
	}
	if a.Stats.Forwarded.Load() != 1 {
		t.Fatal("forward not counted")
	}
}

func TestForwardRoundRobinAcrossPeers(t *testing.T) {
	store := kvs.NewEngine()
	for _, h := range []string{"host-b", "host-c"} {
		p := New(h, store, 10)
		p.Schedule("fn")
		p.NoteWarm("fn", 1)
	}
	a := New("host-a", store, 10)
	seen := map[string]int{}
	for i := 0; i < 10; i++ {
		d, _ := a.Schedule("fn")
		if d.Placement != PlaceForward {
			t.Fatalf("placement = %v", d.Placement)
		}
		seen[d.TargetHost]++
	}
	if seen["host-b"] != 5 || seen["host-c"] != 5 {
		t.Fatalf("round robin skew: %v", seen)
	}
}

func TestAtCapacitySharesInsteadOfQueueing(t *testing.T) {
	store := kvs.NewEngine()
	a := New("host-a", store, 1)
	b := New("host-b", store, 10)
	a.Schedule("fn")
	a.NoteWarm("fn", 1)
	b.Schedule("fn")
	b.NoteWarm("fn", 1)
	// Saturate host A.
	a.Begin()
	d, _ := a.Schedule("fn")
	if d.Placement != PlaceForward || d.TargetHost != "host-b" {
		t.Fatalf("saturated placement = %+v", d)
	}
	a.End()
	// With capacity back, it prefers local again.
	d, _ = a.Schedule("fn")
	if d.Placement != PlaceLocalWarm {
		t.Fatalf("freed placement = %v", d.Placement)
	}
}

func TestSaturatedWithNoPeersRunsLocally(t *testing.T) {
	store := kvs.NewEngine()
	a := New("host-a", store, 1)
	a.Schedule("fn")
	a.NoteWarm("fn", 1)
	a.Begin()
	d, _ := a.Schedule("fn")
	if d.Placement != PlaceLocalWarm {
		t.Fatalf("lone saturated host placement = %v", d.Placement)
	}
}

func TestRetreatClearsWarmSet(t *testing.T) {
	store := kvs.NewEngine()
	a := New("host-a", store, 10)
	a.Schedule("fn")
	a.NoteWarm("fn", 2)
	// Acquiring warm Faaslets for execution is not a retreat: the host
	// still owns them, so it must stay advertised.
	a.NoteEvicted("fn", 2)
	hosts, _ := a.WarmHosts("fn")
	if len(hosts) != 1 {
		t.Fatalf("busy Faaslets removed warm entry: %v", hosts)
	}
	// Retreat — the function's last Faaslet is gone — clears the entry.
	a.Retreat("fn")
	hosts, _ = a.WarmHosts("fn")
	if len(hosts) != 0 {
		t.Fatalf("retreat left warm entry: %v", hosts)
	}
	if a.WarmCount("fn") != 0 {
		t.Fatalf("warm count after retreat = %d", a.WarmCount("fn"))
	}
	// A peer now cold-starts rather than forwarding to a dead host.
	b := New("host-b", store, 10)
	d, _ := b.Schedule("fn")
	if d.Placement != PlaceLocalCold {
		t.Fatalf("post-retreat placement = %v", d.Placement)
	}
}

func TestInflightAccounting(t *testing.T) {
	s := New("h", kvs.NewEngine(), 4)
	s.Begin()
	s.Begin()
	if s.Inflight() != 2 {
		t.Fatalf("inflight = %d", s.Inflight())
	}
	s.End()
	s.End()
	s.End() // extra End clamps at zero
	if s.Inflight() != 0 {
		t.Fatalf("inflight after ends = %d", s.Inflight())
	}
}

func TestWarmSteadyStateDoesZeroGlobalOps(t *testing.T) {
	store := kvstest.NewCountingStore(kvs.NewEngine())
	s := New("host-1", store, 10)
	// Cold start + first warm transition pay their write-throughs.
	s.Schedule("fn")
	s.NoteWarm("fn", 1)
	before := store.Ops()
	// Steady state: acquire (NoteEvicted) / release (NoteWarm) around every
	// warm local decision must touch the global tier zero times.
	for k := 0; k < 1000; k++ {
		d, err := s.Schedule("fn")
		if err != nil || d.Placement != PlaceLocalWarm {
			t.Fatalf("steady-state decision %d: %+v %v", k, d, err)
		}
		s.NoteEvicted("fn", 1)
		s.NoteWarm("fn", 1)
	}
	if ops := store.Ops() - before; ops != 0 {
		t.Fatalf("steady-state warm scheduling performed %d global ops, want 0", ops)
	}
}

func TestPeerCacheServesMissesWithinTTL(t *testing.T) {
	store := kvstest.NewCountingStore(kvs.NewEngine())
	b := New("host-b", store, 10)
	b.Schedule("fn")
	b.NoteWarm("fn", 1)

	a := New("host-a", store, 10)
	a.PeerCacheTTL = time.Hour
	before := store.Ops()
	for k := 0; k < 100; k++ {
		d, err := a.Schedule("fn")
		if err != nil || d.Placement != PlaceForward || d.TargetHost != "host-b" {
			t.Fatalf("forward %d: %+v %v", k, d, err)
		}
	}
	// One SMembers to populate the cache; the other 99 misses are served
	// from it.
	if ops := store.Ops() - before; ops != 1 {
		t.Fatalf("100 forwards performed %d global ops, want 1", ops)
	}
}

func TestPeerCacheExpiresAndRefreshes(t *testing.T) {
	store := kvs.NewEngine()
	b := New("host-b", store, 10)
	b.Schedule("fn")
	b.NoteWarm("fn", 1)

	a := New("host-a", store, 10)
	a.PeerCacheTTL = time.Nanosecond // effectively always stale
	if d, _ := a.Schedule("fn"); d.Placement != PlaceForward {
		t.Fatalf("initial forward: %+v", d)
	}
	// Host B retreats; with an expired cache, A must observe it and
	// cold-start instead of forwarding to a host with nothing warm.
	b.Retreat("fn")
	time.Sleep(time.Millisecond)
	d, _ := a.Schedule("fn")
	if d.Placement != PlaceLocalCold {
		t.Fatalf("post-retreat placement = %v (stale cache?)", d.Placement)
	}
}

func TestInvalidatePeersForcesRefresh(t *testing.T) {
	store := kvs.NewEngine()
	b := New("host-b", store, 10)
	b.Schedule("fn")
	b.NoteWarm("fn", 1)

	a := New("host-a", store, 10)
	a.PeerCacheTTL = time.Hour
	if d, _ := a.Schedule("fn"); d.Placement != PlaceForward {
		t.Fatal("expected forward")
	}
	b.Retreat("fn")
	// The hour-long cache still names host-b ...
	if d, _ := a.Schedule("fn"); d.Placement != PlaceForward {
		t.Fatal("expected stale forward")
	}
	// ... until the transport failure path invalidates it.
	a.InvalidatePeers("fn")
	d, _ := a.Schedule("fn")
	if d.Placement != PlaceLocalCold {
		t.Fatalf("post-invalidate placement = %v", d.Placement)
	}
}

func TestAdvertiseWriteThroughHappensOnce(t *testing.T) {
	store := kvstest.NewCountingStore(kvs.NewEngine())
	s := New("host-1", store, 10)
	s.NoteWarm("fn", 1)
	if !s.Advertised("fn") {
		t.Fatal("first NoteWarm did not advertise")
	}
	before := store.Ops()
	for k := 0; k < 50; k++ {
		s.NoteWarm("fn", 1)
	}
	if ops := store.Ops() - before; ops != 0 {
		t.Fatalf("repeat NoteWarm performed %d global ops, want 0", ops)
	}
}
