// Command faasm-bench regenerates the paper's tables and figures on this
// machine. Each subcommand corresponds to one table or figure of the
// evaluation (§6); see DESIGN.md for the per-experiment index and
// EXPERIMENTS.md for recorded paper-vs-measured results.
//
// Usage:
//
//	faasm-bench all            # every experiment (minutes)
//	faasm-bench table1|table3|table3-python
//	faasm-bench fig6|fig6-small|fig7|fig7b|fig8|fig9a|fig9b|fig10
//	faasm-bench -quick <id>    # reduced sweeps for a fast pass
//	faasm-bench -csv <id>      # raw CSV instead of the text table
//	faasm-bench -json <id>     # machine-readable results (one JSON object
//	                           # per experiment, for the BENCH_*.json
//	                           # result trajectory)
package main

import (
	"flag"
	"fmt"
	"os"

	"faasm.dev/faasm/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "reduced sweeps (seconds instead of minutes)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of aligned tables")
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	opts := experiments.Options{Quick: *quick}

	table := map[string]func(experiments.Options) *experiments.Report{
		"table1":        experiments.Table1,
		"table3":        experiments.Table3,
		"table3-python": experiments.Table3Python,
		"fig6":          experiments.Fig6,
		"fig6-small":    experiments.Fig6Small,
		"fig7":          experiments.Fig7,
		"fig7b":         experiments.Fig7CDF,
		"fig8":          experiments.Fig8,
		"fig9a":         experiments.Fig9a,
		"fig9b":         experiments.Fig9b,
		"fig10":         experiments.Fig10,
		"state-scale":   experiments.StateScale,
		"invoke-scale":  experiments.InvokeScale,
		"elastic-sched": experiments.Elasticity,
		"state-chaos":   experiments.StateChaos,
		"locality":      experiments.Locality,
		"autoscale":     experiments.Autoscale,
		"async-queue":   experiments.AsyncQueue,
	}
	order := []string{"table1", "table3", "table3-python", "fig6", "fig6-small",
		"fig7", "fig7b", "fig8", "fig9a", "fig9b", "fig10", "state-scale", "invoke-scale",
		"elastic-sched", "state-chaos", "locality", "autoscale", "async-queue"}

	ids := flag.Args()
	if len(ids) == 1 && ids[0] == "all" {
		ids = order
	}
	for _, id := range ids {
		run, ok := table[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
			usage()
			os.Exit(2)
		}
		report := run(opts)
		switch {
		case *jsonOut:
			b, err := report.JSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "encode %s: %v\n", id, err)
				os.Exit(1)
			}
			fmt.Printf("%s\n", b)
		case *csv:
			fmt.Print(report.CSV())
		default:
			report.Fprint(os.Stdout)
		}
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: faasm-bench [-quick] [-csv] [-json] <experiment>...
experiments: all table1 table3 table3-python fig6 fig6-small fig7 fig7b fig8 fig9a fig9b fig10 state-scale invoke-scale elastic-sched state-chaos locality autoscale async-queue`)
}
