// Package wavm implements the secure intermediate representation that
// Faaslets execute: a from-scratch virtual machine with the WebAssembly
// execution model. Functions are compiled (from the wat-like text format or
// the fcc toolchain) into modules, validated exactly once in the trusted
// code-generation phase (Fig 3 of the paper), linked against host-interface
// thunks, and interpreted with full software-fault isolation: every memory
// access is bounds-checked against the instance's linear memory and every
// violation raises a Trap.
//
// The paper uses WAVM (an LLVM-based WebAssembly JIT); Go cannot JIT from
// the standard library, so wavm interprets. The isolation semantics —
// validated modules, linear memory, typed function tables, traps — are the
// same, and the evaluation reproduces the paper's *relative* overheads by
// comparing wavm execution against native execution of identical kernels.
package wavm

import "fmt"

// ValueType is a wasm value type.
type ValueType byte

// Value types.
const (
	I32 ValueType = iota
	I64
	F32
	F64
)

func (v ValueType) String() string {
	switch v {
	case I32:
		return "i32"
	case I64:
		return "i64"
	case F32:
		return "f32"
	case F64:
		return "f64"
	default:
		return fmt.Sprintf("valuetype(%d)", byte(v))
	}
}

// FuncType is a function signature. At most one result, as in the wasm MVP.
type FuncType struct {
	Params  []ValueType
	Results []ValueType
}

// Equal reports signature equality (used by call_indirect type checks).
func (t FuncType) Equal(o FuncType) bool {
	if len(t.Params) != len(o.Params) || len(t.Results) != len(o.Results) {
		return false
	}
	for i := range t.Params {
		if t.Params[i] != o.Params[i] {
			return false
		}
	}
	for i := range t.Results {
		if t.Results[i] != o.Results[i] {
			return false
		}
	}
	return true
}

func (t FuncType) String() string {
	s := "(func"
	if len(t.Params) > 0 {
		s += " (param"
		for _, p := range t.Params {
			s += " " + p.String()
		}
		s += ")"
	}
	if len(t.Results) > 0 {
		s += " (result"
		for _, r := range t.Results {
			s += " " + r.String()
		}
		s += ")"
	}
	return s + ")"
}

// TrapKind enumerates the SFI runtime traps (§2.2: bounds violations and
// invalid function references are implemented as runtime traps).
type TrapKind byte

// Trap kinds.
const (
	TrapUnreachable TrapKind = iota
	TrapOutOfBounds
	TrapDivByZero
	TrapIntOverflow
	TrapInvalidConversion
	TrapUndefinedElement
	TrapIndirectTypeMismatch
	TrapStackOverflow
	TrapFuelExhausted
	TrapHostError
	TrapMemoryLimit
)

func (k TrapKind) String() string {
	switch k {
	case TrapUnreachable:
		return "unreachable"
	case TrapOutOfBounds:
		return "out of bounds memory access"
	case TrapDivByZero:
		return "integer divide by zero"
	case TrapIntOverflow:
		return "integer overflow"
	case TrapInvalidConversion:
		return "invalid conversion to integer"
	case TrapUndefinedElement:
		return "undefined table element"
	case TrapIndirectTypeMismatch:
		return "indirect call type mismatch"
	case TrapStackOverflow:
		return "call stack exhausted"
	case TrapFuelExhausted:
		return "fuel exhausted"
	case TrapHostError:
		return "host function error"
	case TrapMemoryLimit:
		return "memory limit exceeded"
	default:
		return fmt.Sprintf("trap(%d)", byte(k))
	}
}

// Trap is the error raised when a guest violates its isolation constraints
// or executes an illegal operation. Faaslets surface traps as failed calls.
type Trap struct {
	Kind TrapKind
	// Func is the index of the function that trapped, -1 if unknown.
	Func int
	// Wrapped is the underlying cause for host-error traps.
	Wrapped error
}

func (t *Trap) Error() string {
	if t.Wrapped != nil {
		return fmt.Sprintf("wavm: trap in func %d: %s: %v", t.Func, t.Kind, t.Wrapped)
	}
	return fmt.Sprintf("wavm: trap in func %d: %s", t.Func, t.Kind)
}

// Unwrap exposes the cause of host-error traps.
func (t *Trap) Unwrap() error { return t.Wrapped }

func trap(kind TrapKind, fn int) *Trap { return &Trap{Kind: kind, Func: fn} }
