package inference

import (
	"testing"
	"time"

	"faasm.dev/faasm/internal/cluster"
)

func TestModelDeterministic(t *testing.T) {
	w := GenerateWeights(1)
	img := GenerateImage(2)
	c1 := Classify(w, img)
	c2 := Classify(w, img)
	if c1 != c2 {
		t.Fatal("non-deterministic forward pass")
	}
	if c1 < 0 || c1 >= NumClasses {
		t.Fatalf("class out of range: %d", c1)
	}
}

func TestDifferentImagesSpreadAcrossClasses(t *testing.T) {
	// Weight seed 3 yields a well-spread random head (documented in
	// EXPERIMENTS.md; the fig7 harness uses the same seed).
	w := GenerateWeights(3)
	seen := map[int]bool{}
	for s := int64(0); s < 64; s++ {
		seen[Classify(w, GenerateImage(s))] = true
	}
	if len(seen) < 2 {
		t.Fatalf("all images map to one class (degenerate model): %v", seen)
	}
}

func TestServingOnBothPlatforms(t *testing.T) {
	w := GenerateWeights(1)
	img := GenerateImage(9)
	want := Classify(w, img)
	for _, mode := range []cluster.Mode{cluster.ModeFaasm, cluster.ModeBaseline} {
		c := cluster.New(cluster.Config{
			Mode: mode, Hosts: 2, TimeScale: 5000,
			ContainerColdStart: 2 * time.Millisecond,
		})
		if err := c.SetState(KeyWeights, w); err != nil {
			t.Fatal(err)
		}
		if err := c.Register("infer", Guest(Config{})); err != nil {
			t.Fatal(err)
		}
		out, ret, err := c.Call("infer", img)
		if err != nil || ret != 0 {
			t.Fatalf("%v infer: %d %v", mode, ret, err)
		}
		if int(out[0]) != want {
			t.Fatalf("%v classified %d, host-side says %d", mode, out[0], want)
		}
		c.Shutdown()
	}
}

func TestBadImageRejected(t *testing.T) {
	c := cluster.New(cluster.Config{Mode: cluster.ModeFaasm, Hosts: 1, TimeScale: 5000})
	defer c.Shutdown()
	c.SetState(KeyWeights, GenerateWeights(1))
	c.Register("infer", Guest(Config{}))
	_, ret, _ := c.Call("infer", []byte{1, 2, 3})
	if ret == 0 {
		t.Fatal("truncated image accepted")
	}
}

func TestComputePassesSlowExecution(t *testing.T) {
	w := GenerateWeights(1)
	img := GenerateImage(3)
	// More passes, same answer (the WASM-overhead model must not change
	// results).
	g1 := Guest(Config{ComputePasses: 1})
	g3 := Guest(Config{ComputePasses: 3})
	c := cluster.New(cluster.Config{Mode: cluster.ModeFaasm, Hosts: 1, TimeScale: 5000})
	defer c.Shutdown()
	c.SetState(KeyWeights, w)
	c.Register("g1", g1)
	c.Register("g3", g3)
	o1, _, err := c.Call("g1", img)
	if err != nil {
		t.Fatal(err)
	}
	o3, _, err := c.Call("g3", img)
	if err != nil {
		t.Fatal(err)
	}
	if o1[0] != o3[0] {
		t.Fatal("pass count changed the classification")
	}
}

func BenchmarkForwardPass(b *testing.B) {
	w := GenerateWeights(1)
	img := GenerateImage(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Classify(w, img)
	}
}
