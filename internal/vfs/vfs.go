// Package vfs implements the Faaslet filesystem of §3.1: a read-global
// write-local virtual filesystem. Functions read files from a global object
// store (shared, read-only — e.g. language-runtime library code) and write
// to locally cached copies; local writes are never visible globally, and the
// whole local tier is dropped on the Faaslet's per-call reset.
//
// Access follows the WASI capability-based security model: all I/O flows
// through unforgeable file handles handed out by Open, so there is no
// ambient path authority and no need for chroot or layered filesystems —
// which is precisely how the paper avoids their cold-start costs.
package vfs

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Open flags (a subset of POSIX, as in Table 2).
const (
	ORdonly = 0x0
	OWronly = 0x1
	ORdwr   = 0x2
	OCreate = 0x40
	OTrunc  = 0x200
	OAppend = 0x400
)

// Seek whence values.
const (
	SeekSet = 0
	SeekCur = 1
	SeekEnd = 2
)

// Errors returned by the filesystem.
var (
	ErrNotFound     = errors.New("vfs: file not found")
	ErrBadFD        = errors.New("vfs: bad file descriptor")
	ErrNotWritable  = errors.New("vfs: descriptor not opened for writing")
	ErrNotReadable  = errors.New("vfs: descriptor not opened for reading")
	ErrTooManyFiles = errors.New("vfs: too many open files")
	ErrIsGlobal     = errors.New("vfs: cannot modify the global tier")
)

// GlobalStore is the read-only file source shared by every Faaslet on the
// cluster (backed by the object store in deployments).
type GlobalStore interface {
	// ReadFile returns the file's contents, or false if absent.
	ReadFile(path string) ([]byte, bool)
	// ListFiles returns the sorted paths with the given prefix.
	ListFiles(prefix string) []string
}

// MapGlobal is an in-memory GlobalStore, convenient for tests and the
// simulator.
type MapGlobal struct {
	mu    sync.RWMutex
	files map[string][]byte
}

// NewMapGlobal builds a global tier from a path→contents map.
func NewMapGlobal(files map[string][]byte) *MapGlobal {
	g := &MapGlobal{files: map[string][]byte{}}
	for k, v := range files {
		g.files[normPath(k)] = append([]byte(nil), v...)
	}
	return g
}

// Add inserts or replaces a global file (upload-service path).
func (g *MapGlobal) Add(path string, contents []byte) {
	g.mu.Lock()
	g.files[normPath(path)] = append([]byte(nil), contents...)
	g.mu.Unlock()
}

// ReadFile implements GlobalStore.
func (g *MapGlobal) ReadFile(path string) ([]byte, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	b, ok := g.files[normPath(path)]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), b...), true
}

// ListFiles implements GlobalStore.
func (g *MapGlobal) ListFiles(prefix string) []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []string
	for p := range g.files {
		if strings.HasPrefix(p, normPath(prefix)) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

func normPath(p string) string {
	p = strings.TrimPrefix(p, "/")
	// Collapse doubled separators; reject traversal by dropping dot-dot
	// segments entirely (capability model: no escaping the namespace).
	parts := strings.Split(p, "/")
	var clean []string
	for _, part := range parts {
		switch part {
		case "", ".", "..":
			continue
		default:
			clean = append(clean, part)
		}
	}
	return strings.Join(clean, "/")
}

// FileInfo describes a file for stat.
type FileInfo struct {
	Path  string
	Size  int64
	Local bool // true if the file lives in (or was copied to) the local tier
}

// file is one local-tier file.
type file struct {
	data []byte
}

// fdEntry is an unforgeable handle: guests only ever hold the integer key.
type fdEntry struct {
	f        *file
	path     string
	pos      int64
	readable bool
	writable bool
	append_  bool
}

// FS is one Faaslet's filesystem view.
type FS struct {
	mu     sync.Mutex
	global GlobalStore
	local  map[string]*file
	fds    map[int32]*fdEntry
	nextFD int32
	maxFDs int
	// BytesPulled counts global-tier bytes copied locally, for the
	// data-shipping accounting.
	BytesPulled int64
}

// MaxOpenFiles is the per-Faaslet descriptor limit.
const MaxOpenFiles = 256

// New creates a filesystem over the given global tier (nil means an empty
// global tier).
func New(global GlobalStore) *FS {
	if global == nil {
		global = NewMapGlobal(nil)
	}
	return &FS{
		global: global,
		local:  map[string]*file{},
		fds:    map[int32]*fdEntry{},
		nextFD: 3, // leave 0-2 for the conventional stdio slots
		maxFDs: MaxOpenFiles,
	}
}

// Reset drops the local tier and all descriptors — the per-call Faaslet
// reset (§5.2) guarantees nothing leaks to the next tenant.
func (fs *FS) Reset() {
	fs.mu.Lock()
	clear(fs.local)
	clear(fs.fds)
	fs.nextFD = 3
	fs.BytesPulled = 0
	fs.mu.Unlock()
}

// Open opens path with the given flags and returns a new descriptor.
// Global files are copied into the local tier on first open (read-global
// write-local).
func (fs *FS) Open(path string, flags int) (int32, error) {
	p := normPath(path)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if len(fs.fds) >= fs.maxFDs {
		return 0, ErrTooManyFiles
	}
	f, ok := fs.local[p]
	if !ok {
		if blob, exists := fs.global.ReadFile(p); exists {
			f = &file{data: append([]byte(nil), blob...)}
			fs.local[p] = f
			fs.BytesPulled += int64(len(blob))
			ok = true
		}
	}
	if !ok {
		if flags&OCreate == 0 {
			return 0, fmt.Errorf("%w: %s", ErrNotFound, p)
		}
		f = &file{}
		fs.local[p] = f
	}
	if flags&OTrunc != 0 {
		f.data = f.data[:0]
	}
	e := &fdEntry{
		f:        f,
		path:     p,
		readable: flags&OWronly == 0,
		writable: flags&(OWronly|ORdwr|OAppend|OCreate|OTrunc) != 0,
		append_:  flags&OAppend != 0,
	}
	fd := fs.nextFD
	fs.nextFD++
	fs.fds[fd] = e
	return fd, nil
}

func (fs *FS) entry(fd int32) (*fdEntry, error) {
	e, ok := fs.fds[fd]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrBadFD, fd)
	}
	return e, nil
}

// Read reads up to len(buf) bytes at the descriptor's position.
func (fs *FS) Read(fd int32, buf []byte) (int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	e, err := fs.entry(fd)
	if err != nil {
		return 0, err
	}
	if !e.readable {
		return 0, ErrNotReadable
	}
	if e.pos >= int64(len(e.f.data)) {
		return 0, io.EOF
	}
	n := copy(buf, e.f.data[e.pos:])
	e.pos += int64(n)
	return n, nil
}

// Write writes buf at the descriptor's position (or the end in append
// mode), extending the file as needed.
func (fs *FS) Write(fd int32, buf []byte) (int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	e, err := fs.entry(fd)
	if err != nil {
		return 0, err
	}
	if !e.writable {
		return 0, ErrNotWritable
	}
	if e.append_ {
		e.pos = int64(len(e.f.data))
	}
	end := e.pos + int64(len(buf))
	if end > int64(len(e.f.data)) {
		grown := make([]byte, end)
		copy(grown, e.f.data)
		e.f.data = grown
	}
	copy(e.f.data[e.pos:], buf)
	e.pos = end
	return len(buf), nil
}

// Seek repositions the descriptor, returning the new offset.
func (fs *FS) Seek(fd int32, offset int64, whence int) (int64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	e, err := fs.entry(fd)
	if err != nil {
		return 0, err
	}
	var base int64
	switch whence {
	case SeekSet:
		base = 0
	case SeekCur:
		base = e.pos
	case SeekEnd:
		base = int64(len(e.f.data))
	default:
		return 0, fmt.Errorf("vfs: bad whence %d", whence)
	}
	np := base + offset
	if np < 0 {
		return 0, fmt.Errorf("vfs: negative seek")
	}
	e.pos = np
	return np, nil
}

// Close releases the descriptor.
func (fs *FS) Close(fd int32) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.fds[fd]; !ok {
		return fmt.Errorf("%w: %d", ErrBadFD, fd)
	}
	delete(fs.fds, fd)
	return nil
}

// Dup duplicates a descriptor; the copy shares the file but has an
// independent position, starting at the original's.
func (fs *FS) Dup(fd int32) (int32, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	e, err := fs.entry(fd)
	if err != nil {
		return 0, err
	}
	if len(fs.fds) >= fs.maxFDs {
		return 0, ErrTooManyFiles
	}
	cp := *e
	nfd := fs.nextFD
	fs.nextFD++
	fs.fds[nfd] = &cp
	return nfd, nil
}

// Stat reports on a path, checking the local tier then the global tier.
func (fs *FS) Stat(path string) (FileInfo, error) {
	p := normPath(path)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if f, ok := fs.local[p]; ok {
		return FileInfo{Path: p, Size: int64(len(f.data)), Local: true}, nil
	}
	if blob, ok := fs.global.ReadFile(p); ok {
		return FileInfo{Path: p, Size: int64(len(blob))}, nil
	}
	return FileInfo{}, fmt.Errorf("%w: %s", ErrNotFound, p)
}

// FStat reports on an open descriptor.
func (fs *FS) FStat(fd int32) (FileInfo, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	e, err := fs.entry(fd)
	if err != nil {
		return FileInfo{}, err
	}
	return FileInfo{Path: e.path, Size: int64(len(e.f.data)), Local: true}, nil
}

// ReadFile is a convenience that opens, reads fully and closes.
func (fs *FS) ReadFile(path string) ([]byte, error) {
	fd, err := fs.Open(path, ORdonly)
	if err != nil {
		return nil, err
	}
	defer fs.Close(fd)
	info, err := fs.FStat(fd)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, info.Size)
	n, err := fs.Read(fd, buf)
	if err != nil && err != io.EOF {
		return nil, err
	}
	return buf[:n], nil
}

// WriteFile is a convenience that creates/truncates and writes path locally.
func (fs *FS) WriteFile(path string, data []byte) error {
	fd, err := fs.Open(path, OCreate|OTrunc|OWronly)
	if err != nil {
		return err
	}
	defer fs.Close(fd)
	_, err = fs.Write(fd, data)
	return err
}

// OpenCount reports the number of live descriptors (leak tests).
func (fs *FS) OpenCount() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return len(fs.fds)
}

// LocalBytes reports the local tier's size (footprint accounting).
func (fs *FS) LocalBytes() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var n int64
	for _, f := range fs.local {
		n += int64(len(f.data))
	}
	return n
}
