package kvs

import "time"

// The batch surface of the global tier. The state stack's hot paths — DDO
// chunk pulls, sharded writes, prefetch — issue many small operations whose
// cost is dominated by per-operation overhead: a round trip on the wire, a
// lock acquisition in the engine, a latency charge in the simulated network.
// Batcher lets a store serve a whole group in one exchange; the package
// functions MGet/MSet/GetRanges give every kvs.Store the batch API, falling
// back to single operations when the store has no native support.

// Pair is one key/value assignment in a batched write.
type Pair struct {
	Key string
	Val []byte
}

// Range is one [Off, Off+N) byte window of a value.
type Range struct {
	Off int
	N   int
}

// Batcher is the optional batch extension of Store. Semantics match the
// single-op equivalents element-wise:
//
//   - MGet returns one entry per key, in key order, nil for absent keys.
//   - MSet applies the pairs in order (a duplicated key keeps the last
//     value); each individual key is set atomically, but the batch as a
//     whole is not a transaction — a reader may observe some pairs applied
//     and others not yet.
//   - GetRanges reads several windows of one key: reads past the end
//     truncate, windows entirely past the end are nil, negative bounds
//     error. All windows of one command observe a single version of the
//     value; batches beyond one wire command window (MaxBatch entries) or
//     the generic fallback may observe different versions across windows
//     when writers race.
//
// Engine serves a batch with one lock acquisition per distinct stripe, the
// TCP client with one pipelined exchange, the sharded ring with one batch
// per owning shard issued concurrently.
type Batcher interface {
	MGet(keys []string) ([][]byte, error)
	MSet(pairs []Pair) error
	// MSetEx applies the pairs like MSet and arms every key with the same
	// tier-side ttl (one deadline per batch, on the store's clock).
	MSetEx(pairs []Pair, ttl time.Duration) error
	GetRanges(key string, ranges []Range) ([][]byte, error)
}

// MGet reads many keys through s, using its native batch support when
// present and falling back to one Get per key otherwise.
func MGet(s Store, keys []string) ([][]byte, error) {
	if b, ok := s.(Batcher); ok {
		return b.MGet(keys)
	}
	out := make([][]byte, len(keys))
	for i, k := range keys {
		v, err := s.Get(k)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// MSet writes many pairs through s, using its native batch support when
// present and falling back to one Set per pair otherwise.
func MSet(s Store, pairs []Pair) error {
	if b, ok := s.(Batcher); ok {
		return b.MSet(pairs)
	}
	for _, p := range pairs {
		if err := s.Set(p.Key, p.Val); err != nil {
			return err
		}
	}
	return nil
}

// MSetEx writes many pairs with one shared ttl through s, using its native
// batch support when present and falling back to one SetEx per pair
// otherwise (each fallback write computes its own deadline, so the batch's
// keys may expire microseconds apart — semantically the same lease).
func MSetEx(s Store, pairs []Pair, ttl time.Duration) error {
	if b, ok := s.(Batcher); ok {
		return b.MSetEx(pairs, ttl)
	}
	for _, p := range pairs {
		if err := s.SetEx(p.Key, p.Val, ttl); err != nil {
			return err
		}
	}
	return nil
}

// GetRanges reads many windows of one key through s, using its native batch
// support when present and falling back to one GetRange per window.
func GetRanges(s Store, key string, ranges []Range) ([][]byte, error) {
	if b, ok := s.(Batcher); ok {
		return b.GetRanges(key, ranges)
	}
	out := make([][]byte, len(ranges))
	for i, r := range ranges {
		v, err := s.GetRange(key, r.Off, r.N)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
